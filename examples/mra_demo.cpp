// MRA demo: adaptive multiwavelet representation of 3D Gaussians.
//
// Runs the full projection -> compression -> reconstruction pipeline
// (paper Sec. V-E) on a handful of Gaussians and reports the adaptive
// tree shape and the recovered function norms. The three phases are a
// single overlapping dataflow: compression of one subtree starts while
// projection is still refining another.
//
//   ./build/examples/mra_demo [num_functions [exponent [k]]]
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "mra/mra.hpp"

int main(int argc, char** argv) {
  const int nfuncs = argc > 1 ? std::atoi(argv[1]) : 4;
  const double expnt = argc > 2 ? std::atof(argv[2]) : 500.0;
  const int k = argc > 3 ? std::atoi(argv[3]) : 8;

  mra::MraParams params;
  params.k = static_cast<std::size_t>(k);
  params.thresh = 1e-5;

  const auto functions =
      mra::random_gaussians(nfuncs, expnt, /*seed=*/2022, params);
  std::printf("projecting %d Gaussians (exponent %.0f) at order k=%d, "
              "threshold %.0e on [%g,%g]^3\n",
              nfuncs, expnt, k, params.thresh, params.lo, params.hi);

  const auto result =
      mra::run_mra(params, functions, ttg::Config::optimized());

  std::printf("pipeline: %.3fs | tasks: project=%llu compress=%llu "
              "reconstruct=%llu | leaf boxes=%llu\n",
              result.seconds,
              static_cast<unsigned long long>(result.project_tasks),
              static_cast<unsigned long long>(result.compress_tasks),
              static_cast<unsigned long long>(result.reconstruct_tasks),
              static_cast<unsigned long long>(result.leaves));

  // Each function is L2-normalized in physical space; in the unit-cube
  // coordinates of the tree its norm is L^(-3/2).
  const double span = params.hi - params.lo;
  const double expect = 1.0 / std::pow(span, 1.5);
  bool ok = true;
  for (std::size_t f = 0; f < result.norms.size(); ++f) {
    const double rel = std::abs(result.norms[f] - expect) / expect;
    std::printf("  f%zu: |f| = %.8f (expected %.8f, rel err %.1e)\n", f,
                result.norms[f], expect, rel);
    ok = ok && rel < 1e-3;
  }
  std::printf("%s\n", ok ? "all norms recovered" : "NORM MISMATCH");
  return ok ? 0 : 1;
}
