// Quickstart: a 1D diffusion-flavored chain of tasks.
//
// Demonstrates the minimal TTG workflow on the serving API
// (docs/serving.md): a Runtime owns the worker pool, make_world() mints
// a lightweight World on it, and execute() returns a Submission handle
// to wait on. A single template task sends to itself, so the runtime
// unfolds a dynamic chain of dependent tasks — the data moves along the
// chain with zero copies.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <numeric>
#include <vector>

#include "ttg/ttg.hpp"

int main() {
  ttg::RuntimeOptions opts;  // Config::optimized() by default
  ttg::Runtime runtime(opts);
  auto world_ptr = runtime.make_world();
  ttg::World& world = *world_ptr;
  std::printf("runtime: %s\n", runtime.config().describe().c_str());

  constexpr int kSteps = 1000;
  constexpr int kCells = 64;

  // One edge, one template task: step k smooths the field and passes it
  // (by move — no copy) to step k+1.
  ttg::Edge<int, std::vector<double>> field("field");
  std::vector<double> result;

  auto step = ttg::make_tt<int>(
      [&result](const int& k, std::vector<double>& u) {
        std::vector<double> next(u.size());
        for (std::size_t i = 0; i < u.size(); ++i) {
          const double left = i > 0 ? u[i - 1] : u[i];
          const double right = i + 1 < u.size() ? u[i + 1] : u[i];
          next[i] = u[i] + 0.25 * (left - 2 * u[i] + right);
        }
        u = std::move(next);
        if (k + 1 < kSteps) {
          ttg::send<0>(k + 1, std::move(u));
        } else {
          result = u;
        }
      },
      ttg::edges(field), ttg::edges(field), "diffuse", world);

  // Initial condition: a spike in the middle.
  std::vector<double> u0(kCells, 0.0);
  u0[kCells / 2] = 1.0;

  ttg::Submission epoch = world.execute();
  step->send_input<0>(0, std::move(u0));
  epoch.wait();

  const double mass = std::accumulate(result.begin(), result.end(), 0.0);
  std::printf("after %d steps: mass=%.6f (conserved: %s), peak=%.6f\n",
              kSteps, mass, std::abs(mass - 1.0) < 1e-9 ? "yes" : "NO",
              *std::max_element(result.begin(), result.end()));
  std::printf("tasks executed: %llu\n",
              static_cast<unsigned long long>(world.total_tasks_executed()));
  return std::abs(mass - 1.0) < 1e-9 ? 0 : 1;
}
