// Wavefront: 2D dynamic-programming sweep (Smith-Waterman-like).
//
// Cell (i, j) depends on (i-1, j) and (i, j-1): a classic two-input join
// that exercises the TTG hash table — tasks wait in it until both inputs
// arrive, and the anti-diagonal frontier exposes growing parallelism.
//
//   ./build/examples/wavefront [N]
#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "common/cycle_clock.hpp"
#include "common/rng.hpp"
#include "ttg/ttg.hpp"

namespace {

using Key = std::pair<int, int>;

// Deterministic per-cell "match score" standing in for sequence data.
int score(int i, int j) {
  return static_cast<int>(ttg::mix64((static_cast<std::uint64_t>(i) << 32) ^
                                     static_cast<std::uint64_t>(j)) %
                          7) -
         3;
}

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 256;
  ttg::Runtime runtime;
  auto world_ptr = runtime.make_world();
  ttg::World& world = *world_ptr;

  ttg::Edge<Key, long> from_north("north"), from_west("west");
  std::atomic<long> corner{0};

  auto cell = ttg::make_tt<Key>(
      [n, &corner](const Key& key, long& north, long& west) {
        const auto [i, j] = key;
        const long v = std::max(north, west) + score(i, j);
        if (i + 1 < n) ttg::send<0>(Key{i + 1, j}, long{v});
        if (j + 1 < n) ttg::send<1>(Key{i, j + 1}, long{v});
        if (i + 1 == n && j + 1 == n) corner.store(v);
      },
      ttg::edges(from_north, from_west), ttg::edges(from_north, from_west),
      "cell", world);
  // Deeper anti-diagonals first keeps the frontier small.
  cell->set_priority_fn([](const Key& k) { return k.first + k.second; });

  ttg::WallTimer timer;
  ttg::Submission epoch = world.execute();
  // Seed the borders: row 0 needs "north" inputs, column 0 "west".
  for (int j = 0; j < n; ++j) cell->send_input<0>(Key{0, j}, 0L);
  for (int i = 0; i < n; ++i) cell->send_input<1>(Key{i, 0}, 0L);
  epoch.wait();
  const double dt = timer.seconds();

  // Serial verification.
  std::vector<long> prev(n), cur(n);
  long expect = 0;
  {
    std::vector<std::vector<long>> grid(n, std::vector<long>(n));
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        const long north = i > 0 ? grid[i - 1][j] : 0;
        const long west = j > 0 ? grid[i][j - 1] : 0;
        grid[i][j] = std::max(north, west) + score(i, j);
      }
    }
    expect = grid[n - 1][n - 1];
  }

  std::printf("wavefront %dx%d: corner=%ld expect=%ld (%s), %.1f ktasks/s\n",
              n, n, corner.load(), expect,
              corner.load() == expect ? "ok" : "MISMATCH",
              static_cast<double>(n) * n / dt / 1e3);
  return corner.load() == expect ? 0 : 1;
}
