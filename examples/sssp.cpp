// Single-source shortest paths by label-correcting relaxation — the kind
// of irregular, data-dependent computation the TTG model was built for
// (paper Sec. II: "great flexibility, e.g., to dynamically steer the
// unfolding of the template task graph based on input data").
//
// The template task graph is a single TT with a *cycle* to itself: a
// relax task for vertex v improves v's tentative distance and sends new
// candidates to its neighbors — only when an improvement happened, so
// the unfolded DAG's shape depends entirely on the data. Termination is
// the runtime's four-counter wave detecting that no improving sends
// remain. Because the relax TT has a single input, every send spawns a
// task immediately (the Sec. V-C hash-table-free fast path) — duplicate
// relaxations of the same vertex are naturally allowed and resolved by
// the monotone distance updates.
//
// Note the cost model: with one worker, value-ordered priorities make
// the LLP queue behave like a sorted list, so pushes pay the O(N)
// slow-path insertion the paper acknowledges (Sec. IV-C) — bundling
// amortizes but does not remove it. The win is algorithmic: ~1.00
// relaxations per edge instead of the thousands a LIFO order causes.
//
//   ./build/examples/sssp [vertices [edges_per_vertex]]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <queue>
#include <vector>

#include "common/cycle_clock.hpp"
#include "common/rng.hpp"
#include "structures/concurrent_map.hpp"
#include "ttg/ttg.hpp"

namespace {

struct Graph {
  int vertices;
  std::vector<std::vector<std::pair<int, int>>> adj;  // (neighbor, weight)

  static Graph random(int vertices, int edges_per_vertex,
                      std::uint64_t seed) {
    Graph g;
    g.vertices = vertices;
    g.adj.resize(static_cast<std::size_t>(vertices));
    ttg::SplitMix64 rng(seed);
    for (int v = 0; v < vertices; ++v) {
      for (int e = 0; e < edges_per_vertex; ++e) {
        const int u = static_cast<int>(rng.next_below(vertices));
        const int w = 1 + static_cast<int>(rng.next_below(10));
        if (u != v) g.adj[v].push_back({u, w});
      }
      // A ring edge keeps the graph connected.
      g.adj[v].push_back({(v + 1) % vertices, 10});
    }
    return g;
  }

  std::vector<long> dijkstra(int source) const {
    std::vector<long> dist(static_cast<std::size_t>(vertices),
                           std::numeric_limits<long>::max());
    using Item = std::pair<long, int>;
    std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
    dist[source] = 0;
    pq.push({0, source});
    while (!pq.empty()) {
      const auto [d, v] = pq.top();
      pq.pop();
      if (d > dist[v]) continue;
      for (const auto& [u, w] : adj[v]) {
        if (d + w < dist[u]) {
          dist[u] = d + w;
          pq.push({dist[u], u});
        }
      }
    }
    return dist;
  }
};

}  // namespace

int main(int argc, char** argv) {
  const int n = argc > 1 ? std::atoi(argv[1]) : 5000;
  const int degree = argc > 2 ? std::atoi(argv[2]) : 4;
  const Graph graph = Graph::random(n, degree, /*seed=*/7);

  ttg::Runtime runtime;
  auto world_ptr = runtime.make_world();
  ttg::World& world = *world_ptr;

  // Tentative distances, updated under per-vertex bucket locks.
  ttg::ConcurrentMap<int, long> dist;
  for (int v = 0; v < n; ++v) dist.insert(v, std::numeric_limits<long>::max());

  ttg::Edge<int, long> relax_in("relax");
  std::atomic<std::uint64_t> relaxations{0};

  auto relax = ttg::make_tt<int>(
      [&graph, &dist, &relaxations](const int& v, long& candidate) {
        relaxations.fetch_add(1, std::memory_order_relaxed);
        bool improved = false;
        dist.with(v, [&](long& d) {
          if (candidate < d) {
            d = candidate;
            improved = true;
          }
        });
        if (improved) {
          for (const auto& [u, w] : graph.adj[v]) {
            ttg::send<0>(u, candidate + w);
          }
        }
      },
      ttg::edges(relax_in), ttg::edges(relax_in), "relax", world);
  // Value-aware priorities: relax small tentative distances first
  // (approximating Dijkstra's order), which slashes the redundant
  // re-relaxations a LIFO order would otherwise cause.
  relax->set_priority_fn(
      std::function<std::int32_t(const int&, const long&)>(
          [](const int&, const long& candidate) {
            return -static_cast<std::int32_t>(candidate);
          }));

  ttg::WallTimer timer;
  ttg::Submission epoch = world.execute();
  relax->send_input<0>(0, 0L);
  epoch.wait();
  const double dt = timer.seconds();

  // Verify against Dijkstra.
  const auto expect = graph.dijkstra(0);
  int mismatches = 0;
  long max_dist = 0;
  for (int v = 0; v < n; ++v) {
    long got = -1;
    dist.with(v, [&](long& d) { got = d; });
    if (got != expect[v]) ++mismatches;
    if (expect[v] != std::numeric_limits<long>::max()) {
      max_dist = std::max(max_dist, expect[v]);
    }
  }

  std::printf(
      "sssp: %d vertices, ~%d edges/vertex: %.3fs, %llu relaxations "
      "(%.2fx edges), diameter-ish %ld, %s\n",
      n, degree + 1, dt,
      static_cast<unsigned long long>(relaxations.load()),
      static_cast<double>(relaxations.load()) / (n * (degree + 1)),
      max_dist, mismatches == 0 ? "verified against Dijkstra" : "MISMATCH");
  return mismatches == 0 ? 0 : 1;
}
