// Tiled Cholesky factorization as a template task graph.
//
// The classic dense linear-algebra dataflow (POTRF / TRSM / UPDATE)
// expressed in TTG: each tile of the lower-triangular matrix flows
// through a sequence of update tasks keyed by (k, i, j); the factor
// panels are broadcast along the edges instead of being looked up in
// shared state. Priorities push the critical path (small k first).
//
//   ./build/examples/cholesky [num_tiles [tile_size]]
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <tuple>
#include <vector>

#include "common/cycle_clock.hpp"
#include "common/rng.hpp"
#include "ttg/ttg.hpp"

namespace {

using Tile = std::vector<double>;
using KI = std::pair<int, int>;            // (k, i)
using KIJ = std::tuple<int, int, int>;     // (k, i, j)

// ----------------------------------------------------------- tile kernels

/// In-place lower Cholesky of a b x b tile.
void potrf(int b, Tile& a) {
  for (int j = 0; j < b; ++j) {
    double d = a[j * b + j];
    for (int m = 0; m < j; ++m) d -= a[j * b + m] * a[j * b + m];
    d = std::sqrt(d);
    a[j * b + j] = d;
    for (int i = j + 1; i < b; ++i) {
      double v = a[i * b + j];
      for (int m = 0; m < j; ++m) v -= a[i * b + m] * a[j * b + m];
      a[i * b + j] = v / d;
    }
    for (int i = 0; i < j; ++i) a[i * b + j] = 0.0;  // zero upper part
  }
}

/// X = A * L^{-T} for lower-triangular L (the TRSM of the panel).
void trsm(int b, const Tile& lkk, Tile& a) {
  for (int c = 0; c < b; ++c) {
    for (int r = 0; r < b; ++r) {
      double v = a[r * b + c];
      for (int m = 0; m < c; ++m) v -= a[r * b + m] * lkk[c * b + m];
      a[r * b + c] = v / lkk[c * b + c];
    }
  }
}

/// C -= A * B^T (the SYRK/GEMM trailing update).
void gemm_nt(int b, const Tile& a, const Tile& bt, Tile& c) {
  for (int i = 0; i < b; ++i) {
    for (int j = 0; j < b; ++j) {
      double v = 0;
      for (int m = 0; m < b; ++m) v += a[i * b + m] * bt[j * b + m];
      c[i * b + j] -= v;
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const int nt = argc > 1 ? std::atoi(argv[1]) : 8;   // tiles per side
  const int b = argc > 2 ? std::atoi(argv[2]) : 24;   // tile size
  const int n = nt * b;

  // SPD input: A = M M^T + n*I, kept tiled (lower part only).
  std::vector<double> dense(static_cast<std::size_t>(n) * n);
  {
    ttg::SplitMix64 rng(2022);
    std::vector<double> m(static_cast<std::size_t>(n) * n);
    for (auto& v : m) v = rng.next_double() - 0.5;
    for (int i = 0; i < n; ++i) {
      for (int j = 0; j < n; ++j) {
        double s = (i == j) ? n : 0.0;
        for (int p = 0; p < n; ++p) s += m[i * n + p] * m[j * n + p];
        dense[static_cast<std::size_t>(i) * n + j] = s;
      }
    }
  }
  auto load_tile = [&](int ti, int tj) {
    Tile t(static_cast<std::size_t>(b) * b);
    for (int i = 0; i < b; ++i) {
      for (int j = 0; j < b; ++j) {
        t[i * b + j] =
            dense[static_cast<std::size_t>(ti * b + i) * n + tj * b + j];
      }
    }
    return t;
  };

  ttg::Runtime runtime;
  auto world_ptr = runtime.make_world();
  ttg::World& world = *world_ptr;

  ttg::Edge<int, Tile> potrf_in("potrf");
  ttg::Edge<KI, Tile> trsm_panel("trsm_panel");  // L_kk broadcast
  ttg::Edge<KI, Tile> trsm_tile("trsm_tile");
  ttg::Edge<KIJ, Tile> up_row("up_row"), up_col("up_col"),
      up_tile("up_tile");

  // Factor tiles land here; each slot has exactly one writer.
  std::vector<Tile> result(static_cast<std::size_t>(nt) * nt);

  auto potrf_tt = ttg::make_tt<int>(
      [&, nt, b](const int& k, Tile& tile) {
        potrf(b, tile);
        result[static_cast<std::size_t>(k) * nt + k] = tile;
        std::vector<KI> consumers;
        for (int i = k + 1; i < nt; ++i) consumers.push_back(KI{k, i});
        if (!consumers.empty()) {
          ttg::broadcast<0>(consumers, tile);
        }
      },
      ttg::edges(potrf_in), ttg::edges(trsm_panel), "POTRF", world);
  potrf_tt->set_priority_fn([nt](const int& k) { return 3 * (nt - k); });

  auto trsm_tt = ttg::make_tt<KI>(
      [&, nt, b](const KI& key, Tile& lkk, Tile& tile) {
        const auto [k, i] = key;
        trsm(b, lkk, tile);
        result[static_cast<std::size_t>(i) * nt + k] = tile;
        // L_ik feeds the trailing updates of row i and column i.
        std::vector<KIJ> rows, cols;
        for (int j = k + 1; j <= i; ++j) rows.push_back(KIJ{k, i, j});
        for (int ii = i; ii < nt; ++ii) cols.push_back(KIJ{k, ii, i});
        if (!rows.empty()) ttg::broadcast<0>(rows, tile);
        if (!cols.empty()) ttg::broadcast<1>(cols, tile);
      },
      ttg::edges(trsm_panel, trsm_tile), ttg::edges(up_row, up_col),
      "TRSM", world);
  trsm_tt->set_priority_fn(
      [nt](const KI& key) { return 3 * (nt - key.first) - 1; });

  auto update_tt = ttg::make_tt<KIJ>(
      [&, nt, b](const KIJ& key, Tile& lik, Tile& ljk, Tile& tile) {
        const auto [k, i, j] = key;
        gemm_nt(b, lik, ljk, tile);
        if (j == k + 1) {
          // The tile's final factorization step comes next.
          if (i == j) {
            ttg::send<0>(k + 1, std::move(tile));
          } else {
            ttg::send<1>(KI{k + 1, i}, std::move(tile));
          }
        } else {
          ttg::send<2>(KIJ{k + 1, i, j}, std::move(tile));
        }
      },
      ttg::edges(up_row, up_col, up_tile),
      ttg::edges(potrf_in, trsm_tile, up_tile), "UPDATE", world);
  update_tt->set_priority_fn(
      [nt](const KIJ& key) { return 3 * (nt - std::get<0>(key)) - 2; });

  ttg::WallTimer timer;
  ttg::Submission epoch = world.execute();
  // Seed: every lower tile enters its first operation.
  potrf_tt->send_input<0>(0, load_tile(0, 0));
  for (int i = 1; i < nt; ++i) {
    trsm_tt->send_input<1>(KI{0, i}, load_tile(i, 0));
  }
  for (int j = 1; j < nt; ++j) {
    for (int i = j; i < nt; ++i) {
      update_tt->send_input<2>(KIJ{0, i, j}, load_tile(i, j));
    }
  }
  epoch.wait();
  const double dt = timer.seconds();

  // Verify: max |(L L^T)_ij - A_ij| over the lower triangle.
  auto lval = [&](int i, int j) -> double {
    if (j > i) return 0.0;
    const Tile& t = result[static_cast<std::size_t>(i / b) * nt + (j / b)];
    return t.empty() ? 0.0 : t[(i % b) * b + (j % b)];
  };
  double max_err = 0;
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j <= i; ++j) {
      double s = 0;
      for (int m = 0; m <= j; ++m) s += lval(i, m) * lval(j, m);
      max_err = std::max(
          max_err,
          std::abs(s - dense[static_cast<std::size_t>(i) * n + j]));
    }
  }

  const double gflops = (n / 3.0 * n * n) / dt / 1e9;
  std::printf(
      "cholesky %dx%d (tiles %dx%d of %d): %.3fs %.2f GF/s, "
      "max |LL^T - A| = %.2e (%s)\n",
      n, n, nt, nt, b, dt, gflops, max_err,
      max_err < 1e-8 * n ? "ok" : "MISMATCH");
  return max_err < 1e-8 * n ? 0 : 1;
}
