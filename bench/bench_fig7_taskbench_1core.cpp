// Figure 7: Task-Bench on a single core — average core time per task
// (7a) and efficiency under decreasing flops-per-task (7b), 1D stencil,
// one point per core, 1000 timesteps (scaled down by default).
//
// Paper shape: MPI lowest per-task time (no task handling at all), then
// TTG ~ OpenMP worksharing, then PaRSEC PTG, then OpenMP tasks;
// METG(50%) ~ 6k flops for MPI, 20-25k for TTG / OpenMP-for, >100k for
// OpenMP tasks.
//
// With --replay an extra ttg_replay series re-runs the TTG stencil
// through the compiled-epoch replay path (record once, replay the
// GraphTemplate with pre-resolved successors).
//
//   ./bench_fig7_taskbench_1core [--steps=N] [--width=N] [--repeats=N]
//                                [--paper] [--replay] [--json-out=path]
#include <cstdio>

#include "bench_common.hpp"
#include "taskbench_sweep.hpp"

int main(int argc, char** argv) {
  bench::BenchCommon common(argc, argv, "fig7_taskbench_1core");
  const bench::Args& args = common.args;
  const bool paper = args.has_flag("paper");
  const int steps =
      static_cast<int>(args.get_int("steps", paper ? 1000 : 200));
  const int width = static_cast<int>(args.get_int("width", 1));
  const int repeats = static_cast<int>(args.get_int("repeats", 3));
  const auto flops = bench::default_flops_sweep(paper);

  common.json.config("width", static_cast<std::int64_t>(width));
  common.json.config("steps", static_cast<std::int64_t>(steps));
  common.json.config("repeats", static_cast<std::int64_t>(repeats));

  std::printf("# Figure 7: Task-Bench 1D stencil, 1 core, width=%d "
              "steps=%d\n",
              width, steps);
  const double baseline = bench::best_single_core_rate(flops.front(),
                                                       width, steps);
  std::printf("# efficiency baseline: %.3e flops/s (best single-core)\n",
              baseline);
  auto series = bench::run_taskbench_sweep(flops, width, steps,
                                           /*threads=*/1, repeats);
  if (args.has_flag("replay")) {
    series.push_back(bench::run_taskbench_single(
        "ttg_replay", &taskbench::run_ttg_replay, flops, width, steps,
        /*threads=*/1, repeats));
  }
  bench::print_sweep(series, baseline, /*threads=*/1, &common.json);
  return 0;
}
