// Figure 12: MRA time-to-solution with the original and the optimized
// TTG/runtime, for several batches of concurrently-computed Gaussians,
// across a thread sweep; each point also reports the speedup over the
// 1-thread run of the same configuration.
//
// Paper shape (64/128/256 functions, exponent 3e4, eps 1e-8): the
// original runtime saturates near 5x speedup; the optimized one reaches
// ~20x at 48 threads for 256 functions. Defaults here are scaled for a
// small machine; --paper restores the paper's parameters.
//
//   ./bench_fig12_mra [--functions=a,b,c] [--k=N] [--thresh=X]
//                     [--expnt=X] [--max-threads=N] [--paper]
#include <cstdio>
#include <sstream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "mra/mra.hpp"

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::TraceCapture trace_capture(args);
  const bool paper = args.has_flag("paper");

  mra::MraParams params;
  params.k = static_cast<std::size_t>(args.get_int("k", paper ? 10 : 6));
  params.thresh = args.get_double("thresh", paper ? 1e-8 : 1e-4);
  const double expnt = args.get_double("expnt", paper ? 30000.0 : 400.0);
  const int max_threads = static_cast<int>(
      args.get_int("max-threads", bench::default_max_threads()));

  std::vector<int> function_counts;
  {
    const std::string spec =
        args.get_string("functions", paper ? "64,128,256" : "4,8,16");
    std::stringstream ss(spec);
    std::string item;
    while (std::getline(ss, item, ',')) {
      function_counts.push_back(std::atoi(item.c_str()));
    }
  }

  std::printf("# Figure 12: MRA time-to-solution (k=%zu thresh=%.0e "
              "exponent=%.0f)\n",
              params.k, params.thresh, expnt);
  std::printf(
      "config,functions,threads,seconds,speedup,leaves,tasks_total\n");
  for (const bool optimized : {false, true}) {
    ttg::Config rt =
        optimized ? ttg::Config::optimized() : ttg::Config::original();
    for (int nfuncs : function_counts) {
      const auto functions =
          mra::random_gaussians(nfuncs, expnt, /*seed=*/42, params);
      double t1 = 0;
      for (int threads : bench::thread_sweep(max_threads)) {
        rt.num_threads = threads;
        const auto r = mra::run_mra(params, functions, rt);
        if (threads == 1) t1 = r.seconds;
        const std::uint64_t total =
            r.project_tasks + r.compress_tasks + r.reconstruct_tasks;
        std::printf("%s,%d,%d,%.4f,%.2f,%llu,%llu\n",
                    optimized ? "optimized" : "original", nfuncs, threads,
                    r.seconds, t1 > 0 ? t1 / r.seconds : 1.0,
                    static_cast<unsigned long long>(r.leaves),
                    static_cast<unsigned long long>(total));
      }
    }
  }
  return 0;
}
