// Figure 8: Task-Bench at scale — average core time per task (8a) and
// efficiency relative to the best single-core rate x threads (8b).
//
// Paper shape: TTG and the optimized PaRSEC PTG on par with the best
// OpenMP worksharing runtime; OpenMP tasks markedly worse; METG(50%) of
// TTG ~60k flops vs ~1M for OpenMP worksharing.
//
// Without --threads the bench sweeps the machine's own core count plus
// the paper-scale points {64, 96, 128}, skipping any count above the
// hardware concurrency (a laptop prints the skip and measures what it
// can; a 128-core box produces every row). Each JSON row carries its
// thread count so scripts/check_bench_regression.py gates every
// (impl, threads, flops) point independently.
//
//   ./bench_fig8_taskbench_scaled [--threads=N] [--steps=N] [--paper]
//                                 [--pending=delegated|bucketlock]
//                                 [--numa=0|1] [--json-out=path]
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.hpp"
#include "taskbench_sweep.hpp"

int main(int argc, char** argv) {
  bench::BenchCommon common(argc, argv, "fig8_taskbench_scaled");
  const bench::Args& args = common.args;
  const bool paper = args.has_flag("paper");
  // Mode knobs: exported before any World exists so every Config built
  // by the TTG implementations picks them up.
  const std::string pending = args.get_string("pending", "");
  if (!pending.empty()) setenv("TTG_PENDING_TABLE", pending.c_str(), 1);
  const std::string numa = args.get_string("numa", "");
  if (!numa.empty()) setenv("TTG_NUMA_POOLS", numa.c_str(), 1);

  const int hw = bench::default_max_threads();
  std::vector<int> thread_counts;
  if (const std::int64_t t = args.get_int("threads", 0); t > 0) {
    thread_counts.push_back(static_cast<int>(t));
  } else {
    thread_counts = {hw, 64, 96, 128};
    std::sort(thread_counts.begin(), thread_counts.end());
    thread_counts.erase(
        std::unique(thread_counts.begin(), thread_counts.end()),
        thread_counts.end());
    for (int t : thread_counts) {
      if (t > hw) {
        std::printf("# skipping %d threads (hardware concurrency %d)\n",
                    t, hw);
      }
    }
    thread_counts.erase(
        std::remove_if(thread_counts.begin(), thread_counts.end(),
                       [hw](int t) { return t > hw; }),
        thread_counts.end());
  }
  const int steps =
      static_cast<int>(args.get_int("steps", paper ? 1000 : 100));
  const auto flops = bench::default_flops_sweep(paper);

  common.json.config("threads", static_cast<std::int64_t>(
                                    thread_counts.back()));
  common.json.config("steps", static_cast<std::int64_t>(steps));
  if (!pending.empty()) common.json.config("pending", pending);
  if (!numa.empty()) common.json.config("numa", numa);

  for (int threads : thread_counts) {
    // "One task per core per timestep".
    const int width = static_cast<int>(args.get_int("width", threads));
    std::printf("# Figure 8: Task-Bench 1D stencil, %d threads, width=%d "
                "steps=%d\n",
                threads, width, steps);
    const double baseline = bench::best_single_core_rate(flops.front(),
                                                         width, steps);
    std::printf("# efficiency baseline: %.3e flops/s x %d threads\n",
                baseline, threads);
    const auto series =
        bench::run_taskbench_sweep(flops, width, steps, threads);
    bench::print_sweep(series, baseline, threads, &common.json,
                       /*row_threads=*/true);
  }
  return 0;
}
