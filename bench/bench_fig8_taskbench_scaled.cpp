// Figure 8: Task-Bench at full thread count (64 cores in the paper) —
// average core time per task (8a) and efficiency relative to the best
// single-core rate x threads (8b).
//
// Paper shape: TTG and the optimized PaRSEC PTG on par with the best
// OpenMP worksharing runtime; OpenMP tasks markedly worse; METG(50%) of
// TTG ~60k flops vs ~1M for OpenMP worksharing.
//
//   ./bench_fig8_taskbench_scaled [--threads=N] [--steps=N] [--paper]
//                                 [--json-out=path]
#include <cstdio>

#include "bench_common.hpp"
#include "taskbench_sweep.hpp"

int main(int argc, char** argv) {
  bench::BenchCommon common(argc, argv, "fig8_taskbench_scaled");
  const bench::Args& args = common.args;
  const bool paper = args.has_flag("paper");
  const int threads = static_cast<int>(
      args.get_int("threads", bench::default_max_threads()));
  const int steps =
      static_cast<int>(args.get_int("steps", paper ? 1000 : 100));
  // "One task per core per timestep".
  const int width = static_cast<int>(args.get_int("width", threads));
  const auto flops = bench::default_flops_sweep(paper);

  common.json.config("threads", static_cast<std::int64_t>(threads));
  common.json.config("width", static_cast<std::int64_t>(width));
  common.json.config("steps", static_cast<std::int64_t>(steps));

  std::printf("# Figure 8: Task-Bench 1D stencil, %d threads, width=%d "
              "steps=%d\n",
              threads, width, steps);
  const double baseline = bench::best_single_core_rate(flops.front(),
                                                       width, steps);
  std::printf("# efficiency baseline: %.3e flops/s x %d threads\n",
              baseline, threads);
  const auto series =
      bench::run_taskbench_sweep(flops, width, steps, threads);
  bench::print_sweep(series, baseline, threads, &common.json);
  return 0;
}
