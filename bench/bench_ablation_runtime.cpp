// Runtime-design ablations beyond the paper's figures: the binary-tree
// pressure benchmark (Fig. 6's workload) across
//   * all five schedulers (LFQ, LL, LLP, GD, AP),
//   * successor bundling on/off (Sec. IV-C's sorted-chain insertion),
//   * task inlining depth (the Sec. V-E future-work extension),
// at a fixed small task size where management overhead dominates.
//
//   ./bench_ablation_runtime [--height=N] [--threads=N] [--cycles=N]
#include <cstdio>

#include "bench_common.hpp"
#include "common/busy_wait.hpp"
#include "common/cycle_clock.hpp"
#include "ttg/ttg.hpp"

namespace {

double run_tree(const ttg::Config& rt, int height, std::uint64_t cycles) {
  ttg::World world(rt);
  ttg::Edge<int, ttg::Void> e("tree");
  const int num_nodes = (1 << (height + 1)) - 1;
  auto tt = ttg::make_tt<int>(
      [num_nodes, cycles](const int& k, const ttg::Void&, auto& outs) {
        ttg::busy_wait_cycles(cycles);
        const int left = 2 * k + 1;
        if (left + 1 < num_nodes) {
          ttg::sendk<0>(left, outs);
          ttg::sendk<0>(left + 1, outs);
        }
      },
      ttg::edges(e), ttg::edges(e), "node", world);
  world.execute();  // warm-up
  tt->sendk_input<0>(num_nodes - 2);
  world.fence();
  world.execute();
  ttg::WallTimer timer;
  tt->sendk_input<0>(0);
  world.fence();
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::TraceCapture trace_capture(args);
  const int height = static_cast<int>(args.get_int("height", 14));
  const int threads = static_cast<int>(
      args.get_int("threads", bench::default_max_threads()));
  const std::uint64_t cycles =
      static_cast<std::uint64_t>(args.get_int("cycles", 500));
  const int tasks = (1 << (height + 1)) - 1;

  std::printf("# Runtime ablations: binary tree height %d (%d tasks), "
              "%llu-cycle tasks, %d threads\n",
              height, tasks, static_cast<unsigned long long>(cycles),
              threads);
  std::printf("variant,seconds,ns_per_task\n");

  auto report = [&](const char* name, const ttg::Config& rt) {
    const double s = run_tree(rt, height, cycles);
    std::printf("%s,%.4f,%.1f\n", name, s, s / tasks * 1e9);
  };

  // Scheduler sweep (all else optimized, bundling on).
  for (auto sched :
       {ttg::SchedulerType::kLFQ, ttg::SchedulerType::kLL,
        ttg::SchedulerType::kLLP, ttg::SchedulerType::kGD,
        ttg::SchedulerType::kAP}) {
    ttg::Config rt = ttg::Config::optimized();
    rt.num_threads = threads;
    rt.scheduler = sched;
    report(("sched_" + std::string(ttg::to_string(sched))).c_str(), rt);
  }

  // Bundling off.
  {
    ttg::Config rt = ttg::Config::optimized();
    rt.num_threads = threads;
    rt.bundle_successors = false;
    report("llp_no_bundling", rt);
  }

  // Inlining depths.
  for (int depth : {1, 8, 64}) {
    ttg::Config rt = ttg::Config::optimized();
    rt.num_threads = threads;
    rt.inline_max_depth = depth;
    report(("llp_inline_" + std::to_string(depth)).c_str(), rt);
  }

  // Hierarchical steal domains (meaningful at higher thread counts).
  for (int dom : {2, 4}) {
    ttg::Config rt = ttg::Config::optimized();
    rt.num_threads = threads;
    rt.steal_domain_size = dom;
    report(("llp_steal_domain_" + std::to_string(dom)).c_str(), rt);
  }
  return 0;
}
