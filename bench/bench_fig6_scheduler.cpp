// Figure 6: LFQ vs LLP under pressure — a binary tree of tasks passing a
// single token from the root to the leaves, one input per task (so the
// hash table is bypassed and all pressure lands on the scheduler).
//
//  * overhead mode (Fig. 6a): relative overhead 100 * t_0 / t_c for task
//    durations c, per scheduler and thread count. Paper shape: LLP drops
//    below 1% near 40k cycles even at full thread count; LFQ stays high
//    because almost every schedule operation hits the global FIFO lock.
//  * speedup mode (Fig. 6b): speedup over 1 thread for task sizes
//    {0, 500, 10k, 100k} cycles. Paper shape: LLP near-linear for >= 10k
//    cycles, LFQ poor for all but the largest tasks.
//
//   ./bench_fig6_scheduler [--height=N] [--mode=overhead|speedup|both]
//                          [--max-threads=N] [--json-out=path]
//
// --json-out mirrors every CSV row into the JSON schema EXPERIMENTS.md
// documents; overhead rows with cycles==0 additionally report
// ns_per_task (t0/tasks), the metric CI's perf-smoke job gates.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "common/busy_wait.hpp"
#include "common/cycle_clock.hpp"
#include "ttg/ttg.hpp"

namespace {

/// Runs the binary-tree benchmark; returns seconds.
double run_tree(ttg::SchedulerType sched, int threads, int height,
                std::uint64_t cycles) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.scheduler = sched;
  cfg.num_threads = threads;
  ttg::World world(cfg);

  ttg::Edge<int, ttg::Void> e("tree");
  const int num_nodes = (1 << (height + 1)) - 1;
  auto tt = ttg::make_tt<int>(
      [num_nodes, cycles](const int& k, const ttg::Void&, auto& outs) {
        ttg::busy_wait_cycles(cycles);
        const int left = 2 * k + 1;
        if (left + 1 < num_nodes) {
          ttg::sendk<0>(left, outs);
          ttg::sendk<0>(left + 1, outs);
        }
      },
      ttg::edges(e), ttg::edges(e), "node", world);

  // Warm-up epoch populates the task pools.
  world.execute();
  tt->sendk_input<0>(num_nodes - 2);
  world.fence();

  world.execute();
  ttg::WallTimer timer;
  tt->sendk_input<0>(0);
  world.fence();
  return timer.seconds();
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchCommon common(argc, argv, "fig6_scheduler");
  const bench::Args& args = common.args;
  const int height = static_cast<int>(
      args.get_int("height", args.has_flag("paper") ? 22 : 15));
  const int max_threads = static_cast<int>(
      args.get_int("max-threads", bench::default_max_threads()));
  const std::string mode = args.get_string("mode", "both");
  const int num_tasks = (1 << (height + 1)) - 1;

  common.json.config("mode", mode);
  common.json.config("height", static_cast<std::int64_t>(height));
  common.json.config("max_threads", static_cast<std::int64_t>(max_threads));
  common.json.config("tasks", static_cast<std::int64_t>(num_tasks));

  const ttg::SchedulerType scheds[] = {ttg::SchedulerType::kLFQ,
                                       ttg::SchedulerType::kLLP};

  if (mode == "overhead" || mode == "both") {
    std::printf("# Figure 6a: relative overhead [%%] (tree height %d, %d "
                "tasks)\n",
                height, num_tasks);
    std::printf("scheduler,threads,cycles,seconds,overhead_pct\n");
    const std::uint64_t durations[] = {0,     1000,  5000,  10000, 20000,
                                       40000, 60000, 80000, 100000};
    for (auto sched : scheds) {
      for (int t : bench::thread_sweep(max_threads)) {
        const double t0 = run_tree(sched, t, height, 0);
        for (std::uint64_t c : durations) {
          const double tc = c == 0 ? t0 : run_tree(sched, t, height, c);
          std::printf("%s,%d,%llu,%.4f,%.3f\n",
                      std::string(ttg::to_string(sched)).c_str(), t,
                      static_cast<unsigned long long>(c), tc,
                      100.0 * t0 / tc);
          common.json.row();
          common.json.field("mode", std::string("overhead"));
          common.json.field("sched", std::string(ttg::to_string(sched)));
          common.json.field("threads", static_cast<std::int64_t>(t));
          common.json.field("cycles", static_cast<std::int64_t>(c));
          common.json.field("seconds", tc);
          common.json.field("overhead_pct", 100.0 * t0 / tc);
          if (c == 0) {
            common.json.field("ns_per_task", t0 / num_tasks * 1e9);
          }
        }
      }
    }
  }

  if (mode == "speedup" || mode == "both") {
    std::printf("# Figure 6b: speedup over 1 thread\n");
    std::printf("scheduler,cycles,threads,seconds,speedup\n");
    const std::uint64_t durations[] = {0, 500, 10000, 100000};
    for (auto sched : scheds) {
      for (std::uint64_t c : durations) {
        const double t1 = run_tree(sched, 1, height, c);
        for (int t : bench::thread_sweep(max_threads)) {
          const double tc = t == 1 ? t1 : run_tree(sched, t, height, c);
          std::printf("%s,%llu,%d,%.4f,%.2f\n",
                      std::string(ttg::to_string(sched)).c_str(),
                      static_cast<unsigned long long>(c), t, tc, t1 / tc);
          common.json.row();
          common.json.field("mode", std::string("speedup"));
          common.json.field("sched", std::string(ttg::to_string(sched)));
          common.json.field("cycles", static_cast<std::int64_t>(c));
          common.json.field("threads", static_cast<std::int64_t>(t));
          common.json.field("seconds", tc);
          common.json.field("speedup", t1 / tc);
        }
      }
    }
  }
  return 0;
}
