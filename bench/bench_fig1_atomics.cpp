// Figure 1: per-operation latency of atomic increments on contended and
// uncontended (thread-local) variables, with seq_cst and relaxed
// ordering.
//
// Series match the paper's plot: a shared counter all threads hammer
// (contended), one counter per thread on its own cache line
// (thread-local), and the relaxed-ordering thread-local variant. The
// expected shape: contended latency grows ~linearly with threads,
// uncontended stays flat.
//
//   ./bench_fig1_atomics [--max-threads=N] [--ops=N]
#include <atomic>
#include <barrier>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "common/cache.hpp"
#include "common/cycle_clock.hpp"

namespace {

enum class Mode { kContended, kThreadLocal, kThreadLocalRelaxed };

double run_case(Mode mode, int nthreads, std::int64_t ops_per_thread) {
  alignas(ttg::kCacheLineSize) static std::atomic<std::uint64_t> shared{0};
  std::vector<ttg::CachePadded<std::atomic<std::uint64_t>>> locals(
      static_cast<std::size_t>(nthreads));
  shared.store(0);

  std::barrier sync(nthreads + 1);
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      std::atomic<std::uint64_t>& target =
          mode == Mode::kContended ? shared : locals[t].value;
      const std::memory_order order = mode == Mode::kThreadLocalRelaxed
                                          ? std::memory_order_relaxed
                                          : std::memory_order_seq_cst;
      sync.arrive_and_wait();
      for (std::int64_t i = 0; i < ops_per_thread; ++i) {
        target.fetch_add(1, order);
      }
      sync.arrive_and_wait();
    });
  }
  sync.arrive_and_wait();
  ttg::WallTimer timer;
  sync.arrive_and_wait();
  const double seconds = timer.seconds();
  for (auto& t : threads) t.join();
  return seconds / static_cast<double>(ops_per_thread) * 1e9;  // ns/op
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::TraceCapture trace_capture(args);
  const int max_threads = static_cast<int>(
      args.get_int("max-threads", bench::default_max_threads()));
  const std::int64_t ops = args.get_int("ops", 2000000);

  std::printf("# Figure 1: atomic increment latency (ns/op)\n");
  std::printf("threads,contended_seqcst,threadlocal_seqcst,"
              "threadlocal_relaxed\n");
  for (int t : bench::thread_sweep(max_threads)) {
    const double contended = run_case(Mode::kContended, t, ops);
    const double local = run_case(Mode::kThreadLocal, t, ops);
    const double relaxed = run_case(Mode::kThreadLocalRelaxed, t, ops);
    std::printf("%d,%.2f,%.2f,%.2f\n", t, contended, local, relaxed);
  }
  return 0;
}
