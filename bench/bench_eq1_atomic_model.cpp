// Equation (1): measured atomic RMW operations per task vs the paper's
// model N_A = (N_ID + N_RC + N_HB) * N_i + N_OD + N_S = 4 * N_i + 4,
// using the runtime's per-category accounting on a serial chain whose
// tasks move (reuse) their N_i inputs.
//
//   ./bench_eq1_atomic_model [--tasks=N]
#include <cstdio>
#include <tuple>
#include <utility>

#include "atomics/op_counter.hpp"
#include "bench_common.hpp"
#include "ttg/ttg.hpp"

namespace {

template <std::size_t NFlows>
ttg::AtomicOpSnapshot run_chain(int tasks) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 1;
  ttg::World world(cfg);
  auto edge_tuple = [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    return std::make_tuple(
        ttg::Edge<int, std::uint64_t>("flow" + std::to_string(Is))...);
  }(std::make_index_sequence<NFlows>{});

  auto body = [tasks](const int& k, auto&... rest) {
    auto& outs = std::get<sizeof...(rest) - 1>(std::tie(rest...));
    if (k < tasks) {
      [&]<std::size_t... Is>(std::index_sequence<Is...>) {
        auto vals = std::tie(rest...);
        (ttg::send<Is>(k + 1, std::move(std::get<Is>(vals)), outs), ...);
      }(std::make_index_sequence<NFlows>{});
    }
  };
  auto tt = std::apply(
      [&](auto&... edges) {
        return ttg::make_tt<int>(body, ttg::edges(edges...),
                                 ttg::edges(edges...), "chain", world);
      },
      edge_tuple);

  auto seed = [&] {
    [&]<std::size_t... Is>(std::index_sequence<Is...>) {
      (tt->template send_input<Is>(0, std::uint64_t{Is}), ...);
    }(std::make_index_sequence<NFlows>{});
  };
  world.execute();
  seed();
  world.fence();  // warm-up epoch
  world.execute();
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  seed();
  world.fence();
  ttg::atomic_ops::set_enabled(false);
  return ttg::atomic_ops::snapshot();
}

void report(int n_inputs, const ttg::AtomicOpSnapshot& snap, int tasks) {
  using C = ttg::AtomicOpCategory;
  const double t = tasks + 1;
  const double n_id = static_cast<double>(snap[C::kInputCount]) / t;
  const double n_hb = static_cast<double>(snap[C::kBucketLock]) / t;
  const double n_rc = static_cast<double>(snap[C::kRefCount]) / t;
  const double n_od = static_cast<double>(snap[C::kMemPool]) / t;
  const double n_s = static_cast<double>(snap[C::kScheduler]) / t;
  const double measured = n_id + n_hb + n_rc + n_od + n_s;
  const double model = n_inputs >= 2 ? 4.0 * n_inputs + 4.0
                                     : 2.0 + 2.0 + 2.0;  // single input
  std::printf("%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.2f,%.0f\n", n_inputs, n_id,
              n_hb, n_rc, n_od, n_s, measured, model);
}

}  // namespace

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::TraceCapture trace_capture(args);
  const int tasks = static_cast<int>(args.get_int("tasks", 50000));

  std::printf("# Equation (1): measured atomic RMW per task (move/reuse "
              "chain of %d tasks)\n",
              tasks);
  std::printf("# model: per input 1 input-count + 1 bucket-lock + 2 "
              "refcount; plus 2 mempool + 2 scheduler\n");
  std::printf(
      "n_inputs,input_count,bucket_lock,refcount,mempool,scheduler,"
      "measured_total,model_total\n");
  report(1, run_chain<1>(tasks), tasks);
  report(2, run_chain<2>(tasks), tasks);
  report(3, run_chain<3>(tasks), tasks);
  report(4, run_chain<4>(tasks), tasks);
  report(5, run_chain<5>(tasks), tasks);
  report(6, run_chain<6>(tasks), tasks);
  return 0;
}
