// Equation (1): measured atomic RMW operations per task vs the paper's
// model N_A = (N_ID + N_RC + N_HB) * N_i + N_OD + N_S = 4 * N_i + 4,
// using the runtime's per-category accounting on a serial chain whose
// tasks move (reuse) their N_i inputs.
//
// With --replay the same chains are recorded once and re-measured on the
// compiled-epoch replay path, whose model drops every term except the
// join counter: N_A = N_ID * N_i = 1 * N_i. The join counter's one
// fetch_sub per input is counted in the input-count category; tail
// chaining (SubmitHint::kTailChain) hands each ready successor straight
// to the executing worker (no scheduler push/pop), and the replay
// ownership transfer hands a uniquely-held moved input to its sole
// recorded consumer outright (no retain/release pair, no pool churn).
//
// The census must stay exact with the NUMA pool return path and the
// delegated pending table enabled (--pending=delegated --numa=1): all
// new fast-path guards are plain loads, the try_lock of an uncontended
// bucket costs the same single RMW as the spinning lock, and this bench
// is single-threaded, so the contended-only paths (publication CAS,
// drain exchange, inbox pop) never execute.
//
// With --coroutine two suspendable-body series are added: a move chain
// whose tasks co_await ttg::yield S times (each yield re-enters the
// scheduler: +2 kScheduler, zero kSuspend), and a parallel fan whose
// tasks park once on the timer wheel (one rendezvous: +2 kSuspend for
// the park/claim pair, +2 kScheduler for the resumed continuation).
//
//   ./bench_eq1_atomic_model [--tasks=N] [--replay] [--coroutine]
//                            [--pending=delegated|bucketlock]
//                            [--numa=0|1] [--json-out=path]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <tuple>
#include <utility>

#include "atomics/op_counter.hpp"
#include "bench_common.hpp"
#include "ttg/ttg.hpp"

namespace {

/// Builds the NFlows-wide move chain, then hands (world, seed) to the
/// measurement callback — shared between the dynamic and replay runs.
template <std::size_t NFlows, typename Fn>
ttg::AtomicOpSnapshot with_chain(int tasks, Fn&& measure) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 1;
  ttg::World world(cfg);
  auto edge_tuple = [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    return std::make_tuple(
        ttg::Edge<int, std::uint64_t>("flow" + std::to_string(Is))...);
  }(std::make_index_sequence<NFlows>{});

  auto body = [tasks](const int& k, auto&... rest) {
    auto& outs = std::get<sizeof...(rest) - 1>(std::tie(rest...));
    if (k < tasks) {
      [&]<std::size_t... Is>(std::index_sequence<Is...>) {
        auto vals = std::tie(rest...);
        (ttg::send<Is>(k + 1, std::move(std::get<Is>(vals)), outs), ...);
      }(std::make_index_sequence<NFlows>{});
    }
  };
  auto tt = std::apply(
      [&](auto&... edges) {
        return ttg::make_tt<int>(body, ttg::edges(edges...),
                                 ttg::edges(edges...), "chain", world);
      },
      edge_tuple);

  auto seed = [&] {
    [&]<std::size_t... Is>(std::index_sequence<Is...>) {
      (tt->template send_input<Is>(0, std::uint64_t{Is}), ...);
    }(std::make_index_sequence<NFlows>{});
  };
  return measure(world, seed);
}

template <std::size_t NFlows>
ttg::AtomicOpSnapshot run_chain(int tasks) {
  return with_chain<NFlows>(tasks, [](ttg::World& world, auto& seed) {
    world.execute();
    seed();
    world.fence();  // warm-up epoch
    world.execute();
    ttg::atomic_ops::set_enabled(true);
    ttg::atomic_ops::reset();
    seed();
    world.fence();
    ttg::atomic_ops::set_enabled(false);
    return ttg::atomic_ops::snapshot();
  });
}

template <std::size_t NFlows>
ttg::AtomicOpSnapshot run_chain_replay(int tasks) {
  return with_chain<NFlows>(tasks, [](ttg::World& world, auto& seed) {
    world.begin_recording();
    seed();
    world.fence();
    ttg::ReplayInstance instance(world.end_recording());
    world.execute_replay(instance);  // warm-up replay epoch
    seed();
    world.fence();
    world.execute_replay(instance);
    ttg::atomic_ops::set_enabled(true);
    ttg::atomic_ops::reset();
    seed();
    world.fence();
    ttg::atomic_ops::set_enabled(false);
    return ttg::atomic_ops::snapshot();
  });
}

/// Move chain whose suspendable bodies co_await ttg::yield `yields`
/// times before forwarding their inputs. No rendezvous: every yield is
/// +2 kScheduler (the continuation's push + pop) and zero kSuspend.
template <std::size_t NFlows>
ttg::AtomicOpSnapshot run_chain_coro_yield(int tasks, int yields) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 1;
  ttg::World world(cfg);
  auto edge_tuple = [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    return std::make_tuple(
        ttg::Edge<int, std::uint64_t>("cflow" + std::to_string(Is))...);
  }(std::make_index_sequence<NFlows>{});

  auto body = [tasks, yields](const int& k,
                              auto&... rest) -> ttg::resumable {
    for (int y = 0; y < yields; ++y) co_await ttg::yield{};
    auto& outs = std::get<sizeof...(rest) - 1>(std::tie(rest...));
    if (k < tasks) {
      [&]<std::size_t... Is>(std::index_sequence<Is...>) {
        auto vals = std::tie(rest...);
        (ttg::send<Is>(k + 1, std::move(std::get<Is>(vals)), outs), ...);
      }(std::make_index_sequence<NFlows>{});
    }
    co_return;
  };
  auto tt = std::apply(
      [&](auto&... edges) {
        return ttg::make_tt<int>(body, ttg::edges(edges...),
                                 ttg::edges(edges...), "cchain", world);
      },
      edge_tuple);
  auto seed = [&] {
    [&]<std::size_t... Is>(std::index_sequence<Is...>) {
      (tt->template send_input<Is>(0, std::uint64_t{Is}), ...);
    }(std::make_index_sequence<NFlows>{});
  };

  world.execute();
  seed();
  world.fence();  // warm-up epoch
  world.execute();
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  seed();
  world.fence();
  ttg::atomic_ops::set_enabled(false);
  return ttg::atomic_ops::snapshot();
}

/// Parallel fan of single-input suspendable tasks that each park once
/// on the timer wheel. One rendezvous per task: +2 kSuspend (park
/// publication + expiry claim) and +2 kScheduler for the continuation.
ttg::AtomicOpSnapshot run_fan_coro_timer(int tasks) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 1;
  ttg::World world(cfg);
  ttg::Edge<int, std::uint64_t> e("fan");
  auto tt = ttg::make_tt<int>(
      [](const int&, std::uint64_t&, auto&) -> ttg::resumable {
        co_await ttg::suspend_for(std::chrono::milliseconds(2));
        co_return;
      },
      ttg::edges(e), ttg::edges(), "sleepfan", world);

  world.execute();
  for (int k = 0; k < tasks; ++k) {
    tt->send_input<0>(k, static_cast<std::uint64_t>(k));
  }
  world.fence();  // warm-up epoch
  world.execute();
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  for (int k = 0; k < tasks; ++k) {
    tt->send_input<0>(k, static_cast<std::uint64_t>(k));
  }
  world.fence();
  ttg::atomic_ops::set_enabled(false);
  return ttg::atomic_ops::snapshot();
}

// `model_extra` is the per-task surcharge of a suspendable series on
// top of the base Eq. (1) cost (2 kScheduler per yield; 2 kSuspend +
// 2 kScheduler per timer/gate rendezvous); 0 for plain series.
void report(int n_inputs, const char* series,
            const ttg::AtomicOpSnapshot& snap, int tasks,
            bench::JsonReport& json, double model_extra = 0.0) {
  using C = ttg::AtomicOpCategory;
  const bool replay = std::strcmp(series, "replay") == 0;
  const double t = tasks + 1;
  const double n_id = static_cast<double>(snap[C::kInputCount]) / t;
  const double n_hb = static_cast<double>(snap[C::kBucketLock]) / t;
  const double n_rc = static_cast<double>(snap[C::kRefCount]) / t;
  const double n_od = static_cast<double>(snap[C::kMemPool]) / t;
  const double n_s = static_cast<double>(snap[C::kScheduler]) / t;
  const double n_susp = static_cast<double>(snap[C::kSuspend]) / t;
  const double measured = n_id + n_hb + n_rc + n_od + n_s + n_susp;
  const double base =
      replay ? 1.0 * n_inputs
             : (n_inputs >= 2 ? 4.0 * n_inputs + 4.0
                              : 2.0 + 2.0 + 2.0);  // single input
  const double model = base + model_extra;
  std::printf("%s,%d,%.3f,%.3f,%.3f,%.3f,%.3f,%.3f,%.2f,%.0f\n", series,
              n_inputs, n_id, n_hb, n_rc, n_od, n_s, n_susp, measured,
              model);
  json.row();
  json.field("series", series);
  json.field("n_inputs", static_cast<std::int64_t>(n_inputs));
  json.field("input_count_per_task", n_id);
  json.field("bucket_lock_per_task", n_hb);
  json.field("refcount_per_task", n_rc);
  json.field("mempool_per_task", n_od);
  json.field("scheduler_per_task", n_s);
  json.field("suspend_per_task", n_susp);
  json.field("measured_total", measured);
  json.field("model_total", model);
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchCommon common(argc, argv, "eq1_atomic_model");
  const bench::Args& args = common.args;
  const int tasks = static_cast<int>(args.get_int("tasks", 50000));
  const bool replay = args.has_flag("replay");
  const bool coroutine = args.has_flag("coroutine");
  const std::string pending = args.get_string("pending", "");
  if (!pending.empty()) setenv("TTG_PENDING_TABLE", pending.c_str(), 1);
  const std::string numa = args.get_string("numa", "");
  if (!numa.empty()) setenv("TTG_NUMA_POOLS", numa.c_str(), 1);
  common.json.config("tasks", static_cast<std::int64_t>(tasks));
  if (!pending.empty()) common.json.config("pending", pending);

  std::printf("# Equation (1): measured atomic RMW per task (move/reuse "
              "chain of %d tasks)\n",
              tasks);
  std::printf("# dynamic model: per input 1 input-count + 1 bucket-lock "
              "+ 2 refcount; plus 2 mempool + 2 scheduler\n");
  std::printf("# replay model: per input 1 join-decrement; no refcounts "
              "(ownership transfer), no buckets, no pool, no scheduler\n");
  std::printf("# coroutine model: +2 scheduler per yield; +2 suspend "
              "+2 scheduler per timer/gate rendezvous\n");
  std::printf(
      "series,n_inputs,input_count,bucket_lock,refcount,mempool,"
      "scheduler,suspend,measured_total,model_total\n");
  report(1, "dynamic", run_chain<1>(tasks), tasks, common.json);
  report(2, "dynamic", run_chain<2>(tasks), tasks, common.json);
  report(3, "dynamic", run_chain<3>(tasks), tasks, common.json);
  report(4, "dynamic", run_chain<4>(tasks), tasks, common.json);
  report(5, "dynamic", run_chain<5>(tasks), tasks, common.json);
  report(6, "dynamic", run_chain<6>(tasks), tasks, common.json);
  if (replay) {
    report(1, "replay", run_chain_replay<1>(tasks), tasks, common.json);
    report(2, "replay", run_chain_replay<2>(tasks), tasks, common.json);
    report(3, "replay", run_chain_replay<3>(tasks), tasks, common.json);
    report(4, "replay", run_chain_replay<4>(tasks), tasks, common.json);
    report(5, "replay", run_chain_replay<5>(tasks), tasks, common.json);
    report(6, "replay", run_chain_replay<6>(tasks), tasks, common.json);
  }
  if (coroutine) {
    constexpr int kYields = 4;
    report(1, "coro-yield", run_chain_coro_yield<1>(tasks, kYields),
           tasks, common.json, 2.0 * kYields);
    report(2, "coro-yield", run_chain_coro_yield<2>(tasks, kYields),
           tasks, common.json, 2.0 * kYields);
    report(4, "coro-yield", run_chain_coro_yield<4>(tasks, kYields),
           tasks, common.json, 2.0 * kYields);
    // All timer sleepers park together, so cap the fan; report() scales
    // per task, and tasks-1 compensates for its chain's +1 seed task.
    const int fan = tasks < 4096 ? tasks : 4096;
    report(1, "coro-timer", run_fan_coro_timer(fan), fan - 1,
           common.json, 2.0 + 2.0);
  }
  return 0;
}
