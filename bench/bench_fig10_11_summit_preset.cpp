// Figures 10 & 11: the Summit (Power9) runs of Task-Bench — the same
// harness as Figs. 7/8 "albeit with a reduced set of task granularities
// and variants" (paper Sec. V-D3), at 1 core (Fig. 10) and at the full
// socket's 22 threads (Fig. 11).
//
// This build runs on one machine, so the Summit figures map to a preset
// of the same benchmark: the reduced granularity set, 1 core and
// min(22, hardware) threads. The paper's shape on both machines is the
// same three groups: MPI fastest, TTG/PaRSEC/OpenMP-for in the middle,
// OpenMP tasks trailing.
//
//   ./bench_fig10_11_summit_preset [--threads=N] [--steps=N]
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "taskbench_sweep.hpp"

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::TraceCapture trace_capture(args);
  const int steps = static_cast<int>(args.get_int("steps", 100));
  // Summit nodes have 22 cores per socket.
  const int threads = static_cast<int>(args.get_int(
      "threads", std::min(22, bench::default_max_threads())));
  // The reduced granularity set of Figs. 10/11 (1e6 .. 1e3).
  const std::vector<std::uint64_t> flops = {1000000, 100000, 10000, 1000};

  std::printf("# Figure 10: Task-Bench 1D stencil, 1 core (Summit "
              "preset), steps=%d\n",
              steps);
  double baseline =
      bench::best_single_core_rate(flops.front(), /*width=*/1, steps);
  auto series = bench::run_taskbench_sweep(flops, /*width=*/1, steps, 1);
  bench::print_sweep(series, baseline, 1);

  std::printf("# Figure 11: Task-Bench 1D stencil, %d threads (Summit "
              "preset), steps=%d\n",
              threads, steps);
  baseline =
      bench::best_single_core_rate(flops.front(), threads, steps);
  series = bench::run_taskbench_sweep(flops, threads, steps, threads);
  bench::print_sweep(series, baseline, threads);
  return 0;
}
