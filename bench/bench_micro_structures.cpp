// Microbenchmarks of the runtime's building blocks (google-benchmark):
// the atomic LIFO, the bounded priority buffer, the global FIFO, the
// scalable hash table, the BRAVO vs plain reader-writer lock, the
// memory pool, the schedulers and the termination-detection modes.
// These are the component-level ablations behind the figure benches.
#include <benchmark/benchmark.h>

#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sched/scheduler.hpp"
#include "structures/bounded_buffer.hpp"
#include "structures/fifo.hpp"
#include "structures/hash_table.hpp"
#include "structures/lifo.hpp"
#include "structures/mempool.hpp"
#include "sync/bravo.hpp"
#include "sync/bucket_lock.hpp"
#include "sync/rwlock.hpp"
#include "termdet/termdet.hpp"

namespace {

struct Node : ttg::LifoNode {
  std::uint64_t payload = 0;
};

void BM_LifoPushPop(benchmark::State& state) {
  ttg::AtomicLifo lifo;
  Node node;
  for (auto _ : state) {
    lifo.push(&node);
    benchmark::DoNotOptimize(lifo.pop());
  }
}
BENCHMARK(BM_LifoPushPop);

void BM_LifoDetachAttach(benchmark::State& state) {
  ttg::AtomicLifo lifo;
  std::vector<Node> nodes(16);
  for (auto& n : nodes) lifo.push(&n);
  for (auto _ : state) {
    ttg::LifoNode* list = lifo.detach();
    lifo.attach(list);
  }
  while (lifo.pop() != nullptr) {
  }
}
BENCHMARK(BM_LifoDetachAttach);

void BM_BoundedBufferPushPop(benchmark::State& state) {
  ttg::BoundedPriorityBuffer<8> buf;
  Node node;
  node.priority = 1;
  for (auto _ : state) {
    buf.push(&node);
    benchmark::DoNotOptimize(buf.pop_best());
  }
}
BENCHMARK(BM_BoundedBufferPushPop);

void BM_GlobalFifoPushPop(benchmark::State& state) {
  ttg::LockedFifo fifo;
  Node node;
  for (auto _ : state) {
    fifo.push(&node);
    benchmark::DoNotOptimize(fifo.pop());
  }
}
BENCHMARK(BM_GlobalFifoPushPop);

void BM_BucketLock(benchmark::State& state) {
  ttg::BucketLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_BucketLock);

void BM_RWLockReader(benchmark::State& state) {
  ttg::RWSpinLock lock;
  for (auto _ : state) {
    lock.read_lock();
    lock.read_unlock();
  }
}
BENCHMARK(BM_RWLockReader);

void BM_BravoReaderFastPath(benchmark::State& state) {
  ttg::set_bravo_enabled(true);
  ttg::BravoRWLock<> lock(64);
  for (auto _ : state) {
    auto token = lock.read_lock();
    lock.read_unlock(token);
  }
}
BENCHMARK(BM_BravoReaderFastPath);

struct Item : ttg::HashItemBase {
  std::uint64_t key;
};

void BM_HashTableInsertFindRemove(benchmark::State& state) {
  ttg::ScalableHashTable table(8);
  Item item;
  item.key = 42;
  item.hash = 0xabcdef;
  const auto eq = [](const ttg::HashItemBase* it) {
    return static_cast<const Item*>(it)->key == 42;
  };
  for (auto _ : state) {
    {
      auto acc = table.lock_key(item.hash);
      acc.insert(&item);
    }
    {
      auto acc = table.lock_key(item.hash);
      benchmark::DoNotOptimize(acc.find(eq));
      acc.remove(eq);
    }
  }
}
BENCHMARK(BM_HashTableInsertFindRemove);

void BM_MemPoolAllocFree(benchmark::State& state) {
  ttg::MemoryPool pool(128);
  for (auto _ : state) {
    void* p = pool.allocate();
    benchmark::DoNotOptimize(p);
    pool.deallocate(p);
  }
}
BENCHMARK(BM_MemPoolAllocFree);

void BM_MallocFreeReference(benchmark::State& state) {
  for (auto _ : state) {
    void* p = std::malloc(128);
    benchmark::DoNotOptimize(p);
    std::free(p);
  }
}
BENCHMARK(BM_MallocFreeReference);

void BM_SchedulerPushPop(benchmark::State& state) {
  const auto type = static_cast<ttg::SchedulerType>(state.range(0));
  auto sched = ttg::make_scheduler(type, 1);
  Node node;
  node.priority = 1;
  for (auto _ : state) {
    sched->push(0, &node);
    benchmark::DoNotOptimize(sched->pop(0));
  }
  state.SetLabel(std::string(ttg::to_string(type)));
}
BENCHMARK(BM_SchedulerPushPop)
    ->Arg(static_cast<int>(ttg::SchedulerType::kLFQ))
    ->Arg(static_cast<int>(ttg::SchedulerType::kLL))
    ->Arg(static_cast<int>(ttg::SchedulerType::kLLP));

void BM_TermDetDiscoverComplete(benchmark::State& state) {
  const auto mode = state.range(0) == 0 ? ttg::TermDetMode::kProcessAtomic
                                        : ttg::TermDetMode::kThreadLocal;
  ttg::TerminationDetector det(1, mode);
  det.thread_attach(0);
  for (auto _ : state) {
    det.on_discovered();
    det.on_completed();
  }
  state.SetLabel(state.range(0) == 0 ? "process-atomic" : "thread-local");
}
BENCHMARK(BM_TermDetDiscoverComplete)->Arg(0)->Arg(1);

void BM_OrderingModes(benchmark::State& state) {
  // The cost of one lock/unlock cycle under seq_cst vs acquire/release
  // orderings (Sec. IV-A).
  ttg::set_ordering_mode(state.range(0) == 0 ? ttg::OrderingMode::kSeqCst
                                             : ttg::OrderingMode::kOptimized);
  ttg::BucketLock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
  ttg::set_ordering_mode(ttg::OrderingMode::kOptimized);
  state.SetLabel(state.range(0) == 0 ? "seq_cst" : "acq-rel");
}
BENCHMARK(BM_OrderingModes)->Arg(0)->Arg(1);

}  // namespace

// Hand-rolled BENCHMARK_MAIN: the --trace-* flags are ours, and
// google-benchmark rejects flags it does not know, so strip them before
// benchmark::Initialize sees the argument vector.
int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::TraceCapture trace_capture(args);
  std::vector<char*> bm_argv;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace-", 8) != 0) bm_argv.push_back(argv[i]);
  }
  int bm_argc = static_cast<int>(bm_argv.size());
  benchmark::Initialize(&bm_argc, bm_argv.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
