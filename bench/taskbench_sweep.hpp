// Shared sweep driver for the Task-Bench figures (7, 8, 10, 11).
//
// Runs every registered implementation over a flops-per-task sweep on
// the 1D stencil (the paper's configuration: one point per core, 1000
// timesteps) and prints, per x-point:
//   - average core time per task  (Figs. 7a/8a/10a/11a)
//   - efficiency vs the best single-core flops rate scaled by the
//     thread count (Figs. 7b/8b/10b/11b)
// plus a METG(50%) summary per implementation.
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "taskbench/taskbench.hpp"

namespace bench {

struct SweepPoint {
  std::uint64_t flops;
  double core_time_per_task;  // seconds
  double flops_rate;          // flops/s (aggregate)
  bool ok;
};

struct SweepSeries {
  std::string name;
  std::vector<SweepPoint> points;
};

/// One sweep point for one implementation: best-of-`repeats` wall time
/// (small-task points finish in well under a millisecond, so a single
/// run is at the mercy of frequency ramps and scheduler noise; the min
/// is the standard robust estimator for such microbenchmarks).
/// checksum_ok must hold on every repeat.
inline SweepPoint run_sweep_point(
    taskbench::RunResult (*run)(const taskbench::BenchConfig&, int),
    std::uint64_t flops, int width, int steps, int threads, int repeats) {
  taskbench::BenchConfig cfg;
  cfg.pattern = taskbench::Pattern::kStencil1D;
  cfg.width = width;
  cfg.steps = steps;
  cfg.iterations = taskbench::flops_to_iterations(flops);
  taskbench::RunResult best;
  bool ok = true;
  for (int i = 0; i < std::max(1, repeats); ++i) {
    const auto r = run(cfg, threads);
    ok = ok && r.checksum_ok;
    if (i == 0 || r.seconds < best.seconds) best = r;
  }
  SweepPoint p;
  p.flops = flops;
  p.core_time_per_task =
      best.seconds * threads / static_cast<double>(best.tasks);
  const double total_flops = static_cast<double>(
      cfg.iterations * taskbench::kFlopsPerIteration * best.tasks);
  p.flops_rate = best.seconds > 0 ? total_flops / best.seconds : 0;
  p.ok = ok;
  return p;
}

inline std::vector<SweepSeries> run_taskbench_sweep(
    const std::vector<std::uint64_t>& flops_list, int width, int steps,
    int threads, int repeats = 1) {
  std::vector<SweepSeries> series;
  for (const auto& impl : taskbench::implementations()) {
    SweepSeries s;
    s.name = impl.name;
    for (std::uint64_t flops : flops_list) {
      s.points.push_back(run_sweep_point(impl.run, flops, width, steps,
                                         threads, repeats));
    }
    series.push_back(std::move(s));
  }
  return series;
}

/// Sweeps one extra implementation (e.g. taskbench::run_ttg_replay,
/// which is deliberately not in implementations()) over the same flops
/// list so it can be appended to a run_taskbench_sweep() result.
inline SweepSeries run_taskbench_single(
    const std::string& name,
    taskbench::RunResult (*run)(const taskbench::BenchConfig&, int),
    const std::vector<std::uint64_t>& flops_list, int width, int steps,
    int threads, int repeats = 1) {
  SweepSeries s;
  s.name = name;
  for (std::uint64_t flops : flops_list) {
    s.points.push_back(
        run_sweep_point(run, flops, width, steps, threads, repeats));
  }
  return s;
}

/// Best single-core flops rate at the largest task size — the paper's
/// efficiency baseline ("the highest performance observed on a single
/// core").
inline double best_single_core_rate(std::uint64_t flops, int width,
                                    int steps) {
  double best = 0;
  for (const auto& impl : taskbench::implementations()) {
    taskbench::BenchConfig cfg;
    cfg.pattern = taskbench::Pattern::kStencil1D;
    cfg.width = width;
    cfg.steps = steps;
    cfg.iterations = taskbench::flops_to_iterations(flops);
    cfg.verify = false;
    const auto r = impl.run(cfg, 1);
    const double total_flops = static_cast<double>(
        cfg.iterations * taskbench::kFlopsPerIteration * r.tasks);
    if (r.seconds > 0) best = std::max(best, total_flops / r.seconds);
  }
  return best;
}

/// `row_threads`: also emit the thread count on every JSON row. Benches
/// that sweep thread counts (Fig. 8 at 64/96/128) need it as part of the
/// row identity so scripts/check_bench_regression.py gates each count
/// separately; single-count figures leave it off to keep their stored
/// baselines comparable.
inline void print_sweep(const std::vector<SweepSeries>& series,
                        double baseline_rate, int threads,
                        JsonReport* json = nullptr,
                        bool row_threads = false) {
  std::printf("impl,flops_per_task,core_time_per_task_s,efficiency_pct,"
              "checksum_ok\n");
  for (const auto& s : series) {
    for (const auto& p : s.points) {
      const double eff =
          baseline_rate > 0
              ? 100.0 * p.flops_rate / (baseline_rate * threads)
              : 0.0;
      std::printf("%s,%llu,%.3e,%.1f,%d\n", s.name.c_str(),
                  static_cast<unsigned long long>(p.flops),
                  p.core_time_per_task, eff, p.ok ? 1 : 0);
      if (json != nullptr) {
        json->row();
        json->field("impl", s.name);
        if (row_threads) {
          json->field("threads", static_cast<std::int64_t>(threads));
        }
        json->field("flops", static_cast<std::int64_t>(p.flops));
        json->field("core_time_per_task_s", p.core_time_per_task);
        json->field("efficiency_pct", eff);
        json->field("flops_rate", p.flops_rate);
        json->field("checksum_ok",
                    static_cast<std::int64_t>(p.ok ? 1 : 0));
      }
    }
  }
  // METG(50%): the smallest flops-per-task still reaching 50% efficiency.
  std::printf("# METG(50%%) per implementation (flops/task; - = never)\n");
  for (const auto& s : series) {
    std::uint64_t metg = 0;
    bool found = false;
    for (const auto& p : s.points) {
      const double eff =
          baseline_rate > 0
              ? 100.0 * p.flops_rate / (baseline_rate * threads)
              : 0.0;
      if (eff >= 50.0) {
        metg = p.flops;  // sweep is descending; keep the smallest
        found = true;
      }
    }
    if (found) {
      std::printf("# METG(50%%) %s = %llu\n", s.name.c_str(),
                  static_cast<unsigned long long>(metg));
    } else {
      std::printf("# METG(50%%) %s = -\n", s.name.c_str());
    }
  }
}

inline std::vector<std::uint64_t> default_flops_sweep(bool paper) {
  if (paper) {
    return {100000000, 10000000, 1000000, 100000, 10000, 1000, 100};
  }
  return {1000000, 100000, 10000, 1000, 100};
}

}  // namespace bench
