// Shared helpers for the figure-reproduction benches.
//
// Every bench binary runs with no arguments using scaled-down defaults
// (this is a single-core CI-sized environment) and accepts --key=value
// flags to reach the paper's full sizes; --paper selects the paper's
// parameters wholesale. Output is CSV-like series: one header line per
// plotted series and one row per x-point, so the figures can be
// regenerated directly from the captured stdout.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/trace.hpp"

namespace bench {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has_flag(const std::string& name) const {
    return find(name) != nullptr;
  }

  std::int64_t get_int(const std::string& name, std::int64_t dflt) const {
    const char* v = find(name);
    return v != nullptr ? std::atoll(v) : dflt;
  }

  double get_double(const std::string& name, double dflt) const {
    const char* v = find(name);
    return v != nullptr ? std::atof(v) : dflt;
  }

  std::string get_string(const std::string& name,
                         const std::string& dflt) const {
    const char* v = find(name);
    return v != nullptr ? std::string(v) : dflt;
  }

 private:
  const char* find(const std::string& name) const {
    const std::string prefix = "--" + name;
    for (const auto& a : args_) {
      if (a == prefix) return "";  // bare flag
      if (a.rfind(prefix + "=", 0) == 0) {
        return a.c_str() + prefix.size() + 1;
      }
    }
    return nullptr;
  }

  std::vector<std::string> args_;
};

/// Thread counts to sweep: 1,2,4,...,max (always including max).
inline std::vector<int> thread_sweep(int max_threads) {
  std::vector<int> out;
  for (int t = 1; t < max_threads; t *= 2) out.push_back(t);
  out.push_back(max_threads);
  return out;
}

inline int default_max_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Opt-in tracing for any bench binary:
///
///   bench_figX --trace-out=run.json [--trace-capacity=65536]
///
/// Declared first thing in main(); when --trace-out is absent this is
/// inert (tracing stays disabled, zero overhead beyond one relaxed load
/// per would-be event). On destruction — i.e. after the bench finishes —
/// the capture stops and a Chrome/Perfetto-loadable trace is written to
/// the given path.
class TraceCapture {
 public:
  explicit TraceCapture(const Args& args)
      : path_(args.get_string("trace-out", "")) {
    if (path_.empty()) return;
    ttg::trace::Config config;
    config.events_per_thread = static_cast<std::size_t>(args.get_int(
        "trace-capacity",
        static_cast<std::int64_t>(config.events_per_thread)));
    session_.emplace(config);
  }

  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  ~TraceCapture() {
    if (!session_.has_value()) return;
    session_.reset();  // stop recording before exporting
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "trace-out: cannot open %s\n", path_.c_str());
      return;
    }
    ttg::trace::export_chrome_json(out);
    std::fprintf(stderr, "trace written to %s\n", path_.c_str());
  }

  bool active() const { return session_.has_value(); }

 private:
  std::string path_;
  std::optional<ttg::trace::Session> session_;
};

/// Opt-in machine-readable output for any bench binary:
///
///   bench_figX --json-out=run.json
///
/// Mirrors the stdout CSV rows into one JSON document
/// `{"bench": ..., "config": {...}, "rows": [{...}, ...]}` written on
/// destruction (see EXPERIMENTS.md, "Machine-readable bench output").
/// Inert without the flag — every method is a cheap no-op, so benches
/// call row()/field() unconditionally next to their printf rows.
/// scripts/check_bench_regression.py joins two such files row-by-row on
/// the non-measured keys and gates a measured metric.
class JsonReport {
 public:
  JsonReport(const Args& args, std::string bench_name)
      : path_(args.get_string("json-out", "")),
        bench_(std::move(bench_name)) {}

  JsonReport(const JsonReport&) = delete;
  JsonReport& operator=(const JsonReport&) = delete;

  ~JsonReport() {
    if (!active()) return;
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "json-out: cannot open %s\n", path_.c_str());
      return;
    }
    close_row();
    out << "{\n  \"bench\": \"" << escape(bench_) << "\",\n  \"config\": {";
    out << config_ << "},\n  \"rows\": [";
    out << rows_ << "\n  ]\n}\n";
    std::fprintf(stderr, "bench json written to %s\n", path_.c_str());
  }

  bool active() const { return !path_.empty(); }

  /// Records one --key=value of the parsed command line.
  void config(const std::string& key, const std::string& value) {
    if (active()) append(config_, key, quoted(value));
  }
  void config(const std::string& key, std::int64_t value) {
    if (active()) append(config_, key, std::to_string(value));
  }

  /// Starts a new output row; subsequent field() calls populate it.
  void row() {
    if (!active()) return;
    close_row();
    if (!rows_.empty()) rows_ += ',';
    rows_ += "\n    {";
    row_open_ = true;
    row_empty_ = true;
  }

  void field(const std::string& key, const std::string& value) {
    put(key, quoted(value));
  }
  void field(const std::string& key, std::int64_t value) {
    put(key, std::to_string(value));
  }
  void field(const std::string& key, double value) { put(key, number(value)); }

 private:
  static std::string escape(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (static_cast<unsigned char>(c) >= 0x20) out += c;
    }
    return out;
  }
  static std::string quoted(const std::string& s) {
    return "\"" + escape(s) + "\"";
  }
  static std::string number(double v) {
    if (!(v == v) || v > 1e300 || v < -1e300) return "null";  // non-finite
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.9g", v);
    return buf;
  }
  static void append(std::string& dst, const std::string& key,
                     const std::string& value) {
    if (!dst.empty()) dst += ", ";
    dst += quoted(key) + ": " + value;
  }
  void close_row() {
    if (row_open_) {
      rows_ += '}';
      row_open_ = false;
    }
  }
  void put(const std::string& key, const std::string& value) {
    if (!active() || !row_open_) return;
    if (!row_empty_) rows_ += ", ";
    rows_ += quoted(key) + ": " + value;
    row_empty_ = false;
  }

  std::string path_;
  std::string bench_;
  std::string config_;
  std::string rows_;
  bool row_open_ = false;
  bool row_empty_ = true;
};

/// The standard bench preamble: parsed args plus the two opt-in output
/// sinks (--trace-out Chrome trace, --json-out machine-readable rows).
/// Declare first thing in main(); both sinks flush on destruction.
struct BenchCommon {
  Args args;
  TraceCapture trace;
  JsonReport json;

  BenchCommon(int argc, char** argv, const std::string& bench_name)
      : args(argc, argv), trace(args), json(args, bench_name) {}
};

}  // namespace bench
