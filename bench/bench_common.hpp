// Shared helpers for the figure-reproduction benches.
//
// Every bench binary runs with no arguments using scaled-down defaults
// (this is a single-core CI-sized environment) and accepts --key=value
// flags to reach the paper's full sizes; --paper selects the paper's
// parameters wholesale. Output is CSV-like series: one header line per
// plotted series and one row per x-point, so the figures can be
// regenerated directly from the captured stdout.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "runtime/trace.hpp"

namespace bench {

class Args {
 public:
  Args(int argc, char** argv) {
    for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
  }

  bool has_flag(const std::string& name) const {
    return find(name) != nullptr;
  }

  std::int64_t get_int(const std::string& name, std::int64_t dflt) const {
    const char* v = find(name);
    return v != nullptr ? std::atoll(v) : dflt;
  }

  double get_double(const std::string& name, double dflt) const {
    const char* v = find(name);
    return v != nullptr ? std::atof(v) : dflt;
  }

  std::string get_string(const std::string& name,
                         const std::string& dflt) const {
    const char* v = find(name);
    return v != nullptr ? std::string(v) : dflt;
  }

 private:
  const char* find(const std::string& name) const {
    const std::string prefix = "--" + name;
    for (const auto& a : args_) {
      if (a == prefix) return "";  // bare flag
      if (a.rfind(prefix + "=", 0) == 0) {
        return a.c_str() + prefix.size() + 1;
      }
    }
    return nullptr;
  }

  std::vector<std::string> args_;
};

/// Thread counts to sweep: 1,2,4,...,max (always including max).
inline std::vector<int> thread_sweep(int max_threads) {
  std::vector<int> out;
  for (int t = 1; t < max_threads; t *= 2) out.push_back(t);
  out.push_back(max_threads);
  return out;
}

inline int default_max_threads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw > 0 ? static_cast<int>(hw) : 1;
}

/// Opt-in tracing for any bench binary:
///
///   bench_figX --trace-out=run.json [--trace-capacity=65536]
///
/// Declared first thing in main(); when --trace-out is absent this is
/// inert (tracing stays disabled, zero overhead beyond one relaxed load
/// per would-be event). On destruction — i.e. after the bench finishes —
/// the capture stops and a Chrome/Perfetto-loadable trace is written to
/// the given path.
class TraceCapture {
 public:
  explicit TraceCapture(const Args& args)
      : path_(args.get_string("trace-out", "")) {
    if (path_.empty()) return;
    ttg::trace::Config config;
    config.events_per_thread = static_cast<std::size_t>(args.get_int(
        "trace-capacity",
        static_cast<std::int64_t>(config.events_per_thread)));
    session_.emplace(config);
  }

  TraceCapture(const TraceCapture&) = delete;
  TraceCapture& operator=(const TraceCapture&) = delete;

  ~TraceCapture() {
    if (!session_.has_value()) return;
    session_.reset();  // stop recording before exporting
    std::ofstream out(path_);
    if (!out) {
      std::fprintf(stderr, "trace-out: cannot open %s\n", path_.c_str());
      return;
    }
    ttg::trace::export_chrome_json(out);
    std::fprintf(stderr, "trace written to %s\n", path_.c_str());
  }

  bool active() const { return session_.has_value(); }

 private:
  std::string path_;
  std::optional<ttg::trace::Session> session_;
};

}  // namespace bench
