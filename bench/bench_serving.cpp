// Serving benchmark: one shared Runtime engine pool, hundreds of
// concurrent tenant Worlds submitting fig5-style small graphs
// (docs/serving.md).
//
// Two series:
//
//  * "saturate" — closed-loop waves: every World's epoch is opened
//    (admitted + seeded + sealed) before any completion is collected,
//    so the peak in-flight count reaches --worlds by construction, then
//    the wave drains. Measures saturation throughput (graphs/s) and
//    per-graph completion latency under full occupancy.
//  * "poisson" — open-loop: graph arrivals follow a seeded Poisson
//    process at --rate-frac of the measured saturation throughput,
//    round-robin over the Worlds. Latency is measured from the
//    *scheduled* arrival (so queueing delay when all servers are busy
//    counts against the system, as in any open-loop serving benchmark).
//
// Worlds alternate dynamic and compiled-replay epochs under
// --mode=mixed (the default); each replay World records its chain once
// during setup. Per-graph latency percentiles (p50/p99) come from the
// collector's done() polling loop.
//
//   ./bench_serving [--workers=N] [--worlds=N] [--chain=N] [--rounds=N]
//                   [--mode=mixed|dynamic|replay] [--max-inflight=N]
//                   [--json-out=path]
//
// The committed baseline (BENCH_serving.json) and the CI perf-smoke
// gate use --workers=2 --worlds=256: 256 concurrent in-flight Worlds on
// two shared workers.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "ttg/ttg.hpp"

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

/// One tenant World serving a serial control-flow chain of `chain`
/// tasks (the fig5 zero-flow shape), dynamic or compiled-replay.
struct Server {
  std::unique_ptr<ttg::World> world;
  ttg::Edge<int, ttg::Void> edge{"ctl"};
  std::function<void()> seed;
  std::shared_ptr<void> tt;
  bool replay = false;
  std::unique_ptr<ttg::ReplayInstance> instance;

  ttg::Submission handle;
  bool open = false;
  Clock::time_point scheduled;  ///< arrival the latency clock starts at

  Server(ttg::Runtime& rt, int chain, bool use_replay, int index) {
    ttg::WorldOptions wo;
    wo.name = "srv" + std::to_string(index);
    world = rt.make_world(wo);
    std::shared_ptr node = ttg::make_tt<int>(
        [chain](const int& k, const ttg::Void&, auto& outs) {
          if (k + 1 < chain) ttg::sendk<0>(k + 1, outs);
        },
        ttg::edges(edge), ttg::edges(edge), "chain", *world);
    seed = [node] { node->template sendk_input<0>(0); };
    tt = node;
    replay = use_replay;
    if (replay) {
      world->begin_recording();
      seed();
      world->fence();
      auto tmpl = world->end_recording();
      if (tmpl == nullptr) {
        std::fprintf(stderr, "bench_serving: recording failed\n");
        std::exit(1);
      }
      instance = std::make_unique<ttg::ReplayInstance>(std::move(tmpl));
    }
  }

  /// Opens one epoch: admit + seed + seal. The caller is the (single)
  /// seeding thread — replay seeding uses thread-local state.
  void submit(Clock::time_point arrival) {
    handle = replay ? world->execute_replay(*instance) : world->execute();
    seed();
    world->seal_seeds();
    scheduled = arrival;
    open = true;
  }
};

struct LatencyStats {
  double p50_ms = 0, p99_ms = 0, mean_ms = 0;
};

LatencyStats percentiles(std::vector<double>& lat_ms) {
  LatencyStats s;
  if (lat_ms.empty()) return s;
  std::sort(lat_ms.begin(), lat_ms.end());
  auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(lat_ms.size() - 1) + 0.5);
    return lat_ms[idx];
  };
  s.p50_ms = at(0.50);
  s.p99_ms = at(0.99);
  double sum = 0;
  for (double v : lat_ms) sum += v;
  s.mean_ms = sum / static_cast<double>(lat_ms.size());
  return s;
}

struct SeriesResult {
  double seconds = 0;
  std::uint64_t graphs = 0;
  std::uint64_t shed = 0;
  int inflight_peak = 0;
  LatencyStats lat;
  double throughput_gps() const {
    return seconds > 0 ? static_cast<double>(graphs) / seconds : 0;
  }
};

/// Closed-loop waves: open every server's epoch, then collect the whole
/// wave while later completions are still draining.
SeriesResult run_saturate(std::vector<std::unique_ptr<Server>>& servers,
                          int rounds) {
  SeriesResult r;
  std::vector<double> lat_ms;
  lat_ms.reserve(servers.size() * static_cast<std::size_t>(rounds));
  const auto t0 = Clock::now();
  for (int round = 0; round < rounds; ++round) {
    for (auto& s : servers) s->submit(Clock::now());
    r.inflight_peak =
        std::max(r.inflight_peak, static_cast<int>(servers.size()));
    std::size_t remaining = servers.size();
    while (remaining > 0) {
      std::this_thread::yield();  // don't starve the shared workers
      for (auto& s : servers) {
        if (!s->open || !s->handle.done()) continue;
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      s->scheduled)
                .count();
        const ttg::Status st = s->handle.wait();
        s->open = false;
        --remaining;
        if (st.shed()) {
          ++r.shed;
        } else {
          lat_ms.push_back(ms);
          ++r.graphs;
        }
      }
    }
  }
  r.seconds = seconds_since(t0);
  r.lat = percentiles(lat_ms);
  return r;
}

/// Open-loop Poisson arrivals at `rate_gps`, round-robin over servers.
SeriesResult run_poisson(std::vector<std::unique_ptr<Server>>& servers,
                         std::uint64_t arrivals, double rate_gps,
                         std::uint64_t seed) {
  SeriesResult r;
  std::vector<double> lat_ms;
  lat_ms.reserve(arrivals);
  std::mt19937_64 rng(seed);
  std::exponential_distribution<double> interarrival(rate_gps);

  int inflight = 0;
  auto collect = [&](bool block_for, Server* target) {
    // Drain every completed epoch; when `block_for` is set, loop until
    // `target` in particular has been collected.
    for (;;) {
      bool target_open = false;
      for (auto& s : servers) {
        if (!s->open) continue;
        if (!s->handle.done()) {
          if (s.get() == target) target_open = true;
          continue;
        }
        const double ms =
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      s->scheduled)
                .count();
        const ttg::Status st = s->handle.wait();
        s->open = false;
        --inflight;
        if (st.shed()) {
          ++r.shed;
        } else {
          lat_ms.push_back(ms);
          ++r.graphs;
        }
      }
      if (!block_for || !target_open) return;
      std::this_thread::yield();
    }
  };

  const auto t0 = Clock::now();
  auto next_arrival = t0;
  for (std::uint64_t i = 0; i < arrivals; ++i) {
    next_arrival += std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double>(interarrival(rng)));
    while (Clock::now() < next_arrival) {
      collect(false, nullptr);
      std::this_thread::yield();
    }
    Server* s = servers[i % servers.size()].get();
    // The round-robin server may still be busy: wait for it (open-loop
    // queueing delay — the latency clock started at the arrival).
    if (s->open) collect(true, s);
    s->submit(next_arrival);
    inflight += 1;
    r.inflight_peak = std::max(r.inflight_peak, inflight);
  }
  for (auto& s : servers) {
    if (s->open) collect(true, s.get());
  }
  r.seconds = seconds_since(t0);
  r.lat = percentiles(lat_ms);
  return r;
}

void emit_row(bench::JsonReport& json, const char* series,
              const std::string& mode, int worlds, int workers, int chain,
              double rate_frac, double rate_gps, int chain_len_tasks,
              const SeriesResult& r) {
  std::printf(
      "%s mode=%s worlds=%d workers=%d chain=%d rate_frac=%.2f "
      "graphs=%llu gps=%.0f tasks/s=%.0f p50=%.3fms p99=%.3fms "
      "mean=%.3fms inflight_peak=%d shed=%llu\n",
      series, mode.c_str(), worlds, workers, chain, rate_frac,
      static_cast<unsigned long long>(r.graphs), r.throughput_gps(),
      r.throughput_gps() * chain_len_tasks, r.lat.p50_ms, r.lat.p99_ms,
      r.lat.mean_ms, r.inflight_peak,
      static_cast<unsigned long long>(r.shed));
  json.row();
  json.field("series", std::string(series));
  json.field("mode", mode);
  json.field("worlds", static_cast<std::int64_t>(worlds));
  json.field("workers", static_cast<std::int64_t>(workers));
  json.field("chain", static_cast<std::int64_t>(chain));
  json.field("rate_frac", rate_frac);
  json.field("rate_gps", rate_gps);
  json.field("graphs", static_cast<std::int64_t>(r.graphs));
  json.field("seconds", r.seconds);
  json.field("throughput_gps", r.throughput_gps());
  json.field("tasks_per_s", r.throughput_gps() * chain_len_tasks);
  json.field("p50_ms", r.lat.p50_ms);
  json.field("p99_ms", r.lat.p99_ms);
  json.field("mean_ms", r.lat.mean_ms);
  json.field("inflight_peak", static_cast<std::int64_t>(r.inflight_peak));
  json.field("shed", static_cast<std::int64_t>(r.shed));
}

}  // namespace

int main(int argc, char** argv) {
  bench::BenchCommon common(argc, argv, "serving");
  const int workers =
      static_cast<int>(common.args.get_int("workers", 2));
  const int worlds = static_cast<int>(common.args.get_int("worlds", 64));
  const int chain = static_cast<int>(common.args.get_int("chain", 16));
  const int rounds = static_cast<int>(common.args.get_int("rounds", 4));
  const std::string mode = common.args.get_string("mode", "mixed");
  const int max_inflight =
      static_cast<int>(common.args.get_int("max-inflight", worlds));
  const std::uint64_t seed =
      static_cast<std::uint64_t>(common.args.get_int("seed", 20260808));

  common.json.config("workers", static_cast<std::int64_t>(workers));
  common.json.config("worlds", static_cast<std::int64_t>(worlds));
  common.json.config("chain", static_cast<std::int64_t>(chain));
  common.json.config("rounds", static_cast<std::int64_t>(rounds));
  common.json.config("mode", mode);
  common.json.config("max_inflight", static_cast<std::int64_t>(max_inflight));

  ttg::RuntimeOptions opts;
  opts.config = ttg::Config::optimized();
  opts.config.num_threads = workers;
  opts.max_inflight_worlds = max_inflight;
  opts.admission = ttg::AdmissionPolicy::kShed;
  opts.name = "serving";
  ttg::Runtime rt(opts);

  std::vector<std::unique_ptr<Server>> servers;
  servers.reserve(static_cast<std::size_t>(worlds));
  for (int i = 0; i < worlds; ++i) {
    const bool replay =
        mode == "replay" || (mode == "mixed" && i % 2 == 0);
    servers.push_back(std::make_unique<Server>(rt, chain, replay, i));
  }

  // Warm-up wave (first-epoch costs: record instantiation, pool grow).
  (void)run_saturate(servers, 1);

  const SeriesResult sat = run_saturate(servers, rounds);
  emit_row(common.json, "saturate", mode, worlds, workers, chain,
           /*rate_frac=*/1.0, sat.throughput_gps(), chain, sat);

  const std::uint64_t arrivals =
      static_cast<std::uint64_t>(worlds) * static_cast<std::uint64_t>(rounds);
  for (double rate_frac : {0.5, 0.9}) {
    const double rate_gps = sat.throughput_gps() * rate_frac;
    if (rate_gps <= 0) break;
    const SeriesResult p =
        run_poisson(servers, arrivals, rate_gps, seed);
    emit_row(common.json, "poisson", mode, worlds, workers, chain,
             rate_frac, rate_gps, chain, p);
  }

  std::printf(
      "runtime: executed=%llu live_worlds=%d admission=%d/%d shed=%llu\n",
      static_cast<unsigned long long>(rt.total_tasks_executed()),
      rt.live_worlds(), rt.inflight_epochs(), rt.admission_limit(),
      static_cast<unsigned long long>(rt.epochs_shed()));
  return 0;
}
