// Figure 5: minimum task latency on a serial chain, for 0..6 data flows
// (TTG) / task dependencies (OpenMP) between consecutive tasks.
//
// Series: TTG (move), TTG (copy), TaskFlow-mini (control flow only, so
// a single x=0 point), and OpenMP task dependencies when available. The
// paper's shape: TTG control flow ~75ns beating OpenMP/TaskFlow >200ns;
// TTG latency grows with flows (hash table enters at 2 flows) and meets
// OpenMP around 4 flows.
//
// With --replay the TTG chains are additionally recorded once and
// re-run through the compiled-epoch replay path (GraphTemplate +
// pre-resolved successors), emitted as ttg_replay_move/ttg_replay_copy.
//
//   ./bench_fig5_task_latency [--tasks=N] [--replay] [--json-out=path]
#include <cstdio>
#include <tuple>
#include <utility>

#include "baselines/taskflow_mini.hpp"
#include "bench_common.hpp"
#include "common/cycle_clock.hpp"
#include "ttg/ttg.hpp"

#if defined(TTG_SMALLTASK_HAVE_OPENMP)
#include <omp.h>

#include <chrono>
#include <thread>
#endif

namespace {

ttg::Config serial_config() {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 1;
  return cfg;
}

/// TTG chain with zero flows: pure control flow along a Void edge.
/// `inline_depth` > 0 additionally exercises the task-inlining extension
/// (the paper's Sec. V-E future-work item). With `replay` the chain is
/// recorded into a GraphTemplate once, then the timed epoch re-runs the
/// compiled instance (pre-resolved successors, no hash table).
double run_ttg_chain0(int tasks, int inline_depth = 0,
                      bool replay = false) {
  ttg::Config cfg = serial_config();
  cfg.inline_max_depth = inline_depth;
  ttg::World world(cfg);
  ttg::Edge<int, ttg::Void> e("ctl");
  auto tt = ttg::make_tt<int>(
      [tasks](const int& k, const ttg::Void&, auto& outs) {
        if (k < tasks) ttg::sendk<0>(k + 1, outs);
      },
      ttg::edges(e), ttg::edges(e), "chain", world);
  if (replay) {
    world.begin_recording();
    tt->sendk_input<0>(0);
    world.fence();
    ttg::ReplayInstance instance(world.end_recording());
    world.execute_replay(instance);  // warm-up replay epoch
    tt->sendk_input<0>(0);
    world.fence();
    world.execute_replay(instance);
    ttg::WallTimer timer;
    tt->sendk_input<0>(0);
    world.fence();
    return timer.seconds() / tasks * 1e9;
  }
  world.execute();  // warm-up epoch
  tt->sendk_input<0>(tasks - 100 > 0 ? tasks - 100 : 0);
  world.fence();
  world.execute();
  ttg::WallTimer timer;
  tt->sendk_input<0>(0);
  world.fence();
  return timer.seconds() / tasks * 1e9;
}

template <std::size_t NFlows>
double run_ttg_chain(int tasks, bool move_data, bool replay = false) {
  ttg::World world(serial_config());
  auto edge_tuple = [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    return std::make_tuple(
        ttg::Edge<int, std::uint64_t>("flow" + std::to_string(Is))...);
  }(std::make_index_sequence<NFlows>{});

  auto body = [tasks, move_data](const int& k, auto&... rest) {
    auto& outs = std::get<sizeof...(rest) - 1>(std::tie(rest...));
    if (k < tasks) {
      [&]<std::size_t... Is>(std::index_sequence<Is...>) {
        auto vals = std::tie(rest...);
        if (move_data) {
          (ttg::send<Is>(k + 1, std::move(std::get<Is>(vals)), outs), ...);
        } else {
          (ttg::send<Is>(
               k + 1,
               static_cast<const std::uint64_t&>(std::get<Is>(vals)),
               outs),
           ...);
        }
      }(std::make_index_sequence<NFlows>{});
    }
  };
  auto tt = std::apply(
      [&](auto&... edges) {
        return ttg::make_tt<int>(body, ttg::edges(edges...),
                                 ttg::edges(edges...), "chain", world);
      },
      edge_tuple);

  auto seed = [&] {
    [&]<std::size_t... Is>(std::index_sequence<Is...>) {
      (tt->template send_input<Is>(0, std::uint64_t{Is}), ...);
    }(std::make_index_sequence<NFlows>{});
  };
  if (replay) {
    world.begin_recording();
    seed();
    world.fence();
    ttg::ReplayInstance instance(world.end_recording());
    world.execute_replay(instance);  // warm-up replay epoch
    seed();
    world.fence();
    world.execute_replay(instance);
    ttg::WallTimer timer;
    seed();
    world.fence();
    return timer.seconds() / tasks * 1e9;
  }
  world.execute();  // warm-up epoch (pools, hash table)
  seed();
  world.fence();
  world.execute();
  ttg::WallTimer timer;
  seed();
  world.fence();
  return timer.seconds() / tasks * 1e9;
}

double run_taskflow_chain(int tasks) {
  tfm::Taskflow flow;
  tfm::Task prev = flow.emplace([] {});
  for (int i = 1; i < tasks; ++i) {
    tfm::Task cur = flow.emplace([] {});
    prev.precede(cur);
    prev = cur;
  }
  tfm::Executor exec(1);
  ttg::WallTimer timer;
  exec.run(flow);
  return timer.seconds() / tasks * 1e9;
}

#if defined(TTG_SMALLTASK_HAVE_OPENMP)
double run_omp_chain(int tasks, int ndeps) {
  // The paper's trick: run 2 threads and block one so the OpenMP runtime
  // cannot inline tasks as it could with a single thread.
  double seconds = 0;
  omp_set_num_threads(2);
  volatile std::uint64_t sink = 0;
  static std::uint64_t d[6];
  (void)d;  // only named inside depend clauses
#pragma omp parallel
  {
#pragma omp single nowait
    {
      ttg::WallTimer timer;
      // Even the zero-flow point is a *serialized* chain of tasks (the
      // figure's x axis counts data flows, not ordering edges), so the
      // OpenMP variant always carries at least one inout dependence.
      for (int i = 0; i < tasks; ++i) {
        switch (ndeps) {
          case 0:
          case 1:
#pragma omp task depend(inout : d[0])
            { }
            break;
          case 2:
#pragma omp task depend(inout : d[0], d[1])
            { }
            break;
          case 3:
#pragma omp task depend(inout : d[0], d[1], d[2])
            { }
            break;
          case 4:
#pragma omp task depend(inout : d[0], d[1], d[2], d[3])
            { }
            break;
          case 5:
#pragma omp task depend(inout : d[0], d[1], d[2], d[3], d[4])
            { }
            break;
          default:
#pragma omp task depend(inout : d[0], d[1], d[2], d[3], d[4], d[5])
            { }
            break;
        }
      }
#pragma omp taskwait
      seconds = timer.seconds();
    }
    // The other thread parks briefly instead of helping, as in the paper.
    if (omp_get_thread_num() != 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
  (void)sink;
  return seconds / tasks * 1e9;
}
#endif

}  // namespace

int main(int argc, char** argv) {
  bench::BenchCommon common(argc, argv, "fig5_task_latency");
  const bench::Args& args = common.args;
  const int tasks = static_cast<int>(args.get_int("tasks", 200000));
  const bool replay = args.has_flag("replay");
  common.json.config("tasks", static_cast<std::int64_t>(tasks));
  // One JSON row per (flows, series) point so the regression gate can
  // join on {flows, series} and compare ns_per_task; unavailable series
  // (taskflow beyond x=0, OpenMP without the toolchain) emit no row.
  auto emit = [&common](int flows, const char* series, double ns) {
    if (ns < 0) return;
    common.json.row();
    common.json.field("flows", static_cast<std::int64_t>(flows));
    common.json.field("series", series);
    common.json.field("ns_per_task", ns);
  };

  std::printf("# Figure 5: task latency (ns/task), chain of %d tasks\n",
              tasks);
  std::printf("flows,ttg_move,ttg_copy,taskflow_mini,omp_taskdeps\n");
  std::printf("# extension: TTG control-flow chain with task inlining "
              "(depth 64): %.1f ns/task\n",
              run_ttg_chain0(tasks, 64));
  for (int flows = 0; flows <= 6; ++flows) {
    double ttg_move = 0, ttg_copy = 0;
    switch (flows) {
      case 0:
        ttg_move = ttg_copy = run_ttg_chain0(tasks);
        break;
      case 1:
        ttg_move = run_ttg_chain<1>(tasks, true);
        ttg_copy = run_ttg_chain<1>(tasks, false);
        break;
      case 2:
        ttg_move = run_ttg_chain<2>(tasks, true);
        ttg_copy = run_ttg_chain<2>(tasks, false);
        break;
      case 3:
        ttg_move = run_ttg_chain<3>(tasks, true);
        ttg_copy = run_ttg_chain<3>(tasks, false);
        break;
      case 4:
        ttg_move = run_ttg_chain<4>(tasks, true);
        ttg_copy = run_ttg_chain<4>(tasks, false);
        break;
      case 5:
        ttg_move = run_ttg_chain<5>(tasks, true);
        ttg_copy = run_ttg_chain<5>(tasks, false);
        break;
      default:
        ttg_move = run_ttg_chain<6>(tasks, true);
        ttg_copy = run_ttg_chain<6>(tasks, false);
        break;
    }
    const double tf = flows == 0 ? run_taskflow_chain(tasks) : -1;
#if defined(TTG_SMALLTASK_HAVE_OPENMP)
    const double omp = run_omp_chain(tasks, flows);
#else
    const double omp = -1;
#endif
    std::printf("%d,%.1f,%.1f,%.1f,%.1f\n", flows, ttg_move, ttg_copy, tf,
                omp);
    emit(flows, "ttg_move", ttg_move);
    emit(flows, "ttg_copy", ttg_copy);
    emit(flows, "taskflow_mini", tf);
    emit(flows, "omp_taskdeps", omp);
    if (replay) {
      double rep_move = 0, rep_copy = 0;
      switch (flows) {
        case 0:
          rep_move = rep_copy = run_ttg_chain0(tasks, 0, true);
          break;
        case 1:
          rep_move = run_ttg_chain<1>(tasks, true, true);
          rep_copy = run_ttg_chain<1>(tasks, false, true);
          break;
        case 2:
          rep_move = run_ttg_chain<2>(tasks, true, true);
          rep_copy = run_ttg_chain<2>(tasks, false, true);
          break;
        case 3:
          rep_move = run_ttg_chain<3>(tasks, true, true);
          rep_copy = run_ttg_chain<3>(tasks, false, true);
          break;
        case 4:
          rep_move = run_ttg_chain<4>(tasks, true, true);
          rep_copy = run_ttg_chain<4>(tasks, false, true);
          break;
        case 5:
          rep_move = run_ttg_chain<5>(tasks, true, true);
          rep_copy = run_ttg_chain<5>(tasks, false, true);
          break;
        default:
          rep_move = run_ttg_chain<6>(tasks, true, true);
          rep_copy = run_ttg_chain<6>(tasks, false, true);
          break;
      }
      std::printf("# replay %d,%.1f,%.1f\n", flows, rep_move, rep_copy);
      emit(flows, "ttg_replay_move", rep_move);
      emit(flows, "ttg_replay_copy", rep_copy);
    }
  }
  return 0;
}
