// Figure 9: breakdown of the individual optimizations on Task-Bench —
// four-counter (process-atomic) termination detection vs thread-local
// termination detection vs thread-local + biased reader-writer lock,
// all on the LLP scheduler at full thread count.
//
// Paper shape: each optimization peels off part of the small-task
// overhead; the combination is required for the best curve ("any
// bottleneck will inevitably limit scalability").
//
//   ./bench_fig9_ablation [--threads=N] [--steps=N] [--paper]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "taskbench_sweep.hpp"
#include "ttg/ttg.hpp"

int main(int argc, char** argv) {
  const bench::Args args(argc, argv);
  bench::TraceCapture trace_capture(args);
  const bool paper = args.has_flag("paper");
  const int threads = static_cast<int>(
      args.get_int("threads", bench::default_max_threads()));
  const int steps =
      static_cast<int>(args.get_int("steps", paper ? 1000 : 100));
  const int width = static_cast<int>(args.get_int("width", threads));
  const auto flops = bench::default_flops_sweep(paper);

  struct Variant {
    std::string name;
    ttg::Config cfg;
  };
  std::vector<Variant> variants;
  {
    // All variants use LLP + relaxed ordering so the plot isolates the
    // termination-detection and rwlock contributions, as in Fig. 9.
    ttg::Config base = ttg::Config::optimized();
    Variant four_counter{"fourcounter_termdet", base};
    four_counter.cfg.termdet = ttg::TermDetMode::kProcessAtomic;
    four_counter.cfg.biased_rwlock = false;
    Variant thread_local_td{"threadlocal_termdet", base};
    thread_local_td.cfg.biased_rwlock = false;
    Variant full{"threadlocal_termdet_biased_rwlock", base};
    variants = {four_counter, thread_local_td, full};
  }

  std::printf("# Figure 9: optimization breakdown, %d threads, width=%d "
              "steps=%d\n",
              threads, width, steps);
  std::printf("variant,flops_per_task,core_time_per_task_s,checksum_ok\n");
  for (const auto& v : variants) {
    for (std::uint64_t f : flops) {
      taskbench::BenchConfig cfg;
      cfg.pattern = taskbench::Pattern::kStencil1D;
      cfg.width = width;
      cfg.steps = steps;
      cfg.iterations = taskbench::flops_to_iterations(f);
      const auto r = taskbench::run_ttg_with(cfg, threads, v.cfg);
      std::printf("%s,%llu,%.3e,%d\n", v.name.c_str(),
                  static_cast<unsigned long long>(f),
                  r.seconds * threads / static_cast<double>(r.tasks),
                  r.checksum_ok ? 1 : 0);
    }
  }
  return 0;
}
