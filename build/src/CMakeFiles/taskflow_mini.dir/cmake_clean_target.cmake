file(REMOVE_RECURSE
  "libtaskflow_mini.a"
)
