file(REMOVE_RECURSE
  "CMakeFiles/taskflow_mini.dir/baselines/taskflow_mini.cpp.o"
  "CMakeFiles/taskflow_mini.dir/baselines/taskflow_mini.cpp.o.d"
  "libtaskflow_mini.a"
  "libtaskflow_mini.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskflow_mini.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
