# Empty compiler generated dependencies file for taskflow_mini.
# This may be replaced when dependencies are built.
