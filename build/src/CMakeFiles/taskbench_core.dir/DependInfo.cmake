
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/taskbench/harness.cpp" "src/CMakeFiles/taskbench_core.dir/taskbench/harness.cpp.o" "gcc" "src/CMakeFiles/taskbench_core.dir/taskbench/harness.cpp.o.d"
  "/root/repo/src/taskbench/impl_bsp.cpp" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_bsp.cpp.o" "gcc" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_bsp.cpp.o.d"
  "/root/repo/src/taskbench/impl_omp.cpp" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_omp.cpp.o" "gcc" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_omp.cpp.o.d"
  "/root/repo/src/taskbench/impl_ptg_dsl.cpp" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_ptg_dsl.cpp.o" "gcc" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_ptg_dsl.cpp.o.d"
  "/root/repo/src/taskbench/impl_raw.cpp" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_raw.cpp.o" "gcc" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_raw.cpp.o.d"
  "/root/repo/src/taskbench/impl_taskflow.cpp" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_taskflow.cpp.o" "gcc" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_taskflow.cpp.o.d"
  "/root/repo/src/taskbench/impl_ttg.cpp" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_ttg.cpp.o" "gcc" "src/CMakeFiles/taskbench_core.dir/taskbench/impl_ttg.cpp.o.d"
  "/root/repo/src/taskbench/kernel.cpp" "src/CMakeFiles/taskbench_core.dir/taskbench/kernel.cpp.o" "gcc" "src/CMakeFiles/taskbench_core.dir/taskbench/kernel.cpp.o.d"
  "/root/repo/src/taskbench/pattern.cpp" "src/CMakeFiles/taskbench_core.dir/taskbench/pattern.cpp.o" "gcc" "src/CMakeFiles/taskbench_core.dir/taskbench/pattern.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ttg_smalltask.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/bsp_exec.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/taskflow_mini.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
