file(REMOVE_RECURSE
  "CMakeFiles/taskbench_core.dir/taskbench/harness.cpp.o"
  "CMakeFiles/taskbench_core.dir/taskbench/harness.cpp.o.d"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_bsp.cpp.o"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_bsp.cpp.o.d"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_omp.cpp.o"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_omp.cpp.o.d"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_ptg_dsl.cpp.o"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_ptg_dsl.cpp.o.d"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_raw.cpp.o"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_raw.cpp.o.d"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_taskflow.cpp.o"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_taskflow.cpp.o.d"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_ttg.cpp.o"
  "CMakeFiles/taskbench_core.dir/taskbench/impl_ttg.cpp.o.d"
  "CMakeFiles/taskbench_core.dir/taskbench/kernel.cpp.o"
  "CMakeFiles/taskbench_core.dir/taskbench/kernel.cpp.o.d"
  "CMakeFiles/taskbench_core.dir/taskbench/pattern.cpp.o"
  "CMakeFiles/taskbench_core.dir/taskbench/pattern.cpp.o.d"
  "libtaskbench_core.a"
  "libtaskbench_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taskbench_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
