# Empty compiler generated dependencies file for taskbench_core.
# This may be replaced when dependencies are built.
