file(REMOVE_RECURSE
  "libtaskbench_core.a"
)
