# Empty dependencies file for mra.
# This may be replaced when dependencies are built.
