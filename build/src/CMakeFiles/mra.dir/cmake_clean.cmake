file(REMOVE_RECURSE
  "CMakeFiles/mra.dir/mra/gemm.cpp.o"
  "CMakeFiles/mra.dir/mra/gemm.cpp.o.d"
  "CMakeFiles/mra.dir/mra/legendre.cpp.o"
  "CMakeFiles/mra.dir/mra/legendre.cpp.o.d"
  "CMakeFiles/mra.dir/mra/mra_ops.cpp.o"
  "CMakeFiles/mra.dir/mra/mra_ops.cpp.o.d"
  "CMakeFiles/mra.dir/mra/twoscale.cpp.o"
  "CMakeFiles/mra.dir/mra/twoscale.cpp.o.d"
  "libmra.a"
  "libmra.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
