
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mra/gemm.cpp" "src/CMakeFiles/mra.dir/mra/gemm.cpp.o" "gcc" "src/CMakeFiles/mra.dir/mra/gemm.cpp.o.d"
  "/root/repo/src/mra/legendre.cpp" "src/CMakeFiles/mra.dir/mra/legendre.cpp.o" "gcc" "src/CMakeFiles/mra.dir/mra/legendre.cpp.o.d"
  "/root/repo/src/mra/mra_ops.cpp" "src/CMakeFiles/mra.dir/mra/mra_ops.cpp.o" "gcc" "src/CMakeFiles/mra.dir/mra/mra_ops.cpp.o.d"
  "/root/repo/src/mra/twoscale.cpp" "src/CMakeFiles/mra.dir/mra/twoscale.cpp.o" "gcc" "src/CMakeFiles/mra.dir/mra/twoscale.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/ttg_smalltask.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
