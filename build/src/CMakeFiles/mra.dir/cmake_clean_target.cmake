file(REMOVE_RECURSE
  "libmra.a"
)
