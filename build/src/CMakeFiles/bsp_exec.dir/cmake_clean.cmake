file(REMOVE_RECURSE
  "CMakeFiles/bsp_exec.dir/baselines/bsp.cpp.o"
  "CMakeFiles/bsp_exec.dir/baselines/bsp.cpp.o.d"
  "libbsp_exec.a"
  "libbsp_exec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bsp_exec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
