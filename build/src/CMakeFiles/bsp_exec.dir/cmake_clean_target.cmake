file(REMOVE_RECURSE
  "libbsp_exec.a"
)
