# Empty compiler generated dependencies file for bsp_exec.
# This may be replaced when dependencies are built.
