# Empty compiler generated dependencies file for ttg_smalltask.
# This may be replaced when dependencies are built.
