file(REMOVE_RECURSE
  "CMakeFiles/ttg_smalltask.dir/atomics/op_counter.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/atomics/op_counter.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/common/cycle_clock.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/common/cycle_clock.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/common/thread_id.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/common/thread_id.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/runtime/config.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/runtime/config.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/runtime/context.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/runtime/context.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/runtime/trace.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/runtime/trace.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/sched/lfq.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/sched/lfq.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/sched/ll.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/sched/ll.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/sched/llp.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/sched/llp.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/sched/scheduler.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/sched/scheduler.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/sync/bravo.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/sync/bravo.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/termdet/termdet.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/termdet/termdet.cpp.o.d"
  "CMakeFiles/ttg_smalltask.dir/ttg/world.cpp.o"
  "CMakeFiles/ttg_smalltask.dir/ttg/world.cpp.o.d"
  "libttg_smalltask.a"
  "libttg_smalltask.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ttg_smalltask.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
