
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/atomics/op_counter.cpp" "src/CMakeFiles/ttg_smalltask.dir/atomics/op_counter.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/atomics/op_counter.cpp.o.d"
  "/root/repo/src/common/cycle_clock.cpp" "src/CMakeFiles/ttg_smalltask.dir/common/cycle_clock.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/common/cycle_clock.cpp.o.d"
  "/root/repo/src/common/thread_id.cpp" "src/CMakeFiles/ttg_smalltask.dir/common/thread_id.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/common/thread_id.cpp.o.d"
  "/root/repo/src/runtime/config.cpp" "src/CMakeFiles/ttg_smalltask.dir/runtime/config.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/runtime/config.cpp.o.d"
  "/root/repo/src/runtime/context.cpp" "src/CMakeFiles/ttg_smalltask.dir/runtime/context.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/runtime/context.cpp.o.d"
  "/root/repo/src/runtime/trace.cpp" "src/CMakeFiles/ttg_smalltask.dir/runtime/trace.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/runtime/trace.cpp.o.d"
  "/root/repo/src/sched/lfq.cpp" "src/CMakeFiles/ttg_smalltask.dir/sched/lfq.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/sched/lfq.cpp.o.d"
  "/root/repo/src/sched/ll.cpp" "src/CMakeFiles/ttg_smalltask.dir/sched/ll.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/sched/ll.cpp.o.d"
  "/root/repo/src/sched/llp.cpp" "src/CMakeFiles/ttg_smalltask.dir/sched/llp.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/sched/llp.cpp.o.d"
  "/root/repo/src/sched/scheduler.cpp" "src/CMakeFiles/ttg_smalltask.dir/sched/scheduler.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/sched/scheduler.cpp.o.d"
  "/root/repo/src/sync/bravo.cpp" "src/CMakeFiles/ttg_smalltask.dir/sync/bravo.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/sync/bravo.cpp.o.d"
  "/root/repo/src/termdet/termdet.cpp" "src/CMakeFiles/ttg_smalltask.dir/termdet/termdet.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/termdet/termdet.cpp.o.d"
  "/root/repo/src/ttg/world.cpp" "src/CMakeFiles/ttg_smalltask.dir/ttg/world.cpp.o" "gcc" "src/CMakeFiles/ttg_smalltask.dir/ttg/world.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
