file(REMOVE_RECURSE
  "libttg_smalltask.a"
)
