file(REMOVE_RECURSE
  "CMakeFiles/mra_demo.dir/mra_demo.cpp.o"
  "CMakeFiles/mra_demo.dir/mra_demo.cpp.o.d"
  "mra_demo"
  "mra_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mra_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
