file(REMOVE_RECURSE
  "CMakeFiles/test_mra_pipeline.dir/test_mra_pipeline.cpp.o"
  "CMakeFiles/test_mra_pipeline.dir/test_mra_pipeline.cpp.o.d"
  "test_mra_pipeline"
  "test_mra_pipeline.pdb"
  "test_mra_pipeline[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mra_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
