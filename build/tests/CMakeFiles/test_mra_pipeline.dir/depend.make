# Empty dependencies file for test_mra_pipeline.
# This may be replaced when dependencies are built.
