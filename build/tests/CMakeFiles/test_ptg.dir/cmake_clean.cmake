file(REMOVE_RECURSE
  "CMakeFiles/test_ptg.dir/test_ptg.cpp.o"
  "CMakeFiles/test_ptg.dir/test_ptg.cpp.o.d"
  "test_ptg"
  "test_ptg.pdb"
  "test_ptg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ptg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
