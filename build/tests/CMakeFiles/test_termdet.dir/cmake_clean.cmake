file(REMOVE_RECURSE
  "CMakeFiles/test_termdet.dir/test_termdet.cpp.o"
  "CMakeFiles/test_termdet.dir/test_termdet.cpp.o.d"
  "test_termdet"
  "test_termdet.pdb"
  "test_termdet[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_termdet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
