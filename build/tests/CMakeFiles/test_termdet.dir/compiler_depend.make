# Empty compiler generated dependencies file for test_termdet.
# This may be replaced when dependencies are built.
