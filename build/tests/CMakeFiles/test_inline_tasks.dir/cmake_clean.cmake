file(REMOVE_RECURSE
  "CMakeFiles/test_inline_tasks.dir/test_inline_tasks.cpp.o"
  "CMakeFiles/test_inline_tasks.dir/test_inline_tasks.cpp.o.d"
  "test_inline_tasks"
  "test_inline_tasks.pdb"
  "test_inline_tasks[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_inline_tasks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
