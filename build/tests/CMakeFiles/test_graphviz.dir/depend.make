# Empty dependencies file for test_graphviz.
# This may be replaced when dependencies are built.
