file(REMOVE_RECURSE
  "CMakeFiles/test_graphviz.dir/test_graphviz.cpp.o"
  "CMakeFiles/test_graphviz.dir/test_graphviz.cpp.o.d"
  "test_graphviz"
  "test_graphviz.pdb"
  "test_graphviz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graphviz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
