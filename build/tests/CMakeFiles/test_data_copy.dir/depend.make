# Empty dependencies file for test_data_copy.
# This may be replaced when dependencies are built.
