file(REMOVE_RECURSE
  "CMakeFiles/test_data_copy.dir/test_data_copy.cpp.o"
  "CMakeFiles/test_data_copy.dir/test_data_copy.cpp.o.d"
  "test_data_copy"
  "test_data_copy.pdb"
  "test_data_copy[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_copy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
