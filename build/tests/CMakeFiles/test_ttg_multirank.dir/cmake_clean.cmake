file(REMOVE_RECURSE
  "CMakeFiles/test_ttg_multirank.dir/test_ttg_multirank.cpp.o"
  "CMakeFiles/test_ttg_multirank.dir/test_ttg_multirank.cpp.o.d"
  "test_ttg_multirank"
  "test_ttg_multirank.pdb"
  "test_ttg_multirank[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ttg_multirank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
