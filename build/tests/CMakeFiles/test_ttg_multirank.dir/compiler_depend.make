# Empty compiler generated dependencies file for test_ttg_multirank.
# This may be replaced when dependencies are built.
