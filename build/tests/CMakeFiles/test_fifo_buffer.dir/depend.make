# Empty dependencies file for test_fifo_buffer.
# This may be replaced when dependencies are built.
