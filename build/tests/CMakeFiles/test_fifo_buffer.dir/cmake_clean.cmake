file(REMOVE_RECURSE
  "CMakeFiles/test_fifo_buffer.dir/test_fifo_buffer.cpp.o"
  "CMakeFiles/test_fifo_buffer.dir/test_fifo_buffer.cpp.o.d"
  "test_fifo_buffer"
  "test_fifo_buffer.pdb"
  "test_fifo_buffer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_fifo_buffer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
