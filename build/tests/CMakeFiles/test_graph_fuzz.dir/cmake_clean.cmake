file(REMOVE_RECURSE
  "CMakeFiles/test_graph_fuzz.dir/test_graph_fuzz.cpp.o"
  "CMakeFiles/test_graph_fuzz.dir/test_graph_fuzz.cpp.o.d"
  "test_graph_fuzz"
  "test_graph_fuzz.pdb"
  "test_graph_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_graph_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
