# Empty dependencies file for test_graph_fuzz.
# This may be replaced when dependencies are built.
