file(REMOVE_RECURSE
  "CMakeFiles/test_ttg.dir/test_ttg.cpp.o"
  "CMakeFiles/test_ttg.dir/test_ttg.cpp.o.d"
  "test_ttg"
  "test_ttg.pdb"
  "test_ttg[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ttg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
