# Empty compiler generated dependencies file for test_ttg.
# This may be replaced when dependencies are built.
