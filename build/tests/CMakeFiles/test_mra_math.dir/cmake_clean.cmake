file(REMOVE_RECURSE
  "CMakeFiles/test_mra_math.dir/test_mra_math.cpp.o"
  "CMakeFiles/test_mra_math.dir/test_mra_math.cpp.o.d"
  "test_mra_math"
  "test_mra_math.pdb"
  "test_mra_math[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mra_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
