# Empty compiler generated dependencies file for test_mra_math.
# This may be replaced when dependencies are built.
