file(REMOVE_RECURSE
  "CMakeFiles/test_ttg_reducing.dir/test_ttg_reducing.cpp.o"
  "CMakeFiles/test_ttg_reducing.dir/test_ttg_reducing.cpp.o.d"
  "test_ttg_reducing"
  "test_ttg_reducing.pdb"
  "test_ttg_reducing[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ttg_reducing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
