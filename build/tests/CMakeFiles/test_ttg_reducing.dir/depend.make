# Empty dependencies file for test_ttg_reducing.
# This may be replaced when dependencies are built.
