# Empty dependencies file for test_lifo.
# This may be replaced when dependencies are built.
