file(REMOVE_RECURSE
  "CMakeFiles/test_lifo.dir/test_lifo.cpp.o"
  "CMakeFiles/test_lifo.dir/test_lifo.cpp.o.d"
  "test_lifo"
  "test_lifo.pdb"
  "test_lifo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_lifo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
