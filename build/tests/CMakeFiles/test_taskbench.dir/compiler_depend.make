# Empty compiler generated dependencies file for test_taskbench.
# This may be replaced when dependencies are built.
