file(REMOVE_RECURSE
  "CMakeFiles/test_taskbench.dir/test_taskbench.cpp.o"
  "CMakeFiles/test_taskbench.dir/test_taskbench.cpp.o.d"
  "test_taskbench"
  "test_taskbench.pdb"
  "test_taskbench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_taskbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
