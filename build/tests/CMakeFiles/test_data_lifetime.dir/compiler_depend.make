# Empty compiler generated dependencies file for test_data_lifetime.
# This may be replaced when dependencies are built.
