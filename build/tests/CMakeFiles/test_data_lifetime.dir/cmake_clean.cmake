file(REMOVE_RECURSE
  "CMakeFiles/test_data_lifetime.dir/test_data_lifetime.cpp.o"
  "CMakeFiles/test_data_lifetime.dir/test_data_lifetime.cpp.o.d"
  "test_data_lifetime"
  "test_data_lifetime.pdb"
  "test_data_lifetime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_data_lifetime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
