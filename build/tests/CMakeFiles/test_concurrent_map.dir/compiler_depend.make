# Empty compiler generated dependencies file for test_concurrent_map.
# This may be replaced when dependencies are built.
