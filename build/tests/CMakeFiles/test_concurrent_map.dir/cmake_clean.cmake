file(REMOVE_RECURSE
  "CMakeFiles/test_concurrent_map.dir/test_concurrent_map.cpp.o"
  "CMakeFiles/test_concurrent_map.dir/test_concurrent_map.cpp.o.d"
  "test_concurrent_map"
  "test_concurrent_map.pdb"
  "test_concurrent_map[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_concurrent_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
