# Empty dependencies file for test_atomic_model.
# This may be replaced when dependencies are built.
