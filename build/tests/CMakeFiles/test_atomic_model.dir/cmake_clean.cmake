file(REMOVE_RECURSE
  "CMakeFiles/test_atomic_model.dir/test_atomic_model.cpp.o"
  "CMakeFiles/test_atomic_model.dir/test_atomic_model.cpp.o.d"
  "test_atomic_model"
  "test_atomic_model.pdb"
  "test_atomic_model[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_atomic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
