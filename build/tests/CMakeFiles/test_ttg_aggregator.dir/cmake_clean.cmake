file(REMOVE_RECURSE
  "CMakeFiles/test_ttg_aggregator.dir/test_ttg_aggregator.cpp.o"
  "CMakeFiles/test_ttg_aggregator.dir/test_ttg_aggregator.cpp.o.d"
  "test_ttg_aggregator"
  "test_ttg_aggregator.pdb"
  "test_ttg_aggregator[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ttg_aggregator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
