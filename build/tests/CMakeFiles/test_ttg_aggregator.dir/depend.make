# Empty dependencies file for test_ttg_aggregator.
# This may be replaced when dependencies are built.
