# Empty dependencies file for test_mra_algebra.
# This may be replaced when dependencies are built.
