file(REMOVE_RECURSE
  "CMakeFiles/test_mra_algebra.dir/test_mra_algebra.cpp.o"
  "CMakeFiles/test_mra_algebra.dir/test_mra_algebra.cpp.o.d"
  "test_mra_algebra"
  "test_mra_algebra.pdb"
  "test_mra_algebra[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mra_algebra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
