file(REMOVE_RECURSE
  "../bench/bench_ablation_runtime"
  "../bench/bench_ablation_runtime.pdb"
  "CMakeFiles/bench_ablation_runtime.dir/bench_ablation_runtime.cpp.o"
  "CMakeFiles/bench_ablation_runtime.dir/bench_ablation_runtime.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
