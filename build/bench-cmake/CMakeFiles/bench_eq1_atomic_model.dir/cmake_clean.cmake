file(REMOVE_RECURSE
  "../bench/bench_eq1_atomic_model"
  "../bench/bench_eq1_atomic_model.pdb"
  "CMakeFiles/bench_eq1_atomic_model.dir/bench_eq1_atomic_model.cpp.o"
  "CMakeFiles/bench_eq1_atomic_model.dir/bench_eq1_atomic_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_eq1_atomic_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
