# Empty dependencies file for bench_eq1_atomic_model.
# This may be replaced when dependencies are built.
