# Empty dependencies file for bench_fig7_taskbench_1core.
# This may be replaced when dependencies are built.
