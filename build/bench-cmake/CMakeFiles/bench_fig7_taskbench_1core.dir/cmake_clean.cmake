file(REMOVE_RECURSE
  "../bench/bench_fig7_taskbench_1core"
  "../bench/bench_fig7_taskbench_1core.pdb"
  "CMakeFiles/bench_fig7_taskbench_1core.dir/bench_fig7_taskbench_1core.cpp.o"
  "CMakeFiles/bench_fig7_taskbench_1core.dir/bench_fig7_taskbench_1core.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_taskbench_1core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
