file(REMOVE_RECURSE
  "../bench/bench_fig12_mra"
  "../bench/bench_fig12_mra.pdb"
  "CMakeFiles/bench_fig12_mra.dir/bench_fig12_mra.cpp.o"
  "CMakeFiles/bench_fig12_mra.dir/bench_fig12_mra.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_mra.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
