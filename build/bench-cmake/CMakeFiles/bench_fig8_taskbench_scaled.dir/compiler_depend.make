# Empty compiler generated dependencies file for bench_fig8_taskbench_scaled.
# This may be replaced when dependencies are built.
