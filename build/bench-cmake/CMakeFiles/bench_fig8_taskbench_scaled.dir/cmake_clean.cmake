file(REMOVE_RECURSE
  "../bench/bench_fig8_taskbench_scaled"
  "../bench/bench_fig8_taskbench_scaled.pdb"
  "CMakeFiles/bench_fig8_taskbench_scaled.dir/bench_fig8_taskbench_scaled.cpp.o"
  "CMakeFiles/bench_fig8_taskbench_scaled.dir/bench_fig8_taskbench_scaled.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_taskbench_scaled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
