# Empty dependencies file for bench_fig6_scheduler.
# This may be replaced when dependencies are built.
