file(REMOVE_RECURSE
  "../bench/bench_fig6_scheduler"
  "../bench/bench_fig6_scheduler.pdb"
  "CMakeFiles/bench_fig6_scheduler.dir/bench_fig6_scheduler.cpp.o"
  "CMakeFiles/bench_fig6_scheduler.dir/bench_fig6_scheduler.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
