file(REMOVE_RECURSE
  "../bench/bench_fig10_11_summit_preset"
  "../bench/bench_fig10_11_summit_preset.pdb"
  "CMakeFiles/bench_fig10_11_summit_preset.dir/bench_fig10_11_summit_preset.cpp.o"
  "CMakeFiles/bench_fig10_11_summit_preset.dir/bench_fig10_11_summit_preset.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_11_summit_preset.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
