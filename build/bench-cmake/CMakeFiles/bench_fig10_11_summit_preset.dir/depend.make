# Empty dependencies file for bench_fig10_11_summit_preset.
# This may be replaced when dependencies are built.
