#!/usr/bin/env python3
"""Loose perf-regression gate over bench --json-out files.

Compares a freshly produced bench JSON against a committed baseline
(BENCH_fig6.json / BENCH_fig8.json) and fails when a matched row's
gated metric regressed by more than --factor (default 2x, overridable
via the BENCH_GATE_FACTOR environment variable). The gate is loose on
purpose: baselines are recorded on a different machine than CI, so only
gross regressions (a serialized scheduler, an accidental O(n) hot path)
should trip it.

Rows are matched on their identity keys (every key that appears in both
rows except the gated metric and other measured values). Rows present
in only one file are ignored — CI may sweep fewer thread counts than
the recording machine had cores.

Usage:
  check_bench_regression.py BASELINE.json FRESH.json \
      [--metric=ns_per_task] [--factor=2.0] [--require-matches=1]
"""

import json
import os
import sys

MEASURED_KEYS = {
    "seconds",
    "overhead_pct",
    "ns_per_task",
    "speedup",
    "core_time_per_task_s",
    "efficiency_pct",
    "flops_rate",
    # bench_serving (BENCH_serving.json)
    "graphs",
    "throughput_gps",
    "tasks_per_s",
    "rate_gps",
    "p50_ms",
    "p99_ms",
    "mean_ms",
    "inflight_peak",
    "shed",
}


def parse_args(argv):
    opts = {
        "metric": "ns_per_task",
        "factor": float(os.environ.get("BENCH_GATE_FACTOR", "2.0")),
        "require_matches": 1,
    }
    paths = []
    for a in argv[1:]:
        if a.startswith("--metric="):
            opts["metric"] = a.split("=", 1)[1]
        elif a.startswith("--factor="):
            opts["factor"] = float(a.split("=", 1)[1])
        elif a.startswith("--require-matches="):
            opts["require_matches"] = int(a.split("=", 1)[1])
        else:
            paths.append(a)
    if len(paths) != 2:
        sys.exit(__doc__)
    return paths[0], paths[1], opts


def identity(row, metric):
    return tuple(
        sorted(
            (k, v)
            for k, v in row.items()
            if k != metric and k not in MEASURED_KEYS
        )
    )


def main(argv):
    baseline_path, fresh_path, opts = parse_args(argv)
    with open(baseline_path) as f:
        baseline = json.load(f)
    with open(fresh_path) as f:
        fresh = json.load(f)

    metric = opts["metric"]
    factor = opts["factor"]
    base_rows = {
        identity(r, metric): r
        for r in baseline.get("rows", [])
        if metric in r
    }

    matches = 0
    failures = []
    for row in fresh.get("rows", []):
        if metric not in row:
            continue
        base = base_rows.get(identity(row, metric))
        if base is None:
            continue
        matches += 1
        old, new = float(base[metric]), float(row[metric])
        status = "ok"
        if old > 0 and new > factor * old:
            status = "REGRESSION"
            failures.append((row, old, new))
        print(
            f"{status:>10}  {metric}: {old:.3f} -> {new:.3f} "
            f"(x{new / old if old > 0 else float('inf'):.2f})  "
            f"{dict(identity(row, metric))}"
        )

    if matches < opts["require_matches"]:
        print(
            f"error: only {matches} comparable rows "
            f"(need {opts['require_matches']}); baseline/fresh configs "
            "do not overlap",
            file=sys.stderr,
        )
        return 2
    if failures:
        print(
            f"FAIL: {len(failures)} of {matches} rows regressed beyond "
            f"{factor}x on '{metric}'",
            file=sys.stderr,
        )
        return 1
    print(f"PASS: {matches} rows within {factor}x on '{metric}'")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
