#!/usr/bin/env bash
# Mutation gate for the DST harness (tests/dst/).
#
# A schedule-exploration harness is only trustworthy if it demonstrably
# catches known concurrency bugs. This script builds the DST suite once
# per known-bad mutant (-DTTG_DST_MUTANT=<name>, see src/CMakeLists.txt)
# and asserts that the suite FAILS under every mutant and PASSES on the
# clean build, all within the same bounded seed budget.
#
# Usage: scripts/mutation_gate.sh [build-dir] [schedules-per-strategy]
set -u

BUILD_DIR="${1:-build-mutation}"
SCHEDULES="${2:-64}"
SRC_DIR="$(cd "$(dirname "$0")/.." && pwd)"
DST_TARGETS="dst_lifo dst_bravo dst_parking dst_termdet dst_cancel dst_replay dst_join dst_serving dst_pending dst_coroutine dst_comm"
MUTANTS="lifo_pop_no_tag lifo_chain_no_tag bravo_fence_reorder \
bravo_skip_drain park_ignore_epoch termdet_ignore_active \
termdet_cancel_drop replay_join_no_fence serving_admit_no_fence \
pending_insert_lost_publish coroutine_lost_resume \
coroutine_double_resume comm_termdet_early_quiet"

JOBS="$(nproc 2>/dev/null || echo 4)"
failures=0

configure_and_build() {
  local mutant="$1"
  cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DCMAKE_BUILD_TYPE=Release \
        -DTTG_DST_MUTANT="$mutant" > /dev/null || return 1
  # shellcheck disable=SC2086
  cmake --build "$BUILD_DIR" -j "$JOBS" --target $DST_TARGETS > /dev/null
}

run_suite() {
  (cd "$BUILD_DIR" && TTG_DST_SCHEDULES="$SCHEDULES" \
      ctest -L dst -j "$JOBS" --output-on-failure)
}

echo "== mutation gate: clean build must pass (budget: $SCHEDULES schedules/strategy) =="
if ! configure_and_build ""; then
  echo "FATAL: clean build failed"
  exit 1
fi
if run_suite > "$BUILD_DIR/clean.log" 2>&1; then
  echo "clean: PASS (as expected)"
else
  echo "clean: FAIL — the DST suite is broken before any mutation"
  tail -50 "$BUILD_DIR/clean.log"
  failures=$((failures + 1))
fi

for m in $MUTANTS; do
  echo "== mutant: $m =="
  if ! configure_and_build "$m"; then
    echo "$m: BUILD FAILED"
    failures=$((failures + 1))
    continue
  fi
  if run_suite > "$BUILD_DIR/$m.log" 2>&1; then
    echo "$m: NOT CAUGHT — the DST suite passed a known-bad build"
    failures=$((failures + 1))
  else
    echo "$m: caught"
  fi
done

# Leave the tree configured without a mutant so later builds are clean.
cmake -B "$BUILD_DIR" -S "$SRC_DIR" -DCMAKE_BUILD_TYPE=Release \
      -DTTG_DST_MUTANT="" > /dev/null 2>&1 || true

if [ "$failures" -ne 0 ]; then
  echo "MUTATION GATE FAILED: $failures problem(s)"
  exit 1
fi
echo "MUTATION GATE PASSED: all mutants caught, clean suite green"
