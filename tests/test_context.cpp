#include <gtest/gtest.h>

#include <atomic>
#include <tuple>

#include "runtime/context.hpp"
#include "structures/mempool.hpp"

namespace {

struct CountingTask : ttg::TaskBase {
  std::atomic<int>* counter;
};

void count_and_free(ttg::TaskBase* base, ttg::Worker&) {
  auto* task = static_cast<CountingTask*>(base);
  task->counter->fetch_add(1);
  ttg::MemoryPool* pool = task->pool;
  task->~CountingTask();
  pool->deallocate(task);
}

struct TreeTask : ttg::TaskBase {
  std::atomic<int>* counter;
  int depth;
};

void tree_execute(ttg::TaskBase* base, ttg::Worker& worker) {
  auto* task = static_cast<TreeTask*>(base);
  task->counter->fetch_add(1);
  if (task->depth > 0) {
    ttg::Context& ctx = worker.context();
    for (int i = 0; i < 2; ++i) {
      auto* child = new (task->pool->allocate()) TreeTask;
      child->execute = &tree_execute;
      child->pool = task->pool;
      child->counter = task->counter;
      child->depth = task->depth - 1;
      child->priority = child->depth;
      ctx.on_discovered();
      ctx.submit(child);
    }
  }
  ttg::MemoryPool* pool = task->pool;
  task->~TreeTask();
  pool->deallocate(task);
}

class ContextConfigTest
    : public ::testing::TestWithParam<std::tuple<ttg::SchedulerType, int>> {
 protected:
  ttg::Config make_config() {
    ttg::Config cfg = ttg::Config::optimized();
    cfg.scheduler = std::get<0>(GetParam());
    cfg.num_threads = std::get<1>(GetParam());
    return cfg;
  }
};

TEST_P(ContextConfigTest, ExecutesAllSpawnedTasks) {
  ttg::Context ctx(make_config());
  ttg::MemoryPool pool(sizeof(CountingTask));
  std::atomic<int> counter{0};
  constexpr int kTasks = 5000;
  ctx.begin();
  for (int i = 0; i < kTasks; ++i) {
    auto* task = new (pool.allocate()) CountingTask;
    task->execute = &count_and_free;
    task->pool = &pool;
    task->counter = &counter;
    ctx.on_discovered();
    ctx.submit(task);
  }
  ctx.fence();
  EXPECT_EQ(counter.load(), kTasks);
  EXPECT_EQ(ctx.total_tasks_executed(), static_cast<std::uint64_t>(kTasks));
}

TEST_P(ContextConfigTest, RecursiveBinaryTreeCompletes) {
  ttg::Context ctx(make_config());
  ttg::MemoryPool pool(sizeof(TreeTask));
  std::atomic<int> counter{0};
  constexpr int kDepth = 12;  // 2^13 - 1 tasks
  ctx.begin();
  auto* root = new (pool.allocate()) TreeTask;
  root->execute = &tree_execute;
  root->pool = &pool;
  root->counter = &counter;
  root->depth = kDepth;
  ctx.on_discovered();
  ctx.submit(root);
  ctx.fence();
  EXPECT_EQ(counter.load(), (1 << (kDepth + 1)) - 1);
}

TEST_P(ContextConfigTest, MultipleEpochsReuseWorkers) {
  ttg::Context ctx(make_config());
  ttg::MemoryPool pool(sizeof(CountingTask));
  std::atomic<int> counter{0};
  for (int epoch = 0; epoch < 3; ++epoch) {
    ctx.begin();
    for (int i = 0; i < 100; ++i) {
      auto* task = new (pool.allocate()) CountingTask;
      task->execute = &count_and_free;
      task->pool = &pool;
      task->counter = &counter;
      ctx.on_discovered();
      ctx.submit(task);
    }
    ctx.fence();
    EXPECT_EQ(counter.load(), (epoch + 1) * 100);
    ctx.reset_epoch();
  }
}

INSTANTIATE_TEST_SUITE_P(
    Configs, ContextConfigTest,
    ::testing::Combine(::testing::Values(ttg::SchedulerType::kLFQ,
                                         ttg::SchedulerType::kLL,
                                         ttg::SchedulerType::kLLP),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::string(ttg::to_string(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "threads";
    });

TEST(Context, FenceWithNoWorkReturns) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 2;
  ttg::Context ctx(cfg);
  ctx.begin();
  ctx.fence();  // must not hang
  SUCCEED();
}

TEST(Context, OriginalConfigAlsoRuns) {
  ttg::Config cfg = ttg::Config::original();
  cfg.num_threads = 2;
  ttg::Context ctx(cfg);
  ttg::MemoryPool pool(sizeof(CountingTask));
  std::atomic<int> counter{0};
  ctx.begin();
  for (int i = 0; i < 500; ++i) {
    auto* task = new (pool.allocate()) CountingTask;
    task->execute = &count_and_free;
    task->pool = &pool;
    task->counter = &counter;
    ctx.on_discovered();
    ctx.submit(task);
  }
  ctx.fence();
  EXPECT_EQ(counter.load(), 500);
}

TEST(Context, CurrentWorkerVisibleInsideTasks) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 2;
  ttg::Context ctx(cfg);
  ttg::MemoryPool pool(sizeof(CountingTask));
  std::atomic<int> ok{0};
  struct ProbeTask : ttg::TaskBase {
    std::atomic<int>* ok;
    ttg::Context* expect_ctx;
  };
  auto* task = new (pool.allocate()) ProbeTask;
  task->execute = [](ttg::TaskBase* base, ttg::Worker& worker) {
    auto* t = static_cast<ProbeTask*>(base);
    ttg::Worker* current = ttg::Context::current_worker();
    if (current == &worker && &worker.context() == t->expect_ctx &&
        worker.index() >= 0) {
      t->ok->fetch_add(1);
    }
    ttg::MemoryPool* pool = t->pool;
    t->~ProbeTask();
    pool->deallocate(t);
  };
  task->pool = &pool;
  task->ok = &ok;
  task->expect_ctx = &ctx;
  ctx.begin();
  ctx.on_discovered();
  ctx.submit(task);
  ctx.fence();
  EXPECT_EQ(ok.load(), 1);
  EXPECT_EQ(ttg::Context::current_worker(), nullptr);  // main thread
}

}  // namespace
