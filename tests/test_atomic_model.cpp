// Validates the paper's Eq. (1) atomic-operation model (Sec. IV-E):
//
//   N_A = (N_ID + N_RC + N_HB) * N_i + N_OD + N_S = 4 * N_i + 4
//
// for a task with N_i inputs whose data is reused (moved, not copied),
// in the fully optimized configuration. The runtime's per-category
// atomic accounting lets us check each term separately, not just the
// total.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <tuple>
#include <vector>

#include "atomics/op_counter.hpp"
#include "ttg/ttg.hpp"

namespace {

using ttg::AtomicOpCategory;

ttg::Config model_config() {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 1;  // serial chain; no stealing noise
  return cfg;
}

/// Runs a chain of `tasks` tasks with `NFlows` data flows between
/// consecutive tasks and returns the per-category atomic counts per
/// task (averaged over the chain).
template <std::size_t NFlows>
ttg::AtomicOpSnapshot run_chain(int tasks) {
  ttg::World world(model_config());

  // NFlows edges all connecting the TT to itself.
  auto make_edges = [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    return std::make_tuple(
        ttg::Edge<int, std::uint64_t>("flow" + std::to_string(Is))...);
  };
  auto edge_tuple = make_edges(std::make_index_sequence<NFlows>{});

  std::atomic<int> executed{0};
  auto body = [&executed, tasks](const int& k, auto&... rest) {
    executed.fetch_add(1);
    auto& outs = std::get<sizeof...(rest) - 1>(std::tie(rest...));
    if (k < tasks) {
      [&]<std::size_t... Is>(std::index_sequence<Is...>) {
        // Move every input onward: the reused-data case of Eq. (1).
        (ttg::send<Is>(
             k + 1,
             std::move(std::get<Is>(std::tie(rest...))),
             outs),
         ...);
      }(std::make_index_sequence<NFlows>{});
    }
  };
  auto tt = std::apply(
      [&](auto&... edges) {
        return ttg::make_tt<int>(body, ttg::edges(edges...),
                                 ttg::edges(edges...), "chain", world);
      },
      edge_tuple);

  world.execute();
  // Warm up pools and the hash table so steady-state counts are clean.
  [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    (tt->template send_input<Is>(0, std::uint64_t{Is}), ...);
  }(std::make_index_sequence<NFlows>{});
  world.fence();

  const int warmup = executed.load();
  world.execute();
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  [&]<std::size_t... Is>(std::index_sequence<Is...>) {
    (tt->template send_input<Is>(0, std::uint64_t{Is}), ...);
  }(std::make_index_sequence<NFlows>{});
  world.fence();
  ttg::atomic_ops::set_enabled(false);
  EXPECT_EQ(executed.load() - warmup, tasks + 1);

  return ttg::atomic_ops::snapshot();
}

class AtomicModelTest : public ::testing::TestWithParam<int> {};

TEST_P(AtomicModelTest, PerCategoryCountsMatchEquationOne) {
  const int n_inputs = GetParam();
  constexpr int kTasks = 2000;
  ttg::AtomicOpSnapshot snap;
  switch (n_inputs) {
    case 2: snap = run_chain<2>(kTasks); break;
    case 3: snap = run_chain<3>(kTasks); break;
    case 4: snap = run_chain<4>(kTasks); break;
    case 6: snap = run_chain<6>(kTasks); break;
    default: FAIL() << "unsupported flow count";
  }

  const double tasks = kTasks + 1;
  // Per-task, per-category averages. The fence/termination machinery and
  // the seeding from the main thread add a constant number of operations
  // per *run*, so per-task averages converge to the model as the chain
  // grows; 5% covers that O(1/kTasks) tail.
  const double n_id =
      static_cast<double>(snap[AtomicOpCategory::kInputCount]) / tasks;
  const double n_hb =
      static_cast<double>(snap[AtomicOpCategory::kBucketLock]) / tasks;
  const double n_rc =
      static_cast<double>(snap[AtomicOpCategory::kRefCount]) / tasks;
  const double n_od =
      static_cast<double>(snap[AtomicOpCategory::kMemPool]) / tasks;
  const double n_s =
      static_cast<double>(snap[AtomicOpCategory::kScheduler]) / tasks;

  const double ni = n_inputs;
  EXPECT_NEAR(n_id, ni, 0.05 * ni) << "input-count updates per task";
  EXPECT_NEAR(n_hb, ni, 0.05 * ni) << "bucket locks per task";
  EXPECT_NEAR(n_rc, 2 * ni, 0.05 * 2 * ni) << "refcount ops per task";
  EXPECT_NEAR(n_od, 2.0, 0.1) << "mempool ops per task";
  EXPECT_NEAR(n_s, 2.0, 0.15) << "scheduler ops per task";

  // Eq. (1): the categories the model covers sum to 4*N_i + 4.
  const double model_total = n_id + n_hb + n_rc + n_od + n_s;
  EXPECT_NEAR(model_total, 4.0 * ni + 4.0, 0.05 * (4.0 * ni + 4.0));

  // The BRAVO fast path keeps the reader-writer lock off the per-input
  // cost: rwlock RMWs must be O(1) per run, not O(N_i) per task.
  EXPECT_LT(static_cast<double>(snap[AtomicOpCategory::kRWLock]) / tasks,
            0.05);
}

INSTANTIATE_TEST_SUITE_P(Flows, AtomicModelTest,
                         ::testing::Values(2, 3, 4, 6));

TEST(AtomicModel, SingleInputSkipsHashTable) {
  // Sec. V-C: single-input TTs bypass the hash table, so no bucket locks
  // and no input counters appear at all.
  ttg::World world(model_config());
  ttg::Edge<int, std::uint64_t> e("flow");
  constexpr int kTasks = 2000;
  auto tt = ttg::make_tt<int>(
      [](const int& k, std::uint64_t& v, auto& outs) {
        if (k < kTasks) ttg::send<0>(k + 1, std::move(v), outs);
      },
      ttg::edges(e), ttg::edges(e), "chain1", world);

  world.execute();
  tt->send_input<0>(0, 1);  // warm-up epoch
  world.fence();

  world.execute();
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  tt->send_input<0>(0, 1);
  world.fence();
  ttg::atomic_ops::set_enabled(false);
  const auto snap = ttg::atomic_ops::snapshot();

  EXPECT_EQ(snap[AtomicOpCategory::kBucketLock], 0u);
  EXPECT_EQ(snap[AtomicOpCategory::kInputCount], 0u);
  const double tasks = kTasks + 1;
  // refcount: retain + release per hop; pool: 2; scheduler: 2.
  EXPECT_NEAR(static_cast<double>(snap[AtomicOpCategory::kRefCount]) / tasks,
              2.0, 0.05);
  EXPECT_NEAR(static_cast<double>(snap[AtomicOpCategory::kMemPool]) / tasks,
              2.0, 0.1);
}

// --- Coroutine suspend/resume census (docs/coroutines.md) -----------
//
// The model extension for suspendable bodies: a suspend/resume pair
// through a *rendezvous* (InputGate, timer wheel) adds exactly
// 2 kSuspend RMWs (park publication + resume claim) and 2 kScheduler
// RMWs (the continuation's push + pop) on top of the task's 4*N_i + 4;
// ttg::yield has no rendezvous and adds only the 2 scheduler ops.

TEST(AtomicModel, YieldAddsTwoSchedulerOpsAndNoSuspendOps) {
  ttg::World world(model_config());
  ttg::Edge<int, ttg::Void> e("e");
  constexpr int kTasks = 256;
  constexpr int kYields = 4;
  auto tt = ttg::make_tt<int>(
      [](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        for (int i = 0; i < kYields; ++i) co_await ttg::yield{};
        co_return;
      },
      ttg::edges(e), ttg::edges(), "yielder", world);
  world.execute();
  for (int k = 0; k < kTasks; ++k) tt->sendk_input<0>(k);
  world.fence();  // warm-up epoch

  world.execute();
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  for (int k = 0; k < kTasks; ++k) tt->sendk_input<0>(k);
  world.fence();
  ttg::atomic_ops::set_enabled(false);
  const auto snap = ttg::atomic_ops::snapshot();

  // No rendezvous anywhere in a yield: exactly zero kSuspend RMWs.
  EXPECT_EQ(snap[AtomicOpCategory::kSuspend], 0u);
  // Each task costs 2 scheduler ops itself plus 2 per yield.
  const double n_s =
      static_cast<double>(snap[AtomicOpCategory::kScheduler]) / kTasks;
  EXPECT_NEAR(n_s, 2.0 * (1 + kYields), 0.15 * 2.0 * (1 + kYields));
}

TEST(AtomicModel, GateSuspendResumePairIsTwoSuspendOpsExactly) {
  // One gate per waiter so the broadcast claim (1 kSuspend per fulfill,
  // not per waiter) maps one-to-one: park + claim = exactly 2 kSuspend
  // per suspension, asserted exactly — not a tolerance band.
  ttg::World world(model_config());
  constexpr int kTasks = 64;
  std::vector<std::unique_ptr<ttg::InputGate<int>>> gates;
  for (int k = 0; k < kTasks; ++k) {
    gates.push_back(std::make_unique<ttg::InputGate<int>>(world));
  }
  std::atomic<int> parked{0};
  ttg::Edge<int, ttg::Void> e("e");
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto&) -> ttg::resumable {
        parked.fetch_add(1, std::memory_order_relaxed);
        (void)co_await *gates[static_cast<std::size_t>(k)];
        co_return;
      },
      ttg::edges(e), ttg::edges(), "gated", world);

  world.execute();
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  for (int k = 0; k < kTasks; ++k) tt->sendk_input<0>(k);
  // Every first segment has retired == every waiter is parked (the
  // one-shot gates are never fulfilled early here, so no sync path).
  while (world.total_tasks_executed() < kTasks) std::this_thread::yield();
  const auto parked_snap = ttg::atomic_ops::snapshot();
  // Park publication: exactly one kSuspend RMW per suspension.
  EXPECT_EQ(parked_snap[AtomicOpCategory::kSuspend],
            static_cast<std::uint64_t>(kTasks));
  for (int k = 0; k < kTasks; ++k) gates[k]->fulfill(k);
  world.fence();
  ttg::atomic_ops::set_enabled(false);
  const auto snap = ttg::atomic_ops::snapshot();
  // Resume claim: exactly one more per suspension — 2 per pair total.
  EXPECT_EQ(snap[AtomicOpCategory::kSuspend],
            static_cast<std::uint64_t>(2 * kTasks));
  EXPECT_EQ(parked.load(), kTasks);
}

TEST(AtomicModel, TimerSuspendResumePairIsTwoSuspendOpsExactly) {
  ttg::World world(model_config());
  constexpr int kTasks = 64;
  ttg::Edge<int, ttg::Void> e("e");
  auto tt = ttg::make_tt<int>(
      [](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        co_await ttg::suspend_for(std::chrono::milliseconds(2));
        co_return;
      },
      ttg::edges(e), ttg::edges(), "slept", world);
  world.execute();
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  for (int k = 0; k < kTasks; ++k) tt->sendk_input<0>(k);
  world.fence();
  ttg::atomic_ops::set_enabled(false);
  const auto snap = ttg::atomic_ops::snapshot();
  // Wheel park + expiry claim: exactly 2 kSuspend per suspension.
  EXPECT_EQ(snap[AtomicOpCategory::kSuspend],
            static_cast<std::uint64_t>(2 * kTasks));
  // And the resume rides the ordinary scheduler path: 2 ops for the
  // task + 2 for the continuation round-trip.
  const double n_s =
      static_cast<double>(snap[AtomicOpCategory::kScheduler]) / kTasks;
  EXPECT_NEAR(n_s, 4.0, 0.6);
}

TEST(AtomicModel, CopyVariantAllocatesPerHop) {
  // The Fig. 5 "TTG (copy)" variant: sending by lvalue materializes a
  // new copy per hop, so the refcount traffic drops to release-only
  // (the fresh copy is born with the consumer's reference).
  ttg::World world(model_config());
  ttg::Edge<int, std::uint64_t> a("a"), b("b");
  constexpr int kTasks = 1000;
  auto tt = ttg::make_tt<int>(
      [](const int& k, std::uint64_t& x, std::uint64_t& y, auto& outs) {
        if (k < kTasks) {
          ttg::send<0>(k + 1, x, outs);  // lvalue: copy
          ttg::send<1>(k + 1, y, outs);
        }
      },
      ttg::edges(a, b), ttg::edges(a, b), "copychain", world);
  world.execute();
  tt->send_input<0>(0, 1);
  tt->send_input<1>(0, 2);
  world.fence();

  world.execute();
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  tt->send_input<0>(0, 1);
  tt->send_input<1>(0, 2);
  world.fence();
  ttg::atomic_ops::set_enabled(false);
  const auto snap = ttg::atomic_ops::snapshot();
  const double tasks = kTasks + 1;
  // One release per input per task; no retains (copies are created with
  // their single consumer's reference).
  EXPECT_NEAR(static_cast<double>(snap[AtomicOpCategory::kRefCount]) / tasks,
              2.0, 0.05);
}

}  // namespace
