#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

TEST(Aggregator, FixedCountFiresAtThreshold) {
  ttg::World world(test_config(1));
  ttg::Edge<int, int> in("in");
  std::atomic<int> fired{0};
  std::atomic<long> sum{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Aggregator<int>& vals, auto&) {
        fired.fetch_add(1);
        long s = 0;
        for (int v : vals) s += v;
        sum.fetch_add(s);
      },
      ttg::edges(ttg::make_aggregator(in, 3)), ttg::edges(), "agg3",
      world);
  world.execute();
  tt->send_input<0>(0, 1);
  tt->send_input<0>(0, 2);
  EXPECT_EQ(fired.load(), 0);  // 2 of 3 arrived
  tt->send_input<0>(0, 3);
  world.fence();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(sum.load(), 6);
}

TEST(Aggregator, PerKeyCountCallback) {
  // Paper Listing 1: the aggregator edge calls the provided callback to
  // determine the number of inputs for each task.
  ttg::World world(test_config());
  ttg::Edge<int, int> in("in");
  std::atomic<long> total{0};
  std::atomic<int> fired{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Aggregator<int>& vals, auto&) {
        EXPECT_EQ(static_cast<int>(vals.size()), k);
        fired.fetch_add(1);
        for (int v : vals) total.fetch_add(v);
      },
      ttg::edges(ttg::make_aggregator(in, [](const int& k) { return k; })),
      ttg::edges(), "aggk", world);
  world.execute();
  long expect = 0;
  for (int k = 1; k <= 8; ++k) {
    for (int i = 0; i < k; ++i) {
      tt->send_input<0>(k, 100 * k + i);
      expect += 100 * k + i;
    }
  }
  world.fence();
  EXPECT_EQ(fired.load(), 8);
  EXPECT_EQ(total.load(), expect);
}

TEST(Aggregator, SizeAndIndexAccess) {
  ttg::World world(test_config(1));
  ttg::Edge<int, double> in("in");
  std::atomic<int> checked{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Aggregator<double>& vals, auto&) {
        EXPECT_EQ(vals.size(), 4u);
        double sum_iter = 0;
        for (double v : vals) sum_iter += v;
        double sum_idx = 0;
        for (std::size_t i = 0; i < vals.size(); ++i) sum_idx += vals[i];
        EXPECT_DOUBLE_EQ(sum_iter, sum_idx);
        checked.fetch_add(1);
      },
      ttg::edges(ttg::make_aggregator(in, 4)), ttg::edges(), "agg",
      world);
  world.execute();
  for (int i = 0; i < 4; ++i) tt->send_input<0>(0, 0.5 * i);
  world.fence();
  EXPECT_EQ(checked.load(), 1);
}

TEST(Aggregator, SharedCopiesNotDuplicated) {
  // The whole point of aggregator terminals (Sec. V-D1): the data stays
  // under TTG management, so a broadcast into an aggregator shares one
  // copy instead of duplicating per receiver.
  ttg::World world(test_config(1));
  ttg::Edge<int, std::vector<int>> in("in");
  std::atomic<int> distinct_buffers{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Aggregator<std::vector<int>>& vals,
          auto&) {
        const void* first = nullptr;
        int distinct = 0;
        for (const auto& v : vals) {
          if (first == nullptr) {
            first = v.data();
            distinct = 1;
          } else if (v.data() != first) {
            ++distinct;
          }
        }
        distinct_buffers.store(distinct);
      },
      ttg::edges(ttg::make_aggregator(in, 4)), ttg::edges(), "agg",
      world);

  ttg::Edge<int, ttg::Void> go("go");
  auto src = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto& outs) {
        // Broadcast the same payload to 4 "slots" of key 0 — here, the
        // same key 4 times through the aggregator.
        std::vector<int> payload{1, 2, 3};
        const std::vector<int> keys{0, 0, 0, 0};
        ttg::broadcast<0>(keys, payload, outs);
      },
      ttg::edges(go), ttg::edges(in), "src", world);
  world.execute();
  src->sendk_input<0>(0);
  world.fence();
  EXPECT_EQ(distinct_buffers.load(), 1) << "broadcast into an aggregator "
                                           "must share one data copy";
  (void)tt;
}

TEST(Aggregator, MixedWithPlainInput) {
  ttg::World world(test_config());
  ttg::Edge<int, int> agg_in("agg_in");
  ttg::Edge<int, int> scale_in("scale_in");
  std::atomic<long> result{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Aggregator<int>& vals, int& scale,
          auto&) {
        long s = 0;
        for (int v : vals) s += v;
        result.fetch_add(s * scale);
      },
      ttg::edges(ttg::make_aggregator(agg_in, 2), scale_in), ttg::edges(),
      "mixed", world);
  world.execute();
  tt->send_input<0>(7, 10);
  tt->send_input<0>(7, 20);
  tt->send_input<1>(7, 3);
  world.fence();
  EXPECT_EQ(result.load(), 90);
}

TEST(Aggregator, ManyKeysConcurrently) {
  ttg::World world(test_config(4));
  ttg::Edge<int, int> in("in");
  std::atomic<int> fired{0};
  constexpr int kKeys = 2000;
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Aggregator<int>& vals, auto&) {
        if (vals.size() == 3) fired.fetch_add(1);
      },
      ttg::edges(ttg::make_aggregator(in, 3)), ttg::edges(), "agg",
      world);
  world.execute();
  for (int round = 0; round < 3; ++round) {
    for (int k = 0; k < kKeys; ++k) tt->send_input<0>(k, round);
  }
  world.fence();
  EXPECT_EQ(fired.load(), kKeys);
}

}  // namespace
