// Tests for the task-inlining extension (the paper's Sec. V-E
// future-work item): eligible tasks execute directly in the discovering
// worker up to a configurable nesting depth.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ttg/ttg.hpp"

namespace {

ttg::Config inline_config(int depth, int threads = 1) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  cfg.inline_max_depth = depth;
  return cfg;
}

TEST(InlineTasks, ChainResultsUnchanged) {
  for (int depth : {0, 1, 8, 64}) {
    ttg::World world(inline_config(depth));
    ttg::Edge<int, long> e("chain");
    std::atomic<long> last{-1};
    auto tt = ttg::make_tt<int>(
        [&](const int& k, long& v, auto& outs) {
          if (k < 500) {
            ttg::send<0>(k + 1, v + k, outs);
          } else {
            last.store(v);
          }
        },
        ttg::edges(e), ttg::edges(e), "step", world);
    world.execute();
    tt->send_input<0>(0, 0L);
    world.fence();
    long expect = 0;
    for (int k = 0; k < 500; ++k) expect += k;
    EXPECT_EQ(last.load(), expect) << "depth " << depth;
    EXPECT_EQ(world.total_tasks_executed(), 501u) << "depth " << depth;
  }
}

TEST(InlineTasks, DepthIsBounded) {
  // A deep fan-out must not recurse past the limit: observe the worker's
  // inline depth from inside tasks.
  constexpr int kLimit = 4;
  ttg::World world(inline_config(kLimit));
  ttg::Edge<int, ttg::Void> e("tree");
  std::atomic<int> max_depth{0};
  std::atomic<int> tasks{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto& outs) {
        tasks.fetch_add(1);
        ttg::Worker* w = ttg::Context::current_worker();
        ASSERT_NE(w, nullptr);
        int prev = max_depth.load();
        while (prev < w->inline_depth() &&
               !max_depth.compare_exchange_weak(prev, w->inline_depth())) {
        }
        EXPECT_LE(w->inline_depth(), kLimit);
        if (2 * k + 2 < 2047) {
          ttg::sendk<0>(2 * k + 1, outs);
          ttg::sendk<0>(2 * k + 2, outs);
        }
      },
      ttg::edges(e), ttg::edges(e), "node", world);
  world.execute();
  tt->sendk_input<0>(0);
  world.fence();
  EXPECT_EQ(tasks.load(), 2047);
  EXPECT_EQ(max_depth.load(), kLimit);
}

TEST(InlineTasks, ExternalSeedsAreNeverInlined) {
  // Sends from the application thread must go through the scheduler (the
  // main thread is not a worker), regardless of the inline setting.
  ttg::World world(inline_config(16));
  ttg::Edge<int, ttg::Void> e("in");
  std::atomic<int> on_worker{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) {
        if (ttg::Context::current_worker() != nullptr) {
          on_worker.fetch_add(1);
        }
      },
      ttg::edges(e), ttg::edges(), "leaf", world);
  world.execute();
  for (int k = 0; k < 10; ++k) tt->sendk_input<0>(k);
  world.fence();
  EXPECT_EQ(on_worker.load(), 10);
}

TEST(InlineTasks, ProducerMoveSurvivesNestedExecution) {
  // The inlined consumer runs in the middle of the producer's sends; the
  // producer's later zero-copy moves must still work (the thread-local
  // input-copy registrations are saved and restored around inlining).
  ttg::World world(inline_config(8));
  ttg::Edge<int, std::vector<int>> first("first"), second("second");
  std::atomic<int> consumed{0};
  std::atomic<const void*> producer_buf{nullptr};
  std::atomic<int> second_same{-1};

  auto sink1 = ttg::make_tt<int>(
      [&](const int&, std::vector<int>& v, auto&) {
        (void)v;
        consumed.fetch_add(1);
      },
      ttg::edges(first), ttg::edges(), "sink1", world);
  auto sink2 = ttg::make_tt<int>(
      [&](const int&, std::vector<int>& v, auto&) {
        second_same.store(v.data() == producer_buf.load() ? 1 : 0);
        consumed.fetch_add(1);
      },
      ttg::edges(second), ttg::edges(), "sink2", world);

  ttg::Edge<int, std::vector<int>> in("in");
  auto producer = ttg::make_tt<int>(
      [&](const int&, std::vector<int>& v, auto& outs) {
        producer_buf.store(v.data());
        // This send may execute sink1 inline ...
        ttg::send<0>(0, std::vector<int>{1, 2}, outs);
        // ... and this move must still recognize v as our input copy.
        ttg::send<1>(0, std::move(v), outs);
      },
      ttg::edges(in), ttg::edges(first, second), "producer", world);

  world.execute();
  producer->send_input<0>(0, std::vector<int>{7, 8, 9});
  world.fence();
  EXPECT_EQ(consumed.load(), 2);
  EXPECT_EQ(second_same.load(), 1)
      << "zero-copy move must survive an inlined nested task";
  (void)sink1;
  (void)sink2;
}

TEST(InlineTasks, MultiInputJoinsInlineToo) {
  ttg::World world(inline_config(8, 2));
  ttg::Edge<int, int> a("a"), b("b");
  ttg::Edge<int, ttg::Void> go("go");
  std::atomic<long> sum{0};
  auto join = ttg::make_tt<int>(
      [&](const int&, int& x, int& y, auto&) { sum.fetch_add(x * y); },
      ttg::edges(a, b), ttg::edges(), "join", world);
  auto src = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto& outs) {
        ttg::send<0>(k, k, outs);
        ttg::send<1>(k, k + 1, outs);  // completes the join: may inline
      },
      ttg::edges(go), ttg::edges(a, b), "src", world);
  world.execute();
  long expect = 0;
  for (int k = 0; k < 100; ++k) {
    src->sendk_input<0>(k);
    expect += static_cast<long>(k) * (k + 1);
  }
  world.fence();
  EXPECT_EQ(sum.load(), expect);
  (void)join;
}

}  // namespace
