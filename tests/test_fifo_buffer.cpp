#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "structures/bounded_buffer.hpp"
#include "structures/fifo.hpp"

namespace {

struct Node : ttg::LifoNode {
  int id = 0;
};

// ------------------------------------------------------------- LockedFifo

TEST(LockedFifo, FifoOrder) {
  ttg::LockedFifo fifo;
  Node nodes[3];
  for (int i = 0; i < 3; ++i) {
    nodes[i].id = i;
    fifo.push(&nodes[i]);
  }
  EXPECT_EQ(static_cast<Node*>(fifo.pop())->id, 0);
  EXPECT_EQ(static_cast<Node*>(fifo.pop())->id, 1);
  EXPECT_EQ(static_cast<Node*>(fifo.pop())->id, 2);
  EXPECT_EQ(fifo.pop(), nullptr);
}

TEST(LockedFifo, SizeTracksPushPop) {
  ttg::LockedFifo fifo;
  Node nodes[5];
  EXPECT_TRUE(fifo.empty());
  for (auto& n : nodes) fifo.push(&n);
  EXPECT_EQ(fifo.approx_size(), 5u);
  fifo.pop();
  EXPECT_EQ(fifo.approx_size(), 4u);
}

TEST(LockedFifo, ConcurrentProducersConsumers) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  ttg::LockedFifo fifo;
  std::vector<Node> nodes(kThreads * kPerThread);
  std::atomic<int> consumed{0};
  std::atomic<bool> done{false};

  std::vector<std::thread> producers;
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        fifo.push(&nodes[static_cast<std::size_t>(t) * kPerThread + i]);
      }
    });
  }
  std::thread consumer([&] {
    while (!done.load() || !fifo.empty()) {
      if (fifo.pop() != nullptr) consumed.fetch_add(1);
    }
  });
  for (auto& t : producers) t.join();
  done.store(true);
  consumer.join();
  EXPECT_EQ(consumed.load(), kThreads * kPerThread);
}

// -------------------------------------------------- BoundedPriorityBuffer

TEST(BoundedBuffer, PushUntilFullThenOverflow) {
  ttg::BoundedPriorityBuffer<4> buf;
  Node nodes[5];
  for (int i = 0; i < 4; ++i) {
    nodes[i].priority = 10;
    EXPECT_EQ(buf.push(&nodes[i]), nullptr);
  }
  // Equal priority: the newcomer is the overflow victim.
  nodes[4].priority = 10;
  EXPECT_EQ(buf.push(&nodes[4]), &nodes[4]);
}

TEST(BoundedBuffer, HigherPriorityEvictsLowest) {
  ttg::BoundedPriorityBuffer<2> buf;
  Node low, mid, high;
  low.priority = 1;
  mid.priority = 5;
  high.priority = 9;
  EXPECT_EQ(buf.push(&low), nullptr);
  EXPECT_EQ(buf.push(&mid), nullptr);
  // Full; high evicts low, which must be routed to the overflow queue.
  EXPECT_EQ(buf.push(&high), &low);
  EXPECT_EQ(static_cast<Node*>(buf.pop_best()), &high);
  EXPECT_EQ(static_cast<Node*>(buf.pop_best()), &mid);
  EXPECT_EQ(buf.pop_best(), nullptr);
}

TEST(BoundedBuffer, PopBestIsPriorityOrdered) {
  ttg::BoundedPriorityBuffer<8> buf;
  Node nodes[5];
  const int prios[5] = {3, 9, 1, 7, 5};
  for (int i = 0; i < 5; ++i) {
    nodes[i].priority = prios[i];
    buf.push(&nodes[i]);
  }
  int last = 100;
  for (int i = 0; i < 5; ++i) {
    Node* n = static_cast<Node*>(buf.pop_best());
    ASSERT_NE(n, nullptr);
    EXPECT_LE(n->priority, last);
    last = n->priority;
  }
}

TEST(BoundedBuffer, StealTakesOne) {
  ttg::BoundedPriorityBuffer<4> buf;
  Node a, b;
  buf.push(&a);
  buf.push(&b);
  EXPECT_NE(buf.steal(), nullptr);
  EXPECT_NE(buf.steal(), nullptr);
  EXPECT_EQ(buf.steal(), nullptr);
  EXPECT_TRUE(buf.empty());
}

TEST(BoundedBuffer, ConcurrentOwnersAndThieves) {
  constexpr int kNodes = 20000;
  ttg::BoundedPriorityBuffer<8> buf;
  std::vector<Node> nodes(kNodes);
  std::vector<std::atomic<int>> seen(kNodes);
  for (auto& s : seen) s.store(0);
  std::atomic<int> total{0};
  std::atomic<bool> done{false};

  std::thread thief([&] {
    while (!done.load() || !buf.empty()) {
      if (ttg::LifoNode* p = buf.steal(); p != nullptr) {
        seen[static_cast<Node*>(p)->id].fetch_add(1);
        total.fetch_add(1);
      }
    }
  });
  for (int i = 0; i < kNodes; ++i) {
    nodes[i].id = i;
    nodes[i].priority = i % 13;
    ttg::LifoNode* overflow = buf.push(&nodes[i]);
    if (overflow != nullptr) {
      // Account overflowed tasks as immediately consumed.
      seen[static_cast<Node*>(overflow)->id].fetch_add(1);
      total.fetch_add(1);
    }
  }
  done.store(true);
  thief.join();
  while (ttg::LifoNode* p = buf.pop_best()) {
    seen[static_cast<Node*>(p)->id].fetch_add(1);
    total.fetch_add(1);
  }
  EXPECT_EQ(total.load(), kNodes);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

}  // namespace
