#include <gtest/gtest.h>

#include "common/small_vector.hpp"

namespace {

using ttg::SmallVector;

TEST(SmallVector, StartsEmpty) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
}

TEST(SmallVector, InlinePushAndIndex) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i * 10);
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i * 10);
}

TEST(SmallVector, SpillsToHeapPreservingContents) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 100; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVector, IterationMatchesIndices) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 10; ++i) v.push_back(i);
  int expect = 0;
  for (int x : v) EXPECT_EQ(x, expect++);
  EXPECT_EQ(expect, 10);
}

TEST(SmallVector, CopyIndependent) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 10; ++i) a.push_back(i);
  SmallVector<int, 2> b(a);
  b.push_back(99);
  EXPECT_EQ(a.size(), 10u);
  EXPECT_EQ(b.size(), 11u);
  EXPECT_EQ(b[10], 99);
  EXPECT_EQ(a[9], 9);
}

TEST(SmallVector, MoveStealsHeap) {
  SmallVector<int, 2> a;
  for (int i = 0; i < 50; ++i) a.push_back(i);
  const int* data = a.data();
  SmallVector<int, 2> b(std::move(a));
  EXPECT_EQ(b.data(), data);  // heap buffer moved, not copied
  EXPECT_EQ(b.size(), 50u);
  EXPECT_EQ(a.size(), 0u);
}

TEST(SmallVector, MoveOfInlineCopies) {
  SmallVector<int, 8> a;
  a.push_back(1);
  a.push_back(2);
  SmallVector<int, 8> b(std::move(a));
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b[0], 1);
  EXPECT_EQ(b[1], 2);
}

TEST(SmallVector, ClearResetsToInline) {
  SmallVector<int, 2> v;
  for (int i = 0; i < 50; ++i) v.push_back(i);
  v.clear();
  EXPECT_TRUE(v.empty());
  v.push_back(5);
  EXPECT_EQ(v[0], 5);
}

TEST(SmallVector, ReserveDoesNotChangeSize) {
  SmallVector<int, 2> v;
  v.push_back(1);
  v.reserve(64);
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 1);
}

TEST(SmallVector, HoldsPointers) {
  int a = 1, b = 2;
  SmallVector<int*, 2> v;
  v.push_back(&a);
  v.push_back(&b);
  v.push_back(&a);
  EXPECT_EQ(*v[0], 1);
  EXPECT_EQ(*v[2], 1);
  EXPECT_EQ(v[1], &b);
}

}  // namespace
