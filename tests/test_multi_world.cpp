// Multi-tenant serving mode (docs/serving.md): one shared Runtime
// engine pool, many lightweight tenant Worlds.
//
// The invariants under test: every tenant epoch terminates on its own
// pending counter (no engine-wide fence), faults/aborts/deadlines are
// scoped to one World while siblings run to completion untouched,
// admission control bounds in-flight epochs (shedding or queueing
// exactly per policy), replay epochs interleave with dynamic ones on
// the same workers, and the Submission handle answers done()/wait()/
// status()/rethrow() — including from a stale handle after the World
// moved on, and from a collector thread after the seeder sealed.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <functional>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

ttg::RuntimeOptions runtime_options(int threads = 2) {
  ttg::RuntimeOptions opts;
  opts.config = test_config(threads);
  return opts;
}

/// A self-contained serial chain graph on `world`: seeding key 0 runs
/// `len` tasks. The TT lives as long as the returned holder.
struct Chain {
  ttg::Edge<int, ttg::Void> edge{"ctl"};
  std::atomic<int> ran{0};
  std::shared_ptr<void> tt;

  Chain(ttg::World& world, int len) {
    std::shared_ptr node = ttg::make_tt<int>(
        [this, len](const int& k, const ttg::Void&, auto& outs) {
          ran.fetch_add(1, std::memory_order_relaxed);
          if (k + 1 < len) ttg::sendk<0>(k + 1, outs);
        },
        ttg::edges(edge), ttg::edges(edge), "chain", world);
    seed_ = [node] { node->template sendk_input<0>(0); };
    tt = node;
  }
  void seed() { seed_(); }

 private:
  std::function<void()> seed_;
};

TEST(MultiWorld, TenantWorldRunsDynamicEpochs) {
  ttg::Runtime rt(runtime_options());
  ttg::WorldOptions wo;
  wo.name = "basic";
  auto world = rt.make_world(wo);
  ASSERT_NE(world->runtime(), nullptr);
  ASSERT_NE(world->tenant(), nullptr);
  EXPECT_GT(world->id(), 0u);
  EXPECT_EQ(world->name(), "basic");

  Chain chain(*world, 100);
  for (int epoch = 0; epoch < 3; ++epoch) {
    ttg::Submission s = world->execute();
    chain.seed();
    const ttg::Status st = s.wait();
    EXPECT_TRUE(st.ok()) << st.reason;
    EXPECT_TRUE(s.done());
  }
  EXPECT_EQ(chain.ran.load(), 300);
  EXPECT_EQ(world->total_tasks_executed(), 300u);
  EXPECT_EQ(world->tenant()->pending(), 0);
  EXPECT_EQ(rt.live_worlds(), 1);
}

TEST(MultiWorld, FaultIsolatedToOneWorld) {
  ttg::Runtime rt(runtime_options());
  auto bad = rt.make_world();
  auto good = rt.make_world();

  ttg::Edge<int, ttg::Void> e("e");
  auto thrower = ttg::make_tt<int>(
      [](const int& k, const ttg::Void&, auto&) {
        if (k == 7) throw std::runtime_error("tenant boom");
      },
      ttg::edges(e), ttg::edges(), "thrower", *bad);
  Chain chain(*good, 500);

  ttg::Submission sb = bad->execute();
  ttg::Submission sg = good->execute();
  for (int k = 0; k < 64; ++k) thrower->sendk_input<0>(k);
  chain.seed();
  bad->seal_seeds();
  good->seal_seeds();

  const ttg::Status stb = sb.wait();
  const ttg::Status stg = sg.wait();
  EXPECT_TRUE(stb.failed());
  EXPECT_NE(stb.reason.find("tenant boom"), std::string::npos) << stb.reason;
  EXPECT_THROW(sb.rethrow(), std::runtime_error);
  // The sibling on the same engine is untouched by the failure.
  EXPECT_TRUE(stg.ok()) << stg.reason;
  EXPECT_EQ(chain.ran.load(), 500);
  // Every discovery of the failed tenant retired (executed or dropped).
  EXPECT_EQ(bad->tenant()->pending(), 0);
  EXPECT_GE(bad->tenant()->failed(), 1u);

  // The failed World is reusable: the next epoch starts healthy.
  ttg::Submission again = bad->execute();
  thrower->sendk_input<0>(1000);
  EXPECT_TRUE(again.wait().ok());
}

TEST(MultiWorld, AbortIsolatedToSibling) {
  ttg::Runtime rt(runtime_options());
  auto aborted = rt.make_world();
  auto sibling = rt.make_world();
  Chain victim(*aborted, 100000);
  Chain survivor(*sibling, 2000);

  ttg::Submission sa = aborted->execute();
  ttg::Submission ss = sibling->execute();
  victim.seed();
  survivor.seed();
  aborted->seal_seeds();
  sibling->seal_seeds();
  aborted->abort("test abort");

  const ttg::Status sta = sa.wait();
  EXPECT_TRUE(sta.aborted());
  EXPECT_EQ(sta.reason, "test abort");
  EXPECT_THROW(sa.rethrow(), ttg::WorldAborted);
  const ttg::Status sts = ss.wait();
  EXPECT_TRUE(sts.ok()) << sts.reason;
  EXPECT_EQ(survivor.ran.load(), 2000);
  EXPECT_EQ(aborted->tenant()->pending(), 0);
}

TEST(MultiWorld, ConcurrentWorldsInterleave) {
  constexpr int kWorlds = 32;
  constexpr int kLen = 64;
  ttg::Runtime rt(runtime_options());
  std::vector<std::unique_ptr<ttg::World>> worlds;
  std::vector<std::unique_ptr<Chain>> chains;
  std::vector<ttg::Submission> handles;
  for (int i = 0; i < kWorlds; ++i) {
    worlds.push_back(rt.make_world());
    chains.push_back(std::make_unique<Chain>(*worlds.back(), kLen));
  }
  // Open every epoch before seeding any: all kWorlds epochs are
  // in flight on the shared workers at once.
  for (auto& w : worlds) handles.push_back(w->execute());
  EXPECT_EQ(rt.live_worlds(), kWorlds);
  for (int i = 0; i < kWorlds; ++i) {
    chains[static_cast<std::size_t>(i)]->seed();
    worlds[static_cast<std::size_t>(i)]->seal_seeds();
  }
  for (int i = 0; i < kWorlds; ++i) {
    const ttg::Status st = handles[static_cast<std::size_t>(i)].wait();
    EXPECT_TRUE(st.ok()) << "world " << i << ": " << st.reason;
    EXPECT_EQ(chains[static_cast<std::size_t>(i)]->ran.load(), kLen);
  }
  EXPECT_GE(rt.total_tasks_executed(),
            static_cast<std::uint64_t>(kWorlds) * kLen);
}

TEST(MultiWorld, ShedPolicyRejectsOverLimit) {
  ttg::RuntimeOptions opts = runtime_options();
  opts.max_inflight_worlds = 1;
  opts.admission = ttg::AdmissionPolicy::kShed;
  ttg::Runtime rt(opts);
  auto first = rt.make_world();
  auto second = rt.make_world();
  Chain c1(*first, 50);
  Chain c2(*second, 50);

  ttg::Submission s1 = first->execute();
  EXPECT_EQ(rt.inflight_epochs(), 1);
  // The gate is full: the second epoch is shed immediately and its
  // seeds drop at ingress.
  ttg::Submission s2 = second->execute();
  c2.seed();
  const ttg::Status st2 = s2.wait();
  EXPECT_TRUE(st2.shed()) << st2.reason;
  EXPECT_TRUE(s2.cancelled());
  EXPECT_THROW(s2.rethrow(), ttg::WorldAborted);
  EXPECT_EQ(c2.ran.load(), 0);
  EXPECT_EQ(rt.epochs_shed(), 1u);

  c1.seed();
  EXPECT_TRUE(s1.wait().ok());
  EXPECT_EQ(rt.inflight_epochs(), 0);

  // With the slot freed the shed World admits cleanly.
  ttg::Submission s3 = second->execute();
  c2.seed();
  EXPECT_TRUE(s3.wait().ok());
  EXPECT_EQ(c2.ran.load(), 50);
}

TEST(MultiWorld, QueuePolicyBlocksThenAdmits) {
  ttg::RuntimeOptions opts = runtime_options();
  opts.max_inflight_worlds = 1;
  opts.admission = ttg::AdmissionPolicy::kQueue;
  ttg::Runtime rt(opts);
  auto first = rt.make_world();
  auto second = rt.make_world();
  Chain c1(*first, 50);
  Chain c2(*second, 50);

  ttg::Submission s1 = first->execute();
  c1.seed();
  first->seal_seeds();

  std::atomic<bool> admitted{false};
  std::thread submitter([&] {
    // Blocks in FIFO order until the first epoch's slot frees.
    ttg::Submission s2 = second->execute();
    admitted.store(true, std::memory_order_release);
    c2.seed();
    EXPECT_TRUE(s2.wait().ok());
  });
  // Give the submitter time to reach the gate, then release the slot.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_TRUE(s1.wait().ok());
  submitter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(c2.ran.load(), 50);
  EXPECT_EQ(rt.epochs_shed(), 0u);
}

TEST(MultiWorld, DeadlineAbortsOverdueEpoch) {
  ttg::Runtime rt(runtime_options());
  ttg::WorldOptions wo;
  wo.deadline_ms = 50;
  auto world = rt.make_world(wo);
  ttg::World* wptr = world.get();

  ttg::Edge<int, ttg::Void> e("e");
  auto tt = ttg::make_tt<int>(
      [wptr](const int&, const ttg::Void&, auto&) {
        // Overstay the deadline; the abort edge releases the spin.
        while (!wptr->cancelled()) std::this_thread::yield();
      },
      ttg::edges(e), ttg::edges(), "laggard", *world);

  ttg::Submission s = world->execute();
  tt->sendk_input<0>(0);
  const ttg::Status st = s.wait();
  EXPECT_TRUE(st.aborted());
  EXPECT_NE(st.reason.find("deadline"), std::string::npos) << st.reason;

  // A fast epoch under the same deadline stays healthy even after the
  // deadline would have passed (the registration is cancelled at wait).
  ttg::Submission fast = world->execute();
  const ttg::Status st2 = fast.wait();
  EXPECT_TRUE(st2.ok()) << st2.reason;
  std::this_thread::sleep_for(std::chrono::milliseconds(80));
  EXPECT_TRUE(fast.status().ok());
}

TEST(MultiWorld, PriorityClassFeedsTaskPriority) {
  ttg::RuntimeOptions opts = runtime_options();
  opts.config.scheduler = ttg::SchedulerType::kLLP;
  ttg::Runtime rt(opts);
  ttg::WorldOptions high;
  high.priority_class = 2;
  ttg::WorldOptions low;
  low.priority_class = -1;
  auto hw = rt.make_world(high);
  auto lw = rt.make_world(low);
  EXPECT_EQ(hw->priority_boost(), 2 << ttg::WorldOptions::kPriorityClassShift);
  EXPECT_EQ(lw->priority_boost(),
            -(1 << ttg::WorldOptions::kPriorityClassShift));

  Chain ch(*hw, 200);
  Chain cl(*lw, 200);
  ttg::Submission sh = hw->execute();
  ttg::Submission sl = lw->execute();
  ch.seed();
  cl.seed();
  hw->seal_seeds();
  lw->seal_seeds();
  EXPECT_TRUE(sh.wait().ok());
  EXPECT_TRUE(sl.wait().ok());
  EXPECT_EQ(ch.ran.load(), 200);
  EXPECT_EQ(cl.ran.load(), 200);
}

TEST(MultiWorld, SubmissionOutlivesItsEpoch) {
  ttg::Runtime rt(runtime_options());
  auto world = rt.make_world();
  Chain chain(*world, 10);

  ttg::Submission stale;
  EXPECT_FALSE(stale.valid());
  EXPECT_FALSE(stale.done());

  stale = world->execute();
  chain.seed();
  EXPECT_TRUE(stale.wait().ok());

  // Start (and fail) the next epoch: the stale handle keeps reporting
  // the most recently completed status without blocking.
  ttg::Submission next = world->execute();
  world->abort("second epoch abort");
  EXPECT_TRUE(next.wait().aborted());
  EXPECT_TRUE(stale.done());
  EXPECT_TRUE(stale.wait().aborted());  // most-recent completion
}

TEST(MultiWorld, CollectorThreadWaitsAfterSeal) {
  ttg::Runtime rt(runtime_options());
  auto world = rt.make_world();
  Chain chain(*world, 1000);

  ttg::Submission s = world->execute();
  std::thread collector([&] {
    const ttg::Status st = s.wait();
    EXPECT_TRUE(st.ok()) << st.reason;
  });
  chain.seed();
  // The seeding thread seals; only then may the collector's wait()
  // complete the epoch.
  world->seal_seeds();
  collector.join();
  EXPECT_EQ(chain.ran.load(), 1000);
}

TEST(MultiWorld, ReplayEpochsInterleaveWithDynamic) {
  ttg::Runtime rt(runtime_options());
  auto replayed = rt.make_world();
  auto dynamic = rt.make_world();
  Chain rc(*replayed, 128);
  Chain dc(*dynamic, 128);

  // Record once on the tenant world.
  replayed->begin_recording();
  rc.seed();
  replayed->fence();
  auto tmpl = replayed->end_recording();
  ASSERT_NE(tmpl, nullptr);
  ttg::ReplayInstance instance(tmpl);
  ASSERT_EQ(rc.ran.load(), 128);

  // Replay epochs and dynamic sibling epochs share the workers. Seeding
  // is per-thread state, so seal each world before seeding the next.
  for (int round = 0; round < 3; ++round) {
    ttg::Submission sr = replayed->execute_replay(instance);
    rc.seed();
    replayed->seal_seeds();
    ttg::Submission sd = dynamic->execute();
    dc.seed();
    dynamic->seal_seeds();
    EXPECT_TRUE(sr.wait().ok());
    EXPECT_TRUE(sd.wait().ok());
  }
  EXPECT_EQ(rc.ran.load(), 128 * 4);
  EXPECT_EQ(dc.ran.load(), 128 * 3);
  EXPECT_EQ(replayed->tenant()->pending(), 0);
}

TEST(MultiWorld, TwoFiftySixWorldsInFlight) {
  constexpr int kWorlds = 256;
  constexpr int kLen = 4;
  ttg::RuntimeOptions opts = runtime_options();
  opts.max_inflight_worlds = kWorlds;  // exactly at the bound
  opts.admission = ttg::AdmissionPolicy::kShed;
  ttg::Runtime rt(opts);

  std::vector<std::unique_ptr<ttg::World>> worlds;
  std::vector<std::unique_ptr<Chain>> chains;
  std::vector<ttg::Submission> handles;
  worlds.reserve(kWorlds);
  for (int i = 0; i < kWorlds; ++i) {
    worlds.push_back(rt.make_world());
    chains.push_back(std::make_unique<Chain>(*worlds.back(), kLen));
  }
  for (int i = 0; i < kWorlds; ++i) {
    handles.push_back(worlds[static_cast<std::size_t>(i)]->execute());
    chains[static_cast<std::size_t>(i)]->seed();
    worlds[static_cast<std::size_t>(i)]->seal_seeds();
  }
  // All 256 epochs were admitted (none shed at the 256 bound) and every
  // one completes.
  EXPECT_EQ(rt.epochs_shed(), 0u);
  EXPECT_EQ(rt.live_worlds(), kWorlds);
  for (int i = 0; i < kWorlds; ++i) {
    EXPECT_TRUE(handles[static_cast<std::size_t>(i)].wait().ok());
    EXPECT_EQ(chains[static_cast<std::size_t>(i)]->ran.load(), kLen);
  }
  EXPECT_GE(rt.total_tasks_executed(),
            static_cast<std::uint64_t>(kWorlds) * kLen);
  EXPECT_EQ(rt.inflight_epochs(), 0);
}

TEST(MultiWorld, StalledTenantIsDistinguishedFromQuietEngine) {
  ttg::RuntimeOptions opts = runtime_options();
  opts.config.watchdog_quiet_ms = 50;
  ttg::Runtime rt(opts);
  ttg::WorldOptions wo;
  wo.name = "stuck";
  auto stuck = rt.make_world(wo);
  auto busy = rt.make_world();

  std::atomic<bool> release{false};
  std::mutex report_mutex;
  std::string report;
  stuck->set_stall_handler([&](const std::string& r) {
    {
      std::lock_guard<std::mutex> lock(report_mutex);
      if (report.empty()) report = r;
    }
    release.store(true, std::memory_order_release);
  });

  ttg::Edge<int, ttg::Void> e("e");
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) {
        while (!release.load(std::memory_order_acquire)) {
          std::this_thread::yield();
        }
      },
      ttg::edges(e), ttg::edges(), "blocker", *stuck);

  ttg::Submission s = stuck->execute();
  tt->sendk_input<0>(0);
  stuck->seal_seeds();

  // Keep the sibling (and thus the engine) busy until the watchdog
  // attributes the stall to the stuck World alone.
  Chain chain(*busy, 64);
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (!release.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < give_up) {
    ttg::Submission sb = busy->execute();
    chain.seed();
    EXPECT_TRUE(sb.wait().ok());
  }
  ASSERT_TRUE(release.load()) << "watchdog never fired";
  EXPECT_TRUE(s.wait().ok());

  std::lock_guard<std::mutex> lock(report_mutex);
  EXPECT_NE(report.find("'stuck'"), std::string::npos) << report;
  EXPECT_NE(report.find("tenant-local stall"), std::string::npos)
      << "the engine made progress, so the verdict must blame this "
         "World only:\n"
      << report;
}

TEST(MultiWorld, SiblingAbortLeavesSuspendedTenantUntouched) {
  // Tenant A parks coroutine bodies on its InputGate; tenant B aborts.
  // Cancellation sweeps are per-World (B's fault pointer matches only
  // B's tasks on the shared timer wheel, and only B's gate registry is
  // purged), so A's parked frames must survive and resume normally.
  ttg::Runtime rt(runtime_options());
  auto suspended = rt.make_world();
  auto doomed = rt.make_world();

  ttg::InputGate<int> gate(*suspended);
  constexpr int kWaiters = 8;
  std::atomic<int> woke{0};
  ttg::Edge<int, ttg::Void> ae("a");
  auto waiter_tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        // Park on the timer wheel first so both rendezvous kinds are
        // exposed to the sibling's purge, then on the gate.
        co_await ttg::suspend_for(std::chrono::milliseconds(5));
        const int v = co_await gate;
        woke.fetch_add(v, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(ae), ttg::edges(), "survivor", *suspended);

  ttg::Edge<int, ttg::Void> be("b");
  auto doomed_tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) {
        doomed->abort("sibling goes down");
      },
      ttg::edges(be), ttg::edges(), "doomed", *doomed);

  ttg::Submission sa = suspended->execute();
  for (int k = 0; k < kWaiters; ++k) waiter_tt->sendk_input<0>(k);
  // Every waiter's timer park has resumed and re-parked on the gate
  // once two segments per task have retired.
  while (suspended->total_tasks_executed() <
         static_cast<std::uint64_t>(2 * kWaiters)) {
    std::this_thread::yield();
  }

  ttg::Submission sb = doomed->execute();
  doomed_tt->sendk_input<0>(0);
  const ttg::Status stb = sb.wait();
  EXPECT_TRUE(stb.aborted());

  // A's frames are still parked and functional after B's teardown.
  EXPECT_EQ(woke.load(), 0);
  gate.fulfill(1);
  const ttg::Status sta = sa.wait();
  EXPECT_TRUE(sta.ok()) << sta.reason;
  EXPECT_EQ(woke.load(), kWaiters);
  EXPECT_EQ(suspended->tenant()->pending(), 0);
}

TEST(MultiWorld, DeadlineRetiresParkedCoroutineFrames) {
  // A tenant epoch whose bodies park on a never-fulfilled gate and on
  // far-future timers must still honor its deadline: the monitor aborts
  // the World and the purge claims every parked frame (destroying it at
  // the suspension point) so the epoch drains instead of hanging.
  ttg::Runtime rt(runtime_options());
  ttg::WorldOptions wo;
  wo.deadline_ms = 50;
  auto world = rt.make_world(wo);

  ttg::InputGate<int> gate(*world);
  constexpr int kWaiters = 4;
  constexpr int kSleepers = 4;
  std::atomic<int> resumed{0};
  ttg::Edge<int, ttg::Void> ge("g"), se("s");
  auto gate_tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        (void)co_await gate;
        resumed.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(ge), ttg::edges(), "gated", *world);
  auto sleep_tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        co_await ttg::suspend_for(std::chrono::seconds(30));
        resumed.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(se), ttg::edges(), "overslept", *world);

  ttg::Submission s = world->execute();
  for (int k = 0; k < kWaiters; ++k) gate_tt->sendk_input<0>(k);
  for (int k = 0; k < kSleepers; ++k) sleep_tt->sendk_input<0>(k);
  const auto t0 = std::chrono::steady_clock::now();
  const ttg::Status st = s.wait();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(st.aborted());
  EXPECT_NE(st.reason.find("deadline"), std::string::npos) << st.reason;
  EXPECT_LT(elapsed, std::chrono::seconds(10))
      << "the deadline must cancel parked frames, not wait for timers";
  EXPECT_EQ(resumed.load(), 0);
  EXPECT_EQ(world->tenant()->pending(), 0);

  // The next epoch on the same World is healthy.
  std::atomic<int> ok{0};
  ttg::Edge<int, ttg::Void> he("h");
  auto healthy = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        co_await ttg::yield{};
        ok.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(he), ttg::edges(), "healthy", *world);
  ttg::Submission fast = world->execute();
  for (int k = 0; k < 4; ++k) healthy->sendk_input<0>(k);
  EXPECT_TRUE(fast.wait().ok());
  EXPECT_EQ(ok.load(), 4);
}

}  // namespace
