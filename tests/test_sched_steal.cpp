// Steal-half batching and sharded ingress (docs/scheduling.md).
//
// Covers the contention-hardening layer end to end at the scheduler
// API: bounded batch steals install their remainder in the thief's
// queue (priority-correctly for LLP), ingress shards route external
// submissions per steal domain without losing tasks, and the steal
// accounting splits ingress hits from genuine victim probes.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "sched/lfq.hpp"
#include "sched/ll.hpp"
#include "sched/llp.hpp"
#include "sched/scheduler.hpp"

namespace {

struct Node : ttg::LifoNode {
  int id = 0;
};

using ttg::SchedulerType;

// --------------------------------------------------------------- steal-half

TEST(StealHalf, LlThiefTakesBatchAndInstallsRemainder) {
  ttg::LlScheduler sched(2);
  Node nodes[8];
  for (auto& n : nodes) sched.push(0, &n);

  // Worker 1 is empty: one probe of victim 0 takes half the run (4 of
  // 8, under the cap), executes one, installs the other three locally.
  ASSERT_NE(sched.pop(1), nullptr);
  auto stats = sched.steal_stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.successes, 1u);
  EXPECT_EQ(stats.batches, 1u);
  EXPECT_EQ(stats.batch_tasks, 4u);

  // The remainder is local to worker 1 now: three pops, no new probes.
  for (int i = 0; i < 3; ++i) ASSERT_NE(sched.pop(1), nullptr);
  stats = sched.steal_stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.successes, 1u);

  // Victim keeps the other half.
  int left = 0;
  while (sched.pop(0) != nullptr) ++left;
  EXPECT_EQ(left, 4);
}

TEST(StealHalf, BatchIsCappedAtKStealBatchCap) {
  ttg::LlScheduler sched(2);
  std::vector<Node> nodes(4 * ttg::kStealBatchCap);
  for (auto& n : nodes) sched.push(0, &n);
  ASSERT_NE(sched.pop(1), nullptr);
  const auto stats = sched.steal_stats();
  EXPECT_EQ(stats.batch_tasks, ttg::kStealBatchCap);
}

TEST(StealHalf, LlpStolenBatchPreservesPriorityOrder) {
  ttg::LlpScheduler sched(2);
  Node nodes[8];
  for (int i = 0; i < 8; ++i) {
    nodes[i].id = i;
    nodes[i].priority = i + 1;  // ascending pushes: fast-path head CAS
    sched.push(0, &nodes[i]);
  }
  // Victim queue is 8,7,...,1 by priority. The thief takes the sorted
  // prefix {8,7,6,5}: the pop returns 8 and {7,6,5} land in worker 1's
  // queue, which must keep serving descending priorities.
  Node* first = static_cast<Node*>(sched.pop(1));
  ASSERT_NE(first, nullptr);
  EXPECT_EQ(first->priority, 8);
  int last = first->priority;
  for (int i = 0; i < 3; ++i) {
    Node* n = static_cast<Node*>(sched.pop(1));
    ASSERT_NE(n, nullptr);
    EXPECT_LE(n->priority, last);
    last = n->priority;
  }
  // Victim still pops its remaining half in descending order.
  last = 1000;
  for (int i = 0; i < 4; ++i) {
    Node* n = static_cast<Node*>(sched.pop(0));
    ASSERT_NE(n, nullptr);
    EXPECT_LE(n->priority, last);
    last = n->priority;
  }
  EXPECT_EQ(sched.pop(0), nullptr);
  EXPECT_EQ(sched.pop(1), nullptr);
}

// --------------------------------------------------------- steal accounting

TEST(StealAccounting, IngressHitIsNotASteal) {
  // One worker, one shard: an externally pushed task is found in the
  // ingress queue *before* any victim probe, so it must count as an
  // ingress hit — not as a steal attempt, success, or failure.
  ttg::LlScheduler sched(1);
  Node n;
  sched.push(ttg::kExternalWorker, &n);
  EXPECT_EQ(sched.pop(0), &n);
  const auto stats = sched.steal_stats();
  EXPECT_EQ(stats.ingress_hits, 1u);
  EXPECT_EQ(stats.attempts, 0u);
  EXPECT_EQ(stats.successes, 0u);
}

TEST(StealAccounting, FailedSweepCountsOneAttempt) {
  ttg::LlScheduler sched(4);
  EXPECT_EQ(sched.pop(2), nullptr);
  const auto stats = sched.steal_stats();
  EXPECT_EQ(stats.attempts, 1u);
  EXPECT_EQ(stats.successes, 0u);
  EXPECT_EQ(stats.ingress_hits, 0u);
}

TEST(StealAccounting, LfqOverflowHitIsIngress) {
  ttg::LfqScheduler sched(1);
  std::vector<Node> nodes(ttg::LfqScheduler::kLocalCapacity + 3);
  for (auto& n : nodes) sched.push(0, &n);
  int count = 0;
  while (sched.pop(0) != nullptr) ++count;
  EXPECT_EQ(count, static_cast<int>(nodes.size()));
  const auto stats = sched.steal_stats();
  EXPECT_EQ(stats.ingress_hits, 3u);  // the overflowed tasks
  EXPECT_EQ(stats.successes, 0u);
}

// ----------------------------------------------------------- ingress shards

TEST(IngressShards, ShardCountFollowsDomains) {
  // Flat steal order: one shard per worker, clamped at kMaxShards.
  EXPECT_EQ(ttg::IngressShards(2, 0).num_shards(), 2);
  EXPECT_EQ(ttg::IngressShards(32, 1).num_shards(), 32);
  EXPECT_EQ(ttg::IngressShards(2 * ttg::IngressShards::kMaxShards, 1)
                .num_shards(),
            ttg::IngressShards::kMaxShards);
  // Domains of 4 over 8 workers: one shard per domain.
  ttg::IngressShards sharded(8, 4);
  EXPECT_EQ(sharded.num_shards(), 2);
  for (int w = 0; w < 4; ++w) EXPECT_EQ(sharded.shard_of_worker(w), 0);
  for (int w = 4; w < 8; ++w) EXPECT_EQ(sharded.shard_of_worker(w), 1);
}

TEST(IngressShards, MoreThanEightDomainsGetDistinctShards) {
  // Regression for the old kMaxShards=8 cap: a 16-domain box (128
  // workers, domains of 8) used to ring-fold domains 8..15 onto shards
  // 0..7, sharing ingress cachelines across sockets. The cap now tracks
  // kMaxMemoryDomains, so every domain gets its own shard.
  static_assert(ttg::IngressShards::kMaxShards == ttg::kMaxMemoryDomains);
  static_assert(ttg::IngressShards::kMaxShards >= 16);
  ttg::IngressShards shards(128, 8);
  EXPECT_EQ(shards.num_shards(), 16);
  for (int w = 0; w < 128; ++w) {
    EXPECT_EQ(shards.shard_of_worker(w), w / 8) << "worker " << w;
  }
  // Distinctness across the old fold boundary: domain 8's workers no
  // longer share a shard with domain 0's.
  EXPECT_NE(shards.shard_of_worker(64), shards.shard_of_worker(0));
}

TEST(IngressShards, PopOtherSweepsForeignShards) {
  ttg::IngressShards shards(8, 4);  // 2 shards
  Node n;
  shards.push(&n);  // lands in the pushing thread's shard
  // Whichever shard it landed in, a worker of the *other* domain finds
  // it via its own-then-other sweep.
  ttg::LifoNode* got = shards.pop_own(0);
  if (got == nullptr) got = shards.pop_other(0);
  EXPECT_EQ(got, &n);
  EXPECT_EQ(shards.pop_any(), nullptr);
}

class ShardedIngressTest
    : public ::testing::TestWithParam<std::tuple<SchedulerType, int>> {};

TEST_P(ShardedIngressTest, ExternalPushersDrainExactlyOnce) {
  // Several external threads scatter pushes over the ingress shards
  // while pool workers pop concurrently; every task must surface
  // exactly once. Runs under the TSan CI job.
  const auto [type, domain] = GetParam();
  constexpr int kWorkers = 4;
  constexpr int kPushers = 3;
  constexpr int kPerPusher = 3000;
  auto sched = ttg::make_scheduler(type, kWorkers, domain);
  constexpr int total = kPushers * kPerPusher;
  std::vector<Node> nodes(static_cast<std::size_t>(total));
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(total));
  for (auto& s : seen) s.store(0);
  std::atomic<int> popped{0};
  std::atomic<bool> done_pushing{false};

  std::vector<std::thread> threads;
  for (int p = 0; p < kPushers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerPusher; ++i) {
        Node& n = nodes[static_cast<std::size_t>(p) * kPerPusher + i];
        n.id = p * kPerPusher + i;
        n.priority = i % 5;
        sched->push(ttg::kExternalWorker, &n);
      }
    });
  }
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      for (;;) {
        if (ttg::LifoNode* t = sched->pop(w); t != nullptr) {
          seen[static_cast<Node*>(t)->id].fetch_add(1);
          if (popped.fetch_add(1) + 1 == total) return;
        } else if (done_pushing.load() && popped.load() >= total) {
          return;
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kPushers; ++p) threads[p].join();
  done_pushing.store(true);
  for (std::size_t t = kPushers; t < threads.size(); ++t) threads[t].join();

  EXPECT_EQ(popped.load(), total);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    StealingSchedulers, ShardedIngressTest,
    ::testing::Combine(::testing::Values(SchedulerType::kLL,
                                         SchedulerType::kLLP),
                       ::testing::Values(0, 2)),
    [](const auto& info) {
      return std::string(ttg::to_string(std::get<0>(info.param))) +
             "_domain" + std::to_string(std::get<1>(info.param));
    });

// ----------------------------------------------------- steal-half stressing

class StealHalfStressTest : public ::testing::TestWithParam<SchedulerType> {
};

TEST_P(StealHalfStressTest, MixedStealsLoseNothing) {
  // Producers keep long runs on their own queues; consumers only steal.
  // Exercises pop_half racing push/pop/push_chain under TSan.
  constexpr int kProducers = 2;
  constexpr int kThieves = 2;
  constexpr int kPerProducer = 5000;
  auto sched = ttg::make_scheduler(GetParam(), kProducers + kThieves);
  constexpr int total = kProducers * kPerProducer;
  std::vector<Node> nodes(static_cast<std::size_t>(total));
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(total));
  for (auto& s : seen) s.store(0);
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        Node& n = nodes[static_cast<std::size_t>(p) * kPerProducer + i];
        n.id = p * kPerProducer + i;
        n.priority = i % 7;
        sched->push(p, &n);
        if (i % 8 == 0) {
          if (ttg::LifoNode* t = sched->pop(p); t != nullptr) {
            seen[static_cast<Node*>(t)->id].fetch_add(1);
            popped.fetch_add(1);
          }
        }
      }
    });
  }
  for (int c = 0; c < kThieves; ++c) {
    const int w = kProducers + c;
    threads.emplace_back([&, w] {
      while (popped.load() < total) {
        if (ttg::LifoNode* t = sched->pop(w); t != nullptr) {
          seen[static_cast<Node*>(t)->id].fetch_add(1);
          popped.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  // Producers done: let thieves finish the drain, with a final sweep
  // from worker 0 in case everything is already popped.
  for (std::size_t t = kProducers; t < threads.size(); ++t) threads[t].join();
  while (ttg::LifoNode* t = sched->pop(0)) {
    seen[static_cast<Node*>(t)->id].fetch_add(1);
    popped.fetch_add(1);
  }

  EXPECT_EQ(popped.load(), total);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);

  const auto stats = sched->steal_stats();
  EXPECT_GE(stats.batch_tasks, stats.successes);  // batches carry >= 1 task
}

INSTANTIATE_TEST_SUITE_P(StealingSchedulers, StealHalfStressTest,
                         ::testing::Values(SchedulerType::kLL,
                                           SchedulerType::kLLP),
                         [](const auto& info) {
                           return std::string(ttg::to_string(info.param));
                         });

}  // namespace
