#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "runtime/data_copy.hpp"

namespace {

struct TrackedValue {
  static inline int live = 0;
  int payload = 0;
  explicit TrackedValue(int p) : payload(p) { ++live; }
  TrackedValue(const TrackedValue& o) : payload(o.payload) { ++live; }
  TrackedValue(TrackedValue&& o) noexcept : payload(o.payload) { ++live; }
  ~TrackedValue() { --live; }
};

TEST(DataCopy, StartsUnique) {
  auto* copy = ttg::make_copy<int>(42);
  EXPECT_TRUE(copy->unique());
  EXPECT_EQ(copy->use_count(), 1);
  EXPECT_EQ(copy->value(), 42);
  copy->release();
}

TEST(DataCopy, RetainReleaseCounts) {
  auto* copy = ttg::make_copy<std::string>(std::string("hello"));
  copy->retain(2);
  EXPECT_EQ(copy->use_count(), 3);
  EXPECT_FALSE(copy->unique());
  copy->release();
  copy->release();
  EXPECT_TRUE(copy->unique());
  copy->release();  // destroys
}

TEST(DataCopy, LastReleaseDestroysValue) {
  TrackedValue::live = 0;
  auto* copy = ttg::make_copy<TrackedValue>(TrackedValue(7));
  EXPECT_EQ(TrackedValue::live, 1);
  copy->retain();
  copy->release();
  EXPECT_EQ(TrackedValue::live, 1);  // still one reference
  copy->release();
  EXPECT_EQ(TrackedValue::live, 0);  // destroyed with the copy
}

TEST(DataCopy, HoldsMoveOnlyConstructibleValues) {
  auto* copy =
      ttg::make_copy<std::vector<int>>(std::vector<int>{1, 2, 3});
  EXPECT_EQ(copy->value().size(), 3u);
  // Mutable access, like a task body modifying its input in place.
  copy->value().push_back(4);
  EXPECT_EQ(copy->value()[3], 4);
  copy->release();
}

TEST(DataCopy, RefcountAtomicsAreAccounted) {
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  auto* copy = ttg::make_copy<int>(1);
  copy->retain(3);  // 1 RMW regardless of count
  copy->release();
  copy->release();
  copy->release();
  copy->release();
  const auto snap = ttg::atomic_ops::snapshot();
  EXPECT_EQ(snap[ttg::AtomicOpCategory::kRefCount], 5u);
  ttg::atomic_ops::set_enabled(false);
}

}  // namespace
