#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/data_copy.hpp"

namespace {

struct TrackedValue {
  static inline int live = 0;
  int payload = 0;
  explicit TrackedValue(int p) : payload(p) { ++live; }
  TrackedValue(const TrackedValue& o) : payload(o.payload) { ++live; }
  TrackedValue(TrackedValue&& o) noexcept : payload(o.payload) { ++live; }
  ~TrackedValue() { --live; }
};

TEST(DataCopy, StartsUnique) {
  auto* copy = ttg::make_copy<int>(42);
  EXPECT_TRUE(copy->unique());
  EXPECT_EQ(copy->use_count(), 1);
  EXPECT_EQ(copy->value(), 42);
  copy->release();
}

TEST(DataCopy, RetainReleaseCounts) {
  auto* copy = ttg::make_copy<std::string>(std::string("hello"));
  copy->retain(2);
  EXPECT_EQ(copy->use_count(), 3);
  EXPECT_FALSE(copy->unique());
  copy->release();
  copy->release();
  EXPECT_TRUE(copy->unique());
  copy->release();  // destroys
}

TEST(DataCopy, LastReleaseDestroysValue) {
  TrackedValue::live = 0;
  auto* copy = ttg::make_copy<TrackedValue>(TrackedValue(7));
  EXPECT_EQ(TrackedValue::live, 1);
  copy->retain();
  copy->release();
  EXPECT_EQ(TrackedValue::live, 1);  // still one reference
  copy->release();
  EXPECT_EQ(TrackedValue::live, 0);  // destroyed with the copy
}

TEST(DataCopy, HoldsMoveOnlyConstructibleValues) {
  auto* copy =
      ttg::make_copy<std::vector<int>>(std::vector<int>{1, 2, 3});
  EXPECT_EQ(copy->value().size(), 3u);
  // Mutable access, like a task body modifying its input in place.
  copy->value().push_back(4);
  EXPECT_EQ(copy->value()[3], 4);
  copy->release();
}

struct PlainPayload {
  long a = 0, b = 0;
};

/// Same size (→ same pool size class) as PlainPayload, but the copy
/// constructor make_copy invokes throws.
struct ThrowingPayload {
  long a = 0, b = 0;
  ThrowingPayload() = default;
  ThrowingPayload(const ThrowingPayload&) {
    throw std::runtime_error("payload copy failed");
  }
};

TEST(DataCopy, ThrowingConstructorReturnsStorageToPool) {
  static_assert(sizeof(ttg::DataCopy<PlainPayload>) ==
                sizeof(ttg::DataCopy<ThrowingPayload>));
  // Warm the size class so the allocation under test is a free-list hit
  // rather than a fresh bump-chunk carve.
  ttg::make_copy<PlainPayload>(PlainPayload{})->release();
  const auto before = ttg::copy_pool_stats();
  const ThrowingPayload bad;
  EXPECT_THROW((void)ttg::make_copy<ThrowingPayload>(bad),
               std::runtime_error);
  const auto mid = ttg::copy_pool_stats();
  EXPECT_EQ(mid.hits, before.hits + 1)
      << "the failed construction must have drawn from the free list";
  EXPECT_EQ(mid.misses, before.misses);
  // The catch path returned the storage: the next same-class allocation
  // recycles it instead of carving fresh memory.
  auto* again = ttg::make_copy<PlainPayload>(PlainPayload{});
  const auto after = ttg::copy_pool_stats();
  EXPECT_EQ(after.hits, mid.hits + 1);
  EXPECT_EQ(after.misses, mid.misses);
  again->release();
}

TEST(DataCopy, RefcountAtomicsAreAccounted) {
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  auto* copy = ttg::make_copy<int>(1);
  copy->retain(3);  // 1 RMW regardless of count
  copy->release();
  copy->release();
  copy->release();
  copy->release();
  const auto snap = ttg::atomic_ops::snapshot();
  EXPECT_EQ(snap[ttg::AtomicOpCategory::kRefCount], 5u);
  ttg::atomic_ops::set_enabled(false);
}

}  // namespace
