// Tests for the layered runtime core: ParkingLot wake/sleep protocol,
// the unified Context::submit(SubmitHint) entry point (deferred, chain,
// may-inline shapes), and the pooled DataCopy allocation path with its
// hit/miss accounting (op counters + trace::summarize()).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "runtime/context.hpp"
#include "runtime/copy_pool.hpp"
#include "runtime/data_copy.hpp"
#include "runtime/parking_lot.hpp"
#include "runtime/trace.hpp"
#include "structures/mempool.hpp"

namespace {

// ----------------------------------------------------------- parking lot

TEST(ParkingLot, NotifyBetweenPrepareAndParkIsNotMissed) {
  // The missed-wakeup guard: a notify that lands after prepare_park()
  // must make the subsequent park() return instead of sleeping forever.
  ttg::ParkingLot lot;
  const auto epoch = lot.prepare_park();
  lot.notify();
  lot.park(epoch);  // must return immediately — epoch already moved
  SUCCEED();
}

TEST(ParkingLot, NotifyWakesParkedThread) {
  ttg::ParkingLot lot;
  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    const auto epoch = lot.prepare_park();
    lot.park(epoch);
    woke.store(true);
  });
  // Wait until the sleeper is actually registered, then wake it.
  while (lot.sleepers() == 0) std::this_thread::yield();
  EXPECT_EQ(lot.sleepers(), 1);
  lot.notify();
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_EQ(lot.sleepers(), 0);
}

TEST(ParkingLot, StaleEpochDoesNotBlock) {
  ttg::ParkingLot lot;
  const auto old_epoch = lot.prepare_park();
  lot.notify();
  lot.notify();
  lot.park(old_epoch);  // two epochs behind: returns immediately
  SUCCEED();
}

// ---------------------------------------------------------- submit hints

struct CountingTask : ttg::TaskBase {
  std::atomic<int>* counter;
};

void count_and_free(ttg::TaskBase* base, ttg::Worker&) {
  auto* task = static_cast<CountingTask*>(base);
  task->counter->fetch_add(1);
  ttg::MemoryPool* pool = task->pool;
  task->~CountingTask();
  pool->deallocate(task);
}

TEST(SubmitHints, ChainFromExternalThreadExecutesEveryTask) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 2;
  ttg::Context ctx(cfg);
  ttg::MemoryPool pool(sizeof(CountingTask));
  std::atomic<int> counter{0};
  constexpr int kTasks = 32;

  ctx.begin();
  // Build a descending-priority chain linked through LifoNode::next.
  CountingTask* head = nullptr;
  CountingTask* tail = nullptr;
  for (int i = 0; i < kTasks; ++i) {
    auto* task = new (pool.allocate()) CountingTask;
    task->execute = &count_and_free;
    task->pool = &pool;
    task->counter = &counter;
    task->priority = kTasks - i;
    task->next = nullptr;
    if (tail == nullptr) {
      head = tail = task;
    } else {
      tail->next = task;
      tail = task;
    }
  }
  ctx.on_discovered(kTasks);
  ctx.submit(head, ttg::SubmitHint::kChain);
  ctx.fence();
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(SubmitHints, MayInlineFromExternalThreadFallsBackToDeferred) {
  // External threads have no worker to inline on; the hint must degrade
  // to a plain scheduler push, not crash or drop the task.
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 1;
  cfg.inline_max_depth = 4;
  ttg::Context ctx(cfg);
  ttg::MemoryPool pool(sizeof(CountingTask));
  std::atomic<int> counter{0};
  ctx.begin();
  ASSERT_EQ(ttg::Context::current_worker(), nullptr);
  for (int i = 0; i < 10; ++i) {
    auto* task = new (pool.allocate()) CountingTask;
    task->execute = &count_and_free;
    task->pool = &pool;
    task->counter = &counter;
    ctx.on_discovered();
    ctx.submit(task, ttg::SubmitHint::kMayInline);
  }
  ctx.fence();
  EXPECT_EQ(counter.load(), 10);
}

struct InlineProbeTask : ttg::TaskBase {
  std::atomic<int>* executed;
  std::atomic<int>* max_depth;
  int remaining;
};

void inline_probe_execute(ttg::TaskBase* base, ttg::Worker& worker) {
  auto* task = static_cast<InlineProbeTask*>(base);
  task->executed->fetch_add(1);
  int seen = task->max_depth->load();
  while (worker.inline_depth() > seen &&
         !task->max_depth->compare_exchange_weak(seen, worker.inline_depth())) {
  }
  if (task->remaining > 0) {
    ttg::Context& ctx = worker.context();
    auto* child = new (task->pool->allocate()) InlineProbeTask;
    child->execute = &inline_probe_execute;
    child->pool = task->pool;
    child->executed = task->executed;
    child->max_depth = task->max_depth;
    child->remaining = task->remaining - 1;
    ctx.on_discovered();
    ctx.submit(child, ttg::SubmitHint::kMayInline);
  }
  ttg::MemoryPool* pool = task->pool;
  task->~InlineProbeTask();
  pool->deallocate(task);
}

TEST(SubmitHints, MayInlineNestsUpToConfiguredDepthOnly) {
  constexpr int kInlineMax = 3;
  constexpr int kChainLength = 20;
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 1;  // deterministic: all tasks on one worker
  cfg.inline_max_depth = kInlineMax;
  ttg::Context ctx(cfg);
  ttg::MemoryPool pool(sizeof(InlineProbeTask));
  std::atomic<int> executed{0};
  std::atomic<int> max_depth{0};

  ctx.begin();
  auto* root = new (pool.allocate()) InlineProbeTask;
  root->execute = &inline_probe_execute;
  root->pool = &pool;
  root->executed = &executed;
  root->max_depth = &max_depth;
  root->remaining = kChainLength;
  ctx.on_discovered();
  ctx.submit(root);
  ctx.fence();

  EXPECT_EQ(executed.load(), kChainLength + 1);
  // The chain is long enough to saturate the limit: the deepest body
  // observed exactly inline_max_depth, never beyond it.
  EXPECT_EQ(max_depth.load(), kInlineMax);
}

TEST(SubmitHints, InliningDisabledKeepsDepthAtZero) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 1;
  cfg.inline_max_depth = 0;
  ttg::Context ctx(cfg);
  ttg::MemoryPool pool(sizeof(InlineProbeTask));
  std::atomic<int> executed{0};
  std::atomic<int> max_depth{0};
  ctx.begin();
  auto* root = new (pool.allocate()) InlineProbeTask;
  root->execute = &inline_probe_execute;
  root->pool = &pool;
  root->executed = &executed;
  root->max_depth = &max_depth;
  root->remaining = 8;
  ctx.on_discovered();
  ctx.submit(root);
  ctx.fence();
  EXPECT_EQ(executed.load(), 9);
  EXPECT_EQ(max_depth.load(), 0);
}

struct FanoutTask : ttg::TaskBase {
  std::atomic<int>* counter;
  int children;
};

void fanout_execute(ttg::TaskBase* base, ttg::Worker& worker) {
  auto* task = static_cast<FanoutTask*>(base);
  task->counter->fetch_add(1);
  ttg::Context& ctx = worker.context();
  for (int i = 0; i < task->children; ++i) {
    auto* child = new (task->pool->allocate()) CountingTask;
    child->execute = &count_and_free;
    child->pool = task->pool;
    child->counter = task->counter;
    child->priority = i;
    ctx.on_discovered();
    ctx.submit(child, ttg::SubmitHint::kMayInline);
  }
  ttg::MemoryPool* pool = task->pool;
  task->~FanoutTask();
  pool->deallocate(task);
}

TEST(SubmitHints, WideFanoutBundlesAndLosesNothing) {
  // With inlining off and bundling on, a 100-successor body exercises
  // the pass-through first push, bundle growth, and the kMaxBatch early
  // flushes — every child must still run exactly once.
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 2;
  cfg.inline_max_depth = 0;
  cfg.bundle_successors = true;
  static_assert(sizeof(FanoutTask) >= sizeof(CountingTask));
  ttg::Context ctx(cfg);
  ttg::MemoryPool pool(sizeof(FanoutTask));
  std::atomic<int> counter{0};
  ctx.begin();
  auto* root = new (pool.allocate()) FanoutTask;
  root->execute = &fanout_execute;
  root->pool = &pool;
  root->counter = &counter;
  root->children = 100;
  ctx.on_discovered();
  ctx.submit(root);
  ctx.fence();
  EXPECT_EQ(counter.load(), 101);
}

// ------------------------------------------------------------- copy pool

TEST(CopyPool, ReleaseRecyclesStorageThroughFreeList) {
  // Warm-up: the first allocation in this size class may carve a fresh
  // chunk (miss); its release stocks the calling thread's free list.
  auto* first = ttg::make_copy<std::uint64_t>(std::uint64_t{41});
  void* storage = static_cast<void*>(first);
  first->release();
  // Same thread, same size class: LIFO recycling returns the block.
  auto* second = ttg::make_copy<std::uint64_t>(std::uint64_t{42});
  EXPECT_EQ(static_cast<void*>(second), storage);
  EXPECT_EQ(second->value(), 42u);
  second->release();
}

TEST(CopyPool, StatsCountHitsAndMisses) {
  const ttg::CopyPoolStats before = ttg::copy_pool_stats();
  auto* a = ttg::make_copy<double>(1.0);
  a->release();
  auto* b = ttg::make_copy<double>(2.0);  // recycles a's block: a hit
  b->release();
  const ttg::CopyPoolStats after = ttg::copy_pool_stats();
  EXPECT_EQ(after.hits + after.misses - (before.hits + before.misses), 2u);
  EXPECT_GE(after.hits - before.hits, 1u);
  EXPECT_EQ(after.heap_fallbacks, before.heap_fallbacks);
}

TEST(CopyPool, OversizedPayloadFallsBackToHeap) {
  struct Big {
    char bytes[2048];
  };
  const ttg::CopyPoolStats before = ttg::copy_pool_stats();
  auto* copy = ttg::make_copy<Big>(Big{});
  copy->value().bytes[2047] = 7;
  copy->release();  // must route through operator delete, not a pool
  const ttg::CopyPoolStats after = ttg::copy_pool_stats();
  EXPECT_EQ(after.heap_fallbacks - before.heap_fallbacks, 1u);
  EXPECT_GE(after.misses - before.misses, 1u);
}

TEST(CopyPool, OverAlignedPayloadFallsBackToHeap) {
  struct alignas(128) Wide {
    char c = 0;
  };
  const ttg::CopyPoolStats before = ttg::copy_pool_stats();
  auto* copy = ttg::make_copy<Wide>(Wide{});
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(copy) % 128, 0u);
  copy->release();
  const ttg::CopyPoolStats after = ttg::copy_pool_stats();
  EXPECT_EQ(after.heap_fallbacks - before.heap_fallbacks, 1u);
}

TEST(CopyPool, SharedCopyFreesOnlyOnLastRelease) {
  const ttg::CopyPoolStats before = ttg::copy_pool_stats();
  auto* copy = ttg::make_copy<int>(5);
  copy->retain(2);
  EXPECT_EQ(copy->use_count(), 3);
  copy->release();
  copy->release();
  EXPECT_TRUE(copy->unique());
  EXPECT_EQ(copy->value(), 5);  // still alive under the last reference
  copy->release();
  // Exactly one allocation happened regardless of the retain traffic.
  const ttg::CopyPoolStats after = ttg::copy_pool_stats();
  EXPECT_EQ(after.hits + after.misses - (before.hits + before.misses), 1u);
}

TEST(CopyPool, TraceSummarizeReportsPoolTraffic) {
  {
    ttg::trace::Config cfg;
    cfg.events_per_thread = 1 << 12;
    ttg::trace::Session session(cfg);
    auto* a = ttg::make_copy<float>(1.0f);
    a->release();
    auto* b = ttg::make_copy<float>(2.0f);
    b->release();
  }
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  for (const ttg::trace::ThreadSummary& s : ttg::trace::summarize()) {
    hits += s.pool_hits;
    misses += s.pool_misses;
  }
  EXPECT_EQ(hits + misses, 2u);
  EXPECT_GE(hits, 1u);  // the second allocation recycles the first block
}

TEST(CopyPool, CopiesFlowingThroughAContextAreRecycled) {
  // End-to-end: tasks allocate and release copies on worker threads; the
  // pool must absorb the traffic (hits once warm) with no heap fallback.
  struct CopyTask : ttg::TaskBase {
    std::atomic<int>* counter;
  };
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 2;
  ttg::Context ctx(cfg);
  ttg::MemoryPool pool(sizeof(CopyTask));
  std::atomic<int> counter{0};
  const ttg::CopyPoolStats before = ttg::copy_pool_stats();
  ctx.begin();
  for (int i = 0; i < 200; ++i) {
    auto* task = new (pool.allocate()) CopyTask;
    task->execute = [](ttg::TaskBase* base, ttg::Worker&) {
      auto* t = static_cast<CopyTask*>(base);
      auto* copy = ttg::make_copy<std::uint64_t>(std::uint64_t{7});
      t->counter->fetch_add(static_cast<int>(copy->value()) != 0 ? 1 : 0);
      copy->release();
      ttg::MemoryPool* p = t->pool;
      t->~CopyTask();
      p->deallocate(t);
    };
    task->pool = &pool;
    task->counter = &counter;
    ctx.on_discovered();
    ctx.submit(task);
  }
  ctx.fence();
  const ttg::CopyPoolStats after = ttg::copy_pool_stats();
  EXPECT_EQ(counter.load(), 200);
  EXPECT_EQ(after.hits + after.misses - (before.hits + before.misses), 200u);
  EXPECT_GE(after.hits - before.hits, 150u);  // steady state recycles
  EXPECT_EQ(after.heap_fallbacks, before.heap_fallbacks);
}

}  // namespace
