#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

TEST(World, ReportsConfigurationAndRanks) {
  ttg::Config cfg = test_config(3);
  ttg::World world(cfg, 2);
  EXPECT_EQ(world.num_ranks(), 2);
  EXPECT_EQ(world.context(0).num_threads(), 3);
  EXPECT_EQ(world.context(1).rank(), 1);
  EXPECT_EQ(world.current_rank(), 0);  // main thread acts as rank 0
}

TEST(World, FenceIsIdempotentPerEpoch) {
  ttg::World world(test_config());
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<int> n{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) { n.fetch_add(1); },
      ttg::edges(e), ttg::edges(), "leaf", world);
  world.execute();
  tt->sendk_input<0>(1);
  world.fence();
  EXPECT_EQ(n.load(), 1);
  // An empty epoch right after: execute + fence with no work.
  world.execute();
  world.fence();
  EXPECT_EQ(n.load(), 1);
}

TEST(World, OneEdgeManyConsumerTTs) {
  // A single output edge fans out to several independent template tasks;
  // each receives every datum (with a shared copy).
  ttg::World world(test_config());
  ttg::Edge<int, int> e("fan");
  std::atomic<long> sum_a{0}, sum_b{0}, sum_c{0};
  auto a = ttg::make_tt<int>(
      [&](const int&, int& v, auto&) { sum_a.fetch_add(v); },
      ttg::edges(e), ttg::edges(), "a", world);
  auto b = ttg::make_tt<int>(
      [&](const int&, int& v, auto&) { sum_b.fetch_add(2 * v); },
      ttg::edges(e), ttg::edges(), "b", world);
  auto c = ttg::make_tt<int>(
      [&](const int&, int& v, auto&) { sum_c.fetch_add(3 * v); },
      ttg::edges(e), ttg::edges(), "c", world);

  ttg::Edge<int, ttg::Void> go("go");
  auto src = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto& outs) {
        ttg::send<0>(k, int(k), outs);
      },
      ttg::edges(go), ttg::edges(e), "src", world);
  world.execute();
  long expect = 0;
  for (int k = 0; k < 25; ++k) {
    src->sendk_input<0>(k);
    expect += k;
  }
  world.fence();
  EXPECT_EQ(sum_a.load(), expect);
  EXPECT_EQ(sum_b.load(), 2 * expect);
  EXPECT_EQ(sum_c.load(), 3 * expect);
  (void)a;
  (void)b;
  (void)c;
}

TEST(World, HashTableResizesUnderTtgLoad) {
  // Thousands of half-satisfied joins force the TT's pending table to
  // grow by chaining while sends keep arriving; the second wave of
  // inputs drains it back down.
  ttg::World world(test_config(4));
  ttg::Edge<int, int> a("a"), b("b");
  std::atomic<int> fired{0};
  constexpr int kKeys = 20000;
  auto tt = ttg::make_tt<int>(
      [&](const int&, int&, int&, auto&) { fired.fetch_add(1); },
      ttg::edges(a, b), ttg::edges(), "join", world);
  world.execute();
  for (int k = 0; k < kKeys; ++k) tt->send_input<0>(k, k);
  EXPECT_EQ(tt->num_pending(), static_cast<std::size_t>(kKeys));
  EXPECT_GE(tt->hash_table().main_table_buckets(), 1024u)
      << "the pending table must have grown by chaining";
  for (int k = kKeys - 1; k >= 0; --k) tt->send_input<1>(k, k);
  world.fence();
  EXPECT_EQ(fired.load(), kKeys);
  EXPECT_EQ(tt->num_pending(), 0u);
  tt->hash_table().retire_empty_tables();
  EXPECT_EQ(tt->hash_table().num_tables(), 1)
      << "drained old tables must be retired";
}

TEST(World, WorkersParkWhenIdle) {
  // After a fence, workers must stop consuming CPU (they park on the
  // futex-style signal). We can't measure CPU portably; instead verify
  // that work submitted after a long idle period still completes.
  ttg::World world(test_config());
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<int> n{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) { n.fetch_add(1); },
      ttg::edges(e), ttg::edges(), "leaf", world);
  world.execute();
  tt->sendk_input<0>(0);
  world.fence();
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  world.execute();
  tt->sendk_input<0>(1);
  world.fence();
  EXPECT_EQ(n.load(), 2);
}

TEST(World, ManyTTsInOneGraph) {
  // A 10-stage pipeline of distinct template tasks.
  ttg::World world(test_config());
  constexpr int kStages = 10;
  std::vector<ttg::Edge<int, long>> edges;
  for (int s = 0; s <= kStages; ++s) {
    edges.emplace_back("stage" + std::to_string(s));
  }
  std::atomic<long> out{0};
  std::vector<std::unique_ptr<ttg::TTBase>> tts;
  for (int s = 0; s < kStages; ++s) {
    tts.push_back(ttg::make_tt<int>(
        [s](const int& k, long& v, auto& outs) {
          ttg::send<0>(k, v + s, outs);
        },
        ttg::edges(edges[s]), ttg::edges(edges[s + 1]),
        "stage" + std::to_string(s), world));
  }
  auto sink = ttg::make_tt<int>(
      [&](const int&, long& v, auto&) { out.fetch_add(v); },
      ttg::edges(edges[kStages]), ttg::edges(), "sink", world);

  // Seed stage 0 directly through its input terminal: grab the typed TT.
  ttg::Edge<int, ttg::Void> go("go");
  auto src = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto& outs) {
        ttg::send<0>(k, 0L, outs);
      },
      ttg::edges(go), ttg::edges(edges[0]), "src", world);
  world.execute();
  for (int k = 0; k < 50; ++k) src->sendk_input<0>(k);
  world.fence();
  const long per_key = kStages * (kStages - 1) / 2;  // 0+1+...+9
  EXPECT_EQ(out.load(), 50 * per_key);
  (void)sink;
}

TEST(World, TaskCountAccounting) {
  ttg::World world(test_config());
  ttg::Edge<int, ttg::Void> e("e");
  auto tt = ttg::make_tt<int>(
      [](const int& k, const ttg::Void&, auto& outs) {
        if (k > 0) ttg::sendk<0>(k - 1, outs);
      },
      ttg::edges(e), ttg::edges(e), "count", world);
  world.execute();
  tt->sendk_input<0>(99);
  world.fence();
  EXPECT_EQ(world.total_tasks_executed(), 100u);
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
  EXPECT_EQ(world.detector().total_completed(), 100);
}

}  // namespace
