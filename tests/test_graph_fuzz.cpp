// Differential fuzzing of the dataflow engines: pseudo-random layered
// DAGs are executed serially, through TTG (aggregator terminals), and
// through the PTG front-end; all three must compute identical values at
// every node. Each DAG shape is swept across the three production
// schedulers (LL, LLP, LFQ) and, for the TTG path, across single- and
// multi-submitter seeding so the sharded ingress queues see concurrent
// external pushers. Randomness is seeded, so failures are reproducible;
// every assertion names the (seed, scheduler) pair that produced it.
//
// Nightly sweeps widen the seed space via the environment:
//   TTG_FUZZ_SEED_BASE  first extra seed (default: no extra seeds)
//   TTG_FUZZ_SEEDS      how many extra seeds to generate (default 8
//                       when TTG_FUZZ_SEED_BASE is set)
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/rng.hpp"
#include "ptg/ptg.hpp"
#include "ttg/ttg.hpp"

namespace {

struct FuzzSpec {
  std::uint64_t seed;
  int layers;
  int width;
  int threads;
  ttg::SchedulerType sched = ttg::SchedulerType::kLLP;
  int submitters = 1;  ///< external threads seeding layer 0 (TTG path)
};

/// A deterministic random layered DAG: node (l, w) for l >= 1 has 1..3
/// distinct predecessors in layer l-1.
struct LayeredDag {
  int layers;
  int width;
  // preds[l][w]: predecessor columns in layer l-1 (empty for l == 0).
  std::vector<std::vector<std::vector<int>>> preds;
  // succs[l][w]: consumer columns in layer l+1.
  std::vector<std::vector<std::vector<int>>> succs;

  static LayeredDag generate(const FuzzSpec& spec) {
    ttg::SplitMix64 rng(spec.seed);
    LayeredDag dag;
    dag.layers = spec.layers;
    dag.width = spec.width;
    dag.preds.assign(spec.layers,
                     std::vector<std::vector<int>>(spec.width));
    dag.succs.assign(spec.layers,
                     std::vector<std::vector<int>>(spec.width));
    for (int l = 1; l < spec.layers; ++l) {
      for (int w = 0; w < spec.width; ++w) {
        const int npred =
            1 + static_cast<int>(rng.next_below(
                    std::min<std::uint64_t>(3, spec.width)));
        std::vector<int>& p = dag.preds[l][w];
        while (static_cast<int>(p.size()) < npred) {
          const int c = static_cast<int>(rng.next_below(spec.width));
          if (std::find(p.begin(), p.end(), c) == p.end()) {
            p.push_back(c);
          }
        }
        std::sort(p.begin(), p.end());
        for (int c : p) dag.succs[l - 1][c].push_back(w);
      }
    }
    return dag;
  }

  std::uint64_t node_value(int l, int w,
                           const std::vector<std::uint64_t>& dep_values)
      const {
    std::uint64_t h = ttg::mix64((static_cast<std::uint64_t>(l) << 32) ^
                                 static_cast<std::uint64_t>(w));
    for (std::uint64_t v : dep_values) {
      h = ttg::mix64(h * 0x9e3779b97f4a7c15ULL + v);
    }
    return h;
  }

  /// Serial reference: values of every node.
  std::vector<std::vector<std::uint64_t>> reference() const {
    std::vector<std::vector<std::uint64_t>> val(
        layers, std::vector<std::uint64_t>(width));
    for (int l = 0; l < layers; ++l) {
      for (int w = 0; w < width; ++w) {
        std::vector<std::uint64_t> deps;
        if (l > 0) {
          for (int c : preds[l][w]) deps.push_back(val[l - 1][c]);
        }
        val[l][w] = node_value(l, w, deps);
      }
    }
    return val;
  }
};

class GraphFuzzTest : public ::testing::TestWithParam<FuzzSpec> {};

TEST_P(GraphFuzzTest, TtgMatchesSerial) {
  const auto spec = GetParam();
  const auto dag = LayeredDag::generate(spec);
  const auto expect = dag.reference();

  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = spec.threads;
  cfg.scheduler = spec.sched;
  ttg::World world(cfg);

  using Key = std::pair<int, int>;  // (layer, column)
  struct Contribution {
    int origin;
    std::uint64_t value;
  };
  ttg::Edge<Key, Contribution> flow("flow");
  std::vector<std::vector<std::uint64_t>> got(
      spec.layers, std::vector<std::uint64_t>(spec.width, 0));

  auto count_fn = [&dag](const Key& k) -> std::int32_t {
    return k.first == 0
               ? 1
               : static_cast<std::int32_t>(
                     dag.preds[k.first][k.second].size());
  };
  auto tt = ttg::make_tt<Key>(
      [&dag, &got](const Key& key,
                   const ttg::Aggregator<Contribution>& inputs,
                   auto& outs) {
        const auto [l, w] = key;
        // Order contributions by origin column (arrival order varies).
        std::vector<std::pair<int, std::uint64_t>> sorted;
        for (const Contribution& c : inputs) {
          if (c.origin >= 0) sorted.push_back({c.origin, c.value});
        }
        std::sort(sorted.begin(), sorted.end());
        std::vector<std::uint64_t> deps;
        for (auto& [o, v] : sorted) deps.push_back(v);
        const std::uint64_t value = dag.node_value(l, w, deps);
        got[l][w] = value;
        if (l + 1 < dag.layers) {
          for (int s : dag.succs[l][w]) {
            ttg::send<0>(Key{l + 1, s}, Contribution{w, value}, outs);
          }
        }
      },
      ttg::edges(ttg::make_aggregator(flow, count_fn)), ttg::edges(flow),
      "node", world);

  world.execute();
  if (spec.submitters <= 1) {
    for (int w = 0; w < spec.width; ++w) {
      tt->send_input<0>(Key{0, w}, Contribution{-1, 0});
    }
  } else {
    // Concurrent external submitters: each seeds a stride of layer 0,
    // exercising the sharded ingress path under real contention.
    std::vector<std::thread> pushers;
    for (int p = 0; p < spec.submitters; ++p) {
      pushers.emplace_back([&, p] {
        for (int w = p; w < spec.width; w += spec.submitters) {
          tt->send_input<0>(Key{0, w}, Contribution{-1, 0});
        }
      });
    }
    for (auto& t : pushers) t.join();
  }
  world.fence();

  for (int l = 0; l < spec.layers; ++l) {
    for (int w = 0; w < spec.width; ++w) {
      ASSERT_EQ(got[l][w], expect[l][w])
          << "node (" << l << "," << w << ") seed=" << spec.seed
          << " sched=" << ttg::to_string(spec.sched)
          << " submitters=" << spec.submitters;
    }
  }
}

TEST_P(GraphFuzzTest, PtgMatchesSerial) {
  const auto spec = GetParam();
  const auto dag = LayeredDag::generate(spec);
  const auto expect = dag.reference();

  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = spec.threads;
  cfg.scheduler = spec.sched;
  ttg::Context ctx(cfg);

  using Key = std::pair<int, int>;
  ptg::ParameterizedGraph<Key, std::uint64_t> g(
      ctx,
      [&dag](const Key& k) {
        return k.first == 0
                   ? 0
                   : static_cast<int>(dag.preds[k.first][k.second].size());
      },
      [&dag](const Key& k) {
        std::vector<Key> out;
        if (k.first + 1 < dag.layers) {
          for (int s : dag.succs[k.first][k.second]) {
            out.push_back(Key{k.first + 1, s});
          }
        }
        return out;
      },
      [&dag](const Key& k, const auto& input_of) -> std::uint64_t {
        std::vector<std::uint64_t> deps;
        if (k.first > 0) {
          for (int c : dag.preds[k.first][k.second]) {
            deps.push_back(input_of(Key{k.first - 1, c}));
          }
        }
        return dag.node_value(k.first, k.second, deps);
      });

  ctx.begin();
  for (int w = 0; w < spec.width; ++w) g.seed(Key{0, w});
  ctx.fence();

  for (int l = 0; l < dag.layers; ++l) {
    for (int w = 0; w < dag.width; ++w) {
      // Orphan nodes (no successors consuming them) still execute in
      // TTG/serial but a PTG node only runs if reachable; layer-0 seeds
      // plus the layered structure make every node reachable here only
      // if it has predecessors or is in layer 0. Nodes in layers >= 1
      // always have >= 1 predecessor, so all nodes ran.
      const std::uint64_t* v = g.find(Key{l, w});
      ASSERT_NE(v, nullptr) << "(" << l << "," << w << ") seed="
                            << spec.seed << " sched="
                            << ttg::to_string(spec.sched);
      ASSERT_EQ(*v, expect[l][w])
          << "node (" << l << "," << w << ") seed=" << spec.seed
          << " sched=" << ttg::to_string(spec.sched);
    }
  }
}

std::vector<FuzzSpec> make_specs() {
  constexpr ttg::SchedulerType kSchedulers[] = {ttg::SchedulerType::kLL,
                                                ttg::SchedulerType::kLLP,
                                                ttg::SchedulerType::kLFQ};
  // The historical DAG shapes, swept across all three schedulers.
  const FuzzSpec shapes[] = {{1, 6, 5, 1},  {2, 10, 8, 2}, {3, 20, 4, 4},
                             {4, 4, 16, 2}, {5, 30, 6, 4}, {99, 12, 12, 3}};
  std::vector<FuzzSpec> specs;
  for (ttg::SchedulerType st : kSchedulers) {
    for (FuzzSpec s : shapes) {
      s.sched = st;
      specs.push_back(s);
    }
    // Multi-submitter seeding stresses the sharded ingress queues.
    specs.push_back(FuzzSpec{7, 8, 12, 4, st, 3});
  }
  // Nightly seed sweep: extra seeds from the environment, rotating
  // scheduler and submitter count so the sweep covers every ingress
  // configuration.
  if (const char* base_env = std::getenv("TTG_FUZZ_SEED_BASE")) {
    const std::uint64_t base = std::strtoull(base_env, nullptr, 10);
    std::uint64_t count = 8;
    if (const char* n = std::getenv("TTG_FUZZ_SEEDS")) {
      count = std::strtoull(n, nullptr, 10);
    }
    for (std::uint64_t i = 0; i < count; ++i) {
      FuzzSpec s{base + i, 8 + static_cast<int>(i % 5) * 4,
                 4 + static_cast<int>(i % 3) * 4, 2 + static_cast<int>(i % 3),
                 kSchedulers[i % 3], 1 + static_cast<int>(i % 2) * 2};
      specs.push_back(s);
    }
  }
  return specs;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, GraphFuzzTest, ::testing::ValuesIn(make_specs()),
    [](const auto& info) {
      return "seed" + std::to_string(info.param.seed) + "_" +
             std::to_string(info.param.layers) + "x" +
             std::to_string(info.param.width) + "_t" +
             std::to_string(info.param.threads) + "_" +
             std::string(ttg::to_string(info.param.sched)) + "_s" +
             std::to_string(info.param.submitters);
    });

}  // namespace
