// DST property test: the ParkingLot epoch protocol never loses a wakeup.
//
// Consumers follow the documented protocol — read the epoch, make the
// final flag re-check, then park on the observed epoch — with an
// explicit preemption point between the re-check and park() so the
// scheduler can land the producer's notify() exactly inside the
// missed-wakeup window the epoch is meant to close. The oracle is the
// runner's deadlock detector: a lost wakeup leaves the consumer parked
// forever after every other thread finished, which the runner reports as
// "all live virtual threads blocked".
#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "dst_common.hpp"
#include "runtime/parking_lot.hpp"
#include "sim/sim.hpp"

namespace {

struct ParkingNoLostWakeup {
  explicit ParkingNoLostWakeup(int consumers) : consumers_(consumers) {}

  ttg::ParkingLot lot;
  std::atomic<bool> flag{false};
  const int consumers_;

  std::vector<std::function<void()>> bodies() {
    auto consumer = [this] {
      for (;;) {
        const ttg::ParkingLot::Epoch e = lot.prepare_park();
        if (flag.load(std::memory_order_acquire)) break;
        // The window: a notify() scheduled here must still wake the
        // park() below, because `e` predates it.
        ttg::sim::preemption_point("consumer.park_window");
        lot.park(e);
      }
    };
    auto producer = [this] {
      ttg::sim::preemption_point("producer.work");
      flag.store(true, std::memory_order_release);
      lot.notify();
    };
    std::vector<std::function<void()>> b(static_cast<std::size_t>(consumers_),
                                         consumer);
    b.push_back(producer);
    return b;
  }

  std::string check() {
    // Completion *is* the property — a lost wakeup surfaces as a
    // DeadlockError from the runner before we ever get here.
    if (lot.sleepers() != 0) return "sleeper count did not return to zero";
    return "";
  }
};

TEST(DstParking, NoLostWakeupSingleConsumer) {
  dst::explore<ParkingNoLostWakeup>("parking_single", 2, 1);
}

TEST(DstParking, NoLostWakeupTwoConsumers) {
  dst::explore<ParkingNoLostWakeup>("parking_pair", 3, 2);
}

}  // namespace
