// DST property test: the distributed token-ring termination wave
// (comm/term_wave.hpp) never announces while an application message is
// still in flight — and always converges once the network drains.
//
// The scenario models two processes exchanging messages through an
// explorable network: every delivery is its own schedulable step, so
// the sweep can reorder deliveries against wave contributions. The
// dangerous interleaving is the classic inconsistent snapshot:
//
//   1. the root launches a round while still (0 sent, 0 received);
//   2. rank 1 seeds a message `a` to rank 0 and falls quiet;
//   3. `a` re-activates rank 0, whose task sends `b` and `c` to rank 1
//      — all *after* the root's contribution was snapshotted;
//   4. `b` is delivered before rank 1 contributes, so rank 1 adds
//      (sent=1, received=1) and the round totals balance at 1 == 1
//      while `c` is still in flight.
//
// The two-round stability test rejects this (the next round's totals
// differ); the comm_termdet_early_quiet mutant announces on the single
// equal round and is caught here with `c` undelivered.
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "comm/term_wave.hpp"
#include "dst_common.hpp"
#include "sim/sim.hpp"

namespace {

using ttg::comm::TermToken;
using ttg::comm::TermWave;

struct WaveInFlightMessage {
  static constexpr int kRanks = 2;

  // Model per-rank counters (what the termination detector would hold).
  std::atomic<std::int64_t> sent[kRanks]{};
  std::atomic<std::int64_t> recv[kRanks]{};
  // True while a delivered message's task is still executing (the model
  // equivalent of pending != 0 || active_threads != 0).
  std::atomic<bool> busy[kRanks]{};

  // Single-slot token mailboxes (the ring has at most one token in
  // flight per direction) and the root's announcement flag.
  std::atomic<bool> token_ready[kRanks]{};
  TermToken token_box[kRanks]{};
  std::atomic<bool> announce_flag{false};
  std::atomic<bool> terminated[kRanks]{};

  // The application workload: a (1->0), then 0's task emits b and c
  // (0->1). Deliveries are performed by the network vthread, one per
  // step, so the schedule explorer controls their timing.
  std::atomic<bool> delivered_a{false}, delivered_b{false},
      delivered_c{false};

  // Snapshot taken the moment the root announces.
  std::atomic<bool> announced{false};
  std::atomic<bool> c_in_flight_at_announce{false};

  std::unique_ptr<TermWave> wave[kRanks];

  WaveInFlightMessage() {
    busy[1].store(true);  // rank 1 is "running" its seed task at start
    for (int r = 0; r < kRanks; ++r) {
      TermWave::Hooks h;
      h.locally_quiet = [this, r] { return !busy[r].load(); };
      h.sent = [this, r] { return sent[r].load(); };
      h.received = [this, r] { return recv[r].load(); };
      h.forward = [this, r](const TermToken& t) {
        const int next = (r + 1) % kRanks;
        token_box[next] = t;
        token_ready[next].store(true, std::memory_order_release);
      };
      if (r == 0) {
        h.announce = [this] {
          announced.store(true);
          c_in_flight_at_announce.store(!delivered_c.load());
          announce_flag.store(true, std::memory_order_release);
        };
      }
      h.on_terminated = [this, r] { terminated[r].store(true); };
      wave[r] = std::make_unique<TermWave>(r, kRanks, h);
    }
  }

  bool all_terminated() const {
    return terminated[0].load() && terminated[1].load();
  }

  std::vector<std::function<void()>> bodies() {
    // One driver per rank: the wait-loop side of the wave (token intake
    // + poll), bounded so a stuck wave surfaces as a liveness failure
    // instead of a sim deadlock.
    auto make_driver = [this](int r) {
      return [this, r] {
        for (int i = 0; i < 4000 && !terminated[r].load(); ++i) {
          if (token_ready[r].exchange(false, std::memory_order_acquire)) {
            wave[r]->on_token(token_box[r]);
          }
          if (r != 0 && announce_flag.load(std::memory_order_acquire)) {
            wave[r]->on_announce();
          }
          wave[r]->poll();
          ttg::sim::preemption_point("model.driver");
        }
      };
    };
    // The network: seeds the workload, then delivers one message per
    // step. Task execution happens at the destination between the
    // receive accounting and the quiet flag clearing, exactly like a
    // worker draining the active-message queue.
    auto network = [this] {
      // Rank 1's seed task: send a, fall quiet.
      sent[1].fetch_add(1);
      ttg::sim::preemption_point("model.seed");
      busy[1].store(false);
      // Deliver a to rank 0; its task emits b and c.
      busy[0].store(true);
      recv[0].fetch_add(1);
      delivered_a.store(true);
      ttg::sim::preemption_point("model.task_a");
      sent[0].fetch_add(2);
      ttg::sim::preemption_point("model.task_a.sent");
      busy[0].store(false);
      // Deliver b, then (after explorable delay) c.
      busy[1].store(true);
      recv[1].fetch_add(1);
      delivered_b.store(true);
      ttg::sim::preemption_point("model.task_b");
      busy[1].store(false);
      ttg::sim::preemption_point("model.network.delay");
      busy[1].store(true);
      recv[1].fetch_add(1);
      delivered_c.store(true);
      ttg::sim::preemption_point("model.task_c");
      busy[1].store(false);
    };
    return {make_driver(0), make_driver(1), network};
  }

  std::string check() {
    if (announced.load() && c_in_flight_at_announce.load()) {
      return "wave announced termination with message c still in flight "
             "(inconsistent single-round snapshot accepted)";
    }
    if (!all_terminated()) {
      return "wave never converged after the network drained (liveness)";
    }
    if (!(delivered_a.load() && delivered_b.load() && delivered_c.load())) {
      return "terminated with undelivered messages";
    }
    return "";
  }
};

TEST(DstComm, WaveNeverAnnouncesWithMessageInFlight) {
  dst::explore<WaveInFlightMessage>("comm_wave_inflight", 3);
}

// Degenerate single-rank ring: the token loops back to the root
// instantly; the wave must still need a quiet rank and two stable
// rounds, and must converge.
struct WaveSingleRank {
  std::atomic<std::int64_t> sent{0}, recv{0};
  std::atomic<bool> busy{true};
  std::atomic<bool> terminated{false};
  std::atomic<bool> announced_while_busy{false};
  std::unique_ptr<TermWave> wave;

  WaveSingleRank() {
    TermWave::Hooks h;
    h.locally_quiet = [this] { return !busy.load(); };
    h.sent = [this] { return sent.load(); };
    h.received = [this] { return recv.load(); };
    h.forward = [](const TermToken&) {};
    h.on_terminated = [this] {
      if (busy.load()) announced_while_busy.store(true);
      terminated.store(true);
    };
    wave = std::make_unique<TermWave>(0, 1, h);
  }

  std::vector<std::function<void()>> bodies() {
    auto driver = [this] {
      for (int i = 0; i < 1000 && !terminated.load(); ++i) {
        wave->poll();
        ttg::sim::preemption_point("model.driver");
      }
    };
    auto task = [this] {
      ttg::sim::preemption_point("model.task");
      sent.fetch_add(1);
      ttg::sim::preemption_point("model.task.sent");
      recv.fetch_add(1);
      ttg::sim::preemption_point("model.task.recv");
      busy.store(false);
    };
    return {driver, task};
  }

  std::string check() {
    if (announced_while_busy.load()) {
      return "single-rank wave announced while the rank was busy";
    }
    if (!terminated.load()) return "single-rank wave never converged";
    return "";
  }
};

TEST(DstComm, SingleRankRingConverges) {
  dst::explore<WaveSingleRank>("comm_wave_single", 2);
}

}  // namespace
