// DST property test: AtomicLifo hands every node to exactly one owner.
//
// The scenario seeds a stack with K nodes and lets four virtual threads
// hammer it with the full operation mix (pop, pop_chain, pop_half, push)
// while re-pushing the first node of every taken batch — the exact
// traffic pattern that turns a missing ABA-tag bump into a double-take:
// a popper paused between its head read and its CAS must see the CAS
// fail when another thread pops that head (and its successor) and
// re-pushes it. Ownership is tracked per node with an exchange flag, so
// a node obtained by two threads at once, or handed out while off-stack,
// is counted as a violation; a node missing from both owners and the
// final drain is a lost node.
#include <atomic>
#include <cstddef>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "dst_common.hpp"
#include "sim/sim.hpp"
#include "structures/lifo.hpp"

namespace {

struct LifoExactlyOnce {
  static constexpr int kNodes = 8;

  ttg::AtomicLifo lifo;
  ttg::LifoNode nodes[kNodes];
  std::atomic<int> owned[kNodes];
  std::atomic<int> violations{0};

  LifoExactlyOnce() {
    for (int i = 0; i < kNodes; ++i) {
      owned[i].store(0, std::memory_order_relaxed);
    }
    // Seed node 0 on top. Runs on the host thread before the schedule
    // starts, so the push yield points are inert.
    for (int i = kNodes - 1; i >= 0; --i) lifo.push(&nodes[i]);
  }

  int index(const ttg::LifoNode* p) const {
    return static_cast<int>(p - nodes);
  }

  /// Claims ownership of a just-popped node; a second concurrent claim
  /// means the LIFO handed the node out twice.
  void take(ttg::LifoNode* p) {
    if (owned[index(p)].exchange(1, std::memory_order_relaxed) != 0) {
      violations.fetch_add(1, std::memory_order_relaxed);
    }
  }

  void give_back(ttg::LifoNode* p) {
    owned[index(p)].store(0, std::memory_order_relaxed);
    lifo.push(p);
  }

  std::vector<std::function<void()>> bodies() {
    auto popper = [this] {
      for (int it = 0; it < 3; ++it) {
        // Hold two nodes at once, then return them head-first: while this
        // thread owns {X, Y}, re-pushing X recreates the stack a stale
        // CAS (head=X, next=Y) still matches if the ABA tag was dropped.
        ttg::LifoNode* a = lifo.pop();
        if (a != nullptr) take(a);
        ttg::LifoNode* b = lifo.pop();
        if (b != nullptr) take(b);
        ttg::sim::preemption_point("popper.hold");
        if (a != nullptr) give_back(a);
        ttg::sim::preemption_point("popper.hold2");
        if (b != nullptr) give_back(b);
      }
    };
    auto chainer = [this] {
      for (int it = 0; it < 2; ++it) {
        std::size_t n = 0;
        ttg::LifoNode* chain = lifo.pop_chain(3, &n);
        ttg::LifoNode* taken[3] = {nullptr, nullptr, nullptr};
        std::size_t k = 0;
        for (ttg::LifoNode* p = chain; p != nullptr && k < 3;) {
          ttg::LifoNode* next = p->next.load(std::memory_order_relaxed);
          take(p);
          taken[k++] = p;
          p = next;
        }
        ttg::sim::preemption_point("chainer.hold");
        for (std::size_t i = 0; i < k; ++i) give_back(taken[i]);
      }
    };
    auto halver = [this] {
      for (int it = 0; it < 2; ++it) {
        std::size_t n = 0;
        ttg::LifoNode* half = lifo.pop_half(2, &n);
        ttg::LifoNode* taken[2] = {nullptr, nullptr};
        std::size_t k = 0;
        for (ttg::LifoNode* p = half; p != nullptr && k < 2;) {
          ttg::LifoNode* next = p->next.load(std::memory_order_relaxed);
          take(p);
          taken[k++] = p;
          p = next;
        }
        ttg::sim::preemption_point("halver.hold");
        for (std::size_t i = 0; i < k; ++i) give_back(taken[i]);
      }
    };
    return {popper, popper, chainer, halver};
  }

  std::string check() {
    // Everything was given back, so the drain must surface each node
    // exactly once. A duplicate in the drain trips the ownership
    // exchange; a cycle would make the stack un-drainable.
    for (int i = 0; i < kNodes * 4; ++i) {
      ttg::LifoNode* p = lifo.pop();
      if (p == nullptr) break;
      take(p);
    }
    if (!lifo.empty()) {
      return "stack not drainable after " +
             std::to_string(kNodes * 4) + " pops (cycle in next links)";
    }
    std::ostringstream os;
    if (int v = violations.load(std::memory_order_relaxed); v != 0) {
      os << v << " exactly-once violation(s): a node was handed to two "
            "owners (ABA double-take)";
      return os.str();
    }
    for (int i = 0; i < kNodes; ++i) {
      if (owned[i].load(std::memory_order_relaxed) == 0) {
        os << "node " << i << " lost: neither owned nor on the stack";
        return os.str();
      }
    }
    return "";
  }
};

TEST(DstLifo, ExactlyOnceUnderMixedOps) {
  dst::explore<LifoExactlyOnce>("lifo_exactly_once", 4);
}

}  // namespace
