// DST property tests for the BRAVO reader-biased rwlock: no writer ever
// shares the critical section with a reader (in either direction).
//
// The dangerous windows are (a) a reader paused between its slot
// publication and the bias re-check while a writer revokes — the seq_cst
// fence is what makes the writer's drain scan see the slot — and (b) a
// fast-path reader inside its critical section while the writer skips or
// mis-runs the drain. Both reduce to counting who is inside the critical
// section, with an explicit preemption point inside it so the scheduler
// can interleave the other role at the worst moment.
#include <atomic>
#include <functional>
#include <string>
#include <vector>

#include "dst_common.hpp"
#include "sim/sim.hpp"
#include "sync/bravo.hpp"
#include "sync/rwlock.hpp"

namespace {

struct BravoExclusion {
  ttg::BravoRWLock<ttg::RWSpinLock> lock;
  std::atomic<int> readers_in{0};
  std::atomic<int> writers_in{0};
  std::atomic<int> violations{0};
  std::atomic<int> fast_path_reads{0};

  std::vector<std::function<void()>> bodies() {
    auto reader = [this] {
      for (int it = 0; it < 3; ++it) {
        auto token = lock.read_lock();
        if (token.slot != nullptr) {
          fast_path_reads.fetch_add(1, std::memory_order_relaxed);
        }
        readers_in.fetch_add(1, std::memory_order_relaxed);
        if (writers_in.load(std::memory_order_relaxed) != 0) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        ttg::sim::preemption_point("cs.read");
        if (writers_in.load(std::memory_order_relaxed) != 0) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        readers_in.fetch_sub(1, std::memory_order_relaxed);
        lock.read_unlock(token);
      }
    };
    auto writer = [this] {
      for (int it = 0; it < 2; ++it) {
        lock.write_lock();
        writers_in.fetch_add(1, std::memory_order_relaxed);
        if (readers_in.load(std::memory_order_relaxed) != 0) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        ttg::sim::preemption_point("cs.write");
        if (readers_in.load(std::memory_order_relaxed) != 0) {
          violations.fetch_add(1, std::memory_order_relaxed);
        }
        writers_in.fetch_sub(1, std::memory_order_relaxed);
        lock.write_unlock();
      }
    };
    return {reader, reader, writer};
  }

  std::string check() {
    if (int v = violations.load(std::memory_order_relaxed); v != 0) {
      return std::to_string(v) +
             " exclusion violation(s): reader and writer overlapped in "
             "the critical section";
    }
    if (readers_in.load(std::memory_order_relaxed) != 0 ||
        writers_in.load(std::memory_order_relaxed) != 0) {
      return "critical-section counters did not return to zero";
    }
    return "";
  }
};

TEST(DstBravo, NoLostWriterNoStaleReader) {
  dst::explore<BravoExclusion>("bravo_exclusion", 3);
}

}  // namespace
