// DST property test: the replay-path JoinCounter fires each slot
// exactly once, even when deliveries race each other and a cooperative
// cancellation claim.
//
// Two scenarios. ExactlyOnceReady races N deliverers on one counter and
// checks that precisely one observes readiness (the fetch_sub total
// order hands old==1 to exactly one arrival) and that the counter
// drains to zero — the TTG_MUTANT_REPLAY_JOIN_NO_FENCE mutant splits
// the decrement into an unfenced load/store pair, so two racing
// arrivals read the same count, the slot never fires, and the counter
// is left non-zero. CancelRace adds a canceller: a slot must be retired
// by exactly one party — the ready arrival or the cancellation claim —
// and a claimed slot's final delivery must observe the claim so the
// input sweep runs exactly once.
#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "dst_common.hpp"
#include "sim/sim.hpp"
#include "structures/join_counter.hpp"

namespace {

struct ExactlyOnceReady {
  static constexpr int kArrivers = 3;

  ttg::JoinCounter join;
  std::atomic<int> ready_fires{0};

  ExactlyOnceReady() { join.reset(kArrivers); }

  std::vector<std::function<void()>> bodies() {
    auto arriver = [this] {
      // The template-arena handoff precedes every delivery in replay;
      // exercising the hook here keeps the schedule space honest.
      ttg::replay_arena_handoff_point();
      const ttg::JoinCounter::Arrival a = join.arrive();
      if (a.ready) ready_fires.fetch_add(1, std::memory_order_relaxed);
    };
    return std::vector<std::function<void()>>(kArrivers, arriver);
  }

  std::string check() {
    std::ostringstream os;
    const int fires = ready_fires.load(std::memory_order_relaxed);
    if (fires != 1) {
      os << fires << " ready observation(s) for " << kArrivers
         << " deliveries into one slot (want exactly 1: lost or "
            "duplicated decrement)";
      return os.str();
    }
    if (join.remaining() != 0) {
      os << "counter left at " << join.remaining()
         << " after all deliveries (lost decrement)";
      return os.str();
    }
    return "";
  }
};

struct CancelRace {
  static constexpr int kArrivers = 2;

  ttg::JoinCounter join;
  std::atomic<int> ready_fires{0};
  std::atomic<int> claims{0};
  std::atomic<int> sweeps{0};

  CancelRace() { join.reset(kArrivers); }

  std::vector<std::function<void()>> bodies() {
    auto arriver = [this] {
      const ttg::JoinCounter::Arrival a = join.arrive();
      if (a.ready) ready_fires.fetch_add(1, std::memory_order_relaxed);
      // Replay's contract: the final delivery into a claimed slot sweeps
      // the parked inputs (the claimer already retired the slot).
      if (a.cancelled && a.last) {
        sweeps.fetch_add(1, std::memory_order_relaxed);
      }
    };
    auto canceller = [this] {
      if (join.try_cancel()) {
        claims.fetch_add(1, std::memory_order_relaxed);
      }
    };
    return {arriver, arriver, canceller};
  }

  std::string check() {
    std::ostringstream os;
    const int fires = ready_fires.load(std::memory_order_relaxed);
    const int claimed = claims.load(std::memory_order_relaxed);
    const int swept = sweeps.load(std::memory_order_relaxed);
    if (fires + claimed != 1) {
      os << "slot retired " << (fires + claimed)
         << " time(s) (ready=" << fires << " claims=" << claimed
         << "); exactly one of {ready fire, cancel claim} must win";
      return os.str();
    }
    if (claimed == 1 && swept != 1) {
      os << "claimed slot swept " << swept
         << " time(s); the final delivery must sweep exactly once";
      return os.str();
    }
    if (fires == 1 && swept != 0) {
      return "a slot that fired was also swept as cancelled";
    }
    return "";
  }
};

TEST(DstJoin, ExactlyOnceReady) {
  dst::explore<ExactlyOnceReady>("join_exactly_once", 3);
}

TEST(DstJoin, CancelRace) {
  dst::explore<CancelRace>("join_cancel_race", 3);
}

}  // namespace
