// DST replay identity: the whole interleaving is a pure function of
// (seed, strategy, bodies), so running the same schedule twice — in two
// different Runner instances, on two different OS thread pools — must
// produce bit-identical traces and trace hashes, and different seeds
// must actually explore different interleavings.
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <set>
#include <vector>

#include "sim/sim.hpp"
#include "structures/lifo.hpp"

namespace {

/// A small deterministic workload with real contention: two poppers and
/// one chain-taker over a shared LIFO. Fresh state per run.
struct ReplayWorkload {
  static constexpr int kNodes = 6;
  ttg::AtomicLifo lifo;
  ttg::LifoNode nodes[kNodes];

  ReplayWorkload() {
    for (int i = kNodes - 1; i >= 0; --i) lifo.push(&nodes[i]);
  }

  std::vector<std::function<void()>> bodies() {
    auto popper = [this] {
      for (int it = 0; it < 3; ++it) {
        ttg::LifoNode* p = lifo.pop();
        ttg::sim::preemption_point("popper.hold");
        if (p != nullptr) lifo.push(p);
      }
    };
    auto chainer = [this] {
      for (int it = 0; it < 2; ++it) {
        std::size_t n = 0;
        ttg::LifoNode* chain = lifo.pop_chain(3, &n);
        ttg::sim::preemption_point("chainer.hold");
        while (chain != nullptr) {
          ttg::LifoNode* next = chain->next.load(std::memory_order_relaxed);
          lifo.push(chain);
          chain = next;
        }
      }
    };
    return {popper, popper, chainer};
  }
};

struct RunResult {
  std::uint64_t hash;
  std::vector<ttg::sim::TraceEntry> trace;
  std::uint64_t steps;
};

RunResult run_once(ttg::sim::Explore strat, std::uint64_t seed) {
  ReplayWorkload w;
  ttg::sim::Runner runner(3);
  ttg::sim::Options opts;
  opts.seed = seed;
  opts.explore = strat;
  RunResult r;
  r.hash = runner.run(opts, w.bodies());
  r.trace = runner.trace();
  r.steps = runner.steps();
  return r;
}

TEST(DstReplay, SameSeedReproducesIdenticalInterleaving) {
  for (ttg::sim::Explore strat :
       {ttg::sim::Explore::kRandomWalk, ttg::sim::Explore::kPct}) {
    for (std::uint64_t seed : {1ULL, 7ULL, 42ULL}) {
      const RunResult a = run_once(strat, seed);
      const RunResult b = run_once(strat, seed);
      EXPECT_EQ(a.hash, b.hash)
          << "strategy=" << ttg::sim::to_string(strat) << " seed=" << seed;
      ASSERT_EQ(a.trace.size(), b.trace.size())
          << "strategy=" << ttg::sim::to_string(strat) << " seed=" << seed;
      for (std::size_t i = 0; i < a.trace.size(); ++i) {
        ASSERT_EQ(a.trace[i].vthread, b.trace[i].vthread) << "step " << i;
        ASSERT_STREQ(a.trace[i].label, b.trace[i].label) << "step " << i;
      }
      EXPECT_GT(a.steps, 0u);
    }
  }
}

TEST(DstReplay, DifferentSeedsExploreDifferentInterleavings) {
  for (ttg::sim::Explore strat :
       {ttg::sim::Explore::kRandomWalk, ttg::sim::Explore::kPct}) {
    std::set<std::uint64_t> hashes;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
      hashes.insert(run_once(strat, seed).hash);
    }
    EXPECT_GT(hashes.size(), 1u)
        << "strategy=" << ttg::sim::to_string(strat)
        << ": 8 seeds collapsed to one interleaving";
  }
}

TEST(DstReplay, HashCoversEveryStep) {
  // The hash must change when the interleaving does: compare against a
  // recomputation from the recorded trace.
  const RunResult r = run_once(ttg::sim::Explore::kRandomWalk, 5);
  EXPECT_EQ(r.trace.size(), r.steps);
  std::uint64_t distinct_labels = 0;
  std::set<std::string> labels;
  for (const auto& e : r.trace) labels.insert(e.label);
  distinct_labels = labels.size();
  EXPECT_GT(distinct_labels, 1u);
}

}  // namespace
