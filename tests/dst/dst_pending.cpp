// DST property test for the delegated pending-table insertion path
// (src/structures/hash_table.hpp, PendingTableMode::kDelegated).
//
// Property: every operation — applied inline by a lock owner or pushed
// onto a bucket's publication list — is applied EXACTLY once before the
// bucket goes quiescent. The dangerous window is the combiner handoff: a
// publisher CAS-pushes between the combiner's last pub_head check and
// its unlock, and the publisher's try_lock runs while the lock is still
// held. The paired seq_cst fences (push→fence→try_lock vs
// drain→unlock→fence→recheck) guarantee one side wins; the
// PENDING_INSERT_LOST_PUBLISH mutant removes the combiner's post-unlock
// recheck, so that interleaving strands the queued op (applied < ops) —
// this scenario must catch it.
#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "dst_common.hpp"
#include "sim/sim.hpp"
#include "structures/hash_table.hpp"

namespace {

struct PendingCombining {
  // One small table; every vthread hammers the SAME bucket so the
  // publication path actually runs.
  ttg::ScalableHashTable table{2, 64, ttg::kMaxThreads,
                               ttg::PendingTableMode::kDelegated};
  const std::uint64_t hash = ttg::mix64(42);

  // All mutated under the bucket lock (inline owner or combiner), so
  // plain fields are race-free; read only in check() after the run.
  std::uint64_t applied = 0;
  std::uint64_t applied_via_delegate = 0;

  std::atomic<int> ops_started{0};

  struct Op : ttg::ScalableHashTable::PubNode {
    PendingCombining* self = nullptr;
  };

  static void apply_op(void* owner, ttg::ScalableHashTable::Accessor& acc,
                       ttg::ScalableHashTable::PubNode* node) {
    (void)acc;
    auto* self = static_cast<PendingCombining*>(owner);
    ++self->applied;
    ++self->applied_via_delegate;
    delete static_cast<Op*>(node);
  }

  PendingCombining() { table.set_delegate(this, &apply_op); }

  static constexpr int kVthreads = 3;
  static constexpr int kOpsPerThread = 3;

  std::vector<std::function<void()>> bodies() {
    auto worker = [this] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        ops_started.fetch_add(1, std::memory_order_relaxed);
        auto acc = table.lock_key_delegated(hash);
        if (acc.owns_bucket()) {
          ++applied;  // inline: we hold the bucket lock
        } else {
          auto* op = new Op;
          op->self = this;
          acc.publish(op);
          // publish() may acquire the lock as a side effect; either way
          // release() (the accessor destructor) drains the publication
          // list if we ended up the combiner.
        }
      }
    };
    return std::vector<std::function<void()>>(kVthreads, worker);
  }

  std::string check() {
    const auto expected =
        static_cast<std::uint64_t>(kVthreads) * kOpsPerThread;
    if (ops_started.load(std::memory_order_relaxed) !=
        static_cast<int>(expected)) {
      return "scenario bug: not all ops started";
    }
    if (applied < expected) {
      return "lost publication: " + std::to_string(expected - applied) +
             " op(s) queued but never applied (applied=" +
             std::to_string(applied) + "/" + std::to_string(expected) +
             ", via delegate=" + std::to_string(applied_via_delegate) + ")";
    }
    if (applied > expected) {
      return "double apply: " + std::to_string(applied) + " applications for " +
             std::to_string(expected) + " ops";
    }
    return "";
  }
};

TEST(DstPending, DelegatedOpsApplyExactlyOnce) {
  dst::explore<PendingCombining>("pending_combiner",
                                 PendingCombining::kVthreads);
}

}  // namespace
