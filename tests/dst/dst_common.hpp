// Shared scaffolding for the DST property tests (tests/dst/).
//
// Every test explores a scenario — a small set of virtual-thread bodies
// plus a post-schedule invariant check — across a sweep of seeds under
// both exploration strategies. On the first failing schedule the test
// reports the (strategy, seed, interleaving hash) triple and the trace
// tail, so the exact interleaving replays with
//
//   TTG_DST_SEED=<seed> TTG_DST_SCHEDULES=1 ./dst_foo --gtest_filter=...
//
// or equivalently with the --seed=/--schedules= flags parsed by
// dst_main.cpp. Configuration comes from the environment:
//
//   TTG_DST_SCHEDULES  seeds per strategy (default 40)
//   TTG_DST_SEED       first seed of the sweep (default 1)
//   TTG_DST_TRACE_DIR  if set, failing traces are written there
#pragma once

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "sim/sim.hpp"

namespace dst {

inline std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::strtoull(v, nullptr, 10);
}

struct Config {
  std::uint64_t schedules = 40;  ///< seeds per strategy
  std::uint64_t seed_base = 1;
  const char* trace_dir = nullptr;
};

inline const Config& config() {
  static const Config c = [] {
    Config cfg;
    cfg.schedules = env_u64("TTG_DST_SCHEDULES", 40);
    cfg.seed_base = env_u64("TTG_DST_SEED", 1);
    cfg.trace_dir = std::getenv("TTG_DST_TRACE_DIR");
    return cfg;
  }();
  return c;
}

/// A scenario must provide:
///   std::vector<std::function<void()>> bodies();   // one per vthread
///   std::string check();                           // "" = invariants hold
/// A fresh instance is constructed for every schedule.
template <typename Scenario, typename... Args>
void explore(const char* name, int num_vthreads, Args&&... args) {
  const Config& cfg = config();
  for (ttg::sim::Explore strat :
       {ttg::sim::Explore::kRandomWalk, ttg::sim::Explore::kPct}) {
    // One pooled runner per strategy: dense runtime thread ids are never
    // recycled, so per-schedule runners would exhaust them mid-sweep.
    ttg::sim::Runner runner(num_vthreads);
    for (std::uint64_t i = 0; i < cfg.schedules; ++i) {
      const std::uint64_t seed = cfg.seed_base + i;
      ttg::sim::Options opts;
      opts.seed = seed;
      opts.explore = strat;
      auto scenario = std::make_unique<Scenario>(args...);
      std::string failure;
      std::uint64_t hash = 0;
      bool poisoned = false;
      try {
        hash = runner.run(opts, scenario->bodies());
        failure = scenario->check();
      } catch (const ttg::sim::SimError& e) {
        failure = e.what();
        poisoned = true;
      }
      if (failure.empty()) continue;

      std::ostringstream msg;
      msg << "[dst] scenario=" << name
          << " strategy=" << ttg::sim::to_string(strat) << " seed=" << seed
          << " hash=0x" << std::hex << runner.trace_hash() << std::dec
          << " steps=" << runner.steps() << "\n  " << failure
          << "\n  replay: TTG_DST_SEED=" << seed
          << " TTG_DST_SCHEDULES=1 <this binary> --gtest_filter=*"
          << name << "*\n  trace tail:\n";
      {
        std::ostringstream tail;
        runner.dump_trace(tail, 40);
        msg << tail.str();
      }
      if (cfg.trace_dir != nullptr) {
        std::ostringstream path;
        path << cfg.trace_dir << "/" << name << "-"
             << ttg::sim::to_string(strat) << "-seed" << seed << ".trace";
        std::ofstream out(path.str());
        out << "scenario=" << name << " strategy="
            << ttg::sim::to_string(strat) << " seed=" << seed << " hash=0x"
            << std::hex << runner.trace_hash() << std::dec << "\n"
            << failure << "\n";
        runner.dump_trace(out, 0);
        msg << "  full trace written to " << path.str() << "\n";
      }
      ADD_FAILURE() << msg.str();
      if (poisoned) {
        // A deadlocked/livelocked schedule leaves virtual threads parked
        // mid-body holding references into the scenario; the runner
        // detaches them on destruction, so the scenario must outlive the
        // process. Leak it deliberately.
        (void)scenario.release();
      }
      (void)hash;
      return;  // first failing seed is enough; stop the sweep
    }
  }
}

}  // namespace dst
