// DST property test: the serving admission gate (runtime/tenant.hpp)
// never over-admits and queued admission stays FIFO, under every
// explored interleaving.
//
// Scenario A models the overload edge of the multi-tenant serving mode
// (docs/serving.md): submitters race try_admit() on a limit-1 gate
// under AdmissionPolicy::kShed. The property is the admission bound
// itself — at no point may more submitters hold slots than the limit —
// plus exact shed accounting (every attempt either held a slot or was
// counted shed, and the gate drains back to zero). The
// serving_admit_no_fence mutant splits the reservation's
// compare-exchange into an unfenced load/store pair, so two racing
// submitters can both read the same in-flight count and both "reserve"
// the single slot; this suite must catch it (scripts/mutation_gate.sh).
//
// Scenario B drives the kQueue policy: the ticket FIFO must admit
// waiters in arrival order (a freed slot goes to the longest waiter,
// never to a late barger), and every waiter must eventually be
// admitted.
#include <atomic>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "dst_common.hpp"
#include "runtime/tenant.hpp"
#include "sim/sim.hpp"

namespace {

/// Scenario A: racing try_admit() on a limit-1 gate must never let two
/// submitters hold slots at once.
struct AdmitRace {
  static constexpr int kRounds = 3;
  static constexpr int kSubmitters = 3;

  ttg::AdmissionGate gate{1, ttg::AdmissionPolicy::kShed};
  std::atomic<int> in_crit{0};
  std::atomic<int> max_in_crit{0};
  std::atomic<int> admitted{0};
  std::atomic<int> shed{0};

  std::vector<std::function<void()>> bodies() {
    std::vector<std::function<void()>> out;
    for (int i = 0; i < kSubmitters; ++i) {
      out.push_back([this] {
        for (int r = 0; r < kRounds; ++r) {
          ttg::sim::preemption_point("submitter.attempt");
          if (!gate.try_admit()) {
            shed.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          const int now = in_crit.fetch_add(1, std::memory_order_acq_rel) + 1;
          int seen = max_in_crit.load(std::memory_order_relaxed);
          while (seen < now && !max_in_crit.compare_exchange_weak(
                                   seen, now, std::memory_order_relaxed)) {
          }
          // Hold the slot across a yield so a racing reservation that
          // slipped past the bound becomes observable as concurrency.
          ttg::sim::preemption_point("submitter.hold");
          admitted.fetch_add(1, std::memory_order_relaxed);
          in_crit.fetch_sub(1, std::memory_order_acq_rel);
          gate.release();
        }
      });
    }
    return out;
  }

  std::string check() {
    std::ostringstream os;
    if (max_in_crit.load() > gate.limit()) {
      os << "admission bound violated: " << max_in_crit.load()
         << " concurrent holders on a limit-" << gate.limit() << " gate";
      return os.str();
    }
    if (admitted.load() + shed.load() != kRounds * kSubmitters) {
      os << "lost attempt: admitted=" << admitted.load()
         << " shed=" << shed.load() << " of " << kRounds * kSubmitters;
      return os.str();
    }
    if (gate.shed() != static_cast<std::uint64_t>(shed.load())) {
      os << "shed accounting: gate counted " << gate.shed()
         << " but submitters observed " << shed.load();
      return os.str();
    }
    if (gate.inflight() != 0) {
      os << "gate did not drain: inflight=" << gate.inflight();
      return os.str();
    }
    return "";
  }
};

/// Scenario B: kQueue admission must be FIFO in ticket order and admit
/// every waiter. The enter log is written with no yield between it and
/// the ticket fetch inside admit(), so enter order == ticket order.
struct QueueFifo {
  static constexpr int kSubmitters = 3;

  ttg::AdmissionGate gate{1, ttg::AdmissionPolicy::kQueue};
  std::atomic<int> enter_n{0};
  std::atomic<int> admit_n{0};
  int enter_log[kSubmitters] = {-1, -1, -1};
  int admit_log[kSubmitters] = {-1, -1, -1};

  std::vector<std::function<void()>> bodies() {
    std::vector<std::function<void()>> out;
    for (int i = 0; i < kSubmitters; ++i) {
      out.push_back([this, i] {
        ttg::sim::preemption_point("submitter.arrive");
        enter_log[enter_n.fetch_add(1, std::memory_order_relaxed)] = i;
        gate.admit([] { ttg::sim::preemption_point("submitter.pause"); });
        // Limit 1: the next admission needs our release, so this log
        // cannot be overtaken by a later admittee.
        admit_log[admit_n.fetch_add(1, std::memory_order_relaxed)] = i;
        ttg::sim::preemption_point("submitter.hold");
        gate.release();
      });
    }
    return out;
  }

  std::string check() {
    std::ostringstream os;
    if (admit_n.load() != kSubmitters) {
      os << "starvation: only " << admit_n.load() << " of " << kSubmitters
         << " waiters were admitted";
      return os.str();
    }
    for (int i = 0; i < kSubmitters; ++i) {
      if (enter_log[i] != admit_log[i]) {
        os << "FIFO violated at position " << i << ": entered "
           << enter_log[i] << " but admitted " << admit_log[i];
        return os.str();
      }
    }
    if (gate.inflight() != 0) {
      os << "gate did not drain: inflight=" << gate.inflight();
      return os.str();
    }
    return "";
  }
};

TEST(DstServing, AdmissionNeverExceedsLimit) {
  dst::explore<AdmitRace>("serving_admit_bound", AdmitRace::kSubmitters);
}

TEST(DstServing, QueueAdmissionIsFifo) {
  dst::explore<QueueFifo>("serving_queue_fifo", QueueFifo::kSubmitters);
}

}  // namespace
