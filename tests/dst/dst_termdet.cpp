// DST property test: the termination wave never announces while an
// attached active thread can still submit work.
//
// The scenario models the race from Sec. III-A: workers go idle
// immediately while an external submitter (attached, active, e.g. the
// application thread between execute() and fence()) dawdles before
// discovering its task. The active-thread gate in rank_quiet() is the
// only thing standing between the wave and a premature announcement —
// in the thread-local accounting mode the submitter's discovery sits in
// an unflushed per-thread counter, so rank-wide pending stays zero the
// whole time. The submitter checks terminated() right after its
// discovery: true there means the detector declared the epoch over with
// a live task in flight. Liveness is checked too — every schedule must
// still reach termination (a stuck wave shows up as a livelock).
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dst_common.hpp"
#include "sim/sim.hpp"
#include "termdet/termdet.hpp"

namespace {

struct TermDetLateSubmit {
  TermDetLateSubmit(int nranks, ttg::TermDetMode mode)
      : nranks_(nranks),
        td_(std::make_unique<ttg::TerminationDetector>(nranks, mode)) {}

  const int nranks_;
  std::unique_ptr<ttg::TerminationDetector> td_;
  std::atomic<int> premature{0};
  // Detector contract: every participant attaches before idle workers
  // may conclude termination (the runtime attaches workers and the
  // submitter during startup). Workers hold until the submitter is in.
  std::atomic<bool> submitter_attached{false};

  std::vector<std::function<void()>> bodies() {
    auto submitter = [this] {
      td_->thread_attach(0);
      submitter_attached.store(true, std::memory_order_release);
      // Attached and active, but slow to produce: the wave must wait.
      // The window is ~24 yields wide so schedulers have ample room to
      // drive two full wave rounds (≈16 worker steps) through it.
      for (int i = 0; i < 24; ++i) {
        ttg::sim::preemption_point("submitter.prepare");
      }
      td_->on_discovered(1);
      if (td_->terminated()) {
        premature.fetch_add(1, std::memory_order_relaxed);
      }
      td_->on_completed();
      td_->on_idle();
      while (!td_->terminated()) {
        td_->advance_wave();
        ttg::sim::preemption_point("submitter.wave");
      }
    };
    auto make_worker = [this](int rank) {
      return [this, rank] {
        td_->thread_attach(rank);
        while (!submitter_attached.load(std::memory_order_acquire)) {
          ttg::sim::preemption_point("worker.wait_attach");
        }
        td_->on_idle();
        while (!td_->terminated()) {
          td_->advance_wave();
          ttg::sim::preemption_point("worker.wave");
        }
      };
    };
    std::vector<std::function<void()>> b;
    b.push_back(submitter);
    b.push_back(make_worker(0));
    for (int r = 1; r < nranks_; ++r) b.push_back(make_worker(r));
    b.push_back(make_worker(0));  // a second rank-0 worker adds contention
    return b;
  }

  std::string check() {
    if (int p = premature.load(std::memory_order_relaxed); p != 0) {
      return "termination announced while an active submitter held an "
             "in-flight task (premature, " +
             std::to_string(p) + " observation(s))";
    }
    if (!td_->terminated()) return "epoch never terminated (liveness)";
    if (td_->total_discovered() != td_->total_completed()) {
      return "discovered/completed counters diverge at termination";
    }
    return "";
  }
};

TEST(DstTermDet, NoPrematureTerminationThreadLocal) {
  dst::explore<TermDetLateSubmit>("termdet_threadlocal", 3, 1,
                                  ttg::TermDetMode::kThreadLocal);
}

TEST(DstTermDet, NoPrematureTerminationProcessAtomic) {
  dst::explore<TermDetLateSubmit>("termdet_processatomic", 3, 1,
                                  ttg::TermDetMode::kProcessAtomic);
}

TEST(DstTermDet, NoPrematureTerminationTwoRanks) {
  dst::explore<TermDetLateSubmit>("termdet_tworanks", 4, 2,
                                  ttg::TermDetMode::kThreadLocal);
}

}  // namespace
