// DST property test: the coroutine suspend/resume rendezvous
// (runtime/coroutine.hpp) is exact under every interleaving.
//
// The scenarios run *real* C++20 coroutine frames over a model engine:
// a model Host whose prepare/submit hooks count discoveries and push
// the task into a tiny lock-free ready queue, and a worker vthread that
// pops and resumes — the same division of labor as TT::run_coro_first /
// resume_task, minus the scheduler. The code under test (the awaiters,
// the InputGate Treiber park / exchange claim / CAS cancel) is the
// production header compiled with sim instrumentation, so the runner
// explores the interleavings at every TTG_SIM_POINT inside it.
//
// Properties: every parked continuation is claimed and disposed exactly
// once (resumed to completion XOR destroyed by cancellation), whatever
// order park, fulfill and cancel land in; two tasks awaiting one edge
// both observe the fulfilled value; and the termination wave cannot
// converge while a frame is parked (suspended = discovered-but-not-
// complete). The coroutine_lost_resume mutant drops the submit after a
// fulfill claim (a waiter sleeps forever — bounded drains flag the
// missing completion, the wave scenario never terminates); the
// coroutine_double_resume mutant splits fulfill's claim into an
// unfenced load/store pair so a racing cancel purge claims the same
// waiter list (the per-task submit guard counts the second submission
// without re-entering the destroyed frame). scripts/mutation_gate.sh
// requires this suite to catch both.
#include <atomic>
#include <coroutine>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dst_common.hpp"
#include "runtime/coroutine.hpp"
#include "runtime/task.hpp"
#include "sim/sim.hpp"
#include "termdet/termdet.hpp"

namespace {

/// A model task record: TaskBase (so the production Host carries it)
/// plus the parked frame address and a submission counter. The counter
/// is the double-resume detector: the *first* submit wins the queue
/// slot, any further submit is recorded and dropped — the model never
/// re-enters a frame, so even the double_resume mutant runs UB-free.
struct ModelTask : ttg::TaskBase {
  std::atomic<void*> addr{nullptr};     ///< set by prepare_suspend
  std::atomic<int> submits{0};
  std::atomic<bool> body_done{false};   ///< body ran to co_return
  std::atomic<bool> dropped{false};     ///< frame destroyed by cancel
};

/// Single-consumer lock-free ready queue (capacity for every submit a
/// scenario can legally produce, plus mutant slack).
struct ReadyQueue {
  static constexpr int kCap = 16;
  std::atomic<ModelTask*> slots[kCap]{};
  std::atomic<int> tail{0};
  int head = 0;  ///< single consumer (the worker vthread)

  void push(ModelTask* t) {
    const int i = tail.fetch_add(1, std::memory_order_acq_rel);
    if (i < kCap) slots[i].store(t, std::memory_order_release);
  }
  ModelTask* pop() {
    if (head >= kCap) return nullptr;
    ModelTask* t = slots[head].exchange(nullptr, std::memory_order_acq_rel);
    if (t != nullptr) ++head;
    return t;
  }
};

/// Shared model-engine state + the Host hooks, mixed into each scenario.
struct ModelEngine {
  ReadyQueue queue;
  std::atomic<int> discovered{0};   ///< initial tasks + suspensions
  std::atomic<int> completed{0};    ///< finished segments
  std::atomic<bool> double_resume{false};

  static void prepare(ttg::coro::Host& host, void* coro_addr) {
    auto* eng = static_cast<ModelEngine*>(host.backend);
    auto* t = static_cast<ModelTask*>(host.task);
    t->addr.store(coro_addr, std::memory_order_release);
    eng->discovered.fetch_add(1, std::memory_order_relaxed);
    ttg::coro::detail::t_suspend_pending = true;
  }

  static void submit(ttg::coro::Host& host) {
    auto* eng = static_cast<ModelEngine*>(host.backend);
    auto* t = static_cast<ModelTask*>(host.task);
    if (t->submits.fetch_add(1, std::memory_order_acq_rel) > 0) {
      // Second claim of the same parked continuation: in production
      // this resumes a destroyed frame. Record and drop.
      eng->double_resume.store(true, std::memory_order_release);
      return;
    }
    eng->queue.push(t);
  }

  ttg::coro::Host host_for(ModelTask* t) {
    ttg::coro::Host h;
    h.task = t;
    h.timers = nullptr;
    h.prepare_suspend = &ModelEngine::prepare;
    h.submit = &ModelEngine::submit;
    h.backend = this;
    return h;
  }

  /// Runs the first segment of `body(args...)` for `t` on the calling
  /// vthread. Returns true if the frame parked (the vthread must not
  /// touch it again); on false the body completed synchronously and the
  /// frame is destroyed here. Mirrors TT::run_coro_first.
  template <typename Fn, typename... Args>
  bool run_first(ModelTask* t, Fn&& body, Args&&... args) {
    discovered.fetch_add(1, std::memory_order_relaxed);
    ttg::coro::Host host = host_for(t);
    const bool saved = ttg::coro::detail::t_suspend_pending;
    ttg::coro::detail::t_suspend_pending = false;
    ttg::resumable r;
    {
      ttg::coro::InstallGuard guard(&host);
      r = body(std::forward<Args>(args)...);
    }
    const bool parked = ttg::coro::detail::t_suspend_pending;
    ttg::coro::detail::t_suspend_pending = saved;
    completed.fetch_add(1, std::memory_order_relaxed);  // the segment
    if (!parked) r.handle().destroy();
    return parked;
  }

  /// One worker drain step (mirrors TT::resume_task + finish_coro).
  /// `cancelled` models the engine-ingress drop of a dead World's
  /// continuation: the frame is destroyed at its suspension point.
  /// Returns true if a task was processed.
  bool drain_one(bool cancelled) {
    ModelTask* t = queue.pop();
    if (t == nullptr) return false;
    auto h = ttg::resumable::handle_type::from_address(
        t->addr.load(std::memory_order_acquire));
    if (cancelled) {
      h.destroy();
      t->dropped.store(true, std::memory_order_release);
      completed.fetch_add(1, std::memory_order_relaxed);  // cancelled
      return true;
    }
    const bool saved = ttg::coro::detail::t_suspend_pending;
    ttg::coro::detail::t_suspend_pending = false;
    h.resume();
    const bool parked = ttg::coro::detail::t_suspend_pending;
    ttg::coro::detail::t_suspend_pending = saved;
    completed.fetch_add(1, std::memory_order_relaxed);  // the segment
    if (!parked) {
      ttg::coro::mark_final_resume();
      h.destroy();
    }
    return true;
  }
};

/// The awaited body: a free coroutine so its state lives in the frame
/// (parameters are copied in; a capturing lambda's captures would die
/// with the vthread's stack when the first segment parks).
ttg::resumable await_gate(ttg::InputGate<int>* gate, ModelTask* t,
                          std::atomic<int>* got) {
  const int v = co_await *gate;
  got->store(v, std::memory_order_release);
  t->body_done.store(true, std::memory_order_release);
  co_return;
}

// ---------------------------------------------------------------------
// Scenario: two tasks await one edge; fulfill races both parks.
// ---------------------------------------------------------------------
struct TwoWaitersOneGate : ModelEngine {
  ttg::InputGate<int> gate;  // unregistered: no cancellation here
  ModelTask tasks[2];
  std::atomic<int> got[2] = {{-1}, {-1}};

  std::vector<std::function<void()>> bodies() {
    auto waiter = [this](int i) {
      run_first(&tasks[i], await_gate, &gate, &tasks[i], &got[i]);
    };
    auto fulfiller = [this] { gate.fulfill(42); };
    auto worker = [this] {
      for (int spin = 0; spin < 300; ++spin) {
        if (tasks[0].body_done.load(std::memory_order_acquire) &&
            tasks[1].body_done.load(std::memory_order_acquire)) {
          return;
        }
        drain_one(/*cancelled=*/false);
        ttg::sim::preemption_point("coro.worker.poll");
      }
    };
    return {[waiter] { waiter(0); }, [waiter] { waiter(1); }, fulfiller,
            worker};
  }

  std::string check() {
    for (int i = 0; i < 2; ++i) {
      if (!tasks[i].body_done.load()) {
        return "waiter " + std::to_string(i) +
               " never resumed after fulfill (lost resume): submits=" +
               std::to_string(tasks[i].submits.load());
      }
      if (got[i].load() != 42) {
        return "waiter " + std::to_string(i) + " resumed with value " +
               std::to_string(got[i].load()) + " instead of 42";
      }
      if (tasks[i].submits.load() > 1) {
        return "waiter " + std::to_string(i) + " submitted " +
               std::to_string(tasks[i].submits.load()) +
               " times (double resume)";
      }
    }
    if (double_resume.load()) return "a continuation was claimed twice";
    if (discovered.load() != completed.load()) {
      return "census: discovered=" + std::to_string(discovered.load()) +
             " completed=" + std::to_string(completed.load());
    }
    return "";
  }
};

TEST(DstCoroutine, TwoTasksAwaitingOneEdgeBothResume) {
  dst::explore<TwoWaitersOneGate>("coro_two_waiters", 4);
}

// ---------------------------------------------------------------------
// Scenario: fulfill races the cancellation purge for one parked frame.
// ---------------------------------------------------------------------
struct SuspendVsCancel : ModelEngine {
  ttg::InputGate<int> gate;
  ModelTask task;
  std::atomic<int> got{-1};
  std::atomic<bool> world_cancelled{false};
  std::atomic<bool> parked{false};

  std::vector<std::function<void()>> bodies() {
    auto waiter = [this] {
      run_first(&task, await_gate, &gate, &task, &got);
      parked.store(true, std::memory_order_release);  // segment done
    };
    auto fulfiller = [this] { gate.fulfill(7); };
    auto canceller = [this] {
      // The abort lands first (World::abort publishes the fault before
      // purge_cancelled sweeps the gate registry), then the purge
      // claims whatever is still parked.
      world_cancelled.store(true, std::memory_order_release);
      ttg::sim::preemption_point("coro.cancel.purge");
      gate.cancel_parked();
    };
    auto worker = [this] {
      for (int spin = 0; spin < 300; ++spin) {
        if (disposed()) return;
        drain_one(world_cancelled.load(std::memory_order_acquire));
        ttg::sim::preemption_point("coro.worker.poll");
      }
    };
    return {waiter, fulfiller, canceller, worker};
  }

  bool disposed() const {
    return task.body_done.load(std::memory_order_acquire) ||
           task.dropped.load(std::memory_order_acquire);
  }

  std::string check() {
    if (double_resume.load() || task.submits.load() > 1) {
      return "the parked frame was claimed twice (submits=" +
             std::to_string(task.submits.load()) +
             "): fulfill and cancel both resumed it";
    }
    if (!disposed()) {
      return "the parked frame was never disposed (lost resume): "
             "neither resumed with the value nor destroyed by cancel";
    }
    if (task.body_done.load() && task.dropped.load()) {
      return "frame both resumed to completion and destroyed";
    }
    if (task.body_done.load() && got.load() != 7) {
      return "resumed with value " + std::to_string(got.load());
    }
    if (discovered.load() != completed.load()) {
      return "census: discovered=" + std::to_string(discovered.load()) +
             " completed=" + std::to_string(completed.load()) +
             " (a cancelled frame was not retired)";
    }
    return "";
  }
};

TEST(DstCoroutine, SuspendVersusCancelDisposesExactlyOnce) {
  dst::explore<SuspendVsCancel>("coro_suspend_vs_cancel", 4);
}

// ---------------------------------------------------------------------
// Scenario: the termination wave races a parked continuation — it must
// not converge until the resume segment retires (suspended tasks are
// discovered-but-not-complete).
// ---------------------------------------------------------------------
struct ResumeVsWave {
  explicit ResumeVsWave(ttg::TermDetMode mode)
      : td_(std::make_unique<ttg::TerminationDetector>(1, mode)) {}

  std::unique_ptr<ttg::TerminationDetector> td_;
  ModelEngine eng;
  ttg::InputGate<int> gate;
  ModelTask task;
  std::atomic<int> got{-1};

  void wave_loop(const char* label) {
    td_->on_idle();
    for (int i = 0; i < 300 && !td_->terminated(); ++i) {
      td_->advance_wave();
      ttg::sim::preemption_point(label);
    }
  }

  std::vector<std::function<void()>> bodies() {
    auto driver = [this] {
      td_->thread_attach(0);
      td_->on_discovered(1);  // the task itself
      ttg::coro::Host host = eng.host_for(&task);
      const bool saved = ttg::coro::detail::t_suspend_pending;
      ttg::coro::detail::t_suspend_pending = false;
      ttg::resumable r;
      {
        ttg::coro::InstallGuard guard(&host);
        r = await_gate(&gate, &task, &got);
      }
      const bool parked = ttg::coro::detail::t_suspend_pending;
      ttg::coro::detail::t_suspend_pending = saved;
      if (parked) {
        // prepare() counted the model discovery; mirror it on the real
        // detector *before* the segment completion below, exactly as
        // coro_prepare_suspend orders it in production.
        td_->on_discovered(1);
      } else {
        r.handle().destroy();
      }
      td_->on_completed();  // the first segment
      wave_loop("coro.driver.wave");
    };
    auto fulfiller = [this] {
      td_->thread_attach(0);
      gate.fulfill(9);
      wave_loop("coro.fulfiller.wave");
    };
    auto worker = [this] {
      td_->thread_attach(0);
      for (int spin = 0; spin < 300; ++spin) {
        if (task.body_done.load(std::memory_order_acquire)) break;
        if (eng.drain_one(/*cancelled=*/false)) {
          td_->on_completed();  // the resume segment
        }
        ttg::sim::preemption_point("coro.worker.poll");
      }
      wave_loop("coro.worker.wave");
    };
    return {driver, fulfiller, worker};
  }

  std::string check() {
    if (!task.body_done.load()) {
      // The body finishes on the sync path or on the worker's resume;
      // a parked frame nobody resumed is a lost resume.
      return "parked continuation never resumed (lost resume)";
    }
    if (got.load() != 9) {
      return "resumed with value " + std::to_string(got.load());
    }
    if (!td_->terminated()) {
      return "termination wave never converged: a suspension was "
             "discovered but its resume segment never completed";
    }
    if (td_->total_discovered() != td_->total_completed()) {
      return "census at termination: discovered=" +
             std::to_string(td_->total_discovered()) + " completed=" +
             std::to_string(td_->total_completed());
    }
    return "";
  }
};

TEST(DstCoroutine, ResumeVersusTerminationWaveThreadLocal) {
  dst::explore<ResumeVsWave>("coro_wave_threadlocal", 3,
                             ttg::TermDetMode::kThreadLocal);
}

TEST(DstCoroutine, ResumeVersusTerminationWaveProcessAtomic) {
  dst::explore<ResumeVsWave>("coro_wave_processatomic", 3,
                             ttg::TermDetMode::kProcessAtomic);
}

}  // namespace
