// DST property test: cancelled completions keep the termination wave
// exact under every interleaving of the cancellation edge.
//
// The scenario models a graph abort racing in-flight discovery: an
// attached submitter keeps discovering tasks while workers drain them,
// and the cancellation flag flips mid-stream. Tasks popped after the
// flip are not executed — they are retired through on_cancelled(), the
// "cancelled completion" path (docs/robustness.md). The property: the
// wave still converges (liveness — a dropped decrement leaves pending
// stuck above zero forever) and the four counters balance exactly,
// discovered == completed, with the cancelled share visible in
// total_cancelled(). The termdet_cancel_drop mutant deletes the pending
// decrement in on_cancelled; this suite must catch it (livelock).
#include <atomic>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "dst_common.hpp"
#include "sim/sim.hpp"
#include "termdet/termdet.hpp"

namespace {

struct CancelRace {
  CancelRace(int nworkers, ttg::TermDetMode mode)
      : nworkers_(nworkers),
        td_(std::make_unique<ttg::TerminationDetector>(1, mode)) {}

  static constexpr int kTasks = 6;
  const int nworkers_;
  std::unique_ptr<ttg::TerminationDetector> td_;
  std::atomic<int> queue{0};      ///< discovered-but-unexecuted tasks
  std::atomic<bool> cancelled{false};
  std::atomic<bool> done{false};  ///< submitter finished discovering
  std::atomic<int> executed{0};
  std::atomic<int> dropped{0};
  std::atomic<bool> submitter_attached{false};

  std::vector<std::function<void()>> bodies() {
    auto submitter = [this] {
      td_->thread_attach(0);
      submitter_attached.store(true, std::memory_order_release);
      for (int i = 0; i < kTasks; ++i) {
        td_->on_discovered(1);
        queue.fetch_add(1, std::memory_order_release);
        ttg::sim::preemption_point("submitter.push");
        if (i == kTasks / 2) {
          // The abort edge lands mid-stream: later pops must be dropped
          // as cancelled completions, earlier ones already executed.
          cancelled.store(true, std::memory_order_release);
        }
      }
      done.store(true, std::memory_order_release);
      td_->on_idle();
      while (!td_->terminated()) {
        td_->advance_wave();
        ttg::sim::preemption_point("submitter.wave");
      }
    };
    auto worker = [this] {
      td_->thread_attach(0);
      while (!submitter_attached.load(std::memory_order_acquire)) {
        ttg::sim::preemption_point("worker.wait_attach");
      }
      while (true) {
        int q = queue.load(std::memory_order_acquire);
        if (q > 0) {
          if (queue.compare_exchange_weak(q, q - 1,
                                          std::memory_order_acq_rel)) {
            if (cancelled.load(std::memory_order_acquire)) {
              td_->on_cancelled(0, 1);
              dropped.fetch_add(1, std::memory_order_relaxed);
            } else {
              td_->on_completed();
              executed.fetch_add(1, std::memory_order_relaxed);
            }
          }
          ttg::sim::preemption_point("worker.pop");
          continue;
        }
        if (done.load(std::memory_order_acquire) &&
            queue.load(std::memory_order_acquire) == 0) {
          break;
        }
        ttg::sim::preemption_point("worker.poll");
      }
      td_->on_idle();
      while (!td_->terminated()) {
        td_->advance_wave();
        ttg::sim::preemption_point("worker.wave");
      }
    };
    std::vector<std::function<void()>> b;
    b.push_back(submitter);
    for (int w = 0; w < nworkers_; ++w) b.push_back(worker);
    return b;
  }

  std::string check() {
    if (!td_->terminated()) {
      return "epoch never terminated after cancellation (liveness)";
    }
    if (executed.load() + dropped.load() != kTasks) {
      return "task accounting lost a pop: executed=" +
             std::to_string(executed.load()) +
             " dropped=" + std::to_string(dropped.load());
    }
    if (td_->total_discovered() != td_->total_completed()) {
      return "discovered (" + std::to_string(td_->total_discovered()) +
             ") != completed (" + std::to_string(td_->total_completed()) +
             ") at termination: a cancelled completion was not retired";
    }
    if (td_->total_cancelled() != dropped.load()) {
      return "total_cancelled (" +
             std::to_string(td_->total_cancelled()) +
             ") != dropped pops (" + std::to_string(dropped.load()) + ")";
    }
    return "";
  }
};

TEST(DstCancel, CancelledCompletionsConvergeThreadLocal) {
  dst::explore<CancelRace>("cancel_threadlocal", 3, 2,
                           ttg::TermDetMode::kThreadLocal);
}

TEST(DstCancel, CancelledCompletionsConvergeProcessAtomic) {
  dst::explore<CancelRace>("cancel_processatomic", 3, 2,
                           ttg::TermDetMode::kProcessAtomic);
}

}  // namespace
