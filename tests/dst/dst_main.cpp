// Custom gtest main for the DST suite: accepts --seed=N, --schedules=N
// and --trace-dir=PATH as friendlier spellings of the TTG_DST_* env vars
// (flags win over the environment). `--seed=N --schedules=1` replays
// exactly the schedule a failure message names.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);  // consumes --gtest_* flags
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strncmp(a, "--seed=", 7) == 0) {
      setenv("TTG_DST_SEED", a + 7, 1);
    } else if (std::strncmp(a, "--schedules=", 12) == 0) {
      setenv("TTG_DST_SCHEDULES", a + 12, 1);
    } else if (std::strncmp(a, "--trace-dir=", 12) == 0) {
      setenv("TTG_DST_TRACE_DIR", a + 12, 1);
    } else {
      std::fprintf(stderr,
                   "unknown argument '%s' (expected --seed=N, "
                   "--schedules=N, or --trace-dir=PATH)\n",
                   a);
      return 2;
    }
  }
  return RUN_ALL_TESTS();
}
