#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/busy_wait.hpp"
#include "common/cache.hpp"
#include "common/cycle_clock.hpp"
#include "common/rng.hpp"
#include "common/thread_id.hpp"

namespace {

TEST(CachePadded, ElementsDoNotShareCacheLines) {
  ttg::CachePadded<int> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].value);
    EXPECT_GE(b - a, ttg::kCacheLineSize);
  }
}

TEST(CycleClock, Monotonic) {
  const std::uint64_t a = ttg::rdtsc();
  const std::uint64_t b = ttg::rdtsc();
  EXPECT_GE(b, a);
}

TEST(CycleClock, CalibrationIsPositiveAndStable) {
  const double r1 = ttg::cycles_per_ns();
  const double r2 = ttg::cycles_per_ns();
  EXPECT_GT(r1, 0.0);
  EXPECT_DOUBLE_EQ(r1, r2);  // cached after first call
}

TEST(CycleClock, RoundTripConversion) {
  const std::uint64_t cycles = ttg::ns_to_cycles(1000.0);
  const double ns = ttg::cycles_to_ns(cycles);
  EXPECT_NEAR(ns, 1000.0, 10.0);
}

TEST(BusyWait, WaitsAtLeastRequestedCycles) {
  const std::uint64_t target = 100000;
  const std::uint64_t start = ttg::rdtsc();
  ttg::busy_wait_cycles(target);
  EXPECT_GE(ttg::rdtsc() - start, target);
}

TEST(BusyWait, ZeroCyclesReturnsImmediately) {
  ttg::busy_wait_cycles(0);  // must not hang
  SUCCEED();
}

TEST(Backoff, PausesWithoutCrashing) {
  ttg::Backoff b;
  for (int i = 0; i < 20; ++i) b.pause();
  b.reset();
  b.pause();
  SUCCEED();
}

TEST(ThreadId, StableWithinThread) {
  const int a = ttg::this_thread::id();
  const int b = ttg::this_thread::id();
  EXPECT_EQ(a, b);
  EXPECT_GE(a, 0);
  EXPECT_LT(a, ttg::kMaxThreads);
}

TEST(ThreadId, DistinctAcrossThreads) {
  const int mine = ttg::this_thread::id();
  std::set<int> ids;
  std::mutex m;
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      const int id = ttg::this_thread::id();
      std::lock_guard<std::mutex> g(m);
      ids.insert(id);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(ids.size(), 8u);
  EXPECT_EQ(ids.count(mine), 0u);
}

TEST(Rng, SplitMixDeterministic) {
  ttg::SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DoubleInUnitInterval) {
  ttg::SplitMix64 rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  ttg::SplitMix64 rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

TEST(Rng, Mix64IsBijectiveish) {
  // Distinct inputs must map to distinct outputs on a decent sample.
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.insert(ttg::mix64(i));
  EXPECT_EQ(outs.size(), 10000u);
}

}  // namespace
