#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "baselines/bsp.hpp"
#include "baselines/taskflow_mini.hpp"

namespace {

// ------------------------------------------------------------ taskflow_mini

TEST(TaskflowMini, RunsIndependentTasks) {
  tfm::Taskflow flow;
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    flow.emplace([&count] { count.fetch_add(1); });
  }
  tfm::Executor exec(2);
  exec.run(flow);
  EXPECT_EQ(count.load(), 100);
}

TEST(TaskflowMini, PrecedeEnforcesOrder) {
  tfm::Taskflow flow;
  std::atomic<int> stage{0};
  auto a = flow.emplace([&] {
    EXPECT_EQ(stage.load(), 0);
    stage.store(1);
  });
  auto b = flow.emplace([&] {
    EXPECT_EQ(stage.load(), 1);
    stage.store(2);
  });
  auto c = flow.emplace([&] {
    EXPECT_EQ(stage.load(), 2);
    stage.store(3);
  });
  a.precede(b);
  b.precede(c);
  tfm::Executor exec(2);
  exec.run(flow);
  EXPECT_EQ(stage.load(), 3);
}

TEST(TaskflowMini, DiamondJoinWaitsForBothBranches) {
  tfm::Taskflow flow;
  std::atomic<int> branches{0};
  std::atomic<int> join_saw{-1};
  auto src = flow.emplace([] {});
  auto l = flow.emplace([&] { branches.fetch_add(1); });
  auto r = flow.emplace([&] { branches.fetch_add(1); });
  auto join = flow.emplace([&] { join_saw.store(branches.load()); });
  src.precede(l);
  src.precede(r);
  l.precede(join);
  r.precede(join);
  tfm::Executor exec(4);
  exec.run(flow);
  EXPECT_EQ(join_saw.load(), 2);
}

TEST(TaskflowMini, LongSerialChain) {
  tfm::Taskflow flow;
  constexpr int kLen = 5000;
  std::atomic<int> last{-1};
  std::vector<tfm::Task> tasks;
  for (int i = 0; i < kLen; ++i) {
    tasks.push_back(flow.emplace([&last, i] {
      EXPECT_EQ(last.load(), i - 1);
      last.store(i);
    }));
    if (i > 0) tasks[i - 1].precede(tasks[i]);
  }
  tfm::Executor exec(2);
  exec.run(flow);
  EXPECT_EQ(last.load(), kLen - 1);
}

// ------------------------------------------------------------------- bsp

TEST(Bsp, RanksSeeTheirIds) {
  bsp::Communicator comm(4);
  std::atomic<int> id_sum{0};
  comm.run([&](bsp::Rank& rank) {
    EXPECT_EQ(rank.size(), 4);
    id_sum.fetch_add(rank.id());
  });
  EXPECT_EQ(id_sum.load(), 0 + 1 + 2 + 3);
}

TEST(Bsp, PointToPointMessage) {
  bsp::Communicator comm(2);
  comm.run([&](bsp::Rank& rank) {
    if (rank.id() == 0) {
      rank.send(1, /*tag=*/7, 12345);
    } else {
      EXPECT_EQ(rank.recv<int>(0, 7), 12345);
    }
  });
}

TEST(Bsp, TagsDisambiguateMessages) {
  bsp::Communicator comm(2);
  comm.run([&](bsp::Rank& rank) {
    if (rank.id() == 0) {
      rank.send(1, /*tag=*/1, 100);
      rank.send(1, /*tag=*/2, 200);
    } else {
      // Receive out of order by tag.
      EXPECT_EQ(rank.recv<int>(0, 2), 200);
      EXPECT_EQ(rank.recv<int>(0, 1), 100);
    }
  });
}

TEST(Bsp, ArrayPayload) {
  bsp::Communicator comm(2);
  comm.run([&](bsp::Rank& rank) {
    if (rank.id() == 0) {
      std::vector<double> data(64);
      std::iota(data.begin(), data.end(), 0.0);
      rank.send(1, 0, data.data(), data.size());
    } else {
      std::vector<double> data(64, -1.0);
      rank.recv(0, 0, data.data(), data.size());
      for (int i = 0; i < 64; ++i) EXPECT_DOUBLE_EQ(data[i], i);
    }
  });
}

TEST(Bsp, BarrierSynchronizesPhases) {
  constexpr int kRanks = 4;
  constexpr int kPhases = 50;
  bsp::Communicator comm(kRanks);
  std::atomic<int> phase_counts[kPhases];
  for (auto& c : phase_counts) c.store(0);
  std::atomic<bool> violation{false};
  comm.run([&](bsp::Rank& rank) {
    for (int p = 0; p < kPhases; ++p) {
      phase_counts[p].fetch_add(1);
      rank.barrier();
      // After the barrier, every rank must have entered this phase.
      if (phase_counts[p].load() != kRanks) violation.store(true);
      rank.barrier();
    }
  });
  EXPECT_FALSE(violation.load());
}

TEST(Bsp, RingPass) {
  constexpr int kRanks = 4;
  bsp::Communicator comm(kRanks);
  std::atomic<int> final_value{0};
  comm.run([&](bsp::Rank& rank) {
    int token = 1;
    if (rank.id() == 0) {
      rank.send(1, 0, token);
      token = rank.recv<int>(kRanks - 1, 0);
      final_value.store(token);
    } else {
      token = rank.recv<int>(rank.id() - 1, 0);
      rank.send((rank.id() + 1) % kRanks, 0, token + 1);
    }
  });
  EXPECT_EQ(final_value.load(), kRanks);
}

}  // namespace
