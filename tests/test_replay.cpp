// Record-and-replay epoch compilation (docs/replay.md): a recording
// epoch captures the dynamic unfolding of a shape-deterministic graph
// into a GraphTemplate; replay epochs re-run the frozen shape on plain
// join counters with fresh payloads.
//
// The invariants under test: replayed epochs produce results identical
// to the dynamic path (same checksums, same fold values) while honoring
// changed payloads; repeated replays neither leak DataCopies nor skew
// the termination-detector accounting; divergence from the recorded
// shape fails the epoch cleanly and leaves the instance reusable.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "taskbench/taskbench.hpp"
#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

/// Payload with a live-instance count: any copy still alive after an
/// epoch settles was leaked by a record or an arena slot.
struct Tracked {
  static inline std::atomic<int> live{0};
  long v = 0;
  Tracked() { live.fetch_add(1, std::memory_order_relaxed); }
  explicit Tracked(long x) : v(x) {
    live.fetch_add(1, std::memory_order_relaxed);
  }
  Tracked(const Tracked& o) : v(o.v) {
    live.fetch_add(1, std::memory_order_relaxed);
  }
  Tracked(Tracked&& o) noexcept : v(o.v) {
    live.fetch_add(1, std::memory_order_relaxed);
  }
  Tracked& operator=(const Tracked&) = default;
  Tracked& operator=(Tracked&&) = default;
  ~Tracked() { live.fetch_sub(1, std::memory_order_relaxed); }
};

TEST(Replay, ChainMatchesDynamicAndThreadsNewPayloads) {
  ttg::World world(test_config());
  ttg::Edge<int, long> e("chain");
  constexpr int kLen = 200;
  std::atomic<long> final_value{-1};
  // Fig. 5's shape: a single-input chain (the dynamic fast path), each
  // hop folding its key into the running value.
  auto tt = ttg::make_tt<int>(
      [&](const int& k, long& v) {
        v += k;
        if (k < kLen - 1) {
          ttg::send<0>(k + 1, std::move(v));
        } else {
          final_value.store(v);
        }
      },
      ttg::edges(e), ttg::edges(e), "step", world);

  // Dynamic reference epoch.
  world.execute();
  tt->send_input<0>(0, 1000L);
  ASSERT_TRUE(world.wait().ok());
  const long expect_1000 = final_value.load();
  ASSERT_EQ(expect_1000, 1000L + kLen * (kLen - 1) / 2);

  // Recording epoch: same seed, same result.
  world.begin_recording();
  tt->send_input<0>(0, 1000L);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(final_value.load(), expect_1000);
  auto tmpl = world.end_recording();
  ASSERT_NE(tmpl, nullptr);
  EXPECT_EQ(tmpl->num_slots(), static_cast<std::size_t>(kLen));
  EXPECT_EQ(tmpl->external_deliveries().size(), 1u);

  // Replays: identical shape, fresh payloads each epoch.
  ttg::ReplayInstance instance(tmpl);
  for (long seed : {1000L, 0L, -500L}) {
    final_value.store(-1);
    world.execute_replay(instance);
    tt->send_input<0>(0, seed);
    ASSERT_TRUE(world.wait().ok());
    EXPECT_EQ(final_value.load(), seed + kLen * (kLen - 1) / 2);
    EXPECT_EQ(world.detector().total_discovered(),
              world.detector().total_completed());
  }

  // The world drops back to the dynamic path after every replay.
  world.execute();
  tt->send_input<0>(kLen - 1, 7L);  // single hop, lands in final_value
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(final_value.load(), 7L + kLen - 1);
}

TEST(Replay, MultiInputJoinGraph) {
  ttg::World world(test_config(4));
  ttg::Edge<int, long> a("a"), b("b");
  ttg::Edge<int, long> join_out("join_out");
  std::atomic<long> sum{0};
  constexpr int kKeys = 64;
  // Two-input join (hash-table path when dynamic) feeding a leaf, so the
  // template mixes internal and external deliveries.
  auto join_tt = ttg::make_tt<int>(
      [](const int& k, long& x, long& y, auto& outs) {
        ttg::send<0>(k, x * y, outs);
      },
      ttg::edges(a, b), ttg::edges(join_out), "mul", world);
  auto leaf_tt = ttg::make_tt<int>(
      [&](const int&, long& v) { sum.fetch_add(v); }, ttg::edges(join_out),
      ttg::edges(), "leaf", world);
  (void)leaf_tt;

  const auto seed = [&](long scale) {
    for (int k = 0; k < kKeys; ++k) join_tt->send_input<0>(k, k * scale);
    for (int k = kKeys - 1; k >= 0; --k) {
      join_tt->send_input<1>(k, static_cast<long>(k + 1));
    }
  };
  const auto expected = [&](long scale) {
    long e = 0;
    for (int k = 0; k < kKeys; ++k) e += k * scale * (k + 1);
    return e;
  };

  world.begin_recording();
  seed(1);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(sum.load(), expected(1));
  auto tmpl = world.end_recording();
  ASSERT_NE(tmpl, nullptr);
  EXPECT_EQ(tmpl->num_slots(), static_cast<std::size_t>(2 * kKeys));

  ttg::ReplayInstance instance(tmpl);
  for (long scale : {1L, 3L}) {
    sum.store(0);
    world.execute_replay(instance);
    seed(scale);
    ASSERT_TRUE(world.wait().ok());
    EXPECT_EQ(sum.load(), expected(scale));
  }
}

TEST(Replay, ReductionGraph) {
  ttg::World world(test_config());
  ttg::Edge<int, long> in("in");
  std::atomic<long> total{0};
  constexpr int kContribs = 8;
  auto tt = ttg::make_tt<int>(
      [&](const int&, long& v) { total.fetch_add(v); },
      ttg::edges(ttg::make_reducing(
          in, [](long& acc, long&& x) { acc += x; }, kContribs)),
      ttg::edges(), "sum", world);

  const auto seed = [&](long base) {
    for (int k = 0; k < 4; ++k) {
      for (int i = 0; i < kContribs; ++i) {
        tt->send_input<0>(k, base + k * 100 + i);
      }
    }
  };

  world.begin_recording();
  seed(0);
  ASSERT_TRUE(world.wait().ok());
  const long dynamic_total = total.load();
  auto tmpl = world.end_recording();
  ASSERT_NE(tmpl, nullptr);
  // One slot per key: all contributions fold into the same record.
  EXPECT_EQ(tmpl->num_slots(), 4u);

  ttg::ReplayInstance instance(tmpl);
  total.store(0);
  world.execute_replay(instance);
  seed(0);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(total.load(), dynamic_total);

  total.store(0);
  world.execute_replay(instance);
  seed(1000);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(total.load(), dynamic_total + 4 * kContribs * 1000L);
}

TEST(Replay, TaskbenchStencilChecksumMatches) {
  taskbench::BenchConfig cfg;
  cfg.pattern = taskbench::Pattern::kStencil1D;
  cfg.width = 4;
  cfg.steps = 50;
  cfg.iterations = 0;
  const taskbench::RunResult dyn = taskbench::run_ttg(cfg, 2);
  const taskbench::RunResult rep = taskbench::run_ttg_replay(cfg, 2);
  EXPECT_TRUE(dyn.checksum_ok);
  EXPECT_TRUE(rep.checksum_ok);
  EXPECT_EQ(rep.checksum, dyn.checksum);
  EXPECT_EQ(rep.tasks, dyn.tasks);
}

TEST(Replay, TaskbenchTreeChecksumMatches) {
  taskbench::BenchConfig cfg;
  cfg.pattern = taskbench::Pattern::kTree;
  cfg.width = 8;
  cfg.steps = 30;
  cfg.iterations = 0;
  const taskbench::RunResult dyn = taskbench::run_ttg(cfg, 4);
  const taskbench::RunResult rep = taskbench::run_ttg_replay(cfg, 4);
  EXPECT_TRUE(dyn.checksum_ok);
  EXPECT_TRUE(rep.checksum_ok);
  EXPECT_EQ(rep.checksum, dyn.checksum);
}

TEST(Replay, HundredReplaysNoLeaksExactAccounting) {
  Tracked::live.store(0);
  {
    ttg::World world(test_config(4));
    ttg::Edge<int, Tracked> e("payload");
    ttg::Edge<int, Tracked> out("out");
    std::atomic<long> sum{0};
    constexpr int kFan = 16;
    auto src = ttg::make_tt<int>(
        [&](const int& k, Tracked& t, auto& outs) {
          for (int i = 0; i < 4; ++i) {
            ttg::send<0>(k * 4 + i, Tracked(t.v + i), outs);
          }
        },
        ttg::edges(e), ttg::edges(out), "src", world);
    auto leaf = ttg::make_tt<int>(
        [&](const int&, Tracked& t) { sum.fetch_add(t.v); },
        ttg::edges(out), ttg::edges(), "leaf", world);
    (void)leaf;

    const auto seed = [&](long base) {
      for (int k = 0; k < kFan; ++k) {
        src->send_input<0>(k, Tracked(base + k));
      }
    };

    world.begin_recording();
    seed(0);
    ASSERT_TRUE(world.wait().ok());
    ttg::ReplayInstance instance(world.end_recording());

    const std::uint64_t base_exec = world.total_tasks_executed();
    for (int round = 0; round < 100; ++round) {
      sum.store(0);
      world.execute_replay(instance);
      seed(round);
      ASSERT_TRUE(world.wait().ok());
      long expect = 0;
      for (int k = 0; k < kFan; ++k) {
        for (int i = 0; i < 4; ++i) expect += round + k + i;
      }
      ASSERT_EQ(sum.load(), expect) << "round " << round;
      ASSERT_EQ(world.detector().total_discovered(),
                world.detector().total_completed())
          << "round " << round;
    }
    // Every replay executed the full template: src + 4*src leaves each.
    EXPECT_EQ(world.total_tasks_executed() - base_exec,
              100ull * (kFan + kFan * 4));
  }
  EXPECT_EQ(Tracked::live.load(), 0)
      << "DataCopy payloads leaked across replays";
}

TEST(Replay, DivergenceFailsEpochCleanlyAndInstanceStaysUsable) {
  Tracked::live.store(0);
  {
    ttg::World world(test_config());
    ttg::Edge<int, Tracked> e("chain");
    std::atomic<int> truncate_at{1 << 30};
    std::atomic<long> last{-1};
    constexpr int kLen = 32;
    auto tt = ttg::make_tt<int>(
        [&](const int& k, Tracked& t) {
          if (k >= truncate_at.load()) return;  // diverge: skip the send
          if (k < kLen - 1) {
            ttg::send<0>(k + 1, Tracked(t.v + 1));
          } else {
            last.store(t.v);
          }
        },
        ttg::edges(e), ttg::edges(e), "step", world);

    world.begin_recording();
    tt->send_input<0>(0, Tracked(0));
    ASSERT_TRUE(world.wait().ok());
    ASSERT_EQ(last.load(), kLen - 1);
    ttg::ReplayInstance instance(world.end_recording());

    // A task that performs fewer sends than recorded diverges; the epoch
    // fails (no hang, no crash) and the accounting stays exact.
    truncate_at.store(kLen / 2);
    world.execute_replay(instance);
    tt->send_input<0>(0, Tracked(0));
    const ttg::Status st = world.wait();
    EXPECT_TRUE(st.failed()) << st.reason;
    EXPECT_NE(st.reason.find("replay"), std::string::npos) << st.reason;
    EXPECT_EQ(world.detector().total_discovered(),
              world.detector().total_completed());

    // The instance re-arms: a conforming epoch replays cleanly.
    truncate_at.store(1 << 30);
    last.store(-1);
    world.execute_replay(instance);
    tt->send_input<0>(0, Tracked(100));
    ASSERT_TRUE(world.wait().ok());
    EXPECT_EQ(last.load(), 100 + kLen - 1);
  }
  EXPECT_EQ(Tracked::live.load(), 0)
      << "payloads leaked across the diverged epoch";
}

TEST(Replay, MissingExternalSeedsAbortInsteadOfHanging) {
  ttg::World world(test_config());
  ttg::Edge<int, long> e("in");
  std::atomic<long> got{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, long& v) { got.fetch_add(v); }, ttg::edges(e),
      ttg::edges(), "leaf", world);

  world.begin_recording();
  tt->send_input<0>(0, 1L);
  tt->send_input<0>(1, 2L);
  ASSERT_TRUE(world.wait().ok());
  ttg::ReplayInstance instance(world.end_recording());

  world.execute_replay(instance);
  tt->send_input<0>(0, 1L);  // one of two recorded seeds
  const ttg::Status st = world.wait();
  EXPECT_TRUE(st.aborted());
  EXPECT_NE(st.reason.find("seeds"), std::string::npos) << st.reason;
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());

  // Full seeding afterwards replays fine.
  got.store(0);
  world.execute_replay(instance);
  tt->send_input<0>(0, 10L);
  tt->send_input<0>(1, 20L);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(got.load(), 30L);
}

TEST(Replay, EndRecordingAfterFailedEpochReturnsNull) {
  ttg::World world(test_config());
  ttg::Edge<int, ttg::Void> e("e");
  auto tt = ttg::make_tt<int>(
      [](const int& k, const ttg::Void&) {
        if (k == 3) throw std::runtime_error("record boom");
      },
      ttg::edges(e), ttg::edges(), "leaf", world);

  world.begin_recording();
  for (int k = 0; k < 8; ++k) tt->sendk_input<0>(k);
  EXPECT_TRUE(world.wait().failed());
  EXPECT_EQ(world.end_recording(), nullptr)
      << "a failed recording must not freeze into a template";

  // The world recovers to plain dynamic epochs.
  world.execute();
  tt->sendk_input<0>(100);
  EXPECT_TRUE(world.wait().ok());
}

TEST(Replay, CopyPoolPrewarmSmoke) {
  const ttg::CopyPoolStats before = ttg::copy_pool_stats();
  ttg::copy_pool_prewarm(64, 32);
  ttg::copy_pool_prewarm(1024, 8);
  ttg::copy_pool_prewarm(1 << 20, 4);  // oversized: ignored, no crash
  ttg::copy_pool_prewarm(64, 0);
  const ttg::CopyPoolStats after = ttg::copy_pool_stats();
  // Pre-warming allocates through the pools, so the hit+miss total moves
  // — but never the heap-fallback count.
  EXPECT_EQ(after.heap_fallbacks, before.heap_fallbacks);
  EXPECT_GE(after.hits + after.misses, before.hits + before.misses + 40);
}

}  // namespace
