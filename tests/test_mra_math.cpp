#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "mra/gemm.hpp"
#include "mra/legendre.hpp"
#include "mra/mra.hpp"
#include "mra/twoscale.hpp"

namespace {

// ------------------------------------------------------------------- gemm

TEST(Gemm, SmallKnownProduct) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const double a[4] = {1, 2, 3, 4};
  const double b[4] = {5, 6, 7, 8};
  double c[4];
  mra::gemm(2, 2, 2, a, b, c);
  EXPECT_DOUBLE_EQ(c[0], 19);
  EXPECT_DOUBLE_EQ(c[1], 22);
  EXPECT_DOUBLE_EQ(c[2], 43);
  EXPECT_DOUBLE_EQ(c[3], 50);
}

TEST(Gemm, RectangularShapes) {
  // (1x3) * (3x2)
  const double a[3] = {1, 2, 3};
  const double b[6] = {1, 0, 0, 1, 1, 1};
  double c[2];
  mra::gemm(1, 2, 3, a, b, c);
  EXPECT_DOUBLE_EQ(c[0], 1 * 1 + 2 * 0 + 3 * 1);
  EXPECT_DOUBLE_EQ(c[1], 1 * 0 + 2 * 1 + 3 * 1);
}

TEST(Gemm, AccumulateAddsToC) {
  const double a[1] = {2};
  const double b[1] = {3};
  double c[1] = {10};
  mra::gemm_acc(1, 1, 1, a, b, c);
  EXPECT_DOUBLE_EQ(c[0], 16);
}

TEST(Transform3d, MatchesNaiveContraction) {
  constexpr std::size_t kIn = 3, kOut = 2;
  ttg::TestRng rng(123);
  SCOPED_TRACE(::testing::Message() << "seed=" << rng.seed());
  std::vector<double> t(kIn * kIn * kIn);
  std::vector<double> m(kOut * kIn);
  for (auto& v : t) v = rng.next_double() - 0.5;
  for (auto& v : m) v = rng.next_double() - 0.5;

  std::vector<double> result(kOut * kOut * kOut);
  std::vector<double> work(2 * kIn * kIn * kIn);
  mra::transform3d(t.data(), kIn, m.data(), kOut, result.data(),
                   work.data());

  for (std::size_t i = 0; i < kOut; ++i) {
    for (std::size_t j = 0; j < kOut; ++j) {
      for (std::size_t l = 0; l < kOut; ++l) {
        double expect = 0;
        for (std::size_t p = 0; p < kIn; ++p) {
          for (std::size_t q = 0; q < kIn; ++q) {
            for (std::size_t r = 0; r < kIn; ++r) {
              expect += m[i * kIn + p] * m[j * kIn + q] * m[l * kIn + r] *
                        t[(p * kIn + q) * kIn + r];
            }
          }
        }
        EXPECT_NEAR(result[(i * kOut + j) * kOut + l], expect, 1e-12);
      }
    }
  }
}

TEST(Transform3d, IdentityMatrixIsNoop) {
  constexpr std::size_t k = 4;
  std::vector<double> t(k * k * k);
  ttg::TestRng rng(5);
  SCOPED_TRACE(::testing::Message() << "seed=" << rng.seed());
  for (auto& v : t) v = rng.next_double();
  std::vector<double> eye(k * k, 0.0);
  for (std::size_t i = 0; i < k; ++i) eye[i * k + i] = 1.0;
  std::vector<double> result(k * k * k);
  std::vector<double> work(2 * k * k * k);
  mra::transform3d(t.data(), k, eye.data(), k, result.data(), work.data());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_NEAR(result[i], t[i], 1e-14);
  }
}

// -------------------------------------------------------------- quadrature

TEST(Legendre, RecurrenceMatchesKnownValues) {
  double p[4];
  mra::legendre(0.5, 4, p);
  EXPECT_DOUBLE_EQ(p[0], 1.0);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_NEAR(p[2], 0.5 * (3 * 0.25 - 1), 1e-15);          // P2
  EXPECT_NEAR(p[3], 0.5 * (5 * 0.125 - 3 * 0.5), 1e-15);   // P3
}

TEST(GaussLegendre, IntegratesPolynomialsExactly) {
  // n-point rule is exact through degree 2n-1 on [0,1].
  for (std::size_t n : {2u, 5u, 10u}) {
    const auto q = mra::gauss_legendre(n);
    for (std::size_t deg = 0; deg <= 2 * n - 1; ++deg) {
      double integral = 0;
      for (std::size_t i = 0; i < n; ++i) {
        integral += q.w[i] * std::pow(q.x[i], static_cast<double>(deg));
      }
      EXPECT_NEAR(integral, 1.0 / (deg + 1), 1e-13)
          << "n=" << n << " deg=" << deg;
    }
  }
}

TEST(GaussLegendre, NodesAscendInUnitInterval) {
  const auto q = mra::gauss_legendre(10);
  for (std::size_t i = 0; i < 10; ++i) {
    EXPECT_GT(q.x[i], 0.0);
    EXPECT_LT(q.x[i], 1.0);
    if (i > 0) {
      EXPECT_GT(q.x[i], q.x[i - 1]);
    }
  }
}

TEST(ScalingFunctions, Orthonormal) {
  constexpr std::size_t k = 10;
  const auto q = mra::gauss_legendre(k);
  double gram[k][k] = {};
  double phi[k];
  for (std::size_t qi = 0; qi < k; ++qi) {
    mra::scaling_functions(q.x[qi], k, phi);
    for (std::size_t i = 0; i < k; ++i) {
      for (std::size_t j = 0; j < k; ++j) {
        gram[i][j] += q.w[qi] * phi[i] * phi[j];
      }
    }
  }
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(gram[i][j], i == j ? 1.0 : 0.0, 1e-12);
    }
  }
}

// --------------------------------------------------------------- two-scale

class TwoScaleTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TwoScaleTest, RowsOfHAreOrthonormal) {
  const std::size_t k = GetParam();
  const auto& ts = mra::two_scale(k);
  // H H^T = I_k.
  std::vector<double> prod(k * k);
  mra::gemm(k, k, 2 * k, ts.h.data(), ts.ht.data(), prod.data());
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      EXPECT_NEAR(prod[i * k + j], i == j ? 1.0 : 0.0, 1e-12)
          << "k=" << k;
    }
  }
}

TEST_P(TwoScaleTest, FilterReproducesParentScaleFunctions) {
  // A function exactly representable at the parent scale must survive a
  // filter(unfilter(s)) round trip unchanged.
  const std::size_t k = GetParam();
  ttg::TestRng rng(77);
  SCOPED_TRACE(::testing::Message() << "seed=" << rng.seed());
  std::vector<double> parent(k * k * k);
  for (auto& v : parent) v = rng.next_double() - 0.5;
  const auto child = mra::detail::unfilter(k, parent);
  const auto back = mra::detail::filter(k, child);
  for (std::size_t i = 0; i < parent.size(); ++i) {
    EXPECT_NEAR(back[i], parent[i], 1e-11);
  }
}

INSTANTIATE_TEST_SUITE_P(Orders, TwoScaleTest,
                         ::testing::Values(2u, 6u, 10u));

// -------------------------------------------------------------- projection

TEST(Projection, ConstantFunctionHasOnlyDCCoefficient) {
  // A constant is exactly representable: only s[0,0,0] is nonzero and it
  // equals c * 2^(-3n/2) on a level-n box (phi_0 = 1 on [0,1]).
  mra::MraParams params;
  params.k = 5;
  params.lo = 0.0;
  params.hi = 1.0;
  // A "Gaussian" with zero exponent is the constant `coeff`.
  mra::Gaussian g{0.5, 0.5, 0.5, 0.0, 3.0};
  const auto s = mra::detail::project_box(params, g, 2, 1, 2, 3);
  EXPECT_NEAR(s[0], 3.0 * std::pow(2.0, -3.0), 1e-12);
  for (std::size_t i = 1; i < s.size(); ++i) {
    EXPECT_NEAR(s[i], 0.0, 1e-12);
  }
}

TEST(Projection, BoxNormsSumToFunctionNorm) {
  // Partition the root box into 8 children: the sum of squared child
  // coefficient norms must equal the squared L2 norm of the function
  // (for a function smooth enough for the quadrature at this k).
  mra::MraParams params;
  params.k = 12;
  params.lo = -4.0;
  params.hi = 4.0;
  mra::Gaussian g = mra::Gaussian::normalized(0.1, -0.2, 0.3, 1.0);
  double total = 0;
  for (int a = 0; a < 2; ++a) {
    for (int b = 0; b < 2; ++b) {
      for (int c = 0; c < 2; ++c) {
        const auto s = mra::detail::project_box(params, g, 1, a, b, c);
        const double n = mra::norm2(s.data(), s.size());
        total += n * n;
      }
    }
  }
  // ||g||^2 in u-space = ||f||^2 / L^3 with ||f|| = 1.
  const double span = params.hi - params.lo;
  EXPECT_NEAR(total, 1.0 / (span * span * span), 1e-6);
}

TEST(Gaussian, NormalizedHasUnitNorm) {
  const auto g = mra::Gaussian::normalized(0, 0, 0, 2.5);
  // Analytic: integral of coeff^2 exp(-2 a r^2) over R^3.
  const double integral =
      g.coeff * g.coeff * std::pow(M_PI / (2 * g.expnt), 1.5);
  EXPECT_NEAR(integral, 1.0, 1e-12);
}

TEST(Gaussian, RandomCentersInsideDomain) {
  mra::MraParams params;
  const auto gs = mra::random_gaussians(50, 100.0, 42, params);
  EXPECT_EQ(gs.size(), 50u);
  for (const auto& g : gs) {
    EXPECT_GT(g.cx, params.lo);
    EXPECT_LT(g.cx, params.hi);
    EXPECT_GT(g.cy, params.lo);
    EXPECT_LT(g.cy, params.hi);
    EXPECT_GT(g.cz, params.lo);
    EXPECT_LT(g.cz, params.hi);
    EXPECT_DOUBLE_EQ(g.expnt, 100.0);
  }
  // Deterministic per seed.
  const auto gs2 = mra::random_gaussians(50, 100.0, 42, params);
  EXPECT_DOUBLE_EQ(gs[7].cx, gs2[7].cx);
}

}  // namespace
