// Direct coverage for Scheduler::push_chain (sorted-chain invariants
// across the stealing schedulers) and for StealOrder's hierarchical
// victim ordering (domain siblings first, then the ring) — the two
// Sec. IV-C/III-B mechanisms the Context-level tests only exercise
// indirectly.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "sched/scheduler.hpp"

namespace {

struct Node : ttg::LifoNode {
  int id = 0;
};

using ttg::SchedulerType;

/// Links nodes[0..n) into a chain via LifoNode::next (priorities must
/// already be descending, as push_chain requires).
void link_chain(std::vector<Node>& nodes) {
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    nodes[i].next = &nodes[i + 1];
  }
  if (!nodes.empty()) nodes.back().next = nullptr;
}

class ChainSchedulerTest : public ::testing::TestWithParam<SchedulerType> {};

TEST_P(ChainSchedulerTest, ChainIntoEmptySchedulerDeliversEveryTaskOnce) {
  auto sched = ttg::make_scheduler(GetParam(), 2);
  std::vector<Node> nodes(64);
  for (int i = 0; i < 64; ++i) {
    nodes[i].id = i;
    nodes[i].priority = 64 - i;  // strictly descending
  }
  link_chain(nodes);
  sched->push_chain(0, &nodes[0]);

  std::set<int> seen;
  for (int w : {0, 1, 0}) {
    while (ttg::LifoNode* p = sched->pop(w)) {
      EXPECT_TRUE(seen.insert(static_cast<Node*>(p)->id).second)
          << "task popped twice";
    }
  }
  EXPECT_EQ(seen.size(), 64u);
}

TEST_P(ChainSchedulerTest, SingleElementChainBehavesLikePush) {
  auto sched = ttg::make_scheduler(GetParam(), 1);
  Node only;
  only.id = 7;
  only.priority = 3;
  only.next = nullptr;
  sched->push_chain(0, &only);
  ASSERT_EQ(static_cast<Node*>(sched->pop(0)), &only);
  EXPECT_EQ(sched->pop(0), nullptr);
}

TEST_P(ChainSchedulerTest, ExternalChainReachesWorkers) {
  auto sched = ttg::make_scheduler(GetParam(), 2);
  std::vector<Node> nodes(16);
  for (int i = 0; i < 16; ++i) {
    nodes[i].id = i;
    nodes[i].priority = 16 - i;
  }
  link_chain(nodes);
  sched->push_chain(ttg::kExternalWorker, &nodes[0]);
  int count = 0;
  while (sched->pop(0) != nullptr || sched->pop(1) != nullptr) ++count;
  EXPECT_EQ(count, 16);
}

TEST_P(ChainSchedulerTest, ChainSurvivesConcurrentStealing) {
  // One producer repeatedly pushes sorted chains into its own queue
  // while a thief drains from the other side: nothing may be lost or
  // duplicated, chains included.
  auto sched = ttg::make_scheduler(GetParam(), 2);
  constexpr int kChains = 200;
  constexpr int kChainLen = 8;
  std::vector<Node> nodes(kChains * kChainLen);
  std::vector<std::atomic<int>> seen(nodes.size());
  for (auto& s : seen) s.store(0);
  std::atomic<int> popped{0};

  std::thread producer([&] {
    for (int c = 0; c < kChains; ++c) {
      Node* head = &nodes[static_cast<std::size_t>(c) * kChainLen];
      for (int i = 0; i < kChainLen; ++i) {
        Node& n = head[i];
        n.id = c * kChainLen + i;
        n.priority = kChainLen - i;
        n.next = (i + 1 < kChainLen) ? &head[i + 1] : nullptr;
      }
      sched->push_chain(0, head);
      if (c % 4 == 0) {
        if (ttg::LifoNode* p = sched->pop(0)) {
          seen[static_cast<Node*>(p)->id].fetch_add(1);
          popped.fetch_add(1);
        }
      }
    }
  });
  std::thread thief([&] {
    for (int spins = 0; spins < 4'000'000 &&
                        popped.load() < static_cast<int>(nodes.size());
         ++spins) {
      if (ttg::LifoNode* p = sched->pop(1)) {
        seen[static_cast<Node*>(p)->id].fetch_add(1);
        popped.fetch_add(1);
      }
    }
  });
  producer.join();
  thief.join();
  for (int w : {0, 1}) {
    while (ttg::LifoNode* p = sched->pop(w)) {
      seen[static_cast<Node*>(p)->id].fetch_add(1);
      popped.fetch_add(1);
    }
  }
  EXPECT_EQ(popped.load(), static_cast<int>(nodes.size()));
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(StealingSchedulers, ChainSchedulerTest,
                         ::testing::Values(SchedulerType::kLFQ,
                                           SchedulerType::kLL,
                                           SchedulerType::kLLP),
                         [](const auto& info) {
                           return std::string(ttg::to_string(info.param));
                         });

// LLP merges sorted chains into a sorted queue; the result must pop in
// globally descending priority order regardless of interleaving.
TEST(LlpChain, MergedChainsPopInDescendingOrder) {
  auto sched = ttg::make_scheduler(SchedulerType::kLLP, 1);

  // Existing queue: priorities 11, 7, 3 (pushed ascending → LLP sorts).
  std::vector<Node> existing(3);
  const int prios[3] = {3, 7, 11};
  for (int i = 0; i < 3; ++i) {
    existing[i].priority = prios[i];
    sched->push(0, &existing[i]);
  }
  // Two chains straddling the existing priorities.
  std::vector<Node> chain_a(3), chain_b(3);
  const int pa[3] = {12, 8, 2};
  const int pb[3] = {10, 6, 1};
  for (int i = 0; i < 3; ++i) {
    chain_a[i].priority = pa[i];
    chain_b[i].priority = pb[i];
  }
  link_chain(chain_a);
  link_chain(chain_b);
  sched->push_chain(0, &chain_a[0]);
  sched->push_chain(0, &chain_b[0]);

  int last = 1 << 30;
  int count = 0;
  while (ttg::LifoNode* p = sched->pop(0)) {
    EXPECT_LE(p->priority, last) << "pop order not descending";
    last = p->priority;
    ++count;
  }
  EXPECT_EQ(count, 9);
}

TEST(LlpChain, ChainOntoEmptyQueuePreservesChainOrder) {
  auto sched = ttg::make_scheduler(SchedulerType::kLLP, 1);
  std::vector<Node> chain(5);
  for (int i = 0; i < 5; ++i) {
    chain[i].id = i;
    chain[i].priority = 50 - i;
  }
  link_chain(chain);
  sched->push_chain(0, &chain[0]);
  for (int i = 0; i < 5; ++i) {
    Node* n = static_cast<Node*>(sched->pop(0));
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->id, i);
  }
}

TEST(LlpChain, ChainTiesBeatOlderTasks) {
  // Chain elements win priority ties against queued tasks: they are
  // newer and their data is hotter (same rule as the push fast path).
  auto sched = ttg::make_scheduler(SchedulerType::kLLP, 1);
  Node old_task;
  old_task.id = 1;
  old_task.priority = 5;
  sched->push(0, &old_task);
  std::vector<Node> chain(1);
  chain[0].id = 2;
  chain[0].priority = 5;
  link_chain(chain);
  sched->push_chain(0, &chain[0]);
  EXPECT_EQ(static_cast<Node*>(sched->pop(0))->id, 2);
  EXPECT_EQ(static_cast<Node*>(sched->pop(0))->id, 1);
}

// ------------------------------------------------------------- steal order

/// Property check: victims(w) must list all domain siblings (ring-wise
/// from w within the domain) before any outside worker, then the rest
/// of the node ring-wise, visiting every other worker exactly once.
void check_hierarchical_order(int num_workers, int domain_size) {
  ttg::StealOrder order(num_workers, domain_size);
  const int d = domain_size > 1 ? domain_size : num_workers;
  for (int w = 0; w < num_workers; ++w) {
    const auto& victims = order.victims(w);
    ASSERT_EQ(victims.size(), static_cast<std::size_t>(num_workers - 1))
        << "worker " << w;
    const int dom_begin = (w / d) * d;
    const int dom_end = std::min(dom_begin + d, num_workers);
    const int siblings = dom_end - dom_begin - 1;
    // Prefix: exactly the domain siblings, ring-wise from w.
    for (int i = 0; i < siblings; ++i) {
      const int expect =
          dom_begin + (w - dom_begin + 1 + i) % (dom_end - dom_begin);
      EXPECT_EQ(victims[static_cast<std::size_t>(i)], expect)
          << "worker " << w << " sibling slot " << i;
    }
    // Suffix: every non-domain worker, ring order, no domain members.
    std::vector<int> suffix(victims.begin() + siblings, victims.end());
    for (std::size_t i = 0; i + 1 < suffix.size(); ++i) {
      const int a = (suffix[i] - w + num_workers) % num_workers;
      const int b = (suffix[i + 1] - w + num_workers) % num_workers;
      EXPECT_LT(a, b) << "worker " << w << ": ring order broken";
    }
    for (int v : suffix) {
      EXPECT_TRUE(v < dom_begin || v >= dom_end)
          << "worker " << w << ": domain member " << v << " after suffix";
    }
    // Permutation: every other worker appears exactly once.
    std::vector<int> all(victims);
    std::sort(all.begin(), all.end());
    std::vector<int> expect_all;
    for (int v = 0; v < num_workers; ++v) {
      if (v != w) expect_all.push_back(v);
    }
    EXPECT_EQ(all, expect_all) << "worker " << w;
  }
}

TEST(StealOrderHierarchy, DomainsOfFourOnEight) {
  check_hierarchical_order(8, 4);
}

TEST(StealOrderHierarchy, DomainsOfTwoOnSix) {
  check_hierarchical_order(6, 2);
}

TEST(StealOrderHierarchy, UnevenTailDomain) {
  check_hierarchical_order(10, 4);  // domains {0..3} {4..7} {8,9}
}

TEST(StealOrderHierarchy, FlatWhenDomainDisabled) {
  for (int d : {0, 1}) {
    ttg::StealOrder order(5, d);
    for (int w = 0; w < 5; ++w) {
      std::vector<int> expect;
      for (int i = 1; i < 5; ++i) expect.push_back((w + i) % 5);
      EXPECT_EQ(order.victims(w), expect) << "domain " << d;
    }
  }
}

TEST(StealOrderHierarchy, DomainLargerThanPoolIsFlat) {
  ttg::StealOrder order(3, 16);
  EXPECT_EQ(order.victims(0), (std::vector<int>{1, 2}));
  EXPECT_EQ(order.victims(2), (std::vector<int>{0, 1}));
}

TEST(StealOrderHierarchy, SingleWorkerHasNoVictims) {
  ttg::StealOrder order(1, 4);
  EXPECT_TRUE(order.victims(0).empty());
}

}  // namespace
