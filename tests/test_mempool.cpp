#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "structures/mempool.hpp"

namespace {

TEST(MemoryPool, AllocateReturnsDistinctAlignedStorage) {
  ttg::MemoryPool pool(64);
  std::set<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = pool.allocate();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u);
    EXPECT_TRUE(ptrs.insert(p).second) << "duplicate allocation";
  }
  for (void* p : ptrs) pool.deallocate(p);
}

TEST(MemoryPool, RecyclesFreedObjects) {
  ttg::MemoryPool pool(32);
  void* a = pool.allocate();
  pool.deallocate(a);
  void* b = pool.allocate();
  EXPECT_EQ(a, b);  // LIFO free list returns the hot object
  pool.deallocate(b);
}

TEST(MemoryPool, ObjectSizeRoundedToFitFreeListNode) {
  ttg::MemoryPool pool(1);
  EXPECT_GE(pool.object_size(), sizeof(ttg::LifoNode));
  void* p = pool.allocate();
  std::memset(p, 0xab, pool.object_size());  // fully writable
  pool.deallocate(p);
}

TEST(MemoryPool, RemoteFreeReturnsToOwner) {
  ttg::MemoryPool pool(64);
  const int my_domain = ttg::this_thread::domain();
  void* p = pool.allocate();
  std::thread other([&] {
    // Same memory domain: the free must take the direct owner-freelist
    // path regardless of the NUMA return machinery.
    ttg::this_thread::set_domain(my_domain);
    pool.deallocate(p);
  });
  other.join();
  // The object went back to *this* thread's pool (we allocated it), so
  // we get it again immediately.
  void* q = pool.allocate();
  EXPECT_EQ(p, q);
  pool.deallocate(q);
}

/// RAII domain pin for the NUMA-path tests: restores the calling
/// thread's default placement on scope exit.
struct DomainPin {
  explicit DomainPin(int d) { ttg::this_thread::set_domain(d); }
  ~DomainPin() { ttg::this_thread::set_domain(-1); }
};

TEST(MemoryPool, CrossDomainFreeLandsInOutboxUntilThreshold) {
  ttg::MemoryPool pool(64);
  DomainPin pin(0);
  const auto before = pool.stats();
  // Carve well below kRemoteFlushThreshold objects in domain 0.
  constexpr int kObjs = 8;
  static_assert(kObjs < ttg::MemoryPool::kRemoteFlushThreshold);
  std::vector<void*> objs;
  for (int i = 0; i < kObjs; ++i) objs.push_back(pool.allocate());
  std::thread remote([&] {
    ttg::this_thread::set_domain(1);
    for (void* p : objs) pool.deallocate(p);
    // Below the threshold: everything still sits in the outbox.
    const auto mid = pool.stats();
    EXPECT_EQ(mid.remote_returns - before.remote_returns, kObjs);
    EXPECT_EQ(mid.remote_flush_batches, before.remote_flush_batches);
    pool.flush_remote_frees();  // epoch-boundary flush
  });
  remote.join();
  const auto after = pool.stats();
  EXPECT_EQ(after.remote_flush_batches - before.remote_flush_batches, 1u);
  // Domain 0 drains its inbox once local lists run dry.
  std::set<void*> recycled;
  for (int i = 0; i < kObjs; ++i) recycled.insert(pool.allocate());
  for (void* p : objs) EXPECT_TRUE(recycled.count(p) == 1);
  for (void* p : recycled) pool.deallocate(p);
}

TEST(MemoryPool, OutboxFlushesAtThreshold) {
  ttg::MemoryPool pool(64);
  DomainPin pin(0);
  const auto before = pool.stats();
  const int kObjs = static_cast<int>(ttg::MemoryPool::kRemoteFlushThreshold);
  std::vector<void*> objs;
  for (int i = 0; i < kObjs; ++i) objs.push_back(pool.allocate());
  std::thread remote([&] {
    ttg::this_thread::set_domain(1);
    for (void* p : objs) pool.deallocate(p);
  });
  remote.join();
  // Exactly at the threshold: one batch pushed home without any
  // explicit flush call.
  const auto after = pool.stats();
  EXPECT_EQ(after.remote_returns - before.remote_returns,
            static_cast<std::uint64_t>(kObjs));
  EXPECT_EQ(after.remote_flush_batches - before.remote_flush_batches, 1u);
  std::set<void*> recycled;
  for (int i = 0; i < kObjs; ++i) recycled.insert(pool.allocate());
  for (void* p : objs) EXPECT_TRUE(recycled.count(p) == 1);
  for (void* p : recycled) pool.deallocate(p);
}

TEST(MemoryPool, NumaDisabledFreesGoStraightToOwner) {
  ttg::MemoryPool pool(64);
  DomainPin pin(0);
  ttg::MemoryPool::set_numa_enabled(false);
  const auto before = pool.stats();
  void* p = pool.allocate();
  std::thread remote([&] {
    ttg::this_thread::set_domain(1);
    pool.deallocate(p);
  });
  remote.join();
  ttg::MemoryPool::set_numa_enabled(true);
  const auto after = pool.stats();
  EXPECT_EQ(after.remote_returns, before.remote_returns);
  // Direct owner-freelist push: we get the object right back.
  void* q = pool.allocate();
  EXPECT_EQ(p, q);
  pool.deallocate(q);
}

TEST(MemoryPool, PrivateCacheModeDrainsDomainInboxAsChain) {
  ttg::MemoryPool pool(64, /*objects_per_chunk=*/64,
                       ttg::MemoryPool::Mode::kPrivateCache);
  DomainPin pin(0);
  constexpr int kObjs = 4;
  std::vector<void*> objs;
  for (int i = 0; i < kObjs; ++i) objs.push_back(pool.allocate());
  std::thread remote([&] {
    ttg::this_thread::set_domain(1);
    for (void* p : objs) pool.deallocate(p);
    pool.flush_remote_frees();
  });
  remote.join();
  // kPrivateCache detaches the whole inbox chain into the private list:
  // all objects come back without further atomics.
  std::set<void*> recycled;
  for (int i = 0; i < kObjs; ++i) recycled.insert(pool.allocate());
  for (void* p : objs) EXPECT_TRUE(recycled.count(p) == 1);
  for (void* p : recycled) pool.deallocate(p);
}

TEST(MemoryPool, FlushRemoteFreesIsANoOpWithoutOutboxes) {
  ttg::MemoryPool pool(64);
  const auto before = pool.stats();
  pool.flush_remote_frees();  // this thread never freed cross-domain
  const auto after = pool.stats();
  EXPECT_EQ(after.remote_flush_batches, before.remote_flush_batches);
}

TEST(MemoryPool, ManyObjectsAcrossChunks) {
  ttg::MemoryPool pool(128, /*objects_per_chunk=*/8);
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; ++i) ptrs.push_back(pool.allocate());
  std::set<void*> unique(ptrs.begin(), ptrs.end());
  EXPECT_EQ(unique.size(), ptrs.size());
  for (void* p : ptrs) pool.deallocate(p);
}

class MemPoolStressTest : public ::testing::TestWithParam<int> {};

TEST_P(MemPoolStressTest, ProducerConsumerChurn) {
  // Allocation on one thread, deallocation on another: the paper's
  // free-list design returns objects to the allocating thread's pool.
  const int nthreads = GetParam();
  ttg::MemoryPool pool(96);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&] {
      std::vector<void*> live;
      for (int i = 0; i < 20000; ++i) {
        void* p = pool.allocate();
        if (p == nullptr) {
          errors.fetch_add(1);
          continue;
        }
        // Touch the object to catch overlapping allocations under ASan.
        std::memset(p, i & 0xff, 96);
        live.push_back(p);
        if (live.size() > 32) {
          pool.deallocate(live.front());
          live.erase(live.begin());
        }
      }
      for (void* p : live) pool.deallocate(p);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Threads, MemPoolStressTest,
                         ::testing::Values(1, 2, 4));

}  // namespace
