#include <gtest/gtest.h>

#include <cstring>
#include <set>
#include <thread>
#include <vector>

#include "structures/mempool.hpp"

namespace {

TEST(MemoryPool, AllocateReturnsDistinctAlignedStorage) {
  ttg::MemoryPool pool(64);
  std::set<void*> ptrs;
  for (int i = 0; i < 100; ++i) {
    void* p = pool.allocate();
    ASSERT_NE(p, nullptr);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) %
                  alignof(std::max_align_t),
              0u);
    EXPECT_TRUE(ptrs.insert(p).second) << "duplicate allocation";
  }
  for (void* p : ptrs) pool.deallocate(p);
}

TEST(MemoryPool, RecyclesFreedObjects) {
  ttg::MemoryPool pool(32);
  void* a = pool.allocate();
  pool.deallocate(a);
  void* b = pool.allocate();
  EXPECT_EQ(a, b);  // LIFO free list returns the hot object
  pool.deallocate(b);
}

TEST(MemoryPool, ObjectSizeRoundedToFitFreeListNode) {
  ttg::MemoryPool pool(1);
  EXPECT_GE(pool.object_size(), sizeof(ttg::LifoNode));
  void* p = pool.allocate();
  std::memset(p, 0xab, pool.object_size());  // fully writable
  pool.deallocate(p);
}

TEST(MemoryPool, RemoteFreeReturnsToOwner) {
  ttg::MemoryPool pool(64);
  void* p = pool.allocate();
  std::thread other([&] { pool.deallocate(p); });
  other.join();
  // The object went back to *this* thread's pool (we allocated it), so
  // we get it again immediately.
  void* q = pool.allocate();
  EXPECT_EQ(p, q);
  pool.deallocate(q);
}

TEST(MemoryPool, ManyObjectsAcrossChunks) {
  ttg::MemoryPool pool(128, /*objects_per_chunk=*/8);
  std::vector<void*> ptrs;
  for (int i = 0; i < 1000; ++i) ptrs.push_back(pool.allocate());
  std::set<void*> unique(ptrs.begin(), ptrs.end());
  EXPECT_EQ(unique.size(), ptrs.size());
  for (void* p : ptrs) pool.deallocate(p);
}

class MemPoolStressTest : public ::testing::TestWithParam<int> {};

TEST_P(MemPoolStressTest, ProducerConsumerChurn) {
  // Allocation on one thread, deallocation on another: the paper's
  // free-list design returns objects to the allocating thread's pool.
  const int nthreads = GetParam();
  ttg::MemoryPool pool(96);
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&] {
      std::vector<void*> live;
      for (int i = 0; i < 20000; ++i) {
        void* p = pool.allocate();
        if (p == nullptr) {
          errors.fetch_add(1);
          continue;
        }
        // Touch the object to catch overlapping allocations under ASan.
        std::memset(p, i & 0xff, 96);
        live.push_back(p);
        if (live.size() > 32) {
          pool.deallocate(live.front());
          live.erase(live.begin());
        }
      }
      for (void* p : live) pool.deallocate(p);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
}

INSTANTIATE_TEST_SUITE_P(Threads, MemPoolStressTest,
                         ::testing::Values(1, 2, 4));

}  // namespace
