#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 1) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

class MultiRankTest : public ::testing::TestWithParam<int> {};

TEST_P(MultiRankTest, ChainCrossesRanks) {
  const int nranks = GetParam();
  ttg::World world(test_config(), nranks);
  ttg::Edge<int, int> e("chain");
  std::atomic<int> tasks{0};
  std::atomic<long> last{-1};
  constexpr int kLen = 300;
  auto tt = ttg::make_tt<int>(
      [&](const int& k, int& v, auto& outs) {
        tasks.fetch_add(1);
        if (k < kLen) {
          ttg::send<0>(k + 1, v + 1, outs);
        } else {
          last.store(v);
        }
      },
      ttg::edges(e), ttg::edges(e), "step", world);
  world.execute();
  tt->send_input<0>(0, 0);
  world.fence();
  EXPECT_EQ(tasks.load(), kLen + 1);
  EXPECT_EQ(last.load(), kLen);
  if (nranks > 1) {
    EXPECT_GT(world.messages_delivered(), 0u)
        << "default keymap must spread keys across ranks";
  }
}

TEST_P(MultiRankTest, ResultsMatchSingleRank) {
  // The same stencil-flavored reduction must produce identical results
  // regardless of rank count: distribution is semantics-free.
  const int nranks = GetParam();
  auto run = [](int ranks) -> long {
    ttg::World world(test_config(), ranks);
    ttg::Edge<std::pair<int, int>, long> a("a"), b("b");
    std::atomic<long> sink{0};
    auto tt = ttg::make_tt<std::pair<int, int>>(
        [&](const std::pair<int, int>& key, long& x, long& y, auto& outs) {
          const long v = x + 2 * y + key.second;
          if (key.first < 6) {
            for (int j = 0; j < 2; ++j) {
              const std::pair<int, int> next{key.first + 1, j};
              ttg::send<0>(next, v + j, outs);
              ttg::send<1>(next, v - j, outs);
            }
          } else {
            sink.fetch_add(v);
          }
        },
        ttg::edges(a, b), ttg::edges(a, b), "grid", world);
    world.execute();
    for (int j = 0; j < 2; ++j) {
      tt->send_input<0>(std::pair<int, int>{0, j}, long{j});
      tt->send_input<1>(std::pair<int, int>{0, j}, long{2 * j});
    }
    world.fence();
    return sink.load();
  };
  EXPECT_EQ(run(nranks), run(1));
}

INSTANTIATE_TEST_SUITE_P(Ranks, MultiRankTest, ::testing::Values(1, 2, 4));

TEST(MultiRank, CustomKeymapPinsWork) {
  ttg::World world(test_config(), 3);
  ttg::Edge<int, ttg::Void> in("in");
  std::atomic<int> wrong_rank{0};
  std::atomic<int> fired{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto&) {
        fired.fetch_add(1);
        ttg::Worker* w = ttg::Context::current_worker();
        if (w == nullptr || w->rank() != k % 3) wrong_rank.fetch_add(1);
      },
      ttg::edges(in), ttg::edges(), "pin", world);
  tt->set_keymap([](const int& k) { return k % 3; });
  world.execute();
  for (int k = 0; k < 30; ++k) tt->sendk_input<0>(k);
  world.fence();
  EXPECT_EQ(fired.load(), 30);
  EXPECT_EQ(wrong_rank.load(), 0)
      << "tasks must execute on their keymap-assigned rank";
}

TEST(MultiRank, AllLocalKeymapSendsNoMessages) {
  ttg::World world(test_config(), 2);
  ttg::Edge<int, int> e("e");
  std::atomic<int> tasks{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, int& v, auto& outs) {
        tasks.fetch_add(1);
        if (k < 50) ttg::send<0>(k + 1, std::move(v), outs);
      },
      ttg::edges(e), ttg::edges(e), "local", world);
  tt->set_keymap([](const int&) { return 0; });
  world.execute();
  tt->send_input<0>(0, 1);
  world.fence();
  EXPECT_EQ(tasks.load(), 51);
  EXPECT_EQ(world.messages_delivered(), 0u);
}

TEST(MultiRank, JoinAcrossRanks) {
  // Inputs produced on different ranks join at the key's owner.
  ttg::World world(test_config(), 2);
  ttg::Edge<int, int> a("a"), b("b");
  std::atomic<long> sum{0};
  auto join = ttg::make_tt<int>(
      [&](const int&, int& x, int& y, auto&) { sum.fetch_add(x + y); },
      ttg::edges(a, b), ttg::edges(), "join", world);
  join->set_keymap([](const int& k) { return k % 2; });

  ttg::Edge<int, ttg::Void> go("go");
  auto src = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto& outs) {
        // Producer k feeds joins k and k+1 (wrapping), crossing ranks.
        ttg::send<0>(k, 10 * k, outs);
        ttg::send<1>((k + 1) % 16, k, outs);
      },
      ttg::edges(go), ttg::edges(a, b), "src", world);
  src->set_keymap([](const int& k) { return (k / 8) % 2; });

  world.execute();
  for (int k = 0; k < 16; ++k) src->sendk_input<0>(k);
  world.fence();
  long expect = 0;
  for (int k = 0; k < 16; ++k) expect += 10 * k + (k + 15) % 16;
  EXPECT_EQ(sum.load(), expect);
}

TEST(MultiRank, EpochsWork) {
  ttg::World world(test_config(), 2);
  ttg::Edge<int, ttg::Void> in("in");
  std::atomic<int> n{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) { n.fetch_add(1); },
      ttg::edges(in), ttg::edges(), "leaf", world);
  for (int epoch = 0; epoch < 3; ++epoch) {
    world.execute();
    for (int k = 0; k < 20; ++k) tt->sendk_input<0>(epoch * 100 + k);
    world.fence();
    EXPECT_EQ(n.load(), (epoch + 1) * 20);
  }
}

}  // namespace
