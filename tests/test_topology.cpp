// Topology discovery (src/common/topology.*): sysfs parsing on canned
// fixture trees, the flat fallback, and domain-id stability.
#include <gtest/gtest.h>

#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/topology.hpp"

namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------ parse_cpulist

TEST(ParseCpulist, SingleCpu) {
  EXPECT_EQ(ttg::parse_cpulist("0"), (std::vector<int>{0}));
  EXPECT_EQ(ttg::parse_cpulist("7"), (std::vector<int>{7}));
}

TEST(ParseCpulist, Range) {
  EXPECT_EQ(ttg::parse_cpulist("0-3"), (std::vector<int>{0, 1, 2, 3}));
}

TEST(ParseCpulist, MixedRangesAndSingles) {
  EXPECT_EQ(ttg::parse_cpulist("0-2,8,10-11"),
            (std::vector<int>{0, 1, 2, 8, 10, 11}));
}

TEST(ParseCpulist, TrailingNewlineAndSpaces) {
  EXPECT_EQ(ttg::parse_cpulist("0-1, 4\n"), (std::vector<int>{0, 1, 4}));
}

TEST(ParseCpulist, EmptyAndGarbage) {
  EXPECT_TRUE(ttg::parse_cpulist("").empty());
  EXPECT_TRUE(ttg::parse_cpulist("\n").empty());
  EXPECT_TRUE(ttg::parse_cpulist("abc").empty());
}

TEST(ParseCpulist, MalformedHugeRangeIsClamped) {
  // "0-4294967295" must not blow memory; the parser caps cpu ids.
  const auto cpus = ttg::parse_cpulist("0-4294967295");
  EXPECT_FALSE(cpus.empty());
  EXPECT_LE(cpus.size(), 4096u);
}

// ------------------------------------------------------- fixture sysfs trees

/// Builds a throwaway sysfs-style tree under the system temp directory.
class FixtureTree {
 public:
  FixtureTree() {
    // Per-process uniqueness matters: ctest runs each TEST in its own
    // process with the static counter back at zero, and -j parallelism
    // would otherwise collide concurrent tests on the same directory.
    root_ = fs::temp_directory_path() /
            ("ttg_topo_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    fs::create_directories(root_);
  }
  ~FixtureTree() {
    std::error_code ec;
    fs::remove_all(root_, ec);
  }

  void add_node(int id, const std::string& cpulist) {
    const fs::path dir = root_ / "node" / ("node" + std::to_string(id));
    fs::create_directories(dir);
    std::ofstream(dir / "cpulist") << cpulist << "\n";
  }

  void set_online(const std::string& cpulist) {
    fs::create_directories(root_ / "cpu");
    std::ofstream(root_ / "cpu" / "online") << cpulist << "\n";
  }

  std::string path() const { return root_.string(); }

 private:
  static inline int counter_ = 0;
  fs::path root_;
};

TEST(Topology, TwoNodeTree) {
  FixtureTree tree;
  tree.add_node(0, "0-3");
  tree.add_node(1, "4-7");
  tree.set_online("0-7");
  const ttg::Topology topo = ttg::discover_topology(tree.path());
  EXPECT_TRUE(topo.from_sysfs);
  EXPECT_EQ(topo.num_domains, 2);
  EXPECT_EQ(topo.num_cpus, 8);
  ASSERT_EQ(topo.cpu_to_domain.size(), 8u);
  for (int c = 0; c < 4; ++c) EXPECT_EQ(topo.cpu_to_domain[c], 0);
  for (int c = 4; c < 8; ++c) EXPECT_EQ(topo.cpu_to_domain[c], 1);
  EXPECT_EQ(topo.domain_cpu_count, (std::vector<int>{4, 4}));
}

TEST(Topology, MissingTreeFallsBackFlat) {
  const ttg::Topology topo =
      ttg::discover_topology("/nonexistent/ttg/sysfs/root");
  EXPECT_FALSE(topo.from_sysfs);
  EXPECT_EQ(topo.num_domains, 1);
  EXPECT_GE(topo.num_cpus, 1);
}

TEST(Topology, SinglePopulatedNodeIsFlat) {
  FixtureTree tree;
  tree.add_node(0, "0-15");
  const ttg::Topology topo = ttg::discover_topology(tree.path());
  EXPECT_EQ(topo.num_domains, 1);
  EXPECT_EQ(topo.num_cpus, 16);
}

TEST(Topology, MemoryOnlyNodesAreSkipped) {
  // CXL-style memory-only node: present but no CPUs. It must not get a
  // compute domain id.
  FixtureTree tree;
  tree.add_node(0, "0-1");
  tree.add_node(1, "2-3");
  tree.add_node(2, "");  // memory-only
  const ttg::Topology topo = ttg::discover_topology(tree.path());
  EXPECT_EQ(topo.num_domains, 2);
}

TEST(Topology, DomainIdsAreStableUnderNumericNodeOrder) {
  // node10 must not sort between node1 and node2: dense domain ids
  // follow the numeric node id, not directory-iteration order.
  FixtureTree tree;
  tree.add_node(10, "20-21");
  tree.add_node(2, "4-5");
  tree.add_node(1, "2-3");
  tree.add_node(0, "0-1");
  const ttg::Topology topo = ttg::discover_topology(tree.path());
  ASSERT_EQ(topo.num_domains, 4);
  EXPECT_EQ(topo.cpu_to_domain[0], 0);
  EXPECT_EQ(topo.cpu_to_domain[2], 1);
  EXPECT_EQ(topo.cpu_to_domain[4], 2);
  EXPECT_EQ(topo.cpu_to_domain[20], 3);  // node10 gets the LAST dense id
}

TEST(Topology, ManyDomains) {
  // >8 domains: the shard/domain maps must not ring-fold below the
  // discovered count (the old IngressShards kMaxShards=8 regression).
  FixtureTree tree;
  for (int n = 0; n < 16; ++n) {
    tree.add_node(n, std::to_string(2 * n) + "-" + std::to_string(2 * n + 1));
  }
  const ttg::Topology topo = ttg::discover_topology(tree.path());
  EXPECT_EQ(topo.num_domains, 16);
  EXPECT_EQ(topo.num_cpus, 32);
  for (int c = 0; c < 32; ++c) EXPECT_EQ(topo.cpu_to_domain[c], c / 2);
}

// ----------------------------------------------------- worker/domain helpers

TEST(Topology, WorkerDomainFlat) {
  // domain_size <= 1: workers fold directly over the domains.
  EXPECT_EQ(ttg::worker_domain(0, 0), 0);
  EXPECT_EQ(ttg::worker_domain(5, 1) % ttg::memory_domains(),
            ttg::worker_domain(5, 1));
}

TEST(Topology, WorkerDomainGrouped) {
  const int domains = ttg::memory_domains();
  // Workers 0..domain_size-1 share domain 0's id, the next group gets
  // the next domain (mod the discovered count).
  EXPECT_EQ(ttg::worker_domain(0, 4), 0);
  EXPECT_EQ(ttg::worker_domain(3, 4), 0);
  EXPECT_EQ(ttg::worker_domain(4, 4), 1 % domains);
  EXPECT_EQ(ttg::worker_domain(7, 4), 1 % domains);
}

TEST(Topology, ThisThreadDomainDefaultsAndPins) {
  // Default is derived from the dense thread id and is stable.
  const int d0 = ttg::this_thread::domain();
  EXPECT_EQ(ttg::this_thread::domain(), d0);
  EXPECT_GE(d0, 0);
  EXPECT_LT(d0, ttg::kMaxMemoryDomains);

  ttg::this_thread::set_domain(3);
  EXPECT_EQ(ttg::this_thread::domain(), 3);
  ttg::this_thread::set_domain(ttg::kMaxMemoryDomains + 2);  // folds
  EXPECT_EQ(ttg::this_thread::domain(), 2);
  ttg::this_thread::set_domain(-1);  // reset to default
  EXPECT_EQ(ttg::this_thread::domain(), d0);
}

TEST(Topology, DefaultStealDomainSizeMatchesDomains) {
  const int domains = ttg::memory_domains();
  const int size = ttg::default_steal_domain_size(16);
  if (domains <= 1) {
    EXPECT_EQ(size, 0);  // flat: pre-topology behavior preserved
  } else {
    EXPECT_EQ(size, (16 + domains - 1) / domains);
  }
}

TEST(Topology, ProcessTopologySingletonIsConsistent) {
  const ttg::Topology& topo = ttg::topology();
  EXPECT_GE(topo.num_cpus, 1);
  EXPECT_GE(topo.num_domains, 1);
  EXPECT_EQ(topo.cpu_to_domain.size(),
            static_cast<std::size_t>(topo.num_cpus));
  EXPECT_EQ(topo.domain_cpu_count.size(),
            static_cast<std::size_t>(topo.num_domains));
  EXPECT_EQ(ttg::memory_domains(),
            std::min(topo.num_domains, ttg::kMaxMemoryDomains));
}

}  // namespace
