// Unit tests for the adaptive idle ladder (runtime/engine.hpp):
// spin -> yield -> park staging, the doubling/halving spin budget with
// its [kMinSpinBudget, kMaxSpinBudget] clamp, the exponential
// cpu_relax() ramp, and the every-4th-round yield cadence that keeps
// oversubscribed runs live.
#include "runtime/engine.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace ttg {
namespace {

using Action = IdleBackoff::Action;

TEST(IdleBackoff, LadderStagesSpinThenYieldThenPark) {
  IdleBackoff b;
  ASSERT_EQ(b.spin_budget(), IdleBackoff::kInitialSpinBudget);
  for (int i = 0; i < IdleBackoff::kInitialSpinBudget; ++i) {
    EXPECT_EQ(b.next(), Action::kSpin) << "round " << i;
  }
  for (int i = 0; i < IdleBackoff::kYieldRounds; ++i) {
    EXPECT_EQ(b.next(), Action::kYield) << "yield round " << i;
  }
  EXPECT_EQ(b.next(), Action::kPark);
  EXPECT_EQ(b.next(), Action::kPark) << "park is absorbing until reset";
}

TEST(IdleBackoff, WorkDuringSpinStageDoublesBudgetUpToMax) {
  IdleBackoff b;
  (void)b.next();  // one empty poll, still inside the spin stage
  b.on_work();
  EXPECT_EQ(b.spin_budget(), 2 * IdleBackoff::kInitialSpinBudget);
  (void)b.next();
  b.on_work();
  EXPECT_EQ(b.spin_budget(), IdleBackoff::kMaxSpinBudget);
  (void)b.next();
  b.on_work();
  EXPECT_EQ(b.spin_budget(), IdleBackoff::kMaxSpinBudget)
      << "budget must clamp at kMaxSpinBudget";
}

TEST(IdleBackoff, WorkAfterSpinStageDoesNotDouble) {
  IdleBackoff b;
  // Exhaust the spin stage and enter the yield stage: the spin budget
  // was fully wasted, so finding work now must not reward it.
  for (int i = 0; i < IdleBackoff::kInitialSpinBudget; ++i) (void)b.next();
  ASSERT_EQ(b.next(), Action::kYield);
  b.on_work();
  EXPECT_EQ(b.spin_budget(), IdleBackoff::kInitialSpinBudget);
}

TEST(IdleBackoff, WorkWithoutPollingLeavesBudgetAlone) {
  IdleBackoff b;
  b.on_work();  // found work on the very first probe; no empty round
  EXPECT_EQ(b.spin_budget(), IdleBackoff::kInitialSpinBudget);
}

TEST(IdleBackoff, ParkHalvesBudgetDownToMin) {
  IdleBackoff b;
  b.on_park();
  EXPECT_EQ(b.spin_budget(), IdleBackoff::kInitialSpinBudget / 2);
  b.on_park();
  EXPECT_EQ(b.spin_budget(), IdleBackoff::kMinSpinBudget);
  b.on_park();
  EXPECT_EQ(b.spin_budget(), IdleBackoff::kMinSpinBudget)
      << "budget must clamp at kMinSpinBudget";
}

TEST(IdleBackoff, HalvedBudgetShortensTheSpinStage) {
  IdleBackoff b;
  b.on_park();
  b.on_park();  // budget now kMinSpinBudget
  for (int i = 0; i < IdleBackoff::kMinSpinBudget; ++i) {
    EXPECT_EQ(b.next(), Action::kSpin) << "round " << i;
  }
  EXPECT_EQ(b.next(), Action::kYield);
}

TEST(IdleBackoff, RelaxCountRampsExponentiallyAndCaps) {
  IdleBackoff b;
  std::vector<int> expected = {1, 2, 4, 8, 16, 32, 64, 64, 64};
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(b.next(), Action::kSpin);
    EXPECT_EQ(b.relax_count(), expected[i]) << "spin round " << i;
  }
}

TEST(IdleBackoff, EveryFourthSpinRoundYields) {
  IdleBackoff b;
  int yields = 0;
  for (int i = 0; i < IdleBackoff::kInitialSpinBudget; ++i) {
    ASSERT_EQ(b.next(), Action::kSpin);
    const bool y = b.spin_round_yields();
    EXPECT_EQ(y, (i + 1) % IdleBackoff::kSpinYieldEvery == 0)
        << "spin round " << i;
    if (y) ++yields;
  }
  EXPECT_EQ(yields,
            IdleBackoff::kInitialSpinBudget / IdleBackoff::kSpinYieldEvery);
}

TEST(IdleBackoff, OnWorkRestartsTheLadder) {
  IdleBackoff b;
  for (int i = 0; i < IdleBackoff::kInitialSpinBudget + 2; ++i) (void)b.next();
  b.on_work();
  EXPECT_EQ(b.next(), Action::kSpin) << "ladder restarts from the top";
  EXPECT_EQ(b.relax_count(), 1) << "relax ramp restarts too";
}

}  // namespace
}  // namespace ttg
