// Cross-feature integration: combinations of the runtime's features that
// interact in non-obvious ways (simulated ranks x reducing terminals,
// inlining x bundling x priorities, ablation configs x real graphs).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <vector>

#include "mra/mra.hpp"
#include "taskbench/taskbench.hpp"
#include "ttg/ttg.hpp"

namespace {

TEST(Integration, ReducingTerminalAcrossRanks) {
  // Contributions to a reduction arrive from tasks running on different
  // simulated ranks; the fold happens at the key's owner.
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 1;
  ttg::World world(cfg, 3);

  ttg::Edge<int, long> contribute("contribute");
  ttg::Edge<int, ttg::Void> go("go");
  std::atomic<long> result{0};

  constexpr int kContribs = 30;
  auto sum_tt = ttg::make_tt<int>(
      [&](const int&, long& total, auto&) { result.store(total); },
      ttg::edges(ttg::make_reducing(
          contribute, [](long& a, long&& b) { a += b; }, kContribs)),
      ttg::edges(), "sum", world);
  sum_tt->set_keymap([](const int&) { return 1; });  // owner: rank 1

  auto producer = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto& outs) {
        ttg::send<0>(0, static_cast<long>(k), outs);
      },
      ttg::edges(go), ttg::edges(contribute), "produce", world);
  producer->set_keymap([](const int& k) { return k % 3; });

  world.execute();
  for (int k = 0; k < kContribs; ++k) producer->sendk_input<0>(k);
  world.fence();
  EXPECT_EQ(result.load(), kContribs * (kContribs - 1) / 2);
  EXPECT_GT(world.messages_delivered(), 0u);
}

TEST(Integration, InliningWithMultipleRanks) {
  // Inlining only applies within a rank; cross-rank sends still travel
  // through messages. Results are identical either way.
  auto run = [](int inline_depth) {
    ttg::Config cfg = ttg::Config::optimized();
    cfg.num_threads = 1;
    cfg.inline_max_depth = inline_depth;
    ttg::World world(cfg, 2);
    ttg::Edge<int, long> e("chain");
    std::atomic<long> last{-1};
    auto tt = ttg::make_tt<int>(
        [&](const int& k, long& v, auto& outs) {
          if (k < 100) {
            ttg::send<0>(k + 1, v + k, outs);
          } else {
            last.store(v);
          }
        },
        ttg::edges(e), ttg::edges(e), "step", world);
    world.execute();
    tt->send_input<0>(0, 0L);
    world.fence();
    return last.load();
  };
  EXPECT_EQ(run(0), run(16));
}

TEST(Integration, TaskbenchUnderEveryScheduler) {
  for (auto sched :
       {ttg::SchedulerType::kLFQ, ttg::SchedulerType::kLL,
        ttg::SchedulerType::kLLP, ttg::SchedulerType::kGD,
        ttg::SchedulerType::kAP}) {
    ttg::Config rt = ttg::Config::optimized();
    rt.scheduler = sched;
    rt.num_threads = 2;
    taskbench::BenchConfig cfg;
    cfg.width = 3;
    cfg.steps = 25;
    const auto r = taskbench::run_ttg_with(cfg, 2, rt);
    EXPECT_TRUE(r.checksum_ok) << ttg::to_string(sched);
  }
}

TEST(Integration, TaskbenchWithInliningAndNoBundling) {
  ttg::Config rt = ttg::Config::optimized();
  rt.inline_max_depth = 8;
  rt.bundle_successors = false;
  taskbench::BenchConfig cfg;
  cfg.width = 4;
  cfg.steps = 30;
  const auto r = taskbench::run_ttg_with(cfg, 2, rt);
  EXPECT_TRUE(r.checksum_ok);
}

TEST(Integration, MraUnderAblationConfigs) {
  // The MRA pipeline must produce the identical tree and norms under
  // every ablation point of Fig. 9.
  mra::MraParams params;
  params.k = 5;
  params.thresh = 1e-3;
  const auto gs = mra::random_gaussians(2, 120.0, 21, params);

  std::vector<ttg::Config> configs;
  {
    ttg::Config a = ttg::Config::optimized();
    a.termdet = ttg::TermDetMode::kProcessAtomic;
    a.biased_rwlock = false;
    ttg::Config b = ttg::Config::optimized();
    b.biased_rwlock = false;
    ttg::Config c = ttg::Config::optimized();
    c.inline_max_depth = 8;
    configs = {ttg::Config::original(), a, b, c,
               ttg::Config::optimized()};
  }
  for (auto& cfg : configs) cfg.num_threads = 2;

  const auto reference = mra::run_mra(params, gs, configs.back());
  for (const auto& cfg : configs) {
    const auto r = mra::run_mra(params, gs, cfg);
    EXPECT_EQ(r.leaves, reference.leaves) << cfg.describe();
    for (std::size_t f = 0; f < r.norms.size(); ++f) {
      EXPECT_NEAR(r.norms[f], reference.norms[f], 1e-12)
          << cfg.describe();
    }
  }
}

TEST(Integration, StealDomainsPreserveResults) {
  ttg::Config rt = ttg::Config::optimized();
  rt.num_threads = 4;
  rt.steal_domain_size = 2;
  taskbench::BenchConfig cfg;
  cfg.width = 4;
  cfg.steps = 40;
  const auto r = taskbench::run_ttg_with(cfg, 4, rt);
  EXPECT_TRUE(r.checksum_ok);
}

}  // namespace
