#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "structures/lifo.hpp"

namespace {

struct Node : ttg::LifoNode {
  int id = 0;
};

TEST(AtomicLifo, StartsEmpty) {
  ttg::AtomicLifo lifo;
  EXPECT_TRUE(lifo.empty());
  EXPECT_EQ(lifo.pop(), nullptr);
}

TEST(AtomicLifo, LifoOrder) {
  ttg::AtomicLifo lifo;
  Node nodes[3];
  for (int i = 0; i < 3; ++i) {
    nodes[i].id = i;
    lifo.push(&nodes[i]);
  }
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 2);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 1);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 0);
  EXPECT_TRUE(lifo.empty());
}

TEST(AtomicLifo, PushChain) {
  ttg::AtomicLifo lifo;
  Node nodes[4];
  for (int i = 0; i < 4; ++i) nodes[i].id = i;
  nodes[0].next = &nodes[1];
  nodes[1].next = &nodes[2];
  nodes[2].next = nullptr;
  lifo.push(&nodes[3]);
  lifo.push_chain(&nodes[0], &nodes[2]);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 0);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 1);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 2);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 3);
}

TEST(AtomicLifo, DetachTakesEverything) {
  ttg::AtomicLifo lifo;
  Node nodes[3];
  for (auto& n : nodes) lifo.push(&n);
  ttg::LifoNode* list = lifo.detach();
  EXPECT_TRUE(lifo.empty());
  int count = 0;
  for (ttg::LifoNode* p = list; p != nullptr; p = p->next) ++count;
  EXPECT_EQ(count, 3);
}

TEST(AtomicLifo, AttachRestoresList) {
  ttg::AtomicLifo lifo;
  Node nodes[3];
  for (int i = 0; i < 3; ++i) {
    nodes[i].id = i;
    lifo.push(&nodes[i]);
  }
  ttg::LifoNode* list = lifo.detach();
  lifo.attach(list);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 2);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 1);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 0);
}

// ------------------------------------------------- batched pops (pop_chain)

TEST(AtomicLifo, PopChainTakesPrefixInOrder) {
  ttg::AtomicLifo lifo;
  Node nodes[5];
  for (int i = 0; i < 5; ++i) {
    nodes[i].id = i;
    lifo.push(&nodes[i]);
  }
  std::size_t n = 0;
  ttg::LifoNode* chain = lifo.pop_chain(2, &n);
  EXPECT_EQ(n, 2u);
  ASSERT_NE(chain, nullptr);
  // Head-first order: the two most recently pushed, last node nulled.
  EXPECT_EQ(static_cast<Node*>(chain)->id, 4);
  ttg::LifoNode* second = chain->next;
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(static_cast<Node*>(second)->id, 3);
  EXPECT_EQ(second->next.load(), nullptr);
  // The rest is untouched.
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 2);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 1);
  EXPECT_EQ(static_cast<Node*>(lifo.pop())->id, 0);
  EXPECT_TRUE(lifo.empty());
}

TEST(AtomicLifo, PopChainShortList) {
  ttg::AtomicLifo lifo;
  Node nodes[2];
  for (auto& node : nodes) lifo.push(&node);
  std::size_t n = 0;
  ttg::LifoNode* chain = lifo.pop_chain(8, &n);
  EXPECT_EQ(n, 2u);  // whole list, not more
  ASSERT_NE(chain, nullptr);
  EXPECT_TRUE(lifo.empty());
  EXPECT_EQ(lifo.pop_chain(8, &n), nullptr);
  EXPECT_EQ(n, 0u);
  EXPECT_EQ(lifo.pop_chain(0, &n), nullptr);
}

TEST(AtomicLifo, PopChainBumpsAbaTagOncePushNever) {
  ttg::AtomicLifo lifo;
  Node nodes[4];
  const std::uint64_t t0 = lifo.head_tag();
  for (auto& node : nodes) lifo.push(&node);
  EXPECT_EQ(lifo.head_tag(), t0);  // pushes move the pointer, not the tag
  lifo.pop_chain(3);
  EXPECT_EQ(lifo.head_tag(), t0 + 1);  // one batch, one tag bump
  lifo.pop();
  EXPECT_EQ(lifo.head_tag(), t0 + 2);
}

TEST(AtomicLifo, PopHalfTakesHalfOfVisibleRun) {
  ttg::AtomicLifo lifo;
  Node nodes[10];
  for (auto& node : nodes) lifo.push(&node);
  std::size_t n = 0;
  ttg::LifoNode* chain = lifo.pop_half(8, &n);
  EXPECT_EQ(n, 5u);  // ceil(10/2), under the cap
  std::size_t got = 0;
  for (ttg::LifoNode* p = chain; p != nullptr; p = p->next) ++got;
  EXPECT_EQ(got, n);
  // Victim keeps at least as much as was taken.
  std::size_t left = 0;
  while (lifo.pop() != nullptr) ++left;
  EXPECT_EQ(left, 5u);
}

TEST(AtomicLifo, PopHalfIsCapped) {
  ttg::AtomicLifo lifo;
  Node nodes[40];
  for (auto& node : nodes) lifo.push(&node);
  std::size_t n = 0;
  EXPECT_NE(lifo.pop_half(4, &n), nullptr);
  EXPECT_EQ(n, 4u);  // run >= 2*cap measures as 2*cap; half == cap
  EXPECT_NE(lifo.pop_half(4, &n), nullptr);
  EXPECT_EQ(n, 4u);
  std::size_t left = 0;
  while (lifo.pop() != nullptr) ++left;
  EXPECT_EQ(left, 32u);
}

TEST(AtomicLifo, PopHalfSingleNode) {
  ttg::AtomicLifo lifo;
  Node node;
  lifo.push(&node);
  std::size_t n = 0;
  EXPECT_EQ(lifo.pop_half(8, &n), &node);
  EXPECT_EQ(n, 1u);
  EXPECT_TRUE(lifo.empty());
}

TEST(AtomicLifo, BatchedPopsUnderConcurrentMutation) {
  // The partial-walk race: pop_chain/pop_half walk runs that concurrent
  // pushes and pops mutate. The tagged CAS must discard every stale
  // walk — each node surfaces exactly once, none twice, none lost.
  constexpr int kThreads = 4;
  constexpr int kPerThread = 5000;
  ttg::AtomicLifo lifo;
  std::vector<Node> nodes(static_cast<std::size_t>(kThreads) * kPerThread);
  std::vector<std::atomic<int>> seen(nodes.size());
  for (auto& s : seen) s.store(0);
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto consume_chain = [&](ttg::LifoNode* chain) {
        while (chain != nullptr) {
          ttg::LifoNode* next = chain->next;
          seen[static_cast<Node*>(chain)->id].fetch_add(1);
          popped.fetch_add(1);
          chain = next;
        }
      };
      for (int i = 0; i < kPerThread; ++i) {
        Node& n = nodes[static_cast<std::size_t>(t) * kPerThread + i];
        n.id = t * kPerThread + i;
        lifo.push(&n);
        switch (i % 3) {
          case 0:
            if (ttg::LifoNode* p = lifo.pop(); p != nullptr) {
              seen[static_cast<Node*>(p)->id].fetch_add(1);
              popped.fetch_add(1);
            }
            break;
          case 1:
            consume_chain(lifo.pop_chain(3));
            break;
          default:
            consume_chain(lifo.pop_half(4));
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  while (ttg::LifoNode* p = lifo.pop()) {
    seen[static_cast<Node*>(p)->id].fetch_add(1);
    popped.fetch_add(1);
  }
  EXPECT_EQ(popped.load(), kThreads * kPerThread);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(AtomicLifo, HeadPriorityReflectsHead) {
  ttg::AtomicLifo lifo;
  std::int32_t prio = -1;
  EXPECT_FALSE(lifo.head_priority(prio));
  Node n;
  n.priority = 42;
  lifo.push(&n);
  EXPECT_TRUE(lifo.head_priority(prio));
  EXPECT_EQ(prio, 42);
}

class LifoStressTest : public ::testing::TestWithParam<int> {};

TEST_P(LifoStressTest, ConcurrentPushPopLosesNothing) {
  const int nthreads = GetParam();
  constexpr int kPerThread = 5000;
  ttg::AtomicLifo lifo;
  // Preallocate all nodes; they stay alive for the whole test, honoring
  // the LIFO's node-lifetime rule.
  std::vector<Node> nodes(static_cast<std::size_t>(nthreads) * kPerThread);
  std::atomic<int> popped{0};
  std::vector<std::atomic<int>> seen(nodes.size());
  for (auto& s : seen) s.store(0);

  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        Node& n = nodes[static_cast<std::size_t>(t) * kPerThread + i];
        n.id = t * kPerThread + i;
        lifo.push(&n);
        if (ttg::LifoNode* p = lifo.pop(); p != nullptr) {
          seen[static_cast<Node*>(p)->id].fetch_add(1);
          popped.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  // Drain leftovers.
  while (ttg::LifoNode* p = lifo.pop()) {
    seen[static_cast<Node*>(p)->id].fetch_add(1);
    popped.fetch_add(1);
  }
  EXPECT_EQ(popped.load(), nthreads * kPerThread);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);  // exactly once
}

INSTANTIATE_TEST_SUITE_P(Threads, LifoStressTest,
                         ::testing::Values(1, 2, 4, 8));

TEST(AtomicLifo, DetachUnderConcurrentPops) {
  // The LLP slow path: the owner detaches/reattaches while thieves pop.
  // Every node must still be popped exactly once.
  constexpr int kNodes = 20000;
  ttg::AtomicLifo lifo;
  std::vector<Node> nodes(kNodes);
  std::vector<std::atomic<int>> seen(kNodes);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};
  std::atomic<int> total{0};

  std::thread thief([&] {
    while (!done.load() || !lifo.empty()) {
      if (ttg::LifoNode* p = lifo.pop(); p != nullptr) {
        seen[static_cast<Node*>(p)->id].fetch_add(1);
        total.fetch_add(1);
      }
    }
  });

  for (int i = 0; i < kNodes; ++i) {
    nodes[i].id = i;
    nodes[i].priority = i % 7;
    // Alternate fast pushes with detach/merge/reattach cycles.
    if (i % 3 == 0) {
      ttg::LifoNode* list = lifo.detach();
      nodes[i].next = list;
      lifo.attach(&nodes[i]);
    } else {
      lifo.push(&nodes[i]);
    }
  }
  done.store(true);
  thief.join();
  while (ttg::LifoNode* p = lifo.pop()) {
    seen[static_cast<Node*>(p)->id].fetch_add(1);
    total.fetch_add(1);
  }
  EXPECT_EQ(total.load(), kNodes);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

}  // namespace
