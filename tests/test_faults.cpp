// Fault-tolerant execution (docs/robustness.md): task-failure capture,
// cooperative cancellation, the stall watchdog, and the seeded
// fault-injection layer.
//
// The invariants under test: a throwing task body must never
// std::terminate the process or hang the fence — wait() returns a
// failed/aborted Status, the first error wins and is rethrowable, every
// discovered task is retired (executed or accounted as a cancelled
// completion, so the four-counter wave converges), and no DataCopy
// payload leaks across a failed epoch.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "runtime/fault.hpp"
#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

constexpr ttg::SchedulerType kSchedulers[] = {
    ttg::SchedulerType::kLL, ttg::SchedulerType::kLLP,
    ttg::SchedulerType::kLFQ};

/// Payload with a live-instance count: any copy still held after the
/// epoch settles is a leak (a record or DataCopy that was dropped
/// without releasing its inputs).
struct Tracked {
  static inline std::atomic<int> live{0};
  int v = 0;
  Tracked() { live.fetch_add(1, std::memory_order_relaxed); }
  explicit Tracked(int x) : v(x) { live.fetch_add(1, std::memory_order_relaxed); }
  Tracked(const Tracked& o) : v(o.v) { live.fetch_add(1, std::memory_order_relaxed); }
  Tracked(Tracked&& o) noexcept : v(o.v) {
    live.fetch_add(1, std::memory_order_relaxed);
  }
  Tracked& operator=(const Tracked&) = default;
  Tracked& operator=(Tracked&&) = default;
  ~Tracked() { live.fetch_sub(1, std::memory_order_relaxed); }
};

TEST(Faults, ThrowIsCapturedUnderEveryScheduler) {
  for (ttg::SchedulerType sched : kSchedulers) {
    SCOPED_TRACE(std::string(ttg::to_string(sched)));
    ttg::Config cfg = test_config(4);
    cfg.scheduler = sched;
    ttg::World world(cfg);
    ttg::Edge<int, ttg::Void> e("e");
    std::atomic<int> ran{0};
    auto tt = ttg::make_tt<int>(
        [&](const int& k, const ttg::Void&, auto&) {
          if (k == 7) throw std::runtime_error("boom");
          ran.fetch_add(1);
        },
        ttg::edges(e), ttg::edges(), "leaf", world);
    world.execute();
    for (int k = 0; k < 64; ++k) tt->sendk_input<0>(k);
    const ttg::Status st = world.wait();
    EXPECT_TRUE(st.failed());
    EXPECT_NE(st.reason.find("boom"), std::string::npos) << st.reason;
    EXPECT_THROW(world.rethrow(), std::runtime_error);
    // Cancelled completions keep the wave exact: nothing outstanding.
    EXPECT_EQ(world.detector().total_discovered(),
              world.detector().total_completed());
    // The world is reusable: the next epoch starts healthy.
    world.execute();
    tt->sendk_input<0>(100);
    const ttg::Status again = world.wait();
    EXPECT_TRUE(again.ok());
    EXPECT_NO_THROW(world.rethrow());
  }
}

TEST(Faults, FirstErrorWins) {
  ttg::World world(test_config(4));
  ttg::Edge<int, ttg::Void> e("e");
  auto tt = ttg::make_tt<int>(
      [](const int& k, const ttg::Void&, auto&) {
        throw std::runtime_error("boom-" + std::to_string(k));
      },
      ttg::edges(e), ttg::edges(), "thrower", world);
  world.execute();
  for (int k = 0; k < 100; ++k) tt->sendk_input<0>(k);
  const ttg::Status st = world.wait();
  ASSERT_TRUE(st.failed());
  // Exactly one error was captured; the rethrown exception is the one
  // the Status describes.
  try {
    world.rethrow();
    FAIL() << "rethrow() must throw after a failed epoch";
  } catch (const std::runtime_error& e) {
    EXPECT_EQ(std::string(e.what()), st.reason);
    EXPECT_EQ(st.reason.rfind("boom-", 0), 0u) << st.reason;
  }
}

TEST(Faults, AbortDrainsTenThousandTasks) {
  ttg::Config cfg = test_config(8);
  cfg.scheduler = ttg::SchedulerType::kLL;  // steal-heavy configuration
  ttg::World world(cfg);
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<int> ran{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto&) {
        if (k == 50) world.abort("test abort");
        ran.fetch_add(1);
      },
      ttg::edges(e), ttg::edges(), "leaf", world);
  world.execute();
  for (int k = 0; k < 10000; ++k) tt->sendk_input<0>(k);
  const ttg::Status st = world.wait();
  EXPECT_TRUE(st.aborted());
  EXPECT_EQ(st.reason, "test abort");
  EXPECT_THROW(world.rethrow(), ttg::WorldAborted);
  // Every one of the 10k discoveries is retired — executed before the
  // abort or dropped as a cancelled completion — and the wave converged.
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
  EXPECT_GT(world.detector().total_cancelled(), 0)
      << "an abort at task 50 of 10000 must drop work";
}

TEST(Faults, AbortDuringReplayRetiresUnstartedSlots) {
  Tracked::live.store(0);
  {
    ttg::World world(test_config(2));
    ttg::Edge<int, Tracked> e("chain");
    constexpr int kLen = 2000;
    std::atomic<int> ran{0};
    std::atomic<bool> arm_abort{false};
    auto tt = ttg::make_tt<int>(
        [&](const int& k, Tracked& t) {
          if (k == 50 && arm_abort.load()) world.abort("replay abort");
          ran.fetch_add(1);
          if (k < kLen - 1) ttg::send<0>(k + 1, Tracked(t.v + 1));
        },
        ttg::edges(e), ttg::edges(e), "step", world);

    world.begin_recording();
    tt->send_input<0>(0, Tracked(0));
    ASSERT_TRUE(world.wait().ok());
    ttg::ReplayInstance instance(world.end_recording());

    // Abort mid-replay: every template slot that never started must be
    // retired as a cancelled completion (claimed join counters), or the
    // termination wave would hang waiting on the arena's unfired slots.
    arm_abort.store(true);
    ran.store(0);
    world.execute_replay(instance);
    tt->send_input<0>(0, Tracked(0));
    const ttg::Status st = world.wait();
    EXPECT_TRUE(st.aborted());
    EXPECT_EQ(st.reason, "replay abort");
    EXPECT_THROW(world.rethrow(), ttg::WorldAborted);
    EXPECT_EQ(world.detector().total_discovered(),
              world.detector().total_completed());
    EXPECT_GT(world.detector().total_cancelled(), 0)
        << "an abort at hop 50 of 2000 must drop unstarted slots";
    EXPECT_LT(ran.load(), kLen);

    // The instance re-arms for a clean follow-up replay.
    arm_abort.store(false);
    ran.store(0);
    world.execute_replay(instance);
    tt->send_input<0>(0, Tracked(0));
    EXPECT_TRUE(world.wait().ok());
    EXPECT_EQ(ran.load(), kLen);
  }
  EXPECT_EQ(Tracked::live.load(), 0)
      << "payloads leaked across the aborted replay";
}

TEST(Faults, NoPayloadLeaksAcrossFailedEpoch) {
  Tracked::live.store(0);
  {
    ttg::World world(test_config(4));
    ttg::Edge<int, Tracked> a("a"), b("b");
    std::atomic<int> joined{0};
    auto tt = ttg::make_tt<int>(
        [&](const int& k, Tracked&, Tracked&, auto&) {
          if (k == 7) throw std::runtime_error("join boom");
          joined.fetch_add(1);
        },
        ttg::edges(a, b), ttg::edges(), "join", world);
    world.execute();
    // 256 half-satisfied joins hold a Tracked copy each; the second
    // inputs race the cancellation edge once key 7 fires.
    for (int k = 0; k < 256; ++k) tt->send_input<0>(k, Tracked(k));
    for (int k = 0; k < 256; ++k) tt->send_input<1>(k, Tracked(-k));
    const ttg::Status st = world.wait();
    EXPECT_TRUE(st.failed());
    EXPECT_EQ(tt->num_pending(), 0u)
        << "cancelled records must be purged, not stranded";
    EXPECT_EQ(world.detector().total_discovered(),
              world.detector().total_completed());
  }
  EXPECT_EQ(Tracked::live.load(), 0)
      << "payload copies leaked across the failed epoch";
}

TEST(Faults, FaultInjectionSweepNeverHangsOrLeaks) {
  ttg::TestRng rng(20260806);
  for (ttg::SchedulerType sched : kSchedulers) {
    SCOPED_TRACE(std::string(ttg::to_string(sched)) +
                 " seed=" + std::to_string(rng.seed()));
    Tracked::live.store(0);
    {
      ttg::Config cfg = test_config(4);
      cfg.scheduler = sched;
      ttg::World world(cfg);
      ttg::Edge<int, Tracked> e("payload");
      std::atomic<long> sum{0};
      auto leaf = ttg::make_tt<int>(
          [&](const int&, Tracked& t, auto&) { sum.fetch_add(t.v); },
          ttg::edges(e), ttg::edges(), "leaf", world);
      ttg::Edge<int, ttg::Void> go("go");
      auto src = ttg::make_tt<int>(
          [&](const int& k, const ttg::Void&, auto& outs) {
            for (int i = 0; i < 8; ++i) {
              ttg::send<0>(k * 8 + i, Tracked(1), outs);
            }
          },
          ttg::edges(go), ttg::edges(e), "src", world);
      ttg::FaultPlan plan;
      plan.seed = rng.next();
      plan.throw_prob = 0.002;
      plan.delay_prob = 0.01;
      plan.delay_us = 20;
      world.set_fault_plan(&plan);
      world.execute();
      // External submitter threads race the injected faults, covering
      // the unattached-thread discovery accounting path.
      std::vector<std::thread> pushers;
      for (int t = 0; t < 3; ++t) {
        pushers.emplace_back([&src, t] {
          for (int k = 0; k < 96; ++k) src->sendk_input<0>(t * 96 + k);
        });
      }
      for (auto& th : pushers) th.join();
      const ttg::Status st = world.wait();  // returning at all is the test
      const std::uint64_t injected = plan.injected_throws.load();
      if (injected == 0) {
        EXPECT_TRUE(st.ok()) << st.reason;
      } else {
        EXPECT_TRUE(st.failed()) << st.reason;
        EXPECT_THROW(world.rethrow(), ttg::FaultInjected);
      }
      EXPECT_EQ(world.detector().total_discovered(),
                world.detector().total_completed());
      EXPECT_EQ(leaf->num_pending(), 0u);
      // A clean follow-up epoch with the plan removed must succeed.
      world.set_fault_plan(nullptr);
      world.execute();
      src->sendk_input<0>(100000);
      EXPECT_TRUE(world.wait().ok());
    }
    EXPECT_EQ(Tracked::live.load(), 0)
        << "payload copies leaked under fault injection";
  }
}

TEST(Faults, WatchdogAbortsStalledRun) {
  ttg::Config cfg = test_config(2);
  cfg.watchdog_quiet_ms = 50;
  ttg::World world(cfg);
  ttg::Edge<int, int> a("a"), b("b");
  std::atomic<int> fired{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, int&, int&, auto&) { fired.fetch_add(1); },
      ttg::edges(a, b), ttg::edges(), "join", world);
  world.execute();
  // Half-satisfied joins: discovered work that can never run — a stall.
  for (int k = 0; k < 4; ++k) tt->send_input<0>(k, k);
  const ttg::Status st = world.wait();
  EXPECT_TRUE(st.aborted());
  EXPECT_NE(st.reason.find("watchdog"), std::string::npos) << st.reason;
  EXPECT_EQ(fired.load(), 0);
  EXPECT_EQ(tt->num_pending(), 0u);
}

TEST(Faults, WatchdogCustomHandlerReceivesReport) {
  ttg::Config cfg = test_config(2);
  cfg.watchdog_quiet_ms = 50;
  ttg::World world(cfg);
  std::mutex mu;
  std::string report;
  world.set_stall_handler([&](const std::string& r) {
    {
      std::lock_guard<std::mutex> lock(mu);
      report = r;
    }
    world.abort("custom-stall");
  });
  ttg::Edge<int, int> a("a"), b("b");
  auto tt = ttg::make_tt<int>(
      [](const int&, int&, int&, auto&) {}, ttg::edges(a, b),
      ttg::edges(), "join", world);
  world.execute();
  tt->send_input<0>(0, 0);
  const ttg::Status st = world.wait();
  EXPECT_TRUE(st.aborted());
  EXPECT_EQ(st.reason, "custom-stall");
  std::lock_guard<std::mutex> lock(mu);
  EXPECT_NE(report.find("stall report"), std::string::npos);
  EXPECT_NE(report.find("termdet:"), std::string::npos);
}

TEST(Faults, ExternalSubmittersThenLateFence) {
  // Regression: discoveries from unattached external threads must land
  // in rank-level pending counters — per-thread counters would never be
  // flushed once the submitter exits, and a fence entered after a long
  // pause would either hang or return early with work in flight.
  ttg::World world(test_config(4));
  ttg::Edge<int, int> a("a"), b("b");
  std::atomic<int> fired{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, int& x, int& y, auto&) { fired.fetch_add(x + y); },
      ttg::edges(a, b), ttg::edges(), "join", world);
  world.execute();
  std::vector<std::thread> pushers;
  for (int t = 0; t < 3; ++t) {
    pushers.emplace_back([&tt, t] {
      for (int k = 0; k < 100; ++k) {
        tt->send_input<0>(t * 100 + k, 1);
        tt->send_input<1>(t * 100 + k, 1);
      }
    });
  }
  for (auto& th : pushers) th.join();
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  const ttg::Status st = world.wait();
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(fired.load(), 600);
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
}

TEST(Faults, InjectedFaultsStayWithinTheirTenant) {
  // Serving mode (docs/serving.md): a fault plan installed on one
  // tenant World injects only into that tenant's tasks — the sibling
  // sharing the same engine completes untouched, and both tenants'
  // pending counters converge to zero.
  ttg::TestRng rng(20260808);
  ttg::RuntimeOptions opts;
  opts.config = test_config(2);
  ttg::Runtime rt(opts);
  auto faulty = rt.make_world();
  auto clean = rt.make_world();

  ttg::Edge<int, ttg::Void> ef("ef"), ec("ec");
  std::atomic<int> clean_ran{0};
  auto victim = ttg::make_tt<int>(
      [](const int&, const ttg::Void&, auto&) {}, ttg::edges(ef),
      ttg::edges(), "victim", *faulty);
  auto bystander = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) { clean_ran.fetch_add(1); },
      ttg::edges(ec), ttg::edges(), "bystander", *clean);

  ttg::FaultPlan plan;
  plan.seed = rng.next();
  plan.throw_prob = 0.05;
  faulty->set_fault_plan(&plan);

  ttg::Submission sf = faulty->execute();
  ttg::Submission sc = clean->execute();
  for (int k = 0; k < 256; ++k) victim->sendk_input<0>(k);
  for (int k = 0; k < 256; ++k) bystander->sendk_input<0>(k);
  faulty->seal_seeds();
  clean->seal_seeds();

  const ttg::Status stf = sf.wait();
  const ttg::Status stc = sc.wait();
  if (plan.injected_throws.load() == 0) {
    EXPECT_TRUE(stf.ok()) << stf.reason;
  } else {
    EXPECT_TRUE(stf.failed()) << stf.reason;
    EXPECT_THROW(sf.rethrow(), ttg::FaultInjected);
  }
  EXPECT_TRUE(stc.ok()) << stc.reason;
  EXPECT_EQ(clean_ran.load(), 256);
  EXPECT_EQ(faulty->tenant()->pending(), 0);
  EXPECT_EQ(clean->tenant()->pending(), 0);
  EXPECT_EQ(clean->tenant()->failed(), 0u);

  // Plan removed: the faulted tenant's next epoch is healthy.
  faulty->set_fault_plan(nullptr);
  ttg::Submission again = faulty->execute();
  victim->sendk_input<0>(9999);
  EXPECT_TRUE(again.wait().ok());
}

/// Lives inside a coroutine frame: counts constructions against
/// destructions, so a frame destroyed twice (double cancel) or never
/// (leaked park) shows up as a counter imbalance after the epoch.
struct FrameGuard {
  static inline std::atomic<int> live{0};
  static inline std::atomic<int> destroyed{0};
  static void reset() {
    live.store(0);
    destroyed.store(0);
  }
  FrameGuard() { live.fetch_add(1, std::memory_order_relaxed); }
  FrameGuard(const FrameGuard&) = delete;
  FrameGuard& operator=(const FrameGuard&) = delete;
  ~FrameGuard() {
    live.fetch_sub(1, std::memory_order_relaxed);
    destroyed.fetch_add(1, std::memory_order_relaxed);
  }
};

TEST(Faults, AbortRetiresSuspendedCoroutineFrames) {
  // N bodies parked on an InputGate that is never fulfilled plus N on a
  // far-future timer deadline: abort() must retire every one as a
  // cancelled completion — each suspended frame destroyed at its
  // suspension point, exactly once, without resuming the body — and the
  // fence must return long before the timers would have fired.
  FrameGuard::reset();
  ttg::World world(test_config(4));
  ttg::InputGate<int> gate(world);
  constexpr int kGateWaiters = 16;
  constexpr int kSleepers = 16;
  std::atomic<int> resumed{0};
  ttg::Edge<int, ttg::Void> ge("gate-in"), se("sleep-in");
  auto gate_tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        FrameGuard guard;
        (void)co_await gate;
        resumed.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(ge), ttg::edges(), "gate-waiter", world);
  auto sleep_tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        FrameGuard guard;
        co_await ttg::suspend_for(std::chrono::seconds(30));
        resumed.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(se), ttg::edges(), "sleeper", world);

  world.execute();
  for (int k = 0; k < kGateWaiters; ++k) gate_tt->sendk_input<0>(k);
  for (int k = 0; k < kSleepers; ++k) sleep_tt->sendk_input<0>(k);
  // All first segments retired == all 32 bodies are parked.
  while (world.total_tasks_executed() < kGateWaiters + kSleepers) {
    std::this_thread::yield();
  }
  EXPECT_EQ(FrameGuard::live.load(), kGateWaiters + kSleepers);

  const auto t0 = std::chrono::steady_clock::now();
  world.abort("test abort with parked frames");
  const ttg::Status st = world.wait();
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  EXPECT_TRUE(st.aborted());
  EXPECT_LT(elapsed, std::chrono::seconds(10))
      << "cancellation must claim timer parks, not wait them out";
  // Every frame destroyed exactly once, none resumed.
  EXPECT_EQ(FrameGuard::live.load(), 0);
  EXPECT_EQ(FrameGuard::destroyed.load(), kGateWaiters + kSleepers);
  EXPECT_EQ(resumed.load(), 0);
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());

  // The world is reusable and the wheel/gate state is clean.
  std::atomic<int> ok{0};
  ttg::Edge<int, ttg::Void> he("healthy");
  auto healthy = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        co_await ttg::yield{};
        ok.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(he), ttg::edges(), "healthy", world);
  world.execute();
  for (int k = 0; k < 8; ++k) healthy->sendk_input<0>(k);
  EXPECT_TRUE(world.wait().ok());
  EXPECT_EQ(ok.load(), 8);
}

TEST(Faults, BodyFailureCancelsSiblingParkedFrames) {
  // One body throws after the others have parked: the failure cancels
  // the epoch and the purge must retire the parked siblings (the fence
  // would otherwise hang on their discovered-but-not-complete census).
  FrameGuard::reset();
  ttg::World world(test_config(4));
  ttg::InputGate<int> gate(world);
  constexpr int kWaiters = 8;
  std::atomic<int> parked{0};
  ttg::Edge<int, ttg::Void> e("e");
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto&) -> ttg::resumable {
        if (k < 0) {
          // Thrown only after every waiter's first segment retired.
          throw std::runtime_error("sibling boom");
        }
        FrameGuard guard;
        parked.fetch_add(1, std::memory_order_relaxed);
        (void)co_await gate;
        co_return;
      },
      ttg::edges(e), ttg::edges(), "mixed", world);
  world.execute();
  for (int k = 0; k < kWaiters; ++k) tt->sendk_input<0>(k);
  while (world.total_tasks_executed() < kWaiters) {
    std::this_thread::yield();
  }
  tt->sendk_input<0>(-1);
  const ttg::Status st = world.wait();
  EXPECT_TRUE(st.failed());
  EXPECT_NE(st.reason.find("sibling boom"), std::string::npos) << st.reason;
  EXPECT_EQ(FrameGuard::live.load(), 0);
  EXPECT_EQ(FrameGuard::destroyed.load(), kWaiters);
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
}

TEST(Faults, CleanRunReportsOk) {
  ttg::World world(test_config());
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<int> n{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) { n.fetch_add(1); },
      ttg::edges(e), ttg::edges(), "leaf", world);
  world.execute();
  for (int k = 0; k < 32; ++k) tt->sendk_input<0>(k);
  const ttg::Status st = world.wait();
  EXPECT_TRUE(st.ok());
  EXPECT_TRUE(st.reason.empty());
  EXPECT_FALSE(world.cancelled());
  EXPECT_NO_THROW(world.rethrow());
  EXPECT_EQ(n.load(), 32);
}

}  // namespace
