#include <gtest/gtest.h>

#include <cmath>

#include "mra/mra.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

mra::MraParams small_params() {
  mra::MraParams p;
  p.k = 6;
  p.thresh = 1e-4;
  p.max_level = 10;
  return p;
}

TEST(MraPipeline, SingleGaussianNormRecovered) {
  const auto params = small_params();
  const auto gs = mra::random_gaussians(1, 80.0, 1, params);
  const auto result = mra::run_mra(params, gs, test_config());
  ASSERT_EQ(result.norms.size(), 1u);
  const double span = params.hi - params.lo;
  const double expect = 1.0 / std::pow(span, 1.5);  // u-space norm
  EXPECT_NEAR(result.norms[0], expect, 1e-3 * expect)
      << "reconstructed leaf norm must match the function norm";
  EXPECT_GT(result.leaves, 1u);
  EXPECT_GT(result.project_tasks, 0u);
}

TEST(MraPipeline, ParsevalCompressedNormMatchesLeaves) {
  // ||f||^2 from {root coefficients + all difference coefficients} must
  // equal ||f||^2 from the reconstructed leaves, to rounding: the
  // two-scale transform is an isometry.
  const auto params = small_params();
  const auto gs = mra::random_gaussians(3, 150.0, 11, params);
  const auto result = mra::run_mra(params, gs, test_config());
  ASSERT_EQ(result.norms_compressed.size(), result.norms.size());
  for (std::size_t f = 0; f < result.norms.size(); ++f) {
    EXPECT_NEAR(result.norms_compressed[f], result.norms[f],
                1e-10 * result.norms[f]);
  }
}

TEST(MraPipeline, TreeRefinesAroundSharpGaussian) {
  auto params = small_params();
  const auto broad = mra::random_gaussians(1, 20.0, 2, params);
  const auto sharp = mra::random_gaussians(1, 2000.0, 2, params);
  const auto r_broad = mra::run_mra(params, broad, test_config());
  const auto r_sharp = mra::run_mra(params, sharp, test_config());
  EXPECT_GT(r_sharp.leaves, r_broad.leaves)
      << "sharper features must refine deeper";
}

TEST(MraPipeline, TaskCountsAreConsistent) {
  const auto params = small_params();
  const auto gs = mra::random_gaussians(2, 100.0, 3, params);
  const auto result = mra::run_mra(params, gs, test_config());
  // Every interior box is compressed exactly once and reconstruction
  // visits every box (interior + leaves).
  EXPECT_EQ(result.reconstruct_tasks,
            result.compress_tasks + result.leaves);
  // Projection visits every box from the initial uniform level down;
  // boxes above the initial level ((8^n0 - 1) / 7 per function) are
  // interior by construction and are never projected.
  std::uint64_t above = 0;
  for (int l = 0; l < params.initial_level; ++l) above += 1ULL << (3 * l);
  EXPECT_EQ(result.project_tasks + 2 * above,
            result.compress_tasks + result.leaves);
}

TEST(MraPipeline, MultipleFunctionsAllRecovered) {
  const auto params = small_params();
  const auto gs = mra::random_gaussians(6, 120.0, 4, params);
  const auto result = mra::run_mra(params, gs, test_config(4));
  ASSERT_EQ(result.norms.size(), 6u);
  const double span = params.hi - params.lo;
  const double expect = 1.0 / std::pow(span, 1.5);
  for (double n : result.norms) {
    EXPECT_NEAR(n, expect, 1e-3 * expect);
  }
}

TEST(MraPipeline, TighterThresholdRefinesMore) {
  auto params = small_params();
  const auto gs = mra::random_gaussians(1, 150.0, 5, params);
  params.thresh = 1e-3;
  const auto coarse = mra::run_mra(params, gs, test_config());
  params.thresh = 1e-6;
  const auto fine = mra::run_mra(params, gs, test_config());
  EXPECT_GT(fine.leaves, coarse.leaves);
  // And the tighter run recovers the norm more accurately.
  const double span = params.hi - params.lo;
  const double expect = 1.0 / std::pow(span, 1.5);
  EXPECT_LE(std::abs(fine.norms[0] - expect),
            std::abs(coarse.norms[0] - expect) + 1e-12);
}

TEST(MraPipeline, OriginalConfigProducesSameTree) {
  const auto params = small_params();
  const auto gs = mra::random_gaussians(2, 90.0, 6, params);
  const auto opt = mra::run_mra(params, gs, test_config());
  const auto orig = mra::run_mra(params, gs, ttg::Config::original());
  EXPECT_EQ(opt.leaves, orig.leaves);
  EXPECT_EQ(opt.compress_tasks, orig.compress_tasks);
  ASSERT_EQ(opt.norms.size(), orig.norms.size());
  for (std::size_t i = 0; i < opt.norms.size(); ++i) {
    EXPECT_NEAR(opt.norms[i], orig.norms[i], 1e-12);
  }
}

}  // namespace
