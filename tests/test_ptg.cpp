#include <gtest/gtest.h>

#include <atomic>
#include <utility>
#include <vector>

#include "ptg/ptg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

TEST(Ptg, LinearChain) {
  ttg::Context ctx(test_config());
  ptg::ParameterizedGraph<int, long> g(
      ctx, [](const int& k) { return k == 0 ? 0 : 1; },
      [](const int& k) {
        return k < 100 ? std::vector<int>{k + 1} : std::vector<int>{};
      },
      [](const int& k, const auto& input_of) -> long {
        return k == 0 ? 1 : input_of(k - 1) + k;
      });
  ctx.begin();
  g.seed(0);
  ctx.fence();
  EXPECT_EQ(g.tasks_executed(), 101u);
  long expect = 1;
  for (int k = 1; k <= 100; ++k) expect += k;
  ASSERT_NE(g.find(100), nullptr);
  EXPECT_EQ(*g.find(100), expect);
  EXPECT_EQ(g.find(101), nullptr);
}

TEST(Ptg, DiamondJoins) {
  // 0 -> {1, 2} -> 3: the join's counter is created by the first
  // completing branch and decremented by both.
  ttg::Context ctx(test_config());
  ptg::ParameterizedGraph<int, int> g(
      ctx,
      [](const int& k) { return k == 0 ? 0 : (k == 3 ? 2 : 1); },
      [](const int& k) -> std::vector<int> {
        if (k == 0) return {1, 2};
        if (k == 3) return {};
        return {3};
      },
      [](const int& k, const auto& input_of) -> int {
        if (k == 0) return 5;
        if (k == 3) return input_of(1) * input_of(2);
        return input_of(0) + k;
      });
  ctx.begin();
  g.seed(0);
  ctx.fence();
  ASSERT_NE(g.find(3), nullptr);
  EXPECT_EQ(*g.find(3), (5 + 1) * (5 + 2));
}

TEST(Ptg, WavefrontMatchesSerial) {
  // The 2D wavefront recurrence over the PTG front-end.
  using Key = std::pair<int, int>;
  constexpr int kN = 24;
  ttg::Context ctx(test_config());
  ptg::ParameterizedGraph<Key, long> g(
      ctx,
      [](const Key& k) {
        return (k.first > 0 ? 1 : 0) + (k.second > 0 ? 1 : 0);
      },
      [](const Key& k) {
        std::vector<Key> succ;
        if (k.first + 1 < kN) succ.push_back({k.first + 1, k.second});
        if (k.second + 1 < kN) succ.push_back({k.first, k.second + 1});
        return succ;
      },
      [](const Key& k, const auto& input_of) -> long {
        const long north = k.first > 0 ? input_of(Key{k.first - 1, k.second}) : 0;
        const long west = k.second > 0 ? input_of(Key{k.first, k.second - 1}) : 0;
        return std::max(north, west) + (k.first * 7 + k.second * 3) % 5;
      });
  ctx.begin();
  g.seed(Key{0, 0});
  ctx.fence();
  EXPECT_EQ(g.tasks_executed(), static_cast<std::uint64_t>(kN) * kN);

  // Serial reference.
  long grid[kN][kN];
  for (int i = 0; i < kN; ++i) {
    for (int j = 0; j < kN; ++j) {
      const long north = i > 0 ? grid[i - 1][j] : 0;
      const long west = j > 0 ? grid[i][j - 1] : 0;
      grid[i][j] = std::max(north, west) + (i * 7 + j * 3) % 5;
    }
  }
  ASSERT_NE(g.find(Key{kN - 1, kN - 1}), nullptr);
  EXPECT_EQ(*g.find(Key{kN - 1, kN - 1}), grid[kN - 1][kN - 1]);
}

TEST(Ptg, WideFanOutAndIn) {
  // 0 -> {1..N} -> N+1.
  constexpr int kFan = 500;
  ttg::Context ctx(test_config(4));
  ptg::ParameterizedGraph<int, long> g(
      ctx,
      [](const int& k) {
        if (k == 0) return 0;
        if (k == kFan + 1) return kFan;
        return 1;
      },
      [](const int& k) -> std::vector<int> {
        if (k == 0) {
          std::vector<int> all;
          for (int i = 1; i <= kFan; ++i) all.push_back(i);
          return all;
        }
        if (k == kFan + 1) return {};
        return {kFan + 1};
      },
      [](const int& k, const auto& input_of) -> long {
        if (k == 0) return 0;
        if (k == kFan + 1) {
          long s = 0;
          for (int i = 1; i <= kFan; ++i) s += input_of(i);
          return s;
        }
        return input_of(0) + k;
      });
  ctx.begin();
  g.seed(0);
  ctx.fence();
  ASSERT_NE(g.find(kFan + 1), nullptr);
  EXPECT_EQ(*g.find(kFan + 1),
            static_cast<long>(kFan) * (kFan + 1) / 2);
}

TEST(Ptg, MultipleIndependentRoots) {
  ttg::Context ctx(test_config());
  std::atomic<long> sum{0};
  ptg::ParameterizedGraph<int, int> g(
      ctx, [](const int&) { return 0; },
      [](const int&) { return std::vector<int>{}; },
      [&](const int& k, const auto&) -> int {
        sum.fetch_add(k);
        return k;
      });
  ctx.begin();
  for (int k = 0; k < 50; ++k) g.seed(k);
  ctx.fence();
  EXPECT_EQ(sum.load(), 49 * 50 / 2);
  EXPECT_EQ(g.tasks_executed(), 50u);
}

}  // namespace
