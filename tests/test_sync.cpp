#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "sync/bravo.hpp"
#include "sync/bucket_lock.hpp"
#include "sync/rwlock.hpp"

namespace {

// ---------------------------------------------------------------- BucketLock

TEST(BucketLock, BasicLockUnlock) {
  ttg::BucketLock lock;
  EXPECT_FALSE(lock.is_locked());
  lock.lock();
  EXPECT_TRUE(lock.is_locked());
  lock.unlock();
  EXPECT_FALSE(lock.is_locked());
}

TEST(BucketLock, TryLockFailsWhenHeld) {
  ttg::BucketLock lock;
  lock.lock();
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(BucketLock, GuardReleasesOnScopeExit) {
  ttg::BucketLock lock;
  {
    ttg::BucketGuard guard(lock);
    EXPECT_TRUE(lock.is_locked());
  }
  EXPECT_FALSE(lock.is_locked());
}

class MutualExclusionTest : public ::testing::TestWithParam<int> {};

TEST_P(MutualExclusionTest, BucketLockProtectsCounter) {
  const int nthreads = GetParam();
  constexpr int kIters = 20000;
  ttg::BucketLock lock;
  long counter = 0;  // unprotected; only valid if the lock works
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.lock();
        ++counter;
        lock.unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(nthreads) * kIters);
}

TEST_P(MutualExclusionTest, RWLockWritersAreExclusive) {
  const int nthreads = GetParam();
  constexpr int kIters = 10000;
  ttg::RWSpinLock lock;
  long counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        lock.write_lock();
        ++counter;
        lock.write_unlock();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, static_cast<long>(nthreads) * kIters);
}

INSTANTIATE_TEST_SUITE_P(Threads, MutualExclusionTest,
                         ::testing::Values(1, 2, 4, 8));

// ---------------------------------------------------------------- RWSpinLock

TEST(RWSpinLock, MultipleReadersCoexist) {
  ttg::RWSpinLock lock;
  lock.read_lock();
  lock.read_lock();
  EXPECT_TRUE(lock.is_held());
  EXPECT_FALSE(lock.try_write_lock());
  lock.read_unlock();
  EXPECT_FALSE(lock.try_write_lock());
  lock.read_unlock();
  EXPECT_TRUE(lock.try_write_lock());
  lock.write_unlock();
}

TEST(RWSpinLock, WriterBlocksReaders) {
  ttg::RWSpinLock lock;
  lock.write_lock();
  EXPECT_FALSE(lock.try_read_lock());
  lock.write_unlock();
  EXPECT_TRUE(lock.try_read_lock());
  lock.read_unlock();
}

// -------------------------------------------------------------------- BRAVO

TEST(Bravo, FastPathWhenBiased) {
  ttg::set_bravo_enabled(true);
  ttg::BravoRWLock<> lock(16);
  EXPECT_TRUE(lock.reader_biased());
  auto token = lock.read_lock();
  EXPECT_NE(token.slot, nullptr);  // fast path taken
  lock.read_unlock(token);
}

TEST(Bravo, WriterRevokesBias) {
  ttg::set_bravo_enabled(true);
  ttg::BravoRWLock<> lock(16);
  lock.write_lock();
  EXPECT_FALSE(lock.reader_biased());
  lock.write_unlock();
  // Immediately after a revocation readers use the slow path (cooldown).
  auto token = lock.read_lock();
  EXPECT_EQ(token.slot, nullptr);
  lock.read_unlock(token);
}

TEST(Bravo, DisabledDegradesToUnderlying) {
  ttg::set_bravo_enabled(false);
  ttg::BravoRWLock<> lock(16);
  EXPECT_FALSE(lock.reader_biased());
  auto token = lock.read_lock();
  EXPECT_EQ(token.slot, nullptr);
  lock.read_unlock(token);
  ttg::set_bravo_enabled(true);
}

TEST(Bravo, WriterWaitsForFastPathReader) {
  ttg::set_bravo_enabled(true);
  ttg::BravoRWLock<> lock;
  auto token = lock.read_lock();
  ASSERT_NE(token.slot, nullptr);

  std::atomic<bool> writer_entered{false};
  std::atomic<bool> reader_done{false};
  std::thread writer([&] {
    lock.write_lock();
    writer_entered.store(true);
    // The reader must have finished before the writer got in.
    EXPECT_TRUE(reader_done.load());
    lock.write_unlock();
  });

  // Give the writer time to reach the revocation scan.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(writer_entered.load());
  reader_done.store(true);
  lock.read_unlock(token);
  writer.join();
  EXPECT_TRUE(writer_entered.load());
}

class BravoStressTest : public ::testing::TestWithParam<int> {};

TEST_P(BravoStressTest, ReadersAndWritersKeepInvariant) {
  ttg::set_bravo_enabled(true);
  const int nthreads = GetParam();
  ttg::BravoRWLock<> lock;
  long shared_value = 0;
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < 3000; ++i) {
        if ((i + t) % 16 == 0) {
          lock.write_lock();
          // Non-atomic RMW on shared state: torn updates would be lost
          // if writer exclusion were broken.
          shared_value += 2;
          shared_value -= 1;
          lock.write_unlock();
        } else {
          auto token = lock.read_lock();
          const long v = shared_value;
          if (v < 0) failed.store(true);
          lock.read_unlock(token);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_FALSE(failed.load());
  long writes = 0;
  for (int t = 0; t < nthreads; ++t) {
    for (int i = 0; i < 3000; ++i) {
      if ((i + t) % 16 == 0) ++writes;
    }
  }
  EXPECT_EQ(shared_value, writes);
}

INSTANTIATE_TEST_SUITE_P(Threads, BravoStressTest,
                         ::testing::Values(2, 4, 8));

// --------------------------------------------------- memory-ordering config

TEST(Ordering, ModesMapToExpectedOrders) {
  ttg::set_ordering_mode(ttg::OrderingMode::kSeqCst);
  EXPECT_EQ(ttg::ord_acquire(), std::memory_order_seq_cst);
  EXPECT_EQ(ttg::ord_release(), std::memory_order_seq_cst);
  EXPECT_EQ(ttg::ord_relaxed(), std::memory_order_seq_cst);

  ttg::set_ordering_mode(ttg::OrderingMode::kOptimized);
  EXPECT_EQ(ttg::ord_acquire(), std::memory_order_acquire);
  EXPECT_EQ(ttg::ord_release(), std::memory_order_release);
  EXPECT_EQ(ttg::ord_relaxed(), std::memory_order_relaxed);
  EXPECT_EQ(ttg::ord_acq_rel(), std::memory_order_acq_rel);
}

TEST(AtomicOpCounter, CountsBucketLockAcquires) {
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  ttg::BucketLock lock;
  for (int i = 0; i < 10; ++i) {
    lock.lock();
    lock.unlock();
  }
  const auto snap = ttg::atomic_ops::snapshot();
  // Uncontended: exactly one RMW per lock; unlock is a plain store.
  EXPECT_EQ(snap[ttg::AtomicOpCategory::kBucketLock], 10u);
  ttg::atomic_ops::set_enabled(false);
}

TEST(AtomicOpCounter, DisabledCountsNothing) {
  ttg::atomic_ops::set_enabled(false);
  ttg::atomic_ops::reset();
  ttg::BucketLock lock;
  lock.lock();
  lock.unlock();
  EXPECT_EQ(ttg::atomic_ops::snapshot().total(), 0u);
}

TEST(AtomicOpCounter, BravoFastPathNeedsNoRWLockAtomics) {
  ttg::set_bravo_enabled(true);
  ttg::BravoRWLock<> lock(16);
  ASSERT_TRUE(lock.reader_biased());
  ttg::atomic_ops::set_enabled(true);
  ttg::atomic_ops::reset();
  for (int i = 0; i < 100; ++i) {
    auto token = lock.read_lock();
    lock.read_unlock(token);
  }
  const auto snap = ttg::atomic_ops::snapshot();
  EXPECT_EQ(snap[ttg::AtomicOpCategory::kRWLock], 0u)
      << "biased reader fast path must not touch the underlying rwlock";
  ttg::atomic_ops::set_enabled(false);
}

}  // namespace
