// Data-copy lifetime properties: every value that enters a graph is
// destroyed exactly once, whatever path it takes (moves, copies,
// broadcasts, aggregators, joins, cross-rank transfers). Catches
// reference-count leaks and double-frees in the copy-tracking machinery.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ttg/ttg.hpp"

namespace {

/// Counts live instances across construction/copy/move/destruction.
struct Tracked {
  static inline std::atomic<int> live{0};
  int payload = 0;

  Tracked() { live.fetch_add(1); }
  explicit Tracked(int p) : payload(p) { live.fetch_add(1); }
  Tracked(const Tracked& o) : payload(o.payload) { live.fetch_add(1); }
  Tracked(Tracked&& o) noexcept : payload(o.payload) {
    live.fetch_add(1);
  }
  Tracked& operator=(const Tracked&) = default;
  Tracked& operator=(Tracked&&) = default;
  ~Tracked() { live.fetch_sub(1); }
};

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

TEST(DataLifetime, MovedChainLeaksNothing) {
  Tracked::live.store(0);
  {
    ttg::World world(test_config());
    ttg::Edge<int, Tracked> e("chain");
    auto tt = ttg::make_tt<int>(
        [](const int& k, Tracked& v, auto& outs) {
          if (k < 200) ttg::send<0>(k + 1, std::move(v), outs);
        },
        ttg::edges(e), ttg::edges(e), "step", world);
    world.execute();
    tt->send_input<0>(0, Tracked{1});
    world.fence();
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(DataLifetime, CopiedChainLeaksNothing) {
  Tracked::live.store(0);
  {
    ttg::World world(test_config());
    ttg::Edge<int, Tracked> e("chain");
    auto tt = ttg::make_tt<int>(
        [](const int& k, Tracked& v, auto& outs) {
          if (k < 200) {
            ttg::send<0>(k + 1, static_cast<const Tracked&>(v), outs);
          }
        },
        ttg::edges(e), ttg::edges(e), "step", world);
    world.execute();
    tt->send_input<0>(0, Tracked{1});
    world.fence();
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(DataLifetime, BroadcastLeaksNothing) {
  Tracked::live.store(0);
  {
    ttg::World world(test_config());
    ttg::Edge<int, Tracked> fan("fan");
    ttg::Edge<int, ttg::Void> go("go");
    std::atomic<int> received{0};
    auto leaf = ttg::make_tt<int>(
        [&](const int&, Tracked&, auto&) { received.fetch_add(1); },
        ttg::edges(fan), ttg::edges(), "leaf", world);
    std::vector<int> keys;
    for (int i = 0; i < 32; ++i) keys.push_back(i);
    auto src = ttg::make_tt<int>(
        [&](const int&, const ttg::Void&, auto& outs) {
          Tracked payload{7};
          ttg::broadcast<0>(keys, payload, outs);
        },
        ttg::edges(go), ttg::edges(fan), "src", world);
    world.execute();
    src->sendk_input<0>(0);
    world.fence();
    EXPECT_EQ(received.load(), 32);
    (void)leaf;
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(DataLifetime, JoinsReleaseBothInputs) {
  Tracked::live.store(0);
  {
    ttg::World world(test_config());
    ttg::Edge<int, Tracked> a("a"), b("b");
    auto tt = ttg::make_tt<int>(
        [](const int&, Tracked&, Tracked&, auto&) {},
        ttg::edges(a, b), ttg::edges(), "join", world);
    world.execute();
    for (int k = 0; k < 100; ++k) tt->send_input<0>(k, Tracked{k});
    for (int k = 99; k >= 0; --k) tt->send_input<1>(k, Tracked{k});
    world.fence();
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(DataLifetime, AggregatorReleasesAllContributions) {
  Tracked::live.store(0);
  {
    ttg::World world(test_config());
    ttg::Edge<int, Tracked> in("in");
    auto tt = ttg::make_tt<int>(
        [](const int&, const ttg::Aggregator<Tracked>&, auto&) {},
        ttg::edges(ttg::make_aggregator(in, 5)), ttg::edges(), "agg",
        world);
    world.execute();
    for (int k = 0; k < 50; ++k) {
      for (int i = 0; i < 5; ++i) tt->send_input<0>(k, Tracked{i});
    }
    world.fence();
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(DataLifetime, CrossRankTransfersLeakNothing) {
  Tracked::live.store(0);
  {
    ttg::Config cfg = test_config(1);
    ttg::World world(cfg, 3);
    ttg::Edge<int, Tracked> e("chain");
    auto tt = ttg::make_tt<int>(
        [](const int& k, Tracked& v, auto& outs) {
          if (k < 150) ttg::send<0>(k + 1, std::move(v), outs);
        },
        ttg::edges(e), ttg::edges(e), "step", world);
    world.execute();
    tt->send_input<0>(0, Tracked{1});
    world.fence();
    EXPECT_GT(world.messages_delivered(), 0u);
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(DataLifetime, UnconsumedBroadcastStillReleases) {
  // Values sent to tasks that also need a *second* input which does
  // arrive later in the same epoch: held in the pending table meanwhile;
  // everything must drain by the fence.
  Tracked::live.store(0);
  {
    ttg::World world(test_config());
    ttg::Edge<int, Tracked> a("a"), b("b");
    std::atomic<int> fired{0};
    auto tt = ttg::make_tt<int>(
        [&](const int&, Tracked&, Tracked&, auto&) { fired.fetch_add(1); },
        ttg::edges(a, b), ttg::edges(), "join", world);
    world.execute();
    for (int k = 0; k < 64; ++k) tt->send_input<0>(k, Tracked{k});
    for (int k = 0; k < 64; ++k) tt->send_input<1>(k, Tracked{k});
    world.fence();
    EXPECT_EQ(fired.load(), 64);
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

TEST(DataLifetime, InlinedTasksLeakNothing) {
  Tracked::live.store(0);
  {
    ttg::Config cfg = test_config(1);
    cfg.inline_max_depth = 16;
    ttg::World world(cfg);
    ttg::Edge<int, Tracked> e("chain");
    auto tt = ttg::make_tt<int>(
        [](const int& k, Tracked& v, auto& outs) {
          if (k < 200) {
            if (k % 2 == 0) {
              ttg::send<0>(k + 1, std::move(v), outs);
            } else {
              ttg::send<0>(k + 1, static_cast<const Tracked&>(v), outs);
            }
          }
        },
        ttg::edges(e), ttg::edges(e), "step", world);
    world.execute();
    tt->send_input<0>(0, Tracked{1});
    world.fence();
  }
  EXPECT_EQ(Tracked::live.load(), 0);
}

}  // namespace
