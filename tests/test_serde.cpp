// Unit tests for the wire serialization layer (src/comm/serde.hpp):
// round trips for every built-in Serde tier, and — the part that
// matters for safety — rejection of truncated/corrupt frames with a
// WireError instead of UB or unbounded allocation.
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "comm/serde.hpp"

namespace {

using ttg::comm::kMaxFrameBytes;
using ttg::comm::pack_value;
using ttg::comm::Serde;
using ttg::comm::unpack_value;
using ttg::comm::WireError;
using ttg::comm::WireReader;
using ttg::comm::WireWriter;

template <typename T>
T round_trip(const T& v) {
  std::vector<std::byte> buf;
  pack_value(v, buf);
  return unpack_value<T>(buf.data(), buf.size());
}

struct Point3 {
  double x, y, z;
  int tag;
  bool operator==(const Point3& o) const {
    return x == o.x && y == o.y && z == o.z && tag == o.tag;
  }
};
static_assert(std::is_trivially_copyable_v<Point3>);
static_assert(ttg::comm::is_serializable_v<Point3>);
static_assert(ttg::comm::is_serializable_v<std::string>);
static_assert(ttg::comm::is_serializable_v<std::vector<Point3>>);
static_assert(ttg::comm::is_serializable_v<std::vector<std::string>>);
// Pair keys — the idiomatic (t, x) TTG key — must be wire-eligible even
// though std::pair is not trivially copyable on common stdlibs.
static_assert(ttg::comm::is_serializable_v<std::pair<int, int>>);
static_assert(
    ttg::comm::is_serializable_v<std::pair<std::string, std::vector<int>>>);

struct NotSerializable {
  void* p;
  NotSerializable(const NotSerializable&) {}  // not trivially copyable
};
static_assert(!ttg::comm::is_serializable_v<NotSerializable>);

TEST(Serde, TriviallyCopyableRoundTrip) {
  EXPECT_EQ(round_trip<std::int32_t>(-7), -7);
  EXPECT_EQ(round_trip<std::uint64_t>(0xdeadbeefcafe1234ull),
            0xdeadbeefcafe1234ull);
  EXPECT_EQ(round_trip<double>(3.25), 3.25);
  const Point3 p{1.5, -2.0, 8.0, 42};
  EXPECT_EQ(round_trip(p), p);
}

TEST(Serde, StringRoundTrip) {
  EXPECT_EQ(round_trip<std::string>(""), "");
  EXPECT_EQ(round_trip<std::string>("hello wire"), "hello wire");
  // Embedded NULs survive.
  std::string nuls("a\0b\0c", 5);
  EXPECT_EQ(round_trip(nuls), nuls);
  std::string big(1 << 20, 'x');
  EXPECT_EQ(round_trip(big), big);
}

TEST(Serde, VectorRoundTrip) {
  EXPECT_EQ(round_trip(std::vector<int>{}), std::vector<int>{});
  const std::vector<int> vi{1, 2, 3, -4};
  EXPECT_EQ(round_trip(vi), vi);
  const std::vector<Point3> vp{{1, 2, 3, 4}, {5, 6, 7, 8}};
  EXPECT_EQ(round_trip(vp), vp);
  // Element-recursive tier: vector of non-trivially-copyable elements.
  const std::vector<std::string> vs{"", "abc", std::string(100, 'z')};
  EXPECT_EQ(round_trip(vs), vs);
  const std::vector<std::vector<int>> vv{{1}, {}, {2, 3}};
  EXPECT_EQ(round_trip(vv), vv);
}

TEST(Serde, PairRoundTrip) {
  const std::pair<int, int> k{7, 42};
  EXPECT_EQ(round_trip(k), k);
  const std::pair<std::string, std::vector<int>> nested{"tile", {1, 2}};
  EXPECT_EQ(round_trip(nested), nested);
  std::vector<std::byte> buf;
  pack_value(nested, buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_THROW(
        (unpack_value<std::pair<std::string, std::vector<int>>>(buf.data(),
                                                                cut)),
        WireError);
  }
}

TEST(Serde, MultipleValuesSequencedInOneFrame) {
  std::vector<std::byte> buf;
  WireWriter w(buf);
  Serde<std::uint32_t>::pack(7u, w);
  Serde<std::string>::pack("key", w);
  Serde<std::vector<double>>::pack({1.0, 2.0}, w);

  WireReader r(buf.data(), buf.size());
  EXPECT_EQ(Serde<std::uint32_t>::unpack(r), 7u);
  EXPECT_EQ(Serde<std::string>::unpack(r), "key");
  EXPECT_EQ(Serde<std::vector<double>>::unpack(r),
            (std::vector<double>{1.0, 2.0}));
  EXPECT_NO_THROW(r.expect_consumed());
}

TEST(Serde, EmptyPayloadReads) {
  WireReader r(nullptr, 0);
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_NO_THROW(r.expect_consumed());
  EXPECT_THROW(r.pod<std::uint8_t>(), WireError);
}

TEST(Serde, TruncatedFrameThrows) {
  std::vector<std::byte> buf;
  pack_value(std::string("hello"), buf);
  // Any strict prefix of the frame must throw, never read past the end.
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_THROW(unpack_value<std::string>(buf.data(), cut), WireError)
        << "prefix length " << cut;
  }
}

TEST(Serde, TruncatedVectorOfStringsThrows) {
  std::vector<std::byte> buf;
  pack_value(std::vector<std::string>{"aa", "bb", "cc"}, buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_THROW((unpack_value<std::vector<std::string>>(buf.data(), cut)),
                 WireError)
        << "prefix length " << cut;
  }
}

TEST(Serde, CorruptLengthPrefixRejectedBeforeAllocation) {
  // A frame claiming 0xffffffff string bytes but carrying only 4: the
  // size() validation against remaining() must reject it up front.
  std::vector<std::byte> buf;
  WireWriter w(buf);
  w.pod<std::uint32_t>(0xffffffffu);
  w.pod<std::uint32_t>(0u);  // 4 bytes of "payload"
  EXPECT_THROW(unpack_value<std::string>(buf.data(), buf.size()), WireError);
  EXPECT_THROW((unpack_value<std::vector<std::uint64_t>>(buf.data(),
                                                         buf.size())),
               WireError);
}

TEST(Serde, TrailingBytesRejected) {
  std::vector<std::byte> buf;
  pack_value(std::uint32_t{5}, buf);
  buf.push_back(std::byte{0});
  EXPECT_THROW(unpack_value<std::uint32_t>(buf.data(), buf.size()),
               WireError);
}

TEST(Serde, WriterEnforcesFrameCap) {
  std::vector<std::byte> buf;
  WireWriter w(buf);
  // size() rejects element counts beyond the cap outright.
  EXPECT_THROW(w.size(static_cast<std::size_t>(kMaxFrameBytes) + 1),
               WireError);
  // Accumulating past the cap throws (write in large chunks so the test
  // stays fast; the check fires on the crossing insert).
  std::vector<std::byte> chunk(8u * 1024u * 1024u);
  bool threw = false;
  try {
    for (int i = 0; i < 16; ++i) w.bytes(chunk.data(), chunk.size());
  } catch (const WireError&) {
    threw = true;
  }
  EXPECT_TRUE(threw);
}

TEST(Serde, MaxSizedFrameWithinCapRoundTrips) {
  // Largest vector<uint8_t> that still fits under the cap with its
  // 4-byte length prefix.
  const std::size_t n = kMaxFrameBytes - sizeof(std::uint32_t);
  std::vector<std::uint8_t> big(n, 0xab);
  big.front() = 1;
  big.back() = 2;
  std::vector<std::byte> buf;
  pack_value(big, buf);
  EXPECT_EQ(buf.size(), kMaxFrameBytes);
  const auto out = unpack_value<std::vector<std::uint8_t>>(buf.data(),
                                                           buf.size());
  EXPECT_EQ(out.size(), n);
  EXPECT_EQ(out.front(), 1);
  EXPECT_EQ(out.back(), 2);
  EXPECT_EQ(out[n / 2], 0xab);
}

// A user-provided full specialization participates in the wire path
// exactly like the built-ins.
struct Custom {
  std::string name;
  std::vector<int> data;
  bool operator==(const Custom& o) const {
    return name == o.name && data == o.data;
  }
};

}  // namespace

template <>
struct ttg::comm::Serde<Custom> {
  static void pack(const Custom& c, WireWriter& w) {
    Serde<std::string>::pack(c.name, w);
    Serde<std::vector<int>>::pack(c.data, w);
  }
  static Custom unpack(WireReader& r) {
    Custom c;
    c.name = Serde<std::string>::unpack(r);
    c.data = Serde<std::vector<int>>::unpack(r);
    return c;
  }
};

namespace {

static_assert(ttg::comm::is_serializable_v<Custom>);

TEST(Serde, UserSpecializationRoundTrip) {
  const Custom c{"stencil", {1, 2, 3}};
  EXPECT_EQ(round_trip(c), c);
  std::vector<std::byte> buf;
  pack_value(c, buf);
  for (std::size_t cut = 0; cut < buf.size(); ++cut) {
    EXPECT_THROW(unpack_value<Custom>(buf.data(), cut), WireError);
  }
}

}  // namespace
