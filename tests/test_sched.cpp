#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <tuple>
#include <vector>

#include "sched/gd_ap.hpp"
#include "sched/lfq.hpp"
#include "sched/ll.hpp"
#include "sched/llp.hpp"
#include "sched/scheduler.hpp"

namespace {

struct Node : ttg::LifoNode {
  int id = 0;
};

using ttg::SchedulerType;

class SchedulerDrainTest
    : public ::testing::TestWithParam<std::tuple<SchedulerType, int>> {};

TEST_P(SchedulerDrainTest, EveryTaskPoppedExactlyOnce) {
  const auto [type, nthreads] = GetParam();
  auto sched = ttg::make_scheduler(type, nthreads);
  constexpr int kPerThread = 4000;
  const int total = nthreads * kPerThread;
  std::vector<Node> nodes(static_cast<std::size_t>(total));
  std::vector<std::atomic<int>> seen(static_cast<std::size_t>(total));
  for (auto& s : seen) s.store(0);
  std::atomic<int> popped{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < nthreads; ++w) {
    threads.emplace_back([&, w] {
      // Interleave pushes and pops, like a worker discovering successor
      // tasks while executing.
      for (int i = 0; i < kPerThread; ++i) {
        Node& n = nodes[static_cast<std::size_t>(w) * kPerThread + i];
        n.id = w * kPerThread + i;
        n.priority = i % 5;
        sched->push(w, &n);
        if (i % 2 == 0) {
          if (ttg::LifoNode* p = sched->pop(w); p != nullptr) {
            seen[static_cast<Node*>(p)->id].fetch_add(1);
            popped.fetch_add(1);
          }
        }
      }
      // Drain phase.
      while (ttg::LifoNode* p = sched->pop(w)) {
        seen[static_cast<Node*>(p)->id].fetch_add(1);
        popped.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  // A final drain from worker 0 catches anything left in shared queues.
  while (ttg::LifoNode* p = sched->pop(0)) {
    seen[static_cast<Node*>(p)->id].fetch_add(1);
    popped.fetch_add(1);
  }
  EXPECT_EQ(popped.load(), total);
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, SchedulerDrainTest,
    ::testing::Combine(::testing::Values(SchedulerType::kLFQ,
                                         SchedulerType::kLL,
                                         SchedulerType::kLLP,
                                         SchedulerType::kGD,
                                         SchedulerType::kAP),
                       ::testing::Values(1, 2, 4)),
    [](const auto& info) {
      return std::string(ttg::to_string(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "threads";
    });

class ExternalPushTest : public ::testing::TestWithParam<SchedulerType> {};

TEST_P(ExternalPushTest, ExternalSubmissionsReachWorkers) {
  auto sched = ttg::make_scheduler(GetParam(), 2);
  Node nodes[10];
  for (int i = 0; i < 10; ++i) {
    nodes[i].id = i;
    sched->push(ttg::kExternalWorker, &nodes[i]);
  }
  int count = 0;
  while (sched->pop(0) != nullptr || sched->pop(1) != nullptr) ++count;
  EXPECT_EQ(count, 10);
}

TEST_P(ExternalPushTest, ChainPushDeliversAll) {
  auto sched = ttg::make_scheduler(GetParam(), 2);
  Node nodes[5];
  for (int i = 0; i < 5; ++i) {
    nodes[i].id = i;
    nodes[i].priority = 5 - i;  // descending, as push_chain requires
    nodes[i].next = (i < 4) ? &nodes[i + 1] : nullptr;
  }
  sched->push_chain(0, &nodes[0]);
  int count = 0;
  while (sched->pop(0) != nullptr) ++count;
  EXPECT_EQ(count, 5);
}

INSTANTIATE_TEST_SUITE_P(AllSchedulers, ExternalPushTest,
                         ::testing::Values(SchedulerType::kLFQ,
                                           SchedulerType::kLL,
                                           SchedulerType::kLLP,
                                           SchedulerType::kGD,
                                           SchedulerType::kAP));

// ------------------------------------------------------------ LLP specifics

TEST(LlpScheduler, HighestPrioritySelectedFirst) {
  ttg::LlpScheduler sched(1);
  Node nodes[6];
  const int prios[6] = {2, 9, 4, 9, 1, 7};
  for (int i = 0; i < 6; ++i) {
    nodes[i].id = i;
    nodes[i].priority = prios[i];
    sched.push(0, &nodes[i]);
  }
  // Pops must be non-increasing in priority.
  int last = 1000;
  for (int i = 0; i < 6; ++i) {
    Node* n = static_cast<Node*>(sched.pop(0));
    ASSERT_NE(n, nullptr);
    EXPECT_LE(n->priority, last);
    last = n->priority;
  }
}

TEST(LlpScheduler, NewTaskWinsPriorityTie) {
  // "new tasks will be inserted before old tasks that have the same
  // priority" (Sec. IV-C) — favoring cache-warm data.
  ttg::LlpScheduler sched(1);
  Node old_task, new_task;
  old_task.id = 1;
  old_task.priority = 5;
  new_task.id = 2;
  new_task.priority = 5;
  sched.push(0, &old_task);
  sched.push(0, &new_task);
  EXPECT_EQ(static_cast<Node*>(sched.pop(0))->id, 2);
  EXPECT_EQ(static_cast<Node*>(sched.pop(0))->id, 1);
}

TEST(LlpScheduler, SlowPathInsertKeepsOrder) {
  ttg::LlpScheduler sched(1);
  Node a, b, c;
  a.priority = 9;
  b.priority = 5;
  c.priority = 7;  // lower than head (9): slow path insertion
  sched.push(0, &a);
  sched.push(0, &b);  // slow path: 5 < 9
  sched.push(0, &c);  // slow path: 7 < 9, lands between
  EXPECT_EQ(static_cast<Node*>(sched.pop(0))->priority, 9);
  EXPECT_EQ(static_cast<Node*>(sched.pop(0))->priority, 7);
  EXPECT_EQ(static_cast<Node*>(sched.pop(0))->priority, 5);
}

TEST(LlpScheduler, StealFromBusyNeighbor) {
  ttg::LlpScheduler sched(2);
  Node nodes[4];
  for (auto& n : nodes) sched.push(0, &n);  // all on worker 0
  // Worker 1 finds work by stealing.
  EXPECT_NE(sched.pop(1), nullptr);
  EXPECT_NE(sched.pop(1), nullptr);
  EXPECT_NE(sched.pop(0), nullptr);
  EXPECT_NE(sched.pop(0), nullptr);
  EXPECT_EQ(sched.pop(0), nullptr);
}

TEST(LlpScheduler, SortedChainMergesByPriority) {
  ttg::LlpScheduler sched(1);
  Node existing[2];
  existing[0].priority = 8;
  existing[1].priority = 2;
  sched.push(0, &existing[0]);
  sched.push(0, &existing[1]);
  // Chain of priorities {9, 5} (descending, as required).
  Node chain[2];
  chain[0].priority = 9;
  chain[1].priority = 5;
  chain[0].next = &chain[1];
  chain[1].next = nullptr;
  sched.push_chain(0, &chain[0]);
  const int expect[4] = {9, 8, 5, 2};
  for (int i = 0; i < 4; ++i) {
    Node* n = static_cast<Node*>(sched.pop(0));
    ASSERT_NE(n, nullptr);
    EXPECT_EQ(n->priority, expect[i]) << "position " << i;
  }
}

// ------------------------------------------------------------- AP specifics

TEST(ApScheduler, StrictGlobalPriorityOrder) {
  // AP's selling point: priorities hold globally, not just per thread.
  ttg::ApScheduler sched(2);
  Node nodes[8];
  const int prios[8] = {3, 1, 4, 1, 5, 9, 2, 6};
  for (int i = 0; i < 8; ++i) {
    nodes[i].priority = prios[i];
    sched.push(i % 2, &nodes[i]);
  }
  int last = 1000;
  for (int i = 0; i < 8; ++i) {
    Node* n = static_cast<Node*>(sched.pop(i % 2));
    ASSERT_NE(n, nullptr);
    EXPECT_LE(n->priority, last);
    last = n->priority;
  }
  EXPECT_EQ(sched.pop(0), nullptr);
}

TEST(GdScheduler, GlobalFifoOrder) {
  ttg::GdScheduler sched(2);
  Node nodes[4];
  for (int i = 0; i < 4; ++i) {
    nodes[i].id = i;
    sched.push(i % 2, &nodes[i]);
  }
  // Any worker pops in global FIFO order.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(static_cast<Node*>(sched.pop(1))->id, i);
  }
}

// ------------------------------------------------------------ LFQ specifics

TEST(LfqScheduler, OverflowsToGlobalFifo) {
  ttg::LfqScheduler sched(1);
  std::vector<Node> nodes(ttg::LfqScheduler::kLocalCapacity + 5);
  for (auto& n : nodes) sched.push(0, &n);
  // The bounded buffer holds kLocalCapacity; the rest landed in the
  // global FIFO — the contention point of Fig. 6.
  EXPECT_EQ(sched.overflow_size(), 5u);
  int count = 0;
  while (sched.pop(0) != nullptr) ++count;
  EXPECT_EQ(count, static_cast<int>(nodes.size()));
}

TEST(LfqScheduler, KeepsHighPriorityLocal) {
  ttg::LfqScheduler sched(1);
  std::vector<Node> low(ttg::LfqScheduler::kLocalCapacity);
  for (auto& n : low) {
    n.priority = 1;
    sched.push(0, &n);
  }
  Node high;
  high.priority = 10;
  sched.push(0, &high);
  // The high-priority task displaced a low one into the FIFO and is the
  // first choice of the local pop.
  EXPECT_EQ(sched.overflow_size(), 1u);
  EXPECT_EQ(static_cast<Node*>(sched.pop(0)), &high);
}

}  // namespace

namespace {

// ------------------------------------------------------------- steal order

TEST(StealOrder, FlatOrderIsRing) {
  ttg::StealOrder order(4, 0);
  EXPECT_EQ(order.victims(0), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(order.victims(2), (std::vector<int>{3, 0, 1}));
}

TEST(StealOrder, DomainSiblingsComeFirst) {
  // 8 workers in domains of 4: {0..3} and {4..7}.
  ttg::StealOrder order(8, 4);
  EXPECT_EQ(order.victims(1), (std::vector<int>{2, 3, 0, 4, 5, 6, 7}));
  EXPECT_EQ(order.victims(6), (std::vector<int>{7, 4, 5, 0, 1, 2, 3}));
}

TEST(StealOrder, UnevenLastDomain) {
  // 6 workers, domains of 4: {0..3} and {4, 5}.
  ttg::StealOrder order(6, 4);
  EXPECT_EQ(order.victims(5), (std::vector<int>{4, 0, 1, 2, 3}));
  // Every victim list covers all other workers exactly once.
  for (int w = 0; w < 6; ++w) {
    auto v = order.victims(w);
    std::sort(v.begin(), v.end());
    std::vector<int> expect;
    for (int i = 0; i < 6; ++i) {
      if (i != w) expect.push_back(i);
    }
    EXPECT_EQ(v, expect) << "worker " << w;
  }
}

TEST(StealOrder, SchedulersDrainWithDomains) {
  for (auto type : {SchedulerType::kLFQ, SchedulerType::kLL,
                    SchedulerType::kLLP}) {
    auto sched = ttg::make_scheduler(type, 6, /*steal_domain_size=*/2);
    std::vector<Node> nodes(300);
    for (auto& n : nodes) sched->push(0, &n);
    int count = 0;
    for (int w = 0; w < 6; ++w) {
      while (sched->pop(w) != nullptr) ++count;
    }
    EXPECT_EQ(count, 300) << ttg::to_string(type);
  }
}

}  // namespace
