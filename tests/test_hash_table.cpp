#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "structures/hash_table.hpp"

namespace {

struct Item : ttg::HashItemBase {
  std::uint64_t key = 0;
  int payload = 0;
};

auto key_eq(std::uint64_t key) {
  return [key](const ttg::HashItemBase* item) {
    return static_cast<const Item*>(item)->key == key;
  };
}

Item* make_item(std::uint64_t key, int payload = 0) {
  auto* item = new Item;
  item->key = key;
  item->hash = ttg::mix64(key);
  item->payload = payload;
  return item;
}

void insert_item(ttg::ScalableHashTable& table, Item* item) {
  auto acc = table.lock_key(item->hash);
  acc.insert(item);
}

Item* find_item(ttg::ScalableHashTable& table, std::uint64_t key) {
  auto acc = table.lock_key(ttg::mix64(key));
  return static_cast<Item*>(acc.find(key_eq(key)));
}

Item* remove_item(ttg::ScalableHashTable& table, std::uint64_t key) {
  auto acc = table.lock_key(ttg::mix64(key));
  return static_cast<Item*>(acc.remove(key_eq(key)));
}

TEST(HashTable, InsertFindRemove) {
  ttg::ScalableHashTable table(4);
  Item* item = make_item(42, 7);
  insert_item(table, item);
  EXPECT_EQ(table.size(), 1u);
  Item* found = find_item(table, 42);
  ASSERT_EQ(found, item);
  EXPECT_EQ(found->payload, 7);
  Item* removed = remove_item(table, 42);
  EXPECT_EQ(removed, item);
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(find_item(table, 42), nullptr);
  delete item;
}

TEST(HashTable, MissingKeyIsAbsent) {
  ttg::ScalableHashTable table(4);
  EXPECT_EQ(find_item(table, 9999), nullptr);
  EXPECT_EQ(remove_item(table, 9999), nullptr);
}

TEST(HashTable, HashCollisionsResolvedByPredicate) {
  ttg::ScalableHashTable table(2);
  // Two items with identical hash but different keys.
  auto* a = new Item;
  auto* b = new Item;
  a->key = 1;
  b->key = 2;
  a->hash = b->hash = 0x1234;
  a->payload = 10;
  b->payload = 20;
  {
    auto acc = table.lock_key(0x1234);
    acc.insert(a);
    acc.insert(b);
  }
  {
    auto acc = table.lock_key(0x1234);
    auto* f1 = static_cast<Item*>(acc.find(key_eq(1)));
    auto* f2 = static_cast<Item*>(acc.find(key_eq(2)));
    ASSERT_NE(f1, nullptr);
    ASSERT_NE(f2, nullptr);
    EXPECT_EQ(f1->payload, 10);
    EXPECT_EQ(f2->payload, 20);
  }
  delete remove_item(table, 1);
  delete remove_item(table, 2);
}

TEST(HashTable, GrowsByChainingTables) {
  // Tiny table + low threshold: inserting many keys must chain new main
  // tables (Fig. 3) rather than rehashing in place.
  ttg::ScalableHashTable table(/*initial_log2_buckets=*/1,
                               /*fill_threshold=*/4);
  constexpr int kN = 256;
  std::vector<Item*> items;
  for (int i = 0; i < kN; ++i) {
    items.push_back(make_item(static_cast<std::uint64_t>(i), i));
    insert_item(table, items.back());
  }
  EXPECT_EQ(table.size(), static_cast<std::size_t>(kN));
  EXPECT_GT(table.num_tables(), 1);
  EXPECT_GT(table.main_table_buckets(), 2u);
  // Every key stays findable across the chain.
  for (int i = 0; i < kN; ++i) {
    Item* f = find_item(table, static_cast<std::uint64_t>(i));
    ASSERT_NE(f, nullptr) << "key " << i;
    EXPECT_EQ(f->payload, i);
  }
  for (auto* item : items) {
    EXPECT_EQ(remove_item(table, item->key), item);
    delete item;
  }
  EXPECT_EQ(table.size(), 0u);
}

TEST(HashTable, FindMigratesFromOldTables) {
  ttg::ScalableHashTable table(1, 4);
  std::vector<Item*> items;
  for (int i = 0; i < 64; ++i) {
    items.push_back(make_item(static_cast<std::uint64_t>(i)));
    insert_item(table, items.back());
  }
  ASSERT_GT(table.num_tables(), 1);
  // Touch every key: finds migrate entries into the main table, draining
  // old tables, which then get retired.
  for (auto* item : items) {
    EXPECT_NE(find_item(table, item->key), nullptr);
  }
  table.retire_empty_tables();
  EXPECT_EQ(table.num_tables(), 1);
  EXPECT_EQ(table.size(), items.size());
  for (auto* item : items) {
    delete remove_item(table, item->key);
  }
}

TEST(HashTable, RemoveDrainsOldTablesAndRetires) {
  ttg::ScalableHashTable table(1, 4);
  std::vector<Item*> items;
  for (int i = 0; i < 64; ++i) {
    items.push_back(make_item(static_cast<std::uint64_t>(i)));
    insert_item(table, items.back());
  }
  ASSERT_GT(table.num_tables(), 1);
  for (auto* item : items) {
    delete remove_item(table, item->key);
  }
  EXPECT_EQ(table.size(), 0u);
  table.retire_empty_tables();
  EXPECT_EQ(table.num_tables(), 1);
}

TEST(HashTable, ForEachVisitsEverything) {
  ttg::ScalableHashTable table(1, 4);
  std::vector<Item*> items;
  for (int i = 0; i < 40; ++i) {
    items.push_back(make_item(static_cast<std::uint64_t>(i)));
    insert_item(table, items.back());
  }
  std::uint64_t key_sum = 0;
  int count = 0;
  table.for_each_exclusive([&](ttg::HashItemBase* item) {
    key_sum += static_cast<Item*>(item)->key;
    ++count;
  });
  EXPECT_EQ(count, 40);
  EXPECT_EQ(key_sum, 40u * 39u / 2u);
  for (auto* item : items) delete remove_item(table, item->key);
}

struct StressParams {
  int threads;
  int keys_per_thread;
};

class HashTableStressTest
    : public ::testing::TestWithParam<StressParams> {};

TEST_P(HashTableStressTest, ConcurrentInsertFindRemove) {
  const auto [nthreads, nkeys] = GetParam();
  ttg::ScalableHashTable table(2, 8);
  std::atomic<int> found_errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < nthreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread owns a disjoint key range and hammers the typical
      // TTG pattern: lock key -> find -> insert/remove -> unlock.
      const std::uint64_t base =
          static_cast<std::uint64_t>(t) * 1000000ULL;
      std::vector<Item*> mine;
      for (int i = 0; i < nkeys; ++i) {
        Item* item = make_item(base + i, i);
        {
          auto acc = table.lock_key(item->hash);
          if (acc.find(key_eq(item->key)) != nullptr) {
            found_errors.fetch_add(1);
          }
          acc.insert(item);
        }
        mine.push_back(item);
        // Periodically remove half of what we inserted.
        if (i % 2 == 1) {
          Item* victim = mine[mine.size() - 2];
          auto acc = table.lock_key(victim->hash);
          auto* removed =
              static_cast<Item*>(acc.remove(key_eq(victim->key)));
          acc.release();
          if (removed != victim) {
            found_errors.fetch_add(1);
          } else {
            delete removed;
          }
          mine.erase(mine.end() - 2);
        }
      }
      // Everything we still own must be present with the right payload.
      for (Item* item : mine) {
        auto acc = table.lock_key(item->hash);
        auto* f = static_cast<Item*>(acc.find(key_eq(item->key)));
        if (f != item) found_errors.fetch_add(1);
      }
      for (Item* item : mine) {
        auto acc = table.lock_key(item->hash);
        auto* removed = static_cast<Item*>(acc.remove(key_eq(item->key)));
        acc.release();
        if (removed == item) {
          delete removed;
        } else {
          found_errors.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(found_errors.load(), 0);
  EXPECT_EQ(table.size(), 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Load, HashTableStressTest,
    ::testing::Values(StressParams{1, 2000}, StressParams{2, 2000},
                      StressParams{4, 1500}, StressParams{8, 800}));

// ------------------------------------------------------------ delegated mode

/// Test operation for the publication list: bumps a counter owned by the
/// test when applied. The apply callback owns and deletes the node.
struct CountOp : ttg::ScalableHashTable::PubNode {
  std::uint64_t* counter = nullptr;
};

struct DelegateOwner {
  std::uint64_t applied = 0;  // ops applied through the callback

  static void apply(void* owner, ttg::ScalableHashTable::Accessor& acc,
                    ttg::ScalableHashTable::PubNode* node) {
    (void)acc;
    auto* self = static_cast<DelegateOwner*>(owner);
    auto* op = static_cast<CountOp*>(node);
    ++*op->counter;
    ++self->applied;
    delete op;
  }
};

TEST(HashTableDelegated, ModeAndDelegateQueries) {
  ttg::ScalableHashTable plain(4);
  EXPECT_EQ(plain.mode(), ttg::PendingTableMode::kBucketLock);
  EXPECT_FALSE(plain.delegated());

  ttg::ScalableHashTable table(4, 16, ttg::kMaxThreads,
                               ttg::PendingTableMode::kDelegated);
  EXPECT_EQ(table.mode(), ttg::PendingTableMode::kDelegated);
  // Without a delegate callback the mode degrades to plain locking.
  EXPECT_FALSE(table.delegated());
  DelegateOwner owner;
  table.set_delegate(&owner, &DelegateOwner::apply);
  EXPECT_TRUE(table.delegated());
}

TEST(HashTableDelegated, UncontendedTryLockBehavesLikeLockKey) {
  ttg::ScalableHashTable table(4, 16, ttg::kMaxThreads,
                               ttg::PendingTableMode::kDelegated);
  DelegateOwner owner;
  table.set_delegate(&owner, &DelegateOwner::apply);

  Item* item = make_item(7, 70);
  {
    auto acc = table.lock_key_delegated(item->hash);
    ASSERT_TRUE(acc.owns_bucket());  // nobody holds the bucket
    EXPECT_EQ(acc.find(key_eq(7)), nullptr);
    acc.insert(item);
  }
  {
    auto acc = table.lock_key_delegated(item->hash);
    ASSERT_TRUE(acc.owns_bucket());
    auto* f = static_cast<Item*>(acc.find_hash(item->hash, key_eq(7)));
    ASSERT_EQ(f, item);
    EXPECT_EQ(f->payload, 70);
    EXPECT_EQ(acc.remove_hash(item->hash, key_eq(7)), item);
  }
  EXPECT_EQ(table.size(), 0u);
  EXPECT_EQ(owner.applied, 0u);  // never contended, nothing delegated
  delete item;
}

TEST(HashTableDelegated, BlockedPublisherOpAppliedByLockHolder) {
  ttg::ScalableHashTable table(4, 16, ttg::kMaxThreads,
                               ttg::PendingTableMode::kDelegated);
  DelegateOwner owner;
  table.set_delegate(&owner, &DelegateOwner::apply);

  const std::uint64_t hash = ttg::mix64(99);
  std::uint64_t counter = 0;
  const auto stats_before = ttg::pending_table_stats();

  std::atomic<bool> holder_ready{false};
  std::atomic<bool> publisher_done{false};
  std::thread holder([&] {
    auto acc = table.lock_key(hash);  // pin the bucket
    holder_ready.store(true);
    while (!publisher_done.load()) std::this_thread::yield();
    // release() (via ~Accessor) is the combiner: it must drain and apply
    // the queued op before the bucket goes quiescent.
  });
  while (!holder_ready.load()) std::this_thread::yield();

  auto acc = table.lock_key_delegated(hash);
  if (!acc.owns_bucket()) {
    auto* op = new CountOp;
    op->counter = &counter;
    acc.publish(op);
    if (acc.owns_bucket()) {
      // The holder slipped out between our push and try_lock: we became
      // the combiner of our own op; release() applies it below.
    }
  } else {
    // Improbable (holder owns the lock), but handle it: apply directly.
    ++counter;
  }
  acc.release();
  publisher_done.store(true);
  holder.join();

  EXPECT_EQ(counter, 1u);
  EXPECT_EQ(owner.applied, counter);
  const auto stats_after = ttg::pending_table_stats();
  EXPECT_EQ(stats_after.delegations - stats_before.delegations,
            stats_after.combined - stats_before.combined);
}

TEST(HashTableDelegated, ConcurrentPublishersApplyExactlyOnce) {
  ttg::ScalableHashTable table(2, 64, ttg::kMaxThreads,
                               ttg::PendingTableMode::kDelegated);
  DelegateOwner owner;
  table.set_delegate(&owner, &DelegateOwner::apply);

  // All threads hammer ONE bucket so the publication path actually runs.
  const std::uint64_t hash = ttg::mix64(1);
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 5000;
  std::uint64_t counter = 0;  // guarded by the bucket lock

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        auto acc = table.lock_key_delegated(hash);
        if (acc.owns_bucket()) {
          ++counter;  // inline: we hold the lock
        } else {
          auto* op = new CountOp;
          op->counter = &counter;
          acc.publish(op);
          // publish() may have acquired the lock; either way release()
          // below drains whatever is queued if we are the combiner.
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(counter,
            static_cast<std::uint64_t>(kThreads) * kOpsPerThread);
  // Every op that was ever queued got combined by somebody.
  const auto stats = ttg::pending_table_stats();
  EXPECT_GE(stats.combined, owner.applied);
}

TEST(HashTableDelegated, StressInsertRemoveBothModes) {
  // The exact stress body from HashTableStressTest, run in delegated
  // mode with disjoint keys: uncontended buckets must behave identically
  // to kBucketLock (try_lock succeeds, no ops queued).
  for (ttg::PendingTableMode mode :
       {ttg::PendingTableMode::kBucketLock,
        ttg::PendingTableMode::kDelegated}) {
    ttg::ScalableHashTable table(2, 8, ttg::kMaxThreads, mode);
    DelegateOwner owner;
    table.set_delegate(&owner, &DelegateOwner::apply);
    std::atomic<int> errors{0};
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&, t] {
        const std::uint64_t base = static_cast<std::uint64_t>(t) * 1000000ULL;
        for (int i = 0; i < 500; ++i) {
          Item* item = make_item(base + i, i);
          {
            auto acc = table.lock_key(item->hash);
            acc.insert(item);
          }
          auto acc = table.lock_key(item->hash);
          auto* removed = static_cast<Item*>(acc.remove(key_eq(item->key)));
          acc.release();
          if (removed != item) errors.fetch_add(1);
          delete item;
        }
      });
    }
    for (auto& t : threads) t.join();
    EXPECT_EQ(errors.load(), 0);
    EXPECT_EQ(table.size(), 0u);
  }
}

}  // namespace
