// Suspendable coroutine task bodies (docs/coroutines.md): ttg::resumable
// bodies co_await ttg::yield / ttg::suspend_until / ttg::InputGate and
// execute as segment chains through the normal scheduler path.
//
// The invariants under test: a body that never suspends behaves exactly
// like a plain one; suspended tasks release their worker and resume as
// ready continuations; the census stays exact (every suspension is one
// extra discovery matched by one extra segment completion, so
// discovered == completed after every fence); a parked task holds its
// World's pending count above zero (discovered-but-not-complete for
// termination detection); body exceptions in any segment fail the epoch
// like a plain throw; recording epochs reject coroutine TTs cleanly;
// and — the acceptance bar — 64 sleepers on the timer wheel occupy no
// worker, so a concurrent compute tenant finishes while they sleep.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "runtime/coroutine.hpp"
#include "ttg/ttg.hpp"

namespace {

using namespace std::chrono_literals;

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

TEST(Coroutine, BodyWithoutSuspensionMatchesPlainPath) {
  ttg::World world(test_config());
  ttg::Edge<int, int> e("e");
  std::atomic<long> sum{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, int& v, auto&) -> ttg::resumable {
        sum.fetch_add(v, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(e), ttg::edges(), "sync", world);
  world.execute();
  long expect = 0;
  for (int k = 0; k < 100; ++k) {
    tt->send_input<0>(k, k);
    expect += k;
  }
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(sum.load(), expect);
  // No suspension: census identical to a plain TT (and balanced).
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
}

TEST(Coroutine, YieldSplitsBodyIntoSegments) {
  ttg::World world(test_config(4));
  ttg::Edge<int, ttg::Void> e("e");
  constexpr int kTasks = 32;
  constexpr int kYields = 3;
  std::atomic<int> done{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        for (int i = 0; i < kYields; ++i) co_await ttg::yield{};
        done.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(e), ttg::edges(), "yielder", world);
  const std::int64_t d0 = world.detector().total_discovered();
  world.execute();
  for (int k = 0; k < kTasks; ++k) tt->sendk_input<0>(k);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(done.load(), kTasks);
  // Books: each task is 1 discovery + kYields suspensions, each retired
  // as a segment completion — exactly balanced, nothing phantom.
  EXPECT_EQ(world.detector().total_discovered() - d0,
            static_cast<std::int64_t>(kTasks) * (1 + kYields));
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
}

TEST(Coroutine, SuspendForSleepsAndResumes) {
  ttg::World world(test_config());
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<int> done{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        co_await ttg::suspend_for(20ms);
        done.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(e), ttg::edges(), "sleeper", world);
  world.execute();
  const auto t0 = std::chrono::steady_clock::now();
  for (int k = 0; k < 8; ++k) tt->sendk_input<0>(k);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(done.load(), 8);
  EXPECT_GE(std::chrono::steady_clock::now() - t0, 20ms);
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
}

TEST(Coroutine, PastDeadlineDegradesToYield) {
  ttg::World world(test_config());
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<int> done{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        co_await ttg::suspend_until(std::chrono::steady_clock::now() - 1s);
        done.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(e), ttg::edges(), "past", world);
  world.execute();
  tt->sendk_input<0>(0);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(done.load(), 1);
}

TEST(Coroutine, InputGateParksUntilFulfilled) {
  ttg::World world(test_config());
  ttg::InputGate<int> gate(world);
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<int> before{0};
  std::atomic<int> got{-1};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        before.fetch_add(1, std::memory_order_relaxed);
        const int v = co_await gate;
        got.store(v, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(e), ttg::edges(), "await", world);
  world.execute();
  tt->sendk_input<0>(0);
  // The first segment runs and parks; the task is discovered but not
  // complete, so the census holds the epoch open while it waits.
  while (before.load(std::memory_order_relaxed) == 0) {
    std::this_thread::yield();
  }
  EXPECT_EQ(got.load(), -1);
  EXPECT_GT(world.detector().total_discovered(),
            world.detector().total_completed());
  gate.fulfill(42);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(got.load(), 42);
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
}

TEST(Coroutine, OneFulfillWakesEveryWaiter) {
  ttg::World world(test_config(4));
  ttg::InputGate<std::string> gate(world);
  ttg::Edge<int, ttg::Void> e("e");
  constexpr int kWaiters = 16;
  std::atomic<int> parked{0};
  std::atomic<int> woke{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        parked.fetch_add(1, std::memory_order_relaxed);
        const std::string& v = co_await gate;
        if (v == "broadcast") woke.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(e), ttg::edges(), "waiters", world);
  world.execute();
  for (int k = 0; k < kWaiters; ++k) tt->sendk_input<0>(k);
  while (parked.load(std::memory_order_relaxed) < kWaiters) {
    std::this_thread::yield();
  }
  gate.fulfill(std::string("broadcast"));
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(woke.load(), kWaiters);
}

TEST(Coroutine, LateWaiterContinuesWithoutSuspending) {
  ttg::World world(test_config());
  ttg::InputGate<int> gate(world);
  gate.fulfill(7);
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<int> got{-1};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        got.store(co_await gate, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(e), ttg::edges(), "late", world);
  const std::int64_t d0 = world.detector().total_discovered();
  world.execute();
  tt->sendk_input<0>(0);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(got.load(), 7);
  // await_ready short-circuited: one task, zero suspensions.
  EXPECT_EQ(world.detector().total_discovered() - d0, 1);
}

TEST(Coroutine, SendsAfterResumeReachSuccessors) {
  // A coroutine producer sends to a plain consumer *after* two different
  // kinds of suspension — the copy-registry snapshot must keep rvalue
  // ownership transfer working across segments (and workers).
  ttg::World world(test_config(4));
  ttg::InputGate<int> gate(world);
  ttg::Edge<int, ttg::Void> go("go");
  ttg::Edge<int, long> out("out");
  std::atomic<long> sum{0};
  std::atomic<int> parked{0};
  auto consumer = ttg::make_tt<int>(
      [&](const int&, long& v, auto&) {
        sum.fetch_add(v, std::memory_order_relaxed);
      },
      ttg::edges(out), ttg::edges(), "consumer", world);
  auto producer = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto& outs) -> ttg::resumable {
        co_await ttg::yield{};
        parked.fetch_add(1, std::memory_order_relaxed);
        const int g = co_await gate;
        ttg::send<0>(k, static_cast<long>(k + g), outs);
        co_return;
      },
      ttg::edges(go), ttg::edges(out), "producer", world);
  constexpr int kTasks = 12;
  world.execute();
  for (int k = 0; k < kTasks; ++k) producer->sendk_input<0>(k);
  while (parked.load(std::memory_order_relaxed) < kTasks) {
    std::this_thread::yield();
  }
  gate.fulfill(1000);
  ASSERT_TRUE(world.wait().ok());
  long expect = 0;
  for (int k = 0; k < kTasks; ++k) expect += k + 1000;
  EXPECT_EQ(sum.load(), expect);
  (void)consumer;
}

TEST(Coroutine, ExceptionInFirstSegmentFailsEpoch) {
  ttg::World world(test_config());
  ttg::Edge<int, ttg::Void> e("e");
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        throw std::runtime_error("segment-0 boom");
        co_return;
      },
      ttg::edges(e), ttg::edges(), "thrower", world);
  world.execute();
  tt->sendk_input<0>(0);
  const ttg::Status st = world.wait();
  ASSERT_TRUE(st.failed());
  EXPECT_NE(st.reason.find("segment-0 boom"), std::string::npos) << st.reason;
  EXPECT_THROW(world.rethrow(), std::runtime_error);
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
}

TEST(Coroutine, ExceptionAfterResumeFailsEpoch) {
  // The throw happens in a *later* segment, on whatever worker ran the
  // resume: the promise captures it, the final resumer rethrows into
  // the standard failure path.
  ttg::World world(test_config(4));
  ttg::Edge<int, ttg::Void> e("e");
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto&) -> ttg::resumable {
        co_await ttg::yield{};
        co_await ttg::suspend_for(1ms);
        if (k == 3) throw std::runtime_error("late boom");
        co_return;
      },
      ttg::edges(e), ttg::edges(), "late-thrower", world);
  world.execute();
  for (int k = 0; k < 8; ++k) tt->sendk_input<0>(k);
  const ttg::Status st = world.wait();
  ASSERT_TRUE(st.failed());
  EXPECT_NE(st.reason.find("late boom"), std::string::npos) << st.reason;
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
  // The world recovers for the next epoch.
  world.execute();
  tt->sendk_input<0>(100);
  EXPECT_TRUE(world.wait().ok());
}

TEST(Coroutine, DirectCallOutsideRuntimeThrows) {
  // The promise constructor refuses bodies started outside a TT: there
  // is no Host to park against.
  auto body = [](int) -> ttg::resumable { co_return; };
  EXPECT_THROW((void)body(1), std::logic_error);
}

TEST(Coroutine, RecordingRejectsSuspendableBody) {
  ttg::World world(test_config());
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<int> ran{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        ran.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(e), ttg::edges(), "unrecordable", world);
  // Dynamic epochs work.
  world.execute();
  tt->sendk_input<0>(0);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(ran.load(), 1);
  // A recording epoch rejects the delivery before any discovery: the
  // seeder gets the error synchronously and the epoch stays empty.
  world.begin_recording();
  EXPECT_THROW(tt->sendk_input<0>(1), ttg::ReplayDiverged);
  ASSERT_TRUE(world.wait().ok());
  (void)world.end_recording();
  EXPECT_EQ(ran.load(), 1);
  // Back in dynamic mode everything still runs.
  world.execute();
  tt->sendk_input<0>(2);
  ASSERT_TRUE(world.wait().ok());
  EXPECT_EQ(ran.load(), 2);
}

TEST(Coroutine, SuspendedTasksReleaseTheirWorkers) {
  // Acceptance (ISSUE 9): 64 sleepers parked on the timer wheel occupy
  // no worker. Both tenants share one 2-thread engine pool; if even one
  // sleeper held its worker through the sleep, the compute tenant's
  // serial chain could not finish before the sleepers wake.
  ttg::RuntimeOptions opts;
  opts.config = test_config(2);
  ttg::Runtime rt(opts);
  auto sleepers = rt.make_world();
  auto compute = rt.make_world();

  constexpr int kSleepers = 64;
  constexpr auto kNap = 300ms;
  ttg::Edge<int, ttg::Void> se("sleep");
  std::atomic<int> napped{0};
  auto sleep_tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) -> ttg::resumable {
        co_await ttg::suspend_for(kNap);
        napped.fetch_add(1, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(se), ttg::edges(), "nap", *sleepers);

  ttg::Edge<int, ttg::Void> ce("chain");
  constexpr int kChain = 4000;
  std::atomic<int> chained{0};
  auto chain_tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto& outs) {
        chained.fetch_add(1, std::memory_order_relaxed);
        if (k + 1 < kChain) ttg::sendk<0>(k + 1, outs);
      },
      ttg::edges(ce), ttg::edges(ce), "chain", *compute);

  ttg::Submission nap_epoch = sleepers->execute();
  for (int k = 0; k < kSleepers; ++k) sleep_tt->sendk_input<0>(k);
  // Give the sleepers time to actually park (64 > 2 workers: they can
  // only all be "in flight" at once by releasing their workers).
  while (sleepers->total_tasks_executed() < kSleepers) {
    std::this_thread::yield();
  }
  EXPECT_EQ(napped.load(), 0) << "sleepers woke before the nap elapsed";

  const auto t0 = std::chrono::steady_clock::now();
  ttg::Submission chain_epoch = compute->execute();
  chain_tt->sendk_input<0>(0);
  ASSERT_TRUE(chain_epoch.wait().ok());
  const auto compute_time = std::chrono::steady_clock::now() - t0;
  EXPECT_EQ(chained.load(), kChain);
  // The compute tenant finished on workers the sleepers released. (The
  // chain is serial, so this also cannot pass by one lucky free thread
  // racing 63 blocked ones — there are only 2.)
  EXPECT_LT(compute_time, kNap)
      << "compute tenant should finish while all 64 sleepers are parked";

  ASSERT_TRUE(nap_epoch.wait().ok());
  EXPECT_EQ(napped.load(), kSleepers);
}

TEST(Coroutine, ManyGatesManySleepersStress) {
  // Mixed rendezvous under a small pool: every task parks on its own
  // gate AND the timer wheel; a fulfiller thread trickles the gates.
  ttg::World world(test_config(4));
  constexpr int kTasks = 64;
  std::vector<std::unique_ptr<ttg::InputGate<int>>> gates;
  gates.reserve(kTasks);
  for (int k = 0; k < kTasks; ++k) {
    gates.push_back(std::make_unique<ttg::InputGate<int>>(world));
  }
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<long> sum{0};
  std::atomic<int> parked{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&, auto&) -> ttg::resumable {
        co_await ttg::suspend_for(std::chrono::milliseconds(k % 5));
        parked.fetch_add(1, std::memory_order_relaxed);
        const int v = co_await *gates[static_cast<std::size_t>(k)];
        sum.fetch_add(v, std::memory_order_relaxed);
        co_return;
      },
      ttg::edges(e), ttg::edges(), "mixed", world);
  world.execute();
  for (int k = 0; k < kTasks; ++k) tt->sendk_input<0>(k);
  std::thread fulfiller([&] {
    for (int k = 0; k < kTasks; ++k) {
      // A gate may be fulfilled before its waiter parks (late-waiter
      // path) or after (park path) — both must deliver the value.
      gates[static_cast<std::size_t>(k)]->fulfill(k + 1);
      if (k % 8 == 0) std::this_thread::sleep_for(1ms);
    }
  });
  ASSERT_TRUE(world.wait().ok());
  fulfiller.join();
  long expect = 0;
  for (int k = 0; k < kTasks; ++k) expect += k + 1;
  EXPECT_EQ(sum.load(), expect);
  EXPECT_EQ(world.detector().total_discovered(),
            world.detector().total_completed());
}

}  // namespace
