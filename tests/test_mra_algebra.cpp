// Compressed-function algebra: inner products and gaxpy on multiwavelet
// trees, validated against analytic Gaussian integrals.
#include <gtest/gtest.h>

#include <cmath>

#include "mra/mra.hpp"

namespace {

ttg::Config test_config() {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 2;
  return cfg;
}

mra::MraParams algebra_params() {
  mra::MraParams p;
  p.k = 8;
  p.thresh = 1e-6;
  p.max_level = 12;
  return p;
}

/// Analytic <f|g> of two *normalized* Gaussians with equal exponent a:
/// exp(-a |c_f - c_g|^2 / 2), scaled to the tree's u-space by 1/L^3.
double analytic_inner(const mra::MraParams& p, const mra::Gaussian& f,
                      const mra::Gaussian& g) {
  const double dx = f.cx - g.cx, dy = f.cy - g.cy, dz = f.cz - g.cz;
  const double d2 = dx * dx + dy * dy + dz * dz;
  const double span = p.hi - p.lo;
  return std::exp(-f.expnt * d2 / 2.0) / (span * span * span);
}

TEST(MraAlgebra, SelfInnerEqualsNormSquared) {
  const auto params = algebra_params();
  const auto g = mra::Gaussian::normalized(0.3, -0.7, 0.2, 120.0);
  const auto cf = mra::compress_function(params, g, test_config());
  EXPECT_GT(cf.diffs.size(), 0u);
  EXPECT_EQ(cf.s_root.size(), params.k * params.k * params.k);
  const double n = cf.norm();
  EXPECT_NEAR(mra::inner(cf, cf), n * n, 1e-12 * n * n);
  // And the norm matches the analytic value.
  const double span = params.hi - params.lo;
  EXPECT_NEAR(n * n, 1.0 / (span * span * span), 1e-4 / (span * span * span));
}

TEST(MraAlgebra, CrossInnerMatchesAnalyticOverlap) {
  const auto params = algebra_params();
  const auto f = mra::Gaussian::normalized(0.10, 0.20, -0.10, 150.0);
  const auto g = mra::Gaussian::normalized(0.25, 0.05, 0.00, 150.0);
  const auto cf = mra::compress_function(params, f, test_config());
  const auto cg = mra::compress_function(params, g, test_config());
  const double expect = analytic_inner(params, f, g);
  const double got = mra::inner(cf, cg);
  EXPECT_NEAR(got, expect, 5e-3 * expect);
  // Symmetry.
  EXPECT_DOUBLE_EQ(got, mra::inner(cg, cf));
}

TEST(MraAlgebra, DistantGaussiansNearlyOrthogonal) {
  const auto params = algebra_params();
  const auto f = mra::Gaussian::normalized(-3.0, -3.0, -3.0, 200.0);
  const auto g = mra::Gaussian::normalized(3.0, 3.0, 3.0, 200.0);
  const auto cf = mra::compress_function(params, f, test_config());
  const auto cg = mra::compress_function(params, g, test_config());
  EXPECT_NEAR(mra::inner(cf, cg), 0.0, 1e-10);
}

TEST(MraAlgebra, GaxpyNormIdentity) {
  // ||a f + b g||^2 = a^2 <f,f> + 2ab <f,g> + b^2 <g,g>.
  const auto params = algebra_params();
  const auto f = mra::Gaussian::normalized(0.10, 0.20, -0.10, 150.0);
  const auto g = mra::Gaussian::normalized(0.25, 0.05, 0.00, 150.0);
  const auto cf = mra::compress_function(params, f, test_config());
  const auto cg = mra::compress_function(params, g, test_config());
  const double a = 2.0, b = -0.5;
  const auto sum = mra::gaxpy(a, cf, b, cg);
  const double expect = a * a * mra::inner(cf, cf) +
                        2 * a * b * mra::inner(cf, cg) +
                        b * b * mra::inner(cg, cg);
  EXPECT_NEAR(sum.norm() * sum.norm(), expect, 1e-10 * std::abs(expect));
  // The union tree covers both refinement regions.
  EXPECT_GE(sum.diffs.size(), std::max(cf.diffs.size(), cg.diffs.size()));
}

TEST(MraAlgebra, SelfCancellationIsExact) {
  const auto params = algebra_params();
  const auto g = mra::Gaussian::normalized(0.0, 0.5, -0.5, 100.0);
  const auto cf = mra::compress_function(params, g, test_config());
  const auto zero = mra::gaxpy(1.0, cf, -1.0, cf);
  EXPECT_NEAR(zero.norm(), 0.0, 1e-14);
}

TEST(MraAlgebra, LinearityOfInner) {
  // <a f + b g | h> = a <f|h> + b <g|h>.
  const auto params = algebra_params();
  const auto f = mra::Gaussian::normalized(0.1, 0.1, 0.1, 130.0);
  const auto g = mra::Gaussian::normalized(-0.2, 0.3, 0.0, 130.0);
  const auto h = mra::Gaussian::normalized(0.0, 0.0, 0.2, 130.0);
  const auto cf = mra::compress_function(params, f, test_config());
  const auto cg = mra::compress_function(params, g, test_config());
  const auto ch = mra::compress_function(params, h, test_config());
  const auto lin = mra::gaxpy(1.5, cf, -2.0, cg);
  const double lhs = mra::inner(lin, ch);
  const double rhs = 1.5 * mra::inner(cf, ch) - 2.0 * mra::inner(cg, ch);
  EXPECT_NEAR(lhs, rhs, 1e-10 * std::max(1e-6, std::abs(rhs)));
}

}  // namespace
