#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>

#include "ttg/graphviz.hpp"
#include "ttg/ttg.hpp"

namespace {

TEST(Graphviz, RendersTaskBenchShapedGraph) {
  // The paper's Fig. 2a: Init -> Point (self-loop) -> WriteBack.
  ttg::World world(ttg::Config::optimized());
  ttg::Edge<int, int> p2p("P2P"), p2w("P2W");
  ttg::Edge<int, ttg::Void> i2p("I2P");

  auto init = ttg::make_tt<int>(
      [](const int& k, const ttg::Void&, auto& outs) {
        ttg::send<0>(k, 0, outs);
      },
      ttg::edges(i2p), ttg::edges(p2p), "Init", world);
  auto point = ttg::make_tt<int>(
      [](const int& k, int& v, auto& outs) {
        if (k > 0) {
          ttg::send<0>(k - 1, v + 0, outs);
        } else {
          ttg::send<1>(k, v + 0, outs);
        }
      },
      ttg::edges(p2p), ttg::edges(p2p, p2w), "Point", world);
  auto wb = ttg::make_tt<int>([](const int&, int&, auto&) {},
                              ttg::edges(p2w), ttg::edges(), "WriteBack",
                              world);

  const std::string dot =
      ttg::graphviz({init.get(), point.get(), wb.get()}, "taskbench");

  EXPECT_NE(dot.find("digraph \"taskbench\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"Init\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"Point\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"WriteBack\""), std::string::npos);
  // Init -> Point and Point -> Point (self loop) over P2P.
  EXPECT_NE(dot.find("tt0 -> tt1 [label=\"P2P\"]"), std::string::npos);
  EXPECT_NE(dot.find("tt1 -> tt1 [label=\"P2P\"]"), std::string::npos);
  // Point -> WriteBack over P2W.
  EXPECT_NE(dot.find("tt1 -> tt2 [label=\"P2W\"]"), std::string::npos);
  // The I2P edge has no producer TT: rendered as a graph input.
  EXPECT_NE(dot.find("label=\"I2P\""), std::string::npos);
  EXPECT_NE(dot.find("in0 -> tt0"), std::string::npos);

  // The graph still executes after rendering.
  world.execute();
  init->sendk_input<0>(5);
  world.fence();
  EXPECT_EQ(world.total_tasks_executed(), 8u);  // 1 init + 6 points + 1 wb
}

TEST(Graphviz, RendersRecordedTemplate) {
  ttg::World world(ttg::Config::optimized());
  ttg::Edge<int, int> e("chain");
  std::atomic<int> last{-1};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, int& v) {
        if (k < 2) {
          ttg::send<0>(k + 1, v + 1);
        } else {
          last.store(v);
        }
      },
      ttg::edges(e), ttg::edges(e), "Step", world);

  world.begin_recording();
  tt->send_input<0>(0, 0);
  world.fence();
  auto tmpl = world.end_recording();
  ASSERT_NE(tmpl, nullptr);
  ASSERT_EQ(tmpl->num_slots(), 3u);

  const std::string dot = ttg::graphviz(*tmpl, "chain-epoch");
  // Parses structurally: digraph wrapper, one node per slot, the two
  // recorded hops, and the external seed arrow.
  EXPECT_NE(dot.find("digraph \"chain-epoch\""), std::string::npos);
  EXPECT_NE(dot.find("s0 [label=\"Step #0"), std::string::npos);
  EXPECT_NE(dot.find("s2 [label=\"Step #2"), std::string::npos);
  EXPECT_NE(dot.find("s0 -> s1 [label=\"in0\"]"), std::string::npos);
  EXPECT_NE(dot.find("s1 -> s2 [label=\"in0\"]"), std::string::npos);
  EXPECT_NE(dot.find("seed0 -> s0 [label=\"in0\"]"), std::string::npos);
  // Balanced braces — a cheap well-formedness proxy that catches a
  // truncated dump.
  EXPECT_EQ(std::count(dot.begin(), dot.end(), '{'),
            std::count(dot.begin(), dot.end(), '}'));

  // The template still replays after rendering.
  ttg::ReplayInstance instance(tmpl);
  world.execute_replay(instance);
  tt->send_input<0>(0, 10);
  world.fence();
  EXPECT_EQ(last.load(), 12);
}

TEST(Graphviz, PortsRecordWiring) {
  ttg::World world(ttg::Config::optimized());
  ttg::Edge<int, int> a("a"), b("b");
  auto tt = ttg::make_tt<int>([](const int&, int&, int&, auto&) {},
                              ttg::edges(a, b), ttg::edges(), "join",
                              world);
  ASSERT_EQ(tt->input_ports().size(), 2u);
  EXPECT_EQ(tt->input_ports()[0].edge_name, "a");
  EXPECT_EQ(tt->input_ports()[1].edge_name, "b");
  EXPECT_EQ(tt->input_ports()[0].edge, a.impl());
  EXPECT_TRUE(tt->output_ports().empty());
}

}  // namespace
