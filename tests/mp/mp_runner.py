#!/usr/bin/env python3
"""Multi-process launcher for the TCP distributed-backend tests.

Starts N ranks of an mp scenario binary on localhost and checks their
exit codes. The runner — not the ranks — binds every rendezvous socket
(127.0.0.1, port 0), so there is no port race and no stale-port leak:
each rank inherits its already-listening socket as TTG_COMM_LISTEN_FD
and learns everyone's realized address from TTG_COMM_HOSTS.

Per-rank stdout+stderr goes to <logdir>/rank<i>.log; on failure every
log is replayed to stdout so `ctest --output-on-failure` shows it.

Exit-code protocol (must match mp_scenario.cpp):
  0   rank passed
  3   rank ran but a result was wrong
  42  rank observed an EXPECTED cancellation (fault/abort scenarios)

Fault injection: --kill-rank R --kill-after S sends SIGKILL to rank R
after S seconds; the victim's exit is then expected to be the signal
death, and every survivor must exit 42 within --timeout.
"""

import argparse
import os
import signal
import socket
import subprocess
import sys
import time


def parse_args():
    p = argparse.ArgumentParser(description=__doc__)
    p.add_argument("--binary", required=True, help="mp scenario binary")
    p.add_argument("--scenario", required=True)
    p.add_argument("--ranks", type=int, default=2)
    p.add_argument("--timeout", type=float, default=120.0,
                   help="seconds before the whole run is killed")
    p.add_argument("--logdir", default=None,
                   help="per-rank log directory (default: cwd)")
    p.add_argument("--expect", choices=["ok", "cancel"], default="ok",
                   help="ok: all ranks exit 0; cancel: all (surviving) "
                        "ranks exit 42")
    p.add_argument("--kill-rank", type=int, default=None,
                   help="rank to SIGKILL mid-run (implies --expect cancel "
                        "semantics for survivors)")
    p.add_argument("--kill-after", type=float, default=1.0,
                   help="seconds to wait before the SIGKILL")
    p.add_argument("--peer-timeout-ms", type=int, default=None,
                   help="override TTG_COMM_TIMEOUT_MS for every rank")
    return p.parse_args()


def bind_listeners(n):
    socks = []
    for _ in range(n):
        s = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        s.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        s.bind(("127.0.0.1", 0))
        s.listen(n)
        s.set_inheritable(True)
        socks.append(s)
    hosts = ",".join("127.0.0.1:%d" % s.getsockname()[1] for s in socks)
    return socks, hosts


def main():
    args = parse_args()
    logdir = args.logdir or os.getcwd()
    os.makedirs(logdir, exist_ok=True)

    socks, hosts = bind_listeners(args.ranks)
    procs = []
    logs = []
    for rank in range(args.ranks):
        env = dict(os.environ)
        env["TTG_COMM_RANK"] = str(rank)
        env["TTG_COMM_SIZE"] = str(args.ranks)
        env["TTG_COMM_HOSTS"] = hosts
        env["TTG_COMM_LISTEN_FD"] = str(socks[rank].fileno())
        if args.peer_timeout_ms is not None:
            env["TTG_COMM_TIMEOUT_MS"] = str(args.peer_timeout_ms)
        log_path = os.path.join(logdir, "rank%d.log" % rank)
        logs.append(log_path)
        log = open(log_path, "wb")
        procs.append(subprocess.Popen(
            [args.binary, args.scenario],
            env=env, stdout=log, stderr=subprocess.STDOUT,
            pass_fds=[socks[rank].fileno()], close_fds=True))
        log.close()
    # The children own the listeners now.
    for s in socks:
        s.close()

    deadline = time.monotonic() + args.timeout
    if args.kill_rank is not None:
        time.sleep(args.kill_after)
        victim = procs[args.kill_rank]
        if victim.poll() is None:
            print("runner: SIGKILL rank %d" % args.kill_rank, flush=True)
            victim.send_signal(signal.SIGKILL)
        else:
            print("runner: rank %d already exited (%s) before the kill"
                  % (args.kill_rank, victim.returncode), flush=True)

    codes = [None] * args.ranks
    timed_out = False
    for rank, proc in enumerate(procs):
        remaining = deadline - time.monotonic()
        try:
            codes[rank] = proc.wait(timeout=max(0.1, remaining))
        except subprocess.TimeoutExpired:
            timed_out = True
            proc.send_signal(signal.SIGKILL)
            codes[rank] = proc.wait()

    failures = []
    if timed_out:
        failures.append("run exceeded %.0fs timeout (hang?)" % args.timeout)
    for rank, code in enumerate(codes):
        if args.kill_rank is not None and rank == args.kill_rank:
            if code != -signal.SIGKILL:
                failures.append(
                    "rank %d (victim) exited %s, expected SIGKILL death"
                    % (rank, code))
            continue
        want = 0 if args.expect == "ok" else 42
        if code != want:
            failures.append("rank %d exited %s, expected %d"
                            % (rank, code, want))

    if failures:
        print("FAIL: scenario=%s ranks=%d" % (args.scenario, args.ranks))
        for f in failures:
            print("  " + f)
        for rank, path in enumerate(logs):
            print("---- rank %d log (%s) ----" % (rank, path))
            try:
                with open(path, "rb") as f:
                    sys.stdout.write(
                        f.read().decode("utf-8", errors="replace"))
            except OSError as e:
                print("  <unreadable: %s>" % e)
        return 1
    print("PASS: scenario=%s ranks=%d codes=%s"
          % (args.scenario, args.ranks, codes))
    return 0


if __name__ == "__main__":
    sys.exit(main())
