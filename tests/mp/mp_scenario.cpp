// Multi-process test scenarios for the out-of-process TCP backend
// (docs/distributed.md). One binary, one scenario per invocation; every
// rank runs the same SPMD program. Launched by mp_runner.py, which
// binds the rendezvous sockets, exports TTG_COMM_*, and checks exit
// codes per rank.
//
// Exit protocol:
//   0   scenario ran and every local check passed
//   3   ran to completion but a result was wrong
//   42  wait() returned a non-ok Status that the scenario EXPECTED
//       (fault/abort scenarios) — anything else is a plain failure
//   2   usage / bootstrap error
#include <algorithm>
#include <atomic>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "comm/tcp.hpp"
#include "taskbench/taskbench.hpp"
#include "ttg/ttg.hpp"

namespace {

constexpr int kOk = 0;
constexpr int kUsage = 2;
constexpr int kWrong = 3;
constexpr int kExpectedCancel = 42;

int g_rank = 0;
int g_size = 1;

void logf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  std::fprintf(stderr, "[rank %d] ", g_rank);
  std::vfprintf(stderr, fmt, ap);
  std::fprintf(stderr, "\n");
  va_end(ap);
}

ttg::Config mp_config() {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 2;  // keep 4-rank runs light on a shared box
  return cfg;
}

// --- chain: a value hops key-by-key across every rank -----------------

int run_chain(ttg::World& world) {
  constexpr int kLen = 400;
  ttg::Edge<int, std::int64_t> e("chain");
  std::atomic<int> local_tasks{0};
  std::atomic<std::int64_t> last{-1};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, std::int64_t& v, auto& outs) {
        local_tasks.fetch_add(1);
        if (k < kLen) {
          ttg::send<0>(k + 1, v + 1, outs);
        } else {
          last.store(v);
        }
      },
      ttg::edges(e), ttg::edges(e), "step", world);
  tt->set_keymap([](const int& k) { return k % g_size; });

  auto epoch = world.execute();
  if (g_rank == 0) tt->send_input<0>(0, std::int64_t{0});
  const ttg::Status st = epoch.wait();
  if (!st.ok()) {
    logf("chain: epoch failed: %s", st.reason.c_str());
    return kWrong;
  }

  int expected_local = 0;
  for (int k = 0; k <= kLen; ++k) {
    if (k % g_size == g_rank) ++expected_local;
  }
  if (local_tasks.load() != expected_local) {
    logf("chain: ran %d tasks, expected %d", local_tasks.load(),
         expected_local);
    return kWrong;
  }
  const bool owns_last = kLen % g_size == g_rank;
  if (owns_last && last.load() != kLen) {
    logf("chain: final value %lld, expected %d",
         static_cast<long long>(last.load()), kLen);
    return kWrong;
  }
  logf("chain: ok (%d local tasks)", local_tasks.load());
  return kOk;
}

// --- broadcast: a rank-0 root fans one value out to every rank --------

int run_broadcast(ttg::World& world) {
  ttg::Edge<int, ttg::Void> seed("seed");
  ttg::Edge<int, std::int64_t> fan("fan");
  std::atomic<int> leaf_fired{0};
  std::atomic<std::int64_t> leaf_value{-1};

  auto leaf = ttg::make_tt<int>(
      [&](const int&, std::int64_t& v, auto&) {
        leaf_fired.fetch_add(1);
        leaf_value.store(v);
      },
      ttg::edges(fan), ttg::edges(), "leaf", world);
  leaf->set_keymap([](const int& r) { return r; });

  auto root = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto& outs) {
        for (int r = 0; r < g_size; ++r) {
          ttg::send<0>(r, std::int64_t{7777} + r, outs);
        }
      },
      ttg::edges(seed), ttg::edges(fan), "root", world);
  root->set_keymap([](const int&) { return 0; });

  auto epoch = world.execute();
  if (g_rank == 0) root->sendk_input<0>(0);
  const ttg::Status st = epoch.wait();
  if (!st.ok()) {
    logf("broadcast: epoch failed: %s", st.reason.c_str());
    return kWrong;
  }
  if (leaf_fired.load() != 1 || leaf_value.load() != 7777 + g_rank) {
    logf("broadcast: leaf fired %d times with value %lld",
         leaf_fired.load(), static_cast<long long>(leaf_value.load()));
    return kWrong;
  }
  logf("broadcast: ok");
  return kOk;
}

// --- reduce: every rank contributes; a ring accumulates to rank 0 -----

int run_reduce(ttg::World& world) {
  // Key r in [0, size) executes on rank r, adds (r+1)^2, forwards to
  // r+1; key == size lands back on rank 0 and records the total.
  ttg::Edge<int, std::int64_t> ring("ring");
  std::atomic<std::int64_t> total{-1};
  auto tt = ttg::make_tt<int>(
      [&](const int& r, std::int64_t& acc, auto& outs) {
        if (r < g_size) {
          const std::int64_t mine =
              static_cast<std::int64_t>(r + 1) * (r + 1);
          ttg::send<0>(r + 1, acc + mine, outs);
        } else {
          total.store(acc);
        }
      },
      ttg::edges(ring), ttg::edges(ring), "accum", world);
  tt->set_keymap([](const int& r) { return r % g_size; });

  auto epoch = world.execute();
  if (g_rank == 0) tt->send_input<0>(0, std::int64_t{0});
  const ttg::Status st = epoch.wait();
  if (!st.ok()) {
    logf("reduce: epoch failed: %s", st.reason.c_str());
    return kWrong;
  }
  std::int64_t expected = 0;
  for (int r = 0; r < g_size; ++r) expected += std::int64_t(r + 1) * (r + 1);
  if (g_rank == 0 && total.load() != expected) {
    logf("reduce: total %lld, expected %lld",
         static_cast<long long>(total.load()),
         static_cast<long long>(expected));
    return kWrong;
  }
  logf("reduce: ok");
  return kOk;
}

// --- stencil: Task Bench periodic 1-D halo exchange with checksums ----

int run_stencil(ttg::World& world) {
  using Key = std::pair<int, int>;  // (t, x)
  taskbench::BenchConfig cfg;
  cfg.pattern = taskbench::Pattern::kStencil1DPeriodic;
  cfg.kernel = taskbench::Kernel::kEmpty;
  cfg.width = std::max(4, 2 * g_size);  // distinct left/right neighbors
  cfg.steps = 24;
  const int W = cfg.width;
  const int T = cfg.steps;  // rows run t = 0..T inclusive; last row is T

  ttg::Edge<int, ttg::Void> seed("seed");
  // One edge per stencil input slot: 0 = left origin, 1 = center,
  // 2 = right origin (periodic).
  ttg::Edge<Key, std::uint64_t> el("left"), ec("center"), er("right");
  ttg::Edge<int, std::uint64_t> out("out");

  std::mutex last_mutex;
  std::vector<std::uint64_t> last_row(static_cast<std::size_t>(W), 0);
  std::atomic<int> last_count{0};

  auto keymap_tx = [](const Key& k) { return k.second % g_size; };
  auto keymap_x = [](const int& x) { return x % g_size; };

  // Routes the value of point (t, x) to everything that consumes it:
  // the three input slots of its t+1 neighbors, or the collector when
  // t == T. Used identically by the source row and the stencil body.
  auto emit = [W, T](int t, int x, std::uint64_t v, auto& outs) {
    if (t == T) {
      ttg::send<3>(x, v, outs);
      return;
    }
    for (int sx : {(x - 1 + W) % W, x, (x + 1) % W}) {
      const Key next{t + 1, sx};
      if (x == (sx - 1 + W) % W && x != sx) {
        ttg::send<0>(next, std::uint64_t{v}, outs);  // x is sx's left
      } else if (x == sx) {
        ttg::send<1>(next, std::uint64_t{v}, outs);
      } else {
        ttg::send<2>(next, std::uint64_t{v}, outs);  // x is sx's right
      }
    }
  };

  auto stencil = ttg::make_tt<Key>(
      [&, W, T](const Key& k, std::uint64_t& lv, std::uint64_t& cv,
                std::uint64_t& rv, auto& outs) {
        const auto [t, x] = k;
        // combine() wants dep values ordered by origin x ascending,
        // matching dependencies(); sort (origin, value) pairs.
        std::pair<int, std::uint64_t> by_origin[3] = {
            {(x - 1 + W) % W, lv}, {x, cv}, {(x + 1) % W, rv}};
        std::sort(std::begin(by_origin), std::end(by_origin));
        std::uint64_t vals[3] = {by_origin[0].second, by_origin[1].second,
                                 by_origin[2].second};
        taskbench::run_kernel(cfg, t, x);
        const std::uint64_t v = taskbench::combine(t, x, vals, 3);
        emit(t, x, v, outs);
      },
      ttg::edges(el, ec, er), ttg::edges(el, ec, er, out), "stencil",
      world);
  stencil->set_keymap(keymap_tx);

  auto source = ttg::make_tt<int>(
      [&](const int& x, const ttg::Void&, auto& outs) {
        emit(0, x, taskbench::seed_value(x), outs);
      },
      ttg::edges(seed), ttg::edges(el, ec, er, out), "source", world);
  source->set_keymap(keymap_x);

  auto collect = ttg::make_tt<int>(
      [&](const int& x, std::uint64_t& v, auto&) {
        std::lock_guard<std::mutex> lk(last_mutex);
        last_row[static_cast<std::size_t>(x)] = v;
        last_count.fetch_add(1);
      },
      ttg::edges(out), ttg::edges(), "collect", world);
  collect->set_keymap([](const int&) { return 0; });

  auto epoch = world.execute();
  if (g_rank == 0) {
    for (int x = 0; x < W; ++x) source->sendk_input<0>(x);
  }
  const ttg::Status st = epoch.wait();
  if (!st.ok()) {
    logf("stencil: epoch failed: %s", st.reason.c_str());
    return kWrong;
  }
  if (g_rank == 0) {
    if (last_count.load() != W) {
      logf("stencil: collected %d of %d last-row points",
           last_count.load(), W);
      return kWrong;
    }
    const std::uint64_t got = taskbench::fold_checksum(last_row);
    const std::uint64_t want = taskbench::reference_checksum(cfg);
    if (got != want) {
      logf("stencil: checksum %llx != reference %llx",
           static_cast<unsigned long long>(got),
           static_cast<unsigned long long>(want));
      return kWrong;
    }
    logf("stencil: checksum ok (%dx%d periodic)", W, T);
  }
  return kOk;
}

// --- termination: back-to-back epochs over the same graph -------------

int run_termination(ttg::World& world) {
  ttg::Edge<int, std::int64_t> e("chain");
  std::atomic<int> local_tasks{0};
  constexpr int kLen = 120;
  auto tt = ttg::make_tt<int>(
      [&](const int& k, std::int64_t& v, auto& outs) {
        local_tasks.fetch_add(1);
        if (k < kLen) ttg::send<0>(k + 1, v + 1, outs);
      },
      ttg::edges(e), ttg::edges(e), "step", world);
  tt->set_keymap([](const int& k) { return k % g_size; });

  int expected_local = 0;
  for (int k = 0; k <= kLen; ++k) {
    if (k % g_size == g_rank) ++expected_local;
  }

  for (int epoch_no = 0; epoch_no < 3; ++epoch_no) {
    local_tasks.store(0);
    auto epoch = world.execute();
    if (g_rank == 0) tt->send_input<0>(0, std::int64_t{0});
    const ttg::Status st = epoch.wait();
    if (!st.ok()) {
      logf("termination: epoch %d failed: %s", epoch_no,
           st.reason.c_str());
      return kWrong;
    }
    if (local_tasks.load() != expected_local) {
      logf("termination: epoch %d ran %d tasks, expected %d", epoch_no,
           local_tasks.load(), expected_local);
      return kWrong;
    }
  }
  logf("termination: 3 epochs ok");
  return kOk;
}

// --- fault: the runner SIGKILLs one rank mid-epoch --------------------

int run_fault(ttg::World& world) {
  // A chain long enough to outlive the runner's kill delay by orders of
  // magnitude; survivors must see a non-ok wait() within the peer
  // timeout once the victim dies.
  constexpr int kLen = 200'000'000;
  ttg::Edge<int, std::int64_t> e("chain");
  auto tt = ttg::make_tt<int>(
      [&](const int& k, std::int64_t& v, auto& outs) {
        if (k < kLen) ttg::send<0>(k + 1, v + 1, outs);
      },
      ttg::edges(e), ttg::edges(e), "step", world);
  tt->set_keymap([](const int& k) { return k % g_size; });

  auto epoch = world.execute();
  if (g_rank == 0) tt->send_input<0>(0, std::int64_t{0});
  const ttg::Status st = epoch.wait();
  if (st.ok()) {
    logf("fault: epoch finished cleanly — the kill never landed?");
    return kWrong;
  }
  logf("fault: survivor saw expected cancellation: %s",
       st.reason.c_str());
  return kExpectedCancel;
}

// --- abort: a non-zero rank aborts; every rank must observe it --------

int run_abort(ttg::World& world) {
  const int aborter = g_size - 1;
  ttg::Edge<int, ttg::Void> seed("seed");
  auto tt = ttg::make_tt<int>(
      [&world](const int&, const ttg::Void&, auto&) {
        world.abort("mp abort test");
      },
      ttg::edges(seed), ttg::edges(), "aborter", world);
  tt->set_keymap([aborter](const int&) { return aborter; });

  auto epoch = world.execute();
  if (g_rank == 0) tt->sendk_input<0>(0);
  const ttg::Status st = epoch.wait();
  if (!st.aborted()) {
    logf("abort: expected aborted status, got outcome %d (%s)",
         static_cast<int>(st.outcome), st.reason.c_str());
    return kWrong;
  }
  if (st.reason.find("mp abort test") == std::string::npos) {
    logf("abort: reason did not propagate: %s", st.reason.c_str());
    return kWrong;
  }
  logf("abort: observed \"%s\"", st.reason.c_str());
  return kExpectedCancel;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr,
                 "usage: %s chain|broadcast|reduce|stencil|termination|"
                 "fault|abort\n",
                 argv[0]);
    return kUsage;
  }
  const std::string scenario = argv[1];

  std::shared_ptr<ttg::comm::TcpCommunicator> comm;
  try {
    comm = std::make_shared<ttg::comm::TcpCommunicator>(
        ttg::comm::TcpCommunicator::from_env());
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bootstrap failed: %s\n", e.what());
    return kUsage;
  }
  g_rank = comm->rank();
  g_size = comm->size();
  logf("connected (%d ranks), scenario %s", g_size, scenario.c_str());

  ttg::World world(mp_config(), comm);
  if (scenario == "chain") return run_chain(world);
  if (scenario == "broadcast") return run_broadcast(world);
  if (scenario == "reduce") return run_reduce(world);
  if (scenario == "stencil") return run_stencil(world);
  if (scenario == "termination") return run_termination(world);
  if (scenario == "fault") return run_fault(world);
  if (scenario == "abort") return run_abort(world);
  std::fprintf(stderr, "unknown scenario: %s\n", scenario.c_str());
  return kUsage;
}
