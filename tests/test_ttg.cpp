#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <mutex>
#include <string>
#include <vector>

#include "structures/concurrent_map.hpp"
#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

TEST(Ttg, SingleTaskFires) {
  ttg::World world(test_config());
  ttg::Edge<int, int> in("in");
  std::atomic<int> got{-1};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, int& v) { got.store(k * 1000 + v); },
      ttg::edges(in), ttg::edges(), "leaf", world);
  world.execute();
  tt->send_input<0>(3, 14);
  world.fence();
  EXPECT_EQ(got.load(), 3014);
}

TEST(Ttg, ChainPropagatesMovedData) {
  ttg::World world(test_config());
  ttg::Edge<int, std::vector<int>> e("chain");
  std::atomic<int> tasks{0};
  std::atomic<int> final_size{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, std::vector<int>& v) {
        tasks.fetch_add(1);
        v.push_back(k);
        if (k < 99) {
          ttg::send<0>(k + 1, std::move(v));
        } else {
          final_size.store(static_cast<int>(v.size()));
        }
      },
      ttg::edges(e), ttg::edges(e), "step", world);
  world.execute();
  tt->send_input<0>(0, std::vector<int>{});
  world.fence();
  EXPECT_EQ(tasks.load(), 100);
  EXPECT_EQ(final_size.load(), 100);  // every hop appended in place
}

TEST(Ttg, BinaryTreeUnfoldsFully) {
  ttg::World world(test_config(4));
  ttg::Edge<int, ttg::Void> e("tree");
  constexpr int kHeight = 10;
  std::atomic<int> tasks{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&) {
        tasks.fetch_add(1);
        // Node k spawns children 2k+1 and 2k+2 while within the tree.
        if (2 * k + 2 < (1 << (kHeight + 1)) - 1) {
          ttg::sendk<0>(2 * k + 1);
          ttg::sendk<0>(2 * k + 2);
        }
      },
      ttg::edges(e), ttg::edges(e), "node", world);
  world.execute();
  tt->sendk_input<0>(0);
  world.fence();
  EXPECT_EQ(tasks.load(), (1 << (kHeight + 1)) - 1);
}

TEST(Ttg, TwoInputJoin) {
  ttg::World world(test_config());
  ttg::Edge<int, int> a("a"), b("b");
  std::atomic<long> sum{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, int& x, int& y) { sum.fetch_add(x * y); },
      ttg::edges(a, b), ttg::edges(), "mul", world);
  world.execute();
  long expect = 0;
  for (int k = 0; k < 40; ++k) {
    tt->send_input<0>(k, k);
    expect += static_cast<long>(k) * (k + 1);
  }
  for (int k = 39; k >= 0; --k) {
    tt->send_input<1>(k, k + 1);  // arrive in reverse order
  }
  world.fence();
  EXPECT_EQ(sum.load(), expect);
}

TEST(Ttg, InvokeSatisfiesAllInputs) {
  ttg::World world(test_config());
  ttg::Edge<int, int> a("a");
  ttg::Edge<int, double> b("b");
  std::atomic<int> fired{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, int& x, double& y) {
        EXPECT_EQ(x, 10);
        EXPECT_DOUBLE_EQ(y, 2.5);
        EXPECT_EQ(k, 7);
        fired.fetch_add(1);
      },
      ttg::edges(a, b), ttg::edges(), "join", world);
  world.execute();
  ttg::invoke(*tt, 7, 10, 2.5);
  world.fence();
  EXPECT_EQ(fired.load(), 1);
}

TEST(Ttg, VoidEdgesCarryPureControlFlow) {
  ttg::World world(test_config());
  ttg::Edge<int, ttg::Void> go("go");
  std::atomic<int> count{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&) {
        count.fetch_add(1);
        if (k > 0) ttg::sendk<0>(k - 1);
      },
      ttg::edges(go), ttg::edges(go), "ctl", world);
  world.execute();
  tt->sendk_input<0>(49);
  world.fence();
  EXPECT_EQ(count.load(), 50);
}

TEST(Ttg, BroadcastSharesOneCopy) {
  ttg::World world(test_config());
  ttg::Edge<int, std::vector<int>> in("bcast");
  std::atomic<int> fired{0};
  std::atomic<const void*> first_ptr{nullptr};
  std::atomic<int> shared{0};
  auto leaf = ttg::make_tt<int>(
      [&](const int&, std::vector<int>& v) {
        // All consumers observe the same underlying copy.
        const void* expected = nullptr;
        if (!first_ptr.compare_exchange_strong(expected, v.data())) {
          if (expected == v.data()) shared.fetch_add(1);
        }
        fired.fetch_add(1);
      },
      ttg::edges(in), ttg::edges(), "leaf", world);

  ttg::Edge<int, ttg::Void> go("go");
  std::vector<int> keys;
  for (int i = 0; i < 8; ++i) keys.push_back(i);
  auto src = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&) {
        std::vector<int> payload{1, 2, 3};
        ttg::broadcast<0>(keys, payload);
      },
      ttg::edges(go), ttg::edges(in), "src", world);
  world.execute();
  src->sendk_input<0>(0);
  world.fence();
  EXPECT_EQ(fired.load(), 8);
  EXPECT_EQ(shared.load(), 7);  // the other 7 saw the first one's buffer
  (void)leaf;
}

TEST(Ttg, MoveReusesCopyCopyDuplicates) {
  ttg::World world(test_config(1));
  ttg::Edge<int, std::vector<int>> moved("moved"), copied("copied");
  std::atomic<const void*> src_ptr{nullptr};
  std::atomic<int> move_same{-1}, copy_same{-1};

  auto sink_m = ttg::make_tt<int>(
      [&](const int&, std::vector<int>& v) {
        move_same.store(v.data() == src_ptr.load() ? 1 : 0);
      },
      ttg::edges(moved), ttg::edges(), "sink_m", world);
  auto sink_c = ttg::make_tt<int>(
      [&](const int&, std::vector<int>& v) {
        copy_same.store(v.data() == src_ptr.load() ? 1 : 0);
      },
      ttg::edges(copied), ttg::edges(), "sink_c", world);

  ttg::Edge<int, std::vector<int>> in("in");
  auto src = ttg::make_tt<int>(
      [&](const int&, std::vector<int>& v) {
        src_ptr.store(v.data());
        ttg::send<1>(0, v);             // lvalue: deep copy
        ttg::send<0>(0, std::move(v));  // rvalue: zero-copy move
      },
      ttg::edges(in), ttg::edges(moved, copied), "src", world);
  world.execute();
  src->send_input<0>(0, std::vector<int>{9, 9, 9});
  world.fence();
  EXPECT_EQ(move_same.load(), 1) << "moved send must reuse the copy";
  EXPECT_EQ(copy_same.load(), 0) << "lvalue send must create a new copy";
  (void)sink_m;
  (void)sink_c;
}

TEST(Ttg, PrioritiesReachTasks) {
  // With a single worker and LLP, higher-priority keys run first once
  // the queue is populated.
  ttg::Config cfg = test_config(1);
  ttg::World world(cfg);
  ttg::Edge<int, ttg::Void> in("in");
  std::mutex order_mutex;
  std::vector<int> order;
  auto tt = ttg::make_tt<int>(
      [&](const int& k, const ttg::Void&) {
        std::lock_guard<std::mutex> g(order_mutex);
        order.push_back(k);
      },
      ttg::edges(in), ttg::edges(), "prio", world);
  tt->set_priority_fn([](const int& k) { return k; });
  world.execute();
  // Seed all before any worker can drain: sends from the main thread go
  // through the ingress queue; the single worker then drains it.
  for (int k = 0; k < 16; ++k) tt->sendk_input<0>(k);
  world.fence();
  ASSERT_EQ(order.size(), 16u);
  // All 16 ran exactly once.
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  for (int k = 0; k < 16; ++k) EXPECT_EQ(sorted[k], k);
}

TEST(Ttg, TwoTemplateTasksPipeline) {
  ttg::World world(test_config());
  ttg::Edge<int, int> stage1("s1"), stage2("s2");
  std::atomic<long> out_sum{0};
  auto a = ttg::make_tt<int>(
      [&](const int& k, int& v) { ttg::send<0>(k, v * 2); },
      ttg::edges(stage1), ttg::edges(stage2), "double", world);
  auto b = ttg::make_tt<int>(
      [&](const int&, int& v) { out_sum.fetch_add(v); },
      ttg::edges(stage2), ttg::edges(), "sum", world);
  world.execute();
  long expect = 0;
  for (int k = 0; k < 30; ++k) {
    a->send_input<0>(k, k);
    expect += 2 * k;
  }
  world.fence();
  EXPECT_EQ(out_sum.load(), expect);
  (void)b;
}

TEST(Ttg, PendingCountReflectsPartialJoins) {
  ttg::World world(test_config(1));
  ttg::Edge<int, int> a("a"), b("b");
  std::atomic<int> fired{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, int&, int&) { fired.fetch_add(1); },
      ttg::edges(a, b), ttg::edges(), "join", world);
  world.execute();
  for (int k = 0; k < 10; ++k) tt->send_input<0>(k, k);
  EXPECT_EQ(tt->num_pending(), 10u);
  EXPECT_EQ(fired.load(), 0);
  for (int k = 0; k < 10; ++k) tt->send_input<1>(k, k);
  world.fence();
  EXPECT_EQ(tt->num_pending(), 0u);
  EXPECT_EQ(fired.load(), 10);
}

TEST(Ttg, LargeFanOutCompletes) {
  ttg::World world(test_config(4));
  ttg::Edge<int, ttg::Void> go("go"), work("work");
  std::atomic<int> done{0};
  constexpr int kFan = 20000;
  auto leaf = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&) { done.fetch_add(1); },
      ttg::edges(work), ttg::edges(), "leaf", world);
  auto src = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&) {
        for (int i = 0; i < kFan; ++i) ttg::sendk<0>(i);
      },
      ttg::edges(go), ttg::edges(work), "src", world);
  world.execute();
  src->sendk_input<0>(0);
  world.fence();
  EXPECT_EQ(done.load(), kFan);
  (void)leaf;
}

TEST(Ttg, StringKeysWork) {
  ttg::World world(test_config());
  ttg::Edge<std::string, int> in("in");
  std::atomic<int> sum{0};
  auto tt = ttg::make_tt<std::string>(
      [&](const std::string& k, int& v) {
        sum.fetch_add(static_cast<int>(k.size()) * v);
      },
      ttg::edges(in), ttg::edges(), "strkey", world);
  world.execute();
  tt->send_input<0>(std::string("ab"), 10);
  tt->send_input<0>(std::string("xyz"), 100);
  world.fence();
  EXPECT_EQ(sum.load(), 2 * 10 + 3 * 100);
}

TEST(Ttg, ExplicitOutsOverloadStillWorks) {
  // The explicit-outs spelling remains the documented low-level path;
  // both forms may be mixed freely in one graph.
  ttg::World world(test_config());
  ttg::Edge<int, int> in("in"), mid("mid");
  std::atomic<long> sum{0};
  auto a = ttg::make_tt<int>(
      [&](const int& k, int& v, auto& outs) {
        ttg::send<0>(k, v + 1, outs);
      },
      ttg::edges(in), ttg::edges(mid), "explicit", world);
  auto b = ttg::make_tt<int>(
      [&](const int&, int& v) { sum.fetch_add(v); },
      ttg::edges(mid), ttg::edges(), "implicit", world);
  world.execute();
  for (int k = 0; k < 10; ++k) a->send_input<0>(k, k);
  world.fence();
  EXPECT_EQ(sum.load(), 10L + (9L * 10) / 2);
  (void)b;
}

}  // namespace

namespace {

TEST(Ttg, ValueAwarePrioritiesDrivePopOrder) {
  // With one worker and LLP, tasks whose priority derives from their
  // *value* run in value order once enqueued together.
  ttg::Config cfg = test_config(1);
  ttg::World world(cfg);
  ttg::Edge<int, int> in("in");
  std::mutex m;
  std::vector<int> order;
  auto tt = ttg::make_tt<int>(
      [&](const int&, int& v) {
        std::lock_guard<std::mutex> g(m);
        order.push_back(v);
      },
      ttg::edges(in), ttg::edges(), "prio", world);
  tt->set_priority_fn([](const int&, const int& v) { return v; });
  world.execute();
  for (int v : {3, 9, 1, 7, 5}) tt->send_input<0>(v, v);
  world.fence();
  ASSERT_EQ(order.size(), 5u);
  // All ran exactly once with values intact.
  std::vector<int> sorted = order;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 3, 5, 7, 9}));
}

TEST(Ttg, LabelCorrectingRelaxationConverges) {
  // A miniature of the SSSP example: a cyclic template task graph whose
  // unfolding is purely data-driven terminates once no send improves any
  // label; value-aware priorities keep the work near-optimal.
  constexpr int kN = 200;
  ttg::World world(test_config());
  ttg::ConcurrentMap<int, long> dist;
  for (int v = 0; v < kN; ++v) dist.insert(v, 1000000);
  ttg::Edge<int, long> relax_in("relax");
  auto relax = ttg::make_tt<int>(
      [&dist](const int& v, long& candidate) {
        bool improved = false;
        dist.with(v, [&](long& d) {
          if (candidate < d) {
            d = candidate;
            improved = true;
          }
        });
        if (improved) {
          // Ring + skip edges.
          ttg::send<0>((v + 1) % kN, candidate + 1);
          ttg::send<0>((v + 7) % kN, candidate + 3);
        }
      },
      ttg::edges(relax_in), ttg::edges(relax_in), "relax", world);
  relax->set_priority_fn([](const int&, const long& c) {
    return -static_cast<std::int32_t>(c);
  });
  world.execute();
  relax->send_input<0>(0, 0L);
  world.fence();
  // Spot-check a few distances against the ring+skip structure.
  long d0 = -1, d1 = -1, d7 = -1;
  dist.with(0, [&](long& d) { d0 = d; });
  dist.with(1, [&](long& d) { d1 = d; });
  dist.with(7, [&](long& d) { d7 = d; });
  EXPECT_EQ(d0, 0);
  EXPECT_EQ(d1, 1);
  EXPECT_EQ(d7, 3);  // the skip edge beats seven ring hops
}

}  // namespace
