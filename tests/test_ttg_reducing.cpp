// Tests for reducing input terminals: contributions fold into a single
// accumulator under the key's bucket lock; the task fires after the
// per-key count and receives one plain value.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

TEST(Reducing, FixedCountSum) {
  ttg::World world(test_config(1));
  ttg::Edge<int, long> in("in");
  std::atomic<long> result{0};
  std::atomic<int> fired{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, long& v, auto&) {
        fired.fetch_add(1);
        result.store(v);
      },
      ttg::edges(ttg::make_reducing(
          in, [](long& acc, long&& x) { acc += x; }, 4)),
      ttg::edges(), "sum", world);
  world.execute();
  tt->send_input<0>(0, 10L);
  tt->send_input<0>(0, 20L);
  tt->send_input<0>(0, 30L);
  EXPECT_EQ(fired.load(), 0);  // 3 of 4 folded
  tt->send_input<0>(0, 40L);
  world.fence();
  EXPECT_EQ(fired.load(), 1);
  EXPECT_EQ(result.load(), 100);
}

TEST(Reducing, PerKeyCountCallback) {
  ttg::World world(test_config());
  ttg::Edge<int, long> in("in");
  std::atomic<long> total{0};
  auto tt = ttg::make_tt<int>(
      [&](const int& k, long& v, auto&) {
        // v = sum of k contributions 0..k-1 scaled by k.
        EXPECT_EQ(v, static_cast<long>(k) * k * (k - 1) / 2);
        total.fetch_add(v);
      },
      ttg::edges(ttg::make_reducing(
          in, [](long& acc, long&& x) { acc += x; },
          [](const int& k) { return k; })),
      ttg::edges(), "sumk", world);
  world.execute();
  long expect = 0;
  for (int k = 1; k <= 10; ++k) {
    for (int i = 0; i < k; ++i) tt->send_input<0>(k, static_cast<long>(k) * i);
    expect += static_cast<long>(k) * k * (k - 1) / 2;
  }
  world.fence();
  EXPECT_EQ(total.load(), expect);
}

TEST(Reducing, NonCommutativeFoldStillCountsAll) {
  // Arrival order is not guaranteed, so reducers should be commutative;
  // but every contribution must be folded exactly once — use max, which
  // is order-insensitive, and a side count.
  ttg::World world(test_config(4));
  ttg::Edge<int, int> in("in");
  std::atomic<int> fired{0};
  std::atomic<long> max_sum{0};
  constexpr int kKeys = 500;
  auto tt = ttg::make_tt<int>(
      [&](const int&, int& v, auto&) {
        fired.fetch_add(1);
        max_sum.fetch_add(v);
      },
      ttg::edges(ttg::make_reducing(
          in, [](int& acc, int&& x) { acc = std::max(acc, x); }, 8)),
      ttg::edges(), "max", world);
  world.execute();
  for (int round = 0; round < 8; ++round) {
    for (int k = 0; k < kKeys; ++k) {
      tt->send_input<0>(k, k * 100 + round);
    }
  }
  world.fence();
  EXPECT_EQ(fired.load(), kKeys);
  long expect = 0;
  for (int k = 0; k < kKeys; ++k) expect += k * 100 + 7;  // max round
  EXPECT_EQ(max_sum.load(), expect);
}

TEST(Reducing, VectorAccumulatorKeepsOneCopy) {
  // The accumulator is the first arrival's copy; contributions fold into
  // it — verify the buffer address never changes across contributions.
  ttg::World world(test_config(1));
  ttg::Edge<int, std::vector<double>> in("in");
  std::atomic<int> checked{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, std::vector<double>& v, auto&) {
        EXPECT_EQ(v.size(), 3u);
        EXPECT_DOUBLE_EQ(v[0], 1 + 10 + 100);
        EXPECT_DOUBLE_EQ(v[1], 2 + 20 + 200);
        EXPECT_DOUBLE_EQ(v[2], 3 + 30 + 300);
        checked.fetch_add(1);
      },
      ttg::edges(ttg::make_reducing(
          in,
          [](std::vector<double>& acc, std::vector<double>&& x) {
            for (std::size_t i = 0; i < acc.size(); ++i) acc[i] += x[i];
          },
          3)),
      ttg::edges(), "vecsum", world);
  world.execute();
  tt->send_input<0>(0, std::vector<double>{1, 2, 3});
  tt->send_input<0>(0, std::vector<double>{10, 20, 30});
  tt->send_input<0>(0, std::vector<double>{100, 200, 300});
  world.fence();
  EXPECT_EQ(checked.load(), 1);
}

TEST(Reducing, MixedWithPlainAndAggregated) {
  ttg::World world(test_config());
  ttg::Edge<int, long> red_in("red");
  ttg::Edge<int, int> agg_in("agg");
  ttg::Edge<int, int> plain_in("plain");
  std::atomic<long> result{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, long& folded, const ttg::Aggregator<int>& collected,
          int& scale, auto&) {
        long s = folded;
        for (int v : collected) s += v;
        result.fetch_add(s * scale);
      },
      ttg::edges(ttg::make_reducing(
                     red_in, [](long& a, long&& b) { a += b; }, 2),
                 ttg::make_aggregator(agg_in, 2), plain_in),
      ttg::edges(), "mixed", world);
  world.execute();
  tt->send_input<0>(5, 100L);
  tt->send_input<0>(5, 200L);  // folded -> 300
  tt->send_input<1>(5, 7);
  tt->send_input<1>(5, 8);     // collected -> {7, 8}
  tt->send_input<2>(5, 2);     // scale
  world.fence();
  EXPECT_EQ(result.load(), (300 + 7 + 8) * 2);
}

TEST(Reducing, TreeReductionAcrossTasks) {
  // A binary-tree sum implemented with a reducing terminal: each node
  // folds its two children's partial sums.
  ttg::World world(test_config());
  ttg::Edge<int, long> up("up");
  std::atomic<long> root_sum{0};
  constexpr int kLeaves = 64;  // power of two; nodes 1..2*kLeaves-1
  auto tt = ttg::make_tt<int>(
      [&](const int& node, long& v, auto& outs) {
        if (node == 1) {
          root_sum.store(v);
        } else {
          ttg::send<0>(node / 2, std::move(v), outs);
        }
      },
      ttg::edges(ttg::make_reducing(
          up, [](long& a, long&& b) { a += b; },
          [](const int& node) { return node < kLeaves ? 2 : 1; })),
      ttg::edges(up), "node", world);
  world.execute();
  long expect = 0;
  for (int leaf = 0; leaf < kLeaves; ++leaf) {
    tt->send_input<0>(kLeaves + leaf, static_cast<long>(leaf));
    expect += leaf;
  }
  world.fence();
  EXPECT_EQ(root_sum.load(), expect);
}

}  // namespace
