#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "runtime/trace.hpp"
#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

TEST(Trace, DisabledRecordsNothing) {
  ttg::trace::disable();
  ttg::trace::record(ttg::trace::EventKind::kTaskBegin);
  ttg::trace::enable();  // clears
  ttg::trace::disable();
  EXPECT_TRUE(ttg::trace::snapshot().empty());
}

TEST(Trace, TaskEventsPairAndCount) {
  ttg::trace::enable();
  {
    ttg::World world(test_config());
    ttg::Edge<int, ttg::Void> e("e");
    auto tt = ttg::make_tt<int>(
        [](const int& k, const ttg::Void&, auto& outs) {
          if (k > 0) ttg::sendk<0>(k - 1, outs);
        },
        ttg::edges(e), ttg::edges(e), "count", world);
    (void)tt;
    world.execute();
    tt->sendk_input<0>(49);
    world.fence();
  }
  ttg::trace::disable();

  const auto events = ttg::trace::snapshot();
  std::uint64_t begins = 0, ends = 0;
  for (const auto& e : events) {
    if (e.kind == ttg::trace::EventKind::kTaskBegin) ++begins;
    if (e.kind == ttg::trace::EventKind::kTaskEnd) ++ends;
  }
  EXPECT_EQ(begins, 50u);
  EXPECT_EQ(ends, 50u);
  // Events are time-sorted.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].tsc, events[i - 1].tsc);
  }

  const auto summary = ttg::trace::summarize();
  std::uint64_t tasks = 0, busy = 0;
  for (const auto& s : summary) {
    tasks += s.tasks;
    busy += s.busy_cycles;
  }
  EXPECT_EQ(tasks, 50u);
  EXPECT_GT(busy, 0u);
}

TEST(Trace, MessagesTracedAcrossRanks) {
  ttg::trace::enable();
  {
    ttg::World world(test_config(1), 2);
    ttg::Edge<int, int> e("e");
    auto tt = ttg::make_tt<int>(
        [](const int& k, int& v, auto& outs) {
          if (k < 40) ttg::send<0>(k + 1, std::move(v), outs);
        },
        ttg::edges(e), ttg::edges(e), "chain", world);
    world.execute();
    tt->send_input<0>(0, 1);
    world.fence();
  }
  ttg::trace::disable();
  std::uint64_t sent = 0, received = 0;
  for (const auto& e : ttg::trace::snapshot()) {
    if (e.kind == ttg::trace::EventKind::kMessageSent) ++sent;
    if (e.kind == ttg::trace::EventKind::kMessageReceived) ++received;
  }
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(sent, received);
}

TEST(Trace, RingOverwritesOldest) {
  ttg::trace::enable(/*events_per_thread=*/8);
  for (int i = 0; i < 100; ++i) {
    ttg::trace::record(ttg::trace::EventKind::kTaskBegin,
                       static_cast<std::uint32_t>(i));
  }
  ttg::trace::disable();
  const auto events = ttg::trace::snapshot();
  // Only this thread recorded; at most the ring capacity is kept.
  std::uint64_t mine = 0;
  for (const auto& e : events) {
    if (e.kind == ttg::trace::EventKind::kTaskBegin) ++mine;
  }
  EXPECT_LE(mine, 8u);
  EXPECT_GT(mine, 0u);
}

TEST(Trace, CsvHasHeaderAndRows) {
  ttg::trace::enable();
  ttg::trace::record(ttg::trace::EventKind::kTaskBegin, 7);
  ttg::trace::record(ttg::trace::EventKind::kTaskEnd, 7);
  ttg::trace::disable();
  std::ostringstream os;
  ttg::trace::dump_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("tsc,thread,kind,arg"), std::string::npos);
  EXPECT_NE(csv.find("task_begin"), std::string::npos);
  EXPECT_NE(csv.find("task_end"), std::string::npos);
}

}  // namespace
