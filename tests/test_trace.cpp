#include <gtest/gtest.h>

#include <atomic>
#include <sstream>

#include "runtime/trace.hpp"
#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

TEST(Trace, DisabledRecordIsNoOp) {
  // Clear any previous events, then stop recording.
  { ttg::trace::Session session; }
  EXPECT_FALSE(ttg::trace::enabled());
  // The spec for the disabled path is "one relaxed load": record() must
  // return before touching any ring buffer.
  ttg::trace::record(ttg::trace::EventKind::kTaskBegin);
  ttg::trace::record(ttg::trace::EventKind::kStealAttempt, 3);
  ttg::trace::counter(ttg::trace::intern("c"), 42);
  EXPECT_TRUE(ttg::trace::snapshot().empty());
}

TEST(Trace, SessionClearsPreviousEvents) {
  {
    ttg::trace::Session session;
    ttg::trace::record(ttg::trace::EventKind::kTaskBegin);
  }
  EXPECT_EQ(ttg::trace::snapshot().size(), 1u);
  { ttg::trace::Session session; }
  EXPECT_TRUE(ttg::trace::snapshot().empty());
}

TEST(Trace, CategoryMaskFiltersEvents) {
  ttg::trace::Config cfg;
  cfg.categories = ttg::trace::kCatIdle;
  {
    ttg::trace::Session session(cfg);
    EXPECT_TRUE(ttg::trace::enabled_for(ttg::trace::kCatIdle));
    EXPECT_FALSE(ttg::trace::enabled_for(ttg::trace::kCatTask));
    ttg::trace::record(ttg::trace::EventKind::kTaskBegin);  // masked out
    ttg::trace::record(ttg::trace::EventKind::kIdleBegin);
    ttg::trace::record(ttg::trace::EventKind::kIdleEnd);
  }
  const auto events = ttg::trace::snapshot();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].kind, ttg::trace::EventKind::kIdleBegin);
  EXPECT_EQ(events[1].kind, ttg::trace::EventKind::kIdleEnd);
}

TEST(Trace, InternIsStableAndResolvable) {
  const ttg::trace::NameId a = ttg::trace::intern("alpha");
  const ttg::trace::NameId b = ttg::trace::intern("beta");
  EXPECT_NE(a, ttg::trace::kNoName);
  EXPECT_NE(a, b);
  EXPECT_EQ(ttg::trace::intern("alpha"), a);
  EXPECT_EQ(ttg::trace::name_of(a), "alpha");
  EXPECT_EQ(ttg::trace::name_of(ttg::trace::kNoName), "");
}

TEST(Trace, TaskEventsPairAndCount) {
  {
    ttg::trace::Session session;
    ttg::World world(test_config());
    ttg::Edge<int, ttg::Void> e("e");
    auto tt = ttg::make_tt<int>(
        [](const int& k, const ttg::Void&) {
          if (k > 0) ttg::sendk<0>(k - 1);
        },
        ttg::edges(e), ttg::edges(e), "count", world);
    (void)tt;
    world.execute();
    tt->sendk_input<0>(49);
    world.fence();
  }

  const auto events = ttg::trace::snapshot();
  std::uint64_t begins = 0, ends = 0;
  const ttg::trace::NameId count_name = ttg::trace::intern("count");
  for (const auto& e : events) {
    if (e.kind == ttg::trace::EventKind::kTaskBegin) {
      ++begins;
      EXPECT_EQ(e.name, count_name);  // spans are named after their TT
    }
    if (e.kind == ttg::trace::EventKind::kTaskEnd) ++ends;
  }
  EXPECT_EQ(begins, 50u);
  EXPECT_EQ(ends, 50u);
  // Events are time-sorted.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].tsc, events[i - 1].tsc);
  }

  const auto summary = ttg::trace::summarize();
  std::uint64_t tasks = 0, busy = 0, dropped = 0;
  for (const auto& s : summary) {
    tasks += s.tasks;
    busy += s.busy_cycles;
    dropped += s.dropped_events;
  }
  EXPECT_EQ(tasks, 50u);
  EXPECT_GT(busy, 0u);
  EXPECT_EQ(dropped, 0u);  // nothing wrapped in a 50-task run
}

TEST(Trace, MessagesTracedAcrossRanks) {
  {
    ttg::trace::Session session;
    ttg::World world(test_config(1), 2);
    ttg::Edge<int, int> e("e");
    auto tt = ttg::make_tt<int>(
        [](const int& k, int& v) {
          if (k < 40) ttg::send<0>(k + 1, std::move(v));
        },
        ttg::edges(e), ttg::edges(e), "chain", world);
    world.execute();
    tt->send_input<0>(0, 1);
    world.fence();
  }
  std::uint64_t sent = 0, received = 0;
  for (const auto& e : ttg::trace::snapshot()) {
    if (e.kind == ttg::trace::EventKind::kMessageSent) ++sent;
    if (e.kind == ttg::trace::EventKind::kMessageReceived) ++received;
  }
  EXPECT_GT(sent, 0u);
  EXPECT_EQ(sent, received);
}

TEST(Trace, SchedulerEventsRecorded) {
  {
    ttg::trace::Session session;
    ttg::World world(test_config());
    ttg::Edge<int, ttg::Void> e("e");
    auto tt = ttg::make_tt<int>(
        [](const int& k, const ttg::Void&) {
          if (k > 0) ttg::sendk<0>(k - 1);
        },
        ttg::edges(e), ttg::edges(e), "sched", world);
    world.execute();
    tt->sendk_input<0>(19);
    world.fence();
  }
  std::uint64_t pushes = 0, pops = 0, inlined = 0;
  for (const auto& e : ttg::trace::snapshot()) {
    switch (e.kind) {
      case ttg::trace::EventKind::kSchedPush:
      case ttg::trace::EventKind::kSchedPushChain:
        ++pushes;
        break;
      case ttg::trace::EventKind::kSchedPop:
        ++pops;
        break;
      case ttg::trace::EventKind::kInlineExec:
        ++inlined;
        break;
      default:
        break;
    }
  }
  // Every one of the 20 tasks either went through the scheduler or ran
  // inline in its discovering worker.
  EXPECT_GT(pushes, 0u);
  EXPECT_GT(pops + inlined, 0u);
}

TEST(Trace, RingOverwritesOldestAndReportsDrops) {
  {
    ttg::trace::Config cfg;
    cfg.events_per_thread = 8;
    ttg::trace::Session session(cfg);
    for (int i = 0; i < 100; ++i) {
      ttg::trace::record(ttg::trace::EventKind::kTaskBegin,
                         static_cast<std::uint64_t>(i));
    }
  }
  const auto events = ttg::trace::snapshot();
  // Only this thread recorded; at most the ring capacity is kept.
  std::uint64_t mine = 0;
  for (const auto& e : events) {
    if (e.kind == ttg::trace::EventKind::kTaskBegin) ++mine;
  }
  EXPECT_LE(mine, 8u);
  EXPECT_GT(mine, 0u);

  // 100 - 8 = 92 events were overwritten; the summary reports them as
  // dropped instead of folding unmatched begins into busy time.
  std::uint64_t dropped = 0, busy = 0;
  for (const auto& s : ttg::trace::summarize()) {
    dropped += s.dropped_events;
    busy += s.busy_cycles;
  }
  EXPECT_GE(dropped, 92u);
  EXPECT_EQ(busy, 0u);  // no matched begin/end pair survived
}

TEST(Trace, CsvHasHeaderAndRows) {
  {
    ttg::trace::Session session;
    ttg::trace::record(ttg::trace::EventKind::kTaskBegin, 7,
                       ttg::trace::intern("body"));
    ttg::trace::record(ttg::trace::EventKind::kTaskEnd, 7,
                       ttg::trace::intern("body"));
  }
  std::ostringstream os;
  ttg::trace::dump_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("tsc,thread,kind,name,arg"), std::string::npos);
  EXPECT_NE(csv.find("task_begin"), std::string::npos);
  EXPECT_NE(csv.find("task_end"), std::string::npos);
  EXPECT_NE(csv.find("body"), std::string::npos);
}

}  // namespace
