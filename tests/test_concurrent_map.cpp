#include <gtest/gtest.h>

#include <string>
#include <thread>
#include <vector>

#include "structures/concurrent_map.hpp"

namespace {

TEST(ConcurrentMap, InsertTakeRoundTrip) {
  ttg::ConcurrentMap<int, std::string> map;
  EXPECT_TRUE(map.insert(1, "one"));
  EXPECT_TRUE(map.insert(2, "two"));
  EXPECT_FALSE(map.insert(1, "uno"));  // duplicate
  EXPECT_EQ(map.size(), 2u);
  auto v = map.take(1);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, "one");
  EXPECT_FALSE(map.take(1).has_value());
  EXPECT_EQ(map.size(), 1u);
}

TEST(ConcurrentMap, WithMutatesInPlace) {
  ttg::ConcurrentMap<int, int> map;
  map.insert(5, 10);
  EXPECT_TRUE(map.with(5, [](int& v) { v *= 3; }));
  auto v = map.take(5);
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 30);
  EXPECT_FALSE(map.with(5, [](int&) {}));
}

TEST(ConcurrentMap, ContainsAndMiss) {
  ttg::ConcurrentMap<int, int> map;
  map.insert(7, 1);
  EXPECT_TRUE(map.contains(7));
  EXPECT_FALSE(map.contains(8));
}

TEST(ConcurrentMap, DestructorFreesLeftovers) {
  // Values that are never taken must be released by the map (run under
  // ASan to actually verify; here we just exercise the path).
  auto map = std::make_unique<ttg::ConcurrentMap<int, std::vector<int>>>();
  for (int i = 0; i < 100; ++i) {
    map->insert(i, std::vector<int>(100, i));
  }
  map.reset();
  SUCCEED();
}

TEST(ConcurrentMap, ConcurrentDisjointInsertTake) {
  ttg::ConcurrentMap<int, int> map(2);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 3000;
  std::atomic<int> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        const int key = t * kPerThread + i;
        if (!map.insert(key, key * 2)) errors.fetch_add(1);
      }
      for (int i = 0; i < kPerThread; ++i) {
        const int key = t * kPerThread + i;
        auto v = map.take(key);
        if (!v.has_value() || *v != key * 2) errors.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(map.size(), 0u);
}

}  // namespace
