// Edge cases and less-traveled paths across modules.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <utility>

#include "common/rng.hpp"
#include "runtime/config.hpp"
#include "structures/hash_table.hpp"
#include "sync/bravo.hpp"
#include "ttg/keys.hpp"
#include "ttg/ttg.hpp"

namespace {

// ----------------------------------------------------------------- config

TEST(Config, DescribeMentionsEveryKnob) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = 3;
  cfg.inline_max_depth = 5;
  cfg.bundle_successors = false;
  const std::string d = cfg.describe();
  EXPECT_NE(d.find("threads=3"), std::string::npos);
  EXPECT_NE(d.find("sched=LLP"), std::string::npos);
  EXPECT_NE(d.find("thread-local"), std::string::npos);
  EXPECT_NE(d.find("bravo"), std::string::npos);
  EXPECT_NE(d.find("relaxed"), std::string::npos);
  EXPECT_NE(d.find("inline=5"), std::string::npos);
  EXPECT_NE(d.find("bundling=off"), std::string::npos);
}

TEST(Config, OriginalDescribesTheBaseline) {
  const std::string d = ttg::Config::original().describe();
  EXPECT_NE(d.find("sched=LFQ"), std::string::npos);
  EXPECT_NE(d.find("process-atomic"), std::string::npos);
  EXPECT_NE(d.find("plain"), std::string::npos);
  EXPECT_NE(d.find("seq_cst"), std::string::npos);
}

TEST(Config, ZeroThreadsResolvesToHardware) {
  ttg::Config cfg;
  cfg.num_threads = 0;
  EXPECT_GE(cfg.threads(), 1);
}

// ------------------------------------------------------------------ BRAVO

TEST(Bravo, BiasReArmsAfterCooldown) {
  ttg::set_bravo_enabled(true);
  ttg::BravoRWLock<> lock(8);
  // Revoke the bias with a write.
  lock.write_lock();
  lock.write_unlock();
  ASSERT_FALSE(lock.reader_biased());
  // Keep taking read locks; once the cool-down passes, a reader re-arms
  // the bias and subsequent readers take the fast path again.
  bool rearmed = false;
  for (int i = 0; i < 2000000 && !rearmed; ++i) {
    auto token = lock.read_lock();
    lock.read_unlock(token);
    rearmed = lock.reader_biased();
  }
  EXPECT_TRUE(rearmed);
  auto token = lock.read_lock();
  EXPECT_NE(token.slot, nullptr);
  lock.read_unlock(token);
}

// -------------------------------------------------------------- hash table

TEST(HashTable, AccessorMoveTransfersOwnership) {
  ttg::ScalableHashTable table(4);
  struct Item : ttg::HashItemBase {
    int v = 0;
  } item;
  item.hash = 0x42;
  {
    auto acc = table.lock_key(0x42);
    auto moved = std::move(acc);  // the moved-to accessor releases
    moved.insert(&item);
  }
  {
    auto acc = table.lock_key(0x42);
    EXPECT_NE(acc.find([](const ttg::HashItemBase*) { return true; }),
              nullptr);
    acc.remove([](const ttg::HashItemBase*) { return true; });
  }
}

TEST(HashTable, ExplicitReleaseThenDestructorIsSafe) {
  ttg::ScalableHashTable table(4);
  auto acc = table.lock_key(7);
  acc.release();
  acc.release();  // idempotent
}

// -------------------------------------------------------------------- keys

TEST(KeyHash, TupleAndPairHashesSpread) {
  ttg::KeyHash<std::pair<int, int>> ph;
  EXPECT_NE(ph({1, 2}), ph({2, 1}));
  ttg::KeyHash<std::tuple<int, int, int>> th;
  EXPECT_NE(th({1, 2, 3}), th({3, 2, 1}));
  EXPECT_EQ(th({1, 2, 3}), th({1, 2, 3}));
}

TEST(KeyHash, StringKeysHash) {
  ttg::KeyHash<std::string> h;
  EXPECT_NE(h("alpha"), h("beta"));
}

TEST(KeyHash, VoidComparesEqual) {
  EXPECT_TRUE(ttg::Void{} == ttg::Void{});
}

// --------------------------------------------------------------- terminals

TEST(OutTerminal, ReportsConsumerCount) {
  ttg::World world(ttg::Config::optimized());
  ttg::Edge<int, int> e("e");
  auto a = ttg::make_tt<int>([](const int&, int&, auto&) {},
                             ttg::edges(e), ttg::edges(), "a", world);
  auto b = ttg::make_tt<int>([](const int&, int&, auto&) {},
                             ttg::edges(e), ttg::edges(), "b", world);
  ttg::Edge<int, ttg::Void> go("go");
  auto src = ttg::make_tt<int>(
      [](const int&, const ttg::Void&, auto& outs) {
        EXPECT_EQ(std::get<0>(outs).num_consumers(), 2u);
      },
      ttg::edges(go), ttg::edges(e), "src", world);
  world.execute();
  src->sendk_input<0>(0);
  world.fence();
  (void)a;
  (void)b;
}

TEST(OutTerminal, BroadcastkFansOutControlFlow) {
  ttg::World world(ttg::Config::optimized());
  ttg::Edge<int, ttg::Void> work("work"), go("go");
  std::atomic<int> fired{0};
  auto leaf = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) { fired.fetch_add(1); },
      ttg::edges(work), ttg::edges(), "leaf", world);
  auto src = ttg::make_tt<int>(
      [](const int&, const ttg::Void&, auto& outs) {
        const std::vector<int> keys{1, 2, 3, 4, 5};
        ttg::broadcastk<0>(keys, outs);
      },
      ttg::edges(go), ttg::edges(work), "src", world);
  world.execute();
  src->sendk_input<0>(0);
  world.fence();
  EXPECT_EQ(fired.load(), 5);
  (void)leaf;
}

// ------------------------------------------------------------- empty graph

TEST(EdgeCase, ZeroWidthAggregate) {
  // An aggregator whose count callback returns 0 for a key never fires —
  // and never blocks termination because no record is created without at
  // least one arrival.
  ttg::World world(ttg::Config::optimized());
  ttg::Edge<int, int> in("in");
  std::atomic<int> fired{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Aggregator<int>&, auto&) {
        fired.fetch_add(1);
      },
      ttg::edges(ttg::make_aggregator(in, 2)), ttg::edges(), "agg",
      world);
  world.execute();
  tt->send_input<0>(0, 1);  // 1 of 2: stays pending through the fence?
  tt->send_input<0>(0, 2);  // completes
  world.fence();
  EXPECT_EQ(fired.load(), 1);
}

TEST(EdgeCase, ManySmallEpochs) {
  ttg::World world(ttg::Config::optimized());
  ttg::Edge<int, ttg::Void> e("e");
  std::atomic<int> n{0};
  auto tt = ttg::make_tt<int>(
      [&](const int&, const ttg::Void&, auto&) { n.fetch_add(1); },
      ttg::edges(e), ttg::edges(), "leaf", world);
  for (int epoch = 0; epoch < 50; ++epoch) {
    world.execute();
    tt->sendk_input<0>(epoch);
    world.fence();
  }
  EXPECT_EQ(n.load(), 50);
}

}  // namespace
