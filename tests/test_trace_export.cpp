// Tests for the Chrome/Perfetto trace exporter and the metrics registry.
#include <gtest/gtest.h>

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/trace.hpp"
#include "ttg/ttg.hpp"

namespace {

ttg::Config test_config(int threads = 2) {
  ttg::Config cfg = ttg::Config::optimized();
  cfg.num_threads = threads;
  return cfg;
}

/// Minimal structural JSON check: braces/brackets balance outside of
/// strings, and the string never closes a scope it did not open.
bool json_balanced(const std::string& s) {
  int depth = 0;
  bool in_string = false;
  for (std::size_t i = 0; i < s.size(); ++i) {
    const char c = s[i];
    if (in_string) {
      if (c == '\\') {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        if (--depth < 0) return false;
        break;
      default: break;
    }
  }
  return depth == 0 && !in_string;
}

/// Splits the top-level objects of the "traceEvents" array.
std::vector<std::string> trace_event_objects(const std::string& json) {
  std::vector<std::string> out;
  const std::size_t start = json.find("\"traceEvents\"");
  if (start == std::string::npos) return out;
  int depth = 0;
  bool in_string = false;
  std::size_t obj_begin = 0;
  for (std::size_t i = json.find('[', start); i < json.size(); ++i) {
    const char c = json[i];
    if (in_string) {
      if (c == '\\') ++i;
      else if (c == '"') in_string = false;
      continue;
    }
    if (c == '"') { in_string = true; continue; }
    if (c == '{') {
      if (depth == 1) obj_begin = i;
      ++depth;
    } else if (c == '}') {
      --depth;
      if (depth == 1) out.push_back(json.substr(obj_begin, i - obj_begin + 1));
    } else if (c == '[') {
      ++depth;
    } else if (c == ']') {
      --depth;
      if (depth == 0) break;  // end of traceEvents
    }
  }
  return out;
}

TEST(TraceExport, EmptyTraceIsValidJson) {
  { ttg::trace::Session session; }
  std::ostringstream os;
  ttg::trace::export_chrome_json(os);
  const std::string json = os.str();
  EXPECT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
}

TEST(TraceExport, EveryEventHasRequiredFields) {
  {
    ttg::trace::Session session;
    ttg::World world(test_config());
    ttg::Edge<int, int> e("e");
    auto tt = ttg::make_tt<int>(
        [](const int& k, int& v) {
          if (k < 30) ttg::send<0>(k + 1, std::move(v));
        },
        ttg::edges(e), ttg::edges(e), "hop", world);
    world.execute();
    tt->send_input<0>(0, 1);
    world.fence();
  }
  std::ostringstream os;
  ttg::trace::export_chrome_json(os);
  const std::string json = os.str();
  ASSERT_TRUE(json_balanced(json));

  const auto events = trace_event_objects(json);
  ASSERT_GT(events.size(), 0u);
  for (const std::string& ev : events) {
    EXPECT_NE(ev.find("\"ph\""), std::string::npos) << ev;
    EXPECT_NE(ev.find("\"ts\""), std::string::npos) << ev;
    EXPECT_NE(ev.find("\"pid\""), std::string::npos) << ev;
    EXPECT_NE(ev.find("\"tid\""), std::string::npos) << ev;
  }
}

TEST(TraceExport, GoldenSmokeNamedSpansPerTT) {
  // Two chained TTs on a 2-worker world: the exported trace must carry
  // at least one named "X" task span for each TT.
  {
    ttg::trace::Session session;
    ttg::World world(test_config(2));
    ttg::Edge<int, int> ab("ab");
    ttg::Edge<int, int> ba("ba");
    auto ping = ttg::make_tt<int>(
        [](const int& k, int& v) {
          if (k < 20) ttg::send<0>(k, std::move(v));
        },
        ttg::edges(ba), ttg::edges(ab), "tt_ping", world);
    auto pong = ttg::make_tt<int>(
        [](const int& k, int& v) { ttg::send<0>(k + 1, std::move(v)); },
        ttg::edges(ab), ttg::edges(ba), "tt_pong", world);
    (void)pong;
    world.execute();
    ping->send_input<0>(0, 7);
    world.fence();
  }
  std::ostringstream os;
  ttg::trace::export_chrome_json(os);
  const std::string json = os.str();
  ASSERT_TRUE(json_balanced(json));

  bool ping_span = false, pong_span = false;
  for (const std::string& ev : trace_event_objects(json)) {
    if (ev.find("\"ph\":\"X\"") == std::string::npos) continue;
    if (ev.find("\"name\":\"tt_ping\"") != std::string::npos)
      ping_span = true;
    if (ev.find("\"name\":\"tt_pong\"") != std::string::npos)
      pong_span = true;
  }
  EXPECT_TRUE(ping_span);
  EXPECT_TRUE(pong_span);
}

TEST(TraceExport, CounterSamplesBecomeCounterEvents) {
  const ttg::trace::NameId gauge = ttg::trace::intern("my_gauge");
  {
    ttg::trace::Session session;
    ttg::trace::counter(gauge, 11);
    ttg::trace::counter(gauge, 13);
  }
  std::ostringstream os;
  ttg::trace::export_chrome_json(os);
  const std::string json = os.str();
  ASSERT_TRUE(json_balanced(json));
  std::size_t counters = 0;
  for (const std::string& ev : trace_event_objects(json)) {
    if (ev.find("\"ph\":\"C\"") != std::string::npos &&
        ev.find("\"name\":\"my_gauge\"") != std::string::npos) {
      ++counters;
    }
  }
  EXPECT_EQ(counters, 2u);
}

TEST(TraceExport, DroppedEventsReportedInOtherData) {
  {
    ttg::trace::Config cfg;
    cfg.events_per_thread = 4;
    ttg::trace::Session session(cfg);
    for (int i = 0; i < 20; ++i) {
      ttg::trace::record(ttg::trace::EventKind::kSchedPush);
    }
  }
  std::ostringstream os;
  ttg::trace::export_chrome_json(os);
  const std::string json = os.str();
  ASSERT_TRUE(json_balanced(json));
  EXPECT_NE(json.find("\"dropped_events\""), std::string::npos);
}

TEST(Metrics, RegistryAddReadRemove) {
  auto& reg = ttg::trace::MetricsRegistry::instance();
  const int id = reg.add("test.counter", [] { return 7ull; });
  EXPECT_EQ(reg.value("test.counter"), 7u);

  // Duplicate names are legal and sum (two concurrent worlds).
  const int id2 = reg.add("test.counter", [] { return 5ull; });
  EXPECT_EQ(reg.value("test.counter"), 12u);

  bool seen = false;
  for (const ttg::trace::Metric& m : reg.snapshot()) {
    if (m.name == "test.counter") seen = true;
  }
  EXPECT_TRUE(seen);

  reg.remove(id);
  reg.remove(id2);
  EXPECT_EQ(reg.value("test.counter"), 0u);
}

TEST(Metrics, BuiltInSurfacesAreRegistered) {
  auto& reg = ttg::trace::MetricsRegistry::instance();
  bool pool_hits = false, atomics = false;
  for (const ttg::trace::Metric& m : reg.snapshot()) {
    if (m.name == "copy_pool.hits") pool_hits = true;
    if (m.name.rfind("atomics.", 0) == 0) atomics = true;
  }
  EXPECT_TRUE(pool_hits);
  EXPECT_TRUE(atomics);
}

TEST(Metrics, LiveEngineExportsStealAndTaskMetrics) {
  auto& reg = ttg::trace::MetricsRegistry::instance();
  {
    ttg::World world(test_config(2));
    ttg::Edge<int, ttg::Void> e("e");
    auto tt = ttg::make_tt<int>(
        [](const int& k, const ttg::Void&) {
          if (k > 0) ttg::sendk<0>(k - 1);
        },
        ttg::edges(e), ttg::edges(e), "metric_chain", world);
    world.execute();
    tt->sendk_input<0>(9);
    world.fence();

    bool tasks_metric = false;
    for (const ttg::trace::Metric& m : reg.snapshot()) {
      if (m.name.rfind("engine.r", 0) == 0 &&
          m.name.find(".tasks_executed") != std::string::npos) {
        tasks_metric = true;
        EXPECT_GE(m.value, 10u);
      }
    }
    EXPECT_TRUE(tasks_metric);
  }
  // Engines unregister on destruction.
  for (const ttg::trace::Metric& m : reg.snapshot()) {
    EXPECT_EQ(m.name.rfind("engine.r", 0), std::string::npos) << m.name;
  }
}

}  // namespace
