#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "termdet/termdet.hpp"

namespace {

using ttg::TermDetMode;
using ttg::TerminationDetector;

class TermDetModeTest : public ::testing::TestWithParam<TermDetMode> {};

TEST_P(TermDetModeTest, NoTerminationWhileProducerActive) {
  TerminationDetector det(1, GetParam());
  det.thread_attach(0);
  // The attached thread is active: repeated wave advances must not
  // announce termination even with zero pending tasks.
  for (int i = 0; i < 10; ++i) det.advance_wave();
  EXPECT_FALSE(det.terminated());
}

TEST_P(TermDetModeTest, TerminatesAfterWorkCompletes) {
  TerminationDetector det(1, GetParam());
  det.thread_attach(0);
  det.on_discovered(3);
  for (int i = 0; i < 3; ++i) det.on_completed();
  det.on_idle();
  // The wave needs two stable rounds; idle polling drives it.
  for (int i = 0; i < 5 && !det.terminated(); ++i) det.advance_wave();
  EXPECT_TRUE(det.terminated());
  EXPECT_EQ(det.total_discovered(), 3);
  EXPECT_EQ(det.total_completed(), 3);
}

TEST_P(TermDetModeTest, PendingWorkBlocksTermination) {
  TerminationDetector det(1, GetParam());
  det.thread_attach(0);
  det.on_discovered(2);
  det.on_completed();
  det.on_idle();  // flush: one task still pending
  for (int i = 0; i < 10; ++i) det.advance_wave();
  EXPECT_FALSE(det.terminated());
  // Completing the last task (thread resumes, finishes, idles again)
  // unlocks termination.
  det.on_resume();
  det.on_completed();
  det.on_idle();
  for (int i = 0; i < 5 && !det.terminated(); ++i) det.advance_wave();
  EXPECT_TRUE(det.terminated());
}

TEST_P(TermDetModeTest, ResetStartsFreshEpoch) {
  TerminationDetector det(1, GetParam());
  det.thread_attach(0);
  det.on_discovered(1);
  det.on_completed();
  det.on_idle();
  for (int i = 0; i < 5 && !det.terminated(); ++i) det.advance_wave();
  ASSERT_TRUE(det.terminated());

  det.reset();
  EXPECT_FALSE(det.terminated());
  det.on_resume();
  det.on_discovered(1);
  det.on_idle();  // flush; pending == 1
  for (int i = 0; i < 10; ++i) det.advance_wave();
  EXPECT_FALSE(det.terminated());
  det.on_resume();
  det.on_completed();
  det.on_idle();
  for (int i = 0; i < 5 && !det.terminated(); ++i) det.advance_wave();
  EXPECT_TRUE(det.terminated());
}

TEST_P(TermDetModeTest, InFlightMessageBlocksTermination) {
  TerminationDetector det(2, GetParam());
  det.thread_attach(0);
  det.on_message_sent();
  det.on_idle();  // rank 0 quiet, but sent != received globally
  for (int i = 0; i < 10; ++i) det.advance_wave();
  EXPECT_FALSE(det.terminated());
}

TEST_P(TermDetModeTest, MultiRankMessageFlow) {
  TerminationDetector det(2, GetParam());
  // Rank 0 producer.
  det.thread_attach(0);
  det.on_message_sent();
  det.on_idle();
  EXPECT_FALSE(det.terminated());

  // A rank-1 worker receives the message, runs the task it carries, and
  // goes idle; now the system is globally quiet and counts match.
  std::thread rank1([&] {
    det.thread_attach(1);
    det.on_message_received();
    det.on_discovered(1);
    det.on_completed();
    det.on_idle();
    for (int i = 0; i < 10 && !det.terminated(); ++i) det.advance_wave();
  });
  rank1.join();
  EXPECT_TRUE(det.terminated());
}

TEST_P(TermDetModeTest, ManyThreadsRandomWork) {
  // Property: termination is announced only after discovered==completed,
  // and it is always announced eventually.
  const auto mode = GetParam();
  TerminationDetector det(1, mode);
  det.thread_attach(0);
  constexpr int kThreads = 4;
  constexpr int kTasksPerThread = 2000;
  det.on_discovered(kThreads);  // one seed task per worker

  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&] {
      det.thread_attach(0);
      // Simulate a recursive workload: each seed discovers children.
      for (int i = 0; i < kTasksPerThread; ++i) det.on_discovered();
      for (int i = 0; i < kTasksPerThread; ++i) det.on_completed();
      det.on_completed();  // the seed itself
      det.on_idle();
    });
  }
  for (auto& t : workers) t.join();
  det.on_idle();
  for (int i = 0; i < 10 && !det.terminated(); ++i) det.advance_wave();
  EXPECT_TRUE(det.terminated());
  EXPECT_EQ(det.total_discovered(), det.total_completed());
}

INSTANTIATE_TEST_SUITE_P(Modes, TermDetModeTest,
                         ::testing::Values(TermDetMode::kProcessAtomic,
                                           TermDetMode::kThreadLocal));

TEST(TermDet, ThreadLocalModeDefersProcessCounter) {
  TerminationDetector det(1, TermDetMode::kThreadLocal);
  det.thread_attach(0);
  det.on_discovered(5);
  // Not flushed yet: the rank-wide counter is untouched.
  EXPECT_EQ(det.rank_pending(0), 0);
  det.on_idle();
  EXPECT_EQ(det.rank_pending(0), 5);
}

TEST(TermDet, ProcessAtomicModeUpdatesImmediately) {
  TerminationDetector det(1, TermDetMode::kProcessAtomic);
  det.thread_attach(0);
  det.on_discovered(5);
  EXPECT_EQ(det.rank_pending(0), 5);
}

}  // namespace
