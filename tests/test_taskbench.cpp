#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <tuple>

#include "taskbench/taskbench.hpp"

namespace {

using taskbench::BenchConfig;
using taskbench::Pattern;

const Pattern kAllPatterns[] = {
    Pattern::kTrivial,  Pattern::kNoComm, Pattern::kStencil1D,
    Pattern::kStencil1DPeriodic, Pattern::kFFT, Pattern::kTree,
};

// ----------------------------------------------------------- pattern algebra

class PatternTest : public ::testing::TestWithParam<Pattern> {};

TEST_P(PatternTest, DependenciesSortedAndInRange) {
  BenchConfig cfg;
  cfg.pattern = GetParam();
  cfg.width = 8;
  cfg.steps = 12;
  for (int t = 0; t <= cfg.steps; ++t) {
    for (int x = 0; x < cfg.width; ++x) {
      const auto deps = taskbench::dependencies(cfg, t, x);
      EXPECT_TRUE(std::is_sorted(deps.begin(), deps.end()));
      EXPECT_TRUE(std::adjacent_find(deps.begin(), deps.end()) ==
                  deps.end())
          << "duplicate dependency";
      for (int d : deps) {
        EXPECT_GE(d, 0);
        EXPECT_LT(d, cfg.width);
      }
      if (t == 0) {
        EXPECT_TRUE(deps.empty());
      }
    }
  }
}

TEST_P(PatternTest, ForwardIsInverseOfBackward) {
  // The property TTG depends on (Sec. V-D): x at t feeds nx at t+1 iff
  // nx at t+1 depends on x at t.
  BenchConfig cfg;
  cfg.pattern = GetParam();
  cfg.width = 8;
  cfg.steps = 12;
  for (int t = 0; t < cfg.steps; ++t) {
    for (int x = 0; x < cfg.width; ++x) {
      const auto rdeps = taskbench::reverse_dependencies(cfg, t, x);
      for (int nx = 0; nx < cfg.width; ++nx) {
        const auto deps = taskbench::dependencies(cfg, t + 1, nx);
        const bool fwd =
            std::binary_search(rdeps.begin(), rdeps.end(), nx);
        const bool bwd = std::binary_search(deps.begin(), deps.end(), x);
        EXPECT_EQ(fwd, bwd) << "t=" << t << " x=" << x << " nx=" << nx;
      }
    }
  }
}

TEST_P(PatternTest, LastStepHasNoForwardDeps) {
  BenchConfig cfg;
  cfg.pattern = GetParam();
  cfg.width = 4;
  cfg.steps = 5;
  for (int x = 0; x < cfg.width; ++x) {
    EXPECT_TRUE(
        taskbench::reverse_dependencies(cfg, cfg.steps, x).empty());
  }
}

INSTANTIATE_TEST_SUITE_P(Patterns, PatternTest,
                         ::testing::ValuesIn(kAllPatterns),
                         [](const auto& info) {
                           return taskbench::to_string(info.param);
                         });

TEST(Pattern, Stencil1DShape) {
  BenchConfig cfg;
  cfg.pattern = Pattern::kStencil1D;
  cfg.width = 5;
  cfg.steps = 3;
  EXPECT_EQ(taskbench::dependencies(cfg, 1, 0), (std::vector<int>{0, 1}));
  EXPECT_EQ(taskbench::dependencies(cfg, 1, 2),
            (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(taskbench::dependencies(cfg, 1, 4), (std::vector<int>{3, 4}));
}

TEST(Pattern, ReferenceChecksumDeterministic) {
  BenchConfig cfg;
  cfg.width = 4;
  cfg.steps = 50;
  EXPECT_EQ(taskbench::reference_checksum(cfg),
            taskbench::reference_checksum(cfg));
  BenchConfig other = cfg;
  other.steps = 51;
  EXPECT_NE(taskbench::reference_checksum(cfg),
            taskbench::reference_checksum(other));
}

TEST(Kernel, IterationsScaleDuration) {
  // Not a timing assert (too flaky); just exercise both branches.
  EXPECT_EQ(taskbench::kernel_compute(0), 0u);
  EXPECT_NE(taskbench::kernel_compute(10), 0u);
  EXPECT_EQ(taskbench::flops_to_iterations(0), 0u);
  EXPECT_EQ(taskbench::flops_to_iterations(1), 1u);
  EXPECT_EQ(taskbench::flops_to_iterations(taskbench::kFlopsPerIteration),
            1u);
  EXPECT_EQ(
      taskbench::flops_to_iterations(taskbench::kFlopsPerIteration + 1),
      2u);
}

// ---------------------------------------------- implementations vs reference

struct ImplCase {
  std::string impl;
  Pattern pattern;
};

class ImplCorrectnessTest : public ::testing::TestWithParam<ImplCase> {};

TEST_P(ImplCorrectnessTest, ChecksumMatchesReference) {
  const auto& param = GetParam();
  const auto* impl = taskbench::find_implementation(param.impl);
  ASSERT_NE(impl, nullptr);
  BenchConfig cfg;
  cfg.pattern = param.pattern;
  cfg.width = 4;
  cfg.steps = 40;
  cfg.iterations = 2;
  const auto result = impl->run(cfg, 2);
  EXPECT_TRUE(result.checksum_ok)
      << impl->name << " checksum mismatch on "
      << taskbench::to_string(param.pattern);
  EXPECT_EQ(result.tasks, static_cast<std::uint64_t>(cfg.width) * cfg.steps);
}

std::vector<ImplCase> impl_cases() {
  std::vector<ImplCase> cases;
  for (const auto& impl : taskbench::implementations()) {
    for (Pattern p : kAllPatterns) {
      // The BSP (MPI-substitute) periodic stencil halo exchange is not
      // implemented; it falls back to all-gather which covers fft/tree.
      cases.push_back({impl.name, p});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    AllImpls, ImplCorrectnessTest, ::testing::ValuesIn(impl_cases()),
    [](const auto& info) {
      return info.param.impl + "_" + taskbench::to_string(info.param.pattern);
    });

TEST(ImplRegistry, ContainsCoreImplementations) {
  EXPECT_NE(taskbench::find_implementation("ttg"), nullptr);
  EXPECT_NE(taskbench::find_implementation("ttg_original"), nullptr);
  EXPECT_NE(taskbench::find_implementation("ptg"), nullptr);
  EXPECT_NE(taskbench::find_implementation("mpi_bsp"), nullptr);
  EXPECT_NE(taskbench::find_implementation("taskflow_mini"), nullptr);
  EXPECT_EQ(taskbench::find_implementation("nonexistent"), nullptr);
}

TEST(ImplSingleWidth, WidthOneChainWorks) {
  // Degenerate grid: one point per step.
  for (const auto& impl : taskbench::implementations()) {
    BenchConfig cfg;
    cfg.pattern = Pattern::kStencil1D;
    cfg.width = 1;
    cfg.steps = 30;
    const auto result = impl.run(cfg, 1);
    EXPECT_TRUE(result.checksum_ok) << impl.name;
  }
}

}  // namespace

namespace {

// ----------------------------------------------------------------- kernels

TEST(Kernels, MemoryBoundDoesWork) {
  EXPECT_EQ(taskbench::kernel_memory(0), 0u);
  EXPECT_NE(taskbench::kernel_memory(1), 0u);
}

TEST(Kernels, ImbalanceIsDeterministicPerTask) {
  taskbench::BenchConfig cfg;
  cfg.kernel = taskbench::Kernel::kImbalance;
  cfg.iterations = 50;
  EXPECT_EQ(taskbench::run_kernel(cfg, 3, 4),
            taskbench::run_kernel(cfg, 3, 4));
}

TEST(Kernels, EmptyKernelIsFree) {
  taskbench::BenchConfig cfg;
  cfg.kernel = taskbench::Kernel::kEmpty;
  cfg.iterations = 1000000;  // ignored
  EXPECT_EQ(taskbench::run_kernel(cfg, 0, 0), 0u);
}

struct KernelCase {
  std::string impl;
  taskbench::Kernel kernel;
};

class KernelCorrectnessTest : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelCorrectnessTest, ChecksumUnaffectedByKernelChoice) {
  // The kernel is pure overhead: whatever work it does, the value
  // recurrence (and hence the checksum) must not change.
  const auto& param = GetParam();
  const auto* impl = taskbench::find_implementation(param.impl);
  ASSERT_NE(impl, nullptr);
  taskbench::BenchConfig cfg;
  cfg.pattern = Pattern::kStencil1D;
  cfg.kernel = param.kernel;
  cfg.width = 3;
  cfg.steps = 20;
  cfg.iterations = param.kernel == taskbench::Kernel::kMemoryBound ? 1 : 10;
  const auto result = impl->run(cfg, 2);
  EXPECT_TRUE(result.checksum_ok)
      << param.impl << " with kernel " << taskbench::to_string(param.kernel);
}

std::vector<KernelCase> kernel_cases() {
  std::vector<KernelCase> cases;
  for (const char* impl : {"ttg", "ptg", "ptg_dsl", "mpi_bsp"}) {
    for (auto k : {taskbench::Kernel::kEmpty, taskbench::Kernel::kComputeBound,
                   taskbench::Kernel::kMemoryBound,
                   taskbench::Kernel::kImbalance}) {
      cases.push_back({impl, k});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    KernelsXImpls, KernelCorrectnessTest,
    ::testing::ValuesIn(kernel_cases()), [](const auto& info) {
      return info.param.impl + "_" +
             taskbench::to_string(info.param.kernel);
    });

}  // namespace
