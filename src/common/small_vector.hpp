// Minimal small-size-optimized vector.
//
// Used for per-task bounded collections that are almost always tiny (the
// copies gathered by an aggregator terminal, successor-key lists) where a
// heap allocation per task would dominate the task overhead this project
// exists to minimize.
#pragma once

#include <cassert>
#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace ttg {

template <typename T, std::size_t N>
class SmallVector {
  static_assert(std::is_trivially_copyable_v<T>,
                "SmallVector is restricted to trivially copyable types");

 public:
  SmallVector() = default;
  SmallVector(const SmallVector& other) { *this = other; }
  SmallVector& operator=(const SmallVector& other) {
    clear();
    reserve(other.size_);
    std::memcpy(data(), other.data(), other.size_ * sizeof(T));
    size_ = other.size_;
    return *this;
  }
  SmallVector(SmallVector&& other) noexcept { *this = std::move(other); }
  SmallVector& operator=(SmallVector&& other) noexcept {
    clear();
    if (other.heap_ != nullptr) {
      heap_ = other.heap_;
      capacity_ = other.capacity_;
      other.heap_ = nullptr;
      other.capacity_ = N;
    } else {
      std::memcpy(inline_storage(), other.inline_storage(),
                  other.size_ * sizeof(T));
    }
    size_ = other.size_;
    other.size_ = 0;
    return *this;
  }
  ~SmallVector() { clear(); }

  void push_back(const T& v) {
    if (size_ == capacity_) grow();
    data()[size_++] = v;
  }

  void clear() noexcept {
    ::operator delete[](heap_);
    heap_ = nullptr;
    capacity_ = N;
    size_ = 0;
  }

  void reserve(std::size_t n) {
    while (capacity_ < n) grow();
  }

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  T* data() noexcept {
    return heap_ != nullptr ? heap_ : inline_storage();
  }
  const T* data() const noexcept {
    return heap_ != nullptr ? heap_ : inline_storage();
  }

  T& operator[](std::size_t i) noexcept {
    assert(i < size_);
    return data()[i];
  }
  const T& operator[](std::size_t i) const noexcept {
    assert(i < size_);
    return data()[i];
  }

  T* begin() noexcept { return data(); }
  T* end() noexcept { return data() + size_; }
  const T* begin() const noexcept { return data(); }
  const T* end() const noexcept { return data() + size_; }

 private:
  T* inline_storage() noexcept {
    return reinterpret_cast<T*>(inline_bytes_);
  }
  const T* inline_storage() const noexcept {
    return reinterpret_cast<const T*>(inline_bytes_);
  }

  void grow() {
    const std::size_t new_cap = capacity_ * 2;
    T* heap = static_cast<T*>(::operator new[](new_cap * sizeof(T)));
    std::memcpy(heap, data(), size_ * sizeof(T));
    ::operator delete[](heap_);
    heap_ = heap;
    capacity_ = new_cap;
  }

  alignas(T) unsigned char inline_bytes_[N * sizeof(T)];
  T* heap_ = nullptr;
  std::size_t capacity_ = N;
  std::size_t size_ = 0;
};

}  // namespace ttg
