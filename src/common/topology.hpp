// Machine-topology discovery (NUMA nodes and their CPUs).
//
// The hierarchical steal order (sched/StealOrder), the ingress shards
// and the NUMA-local memory pools (structures/mempool.hpp) all need the
// same map: how many memory domains the machine has and which domain a
// worker lives in. This module reads it once from the Linux sysfs tree
// (/sys/devices/system/{node,cpu}) and degrades to a flat single-domain
// topology anywhere that tree is absent (non-Linux, containers with
// masked sysfs, UMA boxes).
//
// Domain ids are *dense* (0..num_domains-1) and stable: sysfs node
// directories are ordered by their numeric node id before dense ids are
// assigned, so node10 never sorts between node1 and node2.
//
// Threads carry a domain id (this_thread::domain()): workers are pinned
// to their steal domain's id by the engine at startup, other threads
// default to a stable round-robin of their dense thread id. The id is a
// *placement hint* for pool routing, not an OS affinity mask — we shard
// memory traffic by domain without requiring the right to pin threads.
#pragma once

#include <string>
#include <vector>

namespace ttg {

/// Upper bound on memory domains the runtime distinguishes; larger
/// machines fold ring-wise. Sized so per-domain arrays (pool inboxes,
/// ingress shards) can be allocated statically and tests can simulate
/// many-domain topologies on flat boxes.
inline constexpr int kMaxMemoryDomains = 64;

struct Topology {
  int num_cpus = 1;     ///< highest cpu id seen + 1
  int num_domains = 1;  ///< NUMA nodes with at least one CPU (>= 1)
  bool from_sysfs = false;  ///< false = flat fallback
  /// Dense domain id per cpu id (size num_cpus); cpus not listed in any
  /// node (offline holes) map to domain 0.
  std::vector<int> cpu_to_domain;
  /// CPUs per dense domain id (size num_domains).
  std::vector<int> domain_cpu_count;
};

/// Expands a sysfs cpulist ("0-3,8,10-11") into cpu ids, in order.
std::vector<int> parse_cpulist(const std::string& text);

/// Parses a sysfs-style tree rooted at `root` (tests point this at
/// canned fixture trees; production uses /sys/devices/system). Returns
/// the flat fallback when the node directory is missing or lists fewer
/// than two populated nodes.
Topology discover_topology(const std::string& root);

/// The machine topology, discovered once per process from
/// /sys/devices/system.
const Topology& topology();

/// Number of memory domains, clamped to [1, kMaxMemoryDomains].
int memory_domains();

/// Default steal-domain size for `num_workers` workers: workers per
/// memory domain (ceil), or 0 (flat) on single-domain machines —
/// feeding Config::steal_domain_size when it is left at auto (0).
int default_steal_domain_size(int num_workers);

/// Dense memory domain a worker index maps to under `domain_size`
/// workers per domain (the same map StealOrder and IngressShards use):
/// floor(worker / domain_size), folded ring-wise over the domains.
/// domain_size <= 1 (flat) folds the worker index directly.
int worker_domain(int worker, int domain_size);

namespace this_thread {

/// The calling thread's memory domain: the value set by set_domain(),
/// or a stable default (dense thread id folded over the domains).
int domain();

/// Pins the calling thread's domain id (engine worker startup; tests
/// simulating multi-domain placement). Folded into
/// [0, kMaxMemoryDomains); negative resets to the default.
void set_domain(int d);

}  // namespace this_thread

}  // namespace ttg
