#include "common/cycle_clock.hpp"

namespace ttg {

namespace {

double calibrate() {
  using clock = std::chrono::steady_clock;
  const auto t0 = clock::now();
  const std::uint64_t c0 = rdtsc();
  // Spin for ~10ms of wall time; long enough to average out scheduling
  // noise, short enough to be invisible at startup.
  while (std::chrono::duration<double>(clock::now() - t0).count() < 0.01) {
  }
  const std::uint64_t c1 = rdtsc();
  const auto t1 = clock::now();
  const double ns =
      std::chrono::duration<double, std::nano>(t1 - t0).count();
  double rate = static_cast<double>(c1 - c0) / ns;
  // Guard against a non-invariant TSC or fallback clock reporting ~1.
  if (rate <= 0.0) rate = 1.0;
  return rate;
}

}  // namespace

double cycles_per_ns() {
  static const double rate = calibrate();
  return rate;
}

}  // namespace ttg
