// Cycle-granularity timing.
//
// The paper's scheduler benchmarks (Fig. 6) parameterize task duration in
// *cycles* measured with rdtsc. We expose the TSC directly on x86-64 and
// fall back to steady_clock-derived pseudo-cycles elsewhere, plus a
// one-time calibration of cycles-per-nanosecond so results can be
// reported in either unit.
#pragma once

#include <chrono>
#include <cstdint>

#if defined(__x86_64__) || defined(_M_X64)
#include <x86intrin.h>
#endif

namespace ttg {

/// Reads the timestamp counter. Monotonic on any post-2010 x86-64 part
/// (invariant TSC); the fallback uses the steady clock at ns resolution.
inline std::uint64_t rdtsc() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  return __rdtsc();
#else
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
#endif
}

/// Cycles per nanosecond, measured once at first use by timing the TSC
/// against the steady clock for ~10 ms.
double cycles_per_ns();

/// Converts a cycle count to nanoseconds using the calibrated rate.
inline double cycles_to_ns(std::uint64_t cycles) {
  return static_cast<double>(cycles) / cycles_per_ns();
}

/// Converts nanoseconds to cycles using the calibrated rate.
inline std::uint64_t ns_to_cycles(double ns) {
  return static_cast<std::uint64_t>(ns * cycles_per_ns());
}

/// Simple wall-clock stopwatch used by benches and tests.
class WallTimer {
 public:
  WallTimer() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace ttg
