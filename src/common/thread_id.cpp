#include "common/thread_id.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace ttg::this_thread {

namespace {
std::atomic<int> g_next_id{0};

int allocate_id() {
  const int id = g_next_id.fetch_add(1, std::memory_order_relaxed);
  if (id >= kMaxThreads) {
    std::fprintf(stderr,
                 "ttg-smalltask: more than %d threads used the runtime\n",
                 kMaxThreads);
    std::abort();
  }
  return id;
}
}  // namespace

int id() {
  thread_local const int tid = allocate_id();
  return tid;
}

int id_count() { return g_next_id.load(std::memory_order_relaxed); }

}  // namespace ttg::this_thread
