// Cache-line geometry and padding helpers.
//
// Almost every shared data structure in the runtime pads its per-thread
// state to a cache line to avoid false sharing (the paper allocates "at
// least one cache-line per thread" in the BRAVO visible-reader tables,
// Sec. IV-D). These helpers centralize that.
#pragma once

#include <cstddef>
#include <new>

namespace ttg {

/// Cache-line size assumed throughout the runtime. std::hardware_
/// destructive_interference_size is not reliably defined on all
/// toolchains, so we pin the common x86-64 / POWER value.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps a T so that consecutive array elements never share a cache line.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};

  T& operator*() noexcept { return value; }
  const T& operator*() const noexcept { return value; }
  T* operator->() noexcept { return &value; }
  const T* operator->() const noexcept { return &value; }
};

static_assert(sizeof(CachePadded<char>) == kCacheLineSize);

}  // namespace ttg
