// Dense per-thread integer identifiers.
//
// The BRAVO visible-reader tables (Sec. IV-D) and the per-thread
// termination-detection counters (Sec. IV-B) both need a dense small
// integer per OS thread, assigned on first use and stable for the
// thread's lifetime.
#pragma once

#include <cstdint>

namespace ttg {

/// Hard upper bound on threads that may ever touch the runtime in one
/// process; sizes the per-lock BRAVO tables and per-thread counter
/// arrays. 256 comfortably covers the paper's 64-core machines.
inline constexpr int kMaxThreads = 256;

namespace this_thread {

/// Returns this thread's dense id in [0, kMaxThreads). Assigned on first
/// call; aborts if more than kMaxThreads distinct threads ask.
int id();

/// Number of ids handed out so far (an upper bound on live threads).
int id_count();

}  // namespace this_thread
}  // namespace ttg
