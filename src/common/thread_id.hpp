// Dense per-thread integer identifiers.
//
// The BRAVO visible-reader tables (Sec. IV-D) and the per-thread
// termination-detection counters (Sec. IV-B) both need a dense small
// integer per OS thread, assigned on first use and stable for the
// thread's lifetime.
#pragma once

#include <cstdint>

namespace ttg {

/// Hard upper bound on threads that may ever touch the runtime in one
/// process; sizes the per-lock BRAVO tables and per-thread counter
/// arrays. Ids are never recycled, so the bound covers *cumulative*
/// thread creation: a bench sweeping thread counts over fresh Worlds
/// (e.g. fig6 at --max-threads=8, ~270 workers over its lifetime) burns
/// ids long after the paper's 64-core ceiling. 1024 keeps such sweeps
/// comfortably in range; the cost is linear in the bound only for rare
/// whole-table scans (BRAVO revocation on hash-table resize).
inline constexpr int kMaxThreads = 1024;

namespace this_thread {

/// Returns this thread's dense id in [0, kMaxThreads). Assigned on first
/// call; aborts if more than kMaxThreads distinct threads ask.
int id();

/// Number of ids handed out so far (an upper bound on live threads).
int id_count();

}  // namespace this_thread
}  // namespace ttg
