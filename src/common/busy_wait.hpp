// Busy-wait primitives.
//
// Fig. 6 of the paper blocks each task "until a given number of cycles
// has passed (using the rdtsc counter)". busy_wait_cycles() reproduces
// that exactly. Backoff is the standard exponential pause used inside
// spin loops.
#pragma once

#include <cstdint>

#include "common/cycle_clock.hpp"
#include "sim/hooks.hpp"

#if defined(__x86_64__) || defined(_M_X64)
#include <immintrin.h>
#endif

namespace ttg {

/// CPU pause hint for spin loops.
inline void cpu_relax() noexcept {
#if defined(__x86_64__) || defined(_M_X64)
  _mm_pause();
#endif
}

/// Spins until `cycles` TSC ticks have elapsed. cycles == 0 returns
/// immediately (the "empty task" configuration).
inline void busy_wait_cycles(std::uint64_t cycles) noexcept {
  if (cycles == 0) return;
#if defined(TTG_SIM)
  // Under deterministic simulation wall-clock spinning would never
  // terminate (the TSC advances but virtual time is step-driven, and the
  // single running thread must yield for anyone else to make progress).
  // Model the wait as one preemption point.
  TTG_SIM_POINT("busy_wait_cycles");
  return;
#else
  const std::uint64_t start = rdtsc();
  while (rdtsc() - start < cycles) {
    cpu_relax();
  }
#endif
}

/// Exponential backoff for contended CAS loops: spins with pause, and
/// doubles the spin count up to a cap on every invocation.
class Backoff {
 public:
  void pause() noexcept {
    // Every contended spin loop in the runtime waits through here, so a
    // single yield hook covers them all in the instrumented build.
    TTG_SIM_POINT("backoff.pause");
    for (std::uint32_t i = 0; i < spins_; ++i) cpu_relax();
    if (spins_ < kMaxSpins) spins_ *= 2;
  }
  void reset() noexcept { spins_ = 1; }

 private:
  static constexpr std::uint32_t kMaxSpins = 1024;
  std::uint32_t spins_ = 1;
};

}  // namespace ttg
