#include "common/topology.hpp"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <thread>
#include <utility>

#include "common/thread_id.hpp"

namespace ttg {

namespace {

std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  std::getline(in, line);
  return line;
}

/// Hard ceiling on cpu ids accepted from a (possibly malformed) cpulist
/// so "0-4294967295" cannot blow memory up.
constexpr int kMaxCpus = 4096;

}  // namespace

std::vector<int> parse_cpulist(const std::string& text) {
  std::vector<int> cpus;
  std::size_t i = 0;
  const auto digit = [&](std::size_t j) {
    return j < text.size() &&
           std::isdigit(static_cast<unsigned char>(text[j])) != 0;
  };
  const auto parse_int = [&] {
    long v = 0;
    while (digit(i)) {
      v = v * 10 + (text[i] - '0');
      if (v > kMaxCpus) v = kMaxCpus;
      ++i;
    }
    return static_cast<int>(v);
  };
  while (i < text.size()) {
    if (!digit(i)) {
      ++i;
      continue;
    }
    const int lo = parse_int();
    int hi = lo;
    if (i < text.size() && text[i] == '-' && digit(i + 1)) {
      ++i;
      hi = parse_int();
    }
    for (int c = lo; c <= hi && c < kMaxCpus; ++c) cpus.push_back(c);
  }
  return cpus;
}

Topology discover_topology(const std::string& root) {
  namespace fs = std::filesystem;
  Topology topo;

  // Nodes: every node<N> directory with a non-empty cpulist. Collected
  // with their numeric ids first, then sorted, so dense domain ids do
  // not depend on directory-iteration order (domain-id stability).
  std::vector<std::pair<int, std::vector<int>>> nodes;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(root + "/node", ec)) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("node", 0) != 0 || name.size() <= 4) continue;
    const std::string id_str = name.substr(4);
    if (!std::all_of(id_str.begin(), id_str.end(), [](unsigned char c) {
          return std::isdigit(c) != 0;
        })) {
      continue;
    }
    const std::vector<int> cpus =
        parse_cpulist(read_first_line((entry.path() / "cpulist").string()));
    if (cpus.empty()) continue;  // memory-only node: no compute placement
    nodes.emplace_back(std::atoi(id_str.c_str()), cpus);
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });

  int max_cpu = -1;
  for (const auto& [id, cpus] : nodes) {
    for (int c : cpus) max_cpu = std::max(max_cpu, c);
  }
  for (int c : parse_cpulist(read_first_line(root + "/cpu/online"))) {
    max_cpu = std::max(max_cpu, c);
  }

  if (max_cpu < 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    max_cpu = hw > 0 ? static_cast<int>(hw) - 1 : 0;
  }
  topo.num_cpus = max_cpu + 1;
  topo.cpu_to_domain.assign(static_cast<std::size_t>(topo.num_cpus), 0);

  if (nodes.size() < 2) {
    // Flat fallback: no sysfs, or a single populated node — one domain.
    topo.num_domains = 1;
    topo.from_sysfs = !nodes.empty();
    topo.domain_cpu_count.assign(1, topo.num_cpus);
    return topo;
  }

  topo.from_sysfs = true;
  topo.num_domains = static_cast<int>(nodes.size());
  topo.domain_cpu_count.assign(nodes.size(), 0);
  for (std::size_t dense = 0; dense < nodes.size(); ++dense) {
    for (int c : nodes[dense].second) {
      if (c >= 0 && c < topo.num_cpus) {
        topo.cpu_to_domain[static_cast<std::size_t>(c)] =
            static_cast<int>(dense);
      }
    }
    topo.domain_cpu_count[dense] = static_cast<int>(nodes[dense].second.size());
  }
  return topo;
}

const Topology& topology() {
  static const Topology topo = discover_topology("/sys/devices/system");
  return topo;
}

int memory_domains() {
  const int n = topology().num_domains;
  return std::clamp(n, 1, kMaxMemoryDomains);
}

int default_steal_domain_size(int num_workers) {
  const int domains = memory_domains();
  if (domains <= 1 || num_workers <= 1) return 0;
  return (num_workers + domains - 1) / domains;
}

int worker_domain(int worker, int domain_size) {
  const int domains = memory_domains();
  if (worker < 0) return 0;
  if (domain_size <= 1) return worker % domains;
  return (worker / domain_size) % domains;
}

namespace this_thread {

namespace {
thread_local int t_domain = -1;
}  // namespace

int domain() {
  int d = t_domain;
  if (d < 0) {
    d = id() % memory_domains();
    t_domain = d;
  }
  return d;
}

void set_domain(int d) {
  t_domain = d < 0 ? -1 : d % kMaxMemoryDomains;
}

}  // namespace this_thread

}  // namespace ttg
