// Small deterministic RNGs for workload generation and tests.
//
// Benchmarks must be reproducible run-to-run, so all workload generators
// (MRA Gaussian centers, Task-Bench random patterns, stress tests) seed
// explicitly and use these engines instead of std::random_device.
#pragma once

#include <cstdint>
#include <cstdlib>

namespace ttg {

/// SplitMix64: tiny, fast, passes BigCrush for seeding purposes.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound).
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

 private:
  std::uint64_t state_;
};

/// RNG for randomized tests: seeds from the TTG_TEST_SEED environment
/// variable when set (so any test re-runs under a chosen seed without a
/// rebuild), otherwise from the test's own default. Tests include
/// seed() in failure messages so every randomized failure uniformly
/// reports the seed that reproduces it.
class TestRng {
 public:
  explicit TestRng(std::uint64_t default_seed)
      : seed_(resolve_seed(default_seed)), rng_(seed_) {}

  std::uint64_t seed() const noexcept { return seed_; }

  std::uint64_t next() noexcept { return rng_.next(); }
  double next_double() noexcept { return rng_.next_double(); }
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return rng_.next_below(bound);
  }

 private:
  static std::uint64_t resolve_seed(std::uint64_t fallback) noexcept {
    const char* v = std::getenv("TTG_TEST_SEED");
    if (v == nullptr || *v == '\0') return fallback;
    return std::strtoull(v, nullptr, 10);
  }

  std::uint64_t seed_;
  SplitMix64 rng_;
};

/// Mixes a 64-bit value; used as the default hash finalizer for task IDs.
inline std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 33)) * 0xff51afd7ed558ccdULL;
  z = (z ^ (z >> 33)) * 0xc4ceb9fe1a85ec53ULL;
  return z ^ (z >> 33);
}

}  // namespace ttg
