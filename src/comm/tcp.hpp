// Out-of-process transport: length-prefixed TCP active messages
// (docs/distributed.md). No MPI dependency.
//
// Wire format (all little-endian, as produced by the sending CPU —
// homogeneous clusters only, like the paper's):
//
//   [u32 length][u8 kind][payload ...]
//
// where `length` counts the kind byte plus the payload and is capped at
// serde.hpp's kMaxFrameBytes (a corrupt prefix is rejected before any
// allocation). Kinds:
//
//   kHello    — first frame on every connection: magic, version, rank.
//   kUser     — opaque payload handed to the FrameHandler (the World's
//               protocol: deliveries, termination tokens, aborts).
//   kPing     — heartbeat; refreshes the peer's liveness clock.
//   kGoodbye  — clean shutdown notice: the following EOF is not a loss.
//
// Bootstrap (rendezvous): every rank reads
//
//   TTG_COMM_RANK   — this process's rank            (required)
//   TTG_COMM_SIZE   — number of ranks                (required)
//   TTG_COMM_HOSTS  — comma-separated host:port, one per rank (required)
//   TTG_COMM_LISTEN_FD — optional: an inherited, already-listening
//        socket (launcher-assigned; tests/mp/mp_runner.py binds port 0
//        itself and passes the fd, so no port can be raced or leaked)
//   TTG_COMM_CONNECT_TIMEOUT_MS — connect retry window (default 10000)
//   TTG_COMM_TIMEOUT_MS — peer liveness timeout (default 5000)
//
// then builds a full mesh: rank i *connects* to every j < i (retrying
// until the peer's listener is up) and *accepts* from every j > i,
// identifying inbound connections by their hello frame. The ordering
// makes the mesh deadlock-free without a central coordinator.
//
// A dedicated progress thread per rank polls all peer sockets: it
// parses frames out of per-peer receive buffers (partial reads are
// normal), dispatches kUser payloads to the FrameHandler, answers the
// heartbeat clock, and turns an unexpected EOF/error — e.g. a peer
// killed with SIGKILL mid-epoch — into exactly one LossHandler call so
// the World can abort instead of hanging. Sends are blocking writes
// under a per-peer mutex on the calling thread (seeding threads and
// workers post directly; no send queue).
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "comm/communicator.hpp"

namespace ttg::comm {

class TcpCommunicator final : public Communicator {
 public:
  /// Bootstrap parameters; from_env() fills them from TTG_COMM_*.
  struct Options {
    int rank = -1;
    int size = 0;
    std::vector<std::string> hosts;  // host:port per rank
    int listen_fd = -1;              // inherited listener, or -1 to bind
    int connect_timeout_ms = 10000;
    int peer_timeout_ms = 5000;      // 0 disables the liveness clock
    int heartbeat_ms = 1000;
  };

  /// Reads the TTG_COMM_* environment; throws std::runtime_error on a
  /// missing/malformed variable.
  static Options from_env();

  /// Binds/inherits the listener and builds the full mesh; blocks until
  /// every peer is connected (or throws after the connect timeout).
  /// The progress thread is running when the constructor returns.
  explicit TcpCommunicator(const Options& options);
  ~TcpCommunicator() override;

  int rank() const override { return rank_; }
  int size() const override { return size_; }

  /// The progress thread is live before the World installs its
  /// handlers (it starts in the constructor, and a fast peer can seed
  /// work immediately after its own bootstrap returns). Frames and loss
  /// events that arrive in that window are buffered and replayed, in
  /// order, when the handler is installed — dropping them would leave
  /// the sender's sent-counter unbalanced forever and hang termination.
  void set_frame_handler(FrameHandler handler) override;
  void set_loss_handler(LossHandler handler) override;

  void post(int target, const std::byte* data, std::size_t n) override;

  /// Sends goodbyes, joins the progress thread and closes every socket.
  /// Idempotent.
  void shutdown() override;

  /// Ranks whose connection was lost (diagnostics/tests).
  int peers_lost() const { return peers_lost_.load(std::memory_order_relaxed); }

 private:
  enum Kind : std::uint8_t {
    kUser = 0,
    kHello = 1,
    kPing = 2,
    kGoodbye = 3,
  };

  struct Peer {
    int fd = -1;
    std::mutex send_mutex;
    std::vector<std::byte> recv_buf;
    std::chrono::steady_clock::time_point last_seen{};
    bool goodbye = false;  // clean shutdown announced
    bool lost = false;     // loss handler already fired
  };

  void bootstrap(const Options& options);
  void progress_main();
  /// Drains readable bytes from `peer`'s socket and dispatches complete
  /// frames. Returns false when the connection ended (EOF or error).
  bool drain_peer(int peer_rank);
  void dispatch_frame(int peer_rank, std::uint8_t kind,
                      const std::byte* payload, std::size_t n);
  void declare_lost(int peer_rank, const std::string& why);
  void send_frame(int target, Kind kind, const std::byte* payload,
                  std::size_t n);

  int rank_ = -1;
  int size_ = 0;
  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};  // progress-thread wakeup for shutdown
  int heartbeat_ms_ = 1000;
  int peer_timeout_ms_ = 5000;
  std::vector<std::unique_ptr<Peer>> peers_;  // indexed by rank; [rank_] null
  /// Guards handler installation and the pre-handler buffers; every
  /// kUser dispatch takes it so buffered frames replay strictly before
  /// live ones (per-source FIFO).
  std::mutex handler_mutex_;
  FrameHandler handler_;
  LossHandler loss_handler_;
  struct EarlyFrame {
    int source;
    std::vector<std::byte> bytes;
  };
  std::vector<EarlyFrame> early_frames_;
  std::vector<std::pair<int, std::string>> early_losses_;
  std::thread progress_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> shut_down_{false};
  std::atomic<int> peers_lost_{0};
};

}  // namespace ttg::comm
