// In-process loopback transport: N rank endpoints in one process.
//
// The fabric is the Communicator implementation behind the classic
// multi-rank World (simulated ranks in one address space): a post() on
// rank i's endpoint invokes rank j's frame handler synchronously on the
// posting thread — the handler enqueues into the target rank's
// active-message queue exactly as a TCP frame would from the progress
// thread, so the World-level protocol code is shared between the two
// transports. It also serves as the model transport under the DST
// harness (tests/dst/dst_comm.cpp), where delivery interleavings are
// explored through the TTG_SIM_POINT yields.
#pragma once

#include <cassert>
#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "comm/communicator.hpp"
#include "sim/hooks.hpp"

namespace ttg::comm {

class LoopbackFabric {
 public:
  explicit LoopbackFabric(int size) {
    assert(size >= 1);
    endpoints_.reserve(static_cast<std::size_t>(size));
    for (int r = 0; r < size; ++r) {
      endpoints_.push_back(
          std::unique_ptr<Endpoint>(new Endpoint(this, r, size)));
    }
  }

  Communicator& endpoint(int rank) {
    return *endpoints_[static_cast<std::size_t>(rank)];
  }

 private:
  class Endpoint final : public Communicator {
   public:
    Endpoint(LoopbackFabric* fabric, int rank, int size)
        : fabric_(fabric), rank_(rank), size_(size) {}

    int rank() const override { return rank_; }
    int size() const override { return size_; }

    void set_frame_handler(FrameHandler handler) override {
      handler_ = std::move(handler);
    }
    void set_loss_handler(LossHandler handler) override {
      loss_ = std::move(handler);
    }

    void post(int target, const std::byte* data, std::size_t n) override {
      assert(target >= 0 && target < size_ && target != rank_);
      TTG_SIM_POINT("comm.loopback.post");
      Endpoint& dst = *fabric_->endpoints_[static_cast<std::size_t>(target)];
      assert(dst.handler_ && "loopback: frame handler not installed");
      dst.handler_(rank_, data, n);
    }

    bool supports_local_closures() const override { return true; }

   private:
    LoopbackFabric* fabric_;
    const int rank_;
    const int size_;
    FrameHandler handler_;
    LossHandler loss_;
  };

  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace ttg::comm
