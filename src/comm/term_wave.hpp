// Distributed four-counter termination wave over a real transport
// (paper Sec. III-A; docs/distributed.md).
//
// The in-process simulated-rank mode advances the wave through a shared
// reduction buffer (termdet/termdet.cpp): any idle thread contributes
// quiet ranks on their behalf. Across processes no such shared buffer
// exists, so the wave becomes a *token ring*: rank 0 (the root)
// launches a round by sending a token carrying its (sent, received)
// snapshot to rank 1; each rank holds the token until it is locally
// quiet, adds its own counters, and forwards it; when the token returns
// to the root, the round's totals are evaluated. Termination is
// announced when the totals are equal AND unchanged from the previous
// round — the same two-round stability test the in-process wave uses.
//
// Why two rounds: a single S==R round can be an *inconsistent snapshot*.
// A rank that contributed early can be re-activated by a late delivery
// and send messages that a later-contributing rank already counted as
// received — the sums balance while a message is still in flight. The
// soundness argument is the classic one: a quiet rank only becomes
// active again by receiving a message, and that receive changes R, so
// two consecutive rounds with identical equal totals imply an empty
// network. The `comm_termdet_early_quiet` mutant (scripts/
// mutation_gate.sh) announces after a single equal round and is caught
// by the dst_comm scenario exploring exactly that race.
//
// TermWave is transport-agnostic and header-only: the owner injects
// quietness/counter reads and token/announce sends through Hooks, so
// the same class runs over TcpCommunicator in a distributed World and
// over a model communicator inside the DST harness (tests/dst/
// dst_comm.cpp).
//
// Threading: on_token/on_announce are called from the transport's
// progress thread, poll() from the epoch's wait loop. All state is
// guarded by one mutex; the forward/announce hooks (which may take
// transport locks) are invoked outside it.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>

#include "sim/hooks.hpp"

namespace ttg::comm {

/// The circulating reduction token. round is per-epoch; sent/received
/// accumulate the per-rank counters of every rank the token visited.
struct TermToken {
  std::uint32_t round = 0;
  std::int64_t sent = 0;
  std::int64_t received = 0;
};

class TermWave {
 public:
  struct Hooks {
    /// True when this rank has no pending tasks and no active threads
    /// (all thread-local counters flushed). Must not block.
    std::function<bool()> locally_quiet;
    /// This rank's message counters. Only sampled while locally_quiet()
    /// holds, so flushed totals are stable.
    std::function<std::int64_t()> sent;
    std::function<std::int64_t()> received;
    /// Sends the token to rank (rank+1) % size. May block briefly on
    /// the transport; called outside the wave mutex.
    std::function<void(const TermToken&)> forward;
    /// Root only: broadcasts the termination announcement to every
    /// other rank. Called outside the wave mutex, before on_terminated.
    std::function<void()> announce;
    /// All ranks: termination is now global (root: evaluated locally;
    /// others: announce frame arrived). Typically flips the local
    /// detector's terminated flag.
    std::function<void()> on_terminated;
  };

  TermWave(int rank, int size, Hooks hooks)
      : rank_(rank), size_(size), hooks_(std::move(hooks)) {}

  bool terminated() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return terminated_;
  }

  /// Transport delivery of a token addressed to this rank.
  void on_token(const TermToken& t) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (terminated_) return;
      held_ = t;
      have_token_ = true;
    }
    TTG_SIM_POINT("comm.wave.token_arrived");
    advance();
  }

  /// Transport delivery of the root's announcement (non-root ranks).
  void on_announce() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (terminated_) return;
      terminated_ = true;
    }
    if (hooks_.on_terminated) hooks_.on_terminated();
  }

  /// Drives the wave from the wait loop: launches rounds (root) and
  /// forwards a held token once the rank falls quiet. Returns true once
  /// terminated.
  bool poll() {
    advance();
    std::lock_guard<std::mutex> lock(mutex_);
    return terminated_;
  }

 private:
  enum class Action { kNone, kForward, kAnnounce, kEvaluated };

  void advance() {
    // Loops because one call can make several transitions: the root
    // evaluates a returned (unstable) token and immediately launches
    // the next round; a single-rank ring forwards to itself.
    for (;;) {
      TermToken out;
      Action action = Action::kNone;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        if (terminated_) return;
        if (rank_ == 0) {
          if (have_token_) {
            TTG_SIM_POINT("comm.wave.evaluate");
            have_token_ = false;
            round_open_ = false;
            const bool equal = held_.sent == held_.received;
#if defined(TTG_MUTANT_COMM_TERMDET_EARLY_QUIET)
            // MUTANT: announce on a single equal round, skipping the
            // two-round stability test. An inconsistent snapshot (a
            // rank re-activated after contributing, its sends counted
            // as received by a later contributor) balances the sums
            // while a message is still in flight — termination is
            // announced with undelivered work.
            const bool stable = equal;
#else
            const bool stable = equal && held_.sent == last_sent_ &&
                                held_.received == last_recv_;
#endif
            if (stable) {
              terminated_ = true;
              action = Action::kAnnounce;
            } else {
              last_sent_ = held_.sent;
              last_recv_ = held_.received;
              action = Action::kEvaluated;
            }
          } else if (!round_open_ && hooks_.locally_quiet()) {
            TTG_SIM_POINT("comm.wave.launch");
            round_open_ = true;
            out.round = ++round_;
            out.sent = hooks_.sent();
            out.received = hooks_.received();
            action = Action::kForward;
          }
        } else if (have_token_ && hooks_.locally_quiet()) {
          TTG_SIM_POINT("comm.wave.contribute");
          have_token_ = false;
          out = held_;
          out.sent += hooks_.sent();
          out.received += hooks_.received();
          action = Action::kForward;
        }
      }
      switch (action) {
        case Action::kNone:
          return;
        case Action::kEvaluated:
          continue;  // maybe launch the next round right away
        case Action::kForward:
          TTG_SIM_POINT("comm.wave.forward");
          if (rank_ == 0 && size_ == 1) {
            // Degenerate ring: the token returns instantly.
            {
              std::lock_guard<std::mutex> lock(mutex_);
              if (terminated_) return;
              held_ = out;
              have_token_ = true;
            }
            continue;
          }
          hooks_.forward(out);
          return;
        case Action::kAnnounce:
          if (hooks_.announce) hooks_.announce();
          if (hooks_.on_terminated) hooks_.on_terminated();
          return;
      }
    }
  }

  const int rank_;
  const int size_;
  Hooks hooks_;

  mutable std::mutex mutex_;
  bool terminated_ = false;
  bool have_token_ = false;
  bool round_open_ = false;      // root: a token of ours is circulating
  std::uint32_t round_ = 0;      // root: last launched round
  TermToken held_{};             // valid while have_token_
  std::int64_t last_sent_ = -1;  // root: previous round's totals
  std::int64_t last_recv_ = -1;
};

}  // namespace ttg::comm
