#include "comm/tcp.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "comm/serde.hpp"

namespace ttg::comm {

namespace {

constexpr std::uint32_t kHelloMagic = 0x54544743u;  // "TTGC"
constexpr std::uint8_t kWireVersion = 1;

[[noreturn]] void fail(const std::string& what) {
  throw std::runtime_error("ttg::comm: " + what);
}

int env_int(const char* name, int fallback) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : fallback;
}

/// Writes exactly `n` bytes, looping over partial writes and EINTR.
/// Returns false on a connection error.
bool write_all(int fd, const void* data, std::size_t n) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t w = ::send(fd, p, n, MSG_NOSIGNAL);
    if (w < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  return true;
}

/// Reads exactly `n` bytes (bootstrap only — the progress thread uses
/// non-blocking drains instead).
bool read_all(int fd, void* data, std::size_t n) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t r = ::recv(fd, p, n, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;
    p += r;
    n -= static_cast<std::size_t>(r);
  }
  return true;
}

struct HostPort {
  std::string host;
  std::uint16_t port;
};

HostPort split_host_port(const std::string& s) {
  const std::size_t colon = s.rfind(':');
  if (colon == std::string::npos) fail("malformed host:port '" + s + "'");
  const int port = std::atoi(s.c_str() + colon + 1);
  if (port <= 0 || port > 65535) fail("bad port in '" + s + "'");
  return HostPort{s.substr(0, colon), static_cast<std::uint16_t>(port)};
}

sockaddr_in resolve(const HostPort& hp) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(hp.port);
  if (::inet_pton(AF_INET, hp.host.c_str(), &addr.sin_addr) == 1) {
    return addr;
  }
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  if (::getaddrinfo(hp.host.c_str(), nullptr, &hints, &res) != 0 ||
      res == nullptr) {
    fail("cannot resolve host '" + hp.host + "'");
  }
  addr.sin_addr = reinterpret_cast<sockaddr_in*>(res->ai_addr)->sin_addr;
  ::freeaddrinfo(res);
  return addr;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

TcpCommunicator::Options TcpCommunicator::from_env() {
  Options o;
  const char* rank = std::getenv("TTG_COMM_RANK");
  const char* size = std::getenv("TTG_COMM_SIZE");
  const char* hosts = std::getenv("TTG_COMM_HOSTS");
  if (rank == nullptr || size == nullptr || hosts == nullptr) {
    fail("TTG_COMM_RANK, TTG_COMM_SIZE and TTG_COMM_HOSTS are required");
  }
  o.rank = std::atoi(rank);
  o.size = std::atoi(size);
  std::string list(hosts);
  std::size_t start = 0;
  while (start <= list.size()) {
    const std::size_t comma = list.find(',', start);
    const std::size_t end = comma == std::string::npos ? list.size() : comma;
    if (end > start) o.hosts.push_back(list.substr(start, end - start));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  o.listen_fd = env_int("TTG_COMM_LISTEN_FD", -1);
  o.connect_timeout_ms = env_int("TTG_COMM_CONNECT_TIMEOUT_MS", 10000);
  o.peer_timeout_ms = env_int("TTG_COMM_TIMEOUT_MS", 5000);
  if (o.rank < 0 || o.size < 1 || o.rank >= o.size) {
    fail("bad TTG_COMM_RANK/TTG_COMM_SIZE");
  }
  if (static_cast<int>(o.hosts.size()) != o.size) {
    fail("TTG_COMM_HOSTS must list exactly TTG_COMM_SIZE entries");
  }
  return o;
}

TcpCommunicator::TcpCommunicator(const Options& options)
    : rank_(options.rank),
      size_(options.size),
      heartbeat_ms_(options.heartbeat_ms),
      peer_timeout_ms_(options.peer_timeout_ms) {
  peers_.resize(static_cast<std::size_t>(size_));
  for (int r = 0; r < size_; ++r) {
    if (r != rank_) peers_[static_cast<std::size_t>(r)] = std::make_unique<Peer>();
  }
  if (::pipe(wake_pipe_) != 0) fail("pipe() failed");
  ::fcntl(wake_pipe_[0], F_SETFL, O_NONBLOCK);
  bootstrap(options);
  progress_ = std::thread([this] { progress_main(); });
}

TcpCommunicator::~TcpCommunicator() { shutdown(); }

void TcpCommunicator::bootstrap(const Options& options) {
  // 1. Listener: inherit the launcher's socket or bind our HOSTS entry.
  if (size_ > 1) {
    if (options.listen_fd >= 0) {
      listen_fd_ = options.listen_fd;
    } else {
      const HostPort hp =
          split_host_port(options.hosts[static_cast<std::size_t>(rank_)]);
      listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
      if (listen_fd_ < 0) fail("socket() failed");
      int one = 1;
      ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
      sockaddr_in addr = resolve(hp);
      if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                 sizeof(addr)) != 0) {
        fail("bind(" + options.hosts[static_cast<std::size_t>(rank_)] +
             ") failed: " + std::strerror(errno));
      }
      if (::listen(listen_fd_, size_) != 0) fail("listen() failed");
    }
  }

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options.connect_timeout_ms);

  // 2. Connect to every lower rank, retrying until its listener is up.
  for (int r = 0; r < rank_; ++r) {
    const sockaddr_in addr =
        resolve(split_host_port(options.hosts[static_cast<std::size_t>(r)]));
    int fd = -1;
    for (;;) {
      fd = ::socket(AF_INET, SOCK_STREAM, 0);
      if (fd < 0) fail("socket() failed");
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                    sizeof(addr)) == 0) {
        break;
      }
      ::close(fd);
      fd = -1;
      if (std::chrono::steady_clock::now() >= deadline) {
        fail("connect to rank " + std::to_string(r) + " timed out");
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    set_nodelay(fd);
    // Identify ourselves.
    struct {
      std::uint32_t magic;
      std::uint8_t version;
      std::uint32_t rank;
    } __attribute__((packed)) hello{kHelloMagic, kWireVersion,
                                    static_cast<std::uint32_t>(rank_)};
    std::vector<std::byte> payload(sizeof(hello));
    std::memcpy(payload.data(), &hello, sizeof(hello));
    Peer& p = *peers_[static_cast<std::size_t>(r)];
    p.fd = fd;
    p.last_seen = std::chrono::steady_clock::now();
    send_frame(r, kHello, payload.data(), payload.size());
  }

  // 3. Accept from every higher rank, identified by its hello frame.
  int expected = size_ - 1 - rank_;
  while (expected > 0) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) fail("accept: peers missing at timeout");
    const int left = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count());
    const int pr = ::poll(&pfd, 1, left > 100 ? 100 : left);
    if (pr < 0 && errno != EINTR) fail("poll(listen) failed");
    if (pr <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    set_nodelay(fd);
    // The hello is the first frame: [len][kind=kHello][magic,ver,rank].
    std::uint32_t len = 0;
    if (!read_all(fd, &len, sizeof(len)) || len != 1 + 9) {
      ::close(fd);
      fail("bad hello frame length");
    }
    std::uint8_t kind = 0;
    struct {
      std::uint32_t magic;
      std::uint8_t version;
      std::uint32_t rank;
    } __attribute__((packed)) hello{};
    if (!read_all(fd, &kind, 1) || kind != kHello ||
        !read_all(fd, &hello, sizeof(hello)) || hello.magic != kHelloMagic ||
        hello.version != kWireVersion) {
      ::close(fd);
      fail("bad hello frame");
    }
    const int peer = static_cast<int>(hello.rank);
    if (peer <= rank_ || peer >= size_ ||
        peers_[static_cast<std::size_t>(peer)]->fd != -1) {
      ::close(fd);
      fail("hello from unexpected rank " + std::to_string(peer));
    }
    Peer& p = *peers_[static_cast<std::size_t>(peer)];
    p.fd = fd;
    p.last_seen = std::chrono::steady_clock::now();
    --expected;
  }
}

void TcpCommunicator::send_frame(int target, Kind kind,
                                 const std::byte* payload, std::size_t n) {
  Peer& p = *peers_[static_cast<std::size_t>(target)];
  if (1 + n > kMaxFrameBytes) fail("frame exceeds kMaxFrameBytes");
  const std::uint32_t len = static_cast<std::uint32_t>(1 + n);
  std::lock_guard<std::mutex> lock(p.send_mutex);
  if (p.fd < 0) fail("send to lost rank " + std::to_string(target));
  // One buffered write: tiny frames (tokens, pings) should not pay
  // three syscalls or three packets.
  std::vector<std::byte> frame(sizeof(len) + 1 + n);
  std::memcpy(frame.data(), &len, sizeof(len));
  frame[sizeof(len)] = static_cast<std::byte>(kind);
  if (n > 0) std::memcpy(frame.data() + sizeof(len) + 1, payload, n);
  if (!write_all(p.fd, frame.data(), frame.size())) {
    fail("send to rank " + std::to_string(target) +
         " failed: " + std::strerror(errno));
  }
}

void TcpCommunicator::post(int target, const std::byte* data,
                           std::size_t n) {
  if (target == rank_ || target < 0 || target >= size_) {
    fail("post: bad target rank " + std::to_string(target));
  }
  send_frame(target, kUser, data, n);
}

bool TcpCommunicator::drain_peer(int peer_rank) {
  Peer& p = *peers_[static_cast<std::size_t>(peer_rank)];
  char buf[64 * 1024];
  for (;;) {
    const ssize_t r = ::recv(p.fd, buf, sizeof(buf), MSG_DONTWAIT);
    if (r < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // EOF
    const auto* bytes = reinterpret_cast<const std::byte*>(buf);
    p.recv_buf.insert(p.recv_buf.end(), bytes, bytes + r);
    p.last_seen = std::chrono::steady_clock::now();
    if (static_cast<std::size_t>(r) < sizeof(buf)) break;
  }
  // Parse complete frames out of the receive buffer.
  std::size_t off = 0;
  while (p.recv_buf.size() - off >= sizeof(std::uint32_t)) {
    std::uint32_t len = 0;
    std::memcpy(&len, p.recv_buf.data() + off, sizeof(len));
    if (len == 0 || len > kMaxFrameBytes) {
      declare_lost(peer_rank, "corrupt frame length");
      return false;
    }
    if (p.recv_buf.size() - off - sizeof(len) < len) break;  // partial
    const std::byte* frame = p.recv_buf.data() + off + sizeof(len);
    const auto kind = static_cast<std::uint8_t>(frame[0]);
    dispatch_frame(peer_rank, kind, frame + 1, len - 1);
    off += sizeof(len) + len;
  }
  if (off > 0) {
    p.recv_buf.erase(p.recv_buf.begin(),
                     p.recv_buf.begin() + static_cast<std::ptrdiff_t>(off));
  }
  return !p.goodbye;
}

void TcpCommunicator::dispatch_frame(int peer_rank, std::uint8_t kind,
                                     const std::byte* payload,
                                     std::size_t n) {
  switch (kind) {
    case kUser: {
      // Dispatch under handler_mutex_ so frames buffered before the
      // handler existed replay strictly ahead of live ones.
      std::lock_guard<std::mutex> lock(handler_mutex_);
      if (handler_) {
        handler_(peer_rank, payload, n);
      } else {
        early_frames_.push_back(
            EarlyFrame{peer_rank, std::vector<std::byte>(payload, payload + n)});
      }
      break;
    }
    case kPing:
      break;  // last_seen already refreshed by the drain
    case kGoodbye:
      peers_[static_cast<std::size_t>(peer_rank)]->goodbye = true;
      break;
    default:
      declare_lost(peer_rank, "unknown frame kind");
      break;
  }
}

void TcpCommunicator::declare_lost(int peer_rank, const std::string& why) {
  Peer& p = *peers_[static_cast<std::size_t>(peer_rank)];
  if (p.lost || p.goodbye) return;
  p.lost = true;
  peers_lost_.fetch_add(1, std::memory_order_relaxed);
  {
    // Close under the send mutex so concurrent post() fails cleanly
    // instead of writing to a reused fd.
    std::lock_guard<std::mutex> lock(p.send_mutex);
    if (p.fd >= 0) {
      ::close(p.fd);
      p.fd = -1;
    }
  }
  std::lock_guard<std::mutex> lock(handler_mutex_);
  if (loss_handler_) {
    loss_handler_(peer_rank, why);
  } else {
    early_losses_.emplace_back(peer_rank, why);
  }
}

void TcpCommunicator::set_frame_handler(FrameHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mutex_);
  handler_ = std::move(handler);
  for (EarlyFrame& f : early_frames_) {
    handler_(f.source, f.bytes.data(), f.bytes.size());
  }
  early_frames_.clear();
  early_frames_.shrink_to_fit();
}

void TcpCommunicator::set_loss_handler(LossHandler handler) {
  std::lock_guard<std::mutex> lock(handler_mutex_);
  loss_handler_ = std::move(handler);
  for (const auto& [peer, why] : early_losses_) loss_handler_(peer, why);
  early_losses_.clear();
}

void TcpCommunicator::progress_main() {
  auto last_ping = std::chrono::steady_clock::now();
  std::vector<pollfd> pfds;
  std::vector<int> pfd_rank;
  while (!stop_.load(std::memory_order_acquire)) {
    pfds.clear();
    pfd_rank.clear();
    pfds.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
    pfd_rank.push_back(-1);
    for (int r = 0; r < size_; ++r) {
      if (r == rank_) continue;
      Peer& p = *peers_[static_cast<std::size_t>(r)];
      if (p.fd >= 0 && !p.lost) {
        pfds.push_back(pollfd{p.fd, POLLIN, 0});
        pfd_rank.push_back(r);
      }
    }
    const int pr = ::poll(pfds.data(), pfds.size(), 100);
    if (pr < 0 && errno != EINTR) break;
    if (stop_.load(std::memory_order_acquire)) break;
    for (std::size_t i = 1; i < pfds.size(); ++i) {
      if ((pfds[i].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      const int r = pfd_rank[i];
      if (!drain_peer(r)) {
        Peer& p = *peers_[static_cast<std::size_t>(r)];
        if (p.goodbye) {
          std::lock_guard<std::mutex> lock(p.send_mutex);
          if (p.fd >= 0) {
            ::close(p.fd);
            p.fd = -1;
          }
        } else {
          declare_lost(r, "connection closed");
        }
      }
    }
    if (pfds[0].revents & POLLIN) {
      char c;
      while (::read(wake_pipe_[0], &c, 1) > 0) {
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (now - last_ping >= std::chrono::milliseconds(heartbeat_ms_)) {
      last_ping = now;
      for (int r = 0; r < size_; ++r) {
        if (r == rank_) continue;
        Peer& p = *peers_[static_cast<std::size_t>(r)];
        if (p.fd < 0 || p.lost || p.goodbye) continue;
        // Best-effort ping; a failed write surfaces as a poll error.
        std::lock_guard<std::mutex> lock(p.send_mutex);
        if (p.fd >= 0) {
          const std::uint32_t len = 1;
          std::byte frame[5];
          std::memcpy(frame, &len, sizeof(len));
          frame[4] = static_cast<std::byte>(kPing);
          (void)write_all(p.fd, frame, sizeof(frame));
        }
        // Liveness: a peer silent past the timeout is lost even if the
        // kernel never reports an error (half-open connection).
        if (peer_timeout_ms_ > 0 &&
            now - p.last_seen >
                std::chrono::milliseconds(peer_timeout_ms_)) {
          declare_lost(r, "peer silent past timeout");
        }
      }
    }
  }
}

void TcpCommunicator::shutdown() {
  if (shut_down_.exchange(true)) return;
  // Best-effort goodbyes so peers treat our EOF as clean.
  for (int r = 0; r < size_; ++r) {
    if (r == rank_) continue;
    Peer& p = *peers_[static_cast<std::size_t>(r)];
    std::lock_guard<std::mutex> lock(p.send_mutex);
    if (p.fd >= 0 && !p.lost) {
      const std::uint32_t len = 1;
      std::byte frame[5];
      std::memcpy(frame, &len, sizeof(len));
      frame[4] = static_cast<std::byte>(kGoodbye);
      (void)write_all(p.fd, frame, sizeof(frame));
    }
  }
  stop_.store(true, std::memory_order_release);
  if (wake_pipe_[1] >= 0) {
    const char c = 'x';
    (void)!::write(wake_pipe_[1], &c, 1);
  }
  if (progress_.joinable()) progress_.join();
  for (auto& p : peers_) {
    if (p != nullptr && p->fd >= 0) {
      ::close(p->fd);
      p->fd = -1;
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int i = 0; i < 2; ++i) {
    if (wake_pipe_[i] >= 0) {
      ::close(wake_pipe_[i]);
      wake_pipe_[i] = -1;
    }
  }
}

}  // namespace ttg::comm
