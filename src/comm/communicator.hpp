// Communicator: the transport abstraction behind the distributed TTG
// backend (docs/distributed.md).
//
// A Communicator moves opaque byte frames between ranks and knows
// nothing about Worlds, TTs or the termination wave — the World layers
// its own protocol (delivery / termination token / abort) inside the
// frames it posts. Two implementations:
//
//  * LoopbackCommunicator (this header): all ranks live in one process;
//    post() hands the frame to the target rank's handler synchronously.
//    This is the transport behind the classic multi-rank World and the
//    model transport the DST comm scenarios interleave.
//  * TcpCommunicator (comm/tcp.hpp): one process per rank, frames move
//    over length-prefixed TCP with a dedicated progress thread.
//
// Threading contract: post() is safe from any thread. The frame handler
// runs on an unspecified thread (a posting thread for loopback, the
// progress thread for TCP) and must not block; it typically enqueues
// into the World's per-rank active-message queue. The loss handler
// fires at most once per lost peer, from the progress thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>

namespace ttg::comm {

/// Received-frame callback: payload bytes of one user frame, already
/// stripped of transport framing. `source` is the sending rank.
using FrameHandler =
    std::function<void(int source, const std::byte* data, std::size_t n)>;

/// Peer-loss callback: `peer` died or its connection broke. Fired once
/// per peer, after which no further frames from it are delivered.
using LossHandler = std::function<void(int peer, const std::string& why)>;

class Communicator {
 public:
  virtual ~Communicator() = default;

  virtual int rank() const = 0;
  virtual int size() const = 0;

  /// Installs the handler invoked for every frame addressed to this
  /// rank. Must be set before the first post() anywhere and not changed
  /// while traffic is possible.
  virtual void set_frame_handler(FrameHandler handler) = 0;

  /// Installs the peer-loss handler (optional; default ignores losses).
  virtual void set_loss_handler(LossHandler handler) = 0;

  /// Sends one frame to `target` (target != rank()). Never blocks on
  /// the receiver making progress; may block briefly on the local
  /// socket buffer. Throws on a dead/unknown peer.
  virtual void post(int target, const std::byte* data, std::size_t n) = 0;

  /// In-process transports can move a closure instead of bytes — the
  /// legacy deep-copy delivery path for types without a Serde
  /// specialization. Out-of-process transports cannot; the default
  /// reports the capability honestly so TT::forward_remote can fail
  /// loudly rather than slice a closure into bytes.
  virtual bool supports_local_closures() const { return false; }

  /// Releases sockets/threads. Idempotent; called by the destructor.
  virtual void shutdown() {}
};

}  // namespace ttg::comm
