// Wire serialization for the out-of-process distributed backend
// (docs/distributed.md).
//
// A `Serde<T>` specialization packs a value into a byte buffer and
// unpacks it on the receiving rank. Three tiers:
//
//  * trivially-copyable fast path: one memcpy each way (the partial
//    specialization below matches automatically);
//  * library types: std::string and std::vector<T> (element-recursive,
//    with a contiguous memcpy fast path for trivially-copyable T);
//  * user hook: fully specialize Serde<T> with
//        static void pack(const T&, WireWriter&);
//        static T unpack(WireReader&);
//    for any custom type. `is_serializable_v<T>` probes for exactly that
//    shape, so a user specialization makes the type eligible for the
//    wire path in TT::forward_remote with no further registration.
//
// Reading is bounds-checked everywhere: a truncated or corrupt frame
// throws WireError (never UB), which the transport layer turns into a
// connection fault. Frames are capped at kMaxFrameBytes so a corrupt
// length prefix cannot trigger a multi-gigabyte allocation.
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

namespace ttg::comm {

/// Hard cap on a single wire frame (length prefix included). Large
/// enough for any test/bench payload here; small enough that a corrupt
/// length prefix is rejected before any allocation.
inline constexpr std::uint32_t kMaxFrameBytes = 64u * 1024u * 1024u;

/// Thrown on any malformed wire data: short reads, trailing bytes,
/// length prefixes past the frame end or over kMaxFrameBytes.
class WireError : public std::runtime_error {
 public:
  explicit WireError(const std::string& what) : std::runtime_error(what) {}
};

/// Append-only byte sink used by Serde<T>::pack.
class WireWriter {
 public:
  explicit WireWriter(std::vector<std::byte>& out) : out_(out) {}

  void bytes(const void* data, std::size_t n) {
    if (n == 0) return;
    const auto* p = static_cast<const std::byte*>(data);
    out_.insert(out_.end(), p, p + n);
    if (out_.size() > kMaxFrameBytes) {
      throw WireError("wire frame exceeds kMaxFrameBytes");
    }
  }

  template <typename T>
  void pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    bytes(&v, sizeof(T));
  }

  /// Length prefix for strings/vectors: u32, validated on read.
  void size(std::size_t n) {
    if (n > kMaxFrameBytes) {
      throw WireError("wire element count exceeds kMaxFrameBytes");
    }
    pod(static_cast<std::uint32_t>(n));
  }

  std::size_t written() const { return out_.size(); }

 private:
  std::vector<std::byte>& out_;
};

/// Bounds-checked cursor over a received frame, used by
/// Serde<T>::unpack. Every read validates against the frame end first.
class WireReader {
 public:
  WireReader(const std::byte* data, std::size_t n)
      : cur_(data), end_(data + n) {}

  void bytes(void* out, std::size_t n) {
    if (n > remaining()) throw WireError("wire frame truncated");
    if (n != 0) std::memcpy(out, cur_, n);
    cur_ += n;
  }

  template <typename T>
  T pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v;
    bytes(&v, sizeof(T));
    return v;
  }

  /// Reads a size() prefix and validates it against the bytes actually
  /// left in the frame (at `elem_bytes` per element), so a corrupt
  /// count is rejected before any allocation.
  std::size_t size(std::size_t elem_bytes = 1) {
    const std::uint32_t n = pod<std::uint32_t>();
    if (elem_bytes != 0 && n > remaining() / elem_bytes) {
      throw WireError("wire length prefix past frame end");
    }
    return n;
  }

  std::size_t remaining() const {
    return static_cast<std::size_t>(end_ - cur_);
  }

  /// Unpack must consume the frame exactly; trailing bytes mean the
  /// sender and receiver disagree on the type's layout.
  void expect_consumed() const {
    if (cur_ != end_) throw WireError("wire frame has trailing bytes");
  }

 private:
  const std::byte* cur_;
  const std::byte* end_;
};

/// Primary template: intentionally empty. A type is wire-serializable
/// iff a (partial or full) specialization provides pack/unpack.
template <typename T, typename Enable = void>
struct Serde {};

/// Fast path: trivially-copyable types are one memcpy each way.
template <typename T>
struct Serde<T, std::enable_if_t<std::is_trivially_copyable_v<T>>> {
  static void pack(const T& v, WireWriter& w) { w.pod(v); }
  static T unpack(WireReader& r) { return r.template pod<T>(); }
};

template <>
struct Serde<std::string> {
  static void pack(const std::string& s, WireWriter& w) {
    w.size(s.size());
    w.bytes(s.data(), s.size());
  }
  static std::string unpack(WireReader& r) {
    const std::size_t n = r.size();
    std::string s(n, '\0');
    r.bytes(s.data(), n);
    return s;
  }
};

template <typename T>
concept WireSerializable = requires(const T& v, WireWriter& w, WireReader& r) {
  { Serde<T>::pack(v, w) } -> std::same_as<void>;
  { Serde<T>::unpack(r) } -> std::same_as<T>;
};

template <typename T>
inline constexpr bool is_serializable_v = WireSerializable<T>;

template <typename T>
struct Serde<std::vector<T>, std::enable_if_t<is_serializable_v<T>>> {
  static void pack(const std::vector<T>& v, WireWriter& w) {
    w.size(v.size());
    if constexpr (std::is_trivially_copyable_v<T>) {
      w.bytes(v.data(), v.size() * sizeof(T));
    } else {
      for (const T& e : v) Serde<T>::pack(e, w);
    }
  }
  static std::vector<T> unpack(WireReader& r) {
    if constexpr (std::is_trivially_copyable_v<T>) {
      const std::size_t n = r.size(sizeof(T));
      std::vector<T> v(n);
      r.bytes(v.data(), n * sizeof(T));
      return v;
    } else {
      const std::size_t n = r.size();
      std::vector<T> v;
      v.reserve(n);
      for (std::size_t i = 0; i < n; ++i) v.push_back(Serde<T>::unpack(r));
      return v;
    }
  }
};

/// std::pair is NOT trivially copyable on common standard libraries
/// (its assignment operators are user-provided), so pair keys — the
/// idiomatic (t, x) TTG key — need this element-recursive path. The
/// !trivially_copyable guard keeps it from ever overlapping the memcpy
/// specialization.
template <typename A, typename B>
struct Serde<std::pair<A, B>,
             std::enable_if_t<is_serializable_v<A> && is_serializable_v<B> &&
                              !std::is_trivially_copyable_v<std::pair<A, B>>>> {
  static void pack(const std::pair<A, B>& p, WireWriter& w) {
    Serde<A>::pack(p.first, w);
    Serde<B>::pack(p.second, w);
  }
  static std::pair<A, B> unpack(WireReader& r) {
    A a = Serde<A>::unpack(r);
    B b = Serde<B>::unpack(r);
    return {std::move(a), std::move(b)};
  }
};

/// Convenience helpers for single-value round trips (tests, protocol
/// headers).
template <typename T>
void pack_value(const T& v, std::vector<std::byte>& out) {
  WireWriter w(out);
  Serde<T>::pack(v, w);
}

template <typename T>
T unpack_value(const std::byte* data, std::size_t n) {
  WireReader r(data, n);
  T v = Serde<T>::unpack(r);
  r.expect_consumed();
  return v;
}

}  // namespace ttg::comm
