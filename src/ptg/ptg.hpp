// A minimal Parameterized Task Graph (PTG) front-end.
//
// PaRSEC's PTG DSL — the strongest task-based comparator in the paper's
// Task-Bench results — expresses a task's dependences *algebraically*:
// given a task's key, its predecessor and successor keys are computable
// without executing anything, so no discovery hash table and no data-
// copy tracking are needed. This module provides that model on top of
// the same runtime the TTG layer uses, for apples-to-apples comparisons:
//
//   ptg::ParameterizedGraph<Key, Value> g(ctx,
//       /*num_deps=*/   [](const Key& k) { ... },   // in-degree of k
//       /*successors=*/ [](const Key& k) { ... },   // keys k unlocks
//       /*body=*/       [](const Key& k, auto&& input_of) -> Value {...});
//   ctx.begin();
//   g.seed(root_key);            // tasks with num_deps == 0
//   ctx.fence();
//   const Value* v = g.find(some_key);
//
// The body receives `input_of(pred_key)` to read any completed
// predecessor's output. Outputs are retained in a concurrent store for
// the graph's lifetime (like PTG's data versions, simplified to
// write-once values).
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "runtime/context.hpp"
#include "structures/hash_table.hpp"
#include "structures/mempool.hpp"
#include "ttg/keys.hpp"

namespace ptg {

template <typename Key, typename Value, typename Hash = ttg::KeyHash<Key>>
class ParameterizedGraph {
 public:
  using NumDepsFn = std::function<int(const Key&)>;
  using SuccessorsFn = std::function<std::vector<Key>(const Key&)>;
  /// input_of(pred_key) -> const Value& (predecessor must have completed,
  /// which the dependence structure guarantees).
  class InputFetcher;
  using BodyFn = std::function<Value(const Key&, const InputFetcher&)>;

  ParameterizedGraph(ttg::Context& ctx, NumDepsFn num_deps,
                     SuccessorsFn successors, BodyFn body)
      : ctx_(&ctx),
        num_deps_(std::move(num_deps)),
        successors_(std::move(successors)),
        body_(std::move(body)),
        task_pool_(sizeof(PtgTask)) {}

  ParameterizedGraph(const ParameterizedGraph&) = delete;
  ParameterizedGraph& operator=(const ParameterizedGraph&) = delete;

  ~ParameterizedGraph() {
    values_.for_each_exclusive(
        [](ttg::HashItemBase* item) { delete static_cast<ValueItem*>(item); });
    counters_.for_each_exclusive([](ttg::HashItemBase* item) {
      delete static_cast<CounterItem*>(item);
    });
  }

  /// Reads a completed task's output from inside a body.
  class InputFetcher {
   public:
    const Value& operator()(const Key& pred) const {
      const Value* v = graph_->find(pred);
      assert(v != nullptr && "predecessor has not produced a value");
      return *v;
    }

   private:
    friend class ParameterizedGraph;
    explicit InputFetcher(const ParameterizedGraph* g) : graph_(g) {}
    const ParameterizedGraph* graph_;
  };

  /// Schedules a dependence-free task (num_deps(key) must be 0). Must be
  /// called between ctx.begin() and ctx.fence().
  void seed(const Key& key) {
    assert(num_deps_(key) == 0 && "seeded task has unsatisfied deps");
    spawn(key);
  }

  /// Looks up the output of a completed task; nullptr if absent. Safe
  /// from task bodies (for predecessors) and after the fence.
  const Value* find(const Key& key) const {
    auto* self = const_cast<ParameterizedGraph*>(this);
    const std::uint64_t h = Hash{}(key);
    auto acc = self->values_.lock_key(h);
    auto* item = static_cast<ValueItem*>(acc.find(value_eq(key)));
    return item != nullptr ? &item->value : nullptr;
  }

  std::uint64_t tasks_executed() const {
    return tasks_executed_.load(std::memory_order_relaxed);
  }

 private:
  struct ValueItem : ttg::HashItemBase {
    Key key;
    Value value;
    ValueItem(const Key& k, Value&& v) : key(k), value(std::move(v)) {}
  };

  struct CounterItem : ttg::HashItemBase {
    Key key;
    int remaining;
    CounterItem(const Key& k, int r) : key(k), remaining(r) {}
  };

  struct PtgTask : ttg::TaskBase {
    ParameterizedGraph* graph;
    Key key;
    PtgTask(ParameterizedGraph* g, const Key& k) : graph(g), key(k) {}
  };

  static auto value_eq(const Key& key) {
    return [&key](const ttg::HashItemBase* item) {
      return static_cast<const ValueItem*>(item)->key == key;
    };
  }
  static auto counter_eq(const Key& key) {
    return [&key](const ttg::HashItemBase* item) {
      return static_cast<const CounterItem*>(item)->key == key;
    };
  }

  void spawn(const Key& key) {
    auto* task = new (task_pool_.allocate()) PtgTask(this, key);
    task->execute = &ParameterizedGraph::execute_task;
    task->pool = &task_pool_;
    ctx_->on_discovered(1);
    ctx_->submit(task, ttg::SubmitHint::kMayInline);
  }

  static void execute_task(ttg::TaskBase* base, ttg::Worker&) {
    auto* task = static_cast<PtgTask*>(base);
    ParameterizedGraph* graph = task->graph;
    const Key key = task->key;
    ttg::MemoryPool* pool = task->pool;
    task->~PtgTask();
    pool->deallocate(task);
    graph->run(key);
  }

  void run(const Key& key) {
    Value out = body_(key, InputFetcher(this));
    tasks_executed_.fetch_add(1, std::memory_order_relaxed);
    // Publish the output before releasing any successor.
    {
      const std::uint64_t h = Hash{}(key);
      auto acc = values_.lock_key(h);
      assert(acc.find(value_eq(key)) == nullptr && "task ran twice");
      auto* item = new ValueItem(key, std::move(out));
      item->hash = h;
      acc.insert(item);
    }
    for (const Key& succ : successors_(key)) {
      if (satisfy_one(succ)) spawn(succ);
    }
  }

  /// Decrements `succ`'s remaining-dependences counter (creating it on
  /// first touch); true when it reaches zero.
  bool satisfy_one(const Key& succ) {
    const std::uint64_t h = Hash{}(succ);
    auto acc = counters_.lock_key(h);
    auto* item = static_cast<CounterItem*>(acc.find(counter_eq(succ)));
    if (item == nullptr) {
      item = new CounterItem(succ, num_deps_(succ));
      item->hash = h;
      acc.insert(item);
    }
    if (--item->remaining == 0) {
      acc.remove(counter_eq(succ));
      acc.release();
      delete item;
      return true;
    }
    return false;
  }

  ttg::Context* ctx_;
  NumDepsFn num_deps_;
  SuccessorsFn successors_;
  BodyFn body_;
  ttg::MemoryPool task_pool_;
  ttg::ScalableHashTable values_{/*initial_log2_buckets=*/8};
  ttg::ScalableHashTable counters_{/*initial_log2_buckets=*/8};
  std::atomic<std::uint64_t> tasks_executed_{0};
};

}  // namespace ptg
