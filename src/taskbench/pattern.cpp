#include "taskbench/taskbench.hpp"

#include <algorithm>
#include <cassert>

#include "common/rng.hpp"

namespace taskbench {

std::string to_string(Pattern p) {
  switch (p) {
    case Pattern::kTrivial: return "trivial";
    case Pattern::kNoComm: return "no_comm";
    case Pattern::kStencil1D: return "stencil_1d";
    case Pattern::kStencil1DPeriodic: return "stencil_1d_periodic";
    case Pattern::kFFT: return "fft";
    case Pattern::kTree: return "tree";
  }
  return "?";
}

namespace {

int log2_floor(int v) {
  int l = 0;
  while ((1 << (l + 1)) <= v) ++l;
  return l;
}

}  // namespace

DepList dependencies(const BenchConfig& cfg, int t, int x) {
  assert(x >= 0 && x < cfg.width);
  DepList deps;
  if (t == 0) return deps;
  switch (cfg.pattern) {
    case Pattern::kTrivial:
      break;
    case Pattern::kNoComm:
      deps.push_back(x);
      break;
    case Pattern::kStencil1D:
      for (int dx = -1; dx <= 1; ++dx) {
        const int nx = x + dx;
        if (nx >= 0 && nx < cfg.width) deps.push_back(nx);
      }
      break;
    case Pattern::kStencil1DPeriodic:
      if (cfg.width == 1) {
        deps.push_back(0);
      } else if (cfg.width == 2) {
        deps.push_back(0);
        deps.push_back(1);
      } else {
        deps.push_back((x - 1 + cfg.width) % cfg.width);
        deps.push_back(x);
        deps.push_back((x + 1) % cfg.width);
        std::sort(deps.begin(), deps.end());
      }
      break;
    case Pattern::kFFT: {
      deps.push_back(x);
      const int stages = std::max(1, log2_floor(cfg.width));
      const int partner = x ^ (1 << ((t - 1) % stages));
      if (partner != x && partner < cfg.width) deps.push_back(partner);
      std::sort(deps.begin(), deps.end());
      break;
    }
    case Pattern::kTree: {
      deps.push_back(x);
      const int stride = 1 << std::min(t - 1, 30);
      if ((x % (2 * stride)) == 0 && x + stride < cfg.width) {
        deps.push_back(x + stride);
      }
      std::sort(deps.begin(), deps.end());
      break;
    }
  }
  return deps;
}

DepList reverse_dependencies(const BenchConfig& cfg, int t, int x) {
  if (t >= cfg.steps) return {};
  // All patterns here are sparse and local; the generic inverse (scan the
  // candidate neighborhood at t+1) is exact and cheap.
  DepList out;
  const auto consumes = [&](int nx) {
    const auto deps = dependencies(cfg, t + 1, nx);
    return std::binary_search(deps.begin(), deps.end(), x);
  };
  switch (cfg.pattern) {
    case Pattern::kTrivial:
      break;
    case Pattern::kNoComm:
      out.push_back(x);
      break;
    case Pattern::kStencil1D:
    case Pattern::kStencil1DPeriodic:
      for (int dx = -1; dx <= 1; ++dx) {
        int nx = x + dx;
        if (cfg.pattern == Pattern::kStencil1DPeriodic) {
          nx = (nx + cfg.width) % cfg.width;
        }
        if (nx >= 0 && nx < cfg.width && consumes(nx)) out.push_back(nx);
      }
      std::sort(out.begin(), out.end());
      out.n = static_cast<int>(std::unique(out.begin(), out.end()) -
                               out.begin());
      break;
    case Pattern::kFFT: {
      out.push_back(x);
      const int stages = std::max(1, log2_floor(cfg.width));
      const int partner = x ^ (1 << (t % stages));
      if (partner != x && partner < cfg.width && consumes(partner)) {
        out.push_back(partner);
      }
      std::sort(out.begin(), out.end());
      break;
    }
    case Pattern::kTree: {
      if (consumes(x)) out.push_back(x);
      const int stride = 1 << std::min(t, 30);
      const int parent = x - stride;
      if (parent >= 0 && (parent % (2 * stride)) == 0 && consumes(parent)) {
        out.push_back(parent);
      }
      std::sort(out.begin(), out.end());
      break;
    }
  }
  return out;
}

std::uint64_t combine(int t, int x, const std::uint64_t* dep_values,
                      std::size_t n) {
  std::uint64_t h = ttg::mix64((static_cast<std::uint64_t>(t) << 32) ^
                               static_cast<std::uint64_t>(x));
  for (std::size_t i = 0; i < n; ++i) {
    h = ttg::mix64(h * 0x9e3779b97f4a7c15ULL + dep_values[i]);
  }
  return h;
}

std::uint64_t seed_value(int x) {
  return ttg::mix64(0xdeadbeefULL + static_cast<std::uint64_t>(x));
}

std::uint64_t fold_checksum(const std::vector<std::uint64_t>& last_row) {
  std::uint64_t h = 0x1234567887654321ULL;
  for (std::uint64_t v : last_row) h = ttg::mix64(h ^ v);
  return h;
}

std::uint64_t reference_checksum(const BenchConfig& cfg) {
  std::vector<std::uint64_t> prev(static_cast<std::size_t>(cfg.width));
  std::vector<std::uint64_t> cur(static_cast<std::size_t>(cfg.width));
  for (int x = 0; x < cfg.width; ++x) prev[x] = seed_value(x);
  std::vector<std::uint64_t> vals;
  for (int t = 1; t <= cfg.steps; ++t) {
    for (int x = 0; x < cfg.width; ++x) {
      const auto deps = dependencies(cfg, t, x);
      vals.clear();
      for (int d : deps) vals.push_back(prev[d]);
      cur[x] = combine(t, x, vals.data(), vals.size());
    }
    std::swap(prev, cur);
  }
  return fold_checksum(prev);
}

}  // namespace taskbench
