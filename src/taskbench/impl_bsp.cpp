// Task-Bench over the BSP executor — the MPI stand-in.
//
// Each rank owns a contiguous block of points; a timestep is compute +
// neighbor exchange (for the local stencil patterns) or an all-to-all
// exchange (for the non-local patterns), with no task management at all —
// which is exactly why the paper's MPI variant shows the lowest per-task
// time on one core.
#include <algorithm>
#include <vector>

#include "baselines/bsp.hpp"
#include "common/cycle_clock.hpp"
#include "taskbench/taskbench.hpp"

namespace taskbench {

namespace {

bool pattern_is_local(Pattern p) {
  return p == Pattern::kTrivial || p == Pattern::kNoComm ||
         p == Pattern::kStencil1D;
}

}  // namespace

RunResult run_bsp(const BenchConfig& cfg, int threads) {
  const int nranks = std::min(threads, cfg.width);
  bsp::Communicator comm(nranks);

  std::vector<std::uint64_t> final_row(static_cast<std::size_t>(cfg.width));
  const bool local = pattern_is_local(cfg.pattern);

  ttg::WallTimer timer;
  comm.run([&](bsp::Rank& rank) {
    const int r = rank.id();
    // Block distribution of columns.
    const int base = cfg.width / nranks;
    const int extra = cfg.width % nranks;
    const int x0 = r * base + std::min(r, extra);
    const int nx = base + (r < extra ? 1 : 0);

    if (local) {
      // prev/cur hold the owned block plus one halo column on each side.
      std::vector<std::uint64_t> prev(static_cast<std::size_t>(nx) + 2);
      std::vector<std::uint64_t> cur(static_cast<std::size_t>(nx) + 2);
      for (int i = 0; i < nx; ++i) prev[i + 1] = seed_value(x0 + i);
      std::uint64_t vals[8];
      for (int t = 1; t <= cfg.steps; ++t) {
        if (cfg.pattern == Pattern::kStencil1D) {
          // Halo exchange with direct neighbors.
          if (r > 0) rank.send(r - 1, t, prev[1]);
          if (r < nranks - 1) rank.send(r + 1, t, prev[nx]);
          if (r > 0) prev[0] = rank.recv<std::uint64_t>(r - 1, t);
          if (r < nranks - 1) {
            prev[nx + 1] = rank.recv<std::uint64_t>(r + 1, t);
          }
        }
        for (int i = 0; i < nx; ++i) {
          const int x = x0 + i;
          std::size_t n = 0;
          switch (cfg.pattern) {
            case Pattern::kTrivial:
              break;
            case Pattern::kNoComm:
              vals[n++] = prev[i + 1];
              break;
            default:  // kStencil1D
              for (int dx = -1; dx <= 1; ++dx) {
                if (x + dx >= 0 && x + dx < cfg.width) {
                  vals[n++] = prev[i + 1 + dx];
                }
              }
              break;
          }
          run_kernel(cfg, t, x);
          cur[i + 1] = combine(t, x, vals, n);
        }
        std::swap(prev, cur);
      }
      for (int i = 0; i < nx; ++i) final_row[x0 + i] = prev[i + 1];
      rank.barrier();
    } else {
      // Non-local pattern: every rank keeps the full previous row,
      // refreshed by an all-gather each step.
      std::vector<std::uint64_t> prev(static_cast<std::size_t>(cfg.width));
      std::vector<std::uint64_t> mine(static_cast<std::size_t>(nx));
      for (int x = 0; x < cfg.width; ++x) prev[x] = seed_value(x);
      std::uint64_t vals[8];
      for (int t = 1; t <= cfg.steps; ++t) {
        for (int i = 0; i < nx; ++i) {
          const int x = x0 + i;
          const auto deps = dependencies(cfg, t, x);
          std::size_t n = 0;
          for (int d : deps) vals[n++] = prev[d];
          run_kernel(cfg, t, x);
          mine[i] = combine(t, x, vals, n);
        }
        // All-gather: broadcast the owned block, collect the others.
        for (int o = 0; o < nranks; ++o) {
          if (o != r) rank.send(o, t, mine.data(), mine.size());
        }
        for (int i = 0; i < nx; ++i) prev[x0 + i] = mine[i];
        for (int o = 0; o < nranks; ++o) {
          if (o == r) continue;
          const int ox0 = o * base + std::min(o, extra);
          const int onx = base + (o < extra ? 1 : 0);
          rank.recv(o, t, prev.data() + ox0, static_cast<std::size_t>(onx));
        }
      }
      for (int i = 0; i < nx; ++i) final_row[x0 + i] = prev[x0 + i];
      rank.barrier();
    }
  });

  RunResult r;
  r.seconds = timer.seconds();
  r.tasks = static_cast<std::uint64_t>(cfg.width) *
            static_cast<std::uint64_t>(cfg.steps);
  r.checksum = fold_checksum(final_row);
  r.checksum_ok = !cfg.verify || r.checksum == reference_checksum(cfg);
  return r;
}

}  // namespace taskbench
