#include "taskbench/taskbench.hpp"

#include <vector>

#include "common/rng.hpp"

namespace taskbench {

std::string to_string(Kernel k) {
  switch (k) {
    case Kernel::kEmpty: return "empty";
    case Kernel::kComputeBound: return "compute_bound";
    case Kernel::kMemoryBound: return "memory_bound";
    case Kernel::kImbalance: return "load_imbalance";
  }
  return "?";
}

namespace {
constexpr int kWorkingSet = 64;
}

std::uint64_t kernel_compute(std::uint64_t iterations) noexcept {
  // The Task-Bench compute-bound kernel: repeated fused multiply-adds on
  // a small working set that stays in L1. 2 flops per element per
  // iteration -> kFlopsPerIteration = 2 * 64 = 128 flops per iteration.
  if (iterations == 0) return 0;
  double a[kWorkingSet];
  for (int i = 0; i < kWorkingSet; ++i) {
    a[i] = 1.0 + 1e-9 * static_cast<double>(i);
  }
  const double b = 1.0 + 1e-12;
  const double c = 1e-15;
  for (std::uint64_t it = 0; it < iterations; ++it) {
    for (int i = 0; i < kWorkingSet; ++i) {
      a[i] = a[i] * b + c;
    }
  }
  // Fold the buffer so the loop cannot be optimized away.
  double s = 0;
  for (int i = 0; i < kWorkingSet; ++i) s += a[i];
  std::uint64_t bits;
  __builtin_memcpy(&bits, &s, sizeof(bits));
  return bits;
}

std::uint64_t kernel_memory(std::uint64_t iterations) noexcept {
  if (iterations == 0) return 0;
  // Per-thread buffer of kBytesPerIteration bytes: large enough to leave
  // L1/L2 so each pass streams from farther out in the hierarchy.
  constexpr std::size_t kElems = kBytesPerIteration / sizeof(double);
  static thread_local std::vector<double> buf;
  if (buf.size() != kElems) {
    buf.assign(kElems, 1.0);
  }
  double s = 0;
  for (std::uint64_t it = 0; it < iterations; ++it) {
    double* a = buf.data();
    for (std::size_t i = 0; i < kElems; ++i) {
      a[i] = a[i] * 1.0000001 + 1e-9;
    }
    s += a[it % kElems];
  }
  std::uint64_t bits;
  __builtin_memcpy(&bits, &s, sizeof(bits));
  return bits;
}

std::uint64_t run_kernel(const BenchConfig& cfg, int t, int x) noexcept {
  switch (cfg.kernel) {
    case Kernel::kEmpty:
      return 0;
    case Kernel::kComputeBound:
      return kernel_compute(cfg.iterations);
    case Kernel::kMemoryBound:
      return kernel_memory(cfg.iterations);
    case Kernel::kImbalance: {
      // Deterministic per-task scale in [0, 2): average work matches the
      // compute-bound kernel, the spread exercises stealing.
      const std::uint64_t h =
          ttg::mix64((static_cast<std::uint64_t>(t) << 32) ^
                     static_cast<std::uint64_t>(x));
      const double scale = 2.0 * static_cast<double>(h >> 11) * 0x1.0p-53;
      return kernel_compute(
          static_cast<std::uint64_t>(scale * cfg.iterations));
    }
  }
  return 0;
}

}  // namespace taskbench
