// Task-Bench over taskflow_mini (control flow only): the full W x T task
// DAG is built statically with precede() edges; values travel through a
// shared grid whose write-before-read order is enforced by the control
// edges, matching how a TaskFlow user would write this benchmark.
#include <vector>

#include "baselines/taskflow_mini.hpp"
#include "common/cycle_clock.hpp"
#include "taskbench/taskbench.hpp"

namespace taskbench {

RunResult run_taskflow(const BenchConfig& cfg, int threads) {
  std::vector<std::uint64_t> grid(
      static_cast<std::size_t>(cfg.width) * (cfg.steps + 1));
  const auto at = [&](int t, int x) -> std::uint64_t& {
    return grid[static_cast<std::size_t>(t) * cfg.width + x];
  };
  for (int x = 0; x < cfg.width; ++x) at(0, x) = seed_value(x);

  tfm::Taskflow flow;
  std::vector<tfm::Task> prev_row;
  std::vector<tfm::Task> cur_row;
  prev_row.reserve(static_cast<std::size_t>(cfg.width));
  cur_row.reserve(static_cast<std::size_t>(cfg.width));

  // Row 0 exists as no-op source tasks so every later row can wire
  // backward uniformly.
  for (int x = 0; x < cfg.width; ++x) {
    prev_row.push_back(flow.emplace([] {}));
  }
  for (int t = 1; t <= cfg.steps; ++t) {
    cur_row.clear();
    for (int x = 0; x < cfg.width; ++x) {
      const auto deps = dependencies(cfg, t, x);
      tfm::Task task = flow.emplace([&cfg, &grid, t, x] {
        const auto deps = dependencies(cfg, t, x);
        std::uint64_t vals[8];
        std::size_t n = 0;
        for (int d : deps) {
          vals[n++] = grid[static_cast<std::size_t>(t - 1) * cfg.width + d];
        }
        run_kernel(cfg, t, x);
        grid[static_cast<std::size_t>(t) * cfg.width + x] =
            combine(t, x, vals, n);
      });
      if (deps.empty()) {
        // Keep the DAG connected so the row ordering holds even for the
        // trivial pattern.
        prev_row[static_cast<std::size_t>(x)].precede(task);
      } else {
        for (int d : deps) {
          prev_row[static_cast<std::size_t>(d)].precede(task);
        }
      }
      cur_row.push_back(task);
    }
    std::swap(prev_row, cur_row);
  }
  (void)at;

  tfm::Executor executor(threads);
  ttg::WallTimer timer;
  executor.run(flow);

  RunResult r;
  r.seconds = timer.seconds();
  r.tasks = static_cast<std::uint64_t>(cfg.width) *
            static_cast<std::uint64_t>(cfg.steps);
  std::vector<std::uint64_t> last(static_cast<std::size_t>(cfg.width));
  for (int x = 0; x < cfg.width; ++x) last[x] = at(cfg.steps, x);
  r.checksum = fold_checksum(last);
  r.checksum_ok = !cfg.verify || r.checksum == reference_checksum(cfg);
  return r;
}

}  // namespace taskbench
