// Task-Bench over TTG, structured exactly like the paper's Fig. 2 and
// Listing 1: an Init TT feeds the first row, Point TTs with an
// *aggregator* input consume a per-key number of dependency values, sort
// them by origin, run the kernel, and broadcast to their successors; the
// last row flows into a Write-Back TT that fills the result buffer.
#include <algorithm>
#include <utility>
#include <vector>

#include "common/cycle_clock.hpp"
#include "taskbench/taskbench.hpp"
#include "ttg/ttg.hpp"

namespace taskbench {

namespace {

using PKey = std::pair<int, int>;  // (t, x)

struct PointData {
  int origin_x;
  std::uint64_t value;
};

RunResult run_ttg_config(const BenchConfig& cfg, int threads,
                         const ttg::Config& base, bool replay = false) {
  ttg::Config rt = base;
  rt.num_threads = threads;
  ttg::World world(rt);

  ttg::Edge<PKey, PointData> p2p("p2p");
  ttg::Edge<PKey, PointData> p2w("p2w");
  ttg::Edge<int, ttg::Void> init_in("init");

  std::vector<std::uint64_t> result(static_cast<std::size_t>(cfg.width));

  // Init: one task per column, seeding the t == 1 aggregators.
  auto init_tt = ttg::make_tt<int>(
      [&cfg](const int& x, const ttg::Void&, auto& outs) {
        const std::uint64_t v = seed_value(x);
        for (int sx : reverse_dependencies(cfg, 0, x)) {
          ttg::send<0>(PKey{1, sx}, PointData{x, v}, outs);
        }
      },
      ttg::edges(init_in), ttg::edges(p2p), "Init", world);

  // Point: aggregator input with the per-key dependency count
  // (compute_num_inputs in the paper's Listing 1).
  auto count_fn = [&cfg](const PKey& key) -> std::int32_t {
    return static_cast<std::int32_t>(
        std::max<std::size_t>(1, dependencies(cfg, key.first, key.second)
                                     .size()));
  };
  auto agg_edge = ttg::make_aggregator(p2p, count_fn);

  auto point_tt = ttg::make_tt<PKey>(
      [&cfg](const PKey& key, const ttg::Aggregator<PointData>& values,
             auto& outs) {
        const int t = key.first;
        const int x = key.second;
        // Order inputs by their origin (Listing 1's sorted_insert);
        // the aggregate is tiny (<= 3 in the paper's stencil), so an
        // insertion sort of (origin, value) pairs suffices. Placeholder
        // tokens (origin_x < 0, fed to dependency-free points) carry no
        // data and are skipped.
        std::uint64_t sorted[8];
        std::pair<int, std::uint64_t> tmp[8];
        std::size_t n = 0;
        for (const PointData& v : values) {
          if (v.origin_x < 0) continue;
          std::size_t pos = n;
          while (pos > 0 && tmp[pos - 1].first > v.origin_x) {
            tmp[pos] = tmp[pos - 1];
            --pos;
          }
          tmp[pos] = {v.origin_x, v.value};
          ++n;
        }
        for (std::size_t i = 0; i < n; ++i) sorted[i] = tmp[i].second;

        run_kernel(cfg, t, x);
        const std::uint64_t value = combine(t, x, sorted, n);

        if (t < cfg.steps) {
          for (int sx : reverse_dependencies(cfg, t, x)) {
            ttg::send<0>(PKey{t + 1, sx}, PointData{x, value}, outs);
          }
        } else {
          ttg::send<1>(PKey{t, x}, PointData{x, value}, outs);
        }
      },
      ttg::edges(agg_edge), ttg::edges(p2p, p2w), "Point", world);

  // Trivial / isolated points have no incoming data; Init feeds them a
  // placeholder token so their (count == 1) aggregate fires.
  const bool needs_placeholder = [&cfg] {
    for (int x = 0; x < cfg.width; ++x) {
      if (dependencies(cfg, 1, x).empty()) return true;
    }
    return false;
  }();

  auto wb_tt = ttg::make_tt<PKey>(
      [&result](const PKey& key, PointData& v, auto&) {
        result[static_cast<std::size_t>(key.second)] = v.value;
      },
      ttg::edges(p2w), ttg::edges(), "WriteBack", world);

  // The seeding sequence is deterministic (single thread, fixed order) —
  // exactly what replay's external-delivery cursor requires.
  const auto seed = [&] {
    for (int x = 0; x < cfg.width; ++x) init_tt->sendk_input<0>(x);
    if (needs_placeholder) {
      for (int t = 1; t <= cfg.steps; ++t) {
        for (int x = 0; x < cfg.width; ++x) {
          if (dependencies(cfg, t, x).empty()) {
            point_tt->send_input<0>(PKey{t, x}, PointData{-1, 0});
          }
        }
      }
    }
  };

  RunResult r;
  if (replay) {
    world.begin_recording();
    seed();
    world.fence();
    ttg::ReplayInstance instance(world.end_recording());
    // Warm-up replay: builds the arena, pre-warms the copy pools, and
    // faults in the template; the timed epoch measures steady state.
    world.execute_replay(instance);
    seed();
    world.fence();
    ttg::WallTimer timer;
    world.execute_replay(instance);
    seed();
    world.fence();
    r.seconds = timer.seconds();
  } else {
    ttg::WallTimer timer;
    world.execute();
    seed();
    world.fence();
    r.seconds = timer.seconds();
  }
  r.tasks = static_cast<std::uint64_t>(cfg.width) *
            static_cast<std::uint64_t>(cfg.steps);
  r.checksum = fold_checksum(result);
  r.checksum_ok = !cfg.verify || r.checksum == reference_checksum(cfg);
  (void)wb_tt;
  return r;
}

}  // namespace

RunResult run_ttg(const BenchConfig& cfg, int threads) {
  return run_ttg_config(cfg, threads, ttg::Config::optimized());
}

RunResult run_ttg_original(const BenchConfig& cfg, int threads) {
  return run_ttg_config(cfg, threads, ttg::Config::original());
}

RunResult run_ttg_with(const BenchConfig& cfg, int threads,
                       const ttg::Config& rt) {
  return run_ttg_config(cfg, threads, rt);
}

RunResult run_ttg_replay(const BenchConfig& cfg, int threads) {
  return run_ttg_config(cfg, threads, ttg::Config::optimized(),
                        /*replay=*/true);
}

}  // namespace taskbench
