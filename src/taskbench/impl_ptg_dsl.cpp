// Task-Bench over the PTG front-end (ptg::ParameterizedGraph): the same
// algebraic-dependences model as the lean `ptg` implementation, but
// going through the reusable DSL with its concurrent value store — the
// closest analog of writing Task-Bench in PaRSEC's PTG language.
#include <utility>
#include <vector>

#include "common/cycle_clock.hpp"
#include "ptg/ptg.hpp"
#include "taskbench/taskbench.hpp"

namespace taskbench {

RunResult run_ptg_dsl(const BenchConfig& cfg, int threads) {
  ttg::Config rt = ttg::Config::optimized();
  rt.num_threads = threads;
  ttg::Context ctx(rt);

  using Key = std::pair<int, int>;  // (t, x); t == 0 is the seed row

  ptg::ParameterizedGraph<Key, std::uint64_t> g(
      ctx,
      [&cfg](const Key& k) {
        if (k.first == 0) return 0;
        return static_cast<int>(
            dependencies(cfg, k.first, k.second).size());
      },
      [&cfg](const Key& k) {
        std::vector<Key> succ;
        if (k.first < cfg.steps) {
          for (int sx : reverse_dependencies(cfg, k.first, k.second)) {
            succ.push_back(Key{k.first + 1, sx});
          }
        }
        return succ;
      },
      [&cfg](const Key& k, const auto& input_of) -> std::uint64_t {
        const auto [t, x] = k;
        if (t == 0) return seed_value(x);
        const auto deps = dependencies(cfg, t, x);
        std::uint64_t vals[8];
        std::size_t n = 0;
        for (int d : deps) vals[n++] = input_of(Key{t - 1, d});
        run_kernel(cfg, t, x);
        return combine(t, x, vals, n);
      });

  ttg::WallTimer timer;
  ctx.begin();
  for (int x = 0; x < cfg.width; ++x) g.seed(Key{0, x});
  // Points with no dependencies at t >= 1 (trivial pattern) never get
  // unlocked by a predecessor; schedule them directly.
  if (cfg.pattern == Pattern::kTrivial) {
    for (int t = 1; t <= cfg.steps; ++t) {
      for (int x = 0; x < cfg.width; ++x) g.seed(Key{t, x});
    }
  }
  ctx.fence();

  RunResult r;
  r.seconds = timer.seconds();
  r.tasks = static_cast<std::uint64_t>(cfg.width) *
            static_cast<std::uint64_t>(cfg.steps);
  std::vector<std::uint64_t> last(static_cast<std::size_t>(cfg.width));
  for (int x = 0; x < cfg.width; ++x) {
    const std::uint64_t* v = g.find(Key{cfg.steps, x});
    last[x] = v != nullptr ? *v : 0;
  }
  r.checksum = fold_checksum(last);
  r.checksum_ok = !cfg.verify || r.checksum == reference_checksum(cfg);
  return r;
}

}  // namespace taskbench
