#include "taskbench/taskbench.hpp"

namespace taskbench {

const std::vector<Implementation>& implementations() {
  static const std::vector<Implementation> impls = [] {
    std::vector<Implementation> v;
    v.push_back({"ttg", &run_ttg});
    v.push_back({"ttg_original", &run_ttg_original});
    v.push_back({"ptg", &run_raw_ptg});
    v.push_back({"ptg_dsl", &run_ptg_dsl});
    v.push_back({"ptg_original", &run_raw_ptg_original});
    v.push_back({"mpi_bsp", &run_bsp});
    v.push_back({"taskflow_mini", &run_taskflow});
#if defined(TTG_SMALLTASK_HAVE_OPENMP)
    v.push_back({"omp_for", &run_omp_for});
    v.push_back({"omp_tasks", &run_omp_tasks});
#endif
    return v;
  }();
  return impls;
}

const Implementation* find_implementation(const std::string& name) {
  for (const auto& impl : implementations()) {
    if (impl.name == name) return &impl;
  }
  return nullptr;
}

}  // namespace taskbench
