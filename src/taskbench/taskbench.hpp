// Parameterized Task-Bench (paper Sec. V-D, after Slaughter et al. SC'20).
//
// Task-Bench runs a grid of `width` points for `steps` timesteps; the
// task at (t, x) consumes the outputs of a pattern-defined set of points
// at t-1 and runs a compute-bound kernel of a configurable number of
// iterations (flops). The paper's figures use the 1D stencil pattern
// (2+1 dependencies) with one point per core and 1000 timesteps,
// sweeping flops-per-task to find each runtime's minimum effective task
// granularity (METG).
//
// Every implementation here computes the same value recurrence so that
// results can be cross-checked: value(t, x) folds the values of the
// dependencies (ordered by origin x) with the point's coordinates; the
// run's checksum folds the last row.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "runtime/config.hpp"

namespace taskbench {

enum class Pattern {
  kTrivial,            ///< no dependencies
  kNoComm,             ///< (t-1, x)
  kStencil1D,          ///< (t-1, {x-1, x, x+1}) clipped at the borders
  kStencil1DPeriodic,  ///< same, wrapping around
  kFFT,                ///< butterfly: (t-1, x) and (t-1, x ^ 2^{(t-1)%log2(W)})
  kTree,               ///< binary reduction: (t-1, x) and (t-1, x + 2^{t-1}) when valid
};

std::string to_string(Pattern p);

/// The per-task workload kind (the real Task-Bench's kernel set).
enum class Kernel {
  kEmpty,        ///< no work: pure task-management overhead
  kComputeBound, ///< FMAs on an L1-resident working set (the paper's)
  kMemoryBound,  ///< streaming triad over a cache-busting buffer
  kImbalance,    ///< compute-bound, scaled per task by a deterministic
                 ///< pseudo-random factor in [0, 2)
};

std::string to_string(Kernel k);

struct BenchConfig {
  Pattern pattern = Pattern::kStencil1D;
  Kernel kernel = Kernel::kComputeBound;
  int width = 4;             ///< points per timestep ("one per core")
  int steps = 1000;          ///< timesteps
  std::uint64_t iterations = 0;  ///< kernel iterations per task
  bool verify = true;        ///< compute/compare checksums
};

/// Fixed-capacity dependency list. Every pattern in this harness has at
/// most 3 dependencies per point, and the dependency queries sit on the
/// per-task hot path of several implementations — returning this POD
/// instead of a heap-allocated vector keeps a malloc/free pair out of
/// every task body (which would otherwise dominate the small-task
/// overhead the harness exists to measure).
struct DepList {
  static constexpr int kCap = 4;
  int v[kCap];
  int n = 0;

  void push_back(int x) {
    assert(n < kCap);
    v[n++] = x;
  }
  int* begin() { return v; }
  int* end() { return v + n; }
  const int* begin() const { return v; }
  const int* end() const { return v + n; }
  std::size_t size() const { return static_cast<std::size_t>(n); }
  bool empty() const { return n == 0; }
  int operator[](std::size_t i) const { return v[i]; }

  friend bool operator==(const DepList& a, const std::vector<int>& b) {
    return std::equal(a.begin(), a.end(), b.begin(), b.end());
  }
  friend bool operator==(const std::vector<int>& a, const DepList& b) {
    return b == a;
  }
};

/// Points at t-1 whose output feeds (t, x); sorted ascending, empty for
/// t == 0. (The "backward" query of the Task-Bench core API.)
DepList dependencies(const BenchConfig& cfg, int t, int x);

/// Points at t+1 that consume (t, x)'s output; sorted ascending, empty
/// for the last step. (The "forward" query TTG needs, Sec. V-D.)
DepList reverse_dependencies(const BenchConfig& cfg, int t, int x);

/// The compute-bound kernel: `iterations` passes of fused multiply-adds
/// over a 64-double working set (kFlopsPerIteration flops per pass).
inline constexpr std::uint64_t kFlopsPerIteration = 128;
std::uint64_t kernel_compute(std::uint64_t iterations) noexcept;

/// The memory-bound kernel: `iterations` triad passes over a per-thread
/// buffer larger than L2 (kBytesPerIteration bytes moved per pass).
inline constexpr std::uint64_t kBytesPerIteration = 1 << 20;
std::uint64_t kernel_memory(std::uint64_t iterations) noexcept;

/// Dispatches the configured kernel for task (t, x). The imbalance
/// kernel derives its per-task scale from (t, x) deterministically.
std::uint64_t run_kernel(const BenchConfig& cfg, int t, int x) noexcept;

/// Converts a target flops-per-task to kernel iterations (rounds up so 0
/// flops stays 0 iterations).
inline std::uint64_t flops_to_iterations(std::uint64_t flops) {
  return (flops + kFlopsPerIteration - 1) / kFlopsPerIteration;
}

/// The value recurrence: dep_values must be ordered by the origin x of
/// the dependency (ascending).
std::uint64_t combine(int t, int x, const std::uint64_t* dep_values,
                      std::size_t n);

/// Value of point (t, x) at t == 0 (seed row).
std::uint64_t seed_value(int x);

/// Folds the final row into a run checksum.
std::uint64_t fold_checksum(const std::vector<std::uint64_t>& last_row);

/// Serial reference: returns the expected checksum.
std::uint64_t reference_checksum(const BenchConfig& cfg);

struct RunResult {
  double seconds = 0;
  std::uint64_t checksum = 0;
  std::uint64_t tasks = 0;
  bool checksum_ok = true;
};

/// One implementation of the benchmark.
struct Implementation {
  std::string name;
  RunResult (*run)(const BenchConfig& cfg, int threads);
};

/// All implementations compiled into this build, in presentation order.
const std::vector<Implementation>& implementations();

/// Looks up an implementation by name; nullptr if absent.
const Implementation* find_implementation(const std::string& name);

// Individual entry points (also reachable via implementations()).
RunResult run_ttg(const BenchConfig& cfg, int threads);
RunResult run_ttg_original(const BenchConfig& cfg, int threads);
/// TTG with record-and-replay epoch compilation (docs/replay.md): the
/// graph is recorded once in a dynamic epoch, then the timed run replays
/// the frozen template (pre-resolved successors, join counters, no hash
/// table). Not part of implementations() — the figure sweeps compare
/// dynamic runtimes; replay rows are reported separately.
RunResult run_ttg_replay(const BenchConfig& cfg, int threads);
/// TTG with an arbitrary runtime configuration (Fig. 9 ablation).
RunResult run_ttg_with(const BenchConfig& cfg, int threads,
                       const ttg::Config& rt);
RunResult run_raw_ptg(const BenchConfig& cfg, int threads);
RunResult run_ptg_dsl(const BenchConfig& cfg, int threads);
RunResult run_raw_ptg_original(const BenchConfig& cfg, int threads);
RunResult run_bsp(const BenchConfig& cfg, int threads);
RunResult run_taskflow(const BenchConfig& cfg, int threads);
#if defined(TTG_SMALLTASK_HAVE_OPENMP)
RunResult run_omp_for(const BenchConfig& cfg, int threads);
RunResult run_omp_tasks(const BenchConfig& cfg, int threads);
#endif

}  // namespace taskbench
