// Task-Bench over the raw runtime — the PTG-like implementation.
//
// Like PaRSEC's Parameterized Task Graph DSL, the dependence structure is
// known algebraically: no hash table, no data copies. Each point carries
// an atomic countdown of unsatisfied dependencies; values live in a
// preallocated grid; completing a task decrements its forward
// dependencies and schedules those that reach zero.
#include <atomic>
#include <memory>
#include <vector>

#include "common/cycle_clock.hpp"
#include "runtime/context.hpp"
#include "structures/mempool.hpp"
#include "taskbench/taskbench.hpp"

namespace taskbench {

namespace {

struct PtgState;

struct PointTask : ttg::TaskBase {
  PtgState* state;
  int t;
  int x;
};

struct PtgState {
  const BenchConfig* cfg;
  ttg::Context* ctx;
  ttg::MemoryPool pool{sizeof(PointTask)};
  std::vector<std::uint64_t> grid;          // (steps+1) x width
  std::vector<std::atomic<int>> counters;   // steps x width (t >= 1)
  // Precomputed forward/backward dependency lists (flattened, per point).
  std::vector<DepList> deps;   // index (t-1)*W + x
  std::vector<DepList> rdeps;  // index (t-1)*W + x

  std::uint64_t& value(int t, int x) {
    return grid[static_cast<std::size_t>(t) * cfg->width + x];
  }
  std::atomic<int>& counter(int t, int x) {
    return counters[static_cast<std::size_t>(t - 1) * cfg->width + x];
  }
};

void execute_point(ttg::TaskBase* base, ttg::Worker&);

void spawn_point(PtgState& st, int t, int x) {
  auto* task = new (st.pool.allocate()) PointTask;
  task->execute = &execute_point;
  task->pool = &st.pool;
  task->state = &st;
  task->t = t;
  task->x = x;
  st.ctx->on_discovered(1);
  st.ctx->submit(task);
}

void execute_point(ttg::TaskBase* base, ttg::Worker&) {
  auto* task = static_cast<PointTask*>(base);
  PtgState& st = *task->state;
  const BenchConfig& cfg = *st.cfg;
  const int t = task->t;
  const int x = task->x;

  const auto& deps = st.deps[static_cast<std::size_t>(t - 1) * cfg.width + x];
  std::uint64_t vals[8];
  std::size_t n = 0;
  for (int d : deps) vals[n++] = st.value(t - 1, d);
  run_kernel(cfg, t, x);
  st.value(t, x) = combine(t, x, vals, n);

  if (t < cfg.steps) {
    const auto& rdeps =
        st.rdeps[static_cast<std::size_t>(t - 1) * cfg.width + x];
    for (int sx : rdeps) {
      if (st.counter(t + 1, sx).fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        spawn_point(st, t + 1, sx);
      }
    }
  }

  ttg::MemoryPool* pool = task->pool;
  task->~PointTask();
  pool->deallocate(task);
}

RunResult run_raw_config(const BenchConfig& cfg, int threads,
                         const ttg::Config& base) {
  ttg::Config rt = base;
  rt.num_threads = threads;
  ttg::Context ctx(rt);

  PtgState st;
  st.cfg = &cfg;
  st.ctx = &ctx;
  const std::size_t npoints =
      static_cast<std::size_t>(cfg.width) * cfg.steps;
  st.grid.resize(static_cast<std::size_t>(cfg.width) * (cfg.steps + 1));
  st.counters = std::vector<std::atomic<int>>(npoints);
  st.deps.resize(npoints);
  st.rdeps.resize(npoints);
  for (int t = 1; t <= cfg.steps; ++t) {
    for (int x = 0; x < cfg.width; ++x) {
      const std::size_t i = static_cast<std::size_t>(t - 1) * cfg.width + x;
      st.deps[i] = dependencies(cfg, t, x);
      st.rdeps[i] = reverse_dependencies(cfg, t, x);
      // t == 1 depends only on the seed row, which is ready by
      // construction, so those tasks start eligible.
      st.counters[i].store(
          t == 1 ? 0 : static_cast<int>(st.deps[i].size()),
          std::memory_order_relaxed);
    }
  }
  for (int x = 0; x < cfg.width; ++x) st.value(0, x) = seed_value(x);

  ttg::WallTimer timer;
  ctx.begin();
  for (int x = 0; x < cfg.width; ++x) spawn_point(st, 1, x);
  // Points with zero dependencies at t > 1 (trivial pattern) are all
  // eligible immediately as well.
  if (cfg.pattern == Pattern::kTrivial) {
    for (int t = 2; t <= cfg.steps; ++t) {
      for (int x = 0; x < cfg.width; ++x) spawn_point(st, t, x);
    }
  }
  ctx.fence();

  RunResult r;
  r.seconds = timer.seconds();
  r.tasks = npoints;
  std::vector<std::uint64_t> last(static_cast<std::size_t>(cfg.width));
  for (int x = 0; x < cfg.width; ++x) last[x] = st.value(cfg.steps, x);
  r.checksum = fold_checksum(last);
  r.checksum_ok = !cfg.verify || r.checksum == reference_checksum(cfg);
  return r;
}

}  // namespace

RunResult run_raw_ptg(const BenchConfig& cfg, int threads) {
  return run_raw_config(cfg, threads, ttg::Config::optimized());
}

RunResult run_raw_ptg_original(const BenchConfig& cfg, int threads) {
  return run_raw_config(cfg, threads, ttg::Config::original());
}

}  // namespace taskbench
