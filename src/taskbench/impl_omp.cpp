// Task-Bench over OpenMP: the two variants the paper compares against.
//
//  * omp_for  — worksharing: one `parallel for` per timestep with an
//    implicit barrier (the "OpenMP Parallel For" lines of Fig. 7/8).
//  * omp_tasks — task-based: one task per point with `depend` clauses on
//    the grid cells (the "OpenMP Tasks" lines). The depend list is
//    padded by repeating the first dependency, since OpenMP depend
//    clauses are static; all patterns used here have at most 3.
#include <omp.h>

#include <vector>

#include "common/cycle_clock.hpp"
#include "taskbench/taskbench.hpp"

namespace taskbench {

RunResult run_omp_for(const BenchConfig& cfg, int threads) {
  std::vector<std::uint64_t> prev(static_cast<std::size_t>(cfg.width));
  std::vector<std::uint64_t> cur(static_cast<std::size_t>(cfg.width));
  for (int x = 0; x < cfg.width; ++x) prev[x] = seed_value(x);

  ttg::WallTimer timer;
  omp_set_num_threads(threads);
#pragma omp parallel
  {
    std::uint64_t vals[8];
    for (int t = 1; t <= cfg.steps; ++t) {
#pragma omp for schedule(static)
      for (int x = 0; x < cfg.width; ++x) {
        const auto deps = dependencies(cfg, t, x);
        std::size_t n = 0;
        for (int d : deps) vals[n++] = prev[d];
        run_kernel(cfg, t, x);
        cur[x] = combine(t, x, vals, n);
      }
      // The implicit barrier of `omp for` ordered the writes; a single
      // thread swaps the rows, and the next barrier republishes.
#pragma omp single
      std::swap(prev, cur);
    }
  }

  RunResult r;
  r.seconds = timer.seconds();
  r.tasks = static_cast<std::uint64_t>(cfg.width) *
            static_cast<std::uint64_t>(cfg.steps);
  r.checksum = fold_checksum(prev);
  r.checksum_ok = !cfg.verify || r.checksum == reference_checksum(cfg);
  return r;
}

RunResult run_omp_tasks(const BenchConfig& cfg, int threads) {
  std::vector<std::uint64_t> grid(
      static_cast<std::size_t>(cfg.width) * (cfg.steps + 1));
  std::uint64_t* g = grid.data();
  const int w = cfg.width;
  for (int x = 0; x < w; ++x) g[x] = seed_value(x);

  ttg::WallTimer timer;
  omp_set_num_threads(threads);
#pragma omp parallel
#pragma omp single
  {
    for (int t = 1; t <= cfg.steps; ++t) {
      for (int x = 0; x < w; ++x) {
        const auto deps = dependencies(cfg, t, x);
        // Pad the (static) depend list by repeating the first entry.
        const int d0 = deps.empty() ? x : deps[0];
        const int d1 = deps.size() > 1 ? deps[1] : d0;
        const int d2 = deps.size() > 2 ? deps[2] : d1;
#pragma omp task firstprivate(t, x, d0, d1, d2)                       \
    depend(in : g[(t - 1) * w + d0], g[(t - 1) * w + d1],             \
               g[(t - 1) * w + d2])                                   \
    depend(out : g[t * w + x])
        {
          const auto tdeps = dependencies(cfg, t, x);
          std::uint64_t vals[8];
          std::size_t n = 0;
          for (int d : tdeps) {
            vals[n++] = g[static_cast<std::size_t>(t - 1) * w + d];
          }
          run_kernel(cfg, t, x);
          g[static_cast<std::size_t>(t) * w + x] = combine(t, x, vals, n);
        }
      }
    }
#pragma omp taskwait
  }

  RunResult r;
  r.seconds = timer.seconds();
  r.tasks = static_cast<std::uint64_t>(cfg.width) *
            static_cast<std::uint64_t>(cfg.steps);
  std::vector<std::uint64_t> last(static_cast<std::size_t>(cfg.width));
  for (int x = 0; x < w; ++x) {
    last[x] = g[static_cast<std::size_t>(cfg.steps) * w + x];
  }
  r.checksum = fold_checksum(last);
  r.checksum_ok = !cfg.verify || r.checksum == reference_checksum(cfg);
  return r;
}

}  // namespace taskbench
