// Scheduler interface (paper Sec. III-B).
//
// "At the heart of every task-based runtime system is a scheduler mapping
// eligible tasks to a set of worker threads ... The scheduler is
// typically a passive element: threads continuously query a data
// structure for eligible tasks." TTG needs (i) low-contention
// distribution (thread-local queues with stealing) and (ii) priorities.
//
// Three implementations reproduce the paper's comparison:
//  * LFQ  — PaRSEC's default local-flat-queues: per-thread bounded
//           priority buffers plus a globally-locked overflow FIFO; the
//           FIFO's lock is the Fig. 6 bottleneck.
//  * LL   — local LIFOs with stealing; low contention, no priorities.
//  * LLP  — the paper's contribution (Sec. IV-C): local LIFOs *with*
//           priorities via a CAS fast path and a detach/insert/reattach
//           slow path.
//
// Tasks are addressed as LifoNode* (the intrusive base of TaskBase).
// `worker` is the caller's worker index, or kExternalWorker for threads
// outside the pool (e.g. the application's main thread seeding a graph):
// external pushes land in a shared MPSC ingress queue that workers drain.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/cache.hpp"
#include "runtime/trace.hpp"
#include "structures/lifo.hpp"

namespace ttg {

enum class SchedulerType {
  kLFQ,  ///< PaRSEC default: local bounded buffers + global overflow FIFO
  kLL,   ///< local LIFOs with stealing, no priorities
  kLLP,  ///< the paper's scheduler: local LIFOs *with* priorities
  kGD,   ///< global dequeue: one locked FIFO (worst-case contention)
  kAP,   ///< absolute priority: one locked global heap (strict order)
};

std::string_view to_string(SchedulerType t);

inline constexpr int kExternalWorker = -1;

/// Victim orders for work stealing. "The real PaRSEC walks the cache and
/// NUMA hierarchy" (Sec. III-B): with a domain size D, a worker first
/// tries the other workers of its domain (its cache/NUMA siblings), then
/// the remaining workers ring-wise. domain_size <= 1 yields the flat
/// ring order.
class StealOrder {
 public:
  StealOrder(int num_workers, int domain_size);

  /// Victims for `worker`, in preference order (excluding itself).
  const std::vector<int>& victims(int worker) const {
    return orders_[static_cast<std::size_t>(worker)];
  }

 private:
  std::vector<std::vector<int>> orders_;
};

/// Aggregate work-stealing statistics of a scheduler.
struct StealStats {
  std::uint64_t attempts = 0;   ///< pops that found the local queue empty
  std::uint64_t successes = 0;  ///< tasks obtained from a victim
};

/// Per-worker steal accounting shared by the stealing schedulers
/// (LFQ/LL/LLP). Each worker owns a cache line and is the only writer
/// (store-after-load, no RMW), so the hot path stays contention-free;
/// readers (trace::MetricsRegistry, diagnostics) see a racy-but-benign
/// snapshot. Recording also emits the trace instants that make Fig. 6
/// style analyses attributable: which worker probed, which victim paid.
class StealCounters {
 public:
  explicit StealCounters(int num_workers)
      : slots_(std::make_unique<CachePadded<Cell>[]>(
            static_cast<std::size_t>(num_workers))),
        num_workers_(num_workers) {}

  /// The local queue was empty and `worker` starts probing victims.
  void on_attempt(int worker) noexcept {
    if (worker < 0 || worker >= num_workers_) return;
    auto& a = slots_[worker]->attempts;
    a.store(a.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
    trace::record(trace::EventKind::kStealAttempt,
                  static_cast<std::uint64_t>(worker));
  }

  /// `worker` obtained a task from `victim`.
  void on_success(int worker, int victim) noexcept {
    if (worker < 0 || worker >= num_workers_) return;
    auto& s = slots_[worker]->successes;
    s.store(s.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
    trace::record(trace::EventKind::kStealSuccess,
                  static_cast<std::uint64_t>(victim));
  }

  StealStats total() const noexcept {
    StealStats t;
    for (int i = 0; i < num_workers_; ++i) {
      t.attempts += slots_[i]->attempts.load(std::memory_order_relaxed);
      t.successes += slots_[i]->successes.load(std::memory_order_relaxed);
    }
    return t;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> successes{0};
  };
  std::unique_ptr<CachePadded<Cell>[]> slots_;
  const int num_workers_;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Makes one task eligible. `worker` is the pushing thread's worker
  /// index or kExternalWorker.
  virtual void push(int worker, LifoNode* task) = 0;

  /// Makes a chain of tasks eligible in one operation. The chain is
  /// linked through LifoNode::next and sorted by descending priority
  /// (highest first). Default: push one by one.
  virtual void push_chain(int worker, LifoNode* first);

  /// Returns the next task for `worker` (local work, then stealing, then
  /// shared queues), or nullptr if none was found.
  virtual LifoNode* pop(int worker) = 0;

  virtual SchedulerType type() const = 0;

  /// Work-stealing totals; zero for the non-stealing schedulers (GD/AP).
  virtual StealStats steal_stats() const { return {}; }

  int num_workers() const { return num_workers_; }

 protected:
  explicit Scheduler(int num_workers) : num_workers_(num_workers) {}

  const int num_workers_;
};

/// Factory for the scheduler implementations. `steal_domain_size`
/// controls the hierarchical steal order of the stealing schedulers
/// (LFQ/LL/LLP); <= 1 means flat.
std::unique_ptr<Scheduler> make_scheduler(SchedulerType type,
                                          int num_workers,
                                          int steal_domain_size = 0);

}  // namespace ttg
