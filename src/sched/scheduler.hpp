// Scheduler interface (paper Sec. III-B).
//
// "At the heart of every task-based runtime system is a scheduler mapping
// eligible tasks to a set of worker threads ... The scheduler is
// typically a passive element: threads continuously query a data
// structure for eligible tasks." TTG needs (i) low-contention
// distribution (thread-local queues with stealing) and (ii) priorities.
//
// Three implementations reproduce the paper's comparison:
//  * LFQ  — PaRSEC's default local-flat-queues: per-thread bounded
//           priority buffers plus a globally-locked overflow FIFO; the
//           FIFO's lock is the Fig. 6 bottleneck.
//  * LL   — local LIFOs with stealing; low contention, no priorities.
//  * LLP  — the paper's contribution (Sec. IV-C): local LIFOs *with*
//           priorities via a CAS fast path and a detach/insert/reattach
//           slow path.
//
// Tasks are addressed as LifoNode* (the intrusive base of TaskBase).
// `worker` is the caller's worker index, or kExternalWorker for threads
// outside the pool (e.g. the application's main thread seeding a graph):
// external pushes land in a shared MPSC ingress queue that workers drain.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

#include "common/cache.hpp"
#include "common/thread_id.hpp"
#include "common/topology.hpp"
#include "runtime/trace.hpp"
#include "structures/lifo.hpp"

namespace ttg {

enum class SchedulerType {
  kLFQ,  ///< PaRSEC default: local bounded buffers + global overflow FIFO
  kLL,   ///< local LIFOs with stealing, no priorities
  kLLP,  ///< the paper's scheduler: local LIFOs *with* priorities
  kGD,   ///< global dequeue: one locked FIFO (worst-case contention)
  kAP,   ///< absolute priority: one locked global heap (strict order)
};

std::string_view to_string(SchedulerType t);

inline constexpr int kExternalWorker = -1;

/// Victim orders for work stealing. "The real PaRSEC walks the cache and
/// NUMA hierarchy" (Sec. III-B): with a domain size D, a worker first
/// tries the other workers of its domain (its cache/NUMA siblings), then
/// the remaining workers ring-wise. domain_size <= 1 yields the flat
/// ring order.
class StealOrder {
 public:
  StealOrder(int num_workers, int domain_size);

  /// Victims for `worker`, in preference order (excluding itself).
  const std::vector<int>& victims(int worker) const {
    return orders_[static_cast<std::size_t>(worker)];
  }

 private:
  std::vector<std::vector<int>> orders_;
};

/// Cap on the number of tasks one steal takes (the "capped" in
/// steal-half, Sec. IV-C hardening): a thief takes at most half of the
/// victim's visible run and never more than this many tasks, executing
/// one and installing the rest in its own queue.
inline constexpr std::size_t kStealBatchCap = 8;

/// Aggregate work-stealing statistics of a scheduler.
///
/// The steal-failure rate of a run is (attempts - successes) / attempts:
/// `attempts` only counts pops that actually probed victims, and a pop
/// satisfied by an ingress/overflow queue is an `ingress_hits` — not a
/// steal attempt, and not a failure.
struct StealStats {
  std::uint64_t attempts = 0;   ///< pops that probed at least one victim
  std::uint64_t successes = 0;  ///< steals that obtained work from a victim
  std::uint64_t ingress_hits = 0;  ///< pops satisfied by ingress/overflow
  std::uint64_t batches = 0;       ///< steals that took a multi-task batch
  std::uint64_t batch_tasks = 0;   ///< total tasks obtained via steals
};

/// Per-worker steal accounting shared by the stealing schedulers
/// (LFQ/LL/LLP). Each worker owns a cache line and is the only writer
/// (store-after-load, no RMW), so the hot path stays contention-free;
/// readers (trace::MetricsRegistry, diagnostics) see a racy-but-benign
/// snapshot. Recording also emits the trace instants that make Fig. 6
/// style analyses attributable: which worker probed, which victim paid.
class StealCounters {
 public:
  explicit StealCounters(int num_workers)
      : slots_(std::make_unique<CachePadded<Cell>[]>(
            static_cast<std::size_t>(num_workers))),
        num_workers_(num_workers) {}

  /// The local queue was empty and `worker` starts probing victims.
  void on_attempt(int worker) noexcept {
    if (worker < 0 || worker >= num_workers_) return;
    auto& a = slots_[worker]->attempts;
    a.store(a.load(std::memory_order_relaxed) + 1,
            std::memory_order_relaxed);
    trace::record(trace::EventKind::kStealAttempt,
                  static_cast<std::uint64_t>(worker));
  }

  /// `worker` obtained a task from `victim`.
  void on_success(int worker, int victim) noexcept {
    if (worker < 0 || worker >= num_workers_) return;
    Cell& c = slots_[worker].value;
    bump(c.successes);
    bump(c.batch_tasks);
    trace::record(trace::EventKind::kStealSuccess,
                  static_cast<std::uint64_t>(victim));
  }

  /// `worker` stole a batch of `n` tasks from `victim` in one operation
  /// (steal-half): one success, n tasks, and — when n > 1 — one batch.
  void on_batch(int worker, int victim, std::uint64_t n) noexcept {
    if (worker < 0 || worker >= num_workers_) return;
    Cell& c = slots_[worker].value;
    bump(c.successes);
    bump(c.batch_tasks, n);
    if (n > 1) bump(c.batches);
    trace::record(trace::EventKind::kStealSuccess,
                  static_cast<std::uint64_t>(victim));
    trace::record(trace::EventKind::kStealBatch, n);
  }

  /// `worker`'s pop was satisfied by an ingress shard or overflow queue
  /// — found work, but not by stealing.
  void on_ingress(int worker) noexcept {
    if (worker < 0 || worker >= num_workers_) return;
    bump(slots_[worker]->ingress_hits);
    trace::record(trace::EventKind::kIngressPop,
                  static_cast<std::uint64_t>(worker));
  }

  StealStats total() const noexcept {
    StealStats t;
    for (int i = 0; i < num_workers_; ++i) {
      const Cell& c = slots_[i].value;
      t.attempts += c.attempts.load(std::memory_order_relaxed);
      t.successes += c.successes.load(std::memory_order_relaxed);
      t.ingress_hits += c.ingress_hits.load(std::memory_order_relaxed);
      t.batches += c.batches.load(std::memory_order_relaxed);
      t.batch_tasks += c.batch_tasks.load(std::memory_order_relaxed);
    }
    return t;
  }

 private:
  struct Cell {
    std::atomic<std::uint64_t> attempts{0};
    std::atomic<std::uint64_t> successes{0};
    std::atomic<std::uint64_t> ingress_hits{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::uint64_t> batch_tasks{0};
  };
  static void bump(std::atomic<std::uint64_t>& v,
                   std::uint64_t by = 1) noexcept {
    v.store(v.load(std::memory_order_relaxed) + by,
            std::memory_order_relaxed);
  }
  std::unique_ptr<CachePadded<Cell>[]> slots_;
  const int num_workers_;
};

/// Sharded MPSC ingress for submissions from outside the worker pool.
///
/// The single global ingress LIFO was the last process-wide hot cacheline
/// in the stealing schedulers: every external submitter CASed it and
/// every idle worker probed it after every failed steal sweep. Shards
/// split that line per steal domain: submitters scatter by their dense
/// thread id, and a worker drains its own domain's shard *before*
/// stealing (external work routed here is warmer than a victim's
/// cacheline), sweeping foreign shards only after a failed steal sweep.
class IngressShards {
 public:
  /// Upper bound on shards, tied to the topology layer's domain cap so a
  /// machine with more than 8 memory domains gets one shard per domain
  /// instead of silently ring-sharing (the old kMaxShards=8 behavior);
  /// past the cap, domains share shards ring-wise.
  static constexpr int kMaxShards = kMaxMemoryDomains;

  IngressShards(int num_workers, int domain_size) {
    workers_per_shard_ = domain_size > 1 ? domain_size : 1;
    int shards =
        (num_workers + workers_per_shard_ - 1) / workers_per_shard_;
    if (shards < 1) shards = 1;
    if (shards > kMaxShards) shards = kMaxShards;
    num_shards_ = shards;
    shards_ = std::make_unique<CachePadded<AtomicLifo>[]>(
        static_cast<std::size_t>(num_shards_));
  }

  int num_shards() const noexcept { return num_shards_; }

  /// Shard a worker drains first: its steal domain's (flat steal order
  /// degenerates to one shard per worker, clamped).
  int shard_of_worker(int worker) const noexcept {
    return (worker / workers_per_shard_) % num_shards_;
  }

  /// Push from a thread outside the pool: scatter by dense thread id so
  /// concurrent submitters hit distinct cachelines.
  void push(LifoNode* task) noexcept {
    backlog_.fetch_add(1, std::memory_order_relaxed);
    shards_[this_thread::id() % num_shards_]->push(task);
  }

  /// Chain push from a thread outside the pool.
  void push_chain(LifoNode* first, LifoNode* last) noexcept {
    std::int64_t n = 1;
    for (LifoNode* cur = first; cur != last;
         cur = cur->next.load(std::memory_order_relaxed)) {
      ++n;
    }
    backlog_.fetch_add(n, std::memory_order_relaxed);
    shards_[this_thread::id() % num_shards_]->push_chain(first, last);
  }

  /// Drains only `worker`'s own domain shard.
  LifoNode* pop_own(int worker) noexcept {
    LifoNode* t = shards_[shard_of_worker(worker)]->pop();
    if (t != nullptr) backlog_.fetch_sub(1, std::memory_order_relaxed);
    return t;
  }

  /// Sweeps the *other* shards ring-wise from the worker's own.
  LifoNode* pop_other(int worker) noexcept {
    const int own = shard_of_worker(worker);
    for (int i = 1; i < num_shards_; ++i) {
      if (LifoNode* t = shards_[(own + i) % num_shards_]->pop();
          t != nullptr) {
        backlog_.fetch_sub(1, std::memory_order_relaxed);
        return t;
      }
    }
    return nullptr;
  }

  /// Sweeps all shards (external callers, shutdown drains).
  LifoNode* pop_any() noexcept {
    for (int i = 0; i < num_shards_; ++i) {
      if (LifoNode* t = shards_[i]->pop(); t != nullptr) {
        backlog_.fetch_sub(1, std::memory_order_relaxed);
        return t;
      }
    }
    return nullptr;
  }

  /// Approximate tasks pushed but not yet drained — the serving-mode
  /// overload signal (docs/serving.md): admission/backpressure decisions
  /// read it, the hot per-worker pop paths never touch it. Momentarily
  /// negative reads are possible (a pop can decrement between a
  /// concurrent push's queue insert and its increment — the counter is
  /// deliberately not fenced against the shard LIFO); callers clamp.
  std::int64_t backlog() const noexcept {
    return backlog_.load(std::memory_order_relaxed);
  }

 private:
  std::unique_ptr<CachePadded<AtomicLifo>[]> shards_;
  std::atomic<std::int64_t> backlog_{0};
  int num_shards_ = 1;
  int workers_per_shard_ = 1;
};

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  /// Makes one task eligible. `worker` is the pushing thread's worker
  /// index or kExternalWorker.
  virtual void push(int worker, LifoNode* task) = 0;

  /// Makes a chain of tasks eligible in one operation. The chain is
  /// linked through LifoNode::next and sorted by descending priority
  /// (highest first). Default: push one by one.
  virtual void push_chain(int worker, LifoNode* first);

  /// Returns the next task for `worker` (local work, then stealing, then
  /// shared queues), or nullptr if none was found.
  virtual LifoNode* pop(int worker) = 0;

  virtual SchedulerType type() const = 0;

  /// Work-stealing totals; zero for the non-stealing schedulers (GD/AP).
  virtual StealStats steal_stats() const { return {}; }

  /// Approximate count of externally submitted tasks not yet drained
  /// (the IngressShards backlog) — the serving-mode overload signal.
  /// Schedulers without a dedicated external ingress report 0; never
  /// negative.
  virtual std::int64_t external_backlog() const { return 0; }

  int num_workers() const { return num_workers_; }

 protected:
  explicit Scheduler(int num_workers) : num_workers_(num_workers) {}

  const int num_workers_;
};

/// Factory for the scheduler implementations. `steal_domain_size`
/// controls the hierarchical steal order of the stealing schedulers
/// (LFQ/LL/LLP); <= 1 means flat.
std::unique_ptr<Scheduler> make_scheduler(SchedulerType type,
                                          int num_workers,
                                          int steal_domain_size = 0);

}  // namespace ttg
