// LLP: Local LIFO with Priorities — the paper's scheduler (Sec. IV-C).
//
// Every worker owns a LIFO; other workers may steal from its head. Two
// observations make priorities affordable: (i) only the owning thread
// pushes into its queue, and (ii) a LIFO is a singly-linked list whose
// head is changed atomically.
//
//  * Fast path: if the new task's priority is >= the head's, push with a
//    single CAS. (">=" implements "new tasks will be inserted before old
//    tasks that have the same priority", favoring cache-warm data.)
//  * Slow path: detach the head (one atomic exchange, the LIFO reads as
//    empty), insert into the now-private list in O(n), and reattach with
//    a single release store.
//  * Bulk: freshly discovered tasks are bundled into a sorted chain and
//    merged in one detach/merge/reattach pass (Sec. IV-C "we mitigate
//    this by bundling new tasks into sorted lists").
//  * Steal-half: thieves take up to half of a victim's visible run in
//    one tagged CAS, execute the head task, and merge the (sorted)
//    remainder into their own queue priority-correctly — see
//    docs/scheduling.md.
#pragma once

#include <memory>

#include "common/cache.hpp"
#include "structures/lifo.hpp"
#include "sched/scheduler.hpp"

namespace ttg {

class LlpScheduler final : public Scheduler {
 public:
  explicit LlpScheduler(int num_workers, int steal_domain_size = 0);

  void push(int worker, LifoNode* task) override;
  void push_chain(int worker, LifoNode* first) override;
  LifoNode* pop(int worker) override;
  SchedulerType type() const override { return SchedulerType::kLLP; }
  StealStats steal_stats() const override { return steals_.total(); }
  std::int64_t external_backlog() const override {
    const std::int64_t b = ingress_.backlog();
    return b > 0 ? b : 0;
  }

  /// Test hook: number of external-ingress shards.
  int ingress_shards() const { return ingress_.num_shards(); }

 private:
  /// Merges `chain` (sorted by descending priority) into `list` (ditto),
  /// placing chain elements before list elements of equal priority.
  /// Returns the merged head.
  static LifoNode* merge_sorted(LifoNode* list, LifoNode* chain);

  std::unique_ptr<CachePadded<AtomicLifo>[]> local_;
  StealOrder steal_order_;
  StealCounters steals_;
  IngressShards ingress_;  // external submissions (MPSC, any thread)
};

}  // namespace ttg
