#include "sched/llp.hpp"

namespace ttg {

LlpScheduler::LlpScheduler(int num_workers, int steal_domain_size)
    : Scheduler(num_workers),
      local_(std::make_unique<CachePadded<AtomicLifo>[]>(
          static_cast<std::size_t>(num_workers))),
      steal_order_(num_workers, steal_domain_size),
      steals_(num_workers),
      ingress_(num_workers, steal_domain_size) {}

LifoNode* LlpScheduler::merge_sorted(LifoNode* list, LifoNode* chain) {
  LifoNode head_sentinel;
  LifoNode* tail = &head_sentinel;
  // Chain elements win ties: they are newer and their data is hotter.
  while (list != nullptr && chain != nullptr) {
    if (chain->priority >= list->priority) {
      tail->next = chain;
      chain = chain->next;
    } else {
      tail->next = list;
      list = list->next;
    }
    tail = tail->next;
  }
  tail->next = (list != nullptr) ? list : chain;
  return head_sentinel.next;
}

void LlpScheduler::push(int worker, LifoNode* task) {
  if (worker == kExternalWorker) {
    ingress_.push(task);
    return;
  }
  AtomicLifo& lifo = local_[worker].value;
  std::int32_t head_prio;
  if (!lifo.head_priority(head_prio) || task->priority >= head_prio) {
    // Fast path: one CAS on the head pointer.
    lifo.push(task);
    return;
  }
  // Slow path: detach (stealers observe an empty LIFO), insert into the
  // private list, reattach with a release store.
  LifoNode* list = lifo.detach();
  task->next = nullptr;
  lifo.attach(merge_sorted(list, task));
}

void LlpScheduler::push_chain(int worker, LifoNode* first) {
  if (first == nullptr) return;
  if (worker == kExternalWorker) {
    LifoNode* last = first;
    while (last->next != nullptr) last = last->next;
    ingress_.push_chain(first, last);
    return;
  }
  AtomicLifo& lifo = local_[worker].value;
  std::int32_t head_prio;
  if (!lifo.head_priority(head_prio)) {
    // LIFO appears empty: a detach+attach merge is just an attach of the
    // already-sorted chain, but stealers may race a pop, so go through
    // the regular chain push.
    LifoNode* last = first;
    while (last->next != nullptr) last = last->next;
    lifo.push_chain(first, last);
    return;
  }
  LifoNode* list = lifo.detach();
  lifo.attach(merge_sorted(list, first));
}

LifoNode* LlpScheduler::pop(int worker) {
  if (worker == kExternalWorker) return ingress_.pop_any();
  if (LifoNode* t = local_[worker]->pop(); t != nullptr) return t;
  // Own-domain ingress before stealing (not a steal attempt).
  if (LifoNode* t = ingress_.pop_own(worker); t != nullptr) {
    steals_.on_ingress(worker);
    return t;
  }
  steals_.on_attempt(worker);
  for (int victim : steal_order_.victims(worker)) {
    std::size_t n = 0;
    if (LifoNode* t = local_[victim]->pop_half(kStealBatchCap, &n);
        t != nullptr) {
      steals_.on_batch(worker, victim, n);
      if (LifoNode* rest = t->next.load(std::memory_order_relaxed);
          rest != nullptr) {
        // The stolen prefix of an LLP queue is sorted by descending
        // priority (queue invariant), so merging it into our own —
        // provably empty, owner-only — queue keeps the invariant. The
        // detach/merge/attach degenerates to a plain attach here but
        // stays correct should the emptiness argument ever weaken.
        t->next.store(nullptr, std::memory_order_relaxed);
        AtomicLifo& mine = local_[worker].value;
        LifoNode* current = mine.detach();
        mine.attach(merge_sorted(current, rest));
      }
      return t;
    }
  }
  // Failed sweep: drain the remaining ingress shards ring-wise.
  if (LifoNode* t = ingress_.pop_other(worker); t != nullptr) {
    steals_.on_ingress(worker);
    return t;
  }
  return nullptr;
}

}  // namespace ttg
