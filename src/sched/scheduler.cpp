#include "sched/scheduler.hpp"

#include <algorithm>

#include "sched/gd_ap.hpp"
#include "sched/lfq.hpp"
#include "sched/ll.hpp"
#include "sched/llp.hpp"

namespace ttg {

StealOrder::StealOrder(int num_workers, int domain_size) {
  orders_.resize(static_cast<std::size_t>(num_workers));
  const int d = domain_size > 1 ? domain_size : num_workers;
  for (int w = 0; w < num_workers; ++w) {
    auto& order = orders_[static_cast<std::size_t>(w)];
    const int dom_begin = (w / d) * d;
    const int dom_end = std::min(dom_begin + d, num_workers);
    // Domain siblings first, ring-wise within the domain...
    for (int i = 1; i < dom_end - dom_begin; ++i) {
      order.push_back(dom_begin + (w - dom_begin + i) % (dom_end - dom_begin));
    }
    // ... then everyone else, ring-wise from the next domain.
    for (int i = 1; i < num_workers; ++i) {
      const int v = (w + i) % num_workers;
      if (v < dom_begin || v >= dom_end) order.push_back(v);
    }
  }
}

std::string_view to_string(SchedulerType t) {
  switch (t) {
    case SchedulerType::kLFQ: return "LFQ";
    case SchedulerType::kLL: return "LL";
    case SchedulerType::kLLP: return "LLP";
    case SchedulerType::kGD: return "GD";
    case SchedulerType::kAP: return "AP";
  }
  return "?";
}

void Scheduler::push_chain(int worker, LifoNode* first) {
  while (first != nullptr) {
    LifoNode* next = first->next;
    first->next = nullptr;
    push(worker, first);
    first = next;
  }
}

std::unique_ptr<Scheduler> make_scheduler(SchedulerType type,
                                          int num_workers,
                                          int steal_domain_size) {
  switch (type) {
    case SchedulerType::kLFQ:
      return std::make_unique<LfqScheduler>(num_workers, steal_domain_size);
    case SchedulerType::kLL:
      return std::make_unique<LlScheduler>(num_workers, steal_domain_size);
    case SchedulerType::kLLP:
      return std::make_unique<LlpScheduler>(num_workers, steal_domain_size);
    case SchedulerType::kGD:
      return std::make_unique<GdScheduler>(num_workers);
    case SchedulerType::kAP:
      return std::make_unique<ApScheduler>(num_workers);
  }
  return nullptr;
}

}  // namespace ttg
