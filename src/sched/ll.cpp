#include "sched/ll.hpp"

namespace ttg {

LlScheduler::LlScheduler(int num_workers, int steal_domain_size)
    : Scheduler(num_workers),
      local_(std::make_unique<CachePadded<AtomicLifo>[]>(
          static_cast<std::size_t>(num_workers))),
      steal_order_(num_workers, steal_domain_size),
      steals_(num_workers) {}

void LlScheduler::push(int worker, LifoNode* task) {
  if (worker == kExternalWorker) {
    ingress_.push(task);
    return;
  }
  // A plain LIFO cannot honor priorities (Sec. III-B): tasks are pushed
  // to and popped from the head regardless of task->priority.
  local_[worker]->push(task);
}

LifoNode* LlScheduler::pop(int worker) {
  if (worker != kExternalWorker) {
    if (LifoNode* t = local_[worker]->pop(); t != nullptr) return t;
    steals_.on_attempt(worker);
    for (int victim : steal_order_.victims(worker)) {
      if (LifoNode* t = local_[victim]->pop(); t != nullptr) {
        steals_.on_success(worker, victim);
        return t;
      }
    }
  }
  return ingress_.pop();
}

}  // namespace ttg
