#include "sched/ll.hpp"

namespace ttg {

LlScheduler::LlScheduler(int num_workers, int steal_domain_size)
    : Scheduler(num_workers),
      local_(std::make_unique<CachePadded<AtomicLifo>[]>(
          static_cast<std::size_t>(num_workers))),
      steal_order_(num_workers, steal_domain_size),
      steals_(num_workers),
      ingress_(num_workers, steal_domain_size) {}

void LlScheduler::push(int worker, LifoNode* task) {
  if (worker == kExternalWorker) {
    ingress_.push(task);
    return;
  }
  // A plain LIFO cannot honor priorities (Sec. III-B): tasks are pushed
  // to and popped from the head regardless of task->priority.
  local_[worker]->push(task);
}

LifoNode* LlScheduler::pop(int worker) {
  if (worker == kExternalWorker) return ingress_.pop_any();
  if (LifoNode* t = local_[worker]->pop(); t != nullptr) return t;
  // Own-domain ingress before stealing: external work routed to this
  // domain is warmer than a victim's cacheline — and finding it here is
  // not a steal attempt (see StealStats).
  if (LifoNode* t = ingress_.pop_own(worker); t != nullptr) {
    steals_.on_ingress(worker);
    return t;
  }
  steals_.on_attempt(worker);
  for (int victim : steal_order_.victims(worker)) {
    std::size_t n = 0;
    if (LifoNode* t = local_[victim]->pop_half(kStealBatchCap, &n);
        t != nullptr) {
      steals_.on_batch(worker, victim, n);
      if (LifoNode* rest = t->next.load(std::memory_order_relaxed);
          rest != nullptr) {
        // Install the batch remainder in our own queue. It is provably
        // empty (our pop just failed and only the owner pushes), so the
        // owner-only single-store attach suffices — no CAS loop.
        t->next.store(nullptr, std::memory_order_relaxed);
        local_[worker]->attach(rest);
      }
      return t;
    }
  }
  // Failed sweep: drain the remaining ingress shards ring-wise.
  if (LifoNode* t = ingress_.pop_other(worker); t != nullptr) {
    steals_.on_ingress(worker);
    return t;
  }
  return nullptr;
}

}  // namespace ttg
