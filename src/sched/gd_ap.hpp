// Two more of PaRSEC's stock schedulers, for comparison with LFQ/LL/LLP:
//
//  * GD — "global dequeue": one shared FIFO behind one lock. The
//    simplest possible scheduler; every operation contends on the
//    global lock, making it the worst case the paper's analysis warns
//    about.
//  * AP — "absolute priority": one shared binary heap behind one lock.
//    Priorities are strict and global — the property LFQ/LLP trade away
//    for locality — at the price of a fully serialized scheduler.
#pragma once

#include <mutex>
#include <vector>

#include "structures/fifo.hpp"
#include "sched/scheduler.hpp"

namespace ttg {

class GdScheduler final : public Scheduler {
 public:
  explicit GdScheduler(int num_workers) : Scheduler(num_workers) {}

  void push(int /*worker*/, LifoNode* task) override {
    global_.push(task);
  }

  LifoNode* pop(int /*worker*/) override { return global_.pop(); }

  SchedulerType type() const override { return SchedulerType::kGD; }

 private:
  LockedFifo global_;
};

class ApScheduler final : public Scheduler {
 public:
  explicit ApScheduler(int num_workers) : Scheduler(num_workers) {}

  void push(int /*worker*/, LifoNode* task) override {
    std::lock_guard<std::mutex> guard(mutex_);
    heap_.push_back(task);
    sift_up(heap_.size() - 1);
  }

  LifoNode* pop(int /*worker*/) override {
    std::lock_guard<std::mutex> guard(mutex_);
    if (heap_.empty()) return nullptr;
    LifoNode* top = heap_.front();
    heap_.front() = heap_.back();
    heap_.pop_back();
    if (!heap_.empty()) sift_down(0);
    return top;
  }

  SchedulerType type() const override { return SchedulerType::kAP; }

 private:
  // Max-heap on priority; FIFO tie-breaking is not guaranteed (matches
  // PaRSEC's ap scheduler, which only orders by priority).
  void sift_up(std::size_t i) {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (heap_[parent]->priority >= heap_[i]->priority) break;
      std::swap(heap_[parent], heap_[i]);
      i = parent;
    }
  }
  void sift_down(std::size_t i) {
    const std::size_t n = heap_.size();
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && heap_[l]->priority > heap_[best]->priority) best = l;
      if (r < n && heap_[r]->priority > heap_[best]->priority) best = r;
      if (best == i) return;
      std::swap(heap_[i], heap_[best]);
      i = best;
    }
  }

  std::mutex mutex_;
  std::vector<LifoNode*> heap_;
};

}  // namespace ttg
