// LL: local LIFOs with stealing, no priority support (paper Sec. III-B),
// hardened with steal-half batching and sharded external ingress (see
// docs/scheduling.md).
#pragma once

#include <memory>

#include "common/cache.hpp"
#include "structures/lifo.hpp"
#include "sched/scheduler.hpp"

namespace ttg {

class LlScheduler final : public Scheduler {
 public:
  explicit LlScheduler(int num_workers, int steal_domain_size = 0);

  void push(int worker, LifoNode* task) override;
  LifoNode* pop(int worker) override;
  SchedulerType type() const override { return SchedulerType::kLL; }
  StealStats steal_stats() const override { return steals_.total(); }
  std::int64_t external_backlog() const override {
    const std::int64_t b = ingress_.backlog();
    return b > 0 ? b : 0;
  }

  /// Test hook: number of external-ingress shards.
  int ingress_shards() const { return ingress_.num_shards(); }

 private:
  std::unique_ptr<CachePadded<AtomicLifo>[]> local_;
  StealOrder steal_order_;
  StealCounters steals_;
  IngressShards ingress_;  // external submissions (MPSC, any thread)
};

}  // namespace ttg
