#include "sched/lfq.hpp"

namespace ttg {

LfqScheduler::LfqScheduler(int num_workers, int steal_domain_size)
    : Scheduler(num_workers),
      local_(std::make_unique<CachePadded<LocalBuffer>[]>(
          static_cast<std::size_t>(num_workers))),
      steal_order_(num_workers, steal_domain_size),
      steals_(num_workers) {}

void LfqScheduler::push(int worker, LifoNode* task) {
  if (worker == kExternalWorker) {
    global_.push(task);
    return;
  }
  // Keep the highest-priority tasks in the local bounded buffer; route
  // the displaced (or unplaceable) task to the global overflow FIFO.
  if (LifoNode* overflow = local_[worker]->push(task); overflow != nullptr) {
    global_.push(overflow);
  }
}

LifoNode* LfqScheduler::pop(int worker) {
  if (worker != kExternalWorker) {
    if (LifoNode* t = local_[worker]->pop_best(); t != nullptr) return t;
    // Steal from other workers' bounded buffers, domain siblings first
    // (the cache/NUMA hierarchy walk of Sec. III-B). Steals here are
    // single-task by design: a bounded buffer holds at most
    // kLocalCapacity tasks, so there is no run to halve.
    steals_.on_attempt(worker);
    for (int victim : steal_order_.victims(worker)) {
      if (LifoNode* t = local_[victim]->steal(); t != nullptr) {
        steals_.on_success(worker, victim);
        return t;
      }
    }
    // Last resort: the globally-locked overflow FIFO. Work found there
    // is an ingress hit, not a steal success — the attempt above still
    // counts as a (real) failed victim sweep.
    if (LifoNode* t = global_.pop(); t != nullptr) {
      steals_.on_ingress(worker);
      return t;
    }
    return nullptr;
  }
  return global_.pop();
}

}  // namespace ttg
