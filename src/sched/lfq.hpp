// LFQ: local flat queues — PaRSEC's default scheduler (paper Sec. III-B).
#pragma once

#include <memory>

#include "common/cache.hpp"
#include "structures/bounded_buffer.hpp"
#include "structures/fifo.hpp"
#include "sched/scheduler.hpp"

namespace ttg {

class LfqScheduler final : public Scheduler {
 public:
  static constexpr std::size_t kLocalCapacity = 8;

  explicit LfqScheduler(int num_workers, int steal_domain_size = 0);

  void push(int worker, LifoNode* task) override;
  LifoNode* pop(int worker) override;
  SchedulerType type() const override { return SchedulerType::kLFQ; }
  StealStats steal_stats() const override { return steals_.total(); }
  std::int64_t external_backlog() const override {
    return static_cast<std::int64_t>(global_.approx_size());
  }

  /// Test hook: number of tasks currently parked in the overflow FIFO.
  std::uint64_t overflow_size() const { return global_.approx_size(); }

 private:
  using LocalBuffer = BoundedPriorityBuffer<kLocalCapacity>;

  std::unique_ptr<CachePadded<LocalBuffer>[]> local_;
  StealOrder steal_order_;
  StealCounters steals_;
  LockedFifo global_;
};

}  // namespace ttg
