// Concurrent key-value map built on the scalable hash table.
//
// Thin typed wrapper used where the runtime or an application needs a
// thread-safe associative store with the same locking discipline as the
// TTG task tables (bucket locks + BRAVO reader lock) — e.g. the MRA
// mini-app's per-box difference-coefficient store.
#pragma once

#include <cassert>
#include <optional>
#include <utility>

#include "structures/hash_table.hpp"
#include "ttg/keys.hpp"

namespace ttg {

template <typename Key, typename T, typename Hash = KeyHash<Key>>
class ConcurrentMap {
 public:
  explicit ConcurrentMap(int initial_log2_buckets = 6)
      : table_(initial_log2_buckets) {}

  ConcurrentMap(const ConcurrentMap&) = delete;
  ConcurrentMap& operator=(const ConcurrentMap&) = delete;

  ~ConcurrentMap() {
    table_.for_each_exclusive([](HashItemBase* item) {
      delete static_cast<Item*>(item);
    });
  }

  /// Inserts (key -> value); returns false if the key was present.
  template <typename U>
  bool insert(const Key& key, U&& value) {
    const std::uint64_t h = Hash{}(key);
    auto acc = table_.lock_key(h);
    if (acc.find(key_eq(key)) != nullptr) return false;
    auto* item = new Item(key, std::forward<U>(value));
    item->hash = h;
    acc.insert(item);
    return true;
  }

  /// Removes the key and returns its value, if present.
  std::optional<T> take(const Key& key) {
    const std::uint64_t h = Hash{}(key);
    auto acc = table_.lock_key(h);
    HashItemBase* found = acc.remove(key_eq(key));
    acc.release();
    if (found == nullptr) return std::nullopt;
    auto* item = static_cast<Item*>(found);
    std::optional<T> out(std::move(item->value));
    delete item;
    return out;
  }

  /// Calls `f(T&)` on the value under the bucket lock; returns whether
  /// the key was present.
  template <typename F>
  bool with(const Key& key, F&& f) {
    const std::uint64_t h = Hash{}(key);
    auto acc = table_.lock_key(h);
    if (HashItemBase* found = acc.find(key_eq(key)); found != nullptr) {
      f(static_cast<Item*>(found)->value);
      return true;
    }
    return false;
  }

  bool contains(const Key& key) {
    return with(key, [](const T&) {});
  }

  std::size_t size() { return table_.size(); }

  /// Visits every (key, value) pair under the writer lock. Not for hot
  /// paths; the callback must not mutate the map.
  template <typename F>
  void for_each_exclusive(F&& f) {
    table_.for_each_exclusive([&f](HashItemBase* item) {
      auto* it = static_cast<Item*>(item);
      f(static_cast<const Key&>(it->key), it->value);
    });
  }

 private:
  struct Item : HashItemBase {
    Key key;
    T value;
    template <typename U>
    Item(const Key& k, U&& v) : key(k), value(std::forward<U>(v)) {}
  };

  static auto key_eq(const Key& key) {
    return [&key](const HashItemBase* item) {
      return static_cast<const Item*>(item)->key == key;
    };
  }

  ScalableHashTable table_;
};

}  // namespace ttg
