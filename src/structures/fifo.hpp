// Lock-protected intrusive FIFO.
//
// This is the *global overflow queue* of the LFQ scheduler (Sec. III-B):
// "a global FIFO shared between all threads serves as overflow queue ...
// [it] may quickly become a bottleneck due to the global lock used to
// ensure consistency." We reproduce it faithfully, global lock included,
// because demonstrating that bottleneck is half of Fig. 6.
#pragma once

#include <atomic>
#include <cstdint>

#include "structures/lifo.hpp"
#include "sync/bucket_lock.hpp"

namespace ttg {

class LockedFifo {
 public:
  explicit LockedFifo(AtomicOpCategory cat = AtomicOpCategory::kScheduler)
      : category_(cat) {}
  LockedFifo(const LockedFifo&) = delete;
  LockedFifo& operator=(const LockedFifo&) = delete;

  /// Racy emptiness probe; lets idle threads skip the global lock.
  bool empty() const noexcept {
    return size_.load(std::memory_order_relaxed) == 0;
  }

  void push(LifoNode* node) noexcept {
    node->next = nullptr;
    lock_.lock(category_);
    if (tail_ == nullptr) {
      head_ = tail_ = node;
    } else {
      tail_->next = node;
      tail_ = node;
    }
    size_.fetch_add(1, std::memory_order_relaxed);
    lock_.unlock();
  }

  LifoNode* pop() noexcept {
    if (empty()) return nullptr;
    lock_.lock(category_);
    LifoNode* node = head_;
    if (node != nullptr) {
      head_ = node->next;
      if (head_ == nullptr) tail_ = nullptr;
      node->next = nullptr;
      size_.fetch_sub(1, std::memory_order_relaxed);
    }
    lock_.unlock();
    return node;
  }

  std::uint64_t approx_size() const noexcept {
    return size_.load(std::memory_order_relaxed);
  }

 private:
  BucketLock lock_;
  LifoNode* head_ = nullptr;  // guarded by lock_
  LifoNode* tail_ = nullptr;  // guarded by lock_
  std::atomic<std::uint64_t> size_{0};
  const AtomicOpCategory category_;
};

}  // namespace ttg
