// Per-thread free-list memory pool (paper Sec. IV-E).
//
// "To manage these [task] objects, TTG employs a free-list that contains
// a per-thread memory pool. Allocated elements are returned to the
// thread's memory pool from which they were allocated, to avoid
// imbalances between allocating and deallocating threads. Thus, the
// creation and destruction of a task involves two atomic operations."
//
// Each thread owns an AtomicLifo free list. Allocation pops from the
// calling thread's own list (one atomic); deallocation pushes onto the
// *owning* thread's list (one atomic), where the owner is recorded in a
// header in front of each object. When a thread's list is empty it carves
// objects out of a thread-private bump chunk without any atomics beyond
// the underlying malloc. Chunk memory is only released when the pool is
// destroyed, which also satisfies the AtomicLifo node-lifetime rule.
//
// Mode::kPrivateCache (used by the data-copy pools, runtime/copy_pool)
// additionally fronts each thread's list with a plain owner-only stack:
// same-thread alloc/free pairs — the dominant copy lifecycle — cost zero
// atomics, while cross-thread frees still land in the AtomicLifo inbox.
// Task pools stay in Mode::kAtomic so the Eq. (1) "two atomic operations
// per task" pool accounting remains measurable.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "common/cache.hpp"
#include "common/thread_id.hpp"
#include "structures/lifo.hpp"

namespace ttg {

class MemoryPool {
 public:
  /// Selects how a thread's own free list is managed.
  enum class Mode {
    /// Every pop/push is an AtomicLifo operation — exactly the paper's
    /// "two atomic operations" per object lifetime (Eq. 1 N_OD). Task
    /// pools use this so the atomic-op model stays measurable.
    kAtomic,
    /// Owner-local frees land on a plain (non-atomic) private list and
    /// local allocations pop it first; the AtomicLifo only serves as the
    /// remote-free inbox, drained in one detach() when the private list
    /// runs dry. Same-thread alloc/free pairs cost zero atomics.
    kPrivateCache,
  };

  /// Creates a pool of fixed-size objects. `object_size` is rounded up so
  /// an object can always be overlaid with a LifoNode while free.
  explicit MemoryPool(std::size_t object_size,
                      std::size_t objects_per_chunk = 64,
                      Mode mode = Mode::kAtomic)
      : object_size_(round_up(std::max(object_size, sizeof(LifoNode)),
                              alignof(std::max_align_t))),
        header_size_(round_up(sizeof(Header), alignof(std::max_align_t))),
        slot_size_(object_size_ + header_size_),
        objects_per_chunk_(objects_per_chunk),
        private_cache_(mode == Mode::kPrivateCache) {}

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  ~MemoryPool() {
    for (void* chunk : chunks_) std::free(chunk);
  }

  /// Allocates one object (uninitialized storage).
  void* allocate() {
    bool hit;
    return allocate(hit);
  }

  /// Allocates one object and reports whether it was recycled from the
  /// free list (`hit` = true) or carved fresh from a bump chunk (a pool
  /// *miss*, implying allocator traffic when the chunk is exhausted).
  void* allocate(bool& hit) {
    ThreadState& ts = threads_[this_thread::id()].value;
    if (private_cache_) {
      // Owner-only list: no atomics for the same-thread recycle case.
      if (LifoNode* node = ts.private_head) {
        ts.private_head = node->next.load(std::memory_order_relaxed);
        node->next.store(nullptr, std::memory_order_relaxed);
        ++ts.hits;
        hit = true;
        return node;
      }
      // Private list dry: drain the remote-free inbox in one exchange.
      if (LifoNode* node = ts.freelist.detach()) {
        ts.private_head = node->next.load(std::memory_order_relaxed);
        node->next.store(nullptr, std::memory_order_relaxed);
        ++ts.hits;
        hit = true;
        return node;
      }
    } else if (LifoNode* node = ts.freelist.pop()) {
      // 1 atomic: pop from our own free list (remote frees land here too).
      ++ts.hits;
      hit = true;
      return node;
    }
    ++ts.misses;
    hit = false;
    // Bump-allocate from the thread-private chunk.
    if (ts.bump_remaining == 0) {
      refill(ts);
    }
    std::byte* slot = ts.bump;
    ts.bump += slot_size_;
    --ts.bump_remaining;
    auto* header = reinterpret_cast<Header*>(slot);
    header->owner = static_cast<std::uint32_t>(this_thread::id());
    return slot + header_size_;
  }

  /// Returns an object to the pool of the thread that allocated it.
  void deallocate(void* obj) noexcept {
    auto* header = reinterpret_cast<Header*>(static_cast<std::byte*>(obj) -
                                             header_size_);
    auto* node = new (obj) LifoNode{};
    if (private_cache_ &&
        header->owner == static_cast<std::uint32_t>(this_thread::id())) {
      ThreadState& ts = threads_[header->owner].value;
      node->next.store(ts.private_head, std::memory_order_relaxed);
      ts.private_head = node;
      return;
    }
    ThreadState& owner = threads_[header->owner].value;
    // 1 atomic: push onto the owner's free list / remote inbox.
    owner.freelist.push(node);
  }

  std::size_t object_size() const noexcept { return object_size_; }

  /// Free-list hit/miss totals summed over all threads (Sec. IV-E
  /// allocator accounting: a miss is a fresh bump-chunk carve, i.e. the
  /// path that eventually pays the system allocator's atomics).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };
  Stats stats() const noexcept {
    Stats s;
    for (int t = 0; t < this_thread::id_count(); ++t) {
      s.hits += threads_[t]->hits;
      s.misses += threads_[t]->misses;
    }
    return s;
  }

 private:
  struct Header {
    std::uint32_t owner;
  };

  struct alignas(kCacheLineSize) ThreadState {
    ThreadState() : freelist(AtomicOpCategory::kMemPool) {}
    AtomicLifo freelist;
    /// Owner-only free list (Mode::kPrivateCache): plain loads/stores,
    /// never touched by other threads.
    LifoNode* private_head = nullptr;
    std::byte* bump = nullptr;
    std::size_t bump_remaining = 0;
    // Non-atomic: only the owning thread writes; stats() readers accept
    // approximate sums while threads are running.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
  };

  static std::size_t round_up(std::size_t v, std::size_t a) noexcept {
    return (v + a - 1) / a * a;
  }

  void refill(ThreadState& ts) {
    const std::size_t bytes = slot_size_ * objects_per_chunk_;
    void* chunk = std::malloc(bytes);
    if (chunk == nullptr) throw std::bad_alloc();
    {
      std::lock_guard<std::mutex> guard(chunks_mutex_);
      chunks_.push_back(chunk);
    }
    ts.bump = static_cast<std::byte*>(chunk);
    ts.bump_remaining = objects_per_chunk_;
  }

  const std::size_t object_size_;
  const std::size_t header_size_;
  const std::size_t slot_size_;
  const std::size_t objects_per_chunk_;
  const bool private_cache_;
  CachePadded<ThreadState> threads_[kMaxThreads];
  std::mutex chunks_mutex_;
  std::vector<void*> chunks_;
};

}  // namespace ttg
