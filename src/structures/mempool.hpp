// Per-thread free-list memory pool (paper Sec. IV-E).
//
// "To manage these [task] objects, TTG employs a free-list that contains
// a per-thread memory pool. Allocated elements are returned to the
// thread's memory pool from which they were allocated, to avoid
// imbalances between allocating and deallocating threads. Thus, the
// creation and destruction of a task involves two atomic operations."
//
// Each thread owns an AtomicLifo free list. Allocation pops from the
// calling thread's own list (one atomic); deallocation pushes onto the
// *owning* thread's list (one atomic), where the owner is recorded in a
// header in front of each object. When a thread's list is empty it carves
// objects out of a thread-private bump chunk without any atomics beyond
// the underlying malloc. Chunk memory is only released when the pool is
// destroyed, which also satisfies the AtomicLifo node-lifetime rule.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "common/cache.hpp"
#include "common/thread_id.hpp"
#include "structures/lifo.hpp"

namespace ttg {

class MemoryPool {
 public:
  /// Creates a pool of fixed-size objects. `object_size` is rounded up so
  /// an object can always be overlaid with a LifoNode while free.
  explicit MemoryPool(std::size_t object_size,
                      std::size_t objects_per_chunk = 64)
      : object_size_(round_up(std::max(object_size, sizeof(LifoNode)),
                              alignof(std::max_align_t))),
        header_size_(round_up(sizeof(Header), alignof(std::max_align_t))),
        slot_size_(object_size_ + header_size_),
        objects_per_chunk_(objects_per_chunk) {}

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  ~MemoryPool() {
    for (void* chunk : chunks_) std::free(chunk);
  }

  /// Allocates one object (uninitialized storage).
  void* allocate() {
    ThreadState& ts = threads_[this_thread::id()].value;
    // 1 atomic: pop from our own free list (remote frees land here too).
    if (LifoNode* node = ts.freelist.pop(); node != nullptr) {
      return node;
    }
    // Bump-allocate from the thread-private chunk.
    if (ts.bump_remaining == 0) {
      refill(ts);
    }
    std::byte* slot = ts.bump;
    ts.bump += slot_size_;
    --ts.bump_remaining;
    auto* header = reinterpret_cast<Header*>(slot);
    header->owner = static_cast<std::uint32_t>(this_thread::id());
    return slot + header_size_;
  }

  /// Returns an object to the pool of the thread that allocated it.
  void deallocate(void* obj) noexcept {
    auto* header = reinterpret_cast<Header*>(static_cast<std::byte*>(obj) -
                                             header_size_);
    ThreadState& owner = threads_[header->owner].value;
    // 1 atomic: push onto the owner's free list (MPSC-safe).
    owner.freelist.push(new (obj) LifoNode{});
  }

  std::size_t object_size() const noexcept { return object_size_; }

 private:
  struct Header {
    std::uint32_t owner;
  };

  struct alignas(kCacheLineSize) ThreadState {
    ThreadState() : freelist(AtomicOpCategory::kMemPool) {}
    AtomicLifo freelist;
    std::byte* bump = nullptr;
    std::size_t bump_remaining = 0;
  };

  static std::size_t round_up(std::size_t v, std::size_t a) noexcept {
    return (v + a - 1) / a * a;
  }

  void refill(ThreadState& ts) {
    const std::size_t bytes = slot_size_ * objects_per_chunk_;
    void* chunk = std::malloc(bytes);
    if (chunk == nullptr) throw std::bad_alloc();
    {
      std::lock_guard<std::mutex> guard(chunks_mutex_);
      chunks_.push_back(chunk);
    }
    ts.bump = static_cast<std::byte*>(chunk);
    ts.bump_remaining = objects_per_chunk_;
  }

  const std::size_t object_size_;
  const std::size_t header_size_;
  const std::size_t slot_size_;
  const std::size_t objects_per_chunk_;
  CachePadded<ThreadState> threads_[kMaxThreads];
  std::mutex chunks_mutex_;
  std::vector<void*> chunks_;
};

}  // namespace ttg
