// Per-thread free-list memory pool (paper Sec. IV-E).
//
// "To manage these [task] objects, TTG employs a free-list that contains
// a per-thread memory pool. Allocated elements are returned to the
// thread's memory pool from which they were allocated, to avoid
// imbalances between allocating and deallocating threads. Thus, the
// creation and destruction of a task involves two atomic operations."
//
// Each thread owns an AtomicLifo free list. Allocation pops from the
// calling thread's own list (one atomic); deallocation pushes onto the
// *owning* thread's list (one atomic), where the owner is recorded in a
// header in front of each object. When a thread's list is empty it carves
// objects out of a thread-private bump chunk without any atomics beyond
// the underlying malloc. Chunk memory is only released when the pool is
// destroyed, which also satisfies the AtomicLifo node-lifetime rule.
//
// Mode::kPrivateCache (used by the data-copy pools, runtime/copy_pool)
// additionally fronts each thread's list with a plain owner-only stack:
// same-thread alloc/free pairs — the dominant copy lifecycle — cost zero
// atomics, while cross-thread frees still land in the AtomicLifo inbox.
// Task pools stay in Mode::kAtomic so the Eq. (1) "two atomic operations
// per task" pool accounting remains measurable.
//
// NUMA return path (docs/scheduling.md "Topology-aware memory"): when
// the freeing thread's memory domain differs from the slot's carving
// domain, the free does NOT CAS the remote owner's freelist cacheline.
// It lands in a plain per-thread *outbox* for that domain (zero atomics)
// and the whole batch is flushed home with a single push_chain onto the
// owning domain's shared inbox once the outbox reaches
// kRemoteFlushThreshold (or when the runtime flushes at an idle/epoch
// boundary). Allocating threads drain their own domain's inbox only
// after their local lists run dry, guarded by a plain empty() load — so
// on single-domain machines (and in the single-threaded Eq. (1) census)
// the path adds no atomic RMW at all.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <new>
#include <vector>

#include "common/cache.hpp"
#include "common/thread_id.hpp"
#include "common/topology.hpp"
#include "runtime/trace.hpp"
#include "structures/lifo.hpp"

namespace ttg {

class MemoryPool {
 public:
  /// Selects how a thread's own free list is managed.
  enum class Mode {
    /// Every pop/push is an AtomicLifo operation — exactly the paper's
    /// "two atomic operations" per object lifetime (Eq. 1 N_OD). Task
    /// pools use this so the atomic-op model stays measurable.
    kAtomic,
    /// Owner-local frees land on a plain (non-atomic) private list and
    /// local allocations pop it first; the AtomicLifo only serves as the
    /// remote-free inbox, drained in one detach() when the private list
    /// runs dry. Same-thread alloc/free pairs cost zero atomics.
    kPrivateCache,
  };

  /// Creates a pool of fixed-size objects. `object_size` is rounded up so
  /// an object can always be overlaid with a LifoNode while free.
  explicit MemoryPool(std::size_t object_size,
                      std::size_t objects_per_chunk = 64,
                      Mode mode = Mode::kAtomic)
      : object_size_(round_up(std::max(object_size, sizeof(LifoNode)),
                              alignof(std::max_align_t))),
        header_size_(round_up(sizeof(Header), alignof(std::max_align_t))),
        slot_size_(object_size_ + header_size_),
        objects_per_chunk_(objects_per_chunk),
        private_cache_(mode == Mode::kPrivateCache) {}

  MemoryPool(const MemoryPool&) = delete;
  MemoryPool& operator=(const MemoryPool&) = delete;

  ~MemoryPool() {
    for (void* chunk : chunks_) std::free(chunk);
  }

  /// Outbox size at which a batch of cross-domain frees is flushed home
  /// in one push_chain (the count half of the count/epoch threshold; the
  /// epoch half is flush_remote_frees() at idle/epoch boundaries).
  static constexpr std::uint32_t kRemoteFlushThreshold = 32;

  /// Process-wide switch for the NUMA return path (Config::numa_pools).
  /// Off, every cross-thread free pushes straight onto the owner's
  /// freelist — the pre-topology behavior.
  static void set_numa_enabled(bool on) noexcept {
    numa_enabled_.store(on, std::memory_order_relaxed);
  }
  static bool numa_enabled() noexcept {
    return numa_enabled_.load(std::memory_order_relaxed);
  }

  /// Allocates one object (uninitialized storage).
  void* allocate() {
    bool hit;
    return allocate(hit);
  }

  /// Allocates one object and reports whether it was recycled from the
  /// free list (`hit` = true) or carved fresh from a bump chunk (a pool
  /// *miss*, implying allocator traffic when the chunk is exhausted).
  void* allocate(bool& hit) {
    ThreadState& ts = threads_[this_thread::id()].value;
    if (private_cache_) {
      // Owner-only list: no atomics for the same-thread recycle case.
      if (LifoNode* node = ts.private_head) {
        ts.private_head = node->next.load(std::memory_order_relaxed);
        node->next.store(nullptr, std::memory_order_relaxed);
        ++ts.hits;
        hit = true;
        return node;
      }
      // Private list dry: drain the remote-free inbox in one exchange.
      if (LifoNode* node = ts.freelist.detach()) {
        ts.private_head = node->next.load(std::memory_order_relaxed);
        node->next.store(nullptr, std::memory_order_relaxed);
        ++ts.hits;
        hit = true;
        return node;
      }
    } else if (LifoNode* node = ts.freelist.pop()) {
      // 1 atomic: pop from our own free list (remote frees land here too).
      ++ts.hits;
      hit = true;
      return node;
    }
    // Local lists dry: drain this thread's *domain* inbox — cross-domain
    // frees batched home by remote threads. The guard is a plain load,
    // so the common empty-inbox case adds no atomic op to the census.
    if (LifoNode* node = inbox_pop(ts)) {
      ++ts.hits;
      hit = true;
      return node;
    }
    ++ts.misses;
    hit = false;
    // Bump-allocate from the thread-private chunk.
    if (ts.bump_remaining == 0) {
      refill(ts);
    }
    std::byte* slot = ts.bump;
    ts.bump += slot_size_;
    --ts.bump_remaining;
    auto* header = reinterpret_cast<Header*>(slot);
    header->owner = static_cast<std::uint32_t>(this_thread::id());
    header->domain = static_cast<std::uint32_t>(this_thread::domain());
    return slot + header_size_;
  }

  /// Returns an object to the pool of the thread that allocated it (or,
  /// cross-domain, to the carving domain's inbox via the batching
  /// outbox).
  void deallocate(void* obj) noexcept {
    auto* header = reinterpret_cast<Header*>(static_cast<std::byte*>(obj) -
                                             header_size_);
    auto* node = new (obj) LifoNode{};
    const auto self = static_cast<std::uint32_t>(this_thread::id());
    if (private_cache_ && header->owner == self) {
      ThreadState& ts = threads_[header->owner].value;
      node->next.store(ts.private_head, std::memory_order_relaxed);
      ts.private_head = node;
      return;
    }
    if (header->owner != self && numa_enabled() &&
        header->domain !=
            static_cast<std::uint32_t>(this_thread::domain())) {
      // Cross-domain free: plain push into the local outbox, no CAS on
      // the remote owner's cacheline; flushed home in one batch.
      remote_free(header->domain, node);
      return;
    }
    ThreadState& owner = threads_[header->owner].value;
    // 1 atomic: push onto the owner's free list / remote inbox.
    owner.freelist.push(node);
  }

  /// Flushes the calling thread's remote-free outboxes (every domain),
  /// regardless of fill level — the epoch half of the count/epoch flush
  /// threshold. Cheap no-op for threads that never freed cross-domain.
  void flush_remote_frees() noexcept {
    ThreadState& ts = threads_[this_thread::id()].value;
    if (ts.outboxes == nullptr) return;
    for (int d = 0; d < kMaxMemoryDomains; ++d) {
      flush_outbox(ts, ts.outboxes[d], d);
    }
  }

  std::size_t object_size() const noexcept { return object_size_; }

  /// Free-list hit/miss totals summed over all threads (Sec. IV-E
  /// allocator accounting: a miss is a fresh bump-chunk carve, i.e. the
  /// path that eventually pays the system allocator's atomics), plus the
  /// NUMA return path's traffic (ISSUE counters pool_remote_returns /
  /// remote_free_batches).
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t remote_returns = 0;  ///< cross-domain frees outboxed
    std::uint64_t remote_flush_batches = 0;  ///< outbox flushes pushed home
  };
  Stats stats() const noexcept {
    Stats s;
    for (int t = 0; t < this_thread::id_count(); ++t) {
      s.hits += threads_[t]->hits;
      s.misses += threads_[t]->misses;
      s.remote_returns += threads_[t]->remote_returns;
      s.remote_flush_batches += threads_[t]->remote_flushes;
    }
    return s;
  }

 private:
  struct Header {
    std::uint32_t owner;
    std::uint32_t domain;  ///< memory domain of the carving thread
  };

  /// Per-domain batch of not-yet-flushed cross-domain frees: a plain
  /// singly linked chain (head newest, tail oldest) only its owning
  /// thread touches.
  struct Outbox {
    LifoNode* head = nullptr;
    LifoNode* tail = nullptr;
    std::uint32_t count = 0;
  };

  struct alignas(kCacheLineSize) ThreadState {
    ThreadState() : freelist(AtomicOpCategory::kMemPool) {}
    AtomicLifo freelist;
    /// Owner-only free list (Mode::kPrivateCache): plain loads/stores,
    /// never touched by other threads.
    LifoNode* private_head = nullptr;
    std::byte* bump = nullptr;
    std::size_t bump_remaining = 0;
    /// Remote-free outboxes, one per domain; allocated on the first
    /// cross-domain free so threads that never free remotely pay one
    /// null pointer.
    std::unique_ptr<Outbox[]> outboxes;
    // Non-atomic: only the owning thread writes; stats() readers accept
    // approximate sums while threads are running.
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t remote_returns = 0;
    std::uint64_t remote_flushes = 0;
  };

  /// Shared inbox of one memory domain: remote outboxes flush whole
  /// chains here (one CAS per batch); domain-local allocators drain it
  /// when their own lists run dry.
  struct alignas(kCacheLineSize) DomainInbox {
    AtomicLifo lifo{AtomicOpCategory::kMemPool};
  };

  static std::size_t round_up(std::size_t v, std::size_t a) noexcept {
    return (v + a - 1) / a * a;
  }

  /// Drains the calling thread's domain inbox if it has anything. The
  /// empty check is a plain relaxed load, so the miss costs no RMW.
  LifoNode* inbox_pop(ThreadState& ts) {
    AtomicLifo& inbox =
        domain_inbox_[this_thread::domain() % kMaxMemoryDomains].lifo;
    if (inbox.empty()) return nullptr;
    if (private_cache_) {
      // Take the whole chain in one exchange and keep the rest private.
      if (LifoNode* node = inbox.detach()) {
        ts.private_head = node->next.load(std::memory_order_relaxed);
        node->next.store(nullptr, std::memory_order_relaxed);
        return node;
      }
      return nullptr;
    }
    return inbox.pop();
  }

  /// Appends a cross-domain free to the local outbox for `domain`
  /// (plain stores only) and flushes the batch home at the threshold.
  void remote_free(std::uint32_t domain, LifoNode* node) noexcept {
    ThreadState& ts = threads_[this_thread::id()].value;
    if (ts.outboxes == nullptr) {
      ts.outboxes = std::make_unique<Outbox[]>(kMaxMemoryDomains);
    }
    Outbox& ob = ts.outboxes[domain % kMaxMemoryDomains];
    node->next.store(ob.head, std::memory_order_relaxed);
    ob.head = node;
    if (ob.tail == nullptr) ob.tail = node;
    ++ob.count;
    ++ts.remote_returns;
    if (ob.count >= kRemoteFlushThreshold) {
      flush_outbox(ts, ob, static_cast<int>(domain % kMaxMemoryDomains));
    }
  }

  /// Pushes a whole outbox chain onto its domain's inbox: one CAS per
  /// batch instead of one per free.
  void flush_outbox(ThreadState& ts, Outbox& ob, int domain) noexcept {
    if (ob.head == nullptr) return;
    const std::uint32_t batch = ob.count;
    domain_inbox_[domain].lifo.push_chain(ob.head, ob.tail);
    ob.head = nullptr;
    ob.tail = nullptr;
    ob.count = 0;
    ++ts.remote_flushes;
    trace::record(trace::EventKind::kPoolRemoteReturn,
                  static_cast<std::uint64_t>(batch));
  }

  void refill(ThreadState& ts) {
    const std::size_t bytes = slot_size_ * objects_per_chunk_;
    void* chunk = std::malloc(bytes);
    if (chunk == nullptr) throw std::bad_alloc();
    {
      std::lock_guard<std::mutex> guard(chunks_mutex_);
      chunks_.push_back(chunk);
    }
    ts.bump = static_cast<std::byte*>(chunk);
    ts.bump_remaining = objects_per_chunk_;
  }

  const std::size_t object_size_;
  const std::size_t header_size_;
  const std::size_t slot_size_;
  const std::size_t objects_per_chunk_;
  const bool private_cache_;
  CachePadded<ThreadState> threads_[kMaxThreads];
  /// Sized at the compile-time domain cap (not the discovered count) so
  /// tests can simulate arbitrary placements via this_thread::set_domain
  /// without reconstructing pools; ~64 cachelines per pool.
  std::unique_ptr<DomainInbox[]> domain_inbox_ =
      std::make_unique<DomainInbox[]>(kMaxMemoryDomains);
  std::mutex chunks_mutex_;
  std::vector<void*> chunks_;
  inline static std::atomic<bool> numa_enabled_{true};
};

}  // namespace ttg
