// Plain atomic join counter for replayed (pre-compiled) task graphs.
//
// During a replay epoch a task slot's readiness is a single counter of
// outstanding deliveries — the whole-graph generalization of the
// single-input fast path (paper Sec. V-C): no bucket lock, no pending
// hash table, one fetch_sub per input. The high bit doubles as a
// cooperative-cancellation claim so World::abort() can retire unfired
// slots exactly once while deliveries race in from still-running
// producers.
//
// One arrival is one kInputCount atomic, mirroring the N_ID term of
// Eq. (1); the bucket-lock term disappears entirely on this path.
#pragma once

#include <atomic>
#include <cstdint>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "sim/hooks.hpp"

namespace ttg {

class JoinCounter {
 public:
  /// Claimed-by-cancellation flag; the low 31 bits count outstanding
  /// deliveries.
  static constexpr std::uint32_t kCancelBit = 1u << 31;

  struct Arrival {
    bool ready;      ///< final delivery of an unclaimed slot: run it
    bool cancelled;  ///< the slot was claimed by try_cancel()
    bool last;       ///< no deliveries outstanding (ready or cancelled)
  };

  /// Re-arms the counter for an epoch. Only legal while no deliveries
  /// are in flight (between epochs).
  void reset(std::uint32_t expected) noexcept {
    state_.store(expected, std::memory_order_relaxed);
  }

  std::uint32_t remaining() const noexcept {
    return state_.load(std::memory_order_relaxed) & ~kCancelBit;
  }

  bool cancel_requested() const noexcept {
    return (state_.load(std::memory_order_relaxed) & kCancelBit) != 0;
  }

  /// Records one delivery. acq_rel: the final arrival must observe every
  /// other deliverer's slot store before the task (or the input sweep of
  /// a cancelled slot) reads them.
  Arrival arrive() noexcept {
    TTG_SIM_POINT("join.arrive");
    atomic_ops::count(AtomicOpCategory::kInputCount);
#if defined(TTG_MUTANT_REPLAY_JOIN_NO_FENCE)
    // Mutant: the decrement is split into an unfenced load/store pair.
    // Two racing deliveries can both read the same count — either the
    // slot fires twice or it never fires.
    const std::uint32_t old = state_.load(std::memory_order_relaxed);
    TTG_SIM_POINT("join.arrive.split");
    state_.store(old - 1, std::memory_order_relaxed);
#else
    const std::uint32_t old = state_.fetch_sub(1, ord_acq_rel());
#endif
    Arrival a;
    a.cancelled = (old & kCancelBit) != 0;
    a.last = (old & ~kCancelBit) == 1;
    a.ready = a.last && !a.cancelled;
    return a;
  }

  /// Cooperative cancellation: sets the claim bit. Returns true iff this
  /// call claimed the slot — the bit was clear and the slot had not
  /// already fired (deliveries still outstanding). A claimed slot is
  /// retired by the canceller as a cancelled completion; its in-flight
  /// deliveries observe the bit and stand down.
  bool try_cancel() noexcept {
    TTG_SIM_POINT("join.cancel");
    const std::uint32_t old = state_.fetch_or(kCancelBit, ord_acq_rel());
    return (old & kCancelBit) == 0 && (old & ~kCancelBit) != 0;
  }

 private:
  std::atomic<std::uint32_t> state_{0};
};

/// DST hook marking the template-arena handoff: the moment a replay
/// epoch hands the pre-built record arena to the scheduler/workers by
/// re-arming every slot's join counter.
inline void replay_arena_handoff_point() noexcept {
  TTG_SIM_POINT("template.arena_handoff");
}

}  // namespace ttg
