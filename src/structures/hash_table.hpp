// Scalable chained hash table (paper Sec. III-C, Fig. 3).
//
// Each TTG template task stores its not-yet-eligible discovered tasks in
// one of these. The table grows by *chaining*: when a bucket of the main
// table exceeds a fill threshold, a new main table with twice the buckets
// is allocated and the previous main becomes the head of a list of "old"
// tables. New entries go to the new main table; lookups and removals
// traverse the chain, and an entry found in an old table is migrated into
// the main table to speed up the next search. Old tables drain over time
// (tasks stay in the table only while waiting for inputs) and are retired
// once empty, eventually leaving a single table again.
//
// Locking (Sec. III-C2 + IV-D): threads lock individual buckets with a
// one-word spinlock and hold a table-wide *reader* lock for the duration
// of the access; resizing and retiring old tables take the *writer* lock.
// The reader lock is a BRAVO-wrapped reader-writer lock, so in the fast
// path the only atomic RMW per access is the bucket lock itself.
//
// Delegated mode (PendingTableMode::kDelegated, "Advanced Synchronization
// Techniques for Task-based Runtime Systems"-style flat combining): a
// thread that finds the bucket lock busy does not spin. It CAS-pushes its
// operation onto the bucket's *publication list* and leaves; whichever
// thread holds the lock — the *combiner* — drains and applies queued
// operations through the table's delegate callback. The handoff protocol
// closes the lost-publication window with a pair of seq_cst fences:
//
//   publisher: push op → fence → try_lock        (retry-once)
//   combiner:  drain → unlock → fence → recheck pub_head → try_lock…
//
// In the total order over those fences, either the combiner's recheck
// observes the push (and it re-locks and drains), or the publisher's
// try_lock observes the unlocked word (and the publisher becomes the
// combiner of its own op). Either way some lock holder applies the op
// before the bucket goes quiescent. Corollaries the rest of the table
// relies on: a queued op always coexists with a reader-token-holding
// lock owner obligated to drain it, so publication lists are empty
// whenever the writer lock is held (grow / drain_exclusive / for_each
// assert this), and old tables never carry publications.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "common/cache.hpp"
#include "common/thread_id.hpp"
#include "sim/hooks.hpp"
#include "sync/bravo.hpp"
#include "sync/bucket_lock.hpp"
#include "sync/rwlock.hpp"

namespace ttg {

/// Intrusive base for anything stored in a ScalableHashTable.
struct HashItemBase {
  HashItemBase* next = nullptr;
  std::uint64_t hash = 0;
};

/// How ScalableHashTable serializes bucket access (Config::pending_table).
enum class PendingTableMode {
  /// Spin on the per-bucket lock (paper Sec. III-C2 baseline).
  kBucketLock,
  /// Busy bucket: publish the operation to the bucket's publication list
  /// and let the lock holder apply it (flat combining).
  kDelegated,
};

namespace detail {
/// Per-thread pending-table counters (no atomics on the hot path).
struct alignas(kCacheLineSize) PendingCells {
  std::uint64_t delegations = 0;  ///< ops handed to another thread
  std::uint64_t combined = 0;     ///< ops applied on behalf of others
};
inline PendingCells g_pending_cells[kMaxThreads];
}  // namespace detail

/// Process-wide delegation totals (trace::MetricsRegistry reads these as
/// "pending.delegations" / "pending.combined").
struct PendingTableStats {
  std::uint64_t delegations = 0;
  std::uint64_t combined = 0;
};
inline PendingTableStats pending_table_stats() {
  PendingTableStats s;
  for (int t = 0; t < this_thread::id_count(); ++t) {
    s.delegations += detail::g_pending_cells[t].delegations;
    s.combined += detail::g_pending_cells[t].combined;
  }
  return s;
}

class ScalableHashTable {
 public:
  /// Intrusive base for operations queued on a bucket's publication
  /// list. The delegate callback downcasts to its concrete op type.
  struct PubNode {
    PubNode* pub_next = nullptr;
  };

 private:
  struct Bucket {
    BucketLock lock;
    HashItemBase* head = nullptr;  // guarded by lock
    // Modified only under `lock` (plain load+store, never an RMW), but
    // read racily by the table_is_drained() retirement hint — hence
    // atomic with relaxed ordering.
    std::atomic<std::int32_t> length{0};
    /// Delegated-mode publication list (Treiber push; drained by the
    /// lock holder). Always empty under the table writer lock.
    std::atomic<PubNode*> pub_head{nullptr};

    void bump_length(std::int32_t d) noexcept {
      length.store(length.load(std::memory_order_relaxed) + d,
                   std::memory_order_relaxed);
    }
  };

  struct Table {
    explicit Table(std::size_t n, Table* o)
        : nbuckets(n), mask(n - 1), older(o),
          buckets(std::make_unique<Bucket[]>(n)) {}
    const std::size_t nbuckets;
    const std::size_t mask;
    Table* older;
    std::unique_ptr<Bucket[]> buckets;
  };

 public:
  class Accessor;

  /// Applies one queued operation on behalf of its publisher. `owner` is
  /// the pointer registered via set_delegate (the owning TT); `acc` is
  /// the combiner's accessor, holding the op's bucket. The callee owns
  /// `op` (it was allocated by the publisher) and must reclaim it.
  using ApplyFn = void (*)(void* owner, Accessor& acc, PubNode* op);

  /// `initial_log2_buckets`: main table starts with 2^n buckets.
  /// `fill_threshold`: a bucket reaching this length triggers a resize.
  explicit ScalableHashTable(int initial_log2_buckets = 4,
                             int fill_threshold = 16,
                             int max_threads = kMaxThreads,
                             PendingTableMode mode =
                                 PendingTableMode::kBucketLock)
      : rw_(max_threads), fill_threshold_(fill_threshold), mode_(mode) {
    main_.store(allocate_table(std::size_t{1} << initial_log2_buckets,
                               nullptr),
                std::memory_order_relaxed);
  }

  /// Registers the delegated-mode apply callback. Must be called before
  /// any concurrent access; without it kDelegated degrades to plain
  /// bucket locking (delegated() stays false).
  void set_delegate(void* owner, ApplyFn apply) noexcept {
    owner_ = owner;
    apply_ = apply;
  }

  PendingTableMode mode() const noexcept { return mode_; }
  bool delegated() const noexcept {
    return mode_ == PendingTableMode::kDelegated && apply_ != nullptr;
  }

  ScalableHashTable(const ScalableHashTable&) = delete;
  ScalableHashTable& operator=(const ScalableHashTable&) = delete;

  ~ScalableHashTable() {
    Table* t = main_.load(std::memory_order_relaxed);
    while (t != nullptr) {
      Table* older = t->older;
      delete t;
      t = older;
    }
  }

  /// Exclusive access to the chain position of one hash value. Typical
  /// TTG pattern: lock the key's bucket, find-or-insert / remove, unlock.
  class Accessor {
   public:
    Accessor(Accessor&& other) noexcept
        : ht_(other.ht_), hash_(other.hash_), token_(other.token_),
          table_(other.table_), bucket_(other.bucket_),
          owns_bucket_(other.owns_bucket_), ready_head_(other.ready_head_),
          resize_needed_(other.resize_needed_), gc_needed_(other.gc_needed_) {
      other.ht_ = nullptr;
    }
    Accessor(const Accessor&) = delete;
    Accessor& operator=(const Accessor&) = delete;

    ~Accessor() { release(); }

    /// True while this accessor holds its bucket lock. lock_key()
    /// accessors always do; lock_key_delegated() accessors may not —
    /// then the only legal operation is publish().
    bool owns_bucket() const noexcept { return owns_bucket_; }

    /// Finds the item matching this accessor's hash, see find_hash().
    template <typename Pred>
    HashItemBase* find(Pred&& pred) {
      return find_hash(hash_, static_cast<Pred&&>(pred));
    }

    /// Finds the item matching `hash` and predicate, migrating it to the
    /// main table if it was found in an old one. Returns nullptr if
    /// absent. `pred(const HashItemBase*)` disambiguates full-key
    /// collisions. `hash` must map to this accessor's bucket (delegated
    /// ops for other keys that share the bucket use this).
    template <typename Pred>
    HashItemBase* find_hash(std::uint64_t hash, Pred&& pred) {
      assert(owns_bucket_);
      assert((hash & table_->mask) == (hash_ & table_->mask));
      // Main-table bucket: we hold its lock.
      for (HashItemBase* it = bucket_->head; it != nullptr; it = it->next) {
        if (it->hash == hash && pred(const_cast<const HashItemBase*>(it))) {
          return it;
        }
      }
      // Old tables: lock each table's own bucket while searching it.
      for (Table* t = table_->older; t != nullptr; t = t->older) {
        Bucket& ob = t->buckets[hash & t->mask];
        BucketGuard guard(ob.lock);
        HashItemBase* prev = nullptr;
        for (HashItemBase* it = ob.head; it != nullptr;
             prev = it, it = it->next) {
          if (it->hash == hash &&
              pred(const_cast<const HashItemBase*>(it))) {
            // Unlink from the old table ...
            if (prev == nullptr) {
              ob.head = it->next;
            } else {
              prev->next = it->next;
            }
            ob.bump_length(-1);
            if (ob.length.load(std::memory_order_relaxed) == 0 &&
                table_is_drained(*t)) {
              gc_needed_ = true;
            }
            // ... and migrate into the main bucket we already hold.
            it->next = bucket_->head;
            bucket_->head = it;
            bucket_->bump_length(+1);
            return it;
          }
        }
      }
      return nullptr;
    }

    /// Inserts `item` (hash must already be set and map to this bucket).
    /// The caller is responsible for uniqueness (find first).
    void insert(HashItemBase* item) {
      assert(owns_bucket_);
      assert((item->hash & table_->mask) == (hash_ & table_->mask));
      item->next = bucket_->head;
      bucket_->head = item;
      bucket_->bump_length(+1);
      if (bucket_->length.load(std::memory_order_relaxed) >=
          ht_->fill_threshold_) {
        resize_needed_ = true;
      }
    }

    /// Finds, unlinks, and returns the item matching this accessor's
    /// hash, or nullptr; see remove_hash().
    template <typename Pred>
    HashItemBase* remove(Pred&& pred) {
      return remove_hash(hash_, static_cast<Pred&&>(pred));
    }

    /// Finds, unlinks, and returns the matching item, or nullptr.
    template <typename Pred>
    HashItemBase* remove_hash(std::uint64_t hash, Pred&& pred) {
      assert(owns_bucket_);
      assert((hash & table_->mask) == (hash_ & table_->mask));
      HashItemBase* prev = nullptr;
      for (HashItemBase* it = bucket_->head; it != nullptr;
           prev = it, it = it->next) {
        if (it->hash == hash && pred(const_cast<const HashItemBase*>(it))) {
          if (prev == nullptr) {
            bucket_->head = it->next;
          } else {
            prev->next = it->next;
          }
          bucket_->bump_length(-1);
          it->next = nullptr;
          return it;
        }
      }
      // Not in the main table: find() would migrate, so search old tables
      // directly and unlink in place.
      for (Table* t = table_->older; t != nullptr; t = t->older) {
        Bucket& ob = t->buckets[hash & t->mask];
        BucketGuard guard(ob.lock);
        prev = nullptr;
        for (HashItemBase* it = ob.head; it != nullptr;
             prev = it, it = it->next) {
          if (it->hash == hash &&
              pred(const_cast<const HashItemBase*>(it))) {
            if (prev == nullptr) {
              ob.head = it->next;
            } else {
              prev->next = it->next;
            }
            ob.bump_length(-1);
            if (ob.length.load(std::memory_order_relaxed) == 0 &&
                table_is_drained(*t)) {
              gc_needed_ = true;
            }
            it->next = nullptr;
            return it;
          }
        }
      }
      return nullptr;
    }

    /// Delegated mode, bucket lock not acquired: queues `op` on the
    /// bucket's publication list for the lock holder to apply. May
    /// *acquire* the lock as a side effect (the holder released it
    /// mid-publish) — the caller must check owns_bucket() afterwards;
    /// when it is true, release() will drain and apply the queued op
    /// (exactly once, through the same publication list).
    void publish(PubNode* op) {
      assert(!owns_bucket_ && ht_->delegated());
      PubNode* head = bucket_->pub_head.load(std::memory_order_relaxed);
      for (;;) {
        op->pub_next = head;
        atomic_ops::count(AtomicOpCategory::kBucketLock);
        TTG_SIM_POINT("pending.publish");
        if (bucket_->pub_head.compare_exchange_weak(
                head, op, ord_release(), std::memory_order_relaxed)) {
          break;
        }
      }
      // Paired with the combiner's unlock→fence→recheck: in the seq_cst
      // fence order, either the combiner's recheck sees our push, or our
      // try_lock below sees its unlock — someone always drains `op`.
      std::atomic_thread_fence(std::memory_order_seq_cst);
      if (bucket_->lock.try_lock()) {
        owns_bucket_ = true;
      } else {
        ++detail::g_pending_cells[this_thread::id()].delegations;
      }
    }

    /// Parks a record the delegate found ready during a combiner drain.
    /// Submission happens after release() — inline execution may re-enter
    /// this table — via take_ready(). Uses HashItemBase::next (the item
    /// is already unlinked from its bucket).
    void defer_ready(HashItemBase* item) noexcept {
      item->next = ready_head_;
      ready_head_ = item;
    }

    /// Detaches and returns the deferred-ready list (LIFO). Call after
    /// release().
    HashItemBase* take_ready() noexcept {
      HashItemBase* head = ready_head_;
      ready_head_ = nullptr;
      return head;
    }

    /// Releases the bucket and reader locks; in delegated mode first
    /// drains the bucket's publication list (combiner role). Runs any
    /// deferred resize or old-table retirement. Idempotent (also run by
    /// the destructor).
    void release() {
      if (ht_ == nullptr) return;
      if (owns_bucket_) {
        if (ht_->delegated()) {
          drain_and_unlock();
        } else {
          bucket_->lock.unlock();
        }
      }
      ht_->rw_.read_unlock(token_);
      ScalableHashTable* ht = ht_;
      Table* observed = table_;
      const bool resize = resize_needed_;
      const bool gc = gc_needed_;
      ht_ = nullptr;
      if (resize) ht->grow(observed);
      if (gc) ht->retire_empty_tables();
    }

   private:
    friend class ScalableHashTable;
    Accessor(ScalableHashTable* ht, std::uint64_t hash) : ht_(ht),
                                                          hash_(hash) {
      token_ = ht_->rw_.read_lock();
      table_ = ht_->main_.load(ord_acquire());
      bucket_ = &table_->buckets[hash_ & table_->mask];
      bucket_->lock.lock();
      owns_bucket_ = true;
    }

    struct TryLockTag {};
    Accessor(ScalableHashTable* ht, std::uint64_t hash, TryLockTag)
        : ht_(ht), hash_(hash) {
      token_ = ht_->rw_.read_lock();
      table_ = ht_->main_.load(ord_acquire());
      bucket_ = &table_->buckets[hash_ & table_->mask];
      owns_bucket_ = bucket_->lock.try_lock();
    }

    /// Combiner epilogue: apply queued ops, unlock, recheck. The window
    /// between the last drain and the unlock is closed by the fence pair
    /// described at publish(); the PENDING_INSERT_LOST_PUBLISH mutant
    /// removes the recheck to prove the DST scenario would catch a
    /// protocol regression.
    void drain_and_unlock() {
      for (;;) {
        // Plain-load guard: the empty publication list (single-threaded
        // census, uncontended buckets) costs no atomic RMW.
        while (bucket_->pub_head.load(std::memory_order_relaxed) !=
               nullptr) {
          atomic_ops::count(AtomicOpCategory::kBucketLock);
          TTG_SIM_POINT("pending.drain");
          PubNode* chain = bucket_->pub_head.exchange(nullptr,
                                                      ord_acq_rel());
          // Reverse the Treiber chain back to publication order.
          PubNode* rev = nullptr;
          while (chain != nullptr) {
            PubNode* next = chain->pub_next;
            chain->pub_next = rev;
            rev = chain;
            chain = next;
          }
          while (rev != nullptr) {
            PubNode* next = rev->pub_next;
            rev->pub_next = nullptr;
            ht_->apply_(ht_->owner_, *this, rev);
            ++detail::g_pending_cells[this_thread::id()].combined;
            rev = next;
          }
        }
        bucket_->lock.unlock();
        owns_bucket_ = false;
#if defined(TTG_MUTANT_PENDING_INSERT_LOST_PUBLISH)
        break;  // mutant: skip the post-unlock recheck (lost-publication)
#else
        std::atomic_thread_fence(std::memory_order_seq_cst);
        TTG_SIM_POINT("pending.recheck");
        if (bucket_->pub_head.load(std::memory_order_relaxed) == nullptr) {
          break;
        }
        if (!bucket_->lock.try_lock()) {
          break;  // new lock holder drains on its own release
        }
        owns_bucket_ = true;
#endif
      }
    }

    ScalableHashTable* ht_;
    std::uint64_t hash_;
    BravoRWLock<RWSpinLock>::ReaderToken token_;
    Table* table_ = nullptr;
    Bucket* bucket_ = nullptr;
    bool owns_bucket_ = false;
    HashItemBase* ready_head_ = nullptr;
    bool resize_needed_ = false;
    bool gc_needed_ = false;
  };

  /// Locks the bucket for `hash` (taking the reader lock first) and
  /// returns an accessor for find/insert/remove under that lock.
  Accessor lock_key(std::uint64_t hash) { return Accessor(this, hash); }

  /// Delegated-mode entry: *tries* the bucket lock once instead of
  /// spinning. On success the accessor behaves like lock_key()'s; on
  /// failure (owns_bucket() == false) the caller packages its operation
  /// as a PubNode and publish()es it for the lock holder to apply.
  Accessor lock_key_delegated(std::uint64_t hash) {
    return Accessor(this, hash, Accessor::TryLockTag{});
  }

  /// Total number of stored items; takes the writer lock (test hook, not
  /// meant for hot paths).
  std::size_t size() {
    rw_.write_lock();
    std::size_t n = 0;
    for (Table* t = main_.load(std::memory_order_relaxed); t != nullptr;
         t = t->older) {
      for (std::size_t b = 0; b < t->nbuckets; ++b) {
        n += static_cast<std::size_t>(
            t->buckets[b].length.load(std::memory_order_relaxed));
      }
    }
    rw_.write_unlock();
    return n;
  }

  /// Number of tables currently chained (1 == fully consolidated).
  int num_tables() {
    rw_.write_lock();
    int n = 0;
    for (Table* t = main_.load(std::memory_order_relaxed); t != nullptr;
         t = t->older) {
      ++n;
    }
    rw_.write_unlock();
    return n;
  }

  std::size_t main_table_buckets() {
    return main_.load(std::memory_order_acquire)->nbuckets;
  }

  /// Visits every stored item under the writer lock (excludes all other
  /// access). For teardown and diagnostics, not hot paths. The callback
  /// must not mutate the table.
  template <typename F>
  void for_each_exclusive(F&& f) {
    rw_.write_lock();
    for (Table* t = main_.load(std::memory_order_relaxed); t != nullptr;
         t = t->older) {
      for (std::size_t b = 0; b < t->nbuckets; ++b) {
        // Writer lock held: no reader owns any bucket, so no queued
        // publication can exist (see the delegation invariant above).
        assert(t->buckets[b].pub_head.load(std::memory_order_relaxed) ==
               nullptr);
        HashItemBase* it = t->buckets[b].head;
        while (it != nullptr) {
          // Read the successor first: the callback may destroy `it`.
          HashItemBase* next = it->next;
          f(it);
          it = next;
        }
      }
    }
    rw_.write_unlock();
  }

  /// Removes every stored item under the writer lock, invoking `f(item)`
  /// on each after it is unlinked (the callback owns the item and may
  /// destroy it). Returns the number of items drained. Cooperative-
  /// cancellation purge path: the writer lock excludes every bucket-lock
  /// accessor, so no concurrent find/insert/remove observes a
  /// half-unlinked chain.
  template <typename F>
  std::size_t drain_exclusive(F&& f) {
    rw_.write_lock();
    std::size_t n = 0;
    for (Table* t = main_.load(std::memory_order_relaxed); t != nullptr;
         t = t->older) {
      for (std::size_t b = 0; b < t->nbuckets; ++b) {
        Bucket& bucket = t->buckets[b];
        assert(bucket.pub_head.load(std::memory_order_relaxed) == nullptr);
        HashItemBase* it = bucket.head;
        bucket.head = nullptr;
        bucket.length.store(0, std::memory_order_relaxed);
        while (it != nullptr) {
          HashItemBase* next = it->next;
          it->next = nullptr;
          f(it);
          ++n;
          it = next;
        }
      }
    }
    rw_.write_unlock();
    return n;
  }

  /// Forces retirement of drained old tables (normally lazy). Test hook.
  void retire_empty_tables() {
    rw_.write_lock();
    Table* t = main_.load(std::memory_order_relaxed);
    while (t->older != nullptr) {
      Table* old = t->older;
      if (table_is_drained(*old)) {
        t->older = old->older;
        delete old;
      } else {
        t = old;
      }
    }
    rw_.write_unlock();
  }

 private:
  static Table* allocate_table(std::size_t nbuckets, Table* older) {
    return new Table(nbuckets, older);
  }

  /// Racy scan used as a retirement hint; retire_empty_tables() verifies
  /// under the writer lock before actually freeing anything.
  static bool table_is_drained(const Table& t) {
    for (std::size_t b = 0; b < t.nbuckets; ++b) {
      if (t.buckets[b].length.load(std::memory_order_relaxed) != 0)
        return false;
    }
    return true;
  }

  /// Doubles the main table if `observed` is still the current main.
  void grow(Table* observed) {
    rw_.write_lock();
    Table* cur = main_.load(std::memory_order_relaxed);
    if (cur == observed) {
      main_.store(allocate_table(cur->nbuckets * 2, cur), ord_release());
    }
    rw_.write_unlock();
  }

  BravoRWLock<RWSpinLock> rw_;
  std::atomic<Table*> main_;
  const int fill_threshold_;
  const PendingTableMode mode_ = PendingTableMode::kBucketLock;
  void* owner_ = nullptr;
  ApplyFn apply_ = nullptr;
};

}  // namespace ttg
