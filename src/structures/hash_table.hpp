// Scalable chained hash table (paper Sec. III-C, Fig. 3).
//
// Each TTG template task stores its not-yet-eligible discovered tasks in
// one of these. The table grows by *chaining*: when a bucket of the main
// table exceeds a fill threshold, a new main table with twice the buckets
// is allocated and the previous main becomes the head of a list of "old"
// tables. New entries go to the new main table; lookups and removals
// traverse the chain, and an entry found in an old table is migrated into
// the main table to speed up the next search. Old tables drain over time
// (tasks stay in the table only while waiting for inputs) and are retired
// once empty, eventually leaving a single table again.
//
// Locking (Sec. III-C2 + IV-D): threads lock individual buckets with a
// one-word spinlock and hold a table-wide *reader* lock for the duration
// of the access; resizing and retiring old tables take the *writer* lock.
// The reader lock is a BRAVO-wrapped reader-writer lock, so in the fast
// path the only atomic RMW per access is the bucket lock itself.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "sync/bravo.hpp"
#include "sync/bucket_lock.hpp"
#include "sync/rwlock.hpp"

namespace ttg {

/// Intrusive base for anything stored in a ScalableHashTable.
struct HashItemBase {
  HashItemBase* next = nullptr;
  std::uint64_t hash = 0;
};

class ScalableHashTable {
 private:
  struct Bucket {
    BucketLock lock;
    HashItemBase* head = nullptr;  // guarded by lock
    // Modified only under `lock` (plain load+store, never an RMW), but
    // read racily by the table_is_drained() retirement hint — hence
    // atomic with relaxed ordering.
    std::atomic<std::int32_t> length{0};

    void bump_length(std::int32_t d) noexcept {
      length.store(length.load(std::memory_order_relaxed) + d,
                   std::memory_order_relaxed);
    }
  };

  struct Table {
    explicit Table(std::size_t n, Table* o)
        : nbuckets(n), mask(n - 1), older(o),
          buckets(std::make_unique<Bucket[]>(n)) {}
    const std::size_t nbuckets;
    const std::size_t mask;
    Table* older;
    std::unique_ptr<Bucket[]> buckets;
  };

 public:
  /// `initial_log2_buckets`: main table starts with 2^n buckets.
  /// `fill_threshold`: a bucket reaching this length triggers a resize.
  explicit ScalableHashTable(int initial_log2_buckets = 4,
                             int fill_threshold = 16,
                             int max_threads = kMaxThreads)
      : rw_(max_threads), fill_threshold_(fill_threshold) {
    main_.store(allocate_table(std::size_t{1} << initial_log2_buckets,
                               nullptr),
                std::memory_order_relaxed);
  }

  ScalableHashTable(const ScalableHashTable&) = delete;
  ScalableHashTable& operator=(const ScalableHashTable&) = delete;

  ~ScalableHashTable() {
    Table* t = main_.load(std::memory_order_relaxed);
    while (t != nullptr) {
      Table* older = t->older;
      delete t;
      t = older;
    }
  }

  /// Exclusive access to the chain position of one hash value. Typical
  /// TTG pattern: lock the key's bucket, find-or-insert / remove, unlock.
  class Accessor {
   public:
    Accessor(Accessor&& other) noexcept
        : ht_(other.ht_), hash_(other.hash_), token_(other.token_),
          table_(other.table_), bucket_(other.bucket_),
          resize_needed_(other.resize_needed_), gc_needed_(other.gc_needed_) {
      other.ht_ = nullptr;
    }
    Accessor(const Accessor&) = delete;
    Accessor& operator=(const Accessor&) = delete;

    ~Accessor() { release(); }

    /// Finds the item matching this hash and predicate, migrating it to
    /// the main table if it was found in an old one. Returns nullptr if
    /// absent. `pred(const HashItemBase*)` disambiguates full-key
    /// collisions.
    template <typename Pred>
    HashItemBase* find(Pred&& pred) {
      // Main-table bucket: we hold its lock.
      for (HashItemBase* it = bucket_->head; it != nullptr; it = it->next) {
        if (it->hash == hash_ && pred(const_cast<const HashItemBase*>(it))) {
          return it;
        }
      }
      // Old tables: lock each table's own bucket while searching it.
      for (Table* t = table_->older; t != nullptr; t = t->older) {
        Bucket& ob = t->buckets[hash_ & t->mask];
        BucketGuard guard(ob.lock);
        HashItemBase* prev = nullptr;
        for (HashItemBase* it = ob.head; it != nullptr;
             prev = it, it = it->next) {
          if (it->hash == hash_ &&
              pred(const_cast<const HashItemBase*>(it))) {
            // Unlink from the old table ...
            if (prev == nullptr) {
              ob.head = it->next;
            } else {
              prev->next = it->next;
            }
            ob.bump_length(-1);
            if (ob.length.load(std::memory_order_relaxed) == 0 &&
                table_is_drained(*t)) {
              gc_needed_ = true;
            }
            // ... and migrate into the main bucket we already hold.
            it->next = bucket_->head;
            bucket_->head = it;
            bucket_->bump_length(+1);
            return it;
          }
        }
      }
      return nullptr;
    }

    /// Inserts `item` (hash must already be set to this accessor's hash).
    /// The caller is responsible for uniqueness (find first).
    void insert(HashItemBase* item) {
      assert(item->hash == hash_);
      item->next = bucket_->head;
      bucket_->head = item;
      bucket_->bump_length(+1);
      if (bucket_->length.load(std::memory_order_relaxed) >=
          ht_->fill_threshold_) {
        resize_needed_ = true;
      }
    }

    /// Finds, unlinks, and returns the matching item, or nullptr.
    template <typename Pred>
    HashItemBase* remove(Pred&& pred) {
      HashItemBase* prev = nullptr;
      for (HashItemBase* it = bucket_->head; it != nullptr;
           prev = it, it = it->next) {
        if (it->hash == hash_ && pred(const_cast<const HashItemBase*>(it))) {
          if (prev == nullptr) {
            bucket_->head = it->next;
          } else {
            prev->next = it->next;
          }
          bucket_->bump_length(-1);
          it->next = nullptr;
          return it;
        }
      }
      // Not in the main table: find() would migrate, so search old tables
      // directly and unlink in place.
      for (Table* t = table_->older; t != nullptr; t = t->older) {
        Bucket& ob = t->buckets[hash_ & t->mask];
        BucketGuard guard(ob.lock);
        prev = nullptr;
        for (HashItemBase* it = ob.head; it != nullptr;
             prev = it, it = it->next) {
          if (it->hash == hash_ &&
              pred(const_cast<const HashItemBase*>(it))) {
            if (prev == nullptr) {
              ob.head = it->next;
            } else {
              prev->next = it->next;
            }
            ob.bump_length(-1);
            if (ob.length.load(std::memory_order_relaxed) == 0 &&
                table_is_drained(*t)) {
              gc_needed_ = true;
            }
            it->next = nullptr;
            return it;
          }
        }
      }
      return nullptr;
    }

    /// Releases the bucket and reader locks; runs any deferred resize or
    /// old-table retirement. Idempotent (also run by the destructor).
    void release() {
      if (ht_ == nullptr) return;
      bucket_->lock.unlock();
      ht_->rw_.read_unlock(token_);
      ScalableHashTable* ht = ht_;
      Table* observed = table_;
      const bool resize = resize_needed_;
      const bool gc = gc_needed_;
      ht_ = nullptr;
      if (resize) ht->grow(observed);
      if (gc) ht->retire_empty_tables();
    }

   private:
    friend class ScalableHashTable;
    Accessor(ScalableHashTable* ht, std::uint64_t hash) : ht_(ht),
                                                          hash_(hash) {
      token_ = ht_->rw_.read_lock();
      table_ = ht_->main_.load(ord_acquire());
      bucket_ = &table_->buckets[hash_ & table_->mask];
      bucket_->lock.lock();
    }

    ScalableHashTable* ht_;
    std::uint64_t hash_;
    BravoRWLock<RWSpinLock>::ReaderToken token_;
    Table* table_ = nullptr;
    Bucket* bucket_ = nullptr;
    bool resize_needed_ = false;
    bool gc_needed_ = false;
  };

  /// Locks the bucket for `hash` (taking the reader lock first) and
  /// returns an accessor for find/insert/remove under that lock.
  Accessor lock_key(std::uint64_t hash) { return Accessor(this, hash); }

  /// Total number of stored items; takes the writer lock (test hook, not
  /// meant for hot paths).
  std::size_t size() {
    rw_.write_lock();
    std::size_t n = 0;
    for (Table* t = main_.load(std::memory_order_relaxed); t != nullptr;
         t = t->older) {
      for (std::size_t b = 0; b < t->nbuckets; ++b) {
        n += static_cast<std::size_t>(
            t->buckets[b].length.load(std::memory_order_relaxed));
      }
    }
    rw_.write_unlock();
    return n;
  }

  /// Number of tables currently chained (1 == fully consolidated).
  int num_tables() {
    rw_.write_lock();
    int n = 0;
    for (Table* t = main_.load(std::memory_order_relaxed); t != nullptr;
         t = t->older) {
      ++n;
    }
    rw_.write_unlock();
    return n;
  }

  std::size_t main_table_buckets() {
    return main_.load(std::memory_order_acquire)->nbuckets;
  }

  /// Visits every stored item under the writer lock (excludes all other
  /// access). For teardown and diagnostics, not hot paths. The callback
  /// must not mutate the table.
  template <typename F>
  void for_each_exclusive(F&& f) {
    rw_.write_lock();
    for (Table* t = main_.load(std::memory_order_relaxed); t != nullptr;
         t = t->older) {
      for (std::size_t b = 0; b < t->nbuckets; ++b) {
        HashItemBase* it = t->buckets[b].head;
        while (it != nullptr) {
          // Read the successor first: the callback may destroy `it`.
          HashItemBase* next = it->next;
          f(it);
          it = next;
        }
      }
    }
    rw_.write_unlock();
  }

  /// Removes every stored item under the writer lock, invoking `f(item)`
  /// on each after it is unlinked (the callback owns the item and may
  /// destroy it). Returns the number of items drained. Cooperative-
  /// cancellation purge path: the writer lock excludes every bucket-lock
  /// accessor, so no concurrent find/insert/remove observes a
  /// half-unlinked chain.
  template <typename F>
  std::size_t drain_exclusive(F&& f) {
    rw_.write_lock();
    std::size_t n = 0;
    for (Table* t = main_.load(std::memory_order_relaxed); t != nullptr;
         t = t->older) {
      for (std::size_t b = 0; b < t->nbuckets; ++b) {
        Bucket& bucket = t->buckets[b];
        HashItemBase* it = bucket.head;
        bucket.head = nullptr;
        bucket.length.store(0, std::memory_order_relaxed);
        while (it != nullptr) {
          HashItemBase* next = it->next;
          it->next = nullptr;
          f(it);
          ++n;
          it = next;
        }
      }
    }
    rw_.write_unlock();
    return n;
  }

  /// Forces retirement of drained old tables (normally lazy). Test hook.
  void retire_empty_tables() {
    rw_.write_lock();
    Table* t = main_.load(std::memory_order_relaxed);
    while (t->older != nullptr) {
      Table* old = t->older;
      if (table_is_drained(*old)) {
        t->older = old->older;
        delete old;
      } else {
        t = old;
      }
    }
    rw_.write_unlock();
  }

 private:
  static Table* allocate_table(std::size_t nbuckets, Table* older) {
    return new Table(nbuckets, older);
  }

  /// Racy scan used as a retirement hint; retire_empty_tables() verifies
  /// under the writer lock before actually freeing anything.
  static bool table_is_drained(const Table& t) {
    for (std::size_t b = 0; b < t.nbuckets; ++b) {
      if (t.buckets[b].length.load(std::memory_order_relaxed) != 0)
        return false;
    }
    return true;
  }

  /// Doubles the main table if `observed` is still the current main.
  void grow(Table* observed) {
    rw_.write_lock();
    Table* cur = main_.load(std::memory_order_relaxed);
    if (cur == observed) {
      main_.store(allocate_table(cur->nbuckets * 2, cur), ord_release());
    }
    rw_.write_unlock();
  }

  BravoRWLock<RWSpinLock> rw_;
  std::atomic<Table*> main_;
  const int fill_threshold_;
};

}  // namespace ttg
