// Per-thread bounded task buffer with priorities — the local half of the
// LFQ scheduler (Sec. III-B).
//
// Each worker owns one of these; other workers may steal from it. Slots
// are individually atomic so that push (owner), pop-best (owner) and
// steal (thief) proceed without a per-buffer lock. "Tasks with the
// highest priority are kept to fill up the bounded buffer, and tasks with
// the lowest priority are enqueued into the [overflow FIFO], if
// necessary."
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "structures/lifo.hpp"

namespace ttg {

template <std::size_t N = 8>
class BoundedPriorityBuffer {
 public:
  BoundedPriorityBuffer() {
    for (auto& s : slots_) s.store(nullptr, std::memory_order_relaxed);
  }
  BoundedPriorityBuffer(const BoundedPriorityBuffer&) = delete;
  BoundedPriorityBuffer& operator=(const BoundedPriorityBuffer&) = delete;

  static constexpr std::size_t capacity() { return N; }

  /// Tries to place `node`, keeping the N highest-priority tasks local.
  /// Returns nullptr on success, `node` itself if the buffer was full of
  /// higher-priority work, or a displaced lower-priority task that the
  /// caller must route to the overflow queue.
  LifoNode* push(LifoNode* node) noexcept {
    // Pass 1: free slot.
    for (auto& slot : slots_) {
      LifoNode* expected = nullptr;
      if (slot.load(std::memory_order_relaxed) != nullptr) continue;
      atomic_ops::count(AtomicOpCategory::kScheduler);
      if (slot.compare_exchange_strong(expected, node, ord_acq_rel(),
                                       std::memory_order_relaxed)) {
        return nullptr;
      }
    }
    // Pass 2: evict the lowest-priority resident if it is lower than ours.
    std::atomic<LifoNode*>* victim = nullptr;
    LifoNode* victim_task = nullptr;
    for (auto& slot : slots_) {
      LifoNode* t = slot.load(std::memory_order_relaxed);
      if (t == nullptr) continue;
      if (victim_task == nullptr || t->priority < victim_task->priority) {
        victim = &slot;
        victim_task = t;
      }
    }
    if (victim_task != nullptr && victim_task->priority < node->priority) {
      atomic_ops::count(AtomicOpCategory::kScheduler);
      if (victim->compare_exchange_strong(victim_task, node, ord_acq_rel(),
                                          std::memory_order_relaxed)) {
        return victim_task;  // displaced task goes to the overflow FIFO
      }
    }
    return node;  // buffer stays as-is; caller overflows `node`
  }

  /// Removes and returns the highest-priority task, or nullptr.
  LifoNode* pop_best() noexcept {
    for (;;) {
      std::atomic<LifoNode*>* best = nullptr;
      LifoNode* best_task = nullptr;
      for (auto& slot : slots_) {
        LifoNode* t = slot.load(std::memory_order_relaxed);
        if (t == nullptr) continue;
        if (best_task == nullptr || t->priority > best_task->priority) {
          best = &slot;
          best_task = t;
        }
      }
      if (best_task == nullptr) return nullptr;
      atomic_ops::count(AtomicOpCategory::kScheduler);
      if (best->compare_exchange_strong(best_task, nullptr, ord_acq_rel(),
                                        std::memory_order_relaxed)) {
        fence_acquire();
        return best_task;
      }
      // Lost a race with a thief; rescan.
    }
  }

  /// Steals any one task (thief side). Takes the first occupied slot.
  LifoNode* steal() noexcept {
    for (auto& slot : slots_) {
      LifoNode* t = slot.load(std::memory_order_relaxed);
      if (t == nullptr) continue;
      atomic_ops::count(AtomicOpCategory::kScheduler);
      if (slot.compare_exchange_strong(t, nullptr, ord_acq_rel(),
                                       std::memory_order_relaxed)) {
        fence_acquire();
        return t;
      }
    }
    return nullptr;
  }

  bool empty() const noexcept {
    for (const auto& slot : slots_) {
      if (slot.load(std::memory_order_relaxed) != nullptr) return false;
    }
    return true;
  }

 private:
  std::array<std::atomic<LifoNode*>, N> slots_;
};

}  // namespace ttg
