// Atomic LIFO (Treiber stack) with a tagged head pointer.
//
// This is the building block of the LL and LLP schedulers (Sec. IV-C) and
// of the per-thread free-list memory pools (Sec. IV-E). The head packs a
// 48-bit pointer and a 16-bit ABA tag into one 64-bit word so that every
// operation is a single-word CAS; the tag is bumped on every successful
// pop, which is the only operation vulnerable to ABA.
//
// Memory-ordering discipline follows Sec. IV-A: in the optimized mode the
// CAS itself is relaxed and publication/observation of node contents is
// handled with explicit thread fences.
//
// Node lifetime requirement: a popped node may still be *read* (its next
// pointer) by a concurrent pop that loses the CAS race, so node memory
// must stay readable while any thread can be inside an operation. The
// runtime guarantees this by recycling nodes through pools that never
// return memory to the OS mid-run.
#pragma once

#include <atomic>
#include <cassert>
#include <cstdint>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "common/busy_wait.hpp"
#include "sim/hooks.hpp"

namespace ttg {

/// Intrusive hook. Anything stored in an AtomicLifo (tasks, free-list
/// slots) embeds or overlays one of these.
///
/// `next` is atomic because of the classic Treiber-stack property: a pop
/// that loses the CAS race has already read the (then-stale) next
/// pointer of a node another thread may be re-linking. The algorithm
/// discards the stale value via the ABA tag, but the *read* itself must
/// be atomic to be defined behavior. Single-owner structural code can
/// keep using plain `a->next = b` syntax through the atomic's operators.
struct LifoNode {
  std::atomic<LifoNode*> next{nullptr};
  std::int32_t priority = 0;
};

class AtomicLifo {
 public:
  explicit AtomicLifo(AtomicOpCategory cat = AtomicOpCategory::kScheduler)
      : category_(cat) {}
  AtomicLifo(const AtomicLifo&) = delete;
  AtomicLifo& operator=(const AtomicLifo&) = delete;

  bool empty() const noexcept {
    return unpack_ptr(head_.load(std::memory_order_relaxed)) == nullptr;
  }

  /// Pushes one node (any thread). One CAS in the uncontended case.
  void push(LifoNode* node) noexcept {
    fence_release();  // publish *node before it becomes reachable
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      node->next.store(unpack_ptr(h), std::memory_order_relaxed);
      atomic_ops::count(category_);
      TTG_SIM_POINT("lifo.push.cas");
      if (head_.compare_exchange_weak(h, pack(node, tag_of(h)), ord_acq_rel(),
                                      std::memory_order_relaxed)) {
        return;
      }
      cpu_relax();
    }
  }

  /// Pushes a pre-linked chain [first..last] in one CAS.
  void push_chain(LifoNode* first, LifoNode* last) noexcept {
    fence_release();
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      last->next.store(unpack_ptr(h), std::memory_order_relaxed);
      atomic_ops::count(category_);
      TTG_SIM_POINT("lifo.push_chain.cas");
      if (head_.compare_exchange_weak(h, pack(first, tag_of(h)), ord_acq_rel(),
                                      std::memory_order_relaxed)) {
        return;
      }
      cpu_relax();
    }
  }

  /// Pops up to `max_n` nodes from the head in ONE ABA-tagged CAS,
  /// preserving their head-first order. Returns the head of the detached
  /// chain (linked through `next`, last node nulled) or nullptr if the
  /// LIFO is empty; `*n_out` receives the number of nodes taken.
  ///
  /// The walk reads `next` pointers of nodes still reachable from the
  /// head. A concurrent pop/detach/attach bumps the ABA tag and a
  /// concurrent push moves the head pointer, so the suffix CAS below
  /// fails and the stale walk is discarded; a *successful* CAS proves
  /// the walked run [head..last] was untouched since the head load.
  /// Costs one CAS per attempt — the batch amortizes the Eq. (1)
  /// scheduler term across up to max_n tasks.
  LifoNode* pop_chain(std::size_t max_n,
                      std::size_t* n_out = nullptr) noexcept {
    if (n_out) *n_out = 0;
    if (max_n == 0) return nullptr;
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      LifoNode* first = unpack_ptr(h);
      if (first == nullptr) return nullptr;
      LifoNode* last = first;
      std::size_t n = 1;
      while (n < max_n) {
        TTG_SIM_POINT("lifo.pop_chain.walk");
        LifoNode* next = last->next.load(std::memory_order_relaxed);
        if (next == nullptr) break;
        last = next;
        ++n;
      }
      LifoNode* suffix = last->next.load(std::memory_order_relaxed);
      atomic_ops::count(category_);
      TTG_SIM_POINT("lifo.pop_chain.cas");
#if defined(TTG_MUTANT_LIFO_CHAIN_NO_TAG)
      // MUTANT: drop the ABA tag bump. A concurrent detach that re-pushes
      // the same head node between our walk and this CAS goes unnoticed,
      // so the stale walked run [first..last] is detached as if untouched.
      const std::uint64_t chain_tag = tag_of(h);
#else
      const std::uint64_t chain_tag = tag_of(h) + 1;
#endif
      if (head_.compare_exchange_weak(h, pack(suffix, chain_tag),
                                      ord_acq_rel(),
                                      std::memory_order_relaxed)) {
        fence_acquire();  // observe node contents published by push
        last->next.store(nullptr, std::memory_order_relaxed);
        if (n_out) *n_out = n;
        return first;
      }
      cpu_relax();
    }
  }

  /// Steal-half (Sec. IV-C hardening): pops ceil(len/2) of the visible
  /// run — measured by scanning at most 2*cap nodes — capped at `cap`,
  /// in one tagged CAS. Thieves use this to take a bounded batch while
  /// provably leaving the victim at least as much as they took, so a
  /// victim that keeps producing is never drained to empty by one probe.
  LifoNode* pop_half(std::size_t cap,
                     std::size_t* n_out = nullptr) noexcept {
    if (n_out) *n_out = 0;
    if (cap == 0) return nullptr;
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      LifoNode* first = unpack_ptr(h);
      if (first == nullptr) return nullptr;
      // Measure the visible run, up to twice the cap.
      std::size_t len = 0;
      for (LifoNode* p = first; p != nullptr && len < 2 * cap;
           p = p->next.load(std::memory_order_relaxed)) {
        TTG_SIM_POINT("lifo.pop_half.scan");
        ++len;
      }
      const std::size_t half = (len + 1) / 2;
      const std::size_t take = half < cap ? half : cap;
      // Re-walk to the last taken node. A racing pop can shorten the
      // run mid-walk (observed as a null next); the tag bump it did
      // dooms our CAS anyway, so just retry from a fresh head.
      LifoNode* last = first;
      bool run_changed = false;
      for (std::size_t i = 1; i < take; ++i) {
        TTG_SIM_POINT("lifo.pop_half.walk");
        LifoNode* next = last->next.load(std::memory_order_relaxed);
        if (next == nullptr) {
          run_changed = true;
          break;
        }
        last = next;
      }
      if (run_changed) {
        h = head_.load(std::memory_order_relaxed);
        cpu_relax();
        continue;
      }
      LifoNode* suffix = last->next.load(std::memory_order_relaxed);
      atomic_ops::count(category_);
      TTG_SIM_POINT("lifo.pop_half.cas");
      if (head_.compare_exchange_weak(h, pack(suffix, tag_of(h) + 1),
                                      ord_acq_rel(),
                                      std::memory_order_relaxed)) {
        fence_acquire();
        last->next.store(nullptr, std::memory_order_relaxed);
        if (n_out) *n_out = take;
        return first;
      }
      cpu_relax();
    }
  }

  /// Pops the head node, or nullptr if empty (any thread).
  LifoNode* pop() noexcept {
    std::uint64_t h = head_.load(std::memory_order_relaxed);
    for (;;) {
      LifoNode* p = unpack_ptr(h);
      if (p == nullptr) return nullptr;
      atomic_ops::count(category_);
      // Relaxed read: may be stale if we lose the race, in which case the
      // tagged CAS below fails and the value is discarded.
      LifoNode* next = p->next.load(std::memory_order_relaxed);
      TTG_SIM_POINT("lifo.pop.cas");
#if defined(TTG_MUTANT_LIFO_POP_NO_TAG)
      // MUTANT: drop the ABA tag bump. If another thread pops this node
      // and a successor, then re-pushes this node, our CAS still matches
      // and installs the stale (already-popped) successor as the head.
      const std::uint64_t pop_tag = tag_of(h);
#else
      const std::uint64_t pop_tag = tag_of(h) + 1;
#endif
      if (head_.compare_exchange_weak(h, pack(next, pop_tag),
                                      ord_acq_rel(),
                                      std::memory_order_relaxed)) {
        fence_acquire();  // observe node contents published by push
        p->next.store(nullptr, std::memory_order_relaxed);
        return p;
      }
      cpu_relax();
    }
  }

  /// Detaches the whole list in one atomic exchange, leaving the LIFO
  /// empty. Concurrent pops observe an empty LIFO. Returns the old head.
  LifoNode* detach() noexcept {
    atomic_ops::count(category_);
    TTG_SIM_POINT("lifo.detach");
    const std::uint64_t h =
        head_.exchange(pack(nullptr, current_tag() + 1), ord_acq_rel());
    fence_acquire();
    return unpack_ptr(h);
  }

  /// Reattaches a list built by the owner after detach(). The paper's key
  /// observation (Sec. IV-C): since only the owner pushes and the list is
  /// currently empty, a single release store suffices.
  void attach(LifoNode* list) noexcept {
    TTG_SIM_POINT("lifo.attach");
    head_.store(pack(list, current_tag() + 1), ord_release());
  }

  /// Current ABA tag of the head word (diagnostics/tests): bumped by
  /// every successful pop/pop_chain/pop_half/detach/attach, never by
  /// push.
  std::uint64_t head_tag() const noexcept { return current_tag(); }

  /// Peeks at the head's priority without popping; only meaningful to the
  /// owning thread (others may race). Returns false if empty.
  bool head_priority(std::int32_t& prio_out) const noexcept {
    LifoNode* p = unpack_ptr(head_.load(std::memory_order_relaxed));
    if (p == nullptr) return false;
    prio_out = p->priority;
    return true;
  }

 private:
  static constexpr std::uint64_t kPtrMask = 0x0000FFFFFFFFFFFFULL;
  static constexpr int kTagShift = 48;

  static LifoNode* unpack_ptr(std::uint64_t v) noexcept {
    return reinterpret_cast<LifoNode*>(v & kPtrMask);
  }
  static std::uint64_t tag_of(std::uint64_t v) noexcept {
    return v >> kTagShift;
  }
  static std::uint64_t pack(LifoNode* p, std::uint64_t tag) noexcept {
    const auto raw = reinterpret_cast<std::uint64_t>(p);
    assert((raw & ~kPtrMask) == 0 && "pointer exceeds 48 bits");
    return raw | (tag << kTagShift);
  }
  std::uint64_t current_tag() const noexcept {
    return tag_of(head_.load(std::memory_order_relaxed));
  }

  std::atomic<std::uint64_t> head_{0};
  const AtomicOpCategory category_;
};

}  // namespace ttg
