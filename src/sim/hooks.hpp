// Injectable yield hooks for deterministic simulation testing (DST).
//
// The concurrency primitives (structures/lifo.hpp, sync/rwlock.hpp,
// sync/bucket_lock.hpp, sync/bravo.hpp, runtime/parking_lot.*,
// termdet/termdet.cpp) mark every racy window with TTG_SIM_POINT("..").
// In the regular build the macro expands to nothing — no call, no atomic,
// no branch — so the Eq. (1) accounting and the release hot path are
// untouched. In the instrumented build (compiled with -DTTG_SIM, see the
// `ttg_sim` CMake target) each point yields control to the seeded
// sim::Runner, which owns every context switch and can therefore drive
// the primitives through adversarial interleavings and replay any of
// them from a single seed.
//
// This header is deliberately dependency-free so the primitives can
// include it unconditionally.
#pragma once

#if defined(TTG_SIM)

#include <cstdint>

namespace ttg::sim {
/// Defined in sim/sim.cpp. No-ops when the calling thread is not a
/// virtual thread of an active sim::Runner.
void preemption_point(const char* label) noexcept;
void notify_all() noexcept;
std::uint64_t virtual_now() noexcept;
}  // namespace ttg::sim

#define TTG_SIM_POINT(label) ::ttg::sim::preemption_point(label)
#define TTG_SIM_NOTIFY() ::ttg::sim::notify_all()

#else

#define TTG_SIM_POINT(label) ((void)0)
#define TTG_SIM_NOTIFY() ((void)0)

#endif
