// Schedule-exploration strategies for the DST runner (sim/sim.hpp).
//
// A strategy answers one question at every preemption point: "of the
// currently runnable virtual threads, who runs next?". All randomness
// comes from the seed handed to the strategy, so a (seed, strategy,
// bodies) triple replays the exact same interleaving.
//
// Two strategies are provided:
//  * RandomWalkStrategy — uniform choice among the runnable set. Good
//    general-purpose coverage; every interleaving has nonzero mass.
//  * PctStrategy — PCT (probabilistic concurrency testing, Burckhardt et
//    al., ASPLOS'10): random per-thread priorities, always run the
//    highest-priority runnable thread, and demote the running thread at
//    d-1 randomly chosen steps. For a bug of preemption depth d this
//    gives a 1/(n * k^(d-1)) detection probability per schedule — far
//    better than a random walk for rare "preempt exactly here" bugs.
//    Spin loops break PCT's finite-progress assumption (the spinner
//    stays highest-priority forever once the change points are spent),
//    so a thread scheduled many consecutive steps in a row — whatever
//    labels it cycles through — is demoted, deterministically, keeping
//    lock-acquire and wave-polling loops live.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.hpp"

namespace ttg::sim {

class Strategy {
 public:
  virtual ~Strategy() = default;

  /// Called once before the schedule starts. `num_vthreads` is the total
  /// thread count (runnable sets passed to pick() contain indices below
  /// it).
  virtual void begin(int num_vthreads) = 0;

  /// Picks the next thread to run from `runnable` (non-empty, ascending
  /// vthread indices).
  virtual int pick(const std::vector<int>& runnable) = 0;

  /// Feedback after every scheduling decision: `vthread` was scheduled
  /// while paused at `label`. Lets PCT place its change points and detect
  /// label-spinning threads.
  virtual void on_scheduled(int vthread, const char* label) = 0;
};

class RandomWalkStrategy final : public Strategy {
 public:
  explicit RandomWalkStrategy(std::uint64_t seed) : rng_(seed) {}

  void begin(int) override {}

  int pick(const std::vector<int>& runnable) override {
    return runnable[static_cast<std::size_t>(
        rng_.next_below(runnable.size()))];
  }

  void on_scheduled(int, const char*) override {}

 private:
  SplitMix64 rng_;
};

class PctStrategy final : public Strategy {
 public:
  /// `depth` is PCT's d: the number of priority change points is d-1.
  /// `expected_len` is the step horizon the change points are sampled
  /// from (PCT's k); schedules longer than it simply see no further
  /// changes.
  PctStrategy(std::uint64_t seed, int depth, std::uint64_t expected_len)
      : rng_(seed), depth_(depth < 1 ? 1 : depth),
        expected_len_(expected_len < 2 ? 2 : expected_len) {}

  void begin(int num_vthreads) override {
    step_ = 0;
    low_water_ = 0;
    last_vthread_ = -1;
    run_length_ = 0;
    // Random distinct initial priorities in [1, n], all above any value
    // a change point will ever assign (low_water_ goes negative).
    priority_.resize(static_cast<std::size_t>(num_vthreads));
    for (int i = 0; i < num_vthreads; ++i) priority_[i] = i + 1;
    for (int i = num_vthreads - 1; i > 0; --i) {
      std::swap(priority_[i],
                priority_[rng_.next_below(static_cast<std::uint64_t>(i) + 1)]);
    }
    change_points_.clear();
    for (int i = 0; i + 1 < depth_; ++i) {
      change_points_.push_back(1 + rng_.next_below(expected_len_ - 1));
    }
    std::sort(change_points_.begin(), change_points_.end());
  }

  int pick(const std::vector<int>& runnable) override {
    int best = runnable[0];
    for (int t : runnable) {
      if (priority_[t] > priority_[best]) best = t;
    }
    return best;
  }

  void on_scheduled(int vthread, const char* label) override {
    (void)label;
    ++step_;
    if (vthread == last_vthread_) {
      ++run_length_;
    } else {
      last_vthread_ = vthread;
      run_length_ = 1;
    }
    if (!change_points_.empty() && step_ >= change_points_.front()) {
      change_points_.erase(change_points_.begin());
      priority_[vthread] = --low_water_;
      run_length_ = 0;
      return;
    }
    // Spin demotion (see the header comment): a spin-wait loop may cycle
    // through several yield labels per iteration, so the detector counts
    // consecutive schedulings of one thread, not label repeats.
    if (run_length_ >= kSpinDemoteAfter) {
      priority_[vthread] = --low_water_;
      run_length_ = 0;
    }
  }

 private:
  static constexpr int kSpinDemoteAfter = 64;

  SplitMix64 rng_;
  const int depth_;
  const std::uint64_t expected_len_;
  std::uint64_t step_ = 0;
  int low_water_ = 0;
  int last_vthread_ = -1;
  int run_length_ = 0;
  std::vector<int> priority_;
  std::vector<std::uint64_t> change_points_;
};

}  // namespace ttg::sim
