// Deterministic simulation testing (DST) runner.
//
// The runner executes N "virtual threads" — real OS threads driven
// cooperatively so that exactly one ever runs at a time — and owns every
// context switch: a virtual thread only advances between two
// TTG_SIM_POINT() yield points (sim/hooks.hpp) when the runner schedules
// it. Scheduling decisions come from a seeded exploration strategy
// (sim/strategy.hpp), so the whole interleaving is a pure function of
// (seed, strategy, bodies) and any failure replays bit-identically from
// its seed. The runner records the interleaving as a trace of
// (vthread, yield label) steps and folds it into a FNV-1a hash that
// property tests use to assert replay identity.
//
// Blocking primitives participate through wait_until()/notify_all():
// a virtual thread that would sleep (ParkingLot::park) declares itself
// blocked on a predicate; the runner never schedules blocked threads,
// re-marking them runnable on notify_all(). If every live thread is
// blocked the runner reports a deadlock — which is exactly how the DST
// suite detects lost-wakeup bugs — and a step budget bounds livelock.
//
// OS threads are pooled across run() calls (dense runtime thread ids are
// never recycled, so spawning fresh threads per schedule would exhaust
// common/thread_id.hpp's kMaxThreads during a seed sweep).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/strategy.hpp"

namespace ttg::sim {

/// One scheduling decision: `vthread` was resumed from the yield point
/// `label` (a string literal inside the instrumented primitive, or
/// "start"/"exit" for body boundaries).
struct TraceEntry {
  int vthread;
  const char* label;
};

struct SimError : std::runtime_error {
  using std::runtime_error::runtime_error;
};
/// Every live virtual thread is blocked on a wait_until predicate.
struct DeadlockError : SimError {
  using SimError::SimError;
};
/// The schedule exceeded Options::max_steps without finishing.
struct LivelockError : SimError {
  using SimError::SimError;
};

enum class Explore {
  kRandomWalk,  ///< uniform choice among runnable threads
  kPct,         ///< PCT priority preemption (see strategy.hpp)
};

const char* to_string(Explore e) noexcept;

struct Options {
  std::uint64_t seed = 1;
  Explore explore = Explore::kRandomWalk;
  int pct_depth = 3;                    ///< PCT's d (d-1 change points)
  std::uint64_t pct_expected_len = 4096;  ///< PCT's k (step horizon)
  std::uint64_t max_steps = 200000;     ///< livelock bound per schedule
};

/// Content hash of a yield label (stable across processes; pointer
/// values are not).
std::uint64_t hash_label(const char* s) noexcept;

class Runner {
 public:
  explicit Runner(int num_vthreads);
  ~Runner();
  Runner(const Runner&) = delete;
  Runner& operator=(const Runner&) = delete;

  /// Executes one schedule: bodies[i] runs on virtual thread i (the
  /// vector size must equal num_vthreads). Returns the interleaving
  /// hash. Throws DeadlockError/LivelockError on the corresponding
  /// detection — after which the runner is poisoned (threads may be
  /// parked mid-body) and run() must not be called again. Exceptions
  /// thrown by a body are rethrown after the schedule drains.
  std::uint64_t run(const Options& opts,
                    std::vector<std::function<void()>> bodies);

  int num_vthreads() const noexcept { return num_vthreads_; }
  const std::vector<TraceEntry>& trace() const noexcept;
  std::uint64_t trace_hash() const noexcept;
  std::uint64_t steps() const noexcept;

  /// Writes the last `tail` trace entries (0 = all) human-readably.
  void dump_trace(std::ostream& os, std::size_t tail = 0) const;

  /// Shared state between the scheduler and the pooled OS threads;
  /// public only so sim.cpp's file-local helpers can name it.
  struct Impl;

 private:
  std::shared_ptr<Impl> impl_;  // shared with pool threads (see sim.cpp)
  const int num_vthreads_;
};

/// True when the calling thread is a virtual thread of a Runner that is
/// currently inside run().
bool active() noexcept;

/// Cooperative blocking: deschedules the calling virtual thread until
/// notify_all() is called AND `pred()` is true. Outside a simulation it
/// spins on the predicate with std::this_thread::yield().
void block_until(const char* label, const std::function<bool()>& pred);

template <typename Pred>
inline void wait_until(const char* label, Pred&& pred) {
  block_until(label, std::function<bool()>(std::forward<Pred>(pred)));
}

// preemption_point(), notify_all(), virtual_now() are declared in
// sim/hooks.hpp (kept dependency-free for the primitives); they are
// defined in sim.cpp.

}  // namespace ttg::sim
