#include "sim/sim.hpp"

#include <condition_variable>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "sim/hooks.hpp"

namespace ttg::sim {

namespace {

enum class State : std::uint8_t { kRunnable, kBlocked, kFinished };

struct Vt {
  int index = -1;
  State state = State::kFinished;
  const char* label = "start";
  std::function<void()> body;
  bool body_armed = false;  ///< run() assigned a body not yet started
  bool in_body = false;     ///< OS thread is between body entry and exit
  std::exception_ptr error;
  std::thread os;
};

}  // namespace

struct Runner::Impl {
  std::mutex m;
  std::condition_variable cv;
  /// Control token: index of the virtual thread allowed to run, or -1
  /// when the scheduler (the host thread inside run()) owns control.
  int running = -1;
  bool shutdown = false;
  bool schedule_active = false;
  bool poisoned = false;
  std::vector<std::unique_ptr<Vt>> threads;
  std::vector<TraceEntry> trace;
  std::uint64_t hash = 0;
  std::atomic<std::uint64_t> steps{0};
};

namespace {

thread_local Runner::Impl* t_impl = nullptr;
thread_local Vt* t_self = nullptr;

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

std::uint64_t fnv_byte(std::uint64_t h, unsigned char b) noexcept {
  return (h ^ b) * kFnvPrime;
}

std::uint64_t fnv_u64(std::uint64_t h, std::uint64_t v) noexcept {
  for (int i = 0; i < 8; ++i) h = fnv_byte(h, (v >> (8 * i)) & 0xff);
  return h;
}

/// Yields control back to the scheduler and blocks until rescheduled.
/// Must be called from a virtual thread.
void yield_self(Runner::Impl* impl, Vt* self, const char* label,
                State st) {
  std::unique_lock<std::mutex> lk(impl->m);
  self->label = label;
  self->state = st;
  impl->running = -1;
  impl->cv.notify_all();
  impl->cv.wait(lk, [&] { return impl->running == self->index; });
}

void thread_main(std::shared_ptr<Runner::Impl> impl, int index) {
  Vt* self = impl->threads[static_cast<std::size_t>(index)].get();
  t_impl = impl.get();
  t_self = self;
  std::unique_lock<std::mutex> lk(impl->m);
  for (;;) {
    impl->cv.wait(lk, [&] {
      return impl->shutdown ||
             (self->body_armed && impl->running == self->index);
    });
    if (impl->shutdown) return;
    self->body_armed = false;
    self->in_body = true;
    lk.unlock();
    try {
      self->body();
    } catch (...) {
      self->error = std::current_exception();
    }
    lk.lock();
    self->body = nullptr;
    self->in_body = false;
    self->state = State::kFinished;
    self->label = "exit";
    impl->running = -1;
    impl->cv.notify_all();
  }
}

std::unique_ptr<Strategy> make_strategy(const Options& opts) {
  switch (opts.explore) {
    case Explore::kPct:
      return std::make_unique<PctStrategy>(opts.seed, opts.pct_depth,
                                           opts.pct_expected_len);
    case Explore::kRandomWalk:
    default:
      return std::make_unique<RandomWalkStrategy>(opts.seed);
  }
}

}  // namespace

const char* to_string(Explore e) noexcept {
  return e == Explore::kPct ? "pct" : "random";
}

std::uint64_t hash_label(const char* s) noexcept {
  std::uint64_t h = kFnvOffset;
  for (; *s; ++s) h = fnv_byte(h, static_cast<unsigned char>(*s));
  return h;
}

Runner::Runner(int num_vthreads)
    : impl_(std::make_shared<Impl>()), num_vthreads_(num_vthreads) {
  impl_->threads.reserve(static_cast<std::size_t>(num_vthreads));
  for (int i = 0; i < num_vthreads; ++i) {
    auto vt = std::make_unique<Vt>();
    vt->index = i;
    impl_->threads.push_back(std::move(vt));
  }
  for (int i = 0; i < num_vthreads; ++i) {
    impl_->threads[static_cast<std::size_t>(i)]->os =
        std::thread(thread_main, impl_, i);
  }
}

Runner::~Runner() {
  {
    std::lock_guard<std::mutex> lk(impl_->m);
    impl_->shutdown = true;
  }
  impl_->cv.notify_all();
  for (auto& vt : impl_->threads) {
    // A thread parked mid-body (only possible after a deadlock/livelock
    // poisoned the runner) can never unwind cleanly — its resume path is
    // inside noexcept primitives. Detach it; it holds a shared_ptr to
    // Impl, so the memory stays valid until process exit.
    bool in_body;
    {
      std::lock_guard<std::mutex> lk(impl_->m);
      in_body = vt->in_body;
    }
    if (in_body) {
      vt->os.detach();
    } else if (vt->os.joinable()) {
      vt->os.join();
    }
  }
}

std::uint64_t Runner::run(const Options& opts,
                          std::vector<std::function<void()>> bodies) {
  if (static_cast<int>(bodies.size()) != num_vthreads_) {
    throw SimError("body count != virtual thread count");
  }
  if (impl_->poisoned) {
    throw SimError(
        "runner poisoned by a previous deadlock/livelock; create a fresh "
        "Runner");
  }
  auto strategy = make_strategy(opts);
  strategy->begin(num_vthreads_);

  std::unique_lock<std::mutex> lk(impl_->m);
  impl_->trace.clear();
  impl_->hash = kFnvOffset;
  impl_->steps.store(0, std::memory_order_relaxed);
  for (int i = 0; i < num_vthreads_; ++i) {
    Vt* vt = impl_->threads[static_cast<std::size_t>(i)].get();
    vt->state = State::kRunnable;
    vt->label = "start";
    vt->body = std::move(bodies[static_cast<std::size_t>(i)]);
    vt->body_armed = true;
    vt->error = nullptr;
  }
  impl_->schedule_active = true;

  std::vector<int> runnable;
  for (;;) {
    impl_->cv.wait(lk, [&] { return impl_->running == -1; });
    runnable.clear();
    int live = 0;
    for (int i = 0; i < num_vthreads_; ++i) {
      const Vt* vt = impl_->threads[static_cast<std::size_t>(i)].get();
      if (vt->state == State::kFinished) continue;
      ++live;
      if (vt->state == State::kRunnable) runnable.push_back(i);
    }
    if (live == 0) break;
    if (runnable.empty()) {
      std::ostringstream os;
      os << "deadlock: all " << live << " live virtual threads blocked (";
      for (int i = 0; i < num_vthreads_; ++i) {
        const Vt* vt = impl_->threads[static_cast<std::size_t>(i)].get();
        if (vt->state == State::kBlocked) {
          os << "vt" << i << "@" << vt->label << " ";
        }
      }
      os << ") after "
         << impl_->steps.load(std::memory_order_relaxed) << " steps";
      impl_->schedule_active = false;
      impl_->poisoned = true;
      throw DeadlockError(os.str());
    }
    const std::uint64_t step =
        impl_->steps.fetch_add(1, std::memory_order_relaxed) + 1;
    if (step > opts.max_steps) {
      impl_->schedule_active = false;
      impl_->poisoned = true;
      throw LivelockError("schedule exceeded max_steps=" +
                          std::to_string(opts.max_steps));
    }
    const int pick = strategy->pick(runnable);
    Vt* vt = impl_->threads[static_cast<std::size_t>(pick)].get();
    impl_->trace.push_back(TraceEntry{pick, vt->label});
    impl_->hash = fnv_u64(impl_->hash, static_cast<std::uint64_t>(pick));
    impl_->hash = fnv_u64(impl_->hash, hash_label(vt->label));
    strategy->on_scheduled(pick, vt->label);
    impl_->running = pick;
    impl_->cv.notify_all();
  }
  impl_->schedule_active = false;
  lk.unlock();

  for (const auto& vt : impl_->threads) {
    if (vt->error) std::rethrow_exception(vt->error);
  }
  return impl_->hash;
}

const std::vector<TraceEntry>& Runner::trace() const noexcept {
  return impl_->trace;
}

std::uint64_t Runner::trace_hash() const noexcept { return impl_->hash; }

std::uint64_t Runner::steps() const noexcept {
  return impl_->steps.load(std::memory_order_relaxed);
}

void Runner::dump_trace(std::ostream& os, std::size_t tail) const {
  const auto& tr = impl_->trace;
  std::size_t begin = 0;
  if (tail != 0 && tr.size() > tail) begin = tr.size() - tail;
  if (begin != 0) os << "... (" << begin << " earlier steps elided)\n";
  for (std::size_t i = begin; i < tr.size(); ++i) {
    os << "  step " << i << ": vt" << tr[i].vthread << " @ " << tr[i].label
       << "\n";
  }
}

bool active() noexcept {
  return t_self != nullptr && t_impl != nullptr && t_impl->schedule_active;
}

void preemption_point(const char* label) noexcept {
  Vt* self = t_self;
  if (self == nullptr || !t_impl->schedule_active) return;
  yield_self(t_impl, self, label, State::kRunnable);
}

void block_until(const char* label, const std::function<bool()>& pred) {
  Vt* self = t_self;
  if (self == nullptr || !t_impl->schedule_active) {
    while (!pred()) std::this_thread::yield();
    return;
  }
  while (!pred()) {
    yield_self(t_impl, self, label, State::kBlocked);
  }
}

void notify_all() noexcept {
  Runner::Impl* impl = t_impl;
  if (impl == nullptr) return;
  // The caller is the only running virtual thread (or a host thread
  // during setup); the scheduler is asleep waiting for running == -1, so
  // the lock is uncontended.
  std::lock_guard<std::mutex> lk(impl->m);
  for (auto& vt : impl->threads) {
    if (vt->state == State::kBlocked) vt->state = State::kRunnable;
  }
}

std::uint64_t virtual_now() noexcept {
  return t_impl != nullptr ? t_impl->steps.load(std::memory_order_relaxed)
                           : 0;
}

}  // namespace ttg::sim
