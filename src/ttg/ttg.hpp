// Umbrella header for the ttg-smalltask public API.
//
// Quickstart:
//   #include "ttg/ttg.hpp"
//
//   ttg::World world(ttg::Config::optimized());
//   ttg::Edge<int, double> e("chain");
//   auto tt = ttg::make_tt<int>(
//       [](const int& k, double& v, auto& outs) {
//         if (k < 100) ttg::send<0>(k + 1, std::move(v), outs);
//       },
//       ttg::edges(e), ttg::edges(e), "step", world);
//   world.execute();
//   tt->send_input<0>(0, 3.14);
//   world.fence();
#pragma once

#include "runtime/config.hpp"
#include "runtime/context.hpp"
#include "ttg/aggregator.hpp"
#include "ttg/edge.hpp"
#include "ttg/keys.hpp"
#include "ttg/reducing.hpp"
#include "ttg/runtime.hpp"
#include "ttg/tt.hpp"
#include "ttg/world.hpp"
