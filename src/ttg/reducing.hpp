// Reducing input terminals.
//
// TTG's third kind of input: where an aggregator terminal *collects* a
// per-key number of values (Sec. V-D1), a reducing terminal *folds* them
// into a single accumulator as they arrive — the task body then receives
// one plain value. Only one data copy stays alive per key: the first
// arrival's copy becomes the accumulator and later contributions are
// folded into it under the key's bucket lock and released immediately.
// This is the TTG input-reducer used for e.g. tree reductions and the
// norm accumulations in MRA-style applications.
#pragma once

#include <cstdint>
#include <functional>
#include <utility>

#include "ttg/edge.hpp"

namespace ttg {

template <typename Key, typename Value>
class ReducingEdge {
 public:
  using key_type = Key;
  using value_type = Value;
  using count_fn_type = std::function<std::int32_t(const Key&)>;
  /// Folds `in` into the accumulator `acc`.
  using reduce_fn_type = std::function<void(Value& acc, Value&& in)>;

  ReducingEdge(const Edge<Key, Value>& edge, reduce_fn_type reduce,
               count_fn_type count_fn)
      : edge_(edge),
        reduce_(std::move(reduce)),
        count_fn_(std::move(count_fn)) {}

  EdgeImpl<Key, Value>* impl() const { return edge_.impl(); }
  const count_fn_type& count_fn() const { return count_fn_; }
  const reduce_fn_type& reduce_fn() const { return reduce_; }

 private:
  Edge<Key, Value> edge_;
  reduce_fn_type reduce_;
  count_fn_type count_fn_;
};

/// Wraps an input edge with a reducer: the task for key k fires once
/// `count(k)` contributions have been folded into one value.
template <typename Key, typename Value, typename ReduceFn, typename CountFn>
ReducingEdge<Key, Value> make_reducing(const Edge<Key, Value>& edge,
                                       ReduceFn&& reduce,
                                       CountFn&& count_fn) {
  return ReducingEdge<Key, Value>(
      edge,
      typename ReducingEdge<Key, Value>::reduce_fn_type(
          std::forward<ReduceFn>(reduce)),
      typename ReducingEdge<Key, Value>::count_fn_type(
          std::forward<CountFn>(count_fn)));
}

template <typename Key, typename Value, typename ReduceFn>
ReducingEdge<Key, Value> make_reducing(const Edge<Key, Value>& edge,
                                       ReduceFn&& reduce,
                                       std::int32_t fixed_count) {
  return make_reducing(edge, std::forward<ReduceFn>(reduce),
                       [fixed_count](const Key&) { return fixed_count; });
}

}  // namespace ttg
