// Task IDs ("keys") and their hashing.
//
// "Tasks are uniquely identified through task IDs (or keys), which can be
// any user-provided data type, e.g., an integer or a tuple uniquely
// describing the task." Keys need operator== and a 64-bit hash; KeyHash
// provides good defaults for integers, pairs and tuples of integers, and
// anything with a std::hash specialization.
#pragma once

#include <cstdint>
#include <functional>
#include <tuple>
#include <type_traits>
#include <utility>

#include "common/rng.hpp"

namespace ttg {

/// Empty payload for control-flow-only edges (no data moves, only the
/// dependency). Equivalent to TTG's pure control flow / sendk().
struct Void {
  friend bool operator==(const Void&, const Void&) { return true; }
};

template <typename Key, typename Enable = void>
struct KeyHash {
  std::uint64_t operator()(const Key& k) const {
    return mix64(static_cast<std::uint64_t>(std::hash<Key>{}(k)));
  }
};

template <typename Key>
struct KeyHash<Key, std::enable_if_t<std::is_integral_v<Key>>> {
  std::uint64_t operator()(const Key& k) const {
    return mix64(static_cast<std::uint64_t>(k));
  }
};

template <typename A, typename B>
struct KeyHash<std::pair<A, B>> {
  std::uint64_t operator()(const std::pair<A, B>& k) const {
    return mix64(KeyHash<A>{}(k.first) * 0x9e3779b97f4a7c15ULL +
                 KeyHash<B>{}(k.second));
  }
};

template <typename... Ts>
struct KeyHash<std::tuple<Ts...>> {
  std::uint64_t operator()(const std::tuple<Ts...>& k) const {
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    std::apply(
        [&h](const Ts&... parts) {
          ((h = mix64(h * 0x9e3779b97f4a7c15ULL + KeyHash<Ts>{}(parts))),
           ...);
        },
        k);
    return h;
  }
};

}  // namespace ttg
