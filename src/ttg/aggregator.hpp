// Aggregator terminals (paper Sec. V-D1, Listing 1).
//
// An aggregator wraps an input edge so that a task fires only after a
// *number* of values has arrived on that edge — fixed, or computed per
// key by a callback (compute_num_inputs in the paper's Listing 1).
// Unlike the older streaming terminals, the aggregated values remain
// reference-counted DataCopy objects under TTG's management, "reducing
// the number of copies needed": tasks iterate the aggregate in place and
// may forward the copies without duplication.
#pragma once

#include <cstdint>
#include <functional>

#include "common/small_vector.hpp"
#include "runtime/data_copy.hpp"
#include "ttg/edge.hpp"

namespace ttg {

/// The view a task body receives for an aggregated input: an in-order-of-
/// arrival range of the collected values. Arrival order is unspecified
/// ("there is no guaranteed order of the inputs in the aggregator") —
/// bodies that need an order must sort, as Listing 1 does.
template <typename Value>
class Aggregator {
 public:
  explicit Aggregator(const SmallVector<DataCopy<Value>*, 4>& copies)
      : copies_(&copies) {}

  class const_iterator {
   public:
    const_iterator(DataCopy<Value>* const* p) : p_(p) {}
    const Value& operator*() const { return (*p_)->value(); }
    const_iterator& operator++() {
      ++p_;
      return *this;
    }
    bool operator!=(const const_iterator& o) const { return p_ != o.p_; }
    bool operator==(const const_iterator& o) const { return p_ == o.p_; }

   private:
    DataCopy<Value>* const* p_;
  };

  const_iterator begin() const { return const_iterator(copies_->data()); }
  const_iterator end() const {
    return const_iterator(copies_->data() + copies_->size());
  }
  std::size_t size() const { return copies_->size(); }

  /// Access by arrival index.
  const Value& operator[](std::size_t i) const { return (*copies_)[i]->value(); }

 private:
  const SmallVector<DataCopy<Value>*, 4>* copies_;
};

/// An Edge wrapped with an input-count policy; recognized by make_tt.
template <typename Key, typename Value>
class AggregatorEdge {
 public:
  using key_type = Key;
  using value_type = Value;
  using count_fn_type = std::function<std::int32_t(const Key&)>;

  AggregatorEdge(const Edge<Key, Value>& edge, count_fn_type count_fn)
      : edge_(edge), count_fn_(std::move(count_fn)) {}

  AggregatorEdge(const Edge<Key, Value>& edge, std::int32_t fixed_count)
      : edge_(edge),
        count_fn_([fixed_count](const Key&) { return fixed_count; }) {}

  EdgeImpl<Key, Value>* impl() const { return edge_.impl(); }
  const count_fn_type& count_fn() const { return count_fn_; }

 private:
  Edge<Key, Value> edge_;
  count_fn_type count_fn_;
};

/// Paper Listing 1: "the call to ttg::make_aggregator wraps an input
/// edge such that an aggregate of inputs will be passed to the task".
template <typename Key, typename Value, typename CountFn>
AggregatorEdge<Key, Value> make_aggregator(const Edge<Key, Value>& edge,
                                           CountFn&& count_fn) {
  return AggregatorEdge<Key, Value>(
      edge, typename AggregatorEdge<Key, Value>::count_fn_type(
                std::forward<CountFn>(count_fn)));
}

template <typename Key, typename Value>
AggregatorEdge<Key, Value> make_aggregator(const Edge<Key, Value>& edge,
                                           std::int32_t fixed_count) {
  return AggregatorEdge<Key, Value>(edge, fixed_count);
}

}  // namespace ttg
