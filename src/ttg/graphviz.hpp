// Graphviz (DOT) rendering of a template task graph — the static graph
// of TTs and edges (the paper's Fig. 2a), not the unrolled task DAG.
#pragma once

#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "ttg/tt.hpp"

namespace ttg {

/// Renders the template task graph spanned by `tts` as DOT. Producers
/// and consumers are matched by edge identity; edges whose producer or
/// consumer is outside `tts` get a dangling annotation (graph inputs /
/// outputs).
inline std::string graphviz(const std::vector<const TTBase*>& tts,
                            const std::string& graph_name = "ttg") {
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n";
  os << "  node [shape=box, style=rounded];\n";

  std::map<const TTBase*, std::string> node_ids;
  int next = 0;
  for (const TTBase* tt : tts) {
    const std::string id = "tt" + std::to_string(next++);
    node_ids[tt] = id;
    os << "  " << id << " [label=\"" << tt->name() << "\"];\n";
  }

  // edge identity -> producers / consumers among `tts`.
  std::map<const void*, std::vector<const TTBase*>> producers;
  std::map<const void*, std::vector<const TTBase*>> consumers;
  std::map<const void*, std::string> edge_names;
  for (const TTBase* tt : tts) {
    for (const auto& port : tt->output_ports()) {
      producers[port.edge].push_back(tt);
      edge_names[port.edge] = port.edge_name;
    }
    for (const auto& port : tt->input_ports()) {
      consumers[port.edge].push_back(tt);
      edge_names[port.edge] = port.edge_name;
    }
  }

  int ext = 0;
  for (const auto& [edge, name] : edge_names) {
    const auto& prod = producers[edge];
    const auto& cons = consumers[edge];
    if (prod.empty() && !cons.empty()) {
      // Graph input (seeded from outside).
      const std::string in_id = "in" + std::to_string(ext++);
      os << "  " << in_id << " [shape=plaintext, label=\"" << name
         << "\"];\n";
      for (const TTBase* c : cons) {
        os << "  " << in_id << " -> " << node_ids[c] << ";\n";
      }
      continue;
    }
    if (cons.empty() && !prod.empty()) {
      const std::string out_id = "out" + std::to_string(ext++);
      os << "  " << out_id << " [shape=plaintext, label=\"" << name
         << "\"];\n";
      for (const TTBase* p : prod) {
        os << "  " << node_ids[p] << " -> " << out_id << ";\n";
      }
      continue;
    }
    for (const TTBase* p : prod) {
      for (const TTBase* c : cons) {
        os << "  " << node_ids[p] << " -> " << node_ids[c] << " [label=\""
           << name << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

/// Renders a recorded GraphTemplate (ttg/graph_template.hpp) as DOT —
/// the *unrolled* task DAG of one epoch: one node per template slot
/// (labeled with its TT's name and slot id), one arrow per pre-resolved
/// SuccessorRef (labeled with the destination input terminal), and one
/// plaintext seed node per external delivery.
inline std::string graphviz(const GraphTemplate& tmpl,
                            const std::string& graph_name = "epoch") {
  std::ostringstream os;
  os << "digraph \"" << graph_name << "\" {\n";
  os << "  node [shape=box];\n";
  for (std::size_t i = 0; i < tmpl.num_slots(); ++i) {
    const TemplateSlot& s = tmpl.slot(i);
    os << "  s" << i << " [label=\"" << s.node->replay_name() << " #" << i
       << "\\nexpected=" << s.expected << "\"];\n";
  }
  for (std::size_t i = 0; i < tmpl.num_slots(); ++i) {
    const TemplateSlot& s = tmpl.slot(i);
    for (const SuccessorRef* r = tmpl.successors_begin(s);
         r != tmpl.successors_end(s); ++r) {
      os << "  s" << i << " -> s" << r->slot << " [label=\"in" << r->input
         << "\"];\n";
    }
  }
  int seed = 0;
  for (const SuccessorRef& r : tmpl.external_deliveries()) {
    const std::string id = "seed" + std::to_string(seed++);
    os << "  " << id << " [shape=plaintext, label=\"seed\"];\n";
    os << "  " << id << " -> s" << r.slot << " [label=\"in" << r.input
       << "\"];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace ttg
