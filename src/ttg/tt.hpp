// The Template Task (TT) — the core abstraction of TTG (paper Sec. II).
//
// A TT is a factory of task instances, connected to other TTs through
// typed edges. During execution the template task graph unfolds
// dynamically: sending a datum to a key (k) of a TT either creates a new
// pending task record (stored in the TT's scalable hash table) or
// completes an existing one; once all inputs of a record are satisfied
// the record *is* the task object and is handed to the scheduler.
//
// Hot-path accounting, matching Eq. (1) of the paper for a task with N_i
// reused-data inputs:
//   * record allocation + release:   2 pool atomics            (N_OD = 2)
//   * per input: bucket lock         1 atomic                  (N_HB = 1)
//               input counter        1 atomic                  (N_ID = 1)
//               copy retain+release  2 atomics                 (N_RC = 2)
//   * schedule push + pop:           2 atomics                 (N_S  = 2)
// Single-input, non-aggregated TTs skip the hash table entirely ("access
// to the hash table can be eliminated because a newly discovered task
// can be scheduled immediately", Sec. V-C).
#pragma once

#include <array>
#include <atomic>
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <functional>
#include <mutex>
#include <iterator>
#include <memory>
#include <string>
#include <tuple>
#include <typeinfo>
#include <vector>
#include <type_traits>
#include <utility>

#include "atomics/op_counter.hpp"
#include "atomics/ordering.hpp"
#include "comm/serde.hpp"
#include "common/small_vector.hpp"
#include "runtime/context.hpp"
#include "runtime/coroutine.hpp"
#include "runtime/data_copy.hpp"
#include "runtime/task.hpp"
#include "runtime/timer_wheel.hpp"
#include "runtime/trace.hpp"
#include "structures/hash_table.hpp"
#include "structures/mempool.hpp"
#include "ttg/aggregator.hpp"
#include "ttg/reducing.hpp"
#include "ttg/edge.hpp"
#include "ttg/keys.hpp"
#include "ttg/world.hpp"

namespace ttg {

/// Type-erased base of all TTs; useful for graph-wide bookkeeping, for
/// rendering the template task graph (ttg::graphviz), and — through the
/// ReplayNode interface — for record-and-replay epoch compilation
/// (ttg/graph_template.hpp).
class TTBase : public ReplayNode {
 public:
  virtual ~TTBase() = default;
  const std::string& name() const { return name_; }

  /// Cooperative-cancellation purge: discards every pending (partially
  /// satisfied) task record this TT holds, releasing their input copies,
  /// and returns how many were discarded. The base implementation owns
  /// no records. Called by World::wait() while a cancelled graph drains.
  virtual std::size_t purge_pending_tasks() { return 0; }

  /// A terminal's wiring: the identity of the edge it connects to plus
  /// the edge's display name.
  struct PortInfo {
    const void* edge;
    std::string edge_name;
  };

  const std::vector<PortInfo>& input_ports() const { return in_ports_; }
  const std::vector<PortInfo>& output_ports() const { return out_ports_; }

  /// Interned trace name (see runtime/trace.hpp); task instances carry it
  /// so their execution spans show up under the TT's name.
  std::uint32_t trace_name() const { return trace_name_; }

  /// Dense wire id assigned by World::register_node in registration
  /// order (SPMD construction makes ids agree across processes).
  std::uint32_t comm_node_id() const { return comm_node_id_; }
  void set_comm_node_id(std::uint32_t id) { comm_node_id_ = id; }

  /// Wire ingress: decodes a kDelivery payload (Serde key [+ value])
  /// addressed to `input` and feeds it to the local arrival path. Runs
  /// on a worker of the target rank; throws comm::WireError on a
  /// corrupt/truncated payload (captured as a task failure by the
  /// message drain). The base implementation aborts: only typed TTs
  /// can decode.
  virtual void deliver_wire(std::uint16_t input, comm::WireReader& reader) {
    (void)input;
    (void)reader;
    std::fprintf(stderr,
                 "ttg: node \"%s\" cannot decode wire deliveries\n",
                 name_.c_str());
    std::abort();
  }

  // ReplayNode surface: TT overrides every hook below; the aborting
  // defaults only fire if a node that never participated in a recording
  // shows up in a template, which is a wiring bug.
  const std::string& replay_name() const override { return name_; }
  std::size_t replay_rec_size() const override { replay_unsupported(); }
  std::size_t replay_rec_align() const override { replay_unsupported(); }
  TaskBase* replay_install(void*, const KeyStoreBase&, std::uint32_t,
                           std::int32_t, std::int32_t) override {
    replay_unsupported();
  }
  void replay_uninstall(TaskBase*) noexcept override {
    replay_unsupported();
  }
  void replay_discard_inputs(TaskBase*) noexcept override {
    replay_unsupported();
  }
  std::unique_ptr<KeyStoreBase> take_recorded_keys() override {
    replay_unsupported();
  }

 protected:
  [[noreturn]] void replay_unsupported() const {
    std::fprintf(stderr,
                 "ttg: node \"%s\" does not implement the replay "
                 "surface\n",
                 name_.c_str());
    std::abort();
  }
  explicit TTBase(std::string name)
      : name_(std::move(name)), trace_name_(trace::intern(name_)) {}
  std::string name_;
  std::uint32_t trace_name_;
  std::uint32_t comm_node_id_ = 0;
  std::vector<PortInfo> in_ports_;
  std::vector<PortInfo> out_ports_;
};

namespace detail {

/// Type-erased handle to one output terminal of a TT's `outs` tuple.
/// The type_info lets the free send functions verify (always, not just
/// in debug builds) that the caller-deduced Out<Key, Value> matches.
struct OutSlotInfo {
  const void* terminal = nullptr;
  const std::type_info* type = nullptr;
};

/// The task currently executing on this thread. run_impl() installs it
/// around the task body (and restores the previous frame: task inlining
/// nests executions), which is what lets ttg::send<i>(key, value) work
/// without an explicit `outs` argument — the same thread-local-caller
/// technique the reference TTG runtime uses.
struct ActiveTT {
  const TTBase* tt = nullptr;
  const OutSlotInfo* outs = nullptr;
  int num_outs = 0;
};

inline thread_local ActiveTT t_active_tt;

/// Resolves output terminal `i` of the active task as TerminalT, aborting
/// with a diagnostic on misuse. A hard check (not assert): benchmarks
/// build with NDEBUG, and a wrong cast here corrupts memory silently.
template <typename TerminalT>
const TerminalT& active_out_terminal(std::size_t i, const char* func) {
  const ActiveTT& frame = t_active_tt;
  if (frame.tt == nullptr) {
    std::fprintf(stderr,
                 "ttg::%s<%zu>: no task is executing on this thread; "
                 "outside a task body use TT::send_input/invoke or the "
                 "explicit-outs overload\n",
                 func, i);
    std::abort();
  }
  if (i >= static_cast<std::size_t>(frame.num_outs)) {
    std::fprintf(stderr,
                 "ttg::%s<%zu>: TT \"%s\" has only %d output terminal(s)\n",
                 func, i, frame.tt->name().c_str(), frame.num_outs);
    std::abort();
  }
  const OutSlotInfo& slot = frame.outs[i];
  if (*slot.type != typeid(TerminalT)) {
    std::fprintf(stderr,
                 "ttg::%s<%zu> on TT \"%s\": terminal type mismatch — "
                 "terminal is %s, call deduced %s (key/value types must "
                 "match the edge exactly)\n",
                 func, i, frame.tt->name().c_str(), slot.type->name(),
                 typeid(TerminalT).name());
    std::abort();
  }
  return *static_cast<const TerminalT*>(slot.terminal);
}

template <typename E>
struct input_trait;

template <typename K, typename V>
struct input_trait<Edge<K, V>> {
  using key_type = K;
  using value_type = V;
  static constexpr bool aggregated = false;
  static constexpr bool reduced = false;
  static constexpr bool is_void = std::is_same_v<V, Void>;
  using slot_type = DataCopy<V>*;
};

template <typename K, typename V>
struct input_trait<AggregatorEdge<K, V>> {
  using key_type = K;
  using value_type = V;
  static constexpr bool aggregated = true;
  static constexpr bool reduced = false;
  static constexpr bool is_void = false;
  using slot_type = SmallVector<DataCopy<V>*, 4>;
};

template <typename K, typename V>
struct input_trait<ReducingEdge<K, V>> {
  using key_type = K;
  using value_type = V;
  static constexpr bool aggregated = false;
  static constexpr bool reduced = true;
  static constexpr bool is_void = false;
  using slot_type = DataCopy<V>*;
};

template <typename E>
struct out_terminal_of;

template <typename K, typename V>
struct out_terminal_of<Edge<K, V>> {
  using type = Out<K, V>;
};

}  // namespace detail

template <typename Key, typename Fn, typename InEdgesTuple,
          typename OutEdgesTuple>
class TT;

template <typename Key, typename Fn, typename... InEdges,
          typename... OutEdges>
class TT<Key, Fn, std::tuple<InEdges...>, std::tuple<OutEdges...>> final
    : public TTBase {
 public:
  static constexpr std::size_t kNumIns = sizeof...(InEdges);
  static constexpr std::size_t kNumOuts = sizeof...(OutEdges);
  static_assert(kNumIns >= 1, "a TT needs at least one input edge");
  static_assert(kNumIns <= detail::TaskCopyContext::kMaxInputs);

  using Outs =
      std::tuple<typename detail::out_terminal_of<OutEdges>::type...>;
  template <std::size_t I>
  using trait =
      detail::input_trait<std::tuple_element_t<I, std::tuple<InEdges...>>>;
  template <std::size_t I>
  using value_t = typename trait<I>::value_type;
  /// The exact type input I arrives as in the task body (what run_impl
  /// passes): V& for plain inputs, const Void& for control tokens,
  /// Aggregator<V> for aggregated ones.
  template <std::size_t I>
  using arg_t = std::conditional_t<
      trait<I>::aggregated, Aggregator<value_t<I>>,
      std::conditional_t<trait<I>::is_void, const Void&, value_t<I>&>>;

  static constexpr bool kAnyAggregated =
      (detail::input_trait<InEdges>::aggregated || ...);
  static constexpr bool kAnyReduced =
      (detail::input_trait<InEdges>::reduced || ...);
  static constexpr bool kUsesHashTable =
      kNumIns > 1 || kAnyAggregated || kAnyReduced;

  /// Suspendable bodies: a body returning ttg::resumable (instead of
  /// void) may co_await ttg::yield / ttg::suspend_until / ttg::InputGate
  /// and is executed as a chain of segments (runtime/coroutine.hpp).
  /// Dispatched at compile time off the callable's return type, like
  /// upstream TTG's TTG_PROCESS_TT_OP_RETURN. See docs/coroutines.md.
  static constexpr bool kCoroutine =
      []<std::size_t... Is>(std::index_sequence<Is...>) {
        if constexpr (std::is_invocable_v<Fn&, const Key&, arg_t<Is>...,
                                          Outs&>) {
          return std::is_same_v<
              std::invoke_result_t<Fn&, const Key&, arg_t<Is>..., Outs&>,
              resumable>;
        } else if constexpr (std::is_invocable_v<Fn&, const Key&,
                                                 arg_t<Is>...>) {
          return std::is_same_v<
              std::invoke_result_t<Fn&, const Key&, arg_t<Is>...>,
              resumable>;
        } else {
          return false;
        }
      }(std::make_index_sequence<kNumIns>{});

  TT(Fn fn, const std::tuple<InEdges...>& ins,
     const std::tuple<OutEdges...>& outs, std::string name, World& world)
      : TTBase(std::move(name)),
        world_(&world),
        fn_(std::move(fn)),
        pool_(sizeof(TaskRec)),
        table_(/*initial_log2_buckets=*/8, /*fill_threshold=*/16,
               kMaxThreads, world.config().pending_table) {
    if constexpr (kCoroutine) {
      // Suspended frames resume through their home rank's engine; the
      // simulated multi-rank message path has no notion of a parked
      // continuation, so suspendable bodies are single-rank for now.
      // Hard check, not assert: benchmarks build with NDEBUG.
      if (world.num_ranks() != 1) {
        std::fprintf(stderr,
                     "ttg: TT \"%s\": suspendable (ttg::resumable) bodies "
                     "require a single-rank world\n",
                     name_.c_str());
        std::abort();
      }
    }
    if constexpr (kUsesHashTable) {
      if (table_.mode() == PendingTableMode::kDelegated) {
        // The pub-op pool is per-TT and only exists in delegated mode
        // (a MemoryPool's per-thread array is too big to carry idle).
        pub_pool_ = std::make_unique<MemoryPool>(sizeof(PubOp));
        table_.set_delegate(this, &TT::apply_pub_op);
      }
    }
    wire_inputs(ins, std::index_sequence_for<InEdges...>{});
    wire_outputs(outs, std::index_sequence_for<OutEdges...>{});
    world_->register_node(this);
  }

  ~TT() override { world_->unregister_node(this); }

  /// Routes tasks to ranks. Default: all local on single-rank worlds,
  /// hash(key) % nranks otherwise.
  void set_keymap(std::function<int(const Key&)> keymap) {
    keymap_ = std::move(keymap);
  }

  /// Assigns scheduling priorities to task instances (Sec. III-B: "the
  /// scheduler must support priorities in order to fully support the
  /// semantics of TTG").
  void set_priority_fn(std::function<std::int32_t(const Key&)> prio) {
    priority_fn_ = std::move(prio);
  }

  /// Value-aware priorities: computed from the key and the value arriving
  /// on input terminal 0 (e.g. prioritize small tentative distances in a
  /// shortest-path relaxation). Overrides set_priority_fn when the
  /// input-0 value is present.
  void set_priority_fn(
      std::function<std::int32_t(const Key&, const value_t<0>&)> prio) {
    priority_value_fn_ = std::move(prio);
  }

  Outs& outs() { return outs_; }
  World& world() { return *world_; }

  /// Injects a value into input terminal I from outside a task (graph
  /// seeding). The value is copied into a fresh DataCopy.
  template <std::size_t I, typename V>
  void send_input(const Key& key, V&& value) {
    static_assert(!trait<I>::is_void, "use sendk_input for Void inputs");
    input_arrived<I>(
        key, detail::make_send_copy<value_t<I>>(std::forward<V>(value)));
  }

  /// Injects a pure control-flow token into (Void-typed) input I.
  template <std::size_t I>
  void sendk_input(const Key& key) {
    static_assert(trait<I>::is_void, "sendk_input requires a Void input");
    input_arrived<I>(key, nullptr);
  }

  /// Convenience: satisfies all (non-aggregated) inputs of `key` at once.
  template <typename... Vs>
  void invoke(const Key& key, Vs&&... values) {
    static_assert(sizeof...(Vs) == kNumIns);
    static_assert(!kAnyAggregated && !kAnyReduced,
                  "invoke() cannot satisfy aggregator/reducing inputs");
    invoke_impl(key, std::index_sequence_for<Vs...>{},
                std::forward<Vs>(values)...);
  }

  /// Test hook: number of pending (partially satisfied) task records.
  std::size_t num_pending() { return table_.size(); }

  /// Discards every pending task record (cooperative cancellation),
  /// releasing held input copies. See TTBase::purge_pending_tasks().
  std::size_t purge_pending_tasks() override {
    return table_.drain_exclusive([this](HashItemBase* item) {
      discard(static_cast<TaskRec*>(item));
    });
  }

  /// Test hook: the TT's hash table, for structural assertions.
  ScalableHashTable& hash_table() { return table_; }

 private:
  /// Extra per-record state for suspendable bodies, folded into TaskRec
  /// only when the body can actually suspend so plain TTs' records stay
  /// small. Both fields are written by coro_prepare_suspend on the
  /// suspending worker *before* the continuation is published and read
  /// by whichever worker resumes (or whichever claimer destroys) it —
  /// the scheduler/event-source handoff orders the accesses.
  struct CoroFields {
    /// Suspended frame address (std::coroutine_handle<>::address()),
    /// non-null exactly while the task is parked between segments; the
    /// resume trampoline revives it, the cancel hook destroys it.
    void* coro_addr = nullptr;
    /// Snapshot of the thread-local input-copy registry carried across
    /// segments (rvalue sends keep transferring ownership after resume).
    detail::TaskCopyContext::Saved coro_copies{};
  };
  struct NoCoroFields {};

  /// A pending-task record and the eventual task object are one pooled
  /// allocation, like PaRSEC's task structs: while inputs accumulate it
  /// lives in the hash table (HashItemBase), once eligible it goes to
  /// the scheduler (TaskBase/LifoNode).
  struct TaskRec
      : TaskBase,
        HashItemBase,
        std::conditional_t<kCoroutine, CoroFields, NoCoroFields> {
    TT* tt;
    Key key;
    std::atomic<std::int32_t> satisfied{0};
    std::int32_t expected{0};
    /// Replay-path store guard for aggregated/reduced inputs: the
    /// dynamic path serializes those stores under the key's bucket
    /// lock, but replay has no buckets, so concurrent deliverers take
    /// this byte spinlock instead. Plain inputs stay lock-free (one
    /// writer per slot; publication rides the join counter's acq_rel).
    std::atomic<std::uint8_t> store_lock{0};
    std::tuple<typename detail::input_trait<InEdges>::slot_type...> slots{};

    TaskRec(TT* tt_, const Key& key_) : tt(tt_), key(key_) {}

    void lock_store() noexcept {
      atomic_ops::count(AtomicOpCategory::kBucketLock);
      while (store_lock.exchange(1, ord_acquire()) != 0) {
      }
    }
    void unlock_store() noexcept { store_lock.store(0, ord_release()); }
  };

  template <std::size_t I>
  struct Terminal final : InTerminalBase<Key, value_t<I>> {
    TT* tt = nullptr;
    void deliver(const Key& key, DataCopy<value_t<I>>* copy) override {
      tt->template input_arrived<I>(key, copy);
    }
  };

  template <typename Seq>
  struct terminals_tuple;
  template <std::size_t... Is>
  struct terminals_tuple<std::index_sequence<Is...>> {
    using type = std::tuple<Terminal<Is>...>;
  };
  using Terminals =
      typename terminals_tuple<std::make_index_sequence<kNumIns>>::type;

  template <std::size_t... Is>
  void wire_inputs(const std::tuple<InEdges...>& ins,
                   std::index_sequence<Is...>) {
    ((std::get<Is>(terminals_).tt = this), ...);
    (std::get<Is>(ins).impl()->consumers.push_back(&std::get<Is>(terminals_)),
     ...);
    // Capture aggregator count callbacks.
    (capture_count_fn<Is>(std::get<Is>(ins)), ...);
    (in_ports_.push_back(PortInfo{std::get<Is>(ins).impl(),
                                  std::get<Is>(ins).impl()->name}),
     ...);
  }

  template <std::size_t I, typename E>
  void capture_count_fn(const E& edge) {
    if constexpr (detail::input_trait<E>::aggregated ||
                  detail::input_trait<E>::reduced) {
      count_fns_[I] = edge.count_fn();
    }
    if constexpr (detail::input_trait<E>::reduced) {
      std::get<I>(reduce_fns_) = edge.reduce_fn();
    }
  }

  template <std::size_t... Is>
  void wire_outputs(const std::tuple<OutEdges...>& outs,
                    std::index_sequence<Is...>) {
    ((std::get<Is>(outs_) =
          typename detail::out_terminal_of<
              std::tuple_element_t<Is, std::tuple<OutEdges...>>>::type(
              std::get<Is>(outs).impl())),
     ...);
    ((out_slots_[Is] =
          detail::OutSlotInfo{&std::get<Is>(outs_),
                              &typeid(std::tuple_element_t<Is, Outs>)}),
     ...);
    (out_ports_.push_back(PortInfo{std::get<Is>(outs).impl(),
                                   std::get<Is>(outs).impl()->name}),
     ...);
  }

  int owner_rank(const Key& key) const {
    if (keymap_) return keymap_(key);
    const int nranks = world_->num_ranks();
    if (nranks == 1) return 0;
    return static_cast<int>(KeyHash<Key>{}(key) % nranks);
  }

  template <std::size_t I>
  void input_arrived(const Key& key, DataCopy<value_t<I>>* copy) {
    const int target = owner_rank(key);
    if (target != world_->current_rank()) {
      forward_remote<I>(target, key, copy);
      return;
    }
    local_arrived<I>(key, copy);
  }

  /// True when input I's key and value can cross a process boundary:
  /// both have a comm::Serde (trivially-copyable types, strings, vectors
  /// of serializable elements, or a user specialization).
  template <std::size_t I>
  static constexpr bool kWireable =
      comm::is_serializable_v<Key> &&
      (trait<I>::is_void || comm::is_serializable_v<value_t<I>>);

  /// Cross-rank transfer. Serializable inputs take the *wire* path —
  /// key and value are Serde-packed into a kDelivery frame posted over
  /// the World's transport (the loopback fabric in-process, TCP across
  /// processes) and decoded by deliver_wire on a worker of the target
  /// rank. Non-serializable inputs fall back to the closure path (a
  /// deep copy captured in the active message), which only exists
  /// inside one process: on a distributed world it aborts with a
  /// diagnostic naming the TT.
  template <std::size_t I>
  void forward_remote(int target, const Key& key,
                      DataCopy<value_t<I>>* copy) {
    if constexpr (kWireable<I>) {
      std::vector<std::byte> frame;
      comm::WireWriter w(frame);
      world_->wire_delivery_header(w, comm_node_id(),
                                   static_cast<std::uint16_t>(I));
      comm::Serde<Key>::pack(key, w);
      if constexpr (trait<I>::is_void) {
        (void)copy;
      } else {
        comm::Serde<value_t<I>>::pack(copy->value(), w);
        copy->release();  // the ref handed to us
      }
      world_->post_wire(target, std::move(frame));
    } else if (world_->distributed()) {
      std::fprintf(stderr,
                   "ttg: TT \"%s\": cross-process send on input %zu needs "
                   "a comm::Serde specialization for its key/value type\n",
                   name_.c_str(), I);
      std::abort();
    } else if constexpr (trait<I>::is_void) {
      (void)copy;
      world_->post_message(target, [this, key] {
        this->template local_arrived<I>(key, nullptr);
      });
    } else {
      value_t<I> value = copy->value();  // "serialization"
      copy->release();                   // the ref handed to us
      world_->post_message(
          target, [this, key, value = std::move(value)]() mutable {
            this->template local_arrived<I>(
                key, make_copy<value_t<I>>(std::move(value)));
          });
    }
  }

  /// Wire ingress (TTBase override): decode input `input`'s key/value
  /// from a kDelivery payload and run the normal local arrival path.
  void deliver_wire(std::uint16_t input, comm::WireReader& reader) override {
    const bool dispatched = [&]<std::size_t... Is>(
                                std::index_sequence<Is...>) {
      return ((input == Is ? (this->template deliver_wire_one<Is>(reader),
                              true)
                           : false) ||
              ...);
    }(std::make_index_sequence<kNumIns>{});
    if (!dispatched) {
      throw comm::WireError("wire delivery to out-of-range input " +
                            std::to_string(input) + " of TT \"" + name_ +
                            "\"");
    }
  }

  template <std::size_t I>
  void deliver_wire_one(comm::WireReader& reader) {
    if constexpr (kWireable<I>) {
      Key key = comm::Serde<Key>::unpack(reader);
      if constexpr (trait<I>::is_void) {
        reader.expect_consumed();
        local_arrived<I>(key, nullptr);
      } else {
        value_t<I> value = comm::Serde<value_t<I>>::unpack(reader);
        reader.expect_consumed();
        local_arrived<I>(key, make_copy<value_t<I>>(std::move(value)));
      }
    } else {
      // A frame can only address this input if a peer packed one, which
      // the sender-side gate above makes impossible — anything landing
      // here is corrupt or from a mismatched (non-SPMD) graph.
      throw comm::WireError("wire delivery to non-serializable input of "
                            "TT \"" +
                            name_ + "\"");
    }
  }

  template <std::size_t I>
  void local_arrived(const Key& key, DataCopy<value_t<I>>* copy) {
    const EpochMode mode = world_->epoch_mode();
    if (mode == EpochMode::kReplay) {
      // Replayed epochs resolve the destination from the recorded
      // successor cursor — before everything else, including the
      // cancellation drop: the cursor must advance on every delivery or
      // later deliveries of this producer would mis-align.
      replay_arrived<I>(key, copy);
      return;
    }
    if (world_->cancelled()) {
      // Cooperative cancellation at send/broadcast ingress: the datum is
      // dropped before any record is created or discovery accounted.
      if (copy != nullptr) copy->release();
      return;
    }
    if constexpr (kCoroutine) {
      if (mode == EpochMode::kRecording) {
        // A recorded epoch replays a *fixed* task set with cursor-driven
        // sends; a body that can suspend (and resume after arbitrary
        // interleavings, or be cancelled mid-park) has no such fixed
        // shape. Reject at delivery time — before any record, lock or
        // discovery — so recording fails cleanly and loudly.
        if (copy != nullptr) copy->release();
        throw ReplayDiverged(
            "recording: TT \"" + name_ +
            "\" has a suspendable (ttg::resumable) body; record-and-"
            "replay epochs support only plain task bodies");
      }
    }
    Context& ctx = world_->context(world_->current_rank());
    if constexpr (!kUsesHashTable) {
      // Single-input fast path: the task is born eligible.
      TaskRec* rec = create_record(ctx, key, mode);
      apply_value_priority<I>(*rec, key, copy);
      std::get<I>(rec->slots) = copy;
      if (mode == EpochMode::kRecording) record_delivery<I>(rec);
      ctx.submit(rec, SubmitHint::kMayInline);
      return;
    } else {
      const std::uint64_t h = KeyHash<Key>{}(key);
      // Delegated pending table: never spin on a busy bucket — publish
      // the delivery for the lock holder to apply. Recording epochs stay
      // on the lock path: record_delivery reads the *publisher's*
      // thread-local RecordFrame, which a combiner would not have.
      if (mode == EpochMode::kDynamic && table_.delegated()) {
        delegated_arrived<I>(ctx, h, key, copy);
        return;
      }
      auto acc = table_.lock_key(h);
      const auto key_eq = [&key](const HashItemBase* item) {
        return static_cast<const TaskRec*>(item)->key == key;
      };
      TaskRec* rec;
      if (HashItemBase* item = acc.find(key_eq); item != nullptr) {
        rec = static_cast<TaskRec*>(item);
      } else {
        rec = create_record(ctx, key, mode);
        rec->hash = h;
        rec->expected = compute_expected(key);
        acc.insert(rec);
      }
      apply_value_priority<I>(*rec, key, copy);
      store_input<I>(*rec, copy);
      // Record before the counter update: if this delivery completes the
      // task and it executes inline, its own sends must append *after*
      // this one in the producer's successor order.
      if (mode == EpochMode::kRecording) record_delivery<I>(rec);
      atomic_ops::count(AtomicOpCategory::kInputCount);
      const std::int32_t sat =
          rec->satisfied.fetch_add(1, ord_relaxed()) + 1;
      if (sat == rec->expected) {
        acc.remove(key_eq);
        acc.release();
        ctx.submit(rec, SubmitHint::kMayInline);
      }
    }
  }

  /// One queued delegated delivery. Type-erased over the input index:
  /// `copy` is the DataCopy<value_t<I>>* and `apply` the I-specific
  /// thunk that casts it back. Allocated from pub_pool_ by the
  /// publisher, reclaimed by whichever thread applies it.
  struct PubOp : ScalableHashTable::PubNode {
    PubOp(std::uint64_t h, const Key& k, void* c,
          void (*a)(TT*, ScalableHashTable::Accessor&, PubOp*))
        : hash(h), key(k), copy(c), apply(a) {}
    std::uint64_t hash;
    Key key;
    void* copy;
    void (*apply)(TT*, ScalableHashTable::Accessor&, PubOp*);
  };

  /// ScalableHashTable::ApplyFn dispatcher (combiner drain).
  static void apply_pub_op(void* owner, ScalableHashTable::Accessor& acc,
                           ScalableHashTable::PubNode* node) {
    auto* tt = static_cast<TT*>(owner);
    auto* op = static_cast<PubOp*>(node);
    op->apply(tt, acc, op);
  }

  template <std::size_t I>
  static void apply_pub_thunk(TT* tt, ScalableHashTable::Accessor& acc,
                              PubOp* op) {
    Context& ctx = tt->world_->context(tt->world_->current_rank());
    // The publish accounted the queued delivery as discovered work;
    // balance it now that the delivery lands in a record (which was
    // itself accounted by create_record if fresh).
    ctx.on_discovered(-1);
    tt->template apply_delivery<I>(
        ctx, acc, op->hash, op->key,
        static_cast<DataCopy<value_t<I>>*>(op->copy));
    op->~PubOp();
    tt->pub_pool_->deallocate(op);
  }

  /// Dynamic-mode delivery under the delegated pending table: try the
  /// bucket once; apply in place on success, publish on contention.
  /// Ready records surface on the accessor's deferred list and are
  /// submitted only after the bucket is released — kMayInline may
  /// re-enter this table.
  template <std::size_t I>
  void delegated_arrived(Context& ctx, std::uint64_t h, const Key& key,
                         DataCopy<value_t<I>>* copy) {
    auto acc = table_.lock_key_delegated(h);
    if (acc.owns_bucket()) {
      apply_delivery<I>(ctx, acc, h, key, copy);
    } else {
      void* mem = pub_pool_->allocate();
      auto* op = new (mem) PubOp(h, key, copy, &TT::apply_pub_thunk<I>);
      // A queued delivery is pending work: without this, the graph
      // could converge between our publish and the combiner's apply
      // (the record the op would create/complete does not exist yet).
      ctx.on_discovered(1);
      acc.publish(op);
      // publish() may have acquired the bucket (the holder unlocked
      // mid-protocol); then release() below drains and applies our op.
    }
    acc.release();
    for (HashItemBase* item = acc.take_ready(); item != nullptr;) {
      HashItemBase* next = item->next;
      item->next = nullptr;
      ctx.submit(static_cast<TaskRec*>(item), SubmitHint::kMayInline);
      item = next;
    }
  }

  /// The bucket-locked portion of a dynamic delivery, shared by the
  /// direct (lock acquired) and combiner (queued op) paths. The caller
  /// holds `acc`'s bucket; completion defers submission via defer_ready.
  template <std::size_t I>
  void apply_delivery(Context& ctx, ScalableHashTable::Accessor& acc,
                      std::uint64_t h, const Key& key,
                      DataCopy<value_t<I>>* copy) {
    const auto key_eq = [&key](const HashItemBase* item) {
      return static_cast<const TaskRec*>(item)->key == key;
    };
    TaskRec* rec;
    if (HashItemBase* item = acc.find_hash(h, key_eq); item != nullptr) {
      rec = static_cast<TaskRec*>(item);
    } else {
      rec = create_record(ctx, key, EpochMode::kDynamic);
      rec->hash = h;
      rec->expected = compute_expected(key);
      acc.insert(rec);
    }
    apply_value_priority<I>(*rec, key, copy);
    store_input<I>(*rec, copy);
    atomic_ops::count(AtomicOpCategory::kInputCount);
    const std::int32_t sat =
        rec->satisfied.fetch_add(1, ord_relaxed()) + 1;
    if (sat == rec->expected) {
      acc.remove_hash(h, key_eq);
      acc.defer_ready(rec);
    }
  }

  /// Appends this delivery to the recording producer's successor list
  /// (or to the template's external-seed list when performed outside a
  /// task body), in send order — the order replay's cursor consumes.
  template <std::size_t I>
  void record_delivery(TaskRec* rec) {
    constexpr std::size_t kCopyBytes =
        trait<I>::is_void ? 0 : sizeof(DataCopy<value_t<I>>);
    GraphRecorder* recorder = world_->recorder();
    const detail::RecordFrame& frame = detail::t_record_frame;
    const std::uint32_t producer = frame.recorder == recorder
                                       ? frame.slot
                                       : GraphRecorder::kExternalProducer;
    recorder->add_delivery(producer,
                           static_cast<std::uint32_t>(rec->slot_id),
                           static_cast<std::uint16_t>(I), kCopyBytes);
  }

  template <std::size_t I>
  void store_input(TaskRec& rec, DataCopy<value_t<I>>* copy) {
    if constexpr (trait<I>::aggregated) {
      std::get<I>(rec.slots).push_back(copy);
    } else if constexpr (trait<I>::reduced) {
      // Fold under the key's bucket lock: the first arrival's copy is
      // the accumulator, later contributions are folded and released.
      DataCopy<value_t<I>>*& slot = std::get<I>(rec.slots);
      if (slot == nullptr) {
        slot = copy;
      } else {
        std::get<I>(reduce_fns_)(slot->value(), std::move(copy->value()));
        copy->release();
      }
    } else {
      assert(std::get<I>(rec.slots) == nullptr &&
             "duplicate input for the same task (key reuse?)");
      std::get<I>(rec.slots) = copy;
    }
  }

  template <std::size_t I>
  void apply_value_priority(TaskRec& rec, const Key& key,
                            DataCopy<value_t<I>>* copy) {
    if constexpr (I == 0 && !trait<0>::is_void) {
      if (priority_value_fn_ && copy != nullptr) {
        rec.priority =
            priority_value_fn_(key, copy->value()) + world_->priority_boost();
      }
    }
  }

  TaskRec* create_record(Context& ctx, const Key& key, EpochMode mode) {
    void* mem = pool_.allocate();
    auto* rec = new (mem) TaskRec(this, key);
    rec->execute = &TT::execute_task;
    rec->cancel = &TT::cancel_task;
    rec->pool = &pool_;
    rec->trace_name = trace_name_;
    // Tenant worlds: tag the task so the engine routes completion/
    // cancellation accounting and fault scoping to this World, and bias
    // its priority by the World's class (docs/serving.md).
    rec->tenant = world_->tenant();
    rec->priority =
        (priority_fn_ ? priority_fn_(key) : 0) + world_->priority_boost();
    if (mode == EpochMode::kRecording) {
      // Register the task as a template slot: key into this TT's
      // recorded-key store, slot into the epoch recorder. The priority
      // captured here is the key-based one — value-aware priorities are
      // a dynamic-path feature and are frozen at record time.
      std::uint32_t key_index;
      {
        std::lock_guard<std::mutex> lock(recording_mutex_);
        key_index = static_cast<std::uint32_t>(recording_keys_.size());
        recording_keys_.push_back(key);
      }
      rec->slot_id = static_cast<std::int32_t>(
          world_->recorder()->add_slot(this, key_index, rec->priority));
    }
    // The task is now *discovered*; account before it can be scheduled
    // (and before it becomes findable in the hash table).
    ctx.on_discovered(1);
    return rec;
  }

  std::int32_t compute_expected(const Key& key) const {
    std::int32_t n = 0;
    [&]<std::size_t... Is>(std::index_sequence<Is...>) {
      ((n += (trait<Is>::aggregated || trait<Is>::reduced)
                 ? count_fns_[Is](key)
                 : 1),
       ...);
    }(std::make_index_sequence<kNumIns>{});
    return n;
  }

  static void execute_task(TaskBase* base, Worker& worker) {
    (void)worker;
    auto* rec = static_cast<TaskRec*>(base);
    rec->tt->run(rec);
  }

  /// TaskBase::cancel hook: releases a record without running it.
  static void cancel_task(TaskBase* base) {
    auto* rec = static_cast<TaskRec*>(base);
    rec->tt->discard(rec);
  }

  /// Releases a (possibly partially satisfied) record's input copies,
  /// destroys it, and returns its storage to the pool.
  void discard(TaskRec* rec) {
    if constexpr (kCoroutine) {
      // A record claimed by cancellation while parked still owns its
      // suspended frame: destroy it at the suspension point (running
      // the frame's destructors, exactly once — every claim path is
      // exclusive) without ever resuming the body onto a dead World.
      if (rec->coro_addr != nullptr) {
        resumable::handle_type::from_address(rec->coro_addr).destroy();
        rec->coro_addr = nullptr;
      }
    }
    [this, rec]<std::size_t... Is>(std::index_sequence<Is...>) {
      (discard_input<Is>(*rec), ...);
    }(std::make_index_sequence<kNumIns>{});
    rec->~TaskRec();
    pool_.deallocate(rec);
  }

  /// Like release_input but tolerant of unsatisfied (null/empty) slots.
  template <std::size_t I>
  void discard_input(TaskRec& rec) {
    if constexpr (trait<I>::aggregated) {
      for (DataCopy<value_t<I>>* c : std::get<I>(rec.slots)) {
        if (c != nullptr) c->release();
      }
    } else if constexpr (!trait<I>::is_void) {
      if (DataCopy<value_t<I>>* c = std::get<I>(rec.slots); c != nullptr) {
        c->release();
      }
    }
  }

  void run(TaskRec* rec) {
    if constexpr (kCoroutine) {
      run_coro_first(rec, std::make_index_sequence<kNumIns>{});
    } else {
      run_impl(rec, std::make_index_sequence<kNumIns>{});
    }
  }

  template <std::size_t... Is>
  void run_impl(TaskRec* rec, std::index_sequence<Is...>) {
    // Save the caller's input-copy registrations and active-TT frame:
    // with task inlining a task can execute in the middle of its
    // producer's sends, and the producer's state must survive the
    // nested execution.
    detail::TaskCopyContext::Saved saved;
    detail::t_task_copies.save_to(saved);
    detail::t_task_copies.clear();
    detail::ActiveTT saved_frame = detail::t_active_tt;
    detail::t_active_tt = {this, out_slots_.data(),
                           static_cast<int>(kNumOuts)};
    // Recording epochs: identify this task as the producer of its sends
    // (slot_id >= 0 only while recording, so the dynamic path pays
    // nothing here). Saved/restored — inlined tasks nest.
    detail::RecordFrame saved_record;
    if (rec->slot_id >= 0) {
      saved_record = detail::t_record_frame;
      detail::t_record_frame = {world_->recorder(),
                                static_cast<std::uint32_t>(rec->slot_id)};
    }
    // Register input copies so rvalue sends can move them along.
    (register_input<Is>(*rec), ...);
    // Task bodies may take the trailing `outs` tuple (the explicit
    // low-level spelling) or omit it and use the free ttg::send<i>.
    // A throwing body gets the same cleanup as a returning one — frames
    // restored, all inputs released, record destroyed and pooled — and
    // the exception propagates to the worker's failure capture.
    try {
      if constexpr (std::is_invocable_v<Fn&, const Key&,
                                        decltype(make_arg<Is>(*rec))...,
                                        Outs&>) {
        fn_(static_cast<const Key&>(rec->key), make_arg<Is>(*rec)...,
            outs_);
      } else {
        fn_(static_cast<const Key&>(rec->key), make_arg<Is>(*rec)...);
      }
    } catch (...) {
      if (rec->slot_id >= 0) detail::t_record_frame = saved_record;
      detail::t_active_tt = saved_frame;
      detail::t_task_copies.restore(saved);
      (release_input<Is>(*rec), ...);
      rec->~TaskRec();
      pool_.deallocate(rec);
      throw;
    }
    if (rec->slot_id >= 0) detail::t_record_frame = saved_record;
    detail::t_active_tt = saved_frame;
    detail::t_task_copies.restore(saved);
    (release_input<Is>(*rec), ...);
    rec->~TaskRec();
    pool_.deallocate(rec);
  }

  template <std::size_t I>
  void register_input(TaskRec& rec) {
    if constexpr (!trait<I>::aggregated && !trait<I>::is_void) {
      DataCopy<value_t<I>>* copy = std::get<I>(rec.slots);
      detail::t_task_copies.register_input(&copy->value(), copy);
    }
  }

  template <std::size_t I>
  decltype(auto) make_arg(TaskRec& rec) {
    if constexpr (trait<I>::aggregated) {
      return Aggregator<value_t<I>>(std::get<I>(rec.slots));
    } else if constexpr (trait<I>::is_void) {
      static const Void kVoid{};
      return (kVoid);  // const Void&
    } else {
      return (std::get<I>(rec.slots)->value());  // value_t<I>&
    }
  }

  template <std::size_t I>
  void release_input(TaskRec& rec) {
    if constexpr (trait<I>::aggregated) {
      for (DataCopy<value_t<I>>* c : std::get<I>(rec.slots)) c->release();
    } else if constexpr (!trait<I>::is_void) {
      std::get<I>(rec.slots)->release();
    }
  }

  // --- Suspendable (coroutine) task bodies — see docs/coroutines.md. --
  //
  // A ttg::resumable body executes as a chain of *segments*: the first
  // runs eagerly on the worker that popped the task (run_coro_first),
  // each co_await that actually parks ends the segment, and every
  // resume runs the next segment through the normal scheduler path
  // (resume_task — the task record doubles as the continuation; its
  // execute pointer is swapped to the trampoline *before* publication).
  //
  // Census discipline (Eq. 1): the worker epilogue retires every
  // segment as one completion, and coro_prepare_suspend accounts every
  // suspension as one new discovery first — so a parked task holds the
  // owning World's pending count at >= 1 (discovered-but-not-complete
  // for termination detection) and the books balance to
  //   discoveries = 1 (create_record) + S,  completions = S + 1
  // for a body with S suspensions, whatever interleaving resumes them.

  /// coro::Host::prepare_suspend — runs on the suspending worker inside
  /// await_suspend, strictly before the continuation is published to
  /// any event source (scheduler, timer wheel, InputGate). After this
  /// returns, any other worker may legally pop, resume, finish and free
  /// the record, so the executing segment must not touch it again.
  static void coro_prepare_suspend(coro::Host& host, void* coro_addr) {
    auto* tt = static_cast<TT*>(host.backend);
    auto* rec = static_cast<TaskRec*>(host.task);
    // Snapshot the input-copy registry: sends after resume (possibly on
    // a different worker) keep the rvalue ownership-transfer semantics.
    detail::t_task_copies.save_to(rec->coro_copies);
    rec->coro_addr = coro_addr;
    rec->execute = &TT::resume_task;
    // The continuation is newly discovered work: the worker epilogue
    // retires the finishing segment as a completion, and without this
    // +1 the World's census would hit zero while the frame sleeps.
    tt->world_->context(0).on_discovered(1);
    coro::detail::t_suspend_pending = true;
  }

  /// coro::Host::submit — hands a claimed continuation to the engine as
  /// a ready task. The engine's ingress drops it as a cancelled
  /// completion (via cancel_task -> discard, destroying the parked
  /// frame) if the owning World died while it was parked.
  static void coro_submit(coro::Host& host) {
    auto* tt = static_cast<TT*>(host.backend);
    tt->world_->context(0).submit(host.task, SubmitHint::kDeferred);
  }

  /// TaskBase::execute for parked continuations (installed by
  /// coro_prepare_suspend); runs the next segment.
  static void resume_task(TaskBase* base, Worker& worker) {
    (void)worker;
    auto* rec = static_cast<TaskRec*>(base);
    rec->tt->run_coro_resume(rec, std::make_index_sequence<kNumIns>{});
  }

  /// First segment. Mirrors run_impl's frame discipline (save/clear/
  /// restore of the copy registry and active-TT frame; inlined tasks
  /// nest) plus the suspension protocol: t_suspend_pending tells us —
  /// after the body call returns — whether the frame parked. It is the
  /// ONLY thing we may consult: handle.done() would dereference a frame
  /// that another worker may already be running or destroying.
  template <std::size_t... Is>
  void run_coro_first(TaskRec* rec, std::index_sequence<Is...>) {
    detail::TaskCopyContext::Saved saved;
    detail::t_task_copies.save_to(saved);
    detail::t_task_copies.clear();
    detail::ActiveTT saved_frame = detail::t_active_tt;
    detail::t_active_tt = {this, out_slots_.data(),
                           static_cast<int>(kNumOuts)};
    (register_input<Is>(*rec), ...);
    coro::Host host{};
    host.task = rec;
    host.timers = &world_->context(0).engine().timers();
    host.prepare_suspend = &TT::coro_prepare_suspend;
    host.submit = &TT::coro_submit;
    host.backend = this;
    const bool saved_pending = coro::detail::t_suspend_pending;
    coro::detail::t_suspend_pending = false;
    resumable body{};
    try {
      coro::InstallGuard guard(&host);
      if constexpr (std::is_invocable_v<Fn&, const Key&,
                                        decltype(make_arg<Is>(*rec))...,
                                        Outs&>) {
        body = fn_(static_cast<const Key&>(rec->key), make_arg<Is>(*rec)...,
                   outs_);
      } else {
        body = fn_(static_cast<const Key&>(rec->key), make_arg<Is>(*rec)...);
      }
    } catch (...) {
      // Frame construction failed (allocation, promise ctor) — the body
      // never started. Same cleanup as a throwing plain body; the
      // exception propagates to the worker's failure capture. Body
      // exceptions never reach here: the promise captures them.
      coro::detail::t_suspend_pending = saved_pending;
      detail::t_active_tt = saved_frame;
      detail::t_task_copies.restore(saved);
      (release_input<Is>(*rec), ...);
      rec->~TaskRec();
      pool_.deallocate(rec);
      throw;
    }
    const bool suspended = coro::detail::t_suspend_pending;
    coro::detail::t_suspend_pending = saved_pending;
    detail::t_active_tt = saved_frame;
    detail::t_task_copies.restore(saved);
    if (suspended) {
      // Published: the record and frame belong to the event source (or
      // already to another worker). The epilogue in Worker::run_one
      // retires this segment; the +1 from coro_prepare_suspend keeps
      // the World pending.
      return;
    }
    finish_coro(rec, body.handle(), std::index_sequence<Is...>{});
  }

  /// Resume segment: reinstalls the frames captured at suspension and
  /// drives the coroutine until it parks again or completes.
  template <std::size_t... Is>
  void run_coro_resume(TaskRec* rec, std::index_sequence<Is...>) {
    auto h = resumable::handle_type::from_address(rec->coro_addr);
    // Between segments the non-null coro_addr marks "parked" for the
    // cancellation paths; while a segment runs we own the record
    // exclusively, and a further suspension re-arms it in prepare.
    rec->coro_addr = nullptr;
    detail::TaskCopyContext::Saved saved;
    detail::t_task_copies.save_to(saved);
    detail::t_task_copies.restore(rec->coro_copies);
    detail::ActiveTT saved_frame = detail::t_active_tt;
    detail::t_active_tt = {this, out_slots_.data(),
                           static_cast<int>(kNumOuts)};
    const bool saved_pending = coro::detail::t_suspend_pending;
    coro::detail::t_suspend_pending = false;
    h.resume();  // body exceptions land in the promise, never here
    const bool suspended = coro::detail::t_suspend_pending;
    coro::detail::t_suspend_pending = saved_pending;
    detail::t_active_tt = saved_frame;
    detail::t_task_copies.restore(saved);
    if (suspended) return;
    finish_coro(rec, h, std::index_sequence<Is...>{});
  }

  /// The frame reached final_suspend on this worker: collect the
  /// captured error, destroy the frame, tear down the record exactly
  /// like a completed plain task, and rethrow into the worker's failure
  /// capture if the body threw.
  template <std::size_t... Is>
  void finish_coro(TaskRec* rec, resumable::handle_type h,
                   std::index_sequence<Is...>) {
    coro::mark_final_resume();
    std::exception_ptr error = h.promise().error;
    h.destroy();
    (release_input<Is>(*rec), ...);
    rec->~TaskRec();
    pool_.deallocate(rec);
    if (error) std::rethrow_exception(error);
  }

  // --- Record-and-replay path (see ttg/graph_template.hpp). -----------
  //
  // Replay deliveries resolve their destination from the producer's
  // recorded successor cursor instead of hashing the key: the n-th send
  // a task performs consumes the n-th recorded SuccessorRef. Readiness
  // is a plain atomic join counter on the arena-resident record — no
  // bucket lock, no pool traffic, no typeid dispatch.

  template <std::size_t I>
  void replay_arrived(const Key& key, DataCopy<value_t<I>>* copy) {
    detail::ReplayFrame& frame = detail::t_replay_frame;
    if (frame.instance == nullptr || frame.cursor == frame.cursor_end) {
      if (copy != nullptr) copy->release();
      throw ReplayDiverged("replay: TT \"" + name_ +
                           "\" received a delivery with no recorded "
                           "successor left for the producer");
    }
    const SuccessorRef ref = *frame.cursor++;
    ReplayInstance& inst = *frame.instance;
    const TemplateSlot& slot = inst.graph().slot(ref.slot);
    if (slot.node != static_cast<ReplayNode*>(this) ||
        ref.input != static_cast<std::uint16_t>(I)) {
      if (copy != nullptr) copy->release();
      throw ReplayDiverged("replay: delivery targets TT \"" + name_ +
                           "\" input " + std::to_string(I) +
                           " but the recording expected \"" +
                           slot.node->replay_name() + "\" input " +
                           std::to_string(ref.input));
    }
    auto* rec = static_cast<TaskRec*>(inst.record(ref.slot));
    if (!(rec->key == key)) {
      if (copy != nullptr) copy->release();
      throw ReplayDiverged("replay: TT \"" + name_ +
                           "\" delivery key differs from the recorded "
                           "key of its destination slot");
    }
    store_input_replay<I>(*rec, copy);
    const JoinCounter::Arrival a = rec->join.arrive();
    if (a.ready) {
      if (frame.external) {
        // External seeds batch into a priority-sorted chain (bulk
        // injection); worker-side readiness tail-chains on the
        // executing worker — readiness here is a plain join-counter
        // decrement, so the successor can run the moment the current
        // body's epilogue finishes, with no scheduler round-trip.
        world_->enqueue_replay_ready(rec);
      } else {
        world_->context(0).submit(rec, SubmitHint::kTailChain);
      }
    } else if (a.cancelled && a.last) {
      // The slot was claimed by the cancellation purge (which retired it
      // as a cancelled completion); the final deliverer sweeps whatever
      // inputs accumulated.
      reset_inputs(rec);
    }
  }

  /// Replay-path input store. Plain inputs are lock-free (exactly one
  /// recorded delivery targets each plain slot; publication to the
  /// executing worker rides the join counter's acq_rel). Aggregated and
  /// reduced inputs take the record's store spinlock — the dynamic path
  /// serialized those under the key's bucket lock, which replay skips.
  template <std::size_t I>
  void store_input_replay(TaskRec& rec, DataCopy<value_t<I>>* copy) {
    if constexpr (trait<I>::aggregated) {
      rec.lock_store();
      std::get<I>(rec.slots).push_back(copy);
      rec.unlock_store();
    } else if constexpr (trait<I>::reduced) {
      rec.lock_store();
      DataCopy<value_t<I>>*& slot = std::get<I>(rec.slots);
      if (slot == nullptr) {
        slot = copy;
        rec.unlock_store();
      } else {
        std::get<I>(reduce_fns_)(slot->value(), std::move(copy->value()));
        rec.unlock_store();
        copy->release();
      }
    } else if constexpr (!trait<I>::is_void) {
      assert(std::get<I>(rec.slots) == nullptr &&
             "replay: duplicate delivery into a plain input slot");
      std::get<I>(rec.slots) = copy;
    }
  }

  /// Replay teardown variant of reset_input: releases only copies the
  /// task still owns — a transferring move-send (TaskCopyContext::
  /// consume) already handed its reference to the recorded consumer.
  /// Must run while the task's own registry is still installed, i.e.
  /// before run_replay_impl restores t_task_copies; every other sweep
  /// (cancel hook, purge, discard) runs outside a body and uses the
  /// unconditional reset_input below.
  template <std::size_t I>
  void reset_input_owned(TaskRec& rec) {
    if constexpr (trait<I>::aggregated) {
      for (DataCopy<value_t<I>>* c : std::get<I>(rec.slots)) {
        if (c != nullptr) c->release();
      }
      std::get<I>(rec.slots).clear();
    } else if constexpr (!trait<I>::is_void) {
      if (DataCopy<value_t<I>>* c = std::get<I>(rec.slots); c != nullptr) {
        if (detail::t_task_copies.owns(c)) c->release();
        std::get<I>(rec.slots) = nullptr;
      }
    }
  }

  /// Idempotent per-slot input release for arena-resident records: nulls
  /// (or clears) the slot so the record is ready for the next epoch.
  template <std::size_t I>
  void reset_input(TaskRec& rec) {
    if constexpr (trait<I>::aggregated) {
      for (DataCopy<value_t<I>>* c : std::get<I>(rec.slots)) {
        if (c != nullptr) c->release();
      }
      std::get<I>(rec.slots).clear();
    } else if constexpr (!trait<I>::is_void) {
      if (DataCopy<value_t<I>>* c = std::get<I>(rec.slots); c != nullptr) {
        c->release();
        std::get<I>(rec.slots) = nullptr;
      }
    }
  }

  void reset_inputs(TaskRec* rec) {
    [this, rec]<std::size_t... Is>(std::index_sequence<Is...>) {
      (reset_input<Is>(*rec), ...);
    }(std::make_index_sequence<kNumIns>{});
  }

  void run_replay(TaskRec* rec, int worker_index) {
    run_replay_impl(rec, worker_index,
                    std::make_index_sequence<kNumIns>{});
  }

  template <std::size_t... Is>
  void run_replay_impl(TaskRec* rec, int worker_index,
                       std::index_sequence<Is...>) {
    ReplayInstance* inst = world_->replay_instance();
    assert(inst != nullptr && rec->slot_id >= 0);
    const TemplateSlot& slot =
        inst->graph().slot(static_cast<std::size_t>(rec->slot_id));
    detail::TaskCopyContext::Saved saved;
    detail::t_task_copies.save_to(saved);
    detail::t_task_copies.clear();
    detail::ActiveTT saved_frame = detail::t_active_tt;
    detail::t_active_tt = {this, out_slots_.data(),
                           static_cast<int>(kNumOuts)};
    // Install this slot's recorded successor range as the send cursor
    // (saved/restored: inlined consumers nest).
    detail::ReplayFrame saved_replay = detail::t_replay_frame;
    detail::t_replay_frame = {
        inst, inst->graph().successors_begin(slot),
        inst->graph().successors_end(slot), nullptr, 0, false,
        inst->copy_arena(static_cast<std::size_t>(worker_index))};
    (register_input<Is>(*rec), ...);
    try {
      if constexpr (std::is_invocable_v<Fn&, const Key&,
                                        decltype(make_arg<Is>(*rec))...,
                                        Outs&>) {
        fn_(static_cast<const Key&>(rec->key), make_arg<Is>(*rec)...,
            outs_);
      } else {
        fn_(static_cast<const Key&>(rec->key), make_arg<Is>(*rec)...);
      }
    } catch (...) {
      // Sweep inputs while this task's registry is still installed so
      // transferred (consumed) copies are not double-released.
      (reset_input_owned<Is>(*rec), ...);
      detail::t_replay_frame = saved_replay;
      detail::t_active_tt = saved_frame;
      detail::t_task_copies.restore(saved);
      throw;
    }
    const bool short_sends =
        detail::t_replay_frame.cursor != detail::t_replay_frame.cursor_end;
    (reset_input_owned<Is>(*rec), ...);
    detail::t_replay_frame = saved_replay;
    detail::t_active_tt = saved_frame;
    detail::t_task_copies.restore(saved);
    // Fewer sends than recorded is divergence — unless the epoch is
    // being cancelled, where bodies legitimately bail out early.
    if (short_sends && !world_->cancelled()) {
      throw ReplayDiverged("replay: task of TT \"" + name_ +
                           "\" performed fewer sends than recorded");
    }
    // The record stays armed in the arena: no destructor, no pool.
  }

  static void execute_replay_task(TaskBase* base, Worker& worker) {
    auto* rec = static_cast<TaskRec*>(base);
    rec->tt->run_replay(rec, worker.index());
  }

  /// Cancel hook for replay records: releases parked inputs and leaves
  /// the record armed in the arena (TaskBase::pool is null for arena
  /// residents, so the engine never tries to free it).
  static void cancel_replay_task(TaskBase* base) {
    auto* rec = static_cast<TaskRec*>(base);
    rec->tt->reset_inputs(rec);
  }

  /// Concrete key store behind the type-erased KeyStoreBase.
  struct ReplayKeys final : KeyStoreBase {
    std::vector<Key> keys;
  };

  // ReplayNode surface (called by GraphRecorder/ReplayInstance).
  std::size_t replay_rec_size() const override { return sizeof(TaskRec); }
  std::size_t replay_rec_align() const override { return alignof(TaskRec); }

  TaskBase* replay_install(void* storage, const KeyStoreBase& keys,
                           std::uint32_t key_index, std::int32_t slot_id,
                           std::int32_t priority) override {
    const auto& store = static_cast<const ReplayKeys&>(keys);
    auto* rec = new (storage) TaskRec(this, store.keys[key_index]);
    rec->execute = &TT::execute_replay_task;
    rec->cancel = &TT::cancel_replay_task;
    rec->pool = nullptr;  // arena-resident: reclaimed by the instance
    rec->trace_name = trace_name_;
    // Recorded priorities already carry the World's class boost (they
    // were captured by create_record); only the tenant tag is per-install.
    rec->tenant = world_->tenant();
    rec->priority = priority;
    rec->slot_id = slot_id;
    return rec;
  }

  void replay_uninstall(TaskBase* rec) noexcept override {
    static_cast<TaskRec*>(rec)->~TaskRec();
  }

  void replay_discard_inputs(TaskBase* rec) noexcept override {
    reset_inputs(static_cast<TaskRec*>(rec));
  }

  std::unique_ptr<KeyStoreBase> take_recorded_keys() override {
    auto store = std::make_unique<ReplayKeys>();
    std::lock_guard<std::mutex> lock(recording_mutex_);
    store->keys = std::move(recording_keys_);
    recording_keys_.clear();
    return store;
  }

  template <std::size_t... Is, typename... Vs>
  void invoke_impl(const Key& key, std::index_sequence<Is...>,
                   Vs&&... values) {
    (seed_one<Is>(key, std::forward<Vs>(values)), ...);
  }

  template <std::size_t I, typename V>
  void seed_one(const Key& key, V&& value) {
    if constexpr (trait<I>::is_void) {
      (void)value;
      input_arrived<I>(key, nullptr);
    } else {
      input_arrived<I>(
          key,
          detail::make_send_copy<value_t<I>>(std::forward<V>(value)));
    }
  }

  World* world_;
  Fn fn_;
  Outs outs_{};
  /// Type-erased view of outs_ for the free ttg::send<i> family.
  std::array<detail::OutSlotInfo, kNumOuts> out_slots_{};
  Terminals terminals_{};
  std::array<std::function<std::int32_t(const Key&)>, kNumIns> count_fns_{};

  template <typename E>
  struct reduce_slot {
    struct None {};
    using type = std::conditional_t<
        detail::input_trait<E>::reduced,
        std::function<void(typename detail::input_trait<E>::value_type&,
                           typename detail::input_trait<E>::value_type&&)>,
        None>;
  };
  std::tuple<typename reduce_slot<InEdges>::type...> reduce_fns_{};
  std::function<int(const Key&)> keymap_;
  std::function<std::int32_t(const Key&)> priority_fn_;
  std::function<std::int32_t(const Key&, const value_t<0>&)>
      priority_value_fn_;
  MemoryPool pool_;
  ScalableHashTable table_;
  /// Pool for queued delegated deliveries (PubOp); allocated only when
  /// the pending table runs in kDelegated mode.
  std::unique_ptr<MemoryPool> pub_pool_;
  /// Keys captured by the active recording epoch, in slot-registration
  /// order (TemplateSlot::key_index indexes this vector); moved into the
  /// template by take_recorded_keys at finalize.
  std::vector<Key> recording_keys_;
  std::mutex recording_mutex_;
};

/// Builds a TT from a callable and its input/output edge tuples.
/// The callable's signature is
///   fn(const Key&, <arg per input>..., TT::Outs& outs)
/// where a plain input of type V arrives as V& (move it onward with
/// std::move to trigger the zero-copy ownership transfer), a Void input
/// as const Void&, and an aggregated input as const Aggregator<V>&.
template <typename Key, typename Fn, typename... InEdges,
          typename... OutEdges>
auto make_tt(Fn&& fn, const std::tuple<InEdges...>& ins,
             const std::tuple<OutEdges...>& outs, std::string name,
             World& world) {
  return std::make_unique<
      TT<Key, std::decay_t<Fn>, std::tuple<InEdges...>,
         std::tuple<OutEdges...>>>(std::forward<Fn>(fn), ins, outs,
                                   std::move(name), world);
}

/// Groups edges for make_tt, mirroring the TTG API.
template <typename... Es>
std::tuple<Es...> edges(Es... es) {
  return std::tuple<Es...>(std::move(es)...);
}

// ---------------------------------------------------------------------------
// TTG-style free send functions.
//
// Inside a task body the runtime knows which TT is executing (the
// thread-local active-TT frame installed by run_impl), so sends do not
// need the `outs` argument:
//
//   auto tt = ttg::make_tt<int>([](const int& k, double& v) {
//     ttg::send<0>(k + 1, std::move(v));
//   }, ttg::edges(in), ttg::edges(out), "step", world);
//
// The explicit-outs overloads (ttg/edge.hpp) remain the documented
// low-level path and the only legal spelling outside a task body. The
// key/value types deduced at the call site must match the edge exactly
// (same rule as the reference TTG runtime); mismatches abort with a
// diagnostic rather than corrupt memory.

/// Sends `value` to key `key` on output terminal I of the running task.
/// An rvalue that is an input of the running task moves ownership along
/// with no data copy (Sec. IV-E).
template <std::size_t I, typename Key, typename Value>
void send(const Key& key, Value&& value) {
  using OutT = Out<std::decay_t<Key>, std::decay_t<Value>>;
  detail::active_out_terminal<OutT>(I, "send").send(
      key, std::forward<Value>(value));
}

/// Sends a pure control-flow token on (Void-typed) output terminal I.
template <std::size_t I, typename Key>
void sendk(const Key& key) {
  using OutT = Out<std::decay_t<Key>, Void>;
  detail::active_out_terminal<OutT>(I, "sendk").sendk(key);
}

/// Broadcasts one value to many keys on output terminal I, sharing a
/// single DataCopy between all of them.
template <std::size_t I, typename KeyRange, typename Value>
void broadcast(const KeyRange& keys, const Value& value) {
  using K = std::decay_t<decltype(*std::begin(keys))>;
  using OutT = Out<K, std::decay_t<Value>>;
  detail::active_out_terminal<OutT>(I, "broadcast").broadcast(keys, value);
}

/// Broadcast of control-flow tokens on a Void-typed output terminal I.
template <std::size_t I, typename KeyRange>
void broadcastk(const KeyRange& keys) {
  using K = std::decay_t<decltype(*std::begin(keys))>;
  using OutT = Out<K, Void>;
  detail::active_out_terminal<OutT>(I, "broadcastk").broadcastk(keys);
}

/// Free-function spelling of TT::invoke — satisfies all inputs of `key`
/// at once (graph seeding from outside a task body).
template <typename T, typename Key, typename... Vs>
  requires std::is_base_of_v<TTBase, std::remove_cvref_t<T>>
void invoke(T& tt, const Key& key, Vs&&... values) {
  tt.invoke(key, std::forward<Vs>(values)...);
}

}  // namespace ttg
