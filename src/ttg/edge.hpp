// Edges and terminals: the wiring of a template task graph.
//
// An Edge<Key, Value> connects the output terminals of producer TTs to
// the input terminals of consumer TTs. Edges are cheap handles to a
// shared implementation; consumers register themselves when a TT is
// constructed (make_tt), producers resolve the consumer list at send
// time. Data travels as reference-counted DataCopy objects; Void-typed
// edges carry pure control flow with no copy management at all.
#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "runtime/data_copy.hpp"
#include "ttg/graph_template.hpp"
#include "ttg/keys.hpp"

namespace ttg {

/// Interface of a TT's input terminal as seen by producers. deliver()
/// transfers one reference on `copy` to the terminal (copy is nullptr
/// for Void edges).
template <typename Key, typename Value>
class InTerminalBase {
 public:
  virtual ~InTerminalBase() = default;
  virtual void deliver(const Key& key, DataCopy<Value>* copy) = 0;
};

template <typename Key, typename Value>
struct EdgeImpl {
  std::string name;
  std::vector<InTerminalBase<Key, Value>*> consumers;
};

template <typename Key, typename Value>
class Edge {
 public:
  using key_type = Key;
  using value_type = Value;

  explicit Edge(std::string name = "")
      : impl_(std::make_shared<EdgeImpl<Key, Value>>()) {
    impl_->name = std::move(name);
  }

  const std::string& name() const { return impl_->name; }
  EdgeImpl<Key, Value>* impl() const { return impl_.get(); }

 private:
  std::shared_ptr<EdgeImpl<Key, Value>> impl_;
};

namespace detail {

/// Registration of the running task's input copies: maps the address of
/// each input value to its DataCopy so rvalue sends can recognize "this
/// is my input, move it along" and reuse the copy (Sec. IV-E's
/// ownership-move optimization) instead of materializing a new one.
class TaskCopyContext {
 public:
  static constexpr int kMaxInputs = 16;

  struct Reg {
    const void* value_ptr;
    DataCopyBase* copy;
  };

  void register_input(const void* value_ptr, DataCopyBase* copy) noexcept {
    assert(n_ < kMaxInputs);
    regs_[n_].value_ptr = value_ptr;
    regs_[n_].copy = copy;
    ++n_;
  }

  DataCopyBase* lookup(const void* value_ptr) const noexcept {
    for (int i = 0; i < n_; ++i) {
      if (regs_[i].value_ptr == value_ptr) return regs_[i].copy;
    }
    return nullptr;
  }

  /// Replay ownership transfer: clears the entry holding `copy` so the
  /// task's teardown (owns() below) skips its release — the recorded
  /// sole consumer inherited the reference instead. A later lookup of
  /// the same value finds a cleared entry and falls back to
  /// materializing a fresh copy, mirroring the dynamic path's
  /// not-unique fallback for a twice-sent value.
  void consume(DataCopyBase* copy) noexcept {
    for (int i = 0; i < n_; ++i) {
      if (regs_[i].copy == copy) {
        regs_[i].copy = nullptr;
        return;
      }
    }
  }

  /// Whether the running task still owns `copy` (its entry was not
  /// consumed by a transferring send). Compares pointers only — safe
  /// even if a transferred copy has already been released elsewhere.
  bool owns(const DataCopyBase* copy) const noexcept {
    for (int i = 0; i < n_; ++i) {
      if (regs_[i].copy == copy) return true;
    }
    return false;
  }

  void clear() noexcept { n_ = 0; }

  /// Cheap save/restore for the nesting discipline in run_impl /
  /// run_replay_impl: only the active entries travel, so a task with
  /// few (or zero — Void chains) registered inputs does not pay for
  /// copying the whole kMaxInputs array twice per execution.
  struct Saved {
    Reg regs[kMaxInputs];
    int n;
  };
  void save_to(Saved& out) const noexcept {
    out.n = n_;
    for (int i = 0; i < n_; ++i) out.regs[i] = regs_[i];
  }
  void restore(const Saved& s) noexcept {
    n_ = s.n;
    for (int i = 0; i < s.n; ++i) regs_[i] = s.regs[i];
  }

 private:
  Reg regs_[kMaxInputs];
  int n_ = 0;
};

inline thread_local TaskCopyContext t_task_copies;

/// Recording-epoch producer frame: identifies the task slot whose body
/// is executing on this thread, so every delivery it performs can be
/// appended to that slot's successor list in send order. Installed by
/// TT::run_impl around recorded task bodies (saved/restored — inlined
/// tasks nest) and by World::begin_recording for the seeding thread
/// (slot = GraphRecorder::kExternalProducer).
struct RecordFrame {
  GraphRecorder* recorder = nullptr;
  std::uint32_t slot = GraphRecorder::kExternalProducer;
};

inline thread_local RecordFrame t_record_frame;

/// Replay-epoch cursor frame: the recorded successor range the running
/// producer (or the external seeding thread) consumes, one SuccessorRef
/// per delivery. `ready_head` batches externally fired source tasks
/// into a priority-sorted chain for bulk scheduler injection
/// (SubmitHint::kChain); worker-side readiness submits directly and
/// rides the existing successor bundling.
struct ReplayFrame {
  ReplayInstance* instance = nullptr;
  const SuccessorRef* cursor = nullptr;
  const SuccessorRef* cursor_end = nullptr;
  TaskBase* ready_head = nullptr;
  int ready_count = 0;
  bool external = false;
  /// This thread's epoch copy arena: replay sends of trivially
  /// destructible values materialize copies here instead of the pool
  /// (no free-list atomics, reclaimed wholesale at the next epoch).
  CopyArena* arena = nullptr;
};

inline thread_local ReplayFrame t_replay_frame;

/// Materializes a send's copy: from the running replay epoch's arena
/// when the payload qualifies, from the thread's copy pool otherwise.
template <typename Value, typename U>
DataCopy<Value>* make_send_copy(U&& v) {
  if constexpr (std::is_trivially_destructible_v<Value>) {
    if (CopyArena* arena = t_replay_frame.arena; arena != nullptr) {
      return make_copy_in<Value>(*arena, std::forward<U>(v));
    }
  }
  return make_copy<Value>(std::forward<U>(v));
}

}  // namespace detail

/// Output terminal: the send-side handle a task body uses (through
/// ttg::send<i> / ttg::broadcast<i> on the task's `outs` tuple).
template <typename Key, typename Value>
class Out {
 public:
  using key_type = Key;
  using value_type = Value;

  Out() = default;
  explicit Out(EdgeImpl<Key, Value>* edge) : edge_(edge) {}

  /// Moving send. If `v` is an input copy of the running task and the
  /// task holds the only reference, ownership moves to the successors
  /// with a single refcount retain and no data copy.
  void send(const Key& key, Value&& v) const {
    const auto& consumers = edge_->consumers;
    const auto n = consumers.size();
    assert(n > 0 && "send into an edge with no consumer TT");
    if (DataCopyBase* reg = detail::t_task_copies.lookup(&v);
        reg != nullptr && reg->unique()) {
      auto* copy = static_cast<DataCopy<Value>*>(reg);
      if (n == 1 && detail::t_replay_frame.instance != nullptr) {
        // Replay ownership transfer: the sole recorded consumer inherits
        // this task's reference outright — no retain here, no release at
        // teardown (run_replay_impl skips consumed entries). Replay-only:
        // the dynamic path keeps the paper's retain/release pair so the
        // Eq. (1) census stays exact. The external seeding frame cannot
        // reach this branch — no inputs are registered on that thread.
        detail::t_task_copies.consume(reg);
        consumers[0]->deliver(key, copy);
        return;
      }
      copy->retain(static_cast<std::int32_t>(n));
      for (auto* c : consumers) c->deliver(key, copy);
      return;
    }
    auto* copy = detail::make_send_copy<Value>(std::move(v));
    if (n > 1) copy->retain(static_cast<std::int32_t>(n - 1));
    for (auto* c : consumers) c->deliver(key, copy);
  }

  /// Copying send: always materializes a new copy (the Fig. 5 "TTG
  /// (copy)" behaviour).
  void send(const Key& key, const Value& v) const {
    const auto& consumers = edge_->consumers;
    const auto n = consumers.size();
    assert(n > 0 && "send into an edge with no consumer TT");
    auto* copy = detail::make_send_copy<Value>(v);
    if (n > 1) copy->retain(static_cast<std::int32_t>(n - 1));
    for (auto* c : consumers) c->deliver(key, copy);
  }

  /// Control-flow-only send (Void edges): no copy is created.
  void sendk(const Key& key) const {
    static_assert(std::is_same_v<Value, Void>,
                  "sendk() requires a Void-typed edge");
    for (auto* c : edge_->consumers) c->deliver(key, nullptr);
  }

  /// Sends one value to many keys, sharing a single copy between all of
  /// them ("the data remains under the management of TTG").
  template <typename KeyRange>
  void broadcast(const KeyRange& keys, const Value& v) const {
    const auto& consumers = edge_->consumers;
    const auto per_key = consumers.size();
    assert(per_key > 0 && "broadcast into an edge with no consumer TT");
    const auto total =
        static_cast<std::int32_t>(per_key * std::size(keys));
    if (total == 0) return;
    DataCopy<Value>* copy;
    if (DataCopyBase* reg = detail::t_task_copies.lookup(&v);
        reg != nullptr && reg->unique()) {
      copy = static_cast<DataCopy<Value>*>(reg);
      copy->retain(total);
    } else {
      copy = detail::make_send_copy<Value>(v);
      if (total > 1) copy->retain(total - 1);
    }
    for (const Key& key : keys) {
      for (auto* c : consumers) c->deliver(key, copy);
    }
  }

  /// Broadcast for Void edges.
  template <typename KeyRange>
  void broadcastk(const KeyRange& keys) const {
    static_assert(std::is_same_v<Value, Void>,
                  "broadcastk() requires a Void-typed edge");
    for (const Key& key : keys) {
      for (auto* c : edge_->consumers) c->deliver(key, nullptr);
    }
  }

  std::size_t num_consumers() const { return edge_->consumers.size(); }

 private:
  EdgeImpl<Key, Value>* edge_ = nullptr;
};

/// Free functions mirroring the TTG API: address an output terminal of
/// the running task's `outs` tuple by index.
template <std::size_t I, typename Key, typename Value, typename Outs>
void send(const Key& key, Value&& value, Outs& outs) {
  std::get<I>(outs).send(key, std::forward<Value>(value));
}

template <std::size_t I, typename Key, typename Outs>
void sendk(const Key& key, Outs& outs) {
  std::get<I>(outs).sendk(key);
}

template <std::size_t I, typename KeyRange, typename Value, typename Outs>
void broadcast(const KeyRange& keys, const Value& value, Outs& outs) {
  std::get<I>(outs).broadcast(keys, value);
}

template <std::size_t I, typename KeyRange, typename Outs>
void broadcastk(const KeyRange& keys, Outs& outs) {
  std::get<I>(outs).broadcastk(keys);
}

}  // namespace ttg
