// Graph shape vs. epoch instance: record-and-replay epoch compilation.
//
// A template task graph has two kinds of state. The *shape* — TTs,
// edges, terminal wiring, and (for shape-stable workloads) the set of
// task keys and the producer→consumer delivery pattern — is immutable
// across runs. The *instance* — task records, DataCopies, join state —
// is per epoch. The dynamic path re-derives the instance from the shape
// every epoch through pending-table hashing and terminal resolution;
// this module makes the shape a first-class object instead:
//
//   * GraphRecorder  — observes one dynamic epoch (World::begin_recording)
//     and captures every task instantiation and every delivery.
//   * GraphTemplate  — the frozen result: discovery-ordered task slots
//     (a valid topological order when recorded serially), pre-resolved
//     successor lists, per-slot input arity, and a pre-sized arena
//     layout for the task records.
//   * ReplayInstance — a reusable materialization of a template: one
//     contiguous record arena plus pre-warmed DataCopy pools. A replay
//     epoch (World::execute_replay) re-arms plain atomic join counters
//     and runs with fresh payloads — no ScalableHashTable, no typeid
//     terminal lookup, no per-task pool traffic.
//
// Successor resolution uses *sequence cursors*: deliveries are recorded
// in per-producer send order, and during replay the n-th delivery a task
// performs consumes the n-th recorded SuccessorRef. That makes replay
// legal exactly for shape-deterministic graphs — every task must perform
// the same sends, in the same order, with the same keys, as it did in
// the recorded epoch (payload values are free to change). Divergence is
// detected (key/terminal checked per delivery, cursor over/underrun) and
// surfaces as a failed epoch, never as silent corruption.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <new>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "runtime/copy_pool.hpp"
#include "runtime/task.hpp"
#include "structures/join_counter.hpp"

namespace ttg {

/// How the current epoch executes (see World). Dynamic is the default
/// and the fallback for shape-varying workloads; recording is a dynamic
/// epoch with capture; replay runs a previously captured shape.
enum class EpochMode : std::uint8_t { kDynamic, kRecording, kReplay };

/// Thrown when a replayed epoch's send sequence does not match the
/// recorded shape. Propagates through the engine's failure capture, so
/// the epoch ends with Status{kFailed} instead of corrupting state.
struct ReplayDiverged : std::logic_error {
  using std::logic_error::logic_error;
};

/// Type-erased per-TT key storage (each TT keeps its recorded keys as a
/// concrete std::vector<Key> behind this interface).
class KeyStoreBase {
 public:
  virtual ~KeyStoreBase() = default;
};

/// The recording/replay surface of a graph node, implemented by TTBase
/// (ttg/tt.hpp). Keeps this layer independent of the TT template zoo:
/// templates and instances manipulate records only through these
/// type-erased hooks.
class ReplayNode {
 public:
  virtual ~ReplayNode() = default;

  /// Display name (graphviz dumps, divergence diagnostics).
  virtual const std::string& replay_name() const = 0;

  /// Size/alignment of one task record, for arena layout.
  virtual std::size_t replay_rec_size() const = 0;
  virtual std::size_t replay_rec_align() const = 0;

  /// Placement-constructs a task record for slot `slot_id` in `storage`
  /// (arena memory of replay_rec_size/align), keyed by entry `key_index`
  /// of `keys` (the store this node returned from take_recorded_keys).
  /// The record's cancel hook must release input copies without touching
  /// any pool — the storage belongs to the instance arena.
  virtual TaskBase* replay_install(void* storage, const KeyStoreBase& keys,
                                   std::uint32_t key_index,
                                   std::int32_t slot_id,
                                   std::int32_t priority) = 0;

  /// Destroys a record built by replay_install (storage is reclaimed by
  /// the instance, not here).
  virtual void replay_uninstall(TaskBase* rec) noexcept = 0;

  /// Releases any input copies parked in `rec` and clears the slots.
  /// Idempotent; used by the post-abort sweep and instance teardown.
  virtual void replay_discard_inputs(TaskBase* rec) noexcept = 0;

  /// Moves the keys accumulated during the recording epoch out of the
  /// node and into the template.
  virtual std::unique_ptr<KeyStoreBase> take_recorded_keys() = 0;
};

/// One recorded delivery: the destination task slot and the input
/// terminal it arrives on. 8 bytes; successor lists are flat arrays of
/// these — no hashing, no typeid, no virtual dispatch to resolve a
/// successor during replay.
struct SuccessorRef {
  std::uint32_t slot;
  std::uint16_t input;
  std::uint16_t reserved = 0;
};

/// One task slot of a frozen graph shape.
struct TemplateSlot {
  ReplayNode* node = nullptr;
  std::uint32_t key_index = 0;   ///< into the node's key store
  std::uint32_t expected = 0;    ///< deliveries targeting this slot
  std::int32_t priority = 0;     ///< captured at record time (key-based)
  std::uint32_t succ_begin = 0;  ///< into GraphTemplate's successor pool
  std::uint32_t succ_count = 0;
  std::size_t arena_offset = 0;  ///< record placement in the instance arena
};

class GraphTemplate {
 public:
  std::size_t num_slots() const { return slots_.size(); }
  const TemplateSlot& slot(std::size_t i) const { return slots_[i]; }

  const SuccessorRef* successors_begin(const TemplateSlot& s) const {
    return successors_.data() + s.succ_begin;
  }
  const SuccessorRef* successors_end(const TemplateSlot& s) const {
    return successors_.data() + s.succ_begin + s.succ_count;
  }

  /// Deliveries injected from outside any task (graph seeding), in
  /// seeding order. A replay epoch must repeat the same seeds in the
  /// same order from a single thread.
  const std::vector<SuccessorRef>& external_deliveries() const {
    return external_;
  }

  /// Total deliveries in one epoch (internal + external).
  std::size_t num_deliveries() const {
    return successors_.size() + external_.size();
  }

  /// Arena layout for one instance's task records.
  std::size_t arena_bytes() const { return arena_bytes_; }
  std::size_t arena_align() const { return arena_align_; }

  /// DataCopy allocation footprint of the recorded epoch, as
  /// {copy object bytes, allocation count} per distinct size — drives
  /// copy-pool pre-warming (arena mode) at instantiation.
  const std::vector<std::pair<std::size_t, std::size_t>>& copy_footprint()
      const {
    return copy_footprint_;
  }

  const KeyStoreBase& keys_for(const ReplayNode* node) const {
    for (const auto& [n, store] : key_stores_) {
      if (n == node) return *store;
    }
    throw std::logic_error("GraphTemplate: no key store for node");
  }

 private:
  friend class GraphRecorder;
  GraphTemplate() = default;

  std::vector<TemplateSlot> slots_;
  std::vector<SuccessorRef> successors_;
  std::vector<SuccessorRef> external_;
  std::vector<std::pair<ReplayNode*, std::unique_ptr<KeyStoreBase>>>
      key_stores_;
  std::vector<std::pair<std::size_t, std::size_t>> copy_footprint_;
  std::size_t arena_bytes_ = 0;
  std::size_t arena_align_ = alignof(std::max_align_t);
};

/// Captures one dynamic epoch. All mutation is mutex-guarded: recording
/// is the one-time slow path, and slot creation (any worker) races with
/// successor appends (other workers mid-send).
class GraphRecorder {
 public:
  /// Producer id for deliveries performed outside any task body.
  static constexpr std::uint32_t kExternalProducer = 0xffffffffu;

  /// Registers a newly discovered task; returns its slot id. `key_index`
  /// is the task's position in its node's recorded-key vector.
  std::uint32_t add_slot(ReplayNode* node, std::uint32_t key_index,
                         std::int32_t priority) {
    std::lock_guard<std::mutex> lock(mutex_);
    const auto id = static_cast<std::uint32_t>(entries_.size());
    entries_.emplace_back();
    Entry& e = entries_.back();
    e.node = node;
    e.key_index = key_index;
    e.priority = priority;
    return id;
  }

  /// Records one delivery, in the producer's send order. `copy_bytes` is
  /// the DataCopy object size (0 for Void deliveries), accumulated into
  /// the copy-pool footprint.
  void add_delivery(std::uint32_t producer_slot, std::uint32_t dest_slot,
                    std::uint16_t input, std::size_t copy_bytes) {
    std::lock_guard<std::mutex> lock(mutex_);
    const SuccessorRef ref{dest_slot, input, 0};
    if (producer_slot == kExternalProducer) {
      external_.push_back(ref);
    } else {
      entries_[producer_slot].succs.push_back(ref);
    }
    if (copy_bytes != 0) ++copy_counts_[copy_bytes];
  }

  std::size_t num_slots() {
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
  }

  /// Freezes the capture into an immutable template: flattens successor
  /// lists, derives per-slot input arity from the refs targeting it,
  /// computes the record-arena layout, and moves the recorded keys out
  /// of the nodes.
  std::shared_ptr<GraphTemplate> finalize() {
    std::lock_guard<std::mutex> lock(mutex_);
    auto tmpl = std::shared_ptr<GraphTemplate>(new GraphTemplate());
    tmpl->slots_.reserve(entries_.size());
    std::size_t total_succs = 0;
    for (const Entry& e : entries_) total_succs += e.succs.size();
    tmpl->successors_.reserve(total_succs);
    std::size_t offset = 0;
    std::size_t max_align = alignof(std::max_align_t);
    for (Entry& e : entries_) {
      TemplateSlot s;
      s.node = e.node;
      s.key_index = e.key_index;
      s.priority = e.priority;
      s.succ_begin = static_cast<std::uint32_t>(tmpl->successors_.size());
      s.succ_count = static_cast<std::uint32_t>(e.succs.size());
      tmpl->successors_.insert(tmpl->successors_.end(), e.succs.begin(),
                               e.succs.end());
      const std::size_t align = e.node->replay_rec_align();
      if (align > max_align) max_align = align;
      offset = (offset + align - 1) & ~(align - 1);
      s.arena_offset = offset;
      offset += e.node->replay_rec_size();
      tmpl->slots_.push_back(s);
    }
    tmpl->external_ = std::move(external_);
    tmpl->arena_bytes_ = offset;
    tmpl->arena_align_ = max_align;
    for (const SuccessorRef& r : tmpl->successors_) {
      ++tmpl->slots_[r.slot].expected;
    }
    for (const SuccessorRef& r : tmpl->external_) {
      ++tmpl->slots_[r.slot].expected;
    }
    for (const TemplateSlot& s : tmpl->slots_) {
      bool seen = false;
      for (const auto& [node, store] : tmpl->key_stores_) {
        if (node == s.node) {
          seen = true;
          break;
        }
      }
      if (!seen) {
        tmpl->key_stores_.emplace_back(s.node, s.node->take_recorded_keys());
      }
    }
    for (const auto& [bytes, count] : copy_counts_) {
      tmpl->copy_footprint_.emplace_back(bytes, count);
    }
    entries_.clear();
    copy_counts_.clear();
    return tmpl;
  }

 private:
  struct Entry {
    ReplayNode* node = nullptr;
    std::uint32_t key_index = 0;
    std::int32_t priority = 0;
    std::vector<SuccessorRef> succs;
  };

  std::mutex mutex_;
  std::deque<Entry> entries_;  // deque: stable ids while growing
  std::vector<SuccessorRef> external_;
  std::map<std::size_t, std::size_t> copy_counts_;
};

/// A reusable materialization of a GraphTemplate: the per-epoch arena.
/// Records are placement-constructed once (instantiate) and re-armed per
/// epoch by resetting their join counters — replay epochs perform zero
/// task allocations. Not thread-safe; drive it from the epoch's control
/// thread (World::execute_replay / wait).
///
/// Lifetime: the TTs (and their World) referenced by the template must
/// outlive the instance, and the instance must be torn down (destroyed)
/// before them.
class ReplayInstance {
 public:
  explicit ReplayInstance(std::shared_ptr<const GraphTemplate> tmpl)
      : tmpl_(std::move(tmpl)) {}
  ReplayInstance(const ReplayInstance&) = delete;
  ReplayInstance& operator=(const ReplayInstance&) = delete;
  ~ReplayInstance() { teardown(); }

  const GraphTemplate& graph() const { return *tmpl_; }

  /// Builds the record arena (idempotent) and pre-warms the calling
  /// thread's copy pools to the recorded allocation footprint.
  void instantiate() {
    if (!records_.empty() || tmpl_->num_slots() == 0) return;
    arena_ = ::operator new(tmpl_->arena_bytes(),
                            std::align_val_t(tmpl_->arena_align()));
    records_.reserve(tmpl_->num_slots());
    char* base = static_cast<char*>(arena_);
    for (std::size_t i = 0; i < tmpl_->num_slots(); ++i) {
      const TemplateSlot& s = tmpl_->slot(i);
      records_.push_back(s.node->replay_install(
          base + s.arena_offset, tmpl_->keys_for(s.node), s.key_index,
          static_cast<std::int32_t>(i), s.priority));
    }
    for (const auto& [bytes, count] : tmpl_->copy_footprint()) {
      copy_pool_prewarm(bytes, count);
    }
  }

  TaskBase* record(std::uint32_t slot) const { return records_[slot]; }
  std::size_t num_records() const { return records_.size(); }

  /// Re-arms every slot for a fresh epoch — the template-arena handoff:
  /// after this, deliveries may race in and fire slots.
  void begin_epoch() {
    instantiate();
    for (std::size_t i = 0; i < records_.size(); ++i) {
      records_[i]->join.reset(tmpl_->slot(i).expected);
    }
    replay_arena_handoff_point();
  }

  /// Cooperative cancellation: claims every slot that has not fired yet.
  /// The caller retires the claimed slots as cancelled completions.
  /// Slots that were already ready (queued or running) are dropped by
  /// the engine's ingress/pop cancellation path instead.
  std::size_t purge_cancelled() {
    std::size_t claimed = 0;
    for (TaskBase* rec : records_) {
      if (rec->join.try_cancel()) ++claimed;
    }
    return claimed;
  }

  /// Post-epoch sweep after a cancelled/failed epoch: releases input
  /// copies still parked in records. Idempotent (clean epochs leave
  /// nothing behind; this is skipped for them).
  void discard_inputs() {
    for (std::size_t i = 0; i < records_.size(); ++i) {
      tmpl_->slot(i).node->replay_discard_inputs(records_[i]);
    }
  }

  /// Prepares `n` per-thread copy arenas (one per worker plus one for
  /// the external seeding thread) and rewinds them all — called by
  /// World::execute_replay after the previous epoch's fence, when every
  /// copy of that epoch is dead. Arena chunks persist across epochs, so
  /// steady-state replays allocate copies without touching the heap or
  /// the pools at all.
  void arm_copy_arenas(std::size_t n) {
    if (copy_arenas_.size() < n) copy_arenas_.resize(n);
    for (CopyArena& a : copy_arenas_) a.reset();
  }

  CopyArena* copy_arena(std::size_t thread) {
    return thread < copy_arenas_.size() ? &copy_arenas_[thread] : nullptr;
  }

 private:
  void teardown() {
    for (std::size_t i = 0; i < records_.size(); ++i) {
      tmpl_->slot(i).node->replay_discard_inputs(records_[i]);
      tmpl_->slot(i).node->replay_uninstall(records_[i]);
    }
    records_.clear();
    if (arena_ != nullptr) {
      ::operator delete(arena_, std::align_val_t(tmpl_->arena_align()));
      arena_ = nullptr;
    }
  }

  std::shared_ptr<const GraphTemplate> tmpl_;
  void* arena_ = nullptr;
  std::vector<TaskBase*> records_;
  std::vector<CopyArena> copy_arenas_;
};

}  // namespace ttg
