#include "ttg/world.hpp"

#include <cassert>

#include "runtime/trace.hpp"

namespace ttg {

World::World(const Config& config, int nranks)
    : config_(config), nranks_(nranks) {
  assert(nranks >= 1);
  config_.apply_globals();
  detector_ = std::make_unique<TerminationDetector>(nranks, config_.termdet);
  // Attach the application thread (rank 0's producer) *before* workers
  // exist: an attached active thread keeps its rank non-quiet, so the
  // wave cannot declare termination while the world is still being set
  // up or before the first fence.
  detector_->thread_attach(0);
  queues_.reserve(static_cast<std::size_t>(nranks));
  contexts_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    queues_.push_back(std::make_unique<MessageQueue>(this));
  }
  for (int r = 0; r < nranks; ++r) {
    contexts_.push_back(
        std::make_unique<Context>(config_, detector_.get(), r));
    contexts_.back()->set_progress_source(queues_[r].get());
  }
}

World::~World() {
  // Contexts join their workers before the queues they poll disappear.
  contexts_.clear();
  queues_.clear();
}

int World::current_rank() const {
  if (Worker* w = Context::current_worker(); w != nullptr) return w->rank();
  return 0;
}

void World::execute() {
  // Resume the producer *before* resetting the detector: once rank 0 has
  // an active thread again, the freshly-reset wave cannot re-announce
  // termination in the window before the first task is submitted.
  context(0).begin();
  if (needs_reset_) {
    detector_->reset();
    needs_reset_ = false;
  }
  epoch_open_ = true;
}

void World::fence() {
  assert(epoch_open_ && "fence() without execute()");
  context(0).fence();
  epoch_open_ = false;
  needs_reset_ = true;
}

void World::post_message(int target_rank, std::function<void()> deliver) {
  assert(target_rank >= 0 && target_rank < nranks_);
  detector_->on_message_sent();
  trace::record(trace::EventKind::kMessageSent,
                static_cast<std::uint32_t>(target_rank));
  auto* msg = new Message;
  msg->deliver = std::move(deliver);
  queues_[target_rank]->push(msg);
  contexts_[target_rank]->notify_work();
}

std::uint64_t World::total_tasks_executed() const {
  std::uint64_t n = 0;
  for (const auto& c : contexts_) n += c->total_tasks_executed();
  return n;
}

void World::MessageQueue::drain(Worker& worker) {
  while (LifoNode* node = queue_.pop()) {
    auto* msg = static_cast<Message*>(node);
    world_->detector_->on_message_received();
    trace::record(trace::EventKind::kMessageReceived,
                  static_cast<std::uint32_t>(worker.rank()));
    msg->deliver();
    world_->messages_delivered_.fetch_add(1, std::memory_order_relaxed);
    delete msg;
  }
}

}  // namespace ttg
