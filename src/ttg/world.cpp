#include "ttg/world.hpp"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <utility>

#include "runtime/timer_wheel.hpp"
#include "runtime/trace.hpp"
#include "ttg/runtime.hpp"
#include "ttg/tt.hpp"

namespace ttg {

World::World(const Config& config, int nranks)
    : config_(config), nranks_(nranks) {
  assert(nranks >= 1);
  config_.apply_globals();
  detector_ = std::make_unique<TerminationDetector>(nranks, config_.termdet);
  // Attach the application thread (rank 0's producer) *before* workers
  // exist: an attached active thread keeps its rank non-quiet, so the
  // wave cannot declare termination while the world is still being set
  // up or before the first fence.
  detector_->thread_attach(0);
  queues_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    queues_.push_back(std::make_unique<MessageQueue>(this));
  }
  if (nranks == 1) {
    // The compatibility shim (DESIGN.md §1.1c): a single-rank classic
    // World is a private single-tenant Runtime whose one Context is
    // built exactly as before — same detector, same fault state, same
    // engine shape — so behavior and accounting are unchanged.
    private_runtime_.reset(new Runtime(config_, detector_.get(),
                                       &own_fault_));
    contexts_.push_back(&private_runtime_->context());
  } else {
    owned_contexts_.reserve(static_cast<std::size_t>(nranks));
    for (int r = 0; r < nranks; ++r) {
      owned_contexts_.push_back(std::make_unique<Context>(
          config_, detector_.get(), r, &own_fault_));
      contexts_.push_back(owned_contexts_.back().get());
    }
  }
  for (int r = 0; r < nranks; ++r) {
    contexts_[static_cast<std::size_t>(r)]->set_progress_source(
        queues_[static_cast<std::size_t>(r)].get());
  }
  if (config_.watchdog_quiet_ms > 0) {
    watchdog_ = std::make_unique<StallWatchdog>(
        config_.watchdog_quiet_ms,
        [this] {
          return StallWatchdog::Sample{
              progress_counter(), detector_->total_pending() > 0};
        },
        [this] { on_stall(); });
  }
}

World::World(Runtime& runtime, WorldOptions options)
    : config_(runtime.config()),
      nranks_(1),
      runtime_(&runtime),
      options_(std::move(options)) {
  world_id_ = runtime.allocate_world_id();
  tenant_ = std::make_unique<TenantState>(world_id_);
  tenant_->priority_boost =
      options_.priority_class *
      (std::int32_t{1} << WorldOptions::kPriorityClassShift);
  fault_ = &tenant_->fault;
  owned_contexts_.push_back(std::make_unique<Context>(
      config_, runtime.engine(), tenant_.get()));
  contexts_.push_back(owned_contexts_.back().get());
  runtime.register_world(world_id_, this);
}

World::~World() {
  // The watchdog samples contexts and the detector: stop it first.
  watchdog_.reset();
  if (tenant_ != nullptr) {
    assert(tenant_->quiescent() &&
           "tenant World destroyed with tasks in flight");
    runtime_->cancel_deadline(tenant_.get());
    if (admitted_) {
      runtime_->release_admission();
      admitted_ = false;
    }
    // After this the Runtime's watchdog/reports no longer see us.
    runtime_->unregister_world(world_id_);
  }
  // Contexts join their workers before the queues they poll disappear.
  owned_contexts_.clear();
  private_runtime_.reset();
  queues_.clear();
}

int World::current_rank() const {
  if (Worker* w = Context::current_worker(); w != nullptr) return w->rank();
  return 0;
}

Submission World::execute() {
  if (tenant_ != nullptr) {
    assert(!epoch_open_.load(std::memory_order_relaxed) &&
           "execute() with the previous epoch still open");
    if (needs_reset_) {
      tenant_->unseal();
      tenant_->fault.reset();
      needs_reset_ = false;
    }
    seeds_sealed_.store(false, std::memory_order_relaxed);
    const std::uint64_t seq =
        epoch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
    // Admission: under kShed an over-limit epoch completes immediately
    // as kShed (the cancellation edge drops any stray seeds at
    // ingress); under kQueue admit() blocks in FIFO order.
    if (!admitted_) {
      if (runtime_->admit()) {
        admitted_ = true;
      } else {
        tenant_->fault.request_shed(
            "admission: runtime at max in-flight epochs");
      }
    }
    if (options_.deadline_ms > 0 && !tenant_->fault.cancelled()) {
      runtime_->register_deadline(
          tenant_.get(),
          std::chrono::steady_clock::now() +
              std::chrono::milliseconds(options_.deadline_ms));
    }
    epoch_open_.store(true, std::memory_order_release);
    return Submission(this, seq);
  }

  // Resume the producer *before* resetting the detector: once rank 0 has
  // an active thread again, the freshly-reset wave cannot re-announce
  // termination in the window before the first task is submitted.
  context(0).begin();
  if (needs_reset_) {
    detector_->reset();
    // The previous epoch's outcome was consumed by wait()/status();
    // the new epoch starts healthy.
    own_fault_.reset();
    needs_reset_ = false;
  }
  seeds_sealed_.store(false, std::memory_order_relaxed);
  const std::uint64_t seq =
      epoch_seq_.fetch_add(1, std::memory_order_relaxed) + 1;
  epoch_open_.store(true, std::memory_order_release);
  return Submission(this, seq);
}

void World::seal_seeds() {
  if (seeds_sealed_.load(std::memory_order_acquire)) return;
  const EpochMode mode = epoch_mode();
  if (mode == EpochMode::kReplay) {
    // Every recorded external seed must have been re-delivered, or some
    // slots can never fire; turn the shortfall into a clean abort
    // instead of a hang.
    detail::ReplayFrame& frame = detail::t_replay_frame;
    if (frame.cursor != frame.cursor_end) {
      abort("replay: fewer external seeds than the recorded epoch");
    }
    flush_replay_ready();
    detail::t_replay_frame = detail::ReplayFrame{};
  } else if (mode == EpochMode::kRecording) {
    detail::t_record_frame = detail::RecordFrame{};
  }
  seeds_sealed_.store(true, std::memory_order_release);
  // Seal last: the tenant's pending count may only hit a *final* zero
  // after every seed of this epoch was accounted.
  if (tenant_ != nullptr) tenant_->seal();
}

Status World::wait() {
  assert(epoch_open_.load(std::memory_order_acquire) &&
         "wait() without execute()");
  const EpochMode mode = epoch_mode();
  seal_seeds();
  const Status st =
      tenant_ != nullptr ? wait_tenant(mode) : wait_classic(mode);
  record_completion(st);
  epoch_open_.store(false, std::memory_order_release);
  needs_reset_ = true;
  return st;
}

Status World::wait_classic(EpochMode mode) {
  if (watchdog_ != nullptr) watchdog_->arm();
  // The calling thread stops producing: flush its counters and take part
  // in the wave until termination is announced.
  detector_->on_idle();
  int spins = 0;
  bool replay_purged = false;
  while (!detector_->terminated()) {
    if (own_fault_.cancelled()) {
      if (mode == EpochMode::kReplay) {
        // One pass claims every unfired slot (the claim bit makes later
        // deliveries stand down); ready-but-queued records are dropped
        // by the engine's ingress/pop path instead.
        if (!replay_purged && replay_instance_ != nullptr) {
          replay_purged = true;
          const std::size_t claimed = replay_instance_->purge_cancelled();
          if (claimed > 0) {
            detector_->on_cancelled(0, static_cast<std::int64_t>(claimed));
            detector_->on_idle();
          }
        }
      } else {
        purge_cancelled();
      }
    }
    detector_->advance_wave();
    if (++spins < 256) {
      std::this_thread::yield();
    } else {
      // Long-running tasks: back off to a microsleep so the fence thread
      // does not compete with workers for the core.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  if (watchdog_ != nullptr) watchdog_->disarm();
  const Status st = own_fault_.status();
  if (mode == EpochMode::kReplay) {
    // A clean replay leaves every slot executed and cleared; after a
    // failure/abort, sweep input copies still parked in unfired records.
    if (!st.ok() && replay_instance_ != nullptr) {
      replay_instance_->discard_inputs();
    }
    replay_instance_ = nullptr;
    epoch_mode_.store(EpochMode::kDynamic, std::memory_order_relaxed);
  } else if (mode == EpochMode::kRecording) {
    epoch_mode_.store(EpochMode::kDynamic, std::memory_order_relaxed);
  }
  return st;
}

Status World::wait_tenant(EpochMode mode) {
  TenantState& t = *tenant_;
  bool replay_purged = false;
  // The epoch is over when the seeder sealed and every accounted task
  // retired (see TenantState for the soundness argument). The wait is
  // timed so cancellation purge work keeps running while producers
  // drain.
  while (!(t.sealed() && t.quiescent())) {
    if (t.fault.cancelled()) {
      if (mode == EpochMode::kReplay) {
        if (!replay_purged && replay_instance_ != nullptr) {
          replay_purged = true;
          const std::size_t claimed = replay_instance_->purge_cancelled();
          if (claimed > 0) {
            t.on_cancelled(static_cast<std::int64_t>(claimed));
          }
        }
      } else {
        purge_cancelled();
      }
    }
    t.wait_progress(std::chrono::milliseconds(1));
  }
  const Status st = t.fault.status();
  if (mode == EpochMode::kReplay) {
    if (!st.ok() && replay_instance_ != nullptr) {
      replay_instance_->discard_inputs();
    }
    replay_instance_ = nullptr;
    epoch_mode_.store(EpochMode::kDynamic, std::memory_order_relaxed);
  } else if (mode == EpochMode::kRecording) {
    epoch_mode_.store(EpochMode::kDynamic, std::memory_order_relaxed);
  }
  if (options_.deadline_ms > 0) runtime_->cancel_deadline(&t);
  if (admitted_) {
    runtime_->release_admission();
    admitted_ = false;
  }
  return st;
}

void World::record_completion(const Status& st) {
  std::exception_ptr ep;
  if (!st.ok()) {
    try {
      fault_->rethrow();
    } catch (...) {
      ep = std::current_exception();
    }
  }
  std::lock_guard<std::mutex> lock(status_mutex_);
  last_status_ = st;
  last_error_ = ep;
  completed_seq_ = epoch_seq_.load(std::memory_order_relaxed);
}

bool World::submission_done(std::uint64_t seq) const {
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (completed_seq_ >= seq) return true;
  }
  if (epoch_seq_.load(std::memory_order_acquire) != seq ||
      !epoch_open_.load(std::memory_order_acquire)) {
    return false;
  }
  if (tenant_ != nullptr) return tenant_->sealed() && tenant_->quiescent();
  return detector_->terminated();
}

Status World::submission_wait(std::uint64_t seq) {
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (completed_seq_ >= seq) return last_status_;
  }
  assert(seq == epoch_seq_.load(std::memory_order_acquire) &&
         "stale Submission waited before its epoch was recorded");
  return wait();
}

Status World::submission_status(std::uint64_t seq) const {
  {
    std::lock_guard<std::mutex> lock(status_mutex_);
    if (completed_seq_ >= seq) return last_status_;
  }
  return fault_->status();
}

std::exception_ptr World::submission_error(std::uint64_t seq) const {
  std::lock_guard<std::mutex> lock(status_mutex_);
  return completed_seq_ >= seq ? last_error_ : nullptr;
}

void World::begin_recording() {
  assert(nranks_ == 1 &&
         "recording requires a single-rank world (keymaps resolve "
         "locally)");
  (void)execute();
  recorder_ = std::make_unique<GraphRecorder>();
  epoch_mode_.store(EpochMode::kRecording, std::memory_order_relaxed);
  // The calling thread is the external producer: its seeds are recorded
  // in call order as the template's external deliveries.
  detail::t_record_frame =
      detail::RecordFrame{recorder_.get(), GraphRecorder::kExternalProducer};
}

std::shared_ptr<GraphTemplate> World::end_recording() {
  assert(!epoch_open_.load(std::memory_order_acquire) &&
         "end_recording() before the recording epoch fenced");
  if (recorder_ == nullptr) return nullptr;
  std::shared_ptr<GraphTemplate> tmpl;
  if (fault_->status().ok()) tmpl = recorder_->finalize();
  recorder_.reset();
  return tmpl;
}

Submission World::execute_replay(ReplayInstance& instance) {
  assert(nranks_ == 1 && "replay requires a single-rank world");
  assert(epoch_mode() == EpochMode::kDynamic &&
         "execute_replay() during an open recording/replay epoch");
  const Submission handle = execute();
  // Re-arm the arena *before* the mode flips: once deliveries can
  // arrive, every join counter must already hold its expected count.
  instance.begin_epoch();
  // Every copy the previous replay epoch allocated died before its
  // fence returned, so the per-thread copy arenas can be rewound here:
  // one arena per worker plus a trailing one for this (external
  // seeding) thread.
  const auto workers =
      static_cast<std::size_t>(context(0).num_threads());
  instance.arm_copy_arenas(workers + 1);
  replay_instance_ = &instance;
  epoch_mode_.store(EpochMode::kReplay, std::memory_order_relaxed);
  // Bulk discovery: the whole template is accounted in one counter
  // update instead of one on_discovered per task.
  const auto slots = static_cast<std::int64_t>(instance.graph().num_slots());
  if (slots > 0) context(0).on_discovered(slots);
  const GraphTemplate& g = instance.graph();
  const SuccessorRef* ext = g.external_deliveries().data();
  detail::t_replay_frame = detail::ReplayFrame{
      &instance, ext, ext + g.external_deliveries().size(), nullptr, 0,
      /*external=*/true, instance.copy_arena(workers)};
  return handle;
}

void World::enqueue_replay_ready(TaskBase* task) {
  detail::ReplayFrame& frame = detail::t_replay_frame;
  // Descending-priority insertion, matching the worker bundling
  // discipline, so the chain honors push_chain's sortedness contract.
  LifoNode* prev = nullptr;
  LifoNode* cur = frame.ready_head;
  while (cur != nullptr && cur->priority > task->priority) {
    prev = cur;
    cur = cur->next.load(std::memory_order_relaxed);
  }
  task->next.store(cur, std::memory_order_relaxed);
  if (prev == nullptr) {
    frame.ready_head = task;
  } else {
    prev->next.store(task, std::memory_order_relaxed);
  }
  if (++frame.ready_count >= ExecutionEngine::kMaxBatch) {
    flush_replay_ready();
  }
}

void World::flush_replay_ready() {
  detail::ReplayFrame& frame = detail::t_replay_frame;
  if (frame.ready_head == nullptr) return;
  TaskBase* head = frame.ready_head;
  frame.ready_head = nullptr;
  frame.ready_count = 0;
  context(0).submit(head, SubmitHint::kChain);
}

void World::abort(std::string reason) {
  if (fault_->request_abort(std::move(reason))) {
    trace::record(trace::EventKind::kWorldAborted,
                  static_cast<std::uint64_t>(Outcome::kAborted));
  }
  // Wake every rank's parked workers so they drain (and drop) the
  // queues and the termination wave converges; a tenant waiter gets an
  // immediate nudge too.
  for (Context* c : contexts_) c->notify_work();
  if (tenant_ != nullptr) tenant_->notify();
}

void World::set_fault_plan(const FaultPlan* plan) {
  for (Context* c : contexts_) c->set_fault_plan(plan);
}

void World::set_stall_handler(
    std::function<void(const std::string&)> handler) {
  std::lock_guard<std::mutex> lock(stall_mutex_);
  stall_handler_ = std::move(handler);
}

void World::register_node(TTBase* node) {
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  nodes_.push_back(node);
}

void World::unregister_node(TTBase* node) {
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if (*it == node) {
      nodes_.erase(it);
      return;
    }
  }
}

void World::purge_cancelled() {
  std::size_t purged = 0;
  {
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    for (TTBase* node : nodes_) purged += node->purge_pending_tasks();
  }
  // Claim suspended coroutine continuations parked on this World's
  // InputGates and on the engine timer wheel(s), submitting them back to
  // the engine whose ingress drops each as a cancelled completion (the
  // cancel hook destroys the frame without resuming it). Both paths are
  // self-accounting through drop_cancelled, so they do NOT add to
  // `purged`. Looped by wait(): a still-running body can suspend after
  // this sweep, and its +1 discovery keeps the census from converging
  // until a later sweep claims it.
  std::size_t claimed = coro_sources_.cancel_parked_all();
  for (Context* c : contexts_) {
    claimed += c->engine().timers().cancel_for(fault_);
  }
  if (purged > 0) {
    // The discarded records were accounted as discovered; retire them as
    // cancelled completions so the wave (or the tenant's pending count)
    // sees the new balance.
    if (tenant_ != nullptr) {
      tenant_->on_cancelled(static_cast<std::int64_t>(purged));
    } else {
      detector_->on_cancelled(0, static_cast<std::int64_t>(purged));
    }
  }
  if (tenant_ == nullptr && (purged > 0 || claimed > 0)) {
    // Coroutine claims were already retired through the engine's ingress
    // drop on *this* thread; flush the thread-local counters so the wave
    // sees those completions (without this the fence never converges).
    detector_->on_idle();
  }
}

std::uint64_t World::progress_counter() const {
  if (tenant_ != nullptr) return tenant_->retired();
  std::uint64_t n = messages_delivered();
  for (const Context* c : contexts_) {
    ExecutionEngine& e = const_cast<Context*>(c)->engine();
    n += e.total_tasks_executed() + e.failed_tasks() + e.cancelled_tasks();
  }
  return n;
}

std::string World::stall_report() const {
  std::ostringstream os;
  if (tenant_ != nullptr) {
    os << "=== stall report (world " << world_id_;
    if (!options_.name.empty()) os << " '" << options_.name << "'";
    os << ") ===\n";
    os << "tenant: pending=" << tenant_->pending()
       << " retired=" << tenant_->retired()
       << " failed=" << tenant_->failed()
       << " cancelled=" << tenant_->cancelled()
       << " sealed=" << (tenant_->sealed() ? "yes" : "no") << "\n";
    os << runtime_->stall_report();
    return os.str();
  }
  os << "=== stall report ===\n";
  os << "config: " << config_.describe() << "\n";
  os << "progress: tasks+faults+messages=" << progress_counter()
     << " messages_delivered=" << messages_delivered() << "\n";
  os << "termdet: discovered=" << detector_->total_discovered()
     << " completed=" << detector_->total_completed()
     << " cancelled=" << detector_->total_cancelled()
     << " terminated=" << (detector_->terminated() ? "yes" : "no") << "\n";
  for (int r = 0; r < nranks_; ++r) {
    ExecutionEngine& e = contexts_[static_cast<std::size_t>(r)]->engine();
    const StealStats stats =
        contexts_[static_cast<std::size_t>(r)]->scheduler().steal_stats();
    os << "rank " << r << ": pending=" << detector_->rank_pending(r)
       << " executed=" << e.total_tasks_executed()
       << " failed=" << e.failed_tasks()
       << " cancelled=" << e.cancelled_tasks()
       << " parked=" << e.parked_workers() << "/" << e.num_threads()
       << " steal_attempts=" << stats.attempts
       << " steal_successes=" << stats.successes
       << " ingress_hits=" << stats.ingress_hits << "\n";
  }
  if (trace::enabled()) {
    os << "--- trace summary ---\n";
    trace::write_summary(os);
  }
  return os.str();
}

void World::on_stall(bool engine_quiet) {
  std::string report = stall_report();
  if (tenant_ != nullptr) {
    report += engine_quiet
                  ? "verdict: engine quiet (no task progressed anywhere "
                    "over the window)\n"
                  : "verdict: this World quiet while the engine made "
                    "progress (tenant-local stall)\n";
  }
  std::function<void(const std::string&)> handler;
  {
    std::lock_guard<std::mutex> lock(stall_mutex_);
    handler = stall_handler_;
  }
  if (handler) {
    handler(report);
    return;
  }
  // Default: log and abort so wait() returns instead of hanging forever.
  std::fprintf(stderr,
               "ttg: stall watchdog fired (no progress for %d ms on live "
               "work)\n%s",
               config_.watchdog_quiet_ms, report.c_str());
  abort("stall watchdog: no progress for " +
        std::to_string(config_.watchdog_quiet_ms) + "ms with live work");
}

void World::post_message(int target_rank, std::function<void()> deliver) {
  assert(target_rank >= 0 && target_rank < nranks_);
  if (tenant_ != nullptr) {
    // Tenant worlds are single-rank with no message plane: deliver
    // inline on the calling thread.
    deliver();
    messages_delivered_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  detector_->on_message_sent();
  trace::record(trace::EventKind::kMessageSent,
                static_cast<std::uint32_t>(target_rank));
  auto* msg = new Message;
  msg->deliver = std::move(deliver);
  queues_[static_cast<std::size_t>(target_rank)]->push(msg);
  contexts_[static_cast<std::size_t>(target_rank)]->notify_work();
}

std::uint64_t World::total_tasks_executed() const {
  if (tenant_ != nullptr) return tenant_->executed();
  std::uint64_t n = 0;
  for (const Context* c : contexts_) n += c->total_tasks_executed();
  return n;
}

void World::MessageQueue::drain(Worker& worker) {
  while (LifoNode* node = queue_.pop()) {
    auto* msg = static_cast<Message*>(node);
    world_->detector_->on_message_received();
    trace::record(trace::EventKind::kMessageReceived,
                  static_cast<std::uint32_t>(worker.rank()));
    try {
      msg->deliver();
    } catch (...) {
      // A throwing delivery (e.g. a payload whose copy constructor
      // throws during re-materialization) is a task failure: capture
      // and cancel instead of terminating the worker.
      world_->contexts_[static_cast<std::size_t>(worker.rank())]
          ->engine()
          .report_task_failure(std::current_exception(), /*span_name=*/0,
                               worker.index());
    }
    world_->messages_delivered_.fetch_add(1, std::memory_order_relaxed);
    delete msg;
  }
}

}  // namespace ttg
