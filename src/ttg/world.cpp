#include "ttg/world.hpp"

#include <cassert>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>
#include <utility>

#include "runtime/trace.hpp"
#include "ttg/tt.hpp"

namespace ttg {

World::World(const Config& config, int nranks)
    : config_(config), nranks_(nranks) {
  assert(nranks >= 1);
  config_.apply_globals();
  detector_ = std::make_unique<TerminationDetector>(nranks, config_.termdet);
  // Attach the application thread (rank 0's producer) *before* workers
  // exist: an attached active thread keeps its rank non-quiet, so the
  // wave cannot declare termination while the world is still being set
  // up or before the first fence.
  detector_->thread_attach(0);
  queues_.reserve(static_cast<std::size_t>(nranks));
  contexts_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    queues_.push_back(std::make_unique<MessageQueue>(this));
  }
  for (int r = 0; r < nranks; ++r) {
    contexts_.push_back(
        std::make_unique<Context>(config_, detector_.get(), r, &fault_));
    contexts_.back()->set_progress_source(queues_[r].get());
  }
  if (config_.watchdog_quiet_ms > 0) {
    watchdog_ = std::make_unique<StallWatchdog>(
        config_.watchdog_quiet_ms,
        [this] {
          return StallWatchdog::Sample{
              progress_counter(), detector_->total_pending() > 0};
        },
        [this] { on_stall(); });
  }
}

World::~World() {
  // The watchdog samples contexts and the detector: stop it first.
  watchdog_.reset();
  // Contexts join their workers before the queues they poll disappear.
  contexts_.clear();
  queues_.clear();
}

int World::current_rank() const {
  if (Worker* w = Context::current_worker(); w != nullptr) return w->rank();
  return 0;
}

void World::execute() {
  // Resume the producer *before* resetting the detector: once rank 0 has
  // an active thread again, the freshly-reset wave cannot re-announce
  // termination in the window before the first task is submitted.
  context(0).begin();
  if (needs_reset_) {
    detector_->reset();
    // The previous epoch's outcome was consumed by wait()/status();
    // the new epoch starts healthy.
    fault_.reset();
    needs_reset_ = false;
  }
  epoch_open_ = true;
}

Status World::wait() {
  assert(epoch_open_ && "wait() without execute()");
  if (watchdog_ != nullptr) watchdog_->arm();
  // The calling thread stops producing: flush its counters and take part
  // in the wave until termination is announced.
  detector_->on_idle();
  int spins = 0;
  while (!detector_->terminated()) {
    if (fault_.cancelled()) purge_cancelled();
    detector_->advance_wave();
    if (++spins < 256) {
      std::this_thread::yield();
    } else {
      // Long-running tasks: back off to a microsleep so the fence thread
      // does not compete with workers for the core.
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  }
  if (watchdog_ != nullptr) watchdog_->disarm();
  epoch_open_ = false;
  needs_reset_ = true;
  return fault_.status();
}

void World::abort(std::string reason) {
  if (fault_.request_abort(std::move(reason))) {
    trace::record(trace::EventKind::kWorldAborted,
                  static_cast<std::uint64_t>(Outcome::kAborted));
  }
  // Wake every rank's parked workers so they drain (and drop) the
  // queues and the termination wave converges.
  for (auto& c : contexts_) c->notify_work();
}

void World::set_fault_plan(const FaultPlan* plan) {
  for (auto& c : contexts_) c->set_fault_plan(plan);
}

void World::set_stall_handler(
    std::function<void(const std::string&)> handler) {
  std::lock_guard<std::mutex> lock(stall_mutex_);
  stall_handler_ = std::move(handler);
}

void World::register_node(TTBase* node) {
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  nodes_.push_back(node);
}

void World::unregister_node(TTBase* node) {
  std::lock_guard<std::mutex> lock(nodes_mutex_);
  for (auto it = nodes_.begin(); it != nodes_.end(); ++it) {
    if (*it == node) {
      nodes_.erase(it);
      return;
    }
  }
}

void World::purge_cancelled() {
  std::size_t purged = 0;
  {
    std::lock_guard<std::mutex> lock(nodes_mutex_);
    for (TTBase* node : nodes_) purged += node->purge_pending_tasks();
  }
  if (purged > 0) {
    // The discarded records were accounted as discovered; retire them as
    // cancelled completions and flush so the wave sees the new balance.
    detector_->on_cancelled(0, static_cast<std::int64_t>(purged));
    detector_->on_idle();
  }
}

std::uint64_t World::progress_counter() const {
  std::uint64_t n = messages_delivered();
  for (const auto& c : contexts_) {
    ExecutionEngine& e = c->engine();
    n += e.total_tasks_executed() + e.failed_tasks() + e.cancelled_tasks();
  }
  return n;
}

std::string World::stall_report() const {
  std::ostringstream os;
  os << "=== stall report ===\n";
  os << "config: " << config_.describe() << "\n";
  os << "progress: tasks+faults+messages=" << progress_counter()
     << " messages_delivered=" << messages_delivered() << "\n";
  os << "termdet: discovered=" << detector_->total_discovered()
     << " completed=" << detector_->total_completed()
     << " cancelled=" << detector_->total_cancelled()
     << " terminated=" << (detector_->terminated() ? "yes" : "no") << "\n";
  for (int r = 0; r < nranks_; ++r) {
    ExecutionEngine& e = contexts_[r]->engine();
    const StealStats stats = contexts_[r]->scheduler().steal_stats();
    os << "rank " << r << ": pending=" << detector_->rank_pending(r)
       << " executed=" << e.total_tasks_executed()
       << " failed=" << e.failed_tasks()
       << " cancelled=" << e.cancelled_tasks()
       << " parked=" << e.parked_workers() << "/" << e.num_threads()
       << " steal_attempts=" << stats.attempts
       << " steal_successes=" << stats.successes
       << " ingress_hits=" << stats.ingress_hits << "\n";
  }
  if (trace::enabled()) {
    os << "--- trace summary ---\n";
    trace::write_summary(os);
  }
  return os.str();
}

void World::on_stall() {
  const std::string report = stall_report();
  std::function<void(const std::string&)> handler;
  {
    std::lock_guard<std::mutex> lock(stall_mutex_);
    handler = stall_handler_;
  }
  if (handler) {
    handler(report);
    return;
  }
  // Default: log and abort so wait() returns instead of hanging forever.
  std::fprintf(stderr,
               "ttg: stall watchdog fired (no progress for %d ms on live "
               "work)\n%s",
               config_.watchdog_quiet_ms, report.c_str());
  abort("stall watchdog: no progress for " +
        std::to_string(config_.watchdog_quiet_ms) + "ms with live work");
}

void World::post_message(int target_rank, std::function<void()> deliver) {
  assert(target_rank >= 0 && target_rank < nranks_);
  detector_->on_message_sent();
  trace::record(trace::EventKind::kMessageSent,
                static_cast<std::uint32_t>(target_rank));
  auto* msg = new Message;
  msg->deliver = std::move(deliver);
  queues_[target_rank]->push(msg);
  contexts_[target_rank]->notify_work();
}

std::uint64_t World::total_tasks_executed() const {
  std::uint64_t n = 0;
  for (const auto& c : contexts_) n += c->total_tasks_executed();
  return n;
}

void World::MessageQueue::drain(Worker& worker) {
  while (LifoNode* node = queue_.pop()) {
    auto* msg = static_cast<Message*>(node);
    world_->detector_->on_message_received();
    trace::record(trace::EventKind::kMessageReceived,
                  static_cast<std::uint32_t>(worker.rank()));
    try {
      msg->deliver();
    } catch (...) {
      // A throwing delivery (e.g. a payload whose copy constructor
      // throws during re-materialization) is a task failure: capture
      // and cancel instead of terminating the worker.
      world_->contexts_[worker.rank()]->engine().report_task_failure(
          std::current_exception(), /*span_name=*/0, worker.index());
    }
    world_->messages_delivered_.fetch_add(1, std::memory_order_relaxed);
    delete msg;
  }
}

}  // namespace ttg
